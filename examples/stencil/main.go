// Heat-diffusion stencil — the hotspot-style workload (Rodinia) — showing
// per-loop SF measurement and the value of online estimation.
//
// The example runs a real 2-D stencil with goroutine workers (row-parallel,
// AID-static), verifies heat conservation, then uses the simulator to
// reproduce the §5C experiment in miniature: it measures the stencil loop's
// offline SF on Platform A, compares it with the contended 8-thread SF, and
// shows the completion times of AID-static with online estimation vs the
// offline-fed variant.
//
// Run with: go run ./examples/stencil
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/rt"
	"repro/internal/sim"
)

func main() {
	// --- real row-parallel stencil -----------------------------------------
	const w, h, steps = 256, 256, 20
	src, dst := kernels.NewGrid(w, h), kernels.NewGrid(w, h)
	src.Set(w/2, h/2, 1000)

	team, err := rt.NewTeam(rt.TeamConfig{NThreads: 4, Schedule: rt.Schedule{Kind: rt.KindAIDStatic}})
	if err != nil {
		log.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		if err := team.ParallelFor(int64(h), func(y int64) {
			kernels.StencilRow(dst, src, int(y), 0.2)
		}); err != nil {
			log.Fatal(err)
		}
		src, dst = dst, src
	}
	var total float64
	for _, v := range src.Data {
		total += v
	}
	fmt.Printf("real stencil: %dx%d grid, %d steps, heat conserved: %.1f (want 1000.0, err %.2g)\n",
		w, h, steps, total, math.Abs(total-1000))

	// --- simulated SF study --------------------------------------------------
	pl := amp.PlatformA()
	loop := sim.LoopSpec{
		Name:    "stencil-row",
		NI:      1024,
		Profile: amp.Profile{ILP: 0.55, MemIntensity: 0.15, FootprintMB: 0.9},
		Cost:    sim.UniformCost{PerIter: 30000},
	}
	offline, err := sim.MeasureLoopSF(pl, loop)
	if err != nil {
		log.Fatal(err)
	}
	online := pl.SF(loop.Profile, 4, 4)
	fmt.Printf("stencil loop SF on Platform A: offline (1 thread) %.2f, contended (8 threads) %.2f\n",
		offline, online)

	runWith := func(name string, f sim.SchedulerFactory) {
		res, err := sim.RunLoop(sim.Config{
			Platform: pl, NThreads: 8, Binding: amp.BindBS, Factory: f,
		}, loop, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %9.3f ms (virtual)\n", name, float64(res.End-res.Start)/1e6)
	}
	runWith("static", func(i core.LoopInfo) (core.Scheduler, error) { return core.NewStatic(i) })
	runWith("AID-static (online SF)", func(i core.LoopInfo) (core.Scheduler, error) {
		return core.NewAIDStatic(i, 1)
	})
	runWith("AID-static (offline SF)", func(i core.LoopInfo) (core.Scheduler, error) {
		return core.NewAIDStaticOffline(i, 1, []float64{offline, 1})
	})
}
