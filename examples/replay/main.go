// Replay: record a run, re-execute it deterministically, and hunt a
// scheduling regression without re-running the workload.
//
// The demo records EP's main loop under dynamic,1 in the simulator (a
// stand-in for a recorded production run), then:
//
//  1. exact-replays the record and shows the makespan reproduces bit for
//     bit (the record is self-validating: coverage and event times are
//     verified);
//  2. asks the what-if question "what would AID-dynamic have done with the
//     exact same workload?" — the regression-hunting workflow: candidate
//     scheduler changes are evaluated against recorded runs, in virtual
//     time, with no access to the original machine;
//  3. diffs the two runs into a regression report (here the AID run is an
//     improvement, so nothing is flagged — flip baseline and candidate to
//     see the regression gate fire).
//
// Run with: go run ./examples/replay
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/amp"
	"repro/internal/replay"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// --- record: EP under dynamic,1 on Platform A -----------------------
	pl := amp.PlatformA()
	sched, err := rt.ParseSchedule("dynamic,1")
	if err != nil {
		log.Fatal(err)
	}
	rec := trace.NewRecorder()
	cfg := sim.Config{
		Platform: pl,
		NThreads: pl.NumCores(),
		Factory:  sched.Factory(),
		Trace:    trace.New(pl.NumCores()),
		Recorder: rec,
	}
	spec := sim.LoopSpec{
		Name:    "ep-main",
		NI:      16384,
		Profile: amp.Profile{ILP: 0.25, MemIntensity: 0.05, FootprintMB: 0.1},
		Cost:    sim.BlockNoisyCost{Base: 120000, Amp: 0.35, BlockLen: 256, Seed: 0xE9},
	}
	res, err := sim.RunLoop(cfg, spec, 0)
	if err != nil {
		log.Fatal(err)
	}
	rec.SetLoopSchedule(0, sched.Canonical())

	// Serialize and reload, as a production record shipped to a dev box.
	var wire bytes.Buffer
	if err := trace.EncodeJSONL(&wire, rec.Record()); err != nil {
		log.Fatal(err)
	}
	record, err := trace.DecodeJSONL(&wire)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded: %s under %s, makespan %d ns, %d grant events\n",
		spec.Name, sched, res.End-res.Start, len(record.Events))

	// --- exact replay ----------------------------------------------------
	exact, err := replay.Exact(record)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact replay: makespan %d ns (recorded %d) — verified identical\n",
		exact.MakespanNs, record.MakespanNs)

	// --- what-if: same workload, AID-dynamic instead ---------------------
	whatif, err := replay.WhatIf(record, replay.WhatIfConfig{Schedule: "aid-dynamic,1,5"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("what-if AID-dynamic: makespan %d ns (%+.1f%% vs recorded)\n\n",
		whatif.MakespanNs, 100*float64(whatif.MakespanNs-record.MakespanNs)/float64(record.MakespanNs))

	// --- diff: is the candidate a regression? ---------------------------
	fmt.Print(replay.Diff(record, whatif.Record, 2.0))
}
