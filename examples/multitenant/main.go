// Multitenant: several parallel loops — stand-ins for requests from
// different users — share one persistent worker fleet through rt.Registry
// instead of each forking its own thread team.
//
// Two batch loops are submitted first; a small "interactive" loop arrives
// last with a high fairness weight. Under the weighted round-robin policy
// the interactive loop is handed a large share of the fleet immediately,
// so its barrier releases long before the batch work finishes — per-loop
// barriers are independent even though every worker serves every loop.
//
// Run with: go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"repro/internal/rt"
)

func spin(units int) float64 {
	x := 1.0
	for i := 0; i < units; i++ {
		x += 1.0 / (x + float64(i))
	}
	return x
}

func main() {
	reg, err := rt.NewRegistry(rt.RegistryConfig{}) // Platform A: 8 workers
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()

	var sink atomic.Int64
	body := func(_ int, lo, hi int64) {
		var acc float64
		for i := lo; i < hi; i++ {
			acc += spin(300)
		}
		sink.Add(int64(acc) + (hi - lo))
	}

	submit := func(name string, n int64, weight int, sched rt.Schedule) *rt.Loop {
		l, err := reg.Submit(rt.LoopRequest{N: n, Schedule: sched, Weight: weight, Body: body})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submitted %-12s %8d iterations, weight %d, schedule %s\n", name, n, weight, sched)
		return l
	}

	batchA := submit("batch-a", 300_000, 1, rt.Schedule{Kind: rt.KindAIDDynamic})
	batchB := submit("batch-b", 300_000, 1, rt.Schedule{Kind: rt.KindDynamic, Chunk: 16})
	interactive := submit("interactive", 2_000, 8, rt.Schedule{Kind: rt.KindDynamic, Chunk: 8})

	interactive.Wait()
	fmt.Printf("interactive done after %v (batch still running)\n", interactive.Latency())
	batchA.Wait()
	batchB.Wait()
	fmt.Printf("batch-a     done after %v\n", batchA.Latency())
	fmt.Printf("batch-b     done after %v\n", batchB.Latency())
}
