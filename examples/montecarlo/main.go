// Monte-Carlo π estimation — the EP-style workload of the paper's
// motivation (§2, Fig. 1) — executed two ways:
//
//   - For real, with goroutine workers under every schedule. Workers
//     emulating small cores are throttled, and the estimate must be
//     identical under every schedule (iteration partitioning cannot change
//     the sampled stream).
//   - In simulation on both modeled platforms, comparing all seven schemes
//     of Fig. 6 on an EP-like uniform loop.
//
// Run with: go run ./examples/montecarlo
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/internal/amp"
	"repro/internal/exps"
	"repro/internal/kernels"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/workloads"
)

const samples = 400000

func main() {
	fmt.Println("== real execution (4 goroutine workers, emulated 2B+2S) ==")
	for _, sched := range []rt.Schedule{
		{Kind: rt.KindStatic},
		{Kind: rt.KindDynamic, Chunk: 256},
		{Kind: rt.KindGuided},
		// On a machine with few real CPUs, goroutine workers timeshare, so
		// the AID sampling phase uses a coarse chunk: with chunk=1 a
		// not-yet-scheduled worker would keep the sampling phase open while
		// the running workers drain the pool one iteration at a time.
		{Kind: rt.KindAIDStatic, Chunk: 512},
		{Kind: rt.KindAIDHybrid, Chunk: 512, Pct: 0.8},
		{Kind: rt.KindAIDDynamic, Chunk: 64, Major: 512},
	} {
		team, err := rt.NewTeam(rt.TeamConfig{
			NThreads: 4,
			Schedule: sched,
			Profile:  amp.Profile{ILP: 0.5},
		})
		if err != nil {
			log.Fatal(err)
		}
		var hits atomic.Int64
		start := time.Now()
		err = team.ParallelForChunked(samples, func(lo, hi int64) {
			hits.Add(kernels.MonteCarloPiRange(lo, hi, 2024))
		})
		if err != nil {
			log.Fatal(err)
		}
		pi := 4 * float64(hits.Load()) / samples
		fmt.Printf("%-20s pi = %.6f   wall %8.2f ms\n", sched, pi, float64(time.Since(start).Microseconds())/1000)
	}

	fmt.Println()
	fmt.Println("== simulated EP loop on both modeled platforms ==")
	ep, _ := workloads.ByName("EP")
	loop := ep.Program.Loops()[0]
	for _, pl := range []*amp.Platform{amp.PlatformA(), amp.PlatformB()} {
		fmt.Printf("-- Platform %s --\n", pl.Name)
		for _, scheme := range exps.Fig6Schemes() {
			cfg := sim.Config{
				Platform: pl,
				NThreads: pl.NumCores(),
				Binding:  scheme.Binding,
				Factory:  scheme.Sched.Factory(),
			}
			res, err := sim.RunLoop(cfg, loop, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %9.3f ms (virtual)\n", scheme.Label, float64(res.End-res.Start)/1e6)
		}
	}
}
