// Level-synchronous BFS — the irregular-parallelism workload (Rodinia bfs)
// — comparing dynamic and AID-dynamic on frontier loops whose iteration
// costs vary with vertex degree.
//
// The real part runs BFS over a random graph with goroutine workers under
// AID-dynamic and checks the level assignment. The simulated part runs a
// bfs-like sequence of short irregular loops on Platform A under dynamic
// and AID-dynamic, showing AID-dynamic's lower pool traffic.
//
// Run with: go run ./examples/graphbfs
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	// --- real parallel BFS ---------------------------------------------------
	const n = 20000
	g := kernels.RandomGraph(n, 8, 77)
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	level[0] = 0

	team, err := rt.NewTeam(rt.TeamConfig{
		NThreads: 4,
		Schedule: rt.Schedule{Kind: rt.KindAIDDynamic, Chunk: 16, Major: 128},
	})
	if err != nil {
		log.Fatal(err)
	}

	frontier := []int32{0}
	var mu sync.Mutex
	depth := int32(1)
	levels := 0
	for len(frontier) > 0 {
		var next []int32
		cur := frontier
		err := team.ParallelForChunked(int64(len(cur)), func(lo, hi int64) {
			part := kernels.BFSLevel(g, cur[lo:hi], level, depth)
			if len(part) > 0 {
				mu.Lock()
				next = append(next, part...)
				mu.Unlock()
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		frontier = next
		depth++
		levels++
	}
	visited := 0
	for _, lv := range level {
		if lv >= 0 {
			visited++
		}
	}
	fmt.Printf("real BFS: %d vertices, %d levels, visited %d/%d\n", n, levels, visited, n)

	// --- simulated comparison --------------------------------------------------
	pl := amp.PlatformA()
	w, _ := workloads.ByName("bfs")
	type outcome struct {
		name string
		ns   int64
		pool int64
	}
	var results []outcome
	for _, c := range []struct {
		name string
		f    sim.SchedulerFactory
	}{
		{"dynamic(1)", func(i core.LoopInfo) (core.Scheduler, error) { return core.NewDynamic(i, 1) }},
		{"AID-dynamic(1,5)", func(i core.LoopInfo) (core.Scheduler, error) { return core.NewAIDDynamic(i, 1, 5) }},
	} {
		res, err := sim.RunProgram(sim.Config{
			Platform: pl, NThreads: 8, Binding: amp.BindBS, Factory: c.f,
		}, w.Program)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, outcome{c.name, res.TotalNs, res.PoolAccesses})
	}
	fmt.Println("simulated bfs workload on Platform A:")
	for _, r := range results {
		fmt.Printf("%-18s %9.3f ms (virtual), %6d pool accesses\n", r.name, float64(r.ns)/1e6, r.pool)
	}
	if results[1].pool < results[0].pool {
		fmt.Printf("AID-dynamic removed %.0f%% of the shared-pool traffic\n",
			100*(1-float64(results[1].pool)/float64(results[0].pool)))
	}
}
