// Quickstart: the smallest end-to-end use of the library.
//
// It does two things:
//
//  1. Simulates one uniform parallel loop on the modeled Odroid-XU4
//     (Platform A) under the conventional static schedule and under
//     AID-static, showing the asymmetry-aware win in virtual time.
//  2. Runs a real ParallelFor with goroutine workers under AID-static,
//     demonstrating that the same scheduler implementation drives real
//     concurrent execution.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"repro/internal/amp"
	"repro/internal/rt"
	"repro/internal/sim"
)

func main() {
	// --- 1. Simulated comparison -----------------------------------------
	platform := amp.PlatformA()
	loop := sim.LoopSpec{
		Name:    "quickstart-loop",
		NI:      4096,
		Profile: amp.Profile{ILP: 0.5, MemIntensity: 0.3, FootprintMB: 0.2},
		Cost:    sim.UniformCost{PerIter: 100000},
	}

	for _, sched := range []rt.Schedule{
		{Kind: rt.KindStatic},
		{Kind: rt.KindAIDStatic},
	} {
		cfg := sim.Config{
			Platform: platform,
			NThreads: platform.NumCores(),
			Binding:  amp.BindBS,
			Factory:  sched.Factory(),
		}
		res, err := sim.RunLoop(cfg, loop, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s completed %d iterations in %8.3f ms (virtual)\n",
			sched, loop.NI, float64(res.End-res.Start)/1e6)
	}

	// --- 2. Real goroutine execution --------------------------------------
	team, err := rt.NewTeam(rt.TeamConfig{
		NThreads: 4,
		Schedule: rt.Schedule{Kind: rt.KindAIDStatic},
	})
	if err != nil {
		log.Fatal(err)
	}
	var sum atomic.Int64
	if err := team.ParallelFor(100000, func(i int64) {
		sum.Add(i)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("real ParallelFor: sum of 0..99999 = %d (want 4999950000)\n", sum.Load())
}
