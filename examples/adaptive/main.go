// Adaptive scheduling (the §6 future-work extension): the AID-auto schedule
// decides per loop, from the sampling phase it already runs, whether the
// loop's iterations are uniform (take the AID-hybrid path) or irregular
// (take the AID-dynamic path).
//
// The example simulates a program whose loops alternate between a uniform
// stencil-style kernel and an irregular detection-style kernel, and shows
// that AID-auto matches the better fixed variant on each without being
// told which is which — the situation the paper leaves as future work:
// "applying AID-static or AID-hybrid to loops where iterations have the
// same amount of work, and AID-dynamic to the remaining loops".
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/rt"
	"repro/internal/sim"
)

func main() {
	pl := amp.PlatformA()
	uniform := sim.LoopSpec{
		Name:    "uniform-kernel",
		NI:      4096,
		Profile: amp.Profile{ILP: 0.5, MemIntensity: 0.25, FootprintMB: 0.2},
		Cost:    sim.UniformCost{PerIter: 90000},
	}
	irregular := sim.LoopSpec{
		Name:    "irregular-kernel",
		NI:      4096,
		Profile: amp.Profile{ILP: 0.5, MemIntensity: 0.25, FootprintMB: 0.2},
		Cost:    sim.BlockNoisyCost{Base: 45000, Amp: 4, BlockLen: 16, Seed: 7},
	}
	program := sim.Program{
		Name: "alternating",
		Phases: []sim.Phase{
			{Loop: &uniform, Reps: 4},
			{Loop: &irregular, Reps: 4},
			{Loop: &uniform, Reps: 4},
			{Loop: &irregular, Reps: 4},
		},
	}

	for _, sched := range []rt.Schedule{
		{Kind: rt.KindAIDHybrid, Pct: 0.8},
		{Kind: rt.KindAIDDynamic, Chunk: 1, Major: 5},
		{Kind: rt.KindAIDAuto, Chunk: 16, Major: 64},
	} {
		cfg := sim.Config{
			Platform: pl,
			NThreads: 8,
			Binding:  amp.BindBS,
			Factory:  sched.Factory(),
		}
		res, err := sim.RunProgram(cfg, program)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %10.3f ms (virtual), %6d pool accesses\n",
			sched, float64(res.TotalNs)/1e6, res.PoolAccesses)
	}

	// Show the per-loop decisions AID-auto takes.
	fmt.Println("\nAID-auto per-loop decisions:")
	var autos []*core.AIDAuto
	cfg := sim.Config{
		Platform: pl,
		NThreads: 8,
		Binding:  amp.BindBS,
		FactoryNamed: func(name string, info core.LoopInfo) (core.Scheduler, error) {
			s, err := core.NewAIDAuto(info, 16, 0.8, 64, 0)
			if err != nil {
				return nil, err
			}
			autos = append(autos, s)
			return s, nil
		},
	}
	if _, err := sim.RunProgram(cfg, program); err != nil {
		log.Fatal(err)
	}
	names := []string{}
	for _, ph := range program.Phases {
		for r := 0; r < ph.Reps; r++ {
			names = append(names, ph.Loop.Name)
		}
	}
	for i, a := range autos {
		irregularPick, cv, ok := a.Decision()
		verdict := "uniform   -> hybrid path"
		if irregularPick {
			verdict = "irregular -> dynamic path"
		}
		fmt.Printf("loop %2d %-18s CV %.3f  %s (decided=%v)\n", i, names[i], cv, verdict, ok)
	}
}
