// Observe: the flight-recorder subsystem end to end, on one multi-tenant
// run. Three loops — two batch tenants and a weighted interactive one —
// share a metrics-enabled registry; while they run, a scraper goroutine
// samples the fleet counters the way a Prometheus endpoint would. After the
// barriers release the example prints each loop's counter snapshot (chunks,
// steals by provenance tier, credit traffic, busy/sched/idle split), a few
// lines of the Prometheus text rendering, and finally the offline analyzer's
// report — per-thread Gantt strips and the steal matrix — rebuilt from the
// same run's captured event tape.
//
// Run with: go run ./examples/observe
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rt"
)

func spin(units int) float64 {
	x := 1.0
	for i := 0; i < units; i++ {
		x += 1.0 / (x + float64(i))
	}
	return x
}

func main() {
	reg, err := rt.NewRegistry(rt.RegistryConfig{Metrics: true}) // Platform A: 8 workers
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()

	var sink atomic.Int64
	body := func(_ int, lo, hi int64) {
		var acc float64
		for i := lo; i < hi; i++ {
			acc += spin(300)
		}
		sink.Add(int64(acc) + (hi - lo))
	}
	submit := func(name string, n int64, weight int, sched rt.Schedule) *rt.Loop {
		l, err := reg.Submit(rt.LoopRequest{
			Name: name, N: n, Schedule: sched, Weight: weight, Body: body,
			Capture: true, CaptureCompact: true, CaptureMaxEvents: 512,
		})
		if err != nil {
			log.Fatal(err)
		}
		return l
	}

	// A live scraper: deltas between successive fleet snapshots, the shape
	// a /metrics poller sees mid-run.
	stopScrape := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		prev := reg.MetricsSnapshot()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopScrape:
				return
			case <-tick.C:
				cur := reg.MetricsSnapshot()
				d := cur.Delta(prev)
				prev = cur
				fmt.Printf("scrape: +%d chunks, +%d iters, +%d steals in the last 100ms\n",
					d.Chunks, d.Iters, d.Steals())
			}
		}
	}()

	batchA := submit("batch-a", 200_000, 1, rt.Schedule{Kind: rt.KindAIDDynamic, Reweight: true})
	batchB := submit("batch-b", 200_000, 1, rt.Schedule{Kind: rt.KindDynamic, Chunk: 16})
	interactive := submit("interactive", 2_000, 8, rt.Schedule{Kind: rt.KindDynamic, Chunk: 8})

	loops := []*rt.Loop{batchA, batchB, interactive}
	names := []string{"batch-a", "batch-b", "interactive"}
	statsOf := make([]rt.LoopStats, len(loops))
	for i, l := range loops {
		statsOf[i] = l.Wait()
	}
	close(stopScrape)
	<-scrapeDone

	fmt.Println("\nper-loop counters:")
	fmt.Printf("%-12s %8s %9s %6s %8s %7s %9s %9s %9s\n",
		"loop", "chunks", "iters", "steals", "credit", "reweigh", "busy-ms", "sched-ms", "idle-ms")
	for i, st := range statsOf {
		m := st.Metrics
		fmt.Printf("%-12s %8d %9d %6d %8d %7d %9.2f %9.2f %9.2f\n",
			names[i], m.Chunks, m.Iters, m.Steals(), m.CreditClaimed, m.Reweights,
			float64(m.BusyNs)/1e6, float64(m.SchedNs)/1e6, float64(m.IdleNs)/1e6)
	}

	// The same totals in the wire format a scraper fetches.
	var prom strings.Builder
	if err := obs.WritePrometheus(&prom, "", reg.MetricsSnapshot()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPrometheus rendering (sample lines):")
	for _, line := range strings.Split(prom.String(), "\n") {
		if strings.HasPrefix(line, "aid_chunks_total") ||
			strings.HasPrefix(line, "aid_steals_total") ||
			strings.HasPrefix(line, "aid_occupancy_ns_total") {
			fmt.Println("  " + line)
		}
	}

	// Offline: rebuild the run from its captured tape and render the
	// analyzer's report — the view `aidstat run.jsonl` prints.
	rec, err := reg.BuildRecord(loops...)
	if err != nil {
		log.Fatal(err)
	}
	a, err := obs.Analyze(rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\naidstat report of the captured tape:")
	if err := obs.WriteReport(os.Stdout, rec, a); err != nil {
		log.Fatal(err)
	}
}
