// benchjson converts `go test -bench` text output into a machine-readable
// JSON document, and validates such documents — the CI glue that turns the
// bench-short smoke run into a committed, diffable artifact
// (BENCH_multiloop.json).
//
// Usage:
//
//	go test -bench=. ./... > bench.txt
//	benchjson bench.txt                 # JSON to stdout
//	benchjson -o BENCH.json bench.txt   # write to file
//	benchjson -check BENCH.json         # validate: parses and is non-empty
//
// With no file argument the benchmark text is read from stdin. The parser
// accepts the standard line format
//
//	BenchmarkName/sub=1-8   	 123	 456 ns/op	 789 B/op	 2 allocs/op
//
// keeping every value/unit pair (including custom b.ReportMetric units such
// as iters/s); non-benchmark lines are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: the name (with -cpu suffix preserved), the
// run count, and every reported metric keyed by unit.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	check := flag.String("check", "", "validate an existing JSON file and exit")
	flag.Parse()

	if *check != "" {
		if err := checkFile(*check); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	results, err := parse(in)
	if err == nil && len(results) == 0 {
		err = fmt.Errorf("no benchmark lines found")
	}
	if err == nil {
		err = emit(results, *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse extracts benchmark result lines from go test -bench output.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, run count, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			res.Metrics[fields[i+1]] = v
		}
		if ok {
			results = append(results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

func emit(results []Result, path string) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// checkFile validates that path holds a non-empty benchjson document whose
// entries all carry a name and at least one metric.
func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(results) == 0 {
		return fmt.Errorf("%s: no benchmark entries", path)
	}
	for i, r := range results {
		if r.Name == "" {
			return fmt.Errorf("%s: entry %d has no name", path, i)
		}
		if len(r.Metrics) == 0 {
			return fmt.Errorf("%s: entry %q has no metrics", path, r.Name)
		}
	}
	return nil
}
