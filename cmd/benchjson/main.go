// benchjson converts `go test -bench` text output into a machine-readable
// JSON document, and validates such documents — the CI glue that turns the
// bench-short smoke run into a committed, diffable artifact
// (BENCH_multiloop.json).
//
// Usage:
//
//	go test -bench=. ./... > bench.txt
//	benchjson bench.txt                 # JSON to stdout
//	benchjson -o BENCH.json bench.txt   # write to file
//	benchjson -check BENCH.json         # validate: parses and is non-empty
//
//	benchjson -check NEW.json -baseline OLD.json
//	  # additionally diff against a committed baseline: fail when any
//	  # benchmark present in both files regressed its allocs/op — the
//	  # allocation trajectory is only allowed to go down
//
// With no file argument the benchmark text is read from stdin. The parser
// accepts the standard line format
//
//	BenchmarkName/sub=1-8   	 123	 456 ns/op	 789 B/op	 2 allocs/op
//
// keeping every value/unit pair (including the -benchmem B/op and allocs/op
// columns and custom b.ReportMetric units such as iters/s); non-benchmark
// lines are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: the name (with -cpu suffix preserved), the
// run count, and every reported metric keyed by unit.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	check := flag.String("check", "", "validate an existing JSON file and exit")
	baseline := flag.String("baseline", "", "with -check: fail if allocs/op regressed versus this baseline JSON")
	flag.Parse()

	if *baseline != "" && *check == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -baseline requires -check")
		os.Exit(2)
	}
	if *check != "" {
		err := checkFile(*check)
		if err == nil && *baseline != "" {
			err = checkBaseline(*check, *baseline)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	results, err := parse(in)
	if err == nil && len(results) == 0 {
		err = fmt.Errorf("no benchmark lines found")
	}
	if err == nil {
		err = emit(results, *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse extracts benchmark result lines from go test -bench output.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, run count, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			res.Metrics[fields[i+1]] = v
		}
		if ok {
			results = append(results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

func emit(results []Result, path string) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// checkFile validates that path holds a non-empty benchjson document whose
// entries all carry a name and at least one metric.
func checkFile(path string) error {
	_, err := loadResults(path)
	return err
}

func loadResults(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark entries", path)
	}
	for i, r := range results {
		if r.Name == "" {
			return nil, fmt.Errorf("%s: entry %d has no name", path, i)
		}
		if len(r.Metrics) == 0 {
			return nil, fmt.Errorf("%s: entry %q has no metrics", path, r.Name)
		}
	}
	return results, nil
}

// checkBaseline diffs the allocs/op columns of two benchjson documents and
// fails on any regression: a benchmark present in both files must not report
// more allocs/op than the committed baseline. Benchmarks present in only one
// file are ignored (suites may gain or lose rows), as are entries without an
// allocs/op metric (runs taken without -benchmem carry no allocation data to
// compare). Allocation counts are deterministic, so the comparison is exact
// — there is no noise tolerance to tune.
func checkBaseline(newPath, basePath string) error {
	nres, err := loadResults(newPath)
	if err != nil {
		return err
	}
	bres, err := loadResults(basePath)
	if err != nil {
		return err
	}
	base := make(map[string]float64, len(bres))
	for _, r := range bres {
		if a, ok := r.Metrics["allocs/op"]; ok {
			base[r.Name] = a
		}
	}
	var regressions []string
	compared := 0
	for _, r := range nres {
		a, ok := r.Metrics["allocs/op"]
		if !ok {
			continue
		}
		old, ok := base[r.Name]
		if !ok {
			continue
		}
		compared++
		if a > old {
			regressions = append(regressions,
				fmt.Sprintf("  %s: %g allocs/op (baseline %g)", r.Name, a, old))
		}
	}
	if compared == 0 {
		return fmt.Errorf("%s vs %s: no common benchmarks with allocs/op to compare", newPath, basePath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%s: allocs/op regressed versus %s:\n%s",
			newPath, basePath, strings.Join(regressions, "\n"))
	}
	return nil
}
