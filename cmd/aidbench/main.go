// aidbench regenerates the paper's evaluation tables and figures on the
// modeled platforms.
//
// Usage:
//
//	aidbench -exp fig6              # Fig 6: 21 apps x 7 schemes, Platform A
//	aidbench -exp fig7              # Fig 7: same on Platform B
//	aidbench -exp table2            # Table 2: AID gains (runs fig6 + fig7)
//	aidbench -exp fig8              # Fig 8: chunk sensitivity sweep
//	aidbench -exp fig9              # Fig 9a/9b: offline-SF comparison
//	aidbench -exp fig9c             # Fig 9c: blackscholes SF series
//	aidbench -exp guided            # guided vs static/dynamic summary
//	aidbench -exp hybridpct         # AID-hybrid percentage sweep
//	aidbench -exp zoo               # platform zoo: makespan + energy per preset
//	aidbench -exp all               # everything above, in order
//
// Add -csv to emit comma-separated values for fig6/fig7.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/amp"
	"repro/internal/exps"
	"repro/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig6|fig7|table2|fig8|fig9|fig9c|guided|hybridpct|zoo|all")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table (fig6/fig7)")
	flag.Parse()

	if err := run(*exp, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "aidbench:", err)
		os.Exit(1)
	}
}

func run(exp string, csv bool) error {
	switch exp {
	case "fig6":
		return fig(amp.PlatformA(), csv)
	case "fig7":
		return fig(amp.PlatformB(), csv)
	case "table2":
		return table2()
	case "fig8":
		f, err := exps.RunFig8()
		if err != nil {
			return err
		}
		fmt.Print(f.Render())
		return nil
	case "fig9":
		for _, pl := range []*amp.Platform{amp.PlatformA(), amp.PlatformB()} {
			f, err := exps.RunFig9(pl)
			if err != nil {
				return err
			}
			fmt.Print(f.Render())
			fmt.Println()
		}
		return nil
	case "fig9c":
		f, err := exps.RunFig9c(100)
		if err != nil {
			return err
		}
		fmt.Print(f.Render())
		return nil
	case "guided":
		for _, pl := range []*amp.Platform{amp.PlatformA(), amp.PlatformB()} {
			g, err := exps.RunGuided(pl)
			if err != nil {
				return err
			}
			fmt.Print(g.Render())
			fmt.Println()
		}
		return nil
	case "hybridpct":
		h, err := exps.RunHybridPct(amp.PlatformA(), workloads.All())
		if err != nil {
			return err
		}
		fmt.Print(h.Render())
		return nil
	case "zoo":
		z, err := exps.RunZoo()
		if err != nil {
			return err
		}
		fmt.Print(z.Render())
		return nil
	case "all":
		for _, e := range []string{"fig6", "fig7", "table2", "fig8", "fig9", "fig9c", "guided", "hybridpct", "zoo"} {
			fmt.Printf("==== %s ====\n", e)
			if err := run(e, csv); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func fig(pl *amp.Platform, csv bool) error {
	f, err := exps.RunFig6(pl)
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(f.CSV())
	} else {
		fmt.Print(f.Render())
	}
	return nil
}

func table2() error {
	fa, err := exps.RunFig6(amp.PlatformA())
	if err != nil {
		return err
	}
	fb, err := exps.RunFig6(amp.PlatformB())
	if err != nil {
		return err
	}
	fmt.Print(exps.RunTable2(fa, fb).Render())
	return nil
}
