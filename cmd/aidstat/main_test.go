package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/fair"
	"repro/internal/sim"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the committed golden files")

// goldenRecord builds the deterministic two-tenant sim record behind the
// golden fixture. Any change to this construction (or to the simulator's
// event stream or the chrome exporter) must come with a regenerated fixture
// (go test ./cmd/aidstat/ -run Golden -update) and an eyeball of the diff.
func goldenRecord(t testing.TB) *trace.Record {
	t.Helper()
	rec := trace.NewRecorder()
	cfg := sim.Config{
		Platform: amp.PlatformA(),
		NThreads: 8,
		Binding:  amp.BindBS,
		Factory: func(info core.LoopInfo) (core.Scheduler, error) {
			return core.NewAIDDynamic(info, 8, 64)
		},
		Recorder: rec,
	}
	specs := []sim.LoopSpec{
		{Name: "alpha", NI: 3000, Cost: sim.UniformCost{PerIter: 700}},
		{Name: "beta", NI: 2000, Cost: sim.LinearCost{Base: 300, Slope: 0.5}, Weight: 2, Arrive: 200_000},
	}
	if _, err := sim.RunLoops(cfg, specs, fair.NewWeightedRoundRobin(0), 0); err != nil {
		t.Fatal(err)
	}
	return rec.Record()
}

// writeRecordFile serializes the record to a temp JSONL file for the CLI.
func writeRecordFile(t *testing.T, rec *trace.Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeJSONL(f, rec); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportSmoke(t *testing.T) {
	path := writeRecordFile(t, goldenRecord(t))
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"engine=sim", "imbalance:", `loop "alpha"`, `loop "beta"`, "steals by tier"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report lacks %q:\n%s", want, out.String())
		}
	}
}

// TestChromeGolden pins the chrome export byte-for-byte: the same recorded
// run must always export to the same artifact (the determinism the issue
// requires), and unintentional format drift fails CI.
func TestChromeGolden(t *testing.T) {
	path := writeRecordFile(t, goldenRecord(t))
	var out bytes.Buffer
	if err := run([]string{"-export", "chrome", path}, &out); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("chrome export deviates from %s (%d vs %d bytes); regenerate with -update if intended",
			golden, out.Len(), len(want))
	}
}

func TestRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-export", "paraview", "x.jsonl"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown export format accepted")
	}
	if err := run([]string{}, &bytes.Buffer{}); err == nil {
		t.Error("missing record path accepted")
	}
}
