// aidstat is the offline analyzer of the flight-recorder subsystem: it
// reads a serialized run record (the JSONL produced by aidtrace -record,
// aidserve -record or the Recorder API) and reports how the run actually
// behaved — per-thread utilization with a Gantt strip, the load-imbalance
// figure, the steal matrix bucketed by topology tier, and each loop's phase
// transitions and SF trajectory. It can also convert records for interactive
// inspection in chrome://tracing or Perfetto.
//
// Usage:
//
//	aidstat run.jsonl                         # text report to stdout
//	aidstat -export chrome -o out.json run.jsonl
//	                                          # Chrome trace-event JSON
//
// The chrome export is byte-deterministic for a given record, so exported
// artifacts diff cleanly across runs of the tool.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aidstat:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("aidstat", flag.ContinueOnError)
	export := fs.String("export", "", `export format instead of the text report: "chrome"`)
	out := fs.String("o", "", "output file for -export (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: aidstat [-export chrome [-o out.json]] record.jsonl")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	rec, err := trace.DecodeJSONL(f)
	if err != nil {
		return fmt.Errorf("reading %s: %w", fs.Arg(0), err)
	}
	switch *export {
	case "":
		a, err := obs.Analyze(rec)
		if err != nil {
			return err
		}
		return obs.WriteReport(stdout, rec, a)
	case "chrome":
		w := stdout
		if *out != "" {
			of, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer of.Close()
			w = of
		}
		return obs.ExportChrome(w, rec)
	default:
		return fmt.Errorf("unknown export format %q (supported: chrome)", *export)
	}
}
