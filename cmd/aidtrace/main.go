// aidtrace renders Paraver-style execution traces for the paper's trace
// figures and for arbitrary workload/schedule combinations, and fronts the
// record & replay subsystem (internal/replay): runs can be serialized to
// JSONL, re-executed deterministically, counterfactually re-scheduled, and
// diffed for regressions.
//
// Usage:
//
//	aidtrace -fig 1                 # Fig 1: EP, static, 2B-2S vs 4S
//	aidtrace -fig 4                 # Fig 4: EP, AID-static vs AID-hybrid(80%)
//	aidtrace -app EP -sched aid-dynamic,1,5 -binding BS
//
//	aidtrace -app EP -sched dynamic,1 -record run.jsonl
//	                                # record a simulated run (first loop of
//	                                # the workload) as a serialized trace
//	aidtrace -app EP -engine rt -record run.jsonl
//	                                # record the real-goroutine engine
//	                                # executing a synthetic body instead
//	aidtrace -replay run.jsonl [-o replayed.jsonl]
//	                                # exact replay: re-execute the recorded
//	                                # chunk assignments in virtual time and
//	                                # verify coverage (and, for sim records,
//	                                # the exact makespan and event times)
//	aidtrace -whatif run.jsonl -sched aid-static [-policy wrr] [-o out.jsonl]
//	                                # keep the recorded workload, swap the
//	                                # scheduler/policy, compare to the record
//	aidtrace -diff a.jsonl,b.jsonl [-tol 2]
//	                                # regression report between two runs;
//	                                # exits non-zero if regressions exceed
//	                                # the tolerance (CI gate)
//
// In the free-form and record modes, -app names any workload (its first
// parallel loop is used), -sched uses the GOOMP_SCHEDULE syntax and
// -binding is SB/BS.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/amp"
	"repro/internal/exps"
	"repro/internal/replay"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	figNo := flag.Int("fig", 0, "render a paper figure: 1 or 4")
	app := flag.String("app", "", "workload name for free-form tracing (e.g. EP)")
	schedText := flag.String("sched", "aid-static", "schedule in GOOMP_SCHEDULE syntax")
	bindingText := flag.String("binding", "BS", "thread binding: SB or BS")
	platform := flag.String("platform", "A", "platform: a registry name or a platform JSON file")
	engine := flag.String("engine", "sim", "record engine: sim (virtual time) or rt (real goroutines)")
	recordPath := flag.String("record", "", "record the run to this JSONL file")
	replayPath := flag.String("replay", "", "exact-replay the given record file")
	whatifPath := flag.String("whatif", "", "what-if replay the given record file (see -sched/-policy)")
	diffPaths := flag.String("diff", "", "diff two record files: a.jsonl,b.jsonl")
	policy := flag.String("policy", "", "what-if fairness policy for multi-loop records: wrr, fcfs or sf-aware")
	outPath := flag.String("o", "", "write the replayed run's record to this JSONL file")
	tol := flag.Float64("tol", 2.0, "regression tolerance in percent for -diff and the -whatif report")
	flag.Parse()

	schedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "sched" {
			schedSet = true
		}
	})

	var err error
	switch {
	case *diffPaths != "":
		err = runDiff(*diffPaths, *tol)
	case *replayPath != "":
		err = runReplay(*replayPath, *outPath)
	case *whatifPath != "":
		override := ""
		if schedSet {
			override = *schedText
		}
		err = runWhatIf(*whatifPath, override, *policy, *outPath, *tol)
	case *recordPath != "":
		err = runRecord(*recordPath, *app, *schedText, *bindingText, *platform, *engine)
	default:
		err = run(*figNo, *app, *schedText, *bindingText, *platform)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aidtrace:", err)
		os.Exit(1)
	}
}

// resolved is the outcome of mapping the free-form flags to an executable
// configuration: the named workload's first parallel loop on the selected
// platform.
type resolved struct {
	workload string
	spec     sim.LoopSpec
	sched    rt.Schedule
	binding  amp.Binding
	pl       *amp.Platform
}

func resolveWorkload(app, schedText, bindingText, platform string) (resolved, error) {
	w, ok := workloads.ByName(app)
	if !ok {
		var names []string
		for _, x := range workloads.All() {
			names = append(names, x.Name)
		}
		return resolved{}, fmt.Errorf("unknown workload %q; available: %s", app, strings.Join(names, ", "))
	}
	sched, err := rt.ParseSchedule(schedText)
	if err != nil {
		return resolved{}, err
	}
	var binding amp.Binding
	switch strings.ToUpper(bindingText) {
	case "SB":
		binding = amp.BindSB
	case "BS":
		binding = amp.BindBS
	default:
		return resolved{}, fmt.Errorf("binding must be SB or BS, got %q", bindingText)
	}
	pl, err := amp.Resolve(platform)
	if err != nil {
		return resolved{}, err
	}
	loops := w.Program.Loops()
	if len(loops) == 0 {
		return resolved{}, fmt.Errorf("workload %s has no parallel loops", app)
	}
	return resolved{workload: w.Name, spec: loops[0], sched: sched, binding: binding, pl: pl}, nil
}

func writeRecord(path string, rec *trace.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.EncodeJSONL(f, rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readRecord(path string) (*trace.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.DecodeJSONL(f)
}

// runRecord records one loop execution — simulated (virtual time, exact
// replayability) or real (rt engine, wall-clock capture) — to a JSONL file.
func runRecord(path, app, schedText, bindingText, platform, engine string) error {
	if app == "" {
		return fmt.Errorf("-record needs -app <workload>")
	}
	r, err := resolveWorkload(app, schedText, bindingText, platform)
	if err != nil {
		return err
	}
	var rec *trace.Record
	switch engine {
	case "sim":
		recorder := trace.NewRecorder()
		cfg := sim.Config{
			Platform: r.pl,
			NThreads: r.pl.NumCores(),
			Binding:  r.binding,
			Factory:  r.sched.Factory(),
			Trace:    trace.New(r.pl.NumCores()),
			Recorder: recorder,
		}
		res, err := sim.RunLoop(cfg, r.spec, 0)
		if err != nil {
			return err
		}
		recorder.SetLoopSchedule(0, r.sched.Canonical())
		rec = recorder.Record()
		fmt.Printf("recorded %s / loop %q / %s / %s / Platform %s: makespan %d ns, %d events\n",
			r.workload, r.spec.Name, r.sched, r.binding, r.pl.Name, res.End-res.Start, len(rec.Events))
	case "rt":
		// The real engine runs an arbitrary Go body; synthesize one whose
		// per-chunk work follows the workload's cost model (scaled down so
		// the demo completes quickly) and which yields between chunks so
		// the whole fleet participates even on GOMAXPROCS=1.
		team, err := rt.NewTeam(rt.TeamConfig{
			Platform: r.pl,
			Binding:  r.binding,
			Schedule: r.sched,
			Profile:  r.spec.Profile,
		})
		if err != nil {
			return err
		}
		cost := r.spec.Cost
		sinks := make([]struct {
			v float64
			_ [56]byte
		}, team.NThreads())
		rec, _, err = team.RecordParallelFor(r.spec.Name, r.spec.NI, func(tid int, lo, hi int64) {
			spin := int64(cost.RangeUnits(lo, hi) / 1000)
			s := 0.0
			for k := int64(0); k < spin; k++ {
				s += float64(k&7) * 0.5
			}
			sinks[tid].v += s // keeps the spin from being optimized away
			runtime.Gosched()
		})
		if err != nil {
			return err
		}
		fmt.Printf("recorded %s / loop %q / %s / %s / Platform %s (rt engine): makespan %d ns, %d events\n",
			r.workload, r.spec.Name, r.sched, r.binding, r.pl.Name, rec.MakespanNs, len(rec.Events))
	default:
		return fmt.Errorf("engine must be sim or rt, got %q", engine)
	}
	if err := writeRecord(path, rec); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runReplay exact-replays a record file and reports the verification.
func runReplay(path, outPath string) error {
	rec, err := readRecord(path)
	if err != nil {
		return err
	}
	res, err := replay.Exact(rec)
	if err != nil {
		return err
	}
	verified := "coverage and grant sequence verified"
	if rec.Engine == "sim" {
		verified = "coverage, event times and makespan verified exactly"
	}
	fmt.Printf("exact replay of %s (%s engine, %d loops, %d events): %s\n",
		path, rec.Engine, len(rec.Loops), len(rec.Events), verified)
	fmt.Printf("makespan: recorded %d ns, replayed %d ns\n", rec.MakespanNs, res.MakespanNs)
	if tr := res.Record.Trace(); tr != nil {
		fmt.Print(tr.Render(88))
	}
	if outPath != "" {
		if err := writeRecord(outPath, res.Record); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return nil
}

// runWhatIf re-executes the recorded workload under a swapped configuration
// and diffs the counterfactual against the record.
func runWhatIf(path, schedOverride, policy, outPath string, tolPct float64) error {
	rec, err := readRecord(path)
	if err != nil {
		return err
	}
	res, err := replay.WhatIf(rec, replay.WhatIfConfig{Schedule: schedOverride, Policy: policy})
	if err != nil {
		return err
	}
	what := "recorded schedule"
	if schedOverride != "" {
		what = fmt.Sprintf("schedule %q", schedOverride)
	}
	fmt.Printf("what-if replay of %s under %s:\n", path, what)
	// The diff baseline must live in the same time domain as the
	// counterfactual: a sim record already does, but an rt record carries
	// wall-clock measurements, so re-run its recorded schedule in virtual
	// time and diff the two simulated runs.
	baseline := rec
	if rec.Engine != "sim" {
		base, err := replay.WhatIf(rec, replay.WhatIfConfig{Policy: policy})
		if err != nil {
			return err
		}
		baseline = base.Record
		fmt.Printf("baseline: recorded schedule re-run in virtual time, makespan %d ns (recorded wall clock: %d ns)\n",
			baseline.MakespanNs, rec.MakespanNs)
	}
	fmt.Printf("makespan: baseline %d ns -> what-if %d ns\n", baseline.MakespanNs, res.MakespanNs)
	fmt.Print(replay.Diff(baseline, res.Record, tolPct))
	if tr := res.Record.Trace(); tr != nil {
		fmt.Print(tr.Render(88))
	}
	if outPath != "" {
		if err := writeRecord(outPath, res.Record); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return nil
}

// runDiff compares two record files and fails (non-zero exit) on
// regressions, so it can gate CI.
func runDiff(paths string, tolPct float64) error {
	parts := strings.Split(paths, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-diff wants two files: a.jsonl,b.jsonl")
	}
	a, err := readRecord(strings.TrimSpace(parts[0]))
	if err != nil {
		return err
	}
	b, err := readRecord(strings.TrimSpace(parts[1]))
	if err != nil {
		return err
	}
	rep := replay.Diff(a, b, tolPct)
	fmt.Print(rep)
	if rep.Regressions > 0 {
		return fmt.Errorf("%d regression(s)", rep.Regressions)
	}
	return nil
}

func run(figNo int, app, schedText, bindingText, platform string) error {
	switch figNo {
	case 1:
		a, b, err := exps.RunFig1()
		if err != nil {
			return err
		}
		fmt.Println(a.Render())
		fmt.Println(b.Render())
		return nil
	case 4:
		a, b, err := exps.RunFig4()
		if err != nil {
			return err
		}
		fmt.Println(a.Render())
		fmt.Println(b.Render())
		return nil
	case 0:
		// free-form below
	default:
		return fmt.Errorf("unknown figure %d (supported: 1, 4)", figNo)
	}
	if app == "" {
		return fmt.Errorf("need -fig 1, -fig 4, -app <workload>, or a -record/-replay/-whatif/-diff invocation")
	}
	r, err := resolveWorkload(app, schedText, bindingText, platform)
	if err != nil {
		return err
	}
	tr := trace.New(r.pl.NumCores())
	cfg := sim.Config{
		Platform: r.pl,
		NThreads: r.pl.NumCores(),
		Binding:  r.binding,
		Factory:  r.sched.Factory(),
		Trace:    tr,
	}
	res, err := sim.RunLoop(cfg, r.spec, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%s / loop %q / %s / %s binding / Platform %s (completion: %d ns)\n",
		r.workload, r.spec.Name, r.sched, r.binding, r.pl.Name, res.End-res.Start)
	fmt.Print(tr.Render(88))
	return nil
}
