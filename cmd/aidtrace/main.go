// aidtrace renders Paraver-style execution traces for the paper's trace
// figures and for arbitrary workload/schedule combinations.
//
// Usage:
//
//	aidtrace -fig 1                 # Fig 1: EP, static, 2B-2S vs 4S
//	aidtrace -fig 4                 # Fig 4: EP, AID-static vs AID-hybrid(80%)
//	aidtrace -app EP -sched aid-dynamic,1,5 -binding BS
//
// In the free-form mode, -app names any workload (its first parallel loop
// is traced), -sched uses the GOOMP_SCHEDULE syntax and -binding is SB/BS.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/amp"
	"repro/internal/exps"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	figNo := flag.Int("fig", 0, "render a paper figure: 1 or 4")
	app := flag.String("app", "", "workload name for free-form tracing (e.g. EP)")
	schedText := flag.String("sched", "aid-static", "schedule in GOOMP_SCHEDULE syntax")
	bindingText := flag.String("binding", "BS", "thread binding: SB or BS")
	platform := flag.String("platform", "A", "platform: A or B")
	flag.Parse()

	if err := run(*figNo, *app, *schedText, *bindingText, *platform); err != nil {
		fmt.Fprintln(os.Stderr, "aidtrace:", err)
		os.Exit(1)
	}
}

func run(figNo int, app, schedText, bindingText, platform string) error {
	switch figNo {
	case 1:
		a, b, err := exps.RunFig1()
		if err != nil {
			return err
		}
		fmt.Println(a.Render())
		fmt.Println(b.Render())
		return nil
	case 4:
		a, b, err := exps.RunFig4()
		if err != nil {
			return err
		}
		fmt.Println(a.Render())
		fmt.Println(b.Render())
		return nil
	case 0:
		// free-form below
	default:
		return fmt.Errorf("unknown figure %d (supported: 1, 4)", figNo)
	}
	if app == "" {
		return fmt.Errorf("need -fig 1, -fig 4, or -app <workload>")
	}
	w, ok := workloads.ByName(app)
	if !ok {
		var names []string
		for _, x := range workloads.All() {
			names = append(names, x.Name)
		}
		return fmt.Errorf("unknown workload %q; available: %s", app, strings.Join(names, ", "))
	}
	sched, err := rt.ParseSchedule(schedText)
	if err != nil {
		return err
	}
	var binding amp.Binding
	switch strings.ToUpper(bindingText) {
	case "SB":
		binding = amp.BindSB
	case "BS":
		binding = amp.BindBS
	default:
		return fmt.Errorf("binding must be SB or BS, got %q", bindingText)
	}
	pl := amp.PlatformA()
	if strings.EqualFold(platform, "B") {
		pl = amp.PlatformB()
	}
	loops := w.Program.Loops()
	if len(loops) == 0 {
		return fmt.Errorf("workload %s has no parallel loops", app)
	}
	spec := loops[0]
	tr := trace.New(pl.NumCores())
	cfg := sim.Config{
		Platform: pl,
		NThreads: pl.NumCores(),
		Binding:  binding,
		Factory:  sched.Factory(),
		Trace:    tr,
	}
	res, err := sim.RunLoop(cfg, spec, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%s / loop %q / %s / %s binding / Platform %s (completion: %d ns)\n",
		w.Name, spec.Name, sched, binding, pl.Name, res.End-res.Start)
	fmt.Print(tr.Render(88))
	return nil
}
