// aidsim runs ad-hoc parallel-loop simulations: a single loop described on
// the command line, executed on a modeled platform under one or all
// schedules, with optional tracing and migration injection. It is the
// exploration companion to the fixed experiments of aidbench.
//
// Examples:
//
//	aidsim -ni 4096 -cost 100000 -ilp 0.6 -mem 0.2
//	aidsim -platform B -sched aid-dynamic,1,5 -trace
//	aidsim -platform Tri -threads 8 -sched all
//	aidsim -migrate 0:1:1000000 -sched aid-dynamic,1,20
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/amp"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	platform := flag.String("platform", "A", "platform: a registry name (aidsim -platform list) or a platform JSON file")
	threads := flag.Int("threads", 0, "worker threads (default: all cores)")
	bindingText := flag.String("binding", "BS", "thread binding: SB or BS")
	schedText := flag.String("sched", "all", "schedule (GOOMP_SCHEDULE syntax) or 'all'")
	ni := flag.Int64("ni", 4096, "loop trip count")
	cost := flag.Float64("cost", 100000, "work units per iteration")
	slope := flag.Float64("slope", 0, "linear cost slope (units per iteration index)")
	ilp := flag.Float64("ilp", 0.5, "instruction-level parallelism in [0,1]")
	mem := flag.Float64("mem", 0.3, "memory intensity in [0,1]")
	footprint := flag.Float64("footprint", 0.2, "per-thread working set in MB")
	showTrace := flag.Bool("trace", false, "render an execution trace")
	migrate := flag.String("migrate", "", "inject migrations: tid:cpu:atNs[,tid:cpu:atNs...]")
	flag.Parse()

	if err := run(*platform, *threads, *bindingText, *schedText, *ni, *cost, *slope,
		*ilp, *mem, *footprint, *showTrace, *migrate); err != nil {
		fmt.Fprintln(os.Stderr, "aidsim:", err)
		os.Exit(1)
	}
}

func run(platform string, threads int, bindingText, schedText string,
	ni int64, cost, slope, ilp, mem, footprint float64, showTrace bool, migrate string) error {
	if strings.EqualFold(platform, "list") {
		fmt.Println(strings.Join(amp.Names(), "\n"))
		return nil
	}
	pl, err := amp.Resolve(platform)
	if err != nil {
		return err
	}
	if threads == 0 {
		threads = pl.NumCores()
	}
	var binding amp.Binding
	switch strings.ToUpper(bindingText) {
	case "SB":
		binding = amp.BindSB
	case "BS":
		binding = amp.BindBS
	default:
		return fmt.Errorf("binding must be SB or BS, got %q", bindingText)
	}
	var costModel sim.CostModel = sim.UniformCost{PerIter: cost}
	if slope != 0 {
		costModel = sim.LinearCost{Base: cost, Slope: slope}
	}
	spec := sim.LoopSpec{
		Name:    "aidsim-loop",
		NI:      ni,
		Profile: amp.Profile{ILP: ilp, MemIntensity: mem, FootprintMB: footprint},
		Cost:    costModel,
	}
	migrations, err := parseMigrations(migrate)
	if err != nil {
		return err
	}

	var schedules []rt.Schedule
	if schedText == "all" {
		schedules = []rt.Schedule{
			{Kind: rt.KindStatic},
			{Kind: rt.KindDynamic},
			{Kind: rt.KindGuided},
			{Kind: rt.KindAIDStatic},
			{Kind: rt.KindAIDHybrid},
			{Kind: rt.KindAIDDynamic},
			{Kind: rt.KindAIDAuto},
			{Kind: rt.KindWorkSteal, Chunk: 16},
		}
	} else {
		s, err := rt.ParseSchedule(schedText)
		if err != nil {
			return err
		}
		schedules = []rt.Schedule{s}
	}

	fmt.Printf("platform %s, %d threads, %s binding, NI=%d, profile{ILP %.2f, mem %.2f, fp %.2fMB}\n",
		pl.Name, threads, binding, ni, ilp, mem, footprint)
	if sf, err := sim.MeasureLoopSF(pl, spec); err == nil {
		fmt.Printf("offline SF: %.2f\n", sf)
	}
	for _, sched := range schedules {
		var tr *trace.Trace
		if showTrace {
			tr = trace.New(threads)
		}
		cfg := sim.Config{
			Platform:   pl,
			NThreads:   threads,
			Binding:    binding,
			Factory:    sched.Factory(),
			Migrations: migrations,
			Trace:      tr,
		}
		res, err := sim.RunLoop(cfg, spec, 0)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %12.3f ms   pool accesses %7d   sched time %8.3f ms\n",
			sched, float64(res.End-res.Start)/1e6, res.PoolAccesses, float64(res.SchedNs)/1e6)
		if tr != nil {
			fmt.Print(tr.Render(88))
		}
	}
	return nil
}

// parseMigrations parses "tid:cpu:atNs" triples separated by commas.
func parseMigrations(text string) ([]sim.Migration, error) {
	if text == "" {
		return nil, nil
	}
	var out []sim.Migration
	for _, part := range strings.Split(text, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad migration %q, want tid:cpu:atNs", part)
		}
		tid, err1 := strconv.Atoi(fields[0])
		cpu, err2 := strconv.Atoi(fields[1])
		at, err3 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("bad migration %q, want tid:cpu:atNs", part)
		}
		out = append(out, sim.Migration{AtNs: at, Tid: tid, ToCPU: cpu})
	}
	return out, nil
}
