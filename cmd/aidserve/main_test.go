package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/amp"
	"repro/internal/fair"
	"repro/internal/replay"
	"repro/internal/rt"
	"repro/internal/sim"
)

func TestParseWeightsCyclesShortList(t *testing.T) {
	got, err := parseWeights("4,1", 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{4, 1, 4, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("parseWeights = %v, want %v", got, want)
	}
	got, err = parseWeights("", 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 1, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("default weights = %v, want %v", got, want)
	}
}

func TestParseWeightsRejectsSurplus(t *testing.T) {
	// More weights than loops used to be dropped silently; a typo'd
	// -loops then ran with the wrong tenant shares.
	if _, err := parseWeights("4,2,1", 2); err == nil {
		t.Fatal("parseWeights accepted 3 weights for 2 loops")
	}
	if _, err := parseWeights("4,0", 4); err == nil {
		t.Fatal("parseWeights accepted weight 0")
	}
	if _, err := parseWeights("4,x", 4); err == nil {
		t.Fatal("parseWeights accepted a non-integer weight")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"wrr", "fcfs", "sf-aware"} {
		p, err := parsePolicy(name)
		if err != nil || p == nil {
			t.Fatalf("parsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := parsePolicy("lifo"); err == nil {
		t.Fatal("parsePolicy accepted an unknown name")
	}
}

func TestSpanOfStaggeredArrivals(t *testing.T) {
	// Two staggered loops: the first runs [0, 10ms], the second
	// [8ms, 12ms]. The run's makespan is 12ms; the old per-loop maximum
	// of End-Start reported 10ms — the longest latency, not the span.
	results := []sim.LoopResult{
		{Start: 0, End: 10_000_000},
		{Start: 8_000_000, End: 12_000_000},
	}
	if got, want := spanOf(results), 12*time.Millisecond; got != want {
		t.Fatalf("spanOf = %v, want %v", got, want)
	}
	var maxLatency time.Duration
	for _, r := range results {
		if lat := time.Duration(r.End - r.Start); lat > maxLatency {
			maxLatency = lat
		}
	}
	if maxLatency == spanOf(results) {
		t.Fatal("test fixture does not distinguish span from max latency")
	}
}

func TestVirtualCostScalesWithSpin(t *testing.T) {
	// -spin used to be ignored under -virtual (PerIter hard-coded to
	// 10_000). The default spin must keep that cost; other values scale.
	if got := virtualCost(200).PerIter; got != 10_000 {
		t.Fatalf("virtualCost(200).PerIter = %v, want 10000", got)
	}
	if got := virtualCost(400).PerIter; got != 2*virtualCost(200).PerIter {
		t.Fatalf("virtualCost(400).PerIter = %v, want double virtualCost(200)", got)
	}
}

func TestReportMedianInterpolates(t *testing.T) {
	// Even-length latency sets: the median is the central average, not
	// the upper-middle element the old sorted[len/2] picked.
	var b bytes.Buffer
	lats := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond,
		30 * time.Millisecond, 40 * time.Millisecond}
	report(&b, "test", []int{1, 1, 1, 1}, lats, 4, 40*time.Millisecond)
	out := b.String()
	if !strings.Contains(out, "10ms / 25ms /") {
		t.Fatalf("report median not interpolated:\n%s", out)
	}
	if strings.Contains(out, "/ 30ms /") {
		t.Fatalf("report still picks the upper-middle median:\n%s", out)
	}
}

func testServeOpts(virtual bool) serveOpts {
	return serveOpts{
		kind: "poisson", rate: 400, duration: 250 * time.Millisecond, seed: 7,
		classesCSV: "gold:8,bronze:1", maxPending: 32, shed: true,
		iters: 2000, threads: 4, pl: amp.PlatformA(), schedText: "aid-dynamic,1,5",
		policyName: "wrr", spin: 20, virtual: virtual,
	}
}

func TestServeVirtualDeterministic(t *testing.T) {
	o := testServeOpts(true)
	classes, err := fair.ParseClasses(o.classesCSV)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := rt.ParseSchedule(o.schedText)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *serveSummary {
		policy, err := parsePolicy(o.policyName)
		if err != nil {
			t.Fatal(err)
		}
		s, err := serveVirtual(o, classes, sched, policy)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if a.admitted == 0 {
		t.Fatal("no arrivals admitted")
	}
	if a.admitted != b.admitted || a.elapsed != b.elapsed {
		t.Fatalf("virtual serve not deterministic: %d/%v vs %d/%v",
			a.admitted, a.elapsed, b.admitted, b.elapsed)
	}
	pa, _ := a.overall.Percentile(50)
	pb, _ := b.overall.Percentile(50)
	if pa != pb {
		t.Fatalf("virtual serve p50 not deterministic: %v vs %v", pa, pb)
	}
	if a.shed != 0 {
		t.Fatalf("virtual serve shed %d loops; the simulator admits everything", a.shed)
	}
}

func TestServeRealSampledRecord(t *testing.T) {
	o := testServeOpts(false)
	o.sampleEvery = 4
	o.sampleBudget = 32
	classes, err := fair.ParseClasses(o.classesCSV)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := rt.ParseSchedule(o.schedText)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := parsePolicy(o.policyName)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := serveReal(o, classes, sched, policy)
	if err != nil {
		t.Fatal(err)
	}
	if sum.admitted == 0 {
		t.Fatal("no arrivals admitted")
	}
	if sum.overall.Count() != sum.admitted {
		t.Fatalf("latency count %d != admitted %d", sum.overall.Count(), sum.admitted)
	}
	if sum.record == nil {
		t.Fatal("sampling enabled but no record built")
	}
	// The per-loop event budget must hold in what the record stores.
	perLoop := make(map[int]int)
	for _, ev := range sum.record.Events {
		perLoop[ev.Loop]++
	}
	if len(perLoop) != len(sum.record.Loops) {
		t.Fatalf("record has %d loops but events for %d", len(sum.record.Loops), len(perLoop))
	}
	for li, n := range perLoop {
		if n > o.sampleBudget {
			t.Fatalf("loop %d stored %d events, budget %d", li, n, o.sampleBudget)
		}
	}
	// A sampled, compacted, budget-trimmed record is still internally
	// consistent: its self-diff is clean.
	if rep := replay.Diff(sum.record, sum.record, 1.0); rep.Regressions > 0 {
		t.Fatalf("sampled record fails self-diff:\n%s", rep)
	}
}

// promExpoLine matches one Prometheus 0.0.4 exposition sample line.
var promExpoLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? (-?[0-9.e+-]+|NaN)$`)

// TestMetricsEndpoint scrapes the -metrics handler over httptest: the body
// must be parseable exposition text, carry the runtime counter families and
// the per-class shed counters, and report latency quantiles that agree with
// the histograms the end-of-run report prints.
func TestMetricsEndpoint(t *testing.T) {
	classes, err := fair.ParseClasses("gold:8,bronze:1")
	if err != nil {
		t.Fatal(err)
	}
	sum := newServeSummary("real", "poisson", classes)
	for i := 1; i <= 500; i++ {
		lat := float64(i) * 10_000
		sum.admitted++
		sum.overall.Add(lat)
		sum.classes[i%2].hist.Add(lat)
	}
	sum.classes[1].shed = 7
	sum.shed = 7

	// A real registry with metrics on, driven through one loop so the
	// runtime counter families are non-trivial.
	reg, err := rt.NewRegistry(rt.RegistryConfig{Platform: amp.PlatformA(), NThreads: 4, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	h, err := reg.Submit(rt.LoopRequest{
		N:        5000,
		Schedule: rt.Schedule{Kind: rt.KindAIDDynamic, Chunk: 8, Major: 64},
		Body:     func(_ int, lo, hi int64) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Wait()

	srv := httptest.NewServer(metricsHandler(reg, sum))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d:\n%s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	out := string(body)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if !promExpoLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	for _, want := range []string{
		"aid_iters_total 5000",
		"aid_workers 4",
		"aidserve_admitted_total 500",
		`aidserve_shed_total{class="gold"} 0`,
		`aidserve_shed_total{class="bronze"} 7`,
		`aidserve_latency_ns_count{class="gold"} 250`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("scrape lacks %q:\n%s", want, out)
		}
	}
	// The scraped quantiles are the report's quantiles: same histogram.
	p50, err := sum.classes[0].hist.Percentile(50)
	if err != nil {
		t.Fatal(err)
	}
	prefix := `aidserve_latency_ns{class="gold",quantile="0.5"} `
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, prefix) {
			found = true
			got, err := strconv.ParseFloat(line[len(prefix):], 64)
			if err != nil || got != p50 {
				t.Errorf("scraped p50 %q, histogram says %g (err %v)", line, p50, err)
			}
		}
	}
	if !found {
		t.Fatalf("no gold p50 quantile line in:\n%s", out)
	}
}

// TestShedAttribution pins the per-class shed accounting: with the queue
// too small for the offered load, sheds land on the class whose arrival
// was refused, and the bench line breaks them out per class.
func TestShedAttribution(t *testing.T) {
	o := testServeOpts(false)
	o.maxPending = 1
	o.rate = 2000
	classes, err := fair.ParseClasses(o.classesCSV)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := rt.ParseSchedule(o.schedText)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := parsePolicy(o.policyName)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := serveReal(o, classes, sched, policy)
	if err != nil {
		t.Fatal(err)
	}
	var byClass int64
	for _, c := range sum.classes {
		byClass += c.shed
	}
	if byClass != sum.shed {
		t.Fatalf("per-class sheds sum to %d, total says %d", byClass, sum.shed)
	}
	if sum.shed == 0 {
		t.Skip("queue of 1 never filled; timing too coarse to assert attribution")
	}
	var b bytes.Buffer
	if err := writeServeBench(&b, sum); err != nil {
		t.Fatal(err)
	}
	line := b.String()
	for _, c := range sum.classes {
		want := " shed-" + c.class.Name
		if !strings.Contains(line, want) {
			t.Errorf("bench line lacks %q: %q", want, line)
		}
	}
}

func TestWriteServeBenchFormat(t *testing.T) {
	o := testServeOpts(true)
	classes, _ := fair.ParseClasses(o.classesCSV)
	sched, _ := rt.ParseSchedule(o.schedText)
	policy, _ := parsePolicy(o.policyName)
	sum, err := serveVirtual(o, classes, sched, policy)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := writeServeBench(&b, sum); err != nil {
		t.Fatal(err)
	}
	// The line must satisfy cmd/benchjson's grammar: Benchmark prefix,
	// integer run count, then value/unit pairs.
	fields := strings.Fields(strings.TrimSpace(b.String()))
	if len(fields) < 4 || len(fields)%2 != 0 {
		t.Fatalf("bench line has %d fields: %q", len(fields), b.String())
	}
	if !strings.HasPrefix(fields[0], "Benchmark") {
		t.Fatalf("bench line name %q", fields[0])
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		t.Fatalf("bench line run count %q: %v", fields[1], err)
	}
	for i := 2; i < len(fields); i += 2 {
		if _, err := strconv.ParseFloat(fields[i], 64); err != nil {
			t.Fatalf("bench value %q: %v", fields[i], err)
		}
	}
}
