// aidserve exercises the multi-loop registry (rt.Registry) — the model of
// a server executing parallel-loop requests from many users at once — in
// two modes.
//
// The default closed-loop mode replays a fixed batch of simultaneous
// submissions against one shared worker fleet and reports aggregate
// throughput plus per-loop latency:
//
//	aidserve                                  # 8 loops, wrr, aid-dynamic
//	aidserve -loops 16 -iters 500000          # heavier replay
//	aidserve -policy fcfs                     # run-to-completion baseline
//	aidserve -weights 4,1,1,1,1,1,1,1         # weighted tenants (one per loop)
//	aidserve -policy sf-aware -sched aid-dynamic,1,5,rw
//	                                          # SF-aware steering + re-cut pools
//	aidserve -virtual                         # same replay in virtual time
//
// The open-loop service mode (-arrivals) runs the registry as a long-lived
// server: an arrival process submits loops over wall time regardless of
// completions, tenants are assigned QoS classes that map to fairness
// weights, a bounded pending queue sheds (or backpressures) the excess,
// and the report is latency percentiles plus throughput:
//
//	aidserve -arrivals poisson -rate 50 -duration 2s
//	aidserve -arrivals bursty -classes gold:8,bronze:1 -max-pending 32
//	aidserve -arrivals diurnal -virtual        # same stream in virtual time
//	aidserve -arrivals poisson -sample 8 -record run.jsonl
//	                                           # sampled capture -> run record
//	aidserve -arrivals poisson -bench          # benchjson-compatible lines
//	aidserve -arrivals poisson -metrics :9090 -metrics-interval 500ms
//	                                           # live Prometheus scrape + stderr ticker
//
// Real mode runs goroutine workers with emulated asymmetry and reports
// wall-clock numbers; -virtual replays the identical submission pattern in
// the discrete-event engine (sim.RunLoops), where the results are exactly
// reproducible.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/amp"
	"repro/internal/arrival"
	"repro/internal/fair"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	loops := flag.Int("loops", 8, "closed-loop mode: number of simultaneous loop submissions")
	iters := flag.Int64("iters", 200_000, "iterations per loop")
	threads := flag.Int("threads", 0, "fleet size (0 = platform core count)")
	platformText := flag.String("platform", "A", "platform: a registry name or a platform JSON file")
	schedText := flag.String("sched", "aid-dynamic,1,5", "loop schedule in GOOMP_SCHEDULE syntax")
	policyName := flag.String("policy", "wrr", "fairness policy: wrr|fcfs|sf-aware")
	weightsCSV := flag.String("weights", "", "closed-loop mode: comma-separated per-loop weights (default all 1)")
	spin := flag.Int("spin", 200, "per-iteration spin work units (scaled into virtual cost under -virtual)")
	virtual := flag.Bool("virtual", false, "replay in the discrete-event engine instead of real goroutines")

	arrivals := flag.String("arrivals", "", "open-loop service mode: arrival process (poisson|bursty|diurnal)")
	rate := flag.Float64("rate", 50, "mean arrival rate in loops/sec")
	duration := flag.Duration("duration", 2*time.Second, "length of the arrival window")
	seed := flag.Uint64("seed", 1, "arrival and sampling seed")
	classesCSV := flag.String("classes", "std", "QoS classes as name:weight list, assigned round-robin (e.g. gold:8,silver:4,bronze:1)")
	maxPending := flag.Int("max-pending", 64, "bound on loops admitted but not yet complete (real mode)")
	shed := flag.Bool("shed", true, "when the pending queue is full, shed the arrival; false blocks the submitter (backpressure)")
	sample := flag.Int("sample", 0, "capture every Nth admitted loop for the run record (0 = off, real mode)")
	sampleBudget := flag.Int("sample-budget", 256, "per-loop event budget of sampled captures (0 = unbounded)")
	sampleHead := flag.Int("sample-head", 0, "head-retention share of -sample-budget (0 = half)")
	recordPath := flag.String("record", "", "write the sampled run record as JSONL to this path (real mode, needs -sample)")
	bench := flag.Bool("bench", false, "also emit benchjson-compatible Benchmark lines")
	metricsAddr := flag.String("metrics", "", "serve live runtime metrics in Prometheus text format on this address (real mode, e.g. :9090)")
	metricsInterval := flag.Duration("metrics-interval", 0, "print a one-line service summary to stderr at this period (real mode, 0 = off)")
	flag.Parse()

	pl, err := amp.Resolve(*platformText)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aidserve:", err)
		os.Exit(1)
	}
	if *arrivals != "" {
		err = serve(serveOpts{
			kind: *arrivals, rate: *rate, duration: *duration, seed: *seed,
			classesCSV: *classesCSV, maxPending: *maxPending, shed: *shed,
			sampleEvery: *sample, sampleBudget: *sampleBudget, sampleHead: *sampleHead,
			recordPath: *recordPath, bench: *bench,
			metricsAddr: *metricsAddr, metricsInterval: *metricsInterval,
			iters: *iters, threads: *threads, pl: pl, schedText: *schedText,
			policyName: *policyName, spin: *spin, virtual: *virtual,
		}, os.Stdout)
	} else {
		err = run(*loops, *iters, *threads, pl, *schedText, *policyName, *weightsCSV, *spin, *virtual)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aidserve:", err)
		os.Exit(1)
	}
}

// parseWeights expands the -weights list over nloops submissions. Fewer
// weights than loops cycle (a short prefix names the heavy tenants); more
// weights than loops is an error — the surplus used to be dropped
// silently, hiding typos in the loop count.
func parseWeights(csv string, nloops int) ([]int, error) {
	weights := make([]int, nloops)
	for i := range weights {
		weights[i] = 1
	}
	if csv == "" {
		return weights, nil
	}
	parts := strings.Split(csv, ",")
	if len(parts) > nloops {
		return nil, fmt.Errorf("%d weights for %d loops; drop the surplus or raise -loops", len(parts), nloops)
	}
	vals := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad weight %q", p)
		}
		vals[i] = v
	}
	for i := range weights {
		weights[i] = vals[i%len(vals)]
	}
	return weights, nil
}

func parsePolicy(name string) (fair.Policy, error) {
	switch name {
	case "wrr":
		return fair.NewWeightedRoundRobin(0), nil
	case "fcfs":
		return fair.NewFCFS(), nil
	case "sf-aware":
		return fair.NewSFAware(0, 0), nil
	}
	return nil, fmt.Errorf("unknown policy %q (want wrr, fcfs or sf-aware)", name)
}

// virtualNsPerSpinUnit converts -spin work units into the discrete-event
// engine's per-iteration cost, so the knob shapes virtual runs exactly as
// it shapes real ones. The factor keeps the default -spin 200 at the
// engine's long-standing 10_000 units per iteration.
const virtualNsPerSpinUnit = 50

func virtualCost(spin int) sim.UniformCost {
	return sim.UniformCost{PerIter: float64(spin) * virtualNsPerSpinUnit}
}

// spanOf is the fleet's makespan over a batch of results: last end minus
// earliest start. The old per-loop maximum of End-Start equals this only
// when every loop starts together — under staggered arrivals it reports a
// single loop's latency, not the run's length.
func spanOf(results []sim.LoopResult) time.Duration {
	minStart, maxEnd := results[0].Start, results[0].End
	for _, r := range results[1:] {
		if r.Start < minStart {
			minStart = r.Start
		}
		if r.End > maxEnd {
			maxEnd = r.End
		}
	}
	return time.Duration(maxEnd - minStart)
}

func run(loops int, iters int64, threads int, pl *amp.Platform, schedText, policyName, weightsCSV string, spin int, virtual bool) error {
	if loops <= 0 {
		return fmt.Errorf("need at least one loop, got %d", loops)
	}
	if iters < 0 {
		return fmt.Errorf("negative iteration count %d", iters)
	}
	sched, err := rt.ParseSchedule(schedText)
	if err != nil {
		return err
	}
	weights, err := parseWeights(weightsCSV, loops)
	if err != nil {
		return err
	}
	policy, err := parsePolicy(policyName)
	if err != nil {
		return err
	}
	if virtual {
		return runVirtual(loops, iters, threads, pl, sched, policy, weights, spin)
	}
	return runReal(loops, iters, threads, pl, sched, policy, weights, spin)
}

// spinIter burns deterministic CPU work for one iteration; the result is
// returned through an atomic sink so the compiler cannot elide it.
func spinIter(units int) float64 {
	x := 1.0
	for i := 0; i < units; i++ {
		x += 1.0 / (x + float64(i))
	}
	return x
}

func report(w io.Writer, label string, weights []int, latencies []time.Duration, totalIters int64, makespan time.Duration) {
	fmt.Fprintf(w, "%s: %d loops, makespan %v, aggregate %.2f Miters/s\n",
		label, len(latencies), makespan.Round(time.Microsecond),
		float64(totalIters)/makespan.Seconds()/1e6)
	fmt.Fprintf(w, "%6s %7s %14s\n", "loop", "weight", "latency")
	xs := make([]float64, len(latencies))
	for i, lat := range latencies {
		fmt.Fprintf(w, "%6d %7d %14v\n", i, weights[i], lat.Round(time.Microsecond))
		xs[i] = float64(lat)
	}
	mn, _ := stats.Min(xs)
	md, _ := stats.Median(xs)
	p95, _ := stats.Percentile(xs, 95)
	mx, _ := stats.Max(xs)
	fmt.Fprintf(w, "latency min/median/p95/max: %v / %v / %v / %v\n",
		durNs(mn), durNs(md), durNs(p95), durNs(mx))
}

func durNs(ns float64) time.Duration {
	return time.Duration(ns).Round(time.Microsecond)
}

func runReal(loops int, iters int64, threads int, pl *amp.Platform, sched rt.Schedule, policy fair.Policy, weights []int, spin int) error {
	reg, err := rt.NewRegistry(rt.RegistryConfig{Platform: pl, NThreads: threads, Policy: policy})
	if err != nil {
		return err
	}
	defer reg.Close()

	var sink atomic.Int64
	handles := make([]*rt.Loop, loops)
	start := time.Now()
	for i := range handles {
		handles[i], err = reg.Submit(rt.LoopRequest{
			N:        iters,
			Schedule: sched,
			Weight:   weights[i],
			Body: func(_ int, lo, hi int64) {
				var acc float64
				for j := lo; j < hi; j++ {
					acc += spinIter(spin)
				}
				sink.Add(int64(acc) + (hi - lo))
			},
		})
		if err != nil {
			return err
		}
	}
	latencies := make([]time.Duration, loops)
	for i, h := range handles {
		h.Wait()
		latencies[i] = h.Latency()
	}
	makespan := time.Since(start)
	fmt.Printf("fleet %d workers, schedule %s, policy %s (wall clock)\n",
		reg.NThreads(), sched, policy.Name())
	report(os.Stdout, "real", weights, latencies, int64(loops)*iters, makespan)
	return nil
}

func runVirtual(loops int, iters int64, threads int, pl *amp.Platform, sched rt.Schedule, policy fair.Policy, weights []int, spin int) error {
	if threads == 0 {
		threads = pl.NumCores()
	}
	cfg := sim.Config{
		Platform: pl,
		NThreads: threads,
		Binding:  amp.BindBS,
		Factory:  sched.Factory(),
	}
	specs := make([]sim.LoopSpec, loops)
	for i := range specs {
		specs[i] = sim.LoopSpec{
			Name:    fmt.Sprintf("loop-%d", i),
			NI:      iters,
			Profile: amp.Profile{ILP: 0.5, MemIntensity: 0.2},
			Cost:    virtualCost(spin),
			Weight:  weights[i],
		}
	}
	results, err := sim.RunLoops(cfg, specs, policy, 0)
	if err != nil {
		return err
	}
	latencies := make([]time.Duration, loops)
	for i, r := range results {
		latencies[i] = time.Duration(r.End - r.Start)
	}
	fmt.Printf("fleet %d workers, schedule %s, policy %s (virtual time)\n",
		threads, sched, policy.Name())
	report(os.Stdout, "virtual", weights, latencies, int64(loops)*iters, spanOf(results))
	return nil
}

// ---- open-loop service mode ----

type serveOpts struct {
	kind         string // arrival process name
	rate         float64
	duration     time.Duration
	seed         uint64
	classesCSV   string
	maxPending   int
	shed         bool
	sampleEvery  int
	sampleBudget int
	sampleHead   int
	recordPath   string
	bench        bool

	metricsAddr     string        // Prometheus endpoint address ("" = off)
	metricsInterval time.Duration // stderr summary period (0 = off)

	iters      int64
	threads    int
	pl         *amp.Platform
	schedText  string
	policyName string
	spin       int
	virtual    bool
}

// classTally is one QoS class's account: a mergeable log-bucketed latency
// histogram (so a live scrape and the end-of-run report read the same
// quantiles, within the histogram's error bound) and the class's shed count
// — sheds are attributed by arrival index, so a full queue charges the
// class whose request was turned away.
type classTally struct {
	class fair.Class
	hist  *stats.Histogram
	shed  int64
}

// serveSummary is one service run's outcome, separated from printing so
// tests can assert on it directly. mu guards every mutable field against
// the live metrics scrapers; the submitter and completion goroutines take
// it for each update.
type serveSummary struct {
	engine      string
	arrivals    string
	mu          sync.Mutex
	admitted    int64
	shed        int64
	maxInFlight int
	elapsed     time.Duration
	classes     []*classTally
	overall     *stats.Histogram
	record      *trace.Record // sampled captures, when -sample is on
}

func newServeSummary(engine, arrivals string, classes []fair.Class) *serveSummary {
	s := &serveSummary{
		engine:   engine,
		arrivals: arrivals,
		overall:  stats.NewHistogram(),
	}
	for _, c := range classes {
		s.classes = append(s.classes, &classTally{
			class: c,
			hist:  stats.NewHistogram(),
		})
	}
	return s
}

// writeMetrics renders one scrape: the registry's runtime counters (when
// metrics are on), the service's admission counters, and the per-class
// latency summaries. The body is built under the summary lock and written
// out in one piece, so a slow scraper never stalls the submitter.
func (s *serveSummary) writeMetrics(w io.Writer, reg *rt.Registry) error {
	var buf bytes.Buffer
	if reg != nil && reg.MetricsEnabled() {
		if err := obs.WritePrometheus(&buf, "", reg.MetricsSnapshot()); err != nil {
			return err
		}
	}
	s.mu.Lock()
	e := &bufErr{buf: &buf}
	e.printf("# HELP aidserve_admitted_total Loops admitted to the registry.\n# TYPE aidserve_admitted_total counter\naidserve_admitted_total %d\n", s.admitted)
	e.printf("# HELP aidserve_shed_total Arrivals shed by QoS class.\n# TYPE aidserve_shed_total counter\n")
	for _, c := range s.classes {
		e.printf("aidserve_shed_total{class=%q} %d\n", c.class.Name, c.shed)
	}
	if e.err == nil {
		for i, c := range s.classes {
			if e.err = obs.WriteLatencySummary(&buf, "aidserve_latency_ns", c.class.Name, c.hist, i == 0); e.err != nil {
				break
			}
		}
	}
	s.mu.Unlock()
	if e.err != nil {
		return e.err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// bufErr is a tiny sticky-error printf over a buffer.
type bufErr struct {
	buf *bytes.Buffer
	err error
}

func (e *bufErr) printf(format string, args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.buf, format, args...)
	}
}

// progressLine prints the periodic one-line stderr summary of a live run.
func (s *serveSummary) progressLine(w io.Writer, inFlight int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.overall.Count() == 0 {
		fmt.Fprintf(w, "aidserve: admitted %d, shed %d, in-flight %d, no completions yet\n",
			s.admitted, s.shed, inFlight)
		return
	}
	p50, _ := s.overall.Percentile(50)
	p95, _ := s.overall.Percentile(95)
	p99, _ := s.overall.Percentile(99)
	fmt.Fprintf(w, "aidserve: admitted %d, shed %d, in-flight %d, p50/p95/p99 %v / %v / %v\n",
		s.admitted, s.shed, inFlight, durNs(p50), durNs(p95), durNs(p99))
}

func serve(o serveOpts, w io.Writer) error {
	if o.iters < 0 {
		return fmt.Errorf("negative iteration count %d", o.iters)
	}
	if o.maxPending <= 0 {
		return fmt.Errorf("-max-pending must be positive, got %d", o.maxPending)
	}
	if o.pl == nil {
		o.pl = amp.PlatformA()
	}
	classes, err := fair.ParseClasses(o.classesCSV)
	if err != nil {
		return err
	}
	sched, err := rt.ParseSchedule(o.schedText)
	if err != nil {
		return err
	}
	policy, err := parsePolicy(o.policyName)
	if err != nil {
		return err
	}
	if o.recordPath != "" && (o.virtual || o.sampleEvery <= 0) {
		return fmt.Errorf("-record needs real mode with -sample > 0")
	}
	if o.virtual && (o.metricsAddr != "" || o.metricsInterval > 0) {
		return fmt.Errorf("-metrics and -metrics-interval need real mode; the virtual engine has no live run to scrape")
	}
	var sum *serveSummary
	if o.virtual {
		sum, err = serveVirtual(o, classes, sched, policy)
	} else {
		sum, err = serveReal(o, classes, sched, policy)
	}
	if err != nil {
		return err
	}
	writeServeSummary(w, sum)
	if o.bench {
		if err := writeServeBench(w, sum); err != nil {
			return err
		}
	}
	if o.recordPath != "" {
		if err := writeServeRecord(o.recordPath, sum.record); err != nil {
			return err
		}
		fmt.Fprintf(w, "record: %d sampled loops, %d events -> %s (self-diff clean)\n",
			len(sum.record.Loops), len(sum.record.Events), o.recordPath)
	}
	return nil
}

// serveReal runs the open-loop service against the real-goroutine
// registry: arrivals are generated over wall time independent of
// completions, and a semaphore bounds the loops admitted but not yet
// complete — the pending queue. A full queue either sheds the arrival or
// blocks the submitter, per -shed.
func serveReal(o serveOpts, classes []fair.Class, sched rt.Schedule, policy fair.Policy) (*serveSummary, error) {
	proc, err := arrival.New(o.kind, o.rate, o.seed)
	if err != nil {
		return nil, err
	}
	reg, err := rt.NewRegistry(rt.RegistryConfig{Platform: o.pl, NThreads: o.threads, Policy: policy, Metrics: true})
	if err != nil {
		return nil, err
	}
	defer reg.Close()

	sum := newServeSummary("real", proc.Name(), classes)
	if o.metricsAddr != "" {
		stop, err := serveMetrics(o.metricsAddr, reg, sum)
		if err != nil {
			return nil, err
		}
		defer stop()
	}
	if o.metricsInterval > 0 {
		done := make(chan struct{})
		defer close(done)
		go func() {
			tick := time.NewTicker(o.metricsInterval)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					sum.progressLine(os.Stderr, reg.InFlight())
				}
			}
		}()
	}
	sem := make(chan struct{}, o.maxPending)
	var (
		wg      sync.WaitGroup
		sink    atomic.Int64
		sampled []*rt.Loop
	)
	body := func(_ int, lo, hi int64) {
		var acc float64
		for j := lo; j < hi; j++ {
			acc += spinIter(o.spin)
		}
		sink.Add(int64(acc) + (hi - lo))
	}

	start := time.Now()
	deadline := start.Add(o.duration)
	for i := 0; ; i++ {
		now := time.Now()
		if !now.Before(deadline) {
			break
		}
		gap := time.Duration(proc.Gap(int64(now.Sub(start))))
		if now.Add(gap).After(deadline) {
			break
		}
		time.Sleep(gap)

		// The class is the arrival's, chosen by arrival index — shed or
		// admitted, request i belongs to the same tenant. Assigning by
		// admission count (as this used to) made the shed count
		// unattributable: nobody could say which class the full queue
		// turned away.
		tally := sum.classes[i%len(classes)]
		if o.shed {
			select {
			case sem <- struct{}{}:
			default:
				sum.mu.Lock()
				sum.shed++
				tally.shed++
				sum.mu.Unlock()
				continue
			}
		} else {
			sem <- struct{}{}
		}
		sum.mu.Lock()
		if inflight := reg.InFlight(); inflight > sum.maxInFlight {
			sum.maxInFlight = inflight
		}
		admitted := sum.admitted
		sum.mu.Unlock()
		req := rt.LoopRequest{
			Name:     fmt.Sprintf("%s-%d", tally.class.Name, i),
			N:        o.iters,
			Schedule: sched,
			Weight:   tally.class.Weight,
			Body:     body,
		}
		if o.sampleEvery > 0 && int(admitted)%o.sampleEvery == 0 {
			req.Capture = true
			req.CaptureCompact = true
			req.CaptureMaxEvents = o.sampleBudget
			req.CaptureHead = o.sampleHead
		}
		h, err := reg.Submit(req)
		if err != nil {
			<-sem
			return nil, err
		}
		sum.mu.Lock()
		sum.admitted++
		sum.mu.Unlock()
		if req.Capture {
			sampled = append(sampled, h)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.Wait()
			lat := float64(h.Latency())
			sum.mu.Lock()
			sum.overall.Add(lat)
			tally.hist.Add(lat)
			sum.mu.Unlock()
			<-sem
		}()
	}
	wg.Wait()
	sum.elapsed = time.Since(start)
	if sum.admitted == 0 {
		return nil, fmt.Errorf("no arrivals within %v at rate %g/s", o.duration, o.rate)
	}
	if len(sampled) > 0 {
		rec, err := reg.BuildRecord(sampled...)
		if err != nil {
			return nil, err
		}
		sum.record = rec
	}
	return sum, nil
}

// serveMetrics starts the Prometheus endpoint for a live run: GET /metrics
// (or any path) answers with the registry's runtime counters plus the
// service's admission and latency families. It returns a stop function that
// closes the listener; in-flight scrapes are abandoned with the run over.
func serveMetrics(addr string, reg *rt.Registry, sum *serveSummary) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-metrics %s: %w", addr, err)
	}
	srv := &http.Server{Handler: metricsHandler(reg, sum)}
	go srv.Serve(ln)
	fmt.Fprintf(os.Stderr, "aidserve: metrics on http://%s/metrics\n", ln.Addr())
	return func() { srv.Close() }, nil
}

// metricsHandler is the scrape handler behind -metrics, split out so tests
// can hit it through httptest without binding a port flag.
func metricsHandler(reg *rt.Registry, sum *serveSummary) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := sum.writeMetrics(w, reg); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// serveVirtual replays the same arrival stream in the discrete-event
// engine: arrival stamps become LoopSpec.Arrive and every arrival is
// admitted (the simulator has no pending bound, so shed stays 0). The
// numbers are exactly reproducible for a given seed.
func serveVirtual(o serveOpts, classes []fair.Class, sched rt.Schedule, policy fair.Policy) (*serveSummary, error) {
	proc, err := arrival.New(o.kind, o.rate, o.seed)
	if err != nil {
		return nil, err
	}
	times := arrival.Times(proc, 0, int64(o.duration))
	if len(times) == 0 {
		return nil, fmt.Errorf("no arrivals within %v at rate %g/s", o.duration, o.rate)
	}
	pl := o.pl
	threads := o.threads
	if threads == 0 {
		threads = pl.NumCores()
	}
	cfg := sim.Config{
		Platform: pl,
		NThreads: threads,
		Binding:  amp.BindBS,
		Factory:  sched.Factory(),
	}
	specs := make([]sim.LoopSpec, len(times))
	for i, t := range times {
		class := classes[i%len(classes)]
		specs[i] = sim.LoopSpec{
			Name:    fmt.Sprintf("%s-%d", class.Name, i),
			NI:      o.iters,
			Profile: amp.Profile{ILP: 0.5, MemIntensity: 0.2},
			Cost:    virtualCost(o.spin),
			Weight:  class.Weight,
			Arrive:  t,
		}
	}
	results, err := sim.RunLoops(cfg, specs, policy, 0)
	if err != nil {
		return nil, err
	}
	sum := newServeSummary("virtual", proc.Name(), classes)
	for i, r := range results {
		lat := float64(r.End - r.Start)
		sum.overall.Add(lat)
		sum.classes[i%len(classes)].hist.Add(lat)
	}
	sum.admitted = int64(len(results))
	sum.elapsed = spanOf(results)
	return sum, nil
}

func writeServeSummary(w io.Writer, s *serveSummary) {
	fmt.Fprintf(w, "%s serve: %s arrivals, %d admitted, %d shed, span %v\n",
		s.engine, s.arrivals, s.admitted, s.shed, s.elapsed.Round(time.Microsecond))
	fmt.Fprintf(w, "%8s %7s %8s %8s %12s %12s %12s\n", "class", "weight", "count", "shed", "p50", "p95", "p99")
	for _, c := range s.classes {
		if c.hist.Count() == 0 {
			fmt.Fprintf(w, "%8s %7d %8d %8d %12s %12s %12s\n", c.class.Name, c.class.Weight, 0, c.shed, "-", "-", "-")
			continue
		}
		p50, _ := c.hist.Percentile(50)
		p95, _ := c.hist.Percentile(95)
		p99, _ := c.hist.Percentile(99)
		fmt.Fprintf(w, "%8s %7d %8d %8d %12v %12v %12v\n",
			c.class.Name, c.class.Weight, c.hist.Count(), c.shed, durNs(p50), durNs(p95), durNs(p99))
	}
	p50, _ := s.overall.Percentile(50)
	p95, _ := s.overall.Percentile(95)
	p99, _ := s.overall.Percentile(99)
	fmt.Fprintf(w, "overall: p50/p95/p99 %v / %v / %v, throughput %.2f loops/s, max in-flight %d\n",
		durNs(p50), durNs(p95), durNs(p99),
		float64(s.admitted)/s.elapsed.Seconds(), s.maxInFlight)
}

// writeServeBench emits the run as one benchjson-compatible Benchmark
// line, so cmd/benchjson can fold service runs into BENCH snapshots. Shed
// counts are broken out per QoS class (one `shed-<class>` column each), so
// a snapshot pins which tenant the full queue turned away, not just how
// often it was full.
func writeServeBench(w io.Writer, s *serveSummary) error {
	p50, err := s.overall.Percentile(50)
	if err != nil {
		return err
	}
	p95, _ := s.overall.Percentile(95)
	p99, _ := s.overall.Percentile(99)
	fmt.Fprintf(w, "BenchmarkServe/engine=%s/arrivals=%s %d %.0f p50-ns %.0f p95-ns %.0f p99-ns %.2f loops/sec %d admitted %d shed",
		s.engine, s.arrivals, s.admitted, p50, p95, p99,
		float64(s.admitted)/s.elapsed.Seconds(), s.admitted, s.shed)
	for _, c := range s.classes {
		fmt.Fprintf(w, " %d shed-%s", c.shed, c.class.Name)
	}
	fmt.Fprintln(w)
	return nil
}

// writeServeRecord persists the sampled run record and checks it survives
// a self-diff — a corrupt or internally inconsistent record fails loudly
// at write time rather than at the replay that needed it.
func writeServeRecord(path string, rec *trace.Record) error {
	if rec == nil {
		return fmt.Errorf("no sampled loops to record")
	}
	rep := replay.Diff(rec, rec, 1.0)
	if rep.Regressions > 0 {
		return fmt.Errorf("sampled record fails its self-diff:\n%s", rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.EncodeJSONL(f, rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
