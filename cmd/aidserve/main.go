// aidserve replays many simultaneous parallel-loop submissions against one
// shared worker fleet and reports aggregate throughput plus per-loop
// latency — the benchmark driver for the multi-loop registry (rt.Registry),
// which models a server executing loop requests from many users at once.
//
// Usage:
//
//	aidserve                                  # 8 loops, wrr, aid-dynamic
//	aidserve -loops 16 -iters 500000          # heavier replay
//	aidserve -policy fcfs                     # run-to-completion baseline
//	aidserve -weights 4,1,1 -sched dynamic,8  # weighted tenants
//	aidserve -policy sf-aware -sched aid-dynamic,1,5,rw
//	                                          # SF-aware steering + re-cut pools
//	aidserve -virtual                         # same replay in virtual time
//
// Real mode runs goroutine workers with emulated asymmetry and reports
// wall-clock numbers; -virtual replays the identical submission pattern in
// the discrete-event engine (sim.RunLoops), where the results are exactly
// reproducible.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/amp"
	"repro/internal/fair"
	"repro/internal/rt"
	"repro/internal/sim"
)

func main() {
	loops := flag.Int("loops", 8, "number of simultaneous loop submissions")
	iters := flag.Int64("iters", 200_000, "iterations per loop")
	threads := flag.Int("threads", 0, "fleet size (0 = platform core count)")
	schedText := flag.String("sched", "aid-dynamic,1,5", "loop schedule in GOOMP_SCHEDULE syntax")
	policyName := flag.String("policy", "wrr", "fairness policy: wrr|fcfs|sf-aware")
	weightsCSV := flag.String("weights", "", "comma-separated loop weights, cycled over the loops (default all 1)")
	spin := flag.Int("spin", 200, "per-iteration spin work units (real mode)")
	virtual := flag.Bool("virtual", false, "replay in the discrete-event engine instead of real goroutines")
	flag.Parse()

	if err := run(*loops, *iters, *threads, *schedText, *policyName, *weightsCSV, *spin, *virtual); err != nil {
		fmt.Fprintln(os.Stderr, "aidserve:", err)
		os.Exit(1)
	}
}

// parseWeights expands the -weights list over nloops submissions.
func parseWeights(csv string, nloops int) ([]int, error) {
	weights := make([]int, nloops)
	for i := range weights {
		weights[i] = 1
	}
	if csv == "" {
		return weights, nil
	}
	parts := strings.Split(csv, ",")
	vals := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad weight %q", p)
		}
		vals[i] = v
	}
	for i := range weights {
		weights[i] = vals[i%len(vals)]
	}
	return weights, nil
}

func parsePolicy(name string) (fair.Policy, error) {
	switch name {
	case "wrr":
		return fair.NewWeightedRoundRobin(0), nil
	case "fcfs":
		return fair.NewFCFS(), nil
	case "sf-aware":
		return fair.NewSFAware(0, 0), nil
	}
	return nil, fmt.Errorf("unknown policy %q (want wrr, fcfs or sf-aware)", name)
}

func run(loops int, iters int64, threads int, schedText, policyName, weightsCSV string, spin int, virtual bool) error {
	if loops <= 0 {
		return fmt.Errorf("need at least one loop, got %d", loops)
	}
	if iters < 0 {
		return fmt.Errorf("negative iteration count %d", iters)
	}
	sched, err := rt.ParseSchedule(schedText)
	if err != nil {
		return err
	}
	weights, err := parseWeights(weightsCSV, loops)
	if err != nil {
		return err
	}
	policy, err := parsePolicy(policyName)
	if err != nil {
		return err
	}
	if virtual {
		return runVirtual(loops, iters, threads, sched, policy, weights)
	}
	return runReal(loops, iters, threads, sched, policy, weights, spin)
}

// spinIter burns deterministic CPU work for one iteration; the result is
// returned through an atomic sink so the compiler cannot elide it.
func spinIter(units int) float64 {
	x := 1.0
	for i := 0; i < units; i++ {
		x += 1.0 / (x + float64(i))
	}
	return x
}

func report(label string, weights []int, latencies []time.Duration, totalIters int64, makespan time.Duration) {
	fmt.Printf("%s: %d loops, makespan %v, aggregate %.2f Miters/s\n",
		label, len(latencies), makespan.Round(time.Microsecond),
		float64(totalIters)/makespan.Seconds()/1e6)
	fmt.Printf("%6s %7s %14s\n", "loop", "weight", "latency")
	for i, lat := range latencies {
		fmt.Printf("%6d %7d %14v\n", i, weights[i], lat.Round(time.Microsecond))
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	fmt.Printf("latency min/median/max: %v / %v / %v\n",
		sorted[0].Round(time.Microsecond),
		sorted[len(sorted)/2].Round(time.Microsecond),
		sorted[len(sorted)-1].Round(time.Microsecond))
}

func runReal(loops int, iters int64, threads int, sched rt.Schedule, policy fair.Policy, weights []int, spin int) error {
	reg, err := rt.NewRegistry(rt.RegistryConfig{NThreads: threads, Policy: policy})
	if err != nil {
		return err
	}
	defer reg.Close()

	var sink atomic.Int64
	handles := make([]*rt.Loop, loops)
	start := time.Now()
	for i := range handles {
		handles[i], err = reg.Submit(rt.LoopRequest{
			N:        iters,
			Schedule: sched,
			Weight:   weights[i],
			Body: func(_ int, lo, hi int64) {
				var acc float64
				for j := lo; j < hi; j++ {
					acc += spinIter(spin)
				}
				sink.Add(int64(acc) + (hi - lo))
			},
		})
		if err != nil {
			return err
		}
	}
	latencies := make([]time.Duration, loops)
	for i, h := range handles {
		h.Wait()
		latencies[i] = h.Latency()
	}
	makespan := time.Since(start)
	fmt.Printf("fleet %d workers, schedule %s, policy %s (wall clock)\n",
		reg.NThreads(), sched, policy.Name())
	report("real", weights, latencies, int64(loops)*iters, makespan)
	return nil
}

func runVirtual(loops int, iters int64, threads int, sched rt.Schedule, policy fair.Policy, weights []int) error {
	pl := amp.PlatformA()
	if threads == 0 {
		threads = pl.NumCores()
	}
	cfg := sim.Config{
		Platform: pl,
		NThreads: threads,
		Binding:  amp.BindBS,
		Factory:  sched.Factory(),
	}
	specs := make([]sim.LoopSpec, loops)
	for i := range specs {
		specs[i] = sim.LoopSpec{
			Name:    fmt.Sprintf("loop-%d", i),
			NI:      iters,
			Profile: amp.Profile{ILP: 0.5, MemIntensity: 0.2},
			Cost:    sim.UniformCost{PerIter: 10_000},
			Weight:  weights[i],
		}
	}
	results, err := sim.RunLoops(cfg, specs, policy, 0)
	if err != nil {
		return err
	}
	latencies := make([]time.Duration, loops)
	var makespan time.Duration
	for i, r := range results {
		latencies[i] = time.Duration(r.End - r.Start)
		if latencies[i] > makespan {
			makespan = latencies[i]
		}
	}
	fmt.Printf("fleet %d workers, schedule %s, policy %s (virtual time)\n",
		threads, sched, policy.Name())
	report("virtual", weights, latencies, int64(loops)*iters, makespan)
	return nil
}
