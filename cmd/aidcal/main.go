// aidcal is a calibration helper: prints per-loop offline/online SF and
// effective per-app gains to guide model tuning.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/amp"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	platform := flag.String("platform", "A", "platform: a registry name or a platform JSON file")
	flag.Parse()
	pl, err := amp.Resolve(*platform)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aidcal:", err)
		os.Exit(1)
	}
	for _, w := range workloads.All() {
		loops := w.Program.Loops()
		minOff, maxOff, minOn, maxOn := 1e9, 0.0, 1e9, 0.0
		for _, l := range loops {
			off, err := sim.MeasureLoopSF(pl, l)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			on := pl.SF(l.Profile, 4, 4)
			if off < minOff {
				minOff = off
			}
			if off > maxOff {
				maxOff = off
			}
			if on < minOn {
				minOn = on
			}
			if on > maxOn {
				maxOn = on
			}
		}
		fmt.Printf("%-16s loops=%2d  offlineSF[%5.2f %5.2f]  onlineSF[%5.2f %5.2f]\n",
			w.Name, len(loops), minOff, maxOff, minOn, maxOn)
	}
}
