// aidsf measures per-loop offline speedup factors with the paper's method
// (§2): run each loop with a single thread on a big core and on a small
// core, and report the completion-time ratio. With no flags it regenerates
// Fig. 2 (the first 30 loops of BT and CG on both platforms).
//
// Usage:
//
//	aidsf                           # Fig 2 (BT and CG, Platforms A and B)
//	aidsf -app blackscholes         # all loops of one workload, both platforms
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/amp"
	"repro/internal/exps"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	app := flag.String("app", "", "workload to measure (default: Fig 2 = BT and CG)")
	platform := flag.String("platform", "", "restrict to one platform: a registry name or a platform JSON file (default: A and B)")
	flag.Parse()

	if err := run(*app, *platform); err != nil {
		fmt.Fprintln(os.Stderr, "aidsf:", err)
		os.Exit(1)
	}
}

func run(app, platform string) error {
	if app == "" {
		series, err := exps.RunFig2()
		if err != nil {
			return err
		}
		for _, s := range series {
			fmt.Println(s.Render())
		}
		return nil
	}
	w, ok := workloads.ByName(app)
	if !ok {
		var names []string
		for _, x := range workloads.All() {
			names = append(names, x.Name)
		}
		return fmt.Errorf("unknown workload %q; available: %s", app, strings.Join(names, ", "))
	}
	platforms := []*amp.Platform{amp.PlatformA(), amp.PlatformB()}
	if platform != "" {
		pl, err := amp.Resolve(platform)
		if err != nil {
			return err
		}
		platforms = []*amp.Platform{pl}
	}
	for _, pl := range platforms {
		fmt.Printf("%s — per-loop offline SF on Platform %s\n", w.Name, pl.Name)
		for i, spec := range w.Program.Loops() {
			sf, err := sim.MeasureLoopSF(pl, spec)
			if err != nil {
				return err
			}
			fmt.Printf("loop %2d %-14s SF %5.2f  %s\n", i, spec.Name, sf, strings.Repeat("*", int(sf*4+0.5)))
		}
		fmt.Println()
	}
	return nil
}
