// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation (run with `go test -bench=. -benchmem`),
// plus micro-benchmarks of the scheduling primitives.
//
// Figure/table benchmarks execute the same deterministic experiment code as
// cmd/aidbench and report the headline quantity of each figure as a custom
// metric, so a calibration regression shows up as a metric change even
// though virtual-time results do not depend on wall-clock performance.
package repro

import (
	"sync/atomic"
	"testing"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/exps"
	"repro/internal/pool"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// BenchmarkFig1EPTrace regenerates Fig. 1 (EP, static, 2B-2S vs 4S) and
// reports the completion-time ratio between the two configurations (the
// paper's observation: ~1.0).
func BenchmarkFig1EPTrace(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		tr2b2s, tr4s, err := exps.RunFig1()
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(tr2b2s.CompletionNs) / float64(tr4s.CompletionNs)
	}
	b.ReportMetric(ratio, "2B2S/4S-ratio")
}

// BenchmarkFig2LoopSF regenerates Fig. 2 (per-loop offline SF of BT and CG
// on both platforms) and reports the maximum SF observed on Platform A.
func BenchmarkFig2LoopSF(b *testing.B) {
	var maxA float64
	for i := 0; i < b.N; i++ {
		series, err := exps.RunFig2()
		if err != nil {
			b.Fatal(err)
		}
		maxA = 0
		for _, s := range series {
			if s.Platform[0] != 'A' {
				continue
			}
			if m, err := stats.Max(s.SF); err == nil && m > maxA {
				maxA = m
			}
		}
	}
	b.ReportMetric(maxA, "max-SF-platformA")
}

// BenchmarkFig4AIDTrace regenerates Fig. 4 (EP under AID-static vs
// AID-hybrid) and reports AID-hybrid's relative gain in percent (paper:
// 10.5%).
func BenchmarkFig4AIDTrace(b *testing.B) {
	var gainPct float64
	for i := 0; i < b.N; i++ {
		aidStatic, aidHybrid, err := exps.RunFig4()
		if err != nil {
			b.Fatal(err)
		}
		gainPct = stats.RelGainPct(float64(aidStatic.CompletionNs), float64(aidHybrid.CompletionNs))
	}
	b.ReportMetric(gainPct, "hybrid-gain-%")
}

// BenchmarkFig6PlatformA regenerates Fig. 6 (21 apps x 7 schemes, Platform
// A) and reports the geometric-mean AID-hybrid gain over static(BS).
func BenchmarkFig6PlatformA(b *testing.B) { benchFig(b, amp.PlatformA()) }

// BenchmarkFig7PlatformB regenerates Fig. 7 (Platform B).
func BenchmarkFig7PlatformB(b *testing.B) { benchFig(b, amp.PlatformB()) }

func benchFig(b *testing.B, pl *amp.Platform) {
	var gmeanGain float64
	for i := 0; i < b.N; i++ {
		f, err := exps.RunFig6(pl)
		if err != nil {
			b.Fatal(err)
		}
		var base, hybrid []float64
		for _, a := range f.Apps {
			base = append(base, a.TimeNs["static(BS)"])
			hybrid = append(hybrid, a.TimeNs["AID-hybrid"])
		}
		gmeanGain = stats.GeoMeanGainPct(base, hybrid)
	}
	b.ReportMetric(gmeanGain, "hybrid-gmean-gain-%")
}

// BenchmarkTable2Gains regenerates Table 2 end to end and reports the
// AID-static mean gain on Platform A (paper: 14.98%).
func BenchmarkTable2Gains(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		fa, err := exps.RunFig6(amp.PlatformA())
		if err != nil {
			b.Fatal(err)
		}
		fb, err := exps.RunFig6(amp.PlatformB())
		if err != nil {
			b.Fatal(err)
		}
		tab := exps.RunTable2(fa, fb)
		gain = tab.Rows[0].MeanPct[fa.Platform]
	}
	b.ReportMetric(gain, "aid-static-mean-gain-%A")
}

// BenchmarkFig8ChunkSweep regenerates Fig. 8 (chunk sensitivity) and
// reports dynamic(BS)/30's normalized performance on BT — the paper's
// flagship example of large chunks degrading performance.
func BenchmarkFig8ChunkSweep(b *testing.B) {
	var btAt30 float64
	for i := 0; i < b.N; i++ {
		f, err := exps.RunFig8()
		if err != nil {
			b.Fatal(err)
		}
		btAt30 = f.Norm["dynamic(BS)/30"]["BT"]
	}
	b.ReportMetric(btAt30, "BT-dynamic30-normperf")
}

// BenchmarkFig9OfflineSF regenerates Fig. 9a (Platform A) and reports how
// much AID-static's online estimation beats the offline-SF variant for
// blackscholes (§5C's headline case).
func BenchmarkFig9OfflineSF(b *testing.B) {
	var edge float64
	for i := 0; i < b.N; i++ {
		f, err := exps.RunFig9(amp.PlatformA())
		if err != nil {
			b.Fatal(err)
		}
		edge = f.Norm["AID-static"]["blackscholes"] / f.Norm["AID-static(offline-SF)"]["blackscholes"]
	}
	b.ReportMetric(edge, "blackscholes-online/offline")
}

// BenchmarkFig9cBlackscholesSF regenerates Fig. 9c (100 loop invocations)
// and reports the offline-to-estimated SF ratio.
func BenchmarkFig9cBlackscholesSF(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		f, err := exps.RunFig9c(100)
		if err != nil {
			b.Fatal(err)
		}
		ratio = f.OfflineSF[0] / stats.Mean(f.EstimatedSF)
	}
	b.ReportMetric(ratio, "offline/estimated-SF")
}

// BenchmarkGuidedComparison regenerates the §5 guided comparison (a known
// deviation; see EXPERIMENTS.md) and reports guided's average completion
// increase vs static(BS).
func BenchmarkGuidedComparison(b *testing.B) {
	var vsStatic float64
	for i := 0; i < b.N; i++ {
		g, err := exps.RunGuided(amp.PlatformA())
		if err != nil {
			b.Fatal(err)
		}
		vsStatic = g.VsStaticPct
	}
	b.ReportMetric(vsStatic, "guided-vs-static-%")
}

// BenchmarkHybridPctSweep regenerates the §5B AID-hybrid percentage
// sensitivity study and reports the gmean normalized performance at the
// paper's chosen 80%.
func BenchmarkHybridPctSweep(b *testing.B) {
	var at80 float64
	for i := 0; i < b.N; i++ {
		h, err := exps.RunHybridPct(amp.PlatformA(), workloads.All())
		if err != nil {
			b.Fatal(err)
		}
		at80 = h.GmeanNorm[80]
	}
	b.ReportMetric(at80, "gmean-normperf-at-80%")
}

// BenchmarkZoo sweeps the platform zoo (every registry preset under the
// zoo schemes, exps.RunZoo) and emits one sub-benchmark row per
// (platform, scheme) cell carrying the cell's makespan and modeled energy
// as custom metrics — the source of the committed BENCH_zoo.json capture.
func BenchmarkZoo(b *testing.B) {
	var z exps.ZooResult
	for i := 0; i < b.N; i++ {
		var err error
		z, err = exps.RunZoo()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range z.Rows {
		r := r
		b.Run(r.Platform+"/"+r.Scheme, func(sb *testing.B) {
			for i := 0; i < sb.N; i++ {
				// The sweep already ran above; this row only carries its
				// cell's metrics.
			}
			sb.ReportMetric(r.MakespanNs/1e6, "makespan-ms")
			sb.ReportMetric(r.EnergyJ, "energy-J")
		})
	}
}

// --- micro-benchmarks of the runtime primitives ---

// BenchmarkWorkShareSteal measures the lock-free iteration pool's
// fetch-and-add path (the hot path of every dynamic-family schedule).
func BenchmarkWorkShareSteal(b *testing.B) {
	ws := pool.NewWorkShare(int64(b.N) + 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.TrySteal(1)
	}
}

// BenchmarkWorkShareStealParallel measures the pool under goroutine
// contention.
func BenchmarkWorkShareStealParallel(b *testing.B) {
	ws := pool.NewWorkShare(int64(b.N) + 1024)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			ws.TrySteal(1)
		}
	})
}

func benchScheduler(b *testing.B, mk func(info core.LoopInfo) (core.Scheduler, error)) {
	info := core.LoopInfo{
		NI:       4096,
		NThreads: 4,
		NumTypes: 2,
		TypeOf:   func(tid int) int { return tid % 2 },
	}
	s, err := mk(info)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		asg, ok := s.Next(i%4, now)
		if !ok {
			// Loop drained: start a fresh execution of the same loop, so
			// the measurement amortizes over whole loop lifetimes.
			s, err = mk(info)
			if err != nil {
				b.Fatal(err)
			}
			continue
		}
		now += asg.N() * 10
	}
}

// BenchmarkSchedulerNextDynamic measures one dynamic(1) scheduling call.
func BenchmarkSchedulerNextDynamic(b *testing.B) {
	benchScheduler(b, func(i core.LoopInfo) (core.Scheduler, error) { return core.NewDynamic(i, 1) })
}

// BenchmarkSchedulerNextAIDStatic measures AID-static's call path,
// including the sampling state machine.
func BenchmarkSchedulerNextAIDStatic(b *testing.B) {
	benchScheduler(b, func(i core.LoopInfo) (core.Scheduler, error) { return core.NewAIDStatic(i, 1) })
}

// BenchmarkSchedulerNextAIDDynamic measures AID-dynamic's call path,
// including phase bookkeeping.
func BenchmarkSchedulerNextAIDDynamic(b *testing.B) {
	benchScheduler(b, func(i core.LoopInfo) (core.Scheduler, error) { return core.NewAIDDynamic(i, 1, 5) })
}

// BenchmarkSimLoop measures the discrete-event engine's event rate on a
// dynamic(1) loop (one pool access per iteration = one event per iteration).
func BenchmarkSimLoop(b *testing.B) {
	pl := amp.PlatformA()
	cfg := sim.Config{
		Platform: pl,
		NThreads: 8,
		Binding:  amp.BindBS,
		Factory: func(i core.LoopInfo) (core.Scheduler, error) {
			return core.NewDynamic(i, 1)
		},
	}
	spec := sim.LoopSpec{
		Name:    "bench",
		NI:      int64(b.N) + 8,
		Profile: amp.Profile{ILP: 0.5, MemIntensity: 0.3},
		Cost:    sim.UniformCost{PerIter: 10000},
	}
	b.ResetTimer()
	if _, err := sim.RunLoop(cfg, spec, 0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRealParallelFor measures the goroutine executor end to end with
// an AID-static schedule over a trivial body.
func BenchmarkRealParallelFor(b *testing.B) {
	team, err := rt.NewTeam(rt.TeamConfig{
		NThreads: 4,
		Schedule: rt.Schedule{Kind: rt.KindAIDStatic, Chunk: 1024},
	})
	if err != nil {
		b.Fatal(err)
	}
	var sink atomic.Int64
	b.ResetTimer()
	if err := team.ParallelForChunked(int64(b.N)+1, func(lo, hi int64) {
		sink.Add(hi - lo)
	}); err != nil {
		b.Fatal(err)
	}
}
