# CI entry points for the conf_icpp_SaezCP20 reproduction.
#
#   make ci      - everything a PR must pass: vet, build, race tests,
#                  multi-loop conformance/race under -race -count=2,
#                  replay determinism, the allocation/layout gates,
#                  short-mode benchmarks
#   make test    - plain test run (tier-1: go build ./... && go test ./...)
#   make race    - race-detector run over the lock-free scheduler/pool layers
#                  plus the real-goroutine runtime
#   make race-multiloop - the multi-tenant conformance + registry race suite
#                  under -race -count=2, so flaky interleavings surface in
#                  CI, not in production
#   make replay-determinism - record a simulated run, exact-replay it twice,
#                  assert the two replays serialize byte-identically (the
#                  record & replay subsystem's end-to-end determinism gate)
#   make alloc-check - the zero-allocation and cache-line-layout gates: the
#                  AllocsPerRun assertions and unsafe.Offsetof layout tests
#                  over the pool/core/rt hot paths (run without -race; the
#                  race run covers the same tests with the gates skipped)
#   make zoo-check - the platform-zoo gates: JSON codec round-trip and
#                  Validate rejections in internal/amp, the exactly-once
#                  conformance harness over every named platform, and the
#                  sim-vs-rt cross-engine equivalence on the new presets
#   make obs-check - the flight-recorder gates: the internal/obs suite
#                  (counter cells, Prometheus rendering, analyzer, the
#                  byte-deterministic chrome export), the engine wiring
#                  tests in rt and sim, the histogram-vs-reservoir
#                  cross-check, aidserve's metrics endpoint and per-class
#                  shed attribution, and aidstat's committed golden fixture
#   make bench   - the full benchmark harness (figures + micro-benchmarks)
#   make bench-short - benchmarks compiled and run once per case (smoke);
#                  regenerates BENCH_multiloop.json from the registry
#                  throughput rows, BENCH_hotpath.json (with -benchmem
#                  allocation columns) from the claim hot-path rows,
#                  BENCH_zoo.json (per-platform makespan + energy rows), and
#                  BENCH_obs.json (the metrics=on/off hot-path overhead rows)
#                  via cmd/benchjson. Artifacts are written temp-then-rename, so
#                  a failed run never leaves a stale capture or a truncated
#                  JSON behind; a pre-existing BENCH_hotpath.json doubles as
#                  the allocs/op baseline the fresh run must not regress.
#   make serve-smoke - the open-loop service tier end to end: short aidserve
#                  runs under Poisson arrivals in both engines (the real run
#                  also exercises sampled capture + record self-diff), their
#                  Benchmark rows folded into BENCH_serve.json via
#                  cmd/benchjson, temp-then-rename like the other captures
#   make bench-check - validate that the committed benchmark JSONs parse and
#                  that BENCH_hotpath.json still carries allocation columns
#                  (CI gate)

GO ?= go
REPLAYTMP := .replaytmp
BENCHTMP := .benchtmp
SERVETMP := .servetmp

.PHONY: ci vet build test race race-multiloop replay-determinism alloc-check zoo-check obs-check bench bench-short serve-smoke bench-check

ci: vet build race race-multiloop replay-determinism alloc-check zoo-check obs-check bench-short serve-smoke bench-check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/pool/... ./internal/rt/... ./internal/fair/...
	$(GO) test ./...

race-multiloop:
	$(GO) test -race -count=2 -run 'MultiTenant|Registry|MultiLoop' ./internal/core/ ./internal/rt/ ./internal/sim/
	$(GO) test -race -count=2 ./internal/fair/

replay-determinism:
	rm -rf $(REPLAYTMP) && mkdir -p $(REPLAYTMP)
	$(GO) run ./cmd/aidtrace -app EP -sched aid-dynamic,1,5 -record $(REPLAYTMP)/rec.jsonl
	$(GO) run ./cmd/aidtrace -replay $(REPLAYTMP)/rec.jsonl -o $(REPLAYTMP)/replay1.jsonl > /dev/null
	$(GO) run ./cmd/aidtrace -replay $(REPLAYTMP)/rec.jsonl -o $(REPLAYTMP)/replay2.jsonl > /dev/null
	cmp $(REPLAYTMP)/replay1.jsonl $(REPLAYTMP)/replay2.jsonl
	$(GO) run ./cmd/aidtrace -diff $(REPLAYTMP)/replay1.jsonl,$(REPLAYTMP)/replay2.jsonl > /dev/null
	rm -rf $(REPLAYTMP)

# The allocation gates must run without the race detector (its
# instrumentation allocates; the tests skip themselves under -race), and
# with -count=1 so a cached pass cannot mask a fresh regression.
alloc-check:
	$(GO) test -count=1 -run 'Allocs|Layout' ./internal/pool/ ./internal/core/ ./internal/rt/ ./internal/obs/

# The zoo gates run with -count=1 so a cached pass cannot mask a fresh
# regression in a preset or the codec.
zoo-check:
	$(GO) test -count=1 -run 'PlatformJSON|LoadFile|ValidateRejections|ZooPresets|ZooTopologies|ClusterDist' ./internal/amp/
	$(GO) test -count=1 -run 'ZooConformance' ./internal/core/
	$(GO) test -count=1 -run 'CrossEngineZoo' ./internal/rt/

# The flight-recorder gates run with -count=1 (the golden-fixture and
# determinism assertions must re-run, not replay from the test cache).
obs-check:
	$(GO) test -count=1 ./internal/obs/
	$(GO) test -count=1 -run 'Metrics' ./internal/rt/ ./internal/sim/
	$(GO) test -count=1 -run 'Histogram' ./internal/stats/
	$(GO) test -count=1 -run 'MetricsEndpoint|ShedAttribution' ./cmd/aidserve/
	$(GO) test -count=1 ./cmd/aidstat/

bench:
	$(GO) test -bench=. -benchmem ./...

# Benchmark rows are captured to temp files and converted to JSON in
# separate steps (no pipeline, so a failing `go test` exit code is not
# masked), and every file is written to a .part path first and renamed only
# on success: an aborted run leaves no stale $(BENCHTMP) capture to feed a
# later conversion and no truncated committed artifact. The hot-path JSON is
# additionally diffed against the committed BENCH_hotpath.json (when one
# exists) before replacing it — allocs/op may only go down.
bench-short:
	rm -f $(BENCHTMP) $(BENCHTMP).part
	$(GO) test -short -run=XXX -bench=BenchmarkChunkRemoval -benchtime=100000x ./internal/pool/
	$(GO) test -short -run=XXX -bench=BenchmarkWorkShareSteal -benchtime=100000x .
	$(GO) test -short -run=XXX -bench=BenchmarkMultiLoop -benchtime=2x ./internal/rt/ > $(BENCHTMP).part
	mv $(BENCHTMP).part $(BENCHTMP)
	cat $(BENCHTMP)
	$(GO) run ./cmd/benchjson -o BENCH_multiloop.json.part $(BENCHTMP)
	mv BENCH_multiloop.json.part BENCH_multiloop.json
	rm -f $(BENCHTMP)
	$(GO) test -short -run=XXX -bench=BenchmarkHotPath -benchtime=100000x -benchmem ./internal/pool/ ./internal/rt/ > $(BENCHTMP).part
	mv $(BENCHTMP).part $(BENCHTMP)
	cat $(BENCHTMP)
	$(GO) run ./cmd/benchjson -o BENCH_hotpath.json.part $(BENCHTMP)
	if [ -f BENCH_hotpath.json ]; then \
		$(GO) run ./cmd/benchjson -check BENCH_hotpath.json.part -baseline BENCH_hotpath.json; \
	fi
	mv BENCH_hotpath.json.part BENCH_hotpath.json
	rm -f $(BENCHTMP)
	$(GO) test -short -run=XXX -bench=BenchmarkZoo -benchtime=1x . > $(BENCHTMP).part
	mv $(BENCHTMP).part $(BENCHTMP)
	cat $(BENCHTMP)
	$(GO) run ./cmd/benchjson -o BENCH_zoo.json.part $(BENCHTMP)
	$(GO) run ./cmd/benchjson -check BENCH_zoo.json.part
	mv BENCH_zoo.json.part BENCH_zoo.json
	rm -f $(BENCHTMP)
	$(GO) test -short -run=XXX -bench='BenchmarkReplay(Exact|WhatIf)' -benchtime=5x ./internal/replay/
	$(GO) test -short -run=XXX -bench=BenchmarkMetricsOverhead -benchtime=100000x -benchmem ./internal/rt/ > $(BENCHTMP).part
	mv $(BENCHTMP).part $(BENCHTMP)
	cat $(BENCHTMP)
	$(GO) run ./cmd/benchjson -o BENCH_obs.json.part $(BENCHTMP)
	$(GO) run ./cmd/benchjson -check BENCH_obs.json.part
	mv BENCH_obs.json.part BENCH_obs.json
	rm -f $(BENCHTMP)

# The service smoke runs short enough for CI but long enough to admit a
# few hundred loops; the real run's -record path also proves the sampled
# capture survives its self-diff before the snapshot is accepted.
serve-smoke:
	rm -f $(SERVETMP) $(SERVETMP).part $(SERVETMP).rec BENCH_serve.json.part
	$(GO) run ./cmd/aidserve -arrivals poisson -rate 200 -duration 1s -iters 5000 -spin 50 \
		-classes gold:8,silver:4,bronze:1 -sample 8 -sample-budget 128 \
		-record $(SERVETMP).rec -bench > $(SERVETMP).part
	$(GO) run ./cmd/aidserve -arrivals poisson -rate 200 -duration 1s -iters 5000 -spin 50 \
		-classes gold:8,silver:4,bronze:1 -virtual -bench >> $(SERVETMP).part
	mv $(SERVETMP).part $(SERVETMP)
	cat $(SERVETMP)
	$(GO) run ./cmd/benchjson -o BENCH_serve.json.part $(SERVETMP)
	$(GO) run ./cmd/benchjson -check BENCH_serve.json.part
	mv BENCH_serve.json.part BENCH_serve.json
	rm -f $(SERVETMP) $(SERVETMP).rec

bench-check:
	$(GO) run ./cmd/benchjson -check BENCH_multiloop.json
	$(GO) run ./cmd/benchjson -check BENCH_hotpath.json -baseline BENCH_hotpath.json
	$(GO) run ./cmd/benchjson -check BENCH_serve.json
	$(GO) run ./cmd/benchjson -check BENCH_zoo.json
	$(GO) run ./cmd/benchjson -check BENCH_obs.json
