# CI entry points for the conf_icpp_SaezCP20 reproduction.
#
#   make ci      - everything a PR must pass: vet, build, race tests,
#                  multi-loop conformance/race under -race -count=2,
#                  replay determinism, short-mode benchmarks
#   make test    - plain test run (tier-1: go build ./... && go test ./...)
#   make race    - race-detector run over the lock-free scheduler/pool layers
#                  plus the real-goroutine runtime
#   make race-multiloop - the multi-tenant conformance + registry race suite
#                  under -race -count=2, so flaky interleavings surface in
#                  CI, not in production
#   make replay-determinism - record a simulated run, exact-replay it twice,
#                  assert the two replays serialize byte-identically (the
#                  record & replay subsystem's end-to-end determinism gate)
#   make bench   - the full benchmark harness (figures + micro-benchmarks)
#   make bench-short - benchmarks compiled and run once per case (smoke);
#                  also regenerates BENCH_multiloop.json from the registry
#                  throughput rows via cmd/benchjson
#   make bench-check - validate that BENCH_multiloop.json parses (CI gate)

GO ?= go
REPLAYTMP := .replaytmp
BENCHTMP := .benchtmp

.PHONY: ci vet build test race race-multiloop replay-determinism bench bench-short bench-check

ci: vet build race race-multiloop replay-determinism bench-short bench-check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/pool/... ./internal/rt/... ./internal/fair/...
	$(GO) test ./...

race-multiloop:
	$(GO) test -race -count=2 -run 'MultiTenant|Registry|MultiLoop' ./internal/core/ ./internal/rt/ ./internal/sim/
	$(GO) test -race -count=2 ./internal/fair/

replay-determinism:
	rm -rf $(REPLAYTMP) && mkdir -p $(REPLAYTMP)
	$(GO) run ./cmd/aidtrace -app EP -sched aid-dynamic,1,5 -record $(REPLAYTMP)/rec.jsonl
	$(GO) run ./cmd/aidtrace -replay $(REPLAYTMP)/rec.jsonl -o $(REPLAYTMP)/replay1.jsonl > /dev/null
	$(GO) run ./cmd/aidtrace -replay $(REPLAYTMP)/rec.jsonl -o $(REPLAYTMP)/replay2.jsonl > /dev/null
	cmp $(REPLAYTMP)/replay1.jsonl $(REPLAYTMP)/replay2.jsonl
	$(GO) run ./cmd/aidtrace -diff $(REPLAYTMP)/replay1.jsonl,$(REPLAYTMP)/replay2.jsonl > /dev/null
	rm -rf $(REPLAYTMP)

bench:
	$(GO) test -bench=. -benchmem ./...

# The MultiLoop rows are captured to a temp file and converted to JSON in a
# separate step (no pipeline, so a failing `go test` exit code is not masked).
bench-short:
	$(GO) test -short -run=XXX -bench=BenchmarkChunkRemoval -benchtime=100000x ./internal/pool/
	$(GO) test -short -run=XXX -bench=BenchmarkWorkShareSteal -benchtime=100000x .
	$(GO) test -short -run=XXX -bench=BenchmarkMultiLoop -benchtime=2x ./internal/rt/ > $(BENCHTMP)
	cat $(BENCHTMP)
	$(GO) run ./cmd/benchjson -o BENCH_multiloop.json $(BENCHTMP)
	rm -f $(BENCHTMP)
	$(GO) test -short -run=XXX -bench='BenchmarkReplay(Exact|WhatIf)' -benchtime=5x ./internal/replay/

bench-check:
	$(GO) run ./cmd/benchjson -check BENCH_multiloop.json
