package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fair"
	"repro/internal/obs"
	"repro/internal/trace"
)

// RunLoops simulates the concurrent execution of several parallel loops on
// one worker fleet in virtual time — the discrete-event model of the
// multi-loop registry (internal/rt). Each loop is admitted at its
// LoopSpec.Arrive stamp (clamped up to startNs; the zero value admits at
// start, the closed-loop case), so an open-loop arrival stream maps
// directly onto specs. Each loop gets its own scheduler instance (and so
// its own sharded iteration pool) and its own barrier, while the fleet's
// workers are handed between runnable loops by the fairness policy (nil
// selects weighted round-robin). A worker with no runnable loop idles
// forward to the next arrival, and — mirroring the registry's admission
// generation — an arrival mid-burst sends the worker back to the policy,
// so a newly admitted loop is noticed immediately. Because the same
// fair.Policy implementations drive both engines, fairness behaviour
// sanity-checked here deterministically carries over to the real-goroutine
// executor.
//
// The fleet is persistent, matching the registry: no per-loop fork/join
// cost is charged, worker clocks start at startNs, and a loop's End is the
// time its last worker retired from it (observed the drained pool). The
// i-th result corresponds to specs[i]. Migrations and tracing are not
// supported under multi-loop execution; configuring either is an error.
func RunLoops(cfg Config, specs []LoopSpec, policy fair.Policy, startNs int64) ([]LoopResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("sim: no loops to run")
	}
	if len(cfg.Migrations) > 0 {
		return nil, fmt.Errorf("sim: migrations are not supported under multi-loop execution")
	}
	if cfg.Trace != nil {
		return nil, fmt.Errorf("sim: tracing is not supported under multi-loop execution")
	}
	if policy == nil {
		policy = fair.NewWeightedRoundRobin(0)
	}
	if cfg.Recorder != nil {
		if err := beginRecording(cfg, policy.Name(), startNs); err != nil {
			return nil, err
		}
	}

	pl := cfg.Platform
	ov := pl.Overhead
	nt := cfg.NThreads
	nl := len(specs)

	// Per-loop scheduler, speed table, locality state and result. Cluster
	// occupancy is the whole fleet for every loop: the workers are shared,
	// so each loop's chunks contend with all resident threads of the
	// cluster, whichever loop they happen to be serving.
	scheds := make([]core.Scheduler, nl)
	speed := make([][]float64, nl)
	lastHi := make([][]int64, nl)
	retired := make([][]bool, nl)
	nretired := make([]int, nl)
	results := make([]LoopResult, nl)
	weights := make([]int, nl)
	arrive := make([]int64, nl)

	coreOf := make([]int, nt)
	typeOf := make([]int, nt)
	activeInCluster := make([]int, len(pl.Clusters))
	for tid := 0; tid < nt; tid++ {
		coreOf[tid] = pl.CoreOf(tid, nt, cfg.Binding)
		typeOf[tid] = pl.ClusterOf(coreOf[tid])
		activeInCluster[typeOf[tid]]++
	}

	// Per-loop counter cells (see LoopResult.Metrics for the multi-loop
	// idle-time caveat). Each loop counts only its own grants.
	var mets []*obs.Metrics
	if cfg.Metrics {
		mets = make([]*obs.Metrics, nl)
		for li := range mets {
			mets[li] = obs.New(nt, len(pl.Clusters), func(tid int) int { return typeOf[tid] })
		}
	}

	// liveSF[li] is loop li's most recently published SF table (nil until the
	// scheduler's estimate stabilizes). It is fed to the fairness policy on
	// every pick — the mid-run view, not a retirement-only statistic — and
	// each publication is appended to the loop's SFTrajectory.
	liveSF := make([][]float64, nl)

	for li, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		info := loopInfo(cfg, spec.NI)
		s, err := cfg.buildScheduler(spec.Name, info)
		if err != nil {
			return nil, fmt.Errorf("sim: building scheduler for loop %q: %w", spec.Name, err)
		}
		scheds[li] = s
		var recSink func(core.PhaseEvent)
		if cfg.Recorder != nil {
			recSink = phaseRecorder(cfg.Recorder, addLoopRecord(cfg.Recorder, spec, s))
		}
		li := li
		installPhaseSinks(s, recSink, func(ev core.PhaseEvent) {
			if ev.SF != nil {
				liveSF[li] = ev.SF
				results[li].SFTrajectory = append(results[li].SFTrajectory,
					SFPoint{TimeNs: ev.TimeNs, SF: ev.SF})
			}
		})
		speed[li] = make([]float64, nt)
		lastHi[li] = make([]int64, nt)
		retired[li] = make([]bool, nt)
		for tid := 0; tid < nt; tid++ {
			speed[li][tid] = pl.Speed(coreOf[tid], spec.Profile, activeInCluster[pl.ClusterOf(coreOf[tid])])
			lastHi[li][tid] = -1
		}
		weights[li] = spec.Weight
		if weights[li] == 0 {
			weights[li] = 1
		}
		arrive[li] = spec.Arrive
		if arrive[li] < startNs {
			arrive[li] = startNs
		}
		results[li] = LoopResult{
			Start:         arrive[li],
			Iters:         make([]int64, nt),
			Finish:        make([]int64, nt),
			SchedulerName: s.Name(),
		}
		if est, isEst := s.(core.SFEstimator); isEst {
			// Offline-SF variants publish at construction with no event;
			// the table is live from the moment the loop exists.
			if sf, ready := est.SFEstimate(); ready {
				liveSF[li] = sf
				results[li].SFTrajectory = append(results[li].SFTrajectory,
					SFPoint{TimeNs: arrive[li], SF: sf})
			}
		}
	}

	// Worker state: virtual clock, the loop currently served, the burst
	// remaining in the policy's grant, and the arrived-loop count the grant
	// was made under (the virtual analog of the registry's admission
	// generation). A worker is live while some loop has not retired it.
	clock := make([]int64, nt)
	curLoop := make([]int, nt)
	burstLeft := make([]int, nt)
	grantArrived := make([]int, nt)
	pending := make([]int, nt) // unretired loop count per worker
	for tid := 0; tid < nt; tid++ {
		clock[tid] = startNs
		curLoop[tid] = -1
		pending[tid] = nl
	}
	liveWorkers := nt

	// engaged[li][t] counts the workers currently scheduling loop li from
	// home core type t (engagedTotal[li] across all types) — the population
	// of loop li's pool lines, which is what a pool access on that loop
	// contends with. A parked worker (idle-forwarding to a future arrival)
	// and workers busy on OTHER loops touch none of li's lines and are not
	// counted. setCur keeps the counts in step with curLoop transitions.
	engaged := make([][]int, nl)
	for li := range engaged {
		engaged[li] = make([]int, len(pl.Clusters))
	}
	engagedTotal := make([]int, nl)
	dist := pl.TypeDist()
	setCur := func(tid, li int) {
		prev := curLoop[tid]
		if prev == li {
			return
		}
		if prev >= 0 {
			engaged[prev][typeOf[tid]]--
			engagedTotal[prev]--
		}
		if li >= 0 {
			engaged[li][typeOf[tid]]++
			engagedTotal[li]++
		}
		curLoop[tid] = li
	}

	cands := make([]fair.Candidate, 0, nl)
	candLoop := make([]int, 0, nl)
	for liveWorkers > 0 {
		// Earliest-clock-first among live workers; ties resolve to the
		// lowest thread ID, keeping the simulation deterministic.
		tid := -1
		for i := 0; i < nt; i++ {
			if pending[i] > 0 && (tid == -1 || clock[i] < clock[tid]) {
				tid = i
			}
		}
		now := clock[tid]

		// A worker only sees loops that have arrived by its own clock.
		arrived := 0
		for i := 0; i < nl; i++ {
			if arrive[i] <= now {
				arrived++
			}
		}

		// Re-enter the policy when the granted burst is exhausted, the
		// served loop has retired this worker, or a loop arrived since the
		// grant (the registry's generation check: an unbounded single-
		// tenant burst must yield the moment a second tenant shows up).
		li := curLoop[tid]
		if li < 0 || burstLeft[tid] <= 0 || retired[li][tid] || arrived != grantArrived[tid] {
			cands, candLoop = cands[:0], candLoop[:0]
			for i := 0; i < nl; i++ {
				if !retired[i][tid] && arrive[i] <= now {
					cands = append(cands, fair.Candidate{ID: uint64(i), Weight: weights[i],
						CoreType: typeOf[tid], SF: liveSF[i]})
					candLoop = append(candLoop, i)
				}
			}
			if len(cands) == 0 {
				// Nothing runnable yet: idle forward to the next arrival
				// this worker still owes a retirement to. One must exist —
				// pending[tid] > 0 and every arrived loop would have been a
				// candidate.
				next := int64(-1)
				for i := 0; i < nl; i++ {
					if !retired[i][tid] && arrive[i] > now && (next == -1 || arrive[i] < next) {
						next = arrive[i]
					}
				}
				clock[tid] = next
				setCur(tid, -1)
				burstLeft[tid] = 0
				continue
			}
			idx, burst := policy.Pick(tid, cands)
			if idx < 0 || idx >= len(cands) {
				idx = 0
			}
			if burst < 1 {
				burst = 1
			}
			li = candLoop[idx]
			setCur(tid, li)
			burstLeft[tid] = burst
			grantArrived[tid] = arrived
		}
		burstLeft[tid]--

		asg, ok := scheds[li].Next(tid, now)
		res := &results[li]
		// Charge the runtime-call overhead whether or not work was handed
		// out (the final empty call still costs a pool access). Contention
		// is charged by the occupancy of the accessed shard's line among
		// the workers engaged on THIS loop — a worker parked against a
		// future arrival, or busy on another loop's pool, contends with
		// nobody here.
		contend := contenders(engaged[li], engagedTotal[li], typeOf[tid], asg.Origin)
		ovhNs := float64(asg.PoolAccesses)*(ov.PoolAccessNs+ov.ContentionNs*float64(contend)) +
			float64(asg.Timestamps)*ov.TimestampNs
		res.PoolAccesses += int64(asg.PoolAccesses)
		if !ok {
			end := now + int64(ovhNs)
			if cfg.Recorder != nil {
				cfg.Recorder.Chunk(trace.ChunkEvent{TimeNs: now, Tid: tid, Loop: li,
					Shard: pl.ClusterOf(coreOf[tid]), Origin: asg.Origin,
					PoolAccesses: asg.PoolAccesses,
					Timestamps: asg.Timestamps, Retire: true})
			}
			if mets != nil {
				c := mets[li].Cell(tid)
				c.Sched(int64(ovhNs))
				c.Credit(asg.CreditClaimed, asg.CreditReturned)
			}
			res.SchedNs += int64(ovhNs)
			res.Finish[tid] = end
			clock[tid] = end
			// The worker is done scheduling this loop; drop it from the
			// engaged counts now (not at the next policy grant) so a fully
			// retired worker cannot leak an engaged slot forever.
			setCur(tid, -1)
			retired[li][tid] = true
			nretired[li]++
			pending[tid]--
			if pending[tid] == 0 {
				liveWorkers--
			}
			if nretired[li] == nt {
				// This loop's barrier releases: End is the last retirement.
				var maxFinish int64
				for _, f := range res.Finish {
					if f > maxFinish {
						maxFinish = f
					}
				}
				res.End = maxFinish
				if est, isEst := scheds[li].(core.SFEstimator); isEst {
					if sf, ready := est.SFEstimate(); ready {
						res.SFEstimate = sf
					}
				}
				if cfg.Recorder != nil && res.SFEstimate != nil {
					cfg.Recorder.SFSample(trace.SFSample{TimeNs: res.End, Loop: li,
						SF: append([]float64(nil), res.SFEstimate...)})
				}
				if rp, isRet := policy.(fair.Retirer); isRet {
					rp.Retire(uint64(li)) // drop cursors naming the finished loop
				}
				if mets != nil {
					// Quiescent merge: no worker will touch this loop's cells
					// again (all nt retirements observed).
					if rc, isRC := scheds[li].(core.ReweightCounter); isRC {
						mets[li].Cell(0).SetReweights(rc.PoolReweights())
					}
					snap := mets[li].Snapshot()
					res.Metrics = &snap
				}
			}
			continue
		}
		// Locality penalty: a chunk that does not extend the thread's
		// previous one in this loop lands cold in the cache (§2), and the
		// miss cost is tiered by how far the chunk's home pool line sits
		// from the consuming core (home / same-package / cross-package).
		if asg.Lo != lastHi[li][tid] {
			ovhNs += localityNs(ov, dist, typeOf[tid], asg.Origin)
		}
		lastHi[li][tid] = asg.Hi

		units := specs[li].Cost.RangeUnits(asg.Lo, asg.Hi)
		execNs := units / speed[li][tid]
		if cfg.Recorder != nil {
			cfg.Recorder.Chunk(trace.ChunkEvent{TimeNs: now, Tid: tid, Loop: li,
				Lo: asg.Lo, Hi: asg.Hi, Shard: pl.ClusterOf(coreOf[tid]), Origin: asg.Origin,
				Cost: units, ExecNs: int64(execNs), PoolAccesses: asg.PoolAccesses,
				Timestamps: asg.Timestamps})
		}
		if mets != nil {
			c := mets[li].Cell(tid)
			c.Grant(asg.N(), obs.Tier(dist, typeOf[tid], asg.Origin))
			c.Credit(asg.CreditClaimed, asg.CreditReturned)
			c.Sched(int64(ovhNs))
			c.Busy(int64(execNs))
		}
		res.SchedNs += int64(ovhNs)
		res.Iters[tid] += asg.N()
		clock[tid] = now + int64(ovhNs) + int64(execNs)
	}
	if cfg.Recorder != nil {
		var maxEnd int64
		for i := range results {
			if results[i].End > maxEnd {
				maxEnd = results[i].End
			}
		}
		cfg.Recorder.EndRun(maxEnd - startNs)
	}
	return results, nil
}
