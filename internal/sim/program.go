package sim

import (
	"fmt"

	"repro/internal/amp"
	"repro/internal/trace"
)

// Phase is one element of a program: either a parallel loop (possibly
// repeated, as time-stepped solvers repeat their loop nests) or a serial
// section executed by the master thread (§2 lists serial phases between
// parallel loops as the other main scalability limiter).
type Phase struct {
	// Loop, when non-nil, makes this a parallel-loop phase.
	Loop *LoopSpec
	// Reps is the loop repetition count; 0 means 1.
	Reps int
	// SerialUnits, for serial phases, is the work executed by the master.
	SerialUnits float64
	// SerialProfile is the serial code's instruction mix.
	SerialProfile amp.Profile
}

// Validate checks the phase.
func (p Phase) Validate() error {
	switch {
	case p.Loop != nil && p.SerialUnits > 0:
		return fmt.Errorf("sim: phase has both a loop and serial work")
	case p.Loop != nil:
		if p.Reps < 0 {
			return fmt.Errorf("sim: loop %q has negative rep count %d", p.Loop.Name, p.Reps)
		}
		return p.Loop.Validate()
	case p.SerialUnits > 0:
		return p.SerialProfile.Validate()
	default:
		return fmt.Errorf("sim: phase is neither a loop nor serial work")
	}
}

// Program is a modeled OpenMP application: an ordered list of phases.
type Program struct {
	Name   string
	Phases []Phase
}

// Validate checks the program.
func (pr Program) Validate() error {
	if len(pr.Phases) == 0 {
		return fmt.Errorf("sim: program %q has no phases", pr.Name)
	}
	for i, ph := range pr.Phases {
		if err := ph.Validate(); err != nil {
			return fmt.Errorf("sim: program %q phase %d: %w", pr.Name, i, err)
		}
	}
	return nil
}

// Loops returns the program's loop specs in order, expanding repetitions
// into a single entry each (repetition does not change a loop's identity).
func (pr Program) Loops() []LoopSpec {
	var out []LoopSpec
	for _, ph := range pr.Phases {
		if ph.Loop != nil {
			out = append(out, *ph.Loop)
		}
	}
	return out
}

// ProgramResult aggregates one simulated program execution.
type ProgramResult struct {
	// TotalNs is the virtual completion time.
	TotalNs int64
	// SerialNs is time spent in serial phases (master thread).
	SerialNs int64
	// SchedNs is total runtime-system time summed over threads.
	SchedNs int64
	// PoolAccesses counts shared-pool operations over the whole run.
	PoolAccesses int64
	// LoopNs is the wall time spent inside parallel loops.
	LoopNs int64
}

// RunProgram simulates the program under cfg and returns its result.
func RunProgram(cfg Config, prog Program) (ProgramResult, error) {
	if err := cfg.Validate(); err != nil {
		return ProgramResult{}, err
	}
	if err := prog.Validate(); err != nil {
		return ProgramResult{}, err
	}
	pl := cfg.Platform
	masterCore := pl.CoreOf(0, cfg.NThreads, cfg.Binding)
	var res ProgramResult
	cursor := int64(0)
	for _, ph := range prog.Phases {
		if ph.Loop == nil {
			// Serial phase: the master thread alone, no cluster contention.
			speed := pl.Speed(masterCore, ph.SerialProfile, 1)
			dur := int64(ph.SerialUnits / speed)
			if cfg.Trace != nil {
				cfg.Trace.Add(0, cursor, cursor+dur, trace.Running)
				for tid := 1; tid < cfg.NThreads; tid++ {
					cfg.Trace.Add(tid, cursor, cursor+dur, trace.Sync)
				}
			}
			cursor += dur
			res.SerialNs += dur
			continue
		}
		reps := ph.Reps
		if reps == 0 {
			reps = 1
		}
		for r := 0; r < reps; r++ {
			lr, err := RunLoop(cfg, *ph.Loop, cursor)
			if err != nil {
				return ProgramResult{}, err
			}
			res.LoopNs += lr.End - lr.Start
			res.SchedNs += lr.SchedNs
			res.PoolAccesses += lr.PoolAccesses
			cursor = lr.End
		}
	}
	res.TotalNs = cursor
	return res, nil
}
