package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBlockNoisyCostBlockStructure(t *testing.T) {
	c := BlockNoisyCost{Base: 100, Amp: 3, BlockLen: 50, Seed: 7}
	// All iterations within a block cost the same.
	for i := int64(0); i < 50; i++ {
		if c.Units(i) != c.Units(0) {
			t.Fatalf("cost varies inside block: Units(%d)=%v Units(0)=%v", i, c.Units(i), c.Units(0))
		}
	}
	// Across many blocks, at least some variation must appear.
	varied := false
	for b := int64(1); b < 20; b++ {
		if c.Units(b*50) != c.Units(0) {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("no block-to-block variation in 20 blocks")
	}
}

func TestBlockNoisyCostBounds(t *testing.T) {
	c := BlockNoisyCost{Base: 100, Amp: 3, BlockLen: 10, Seed: 1}
	for i := int64(0); i < 1000; i++ {
		u := c.Units(i)
		if u < 100 || u > 400 {
			t.Fatalf("Units(%d) = %v outside [Base, Base*(1+Amp)]", i, u)
		}
	}
}

func TestBlockNoisyCostRangeMatchesSum(t *testing.T) {
	prop := func(loRaw uint16, nRaw uint8, blockRaw uint8, seed uint16) bool {
		lo := int64(loRaw % 2000)
		hi := lo + int64(nRaw)
		c := BlockNoisyCost{
			Base:     50,
			Amp:      2.5,
			BlockLen: int64(blockRaw%30) + 1,
			Seed:     uint64(seed),
		}
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += c.Units(i)
		}
		return math.Abs(c.RangeUnits(lo, hi)-sum) < 1e-6*(1+sum)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockNoisyCostEmptyRange(t *testing.T) {
	c := BlockNoisyCost{Base: 10, Amp: 1, BlockLen: 5, Seed: 0}
	if got := c.RangeUnits(10, 10); got != 0 {
		t.Errorf("empty range = %v", got)
	}
	if got := c.RangeUnits(10, 5); got != 0 {
		t.Errorf("inverted range = %v", got)
	}
}

func TestBlockNoisyCostSeedsDiffer(t *testing.T) {
	a := BlockNoisyCost{Base: 10, Amp: 3, BlockLen: 5, Seed: 1}
	b := BlockNoisyCost{Base: 10, Amp: 3, BlockLen: 5, Seed: 2}
	same := 0
	for blk := int64(0); blk < 50; blk++ {
		if a.Units(blk*5) == b.Units(blk*5) {
			same++
		}
	}
	if same > 5 {
		t.Errorf("seeds produce %d/50 identical blocks", same)
	}
}

func TestBlockNoisyCostMakesStaticImbalanced(t *testing.T) {
	// The design goal: a static 8-way split of a block-noisy loop has
	// measurably uneven per-thread sums.
	c := BlockNoisyCost{Base: 100, Amp: 3, BlockLen: 500, Seed: 42}
	const ni = 32000
	sums := make([]float64, 8)
	per := int64(ni / 8)
	for tid := int64(0); tid < 8; tid++ {
		sums[tid] = c.RangeUnits(tid*per, (tid+1)*per)
	}
	mn, mx := sums[0], sums[0]
	for _, s := range sums[1:] {
		mn = math.Min(mn, s)
		mx = math.Max(mx, s)
	}
	if (mx-mn)/mx < 0.05 {
		t.Errorf("static split too balanced: spread %.3f%%", 100*(mx-mn)/mx)
	}
}
