package sim

import (
	"reflect"
	"testing"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/fair"
)

func aidDynamicFactory(info core.LoopInfo) (core.Scheduler, error) {
	return core.NewAIDDynamic(info, 8, 64)
}

// TestRunLoopMetrics checks the simulator's counter wiring: totals match the
// result's ground truth, the tier buckets partition the chunk count, barrier
// waits land in IdleNs, and — the determinism contract — two identical runs
// produce byte-identical snapshots.
func TestRunLoopMetrics(t *testing.T) {
	cfg := Config{Platform: amp.PlatformA(), NThreads: 8, Binding: amp.BindBS,
		Factory: aidDynamicFactory, Metrics: true}
	spec := LoopSpec{Name: "m", NI: 20000, Cost: UniformCost{PerIter: 800}}
	res, err := RunLoop(cfg, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("LoopResult.Metrics nil with Config.Metrics set")
	}
	m := res.Metrics
	var iters int64
	for _, n := range res.Iters {
		iters += n
	}
	if m.Iters != iters || iters != spec.NI {
		t.Errorf("metrics count %d iters, result %d, spec %d", m.Iters, iters, spec.NI)
	}
	if m.Chunks <= 0 || m.BusyNs <= 0 || m.SchedNs <= 0 {
		t.Errorf("degenerate counters: %+v", m.Counters)
	}
	if got := m.StealsHome + m.StealsSamePkg + m.StealsCross; got != m.Chunks {
		t.Errorf("tier buckets sum to %d, want %d (they partition the grants)", got, m.Chunks)
	}
	var wantIdle int64
	for _, f := range res.Finish {
		var maxFinish int64
		for _, g := range res.Finish {
			if g > maxFinish {
				maxFinish = g
			}
		}
		wantIdle += maxFinish - f
	}
	if m.IdleNs != wantIdle {
		t.Errorf("IdleNs = %d, want %d (sum of barrier waits)", m.IdleNs, wantIdle)
	}
	var occ int64
	for _, o := range m.OccupancyNs {
		occ += o
	}
	if occ != m.BusyNs {
		t.Errorf("occupancy sums to %d, busy total is %d", occ, m.BusyNs)
	}

	res2, err := RunLoop(cfg, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Metrics, res2.Metrics) {
		t.Errorf("snapshots differ across identical runs:\n%+v\n%+v", res.Metrics, res2.Metrics)
	}
}

// TestRunLoopsMetrics checks the per-loop counters under multi-loop
// execution: every loop gets its own snapshot covering exactly its own
// iterations, and IdleNs stays zero (a retired worker's waits belong to no
// single loop).
func TestRunLoopsMetrics(t *testing.T) {
	cfg := Config{Platform: amp.PlatformA(), NThreads: 8, Binding: amp.BindBS,
		Factory: aidDynamicFactory, Metrics: true}
	specs := []LoopSpec{
		{Name: "a", NI: 6000, Cost: UniformCost{PerIter: 600}},
		{Name: "b", NI: 9000, Cost: UniformCost{PerIter: 900}, Weight: 2},
	}
	results, err := RunLoops(cfg, specs, fair.NewWeightedRoundRobin(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	for li, res := range results {
		if res.Metrics == nil {
			t.Fatalf("loop %d: Metrics nil", li)
		}
		if res.Metrics.Iters != specs[li].NI {
			t.Errorf("loop %d: metrics count %d iters, want %d", li, res.Metrics.Iters, specs[li].NI)
		}
		if res.Metrics.IdleNs != 0 {
			t.Errorf("loop %d: IdleNs = %d, want 0 under multi-loop execution", li, res.Metrics.IdleNs)
		}
		if res.Metrics.BusyNs <= 0 {
			t.Errorf("loop %d: BusyNs = %d, want > 0", li, res.Metrics.BusyNs)
		}
	}
}

// TestRunLoopMetricsOff checks that metrics stay off (and results stay
// identical) when the flag is clear.
func TestRunLoopMetricsOff(t *testing.T) {
	cfg := Config{Platform: amp.PlatformA(), NThreads: 4, Binding: amp.BindBS,
		Factory: aidDynamicFactory}
	spec := LoopSpec{Name: "m", NI: 4000, Cost: UniformCost{PerIter: 500}}
	off, err := RunLoop(cfg, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if off.Metrics != nil {
		t.Error("Metrics populated without Config.Metrics")
	}
	cfg.Metrics = true
	on, err := RunLoop(cfg, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if off.End != on.End || off.SchedNs != on.SchedNs || off.PoolAccesses != on.PoolAccesses {
		t.Errorf("counting perturbed the simulation: off %+v, on %+v", off, on)
	}
}
