package sim

import (
	"testing"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/fair"
	"repro/internal/stats"
)

// mixedSFConfig is the tentpole scenario: one fleet, aid-dynamic tenants
// whose profiles sit at the two ends of Platform A's SF range — high-ILP
// compute loops (SF ~8, big cores are transformative) and memory-bound
// loops (SF ~1.2, big cores barely help).
func mixedSFConfig() (Config, []LoopSpec) {
	cfg := Config{
		Platform: amp.PlatformA(),
		NThreads: 8,
		Binding:  amp.BindBS,
		Factory: func(info core.LoopInfo) (core.Scheduler, error) {
			return core.NewAIDDynamic(info, 1, 5)
		},
	}
	mk := func(name string, prof amp.Profile) LoopSpec {
		return LoopSpec{Name: name, NI: 60_000, Profile: prof,
			Cost: UniformCost{PerIter: 20000}, Weight: 1}
	}
	high := amp.Profile{ILP: 0.9, MemIntensity: 0.0}
	low := amp.Profile{ILP: 0.0, MemIntensity: 0.9}
	specs := []LoopSpec{
		mk("compute-a", high), mk("compute-b", high),
		mk("membound-a", low), mk("membound-b", low),
	}
	return cfg, specs
}

func makespan(results []LoopResult) int64 {
	var m int64
	for _, r := range results {
		if r.End > m {
			m = r.End
		}
	}
	return m
}

// TestMultiLoopSFAwareBeatsWRR pins the closed SF loop end to end: live
// mid-run SF estimates flow from the schedulers into the fairness policy,
// which steers big-core bursts to the high-SF tenants and small-core bursts
// to the SF≈1 tenants. The win is a shorter fleet makespan than weighted
// round-robin at a comparable fairness level.
func TestMultiLoopSFAwareBeatsWRR(t *testing.T) {
	cfg, specs := mixedSFConfig()
	run := func(p fair.Policy) []LoopResult {
		results, err := RunLoops(cfg, specs, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		for li, r := range results {
			if got := sumIters(r); got != specs[li].NI {
				t.Fatalf("loop %q covered %d of %d iterations", specs[li].Name, got, specs[li].NI)
			}
		}
		return results
	}
	wrr := run(fair.NewWeightedRoundRobin(0))
	sfa := run(fair.NewSFAware(0, 0))

	msWRR, msSFA := makespan(wrr), makespan(sfa)
	t.Logf("makespan: wrr %d, sf-aware %d (gain %.1f%%)",
		msWRR, msSFA, (float64(msWRR)/float64(msSFA)-1)*100)
	if msSFA >= msWRR {
		t.Errorf("sf-aware makespan %d not better than wrr %d", msSFA, msWRR)
	}

	// Fairness: each tenant's progress share is its dedicated-fleet
	// completion time over its multi-tenant completion time (1 = ran as if
	// alone, smaller = slowed by sharing). Jain's index over the shares
	// summarizes how evenly the policies spread the slowdown.
	share := func(results []LoopResult) []float64 {
		xs := make([]float64, len(specs))
		for i, spec := range specs {
			solo, err := RunLoop(cfg, spec, 0)
			if err != nil {
				t.Fatal(err)
			}
			xs[i] = float64(solo.End) / float64(results[i].End)
		}
		return xs
	}
	shWRR, shSFA := share(wrr), share(sfa)
	jWRR, jSFA := stats.JainIndex(shWRR), stats.JainIndex(shSFA)
	t.Logf("shares: wrr %v (jain %.3f), sf-aware %v (jain %.3f)", shWRR, jWRR, shSFA, jSFA)
	// The absolute level (~0.64) reflects the workload mix, not the policy:
	// dedicated-fleet baselines for compute loops are inherently much faster,
	// so their shares sit low under any work-conserving policy. The pinned
	// property is that steering stays inside the same band WRR occupies
	// instead of starving the tenants it de-prioritizes per core type.
	if jSFA < 0.60 || jSFA > 1.0 {
		t.Errorf("sf-aware Jain index %.3f outside the pinned band [0.60, 1.0]", jSFA)
	}
	// Tolerance re-pinned (0.05 → 0.08) when batched credit claiming
	// landed: fewer pool RMWs shift the virtual-time interleavings of both
	// policies, and WRR's index happened to drift up more than sf-aware's
	// (whose per-tenant shares are the more symmetric of the two). The
	// guarded property is unchanged: steering must not starve the tenants
	// it de-prioritizes.
	if jSFA < jWRR-0.08 {
		t.Errorf("sf-aware fairness %.3f collapsed relative to wrr %.3f", jSFA, jWRR)
	}

	// Live observability: every aid-dynamic tenant published its estimate
	// mid-run — the trajectory is non-empty and starts strictly before the
	// tenant's own barrier release.
	for li, r := range sfa {
		if len(r.SFTrajectory) == 0 {
			t.Errorf("loop %q has no SF trajectory", specs[li].Name)
			continue
		}
		first := r.SFTrajectory[0]
		if first.TimeNs >= r.End {
			t.Errorf("loop %q first SF point at %d, not before End %d",
				specs[li].Name, first.TimeNs, r.End)
		}
		if len(first.SF) != len(cfg.Platform.Clusters) {
			t.Errorf("loop %q SF table has %d entries, want %d",
				specs[li].Name, len(first.SF), len(cfg.Platform.Clusters))
		}
	}
	// The compute tenants' estimates must rank clearly above the memory-bound
	// tenants' — that separation is what the policy steers on.
	hi := sfa[0].SFEstimate
	lo := sfa[2].SFEstimate
	if hi == nil || lo == nil {
		t.Fatal("missing final SF estimates")
	}
	if hi[0] < 1.25*lo[0] {
		t.Errorf("SF separation too small to steer: compute %v vs membound %v", hi, lo)
	}
}
