package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// costRecord maps a CostModel to its serializable closed form, or nil for
// models with no closed form (replay then reconstructs a piecewise cost
// from the per-event Cost fields).
func costRecord(c CostModel) *trace.CostRecord {
	switch m := c.(type) {
	case UniformCost:
		return &trace.CostRecord{Kind: "uniform", Base: m.PerIter}
	case LinearCost:
		return &trace.CostRecord{Kind: "linear", Base: m.Base, Slope: m.Slope}
	case BlockNoisyCost:
		return &trace.CostRecord{Kind: "block", Base: m.Base, Amp: m.Amp, BlockLen: m.BlockLen, Seed: m.Seed}
	}
	return nil
}

// CostFromRecord rebuilds the closed-form cost model a recorder serialized
// with costRecord. It errors on unknown kinds rather than guessing.
func CostFromRecord(cr *trace.CostRecord) (CostModel, error) {
	if cr == nil {
		return nil, fmt.Errorf("sim: nil cost record")
	}
	switch cr.Kind {
	case "uniform":
		return UniformCost{PerIter: cr.Base}, nil
	case "linear":
		return LinearCost{Base: cr.Base, Slope: cr.Slope}, nil
	case "block":
		if cr.BlockLen <= 0 {
			return nil, fmt.Errorf("sim: block cost record has non-positive block length %d", cr.BlockLen)
		}
		return BlockNoisyCost{Base: cr.Base, Amp: cr.Amp, BlockLen: cr.BlockLen, Seed: cr.Seed}, nil
	}
	return nil, fmt.Errorf("sim: unknown cost record kind %q", cr.Kind)
}

// beginRecording stamps the run header for a recorded execution.
func beginRecording(cfg Config, policy string, startNs int64) error {
	var migs []trace.MigrationRecord
	for _, m := range cfg.Migrations {
		migs = append(migs, trace.MigrationRecord{AtNs: m.AtNs, Tid: m.Tid, ToCPU: m.ToCPU})
	}
	return cfg.Recorder.BeginRun(trace.RunMeta{
		Engine:     "sim",
		Platform:   trace.PlatformRecordOf(cfg.Platform),
		NThreads:   cfg.NThreads,
		Binding:    cfg.Binding.String(),
		Policy:     policy,
		StartNs:    startNs,
		Migrations: migs,
	})
}

// addLoopRecord registers one loop descriptor with the recorder and returns
// its record index.
func addLoopRecord(rec *trace.Recorder, spec LoopSpec, sched core.Scheduler) int {
	return rec.AddLoop(trace.LoopRecord{
		Name:      spec.Name,
		NI:        spec.NI,
		Weight:    spec.Weight,
		Scheduler: sched.Name(),
		Profile:   spec.Profile,
		Cost:      costRecord(spec.Cost),
	})
}

// phaseRecorder returns the decision-capture sink for loop idx: it forwards
// the scheduler's phase transitions into the run record. The simulator is
// single-goroutine, so the sink appends directly.
func phaseRecorder(rec *trace.Recorder, idx int) func(core.PhaseEvent) {
	return func(ev core.PhaseEvent) {
		rec.Phase(trace.PhaseEvent{TimeNs: ev.TimeNs, Tid: ev.Tid, Loop: idx,
			Epoch: ev.Epoch, Kind: ev.Kind, SF: ev.SF})
	}
}

// installPhaseSinks chains the non-nil sinks behind one phase observer when
// the scheduler exposes its transitions. A Scheduler holds a single observer
// slot, so every consumer — the recorder's decision capture, the engines'
// live-SF tracking — must share it through this chain.
func installPhaseSinks(sched core.Scheduler, sinks ...func(core.PhaseEvent)) {
	po, ok := sched.(core.PhaseObservable)
	if !ok {
		return
	}
	var live []func(core.PhaseEvent)
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return
	}
	po.SetPhaseObserver(func(ev core.PhaseEvent) {
		for _, s := range live {
			s(ev)
		}
	})
}
