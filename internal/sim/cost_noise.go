package sim

// BlockNoisyCost models loops whose per-iteration cost is uneven at a
// coarse granularity: contiguous blocks of BlockLen iterations share a cost
// drawn deterministically from the block index. This is the cost structure
// that makes dynamic scheduling genuinely beneficial (FT, leukocyte,
// heartwall in §5A): with fine-grained i.i.d. noise the per-thread block
// sums of a static distribution would even out by the law of large numbers,
// but block-correlated cost leaves static with real imbalance even on a
// symmetric machine.
//
// The block multiplier is 1 + Amp·u³ where u ∈ [0,1) is a hash of the block
// index and Seed; cubing skews the distribution so most blocks are cheap and
// a few are expensive (a heavy-ish tail, as in image-processing workloads
// whose cost depends on local content).
type BlockNoisyCost struct {
	// Base is the cost of an iteration in a multiplier-1 block.
	Base float64
	// Amp scales the block-to-block variation (e.g. 3 = up to 4x Base).
	Amp float64
	// BlockLen is the run length of equal-cost iterations (must be > 0).
	BlockLen int64
	// Seed decorrelates different loops of the same workload.
	Seed uint64
}

// mix64 is the SplitMix64 finalizer, used as a stateless hash.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// blockMul returns the cost multiplier of block b.
func (c BlockNoisyCost) blockMul(b int64) float64 {
	u := float64(mix64(uint64(b)^c.Seed)>>11) / (1 << 53)
	return 1 + c.Amp*u*u*u
}

// Units implements CostModel.
func (c BlockNoisyCost) Units(i int64) float64 {
	return c.Base * c.blockMul(i/c.BlockLen)
}

// RangeUnits implements CostModel in O(blocks-in-range) time.
func (c BlockNoisyCost) RangeUnits(lo, hi int64) float64 {
	if hi <= lo {
		return 0
	}
	sum := 0.0
	for b := lo / c.BlockLen; b*c.BlockLen < hi; b++ {
		blockLo := b * c.BlockLen
		blockHi := blockLo + c.BlockLen
		if blockLo < lo {
			blockLo = lo
		}
		if blockHi > hi {
			blockHi = hi
		}
		sum += float64(blockHi-blockLo) * c.Base * c.blockMul(b)
	}
	return sum
}
