package sim

import (
	"testing"

	"repro/internal/amp"
	"repro/internal/core"
)

// migrationLoop is long enough that a mid-loop migration leaves many
// iterations to redistribute.
func migrationLoop() LoopSpec {
	return LoopSpec{
		Name:    "mig-loop",
		NI:      20000,
		Profile: amp.Profile{ILP: 0.5, MemIntensity: 0.2},
		Cost:    UniformCost{PerIter: 80000},
	}
}

func aidDynFactory(info core.LoopInfo) (core.Scheduler, error) {
	return core.NewAIDDynamic(info, 1, 20)
}

func TestMigrationValidation(t *testing.T) {
	cfg := baseCfg(amp.PlatformA(), 8, amp.BindBS, aidDynFactory)
	cfg.Migrations = []Migration{{AtNs: 0, Tid: 0, ToCPU: 99}}
	if _, err := RunLoop(cfg, migrationLoop(), 0); err == nil {
		t.Error("migration to invalid CPU accepted")
	}
}

func TestMigrationKeepsCoverage(t *testing.T) {
	// A big->small migration mid-loop must not lose or duplicate work under
	// any migratable scheduler.
	for _, f := range []SchedulerFactory{aidDynFactory, aidStaticFactory, dynamicFactory} {
		cfg := baseCfg(amp.PlatformA(), 8, amp.BindBS, f)
		// Thread 0 starts on CPU 7 (big); move it to CPU 0's cluster...
		// CPU 0 is occupied by thread 7, but the model allows sharing —
		// oversubscription is part of what the OS may do to us. Use CPU 1.
		cfg.Migrations = []Migration{{AtNs: 1_000_000, Tid: 0, ToCPU: 1}}
		r, err := RunLoop(cfg, migrationLoop(), 0)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, n := range r.Iters {
			total += n
		}
		if total != 20000 {
			t.Errorf("%s: covered %d iterations after migration, want 20000", r.SchedulerName, total)
		}
	}
}

func TestAIDDynamicAdaptsToMigration(t *testing.T) {
	// §4.3's motivation: with notification, AID-dynamic re-sizes the moved
	// thread's allotments. A thread demoted big->small must receive clearly
	// fewer iterations after the move than a thread that stayed big, and the
	// loop must stay reasonably balanced.
	pl := amp.PlatformA()
	loop := migrationLoop()

	cfgMig := baseCfg(pl, 8, amp.BindBS, aidDynFactory)
	cfgMig.Migrations = []Migration{{AtNs: 100_000, Tid: 0, ToCPU: 1}} // demote early
	rMig, err := RunLoop(cfgMig, loop, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Thread 1 stayed on a big core; thread 0 was demoted.
	if rMig.Iters[0] >= rMig.Iters[1] {
		t.Errorf("demoted thread got %d iterations, thread on big core got %d; want fewer",
			rMig.Iters[0], rMig.Iters[1])
	}
	// Balance: finish spread should stay moderate despite the migration.
	var minF, maxF = rMig.Finish[0], rMig.Finish[0]
	for _, f := range rMig.Finish[1:] {
		if f < minF {
			minF = f
		}
		if f > maxF {
			maxF = f
		}
	}
	if spread := float64(maxF-minF) / float64(maxF); spread > 0.15 {
		t.Errorf("AID-dynamic post-migration imbalance %.1f%%, want < 15%%", spread*100)
	}
}

func TestAIDStaticAdaptsToEarlyMigration(t *testing.T) {
	// AID-static observes a migration notification delivered during the
	// sampling phase (before its single final allotment): the demoted
	// thread's allotment is sized for its new, slower core type. A
	// migration *after* the allotment cannot be compensated by AID-static —
	// the paper suggests work stealing for that case — but the simulator
	// charges whole chunks at claim time, so the post-allotment scenario is
	// not observable at this granularity (documented in DESIGN.md).
	pl := amp.PlatformA()
	cfg := baseCfg(pl, 8, amp.BindBS, aidStaticFactory)
	cfg.Migrations = []Migration{{AtNs: 50_000, Tid: 0, ToCPU: 1}} // demote during sampling
	r, err := RunLoop(cfg, migrationLoop(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Iters[0] >= r.Iters[1] {
		t.Errorf("demoted thread got %d iterations, big-core thread got %d; AID-static should size for the new type",
			r.Iters[0], r.Iters[1])
	}
}

func TestMigrationPromotionHelpsAIDDynamic(t *testing.T) {
	// The reverse direction: a small-core thread promoted to a big core
	// should end up executing more iterations than its small-core peers.
	pl := amp.PlatformA()
	cfg := baseCfg(pl, 8, amp.BindBS, aidDynFactory)
	// Thread 7 starts on CPU 0 (small); promote it to CPU 6 (big cluster).
	cfg.Migrations = []Migration{{AtNs: 100_000, Tid: 7, ToCPU: 6}}
	r, err := RunLoop(cfg, migrationLoop(), 0)
	if err != nil {
		t.Fatal(err)
	}
	small := float64(r.Iters[4]+r.Iters[5]+r.Iters[6]) / 3
	if float64(r.Iters[7]) <= small*1.2 {
		t.Errorf("promoted thread got %d iterations vs small-core average %.0f; want clearly more",
			r.Iters[7], small)
	}
}

func TestMigrationNoCrossClusterIsNoOp(t *testing.T) {
	// Moving a thread within the same cluster changes nothing observable.
	pl := amp.PlatformA()
	loop := migrationLoop()
	base := baseCfg(pl, 8, amp.BindBS, aidDynFactory)
	r0, err := RunLoop(base, loop, 0)
	if err != nil {
		t.Fatal(err)
	}
	mig := baseCfg(pl, 8, amp.BindBS, aidDynFactory)
	mig.Migrations = []Migration{{AtNs: 100_000, Tid: 0, ToCPU: 6}} // big -> big
	r1, err := RunLoop(mig, loop, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r0.End != r1.End {
		t.Errorf("intra-cluster migration changed completion: %d vs %d", r0.End, r1.End)
	}
}
