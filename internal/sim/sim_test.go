package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/trace"
)

func staticFactory(info core.LoopInfo) (core.Scheduler, error)  { return core.NewStatic(info) }
func dynamicFactory(info core.LoopInfo) (core.Scheduler, error) { return core.NewDynamic(info, 1) }
func aidStaticFactory(info core.LoopInfo) (core.Scheduler, error) {
	return core.NewAIDStatic(info, 1)
}

func baseCfg(pl *amp.Platform, n int, b amp.Binding, f SchedulerFactory) Config {
	return Config{Platform: pl, NThreads: n, Binding: b, Factory: f}
}

// epLoop is an EP-like loop: uniform iteration cost, compute bound.
func epLoop(ni int64) LoopSpec {
	return LoopSpec{
		Name:    "ep-main",
		NI:      ni,
		Profile: amp.Profile{ILP: 0.9, MemIntensity: 0.05},
		Cost:    UniformCost{PerIter: 50000},
	}
}

func TestCostModels(t *testing.T) {
	u := UniformCost{PerIter: 3}
	if u.Units(5) != 3 || u.RangeUnits(2, 6) != 12 {
		t.Error("UniformCost wrong")
	}
	l := LinearCost{Base: 1, Slope: 2}
	// i=3: 1+6=7
	if l.Units(3) != 7 {
		t.Errorf("LinearCost.Units(3) = %v", l.Units(3))
	}
	// [2,5): 7 + 9 + 11 wait: units(2)=5, units(3)=7, units(4)=9 -> 21
	if got := l.RangeUnits(2, 5); got != 21 {
		t.Errorf("LinearCost.RangeUnits(2,5) = %v, want 21", got)
	}
	f := FuncCost{F: func(i int64) float64 { return float64(i * i) }}
	if f.Units(4) != 16 || f.RangeUnits(0, 4) != 0+1+4+9 {
		t.Error("FuncCost wrong")
	}
}

func TestCostModelRangeMatchesSum(t *testing.T) {
	prop := func(loRaw, nRaw uint8, base, slope uint8) bool {
		lo := int64(loRaw)
		hi := lo + int64(nRaw%50)
		l := LinearCost{Base: float64(base), Slope: float64(slope) / 16}
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += l.Units(i)
		}
		return math.Abs(l.RangeUnits(lo, hi)-sum) < 1e-6*(1+sum)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestConfigValidate(t *testing.T) {
	pl := amp.PlatformA()
	good := baseCfg(pl, 8, amp.BindBS, staticFactory)
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{NThreads: 8, Factory: staticFactory},               // nil platform
		{Platform: pl, NThreads: 0, Factory: staticFactory}, // no threads
		{Platform: pl, NThreads: 9, Factory: staticFactory}, // oversubscribed
		{Platform: pl, NThreads: 8},                         // nil factory
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestLoopSpecValidate(t *testing.T) {
	if err := epLoop(100).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := LoopSpec{Name: "x", NI: -1, Cost: UniformCost{1}}
	if err := bad.Validate(); err == nil {
		t.Error("negative NI accepted")
	}
	noCost := LoopSpec{Name: "x", NI: 10}
	if err := noCost.Validate(); err == nil {
		t.Error("nil cost accepted")
	}
	badProf := LoopSpec{Name: "x", NI: 10, Cost: UniformCost{1}, Profile: amp.Profile{ILP: 2}}
	if err := badProf.Validate(); err == nil {
		t.Error("bad profile accepted")
	}
}

func TestStaticImbalanceOnAMP(t *testing.T) {
	// The Fig. 1a scenario: EP under static on big+small cores. Big-core
	// threads finish far earlier than small-core threads; completion is
	// bounded by the small cores.
	pl := amp.PlatformA()
	cfg := baseCfg(pl, 8, amp.BindBS, staticFactory)
	r, err := RunLoop(cfg, epLoop(8000), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Threads 0-3 are big under BS; they must arrive at the barrier much
	// earlier than threads 4-7.
	bigMax := int64(0)
	smallMin := int64(math.MaxInt64)
	for tid := 0; tid < 4; tid++ {
		if r.Finish[tid] > bigMax {
			bigMax = r.Finish[tid]
		}
	}
	for tid := 4; tid < 8; tid++ {
		if r.Finish[tid] < smallMin {
			smallMin = r.Finish[tid]
		}
	}
	if float64(smallMin) < 2*float64(bigMax) {
		t.Errorf("expected small-core threads to finish >2x later: bigMax=%d smallMin=%d", bigMax, smallMin)
	}
}

func TestFig1EquivalenceTwoBigTwoSmallVsFourSmall(t *testing.T) {
	// Fig. 1 observation: EP with static on 2B-2S completes in nearly the
	// same time as on 4S, because the loop is bounded by the small cores.
	base := amp.PlatformA()
	cl := append([]amp.Cluster(nil), base.Clusters...)
	cl[0].NumCores = 2
	cl[1].NumCores = 2
	mixed, err := amp.New("A-2B2S", cl, base.Overhead)
	if err != nil {
		t.Fatal(err)
	}
	r2b2s, err := RunLoop(baseCfg(mixed, 4, amp.BindBS, staticFactory), epLoop(8000), 0)
	if err != nil {
		t.Fatal(err)
	}
	// 4 threads, SB binding on the full platform -> CPUs 0-3, all small.
	r4s, err := RunLoop(baseCfg(base, 4, amp.BindSB, staticFactory), epLoop(8000), 0)
	if err != nil {
		t.Fatal(err)
	}
	t1 := float64(r2b2s.End - r2b2s.Start)
	t2 := float64(r4s.End - r4s.Start)
	if math.Abs(t1-t2)/t2 > 0.05 {
		t.Errorf("2B-2S (%v) and 4S (%v) should complete within 5%%", t1, t2)
	}
}

func TestAIDStaticBeatsStaticOnLoop(t *testing.T) {
	pl := amp.PlatformA()
	rStatic, err := RunLoop(baseCfg(pl, 8, amp.BindBS, staticFactory), epLoop(8000), 0)
	if err != nil {
		t.Fatal(err)
	}
	rAID, err := RunLoop(baseCfg(pl, 8, amp.BindBS, aidStaticFactory), epLoop(8000), 0)
	if err != nil {
		t.Fatal(err)
	}
	tStatic := rStatic.End - rStatic.Start
	tAID := rAID.End - rAID.Start
	if float64(tStatic)/float64(tAID) < 1.3 {
		t.Errorf("AID-static (%d) should beat static (%d) by >=1.3x on this loop", tAID, tStatic)
	}
}

func TestDynamicOverheadHurtsShortIterations(t *testing.T) {
	// IS-like loop: very cheap iterations. dynamic(1) pays a pool access
	// plus locality penalty per iteration and must lose to static even on
	// an AMP (§5A: IS slows down 1.93x under dynamic).
	pl := amp.PlatformA()
	shortLoop := LoopSpec{
		Name:    "is-like",
		NI:      20000,
		Profile: amp.Profile{ILP: 0.3, MemIntensity: 0.55},
		Cost:    UniformCost{PerIter: 450},
	}
	rStatic, err := RunLoop(baseCfg(pl, 8, amp.BindBS, staticFactory), shortLoop, 0)
	if err != nil {
		t.Fatal(err)
	}
	rDyn, err := RunLoop(baseCfg(pl, 8, amp.BindBS, dynamicFactory), shortLoop, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rDyn.End-rDyn.Start <= rStatic.End-rStatic.Start {
		t.Errorf("dynamic (%d) should lose to static (%d) on cheap iterations",
			rDyn.End-rDyn.Start, rStatic.End-rStatic.Start)
	}
}

func TestDynamicWinsOnExpensiveIterations(t *testing.T) {
	// With expensive uniform iterations, dynamic's pool overhead is
	// negligible and its asymmetry adaptation beats static ([13], §3).
	pl := amp.PlatformA()
	r1, err := RunLoop(baseCfg(pl, 8, amp.BindBS, staticFactory), epLoop(4000), 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunLoop(baseCfg(pl, 8, amp.BindBS, dynamicFactory), epLoop(4000), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.End-r2.Start >= r1.End-r1.Start {
		t.Errorf("dynamic (%d) should beat static (%d) on expensive iterations",
			r2.End-r2.Start, r1.End-r1.Start)
	}
}

func TestTraceRecording(t *testing.T) {
	pl := amp.PlatformA()
	tr := trace.New(8)
	cfg := baseCfg(pl, 8, amp.BindBS, staticFactory)
	cfg.Trace = tr
	r, err := RunLoop(cfg, epLoop(4000), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.EndTime() != r.End {
		t.Errorf("trace end %d != loop end %d", tr.EndTime(), r.End)
	}
	// Under static on an AMP the trace must show heavy imbalance: big-core
	// threads wait at the barrier.
	if imb := tr.ImbalancePct(); imb < 30 {
		t.Errorf("static trace imbalance = %v%%, expected heavy imbalance", imb)
	}
	for tid := 0; tid < 8; tid++ {
		if tr.TimeIn(tid, trace.Running) == 0 {
			t.Errorf("thread %d recorded no Running time", tid)
		}
	}
}

func TestAIDStaticTraceBalanced(t *testing.T) {
	pl := amp.PlatformA()
	tr := trace.New(8)
	cfg := baseCfg(pl, 8, amp.BindBS, aidStaticFactory)
	cfg.Trace = tr
	if _, err := RunLoop(cfg, epLoop(8000), 0); err != nil {
		t.Fatal(err)
	}
	if imb := tr.ImbalancePct(); imb > 15 {
		t.Errorf("AID-static trace imbalance = %v%%, want < 15%%", imb)
	}
}

func TestPoolAccessAccounting(t *testing.T) {
	pl := amp.PlatformA()
	r, err := RunLoop(baseCfg(pl, 8, amp.BindBS, staticFactory), epLoop(1000), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.PoolAccesses != 0 {
		t.Errorf("static performed %d pool accesses, want 0", r.PoolAccesses)
	}
	rd, err := RunLoop(baseCfg(pl, 8, amp.BindBS, dynamicFactory), epLoop(1000), 0)
	if err != nil {
		t.Fatal(err)
	}
	// dynamic(1): one access per iteration plus one final failed access per
	// thread.
	if rd.PoolAccesses < 1000 || rd.PoolAccesses > 1100 {
		t.Errorf("dynamic pool accesses = %d, want ~1008", rd.PoolAccesses)
	}
}

func TestIterationConservation(t *testing.T) {
	pl := amp.PlatformA()
	for _, f := range []SchedulerFactory{staticFactory, dynamicFactory, aidStaticFactory} {
		r, err := RunLoop(baseCfg(pl, 8, amp.BindBS, f), epLoop(5000), 0)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, n := range r.Iters {
			total += n
		}
		if total != 5000 {
			t.Errorf("%s executed %d iterations, want 5000", r.SchedulerName, total)
		}
	}
}

func TestMeasureLoopSF(t *testing.T) {
	pl := amp.PlatformA()
	// Compute-bound loop: SF should approach the platform's compute SF.
	sf, err := MeasureLoopSF(pl, epLoop(2000))
	if err != nil {
		t.Fatal(err)
	}
	want := pl.OfflineSF(amp.Profile{ILP: 0.9, MemIntensity: 0.05})
	if math.Abs(sf-want)/want > 0.1 {
		t.Errorf("measured SF %v, platform model says %v", sf, want)
	}
	// Memory-bound loop: small SF.
	memLoop := LoopSpec{
		Name: "mem", NI: 2000,
		Profile: amp.Profile{ILP: 0.1, MemIntensity: 0.9},
		Cost:    UniformCost{PerIter: 50000},
	}
	sfMem, err := MeasureLoopSF(pl, memLoop)
	if err != nil {
		t.Fatal(err)
	}
	if sfMem >= sf {
		t.Errorf("memory-bound SF (%v) should be below compute-bound SF (%v)", sfMem, sf)
	}
}

func TestDeterminism(t *testing.T) {
	pl := amp.PlatformA()
	run := func() int64 {
		r, err := RunLoop(baseCfg(pl, 8, amp.BindBS, aidStaticFactory), epLoop(4000), 0)
		if err != nil {
			t.Fatal(err)
		}
		return r.End
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("simulation not deterministic: %d vs %d", a, b)
	}
}

// --- programs ---

func TestPhaseValidate(t *testing.T) {
	loop := epLoop(10)
	good := []Phase{
		{Loop: &loop},
		{Loop: &loop, Reps: 5},
		{SerialUnits: 100},
	}
	for i, ph := range good {
		if err := ph.Validate(); err != nil {
			t.Errorf("good phase %d rejected: %v", i, err)
		}
	}
	bad := []Phase{
		{},
		{Loop: &loop, SerialUnits: 10},
		{Loop: &loop, Reps: -1},
		{SerialUnits: 10, SerialProfile: amp.Profile{ILP: 5}},
	}
	for i, ph := range bad {
		if err := ph.Validate(); err == nil {
			t.Errorf("bad phase %d accepted", i)
		}
	}
}

func TestProgramValidateAndLoops(t *testing.T) {
	loop := epLoop(10)
	pr := Program{Name: "p", Phases: []Phase{{SerialUnits: 5}, {Loop: &loop, Reps: 3}}}
	if err := pr.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	if got := len(pr.Loops()); got != 1 {
		t.Errorf("Loops() returned %d specs, want 1", got)
	}
	empty := Program{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Error("empty program accepted")
	}
}

func TestSerialPhaseFasterUnderBS(t *testing.T) {
	// A serial-dominated program (bptree-like, §5A) completes faster when
	// the master thread runs on a big core (BS) than on a small one (SB).
	pl := amp.PlatformA()
	loop := epLoop(800)
	prog := Program{
		Name: "serial-heavy",
		Phases: []Phase{
			{SerialUnits: 5e7, SerialProfile: amp.Profile{ILP: 0.6}},
			{Loop: &loop},
		},
	}
	rSB, err := RunProgram(baseCfg(pl, 8, amp.BindSB, staticFactory), prog)
	if err != nil {
		t.Fatal(err)
	}
	rBS, err := RunProgram(baseCfg(pl, 8, amp.BindBS, staticFactory), prog)
	if err != nil {
		t.Fatal(err)
	}
	if rBS.TotalNs >= rSB.TotalNs {
		t.Errorf("BS (%d) should beat SB (%d) for serial-heavy program", rBS.TotalNs, rSB.TotalNs)
	}
	speedup := float64(rSB.TotalNs) / float64(rBS.TotalNs)
	if speedup < 1.5 {
		t.Errorf("BS/SB acceleration = %v, want substantial (serial phase dominates)", speedup)
	}
}

func TestProgramAccumulatesPhases(t *testing.T) {
	pl := amp.PlatformA()
	loop := epLoop(1000)
	prog := Program{
		Name: "mix",
		Phases: []Phase{
			{SerialUnits: 1e6, SerialProfile: amp.Profile{ILP: 0.5}},
			{Loop: &loop, Reps: 3},
		},
	}
	r, err := RunProgram(baseCfg(pl, 8, amp.BindBS, dynamicFactory), prog)
	if err != nil {
		t.Fatal(err)
	}
	if r.SerialNs <= 0 || r.LoopNs <= 0 {
		t.Errorf("phase accounting: serial=%d loop=%d", r.SerialNs, r.LoopNs)
	}
	if r.TotalNs != r.SerialNs+r.LoopNs {
		t.Errorf("total %d != serial %d + loop %d", r.TotalNs, r.SerialNs, r.LoopNs)
	}
	if r.PoolAccesses < 3000 {
		t.Errorf("3 reps of dynamic(1) over 1000 iters should log >=3000 accesses, got %d", r.PoolAccesses)
	}
}

func TestProgramTraceContiguity(t *testing.T) {
	// Trace intervals from serial and loop phases must not overlap.
	pl := amp.PlatformA()
	tr := trace.New(4)
	loop := epLoop(500)
	prog := Program{
		Name: "t",
		Phases: []Phase{
			{SerialUnits: 1e6, SerialProfile: amp.Profile{ILP: 0.5}},
			{Loop: &loop},
			{SerialUnits: 1e6, SerialProfile: amp.Profile{ILP: 0.5}},
			{Loop: &loop},
		},
	}
	cfg := baseCfg(pl, 4, amp.BindBS, staticFactory)
	cfg.Trace = tr
	if _, err := RunProgram(cfg, prog); err != nil {
		t.Fatal(err) // trace.Add panics on overlap, so reaching here is the test
	}
	if tr.EndTime() == 0 {
		t.Error("no trace recorded")
	}
}

func TestAIDStaticThreeCoreTypes(t *testing.T) {
	// §4.2's NC-core-type generalization: on the tri-cluster platform,
	// AID-static must give prime threads more iterations than middle
	// threads, and middle more than little, with balanced finish times.
	pl := amp.PlatformTri()
	cfg := baseCfg(pl, 8, amp.BindBS, aidStaticFactory)
	loop := LoopSpec{
		Name:    "tri-loop",
		NI:      24000,
		Profile: amp.Profile{ILP: 0.6, MemIntensity: 0.2},
		Cost:    UniformCost{PerIter: 60000},
	}
	r, err := RunLoop(cfg, loop, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Threads 0-1 prime, 2-4 middle, 5-7 little under BS.
	prime := float64(r.Iters[0]+r.Iters[1]) / 2
	middle := float64(r.Iters[2]+r.Iters[3]+r.Iters[4]) / 3
	little := float64(r.Iters[5]+r.Iters[6]+r.Iters[7]) / 3
	if !(prime > middle*1.1 && middle > little*1.1) {
		t.Errorf("three-type distribution not ordered: prime %v, middle %v, little %v",
			prime, middle, little)
	}
	// The distribution should track the emergent speed ratios within ~20%.
	pSpeed := pl.Speed(7, loop.Profile, 2)
	mSpeed := pl.Speed(4, loop.Profile, 3)
	lSpeed := pl.Speed(0, loop.Profile, 3)
	wantPM := pSpeed / mSpeed
	gotPM := prime / middle
	if gotPM < wantPM*0.8 || gotPM > wantPM*1.2 {
		t.Errorf("prime/middle iteration ratio %v, speed ratio %v", gotPM, wantPM)
	}
	wantML := mSpeed / lSpeed
	gotML := middle / little
	if gotML < wantML*0.8 || gotML > wantML*1.2 {
		t.Errorf("middle/little iteration ratio %v, speed ratio %v", gotML, wantML)
	}
	// Balanced completion.
	var minF, maxF = r.Finish[0], r.Finish[0]
	for _, f := range r.Finish[1:] {
		if f < minF {
			minF = f
		}
		if f > maxF {
			maxF = f
		}
	}
	if float64(maxF-minF) > 0.12*float64(maxF) {
		t.Errorf("three-type AID-static imbalanced: %v", r.Finish)
	}
}

func TestAIDDynamicThreeCoreTypes(t *testing.T) {
	pl := amp.PlatformTri()
	cfg := baseCfg(pl, 8, amp.BindBS, func(info core.LoopInfo) (core.Scheduler, error) {
		return core.NewAIDDynamic(info, 1, 10)
	})
	loop := LoopSpec{
		Name:    "tri-dyn",
		NI:      24000,
		Profile: amp.Profile{ILP: 0.6, MemIntensity: 0.2},
		Cost:    UniformCost{PerIter: 60000},
	}
	r, err := RunLoop(cfg, loop, 0)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range r.Iters {
		total += n
	}
	if total != loop.NI {
		t.Fatalf("covered %d of %d iterations", total, loop.NI)
	}
	prime := float64(r.Iters[0]+r.Iters[1]) / 2
	little := float64(r.Iters[5]+r.Iters[6]+r.Iters[7]) / 3
	if prime <= little*1.2 {
		t.Errorf("AID-dynamic on 3 types: prime avg %v should exceed little avg %v", prime, little)
	}
}
