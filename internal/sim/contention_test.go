package sim

import (
	"reflect"
	"testing"

	"repro/internal/amp"
	"repro/internal/core"
)

// TestContendersPerShard pins the occupancy semantics of the contention
// charge: only threads engaged on the origin shard's line count, a foreign
// accessor adds itself to that population, and a shared origin (Origin < 0)
// contends with the whole active set.
func TestContendersPerShard(t *testing.T) {
	byType := []int{3, 2} // 3 big-homed threads active, 2 little-homed
	total := 5
	cases := []struct {
		name            string
		ownType, origin int
		want            int
	}{
		{"home shard, 3 residents", 0, 0, 2},
		{"home shard, 2 residents", 1, 1, 1},
		{"foreign access adds the claimer", 0, 1, 2}, // 2 residents + self, minus self
		{"shared origin charges the fleet", 0, core.OriginShared, 4},
		{"out-of-range origin charges the fleet", 0, 7, 4},
	}
	for _, c := range cases {
		if got := contenders(byType, total, c.ownType, c.origin); got != c.want {
			t.Errorf("%s: contenders=%d, want %d", c.name, got, c.want)
		}
	}
	// A lone accessor on an otherwise idle shard pays nothing, whether it
	// owns the shard or reached across to it.
	if got := contenders([]int{1, 0}, 1, 0, 0); got != 0 {
		t.Errorf("lone home accessor: contenders=%d, want 0", got)
	}
	if got := contenders([]int{0, 1}, 1, 1, 0); got != 0 {
		t.Errorf("foreign access to empty shard: contenders=%d, want 0", got)
	}
}

// TestLocalityTiers pins the provenance-tiered cold-chunk penalty: home
// shard pays the base penalty, a same-package foreign shard the foreign
// tier, a cross-package shard the remote tier, and a shared origin the base.
func TestLocalityTiers(t *testing.T) {
	ov := amp.Overheads{LocalityPenaltyNs: 100, LocalityForeignNs: 150, LocalityRemoteNs: 250}
	dist := [][]int{{0, 1, 2}, {1, 0, 2}, {2, 2, 0}}
	if got := localityNs(ov, dist, 0, 0); got != 100 {
		t.Errorf("home tier: %v, want 100", got)
	}
	if got := localityNs(ov, dist, 0, 1); got != 150 {
		t.Errorf("same-package tier: %v, want 150", got)
	}
	if got := localityNs(ov, dist, 0, 2); got != 250 {
		t.Errorf("cross-package tier: %v, want 250", got)
	}
	if got := localityNs(ov, dist, 1, core.OriginShared); got != 100 {
		t.Errorf("shared origin: %v, want 100", got)
	}
}

// TestQuietFleetZeroContention is the regression test for the parked-worker
// contention bug: a worker idle-forwarding toward a future arrival touches
// no pool line and must not be charged as a contender on anyone else's
// loop. Running loop A alone and running it next to a loop that arrives
// long after A finishes must produce bit-identical results for A — the old
// fleet-wide charge (liveWorkers-1) inflated A's tail, because workers
// retired from A stayed "live" while parked against B's arrival.
func TestQuietFleetZeroContention(t *testing.T) {
	cfg := multiCfg(4)
	loopA := uniformSpec("a", 4096, 1)
	solo, err := RunLoops(cfg, []LoopSpec{loopA}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// B arrives long after A's barrier has released: every worker spends
	// A's entire tail parked (curLoop == -1) in the two-tenant run.
	loopB := uniformSpec("b", 4096, 1)
	loopB.Arrive = solo[0].End * 10
	both, err := RunLoops(cfg, []LoopSpec{loopA, loopB}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := solo[0], both[0]
	if a.SchedNs != b.SchedNs {
		t.Errorf("parked fleet changed loop A's SchedNs: solo %d, with quiet tenant %d", a.SchedNs, b.SchedNs)
	}
	if a.End != b.End {
		t.Errorf("parked fleet changed loop A's End: solo %d, with quiet tenant %d", a.End, b.End)
	}
	if a.PoolAccesses != b.PoolAccesses {
		t.Errorf("parked fleet changed loop A's PoolAccesses: solo %d vs %d", a.PoolAccesses, b.PoolAccesses)
	}
	if !reflect.DeepEqual(a.Iters, b.Iters) {
		t.Errorf("parked fleet changed loop A's per-thread iterations:\nsolo %v\nboth %v", a.Iters, b.Iters)
	}
	if !reflect.DeepEqual(a.Finish, b.Finish) {
		t.Errorf("parked fleet changed loop A's per-thread finish times:\nsolo %v\nboth %v", a.Finish, b.Finish)
	}
}

// TestPerShardContentionBound pins that the contention charge scales with
// the shard population, not the fleet: on Platform A (two clusters of four)
// a dynamic schedule's home claims collide with at most 3 other threads, so
// zeroing ContentionNs must recover far less than the fleet-wide model's
// 7 x ContentionNs x accesses.
func TestPerShardContentionBound(t *testing.T) {
	base := amp.PlatformA().Overhead.ContentionNs
	mk := func(contention float64) LoopResult {
		p := amp.PlatformA() // fresh instance: presets return pointers
		p.Overhead.ContentionNs = contention
		res, err := RunLoop(Config{
			Platform: p,
			NThreads: 8,
			Binding:  amp.BindBS,
			Factory: func(info core.LoopInfo) (core.Scheduler, error) {
				return core.NewDynamic(info, 8)
			},
		}, uniformSpec("bound", 8192, 1), 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := mk(base)
	without := mk(0)
	delta := float64(with.SchedNs - without.SchedNs)
	if delta <= 0 {
		t.Fatalf("contention added nothing: SchedNs %d vs %d", with.SchedNs, without.SchedNs)
	}
	// Upper bound under the old fleet-wide model, computed over the larger
	// of the two access counts (timing shifts can change claim counts).
	acc := with.PoolAccesses
	if without.PoolAccesses > acc {
		acc = without.PoolAccesses
	}
	fleetWide := 7 * base * float64(acc)
	// Per-shard occupancy caps the charge at 3 (home) or 4 (cross-cluster)
	// contenders; allow the cross-cluster worst case plus slack for claim-
	// count drift, which still sits well below the fleet-wide bill.
	if delta >= fleetWide*0.75 {
		t.Errorf("contention delta %v not materially below fleet-wide bound %v", delta, fleetWide)
	}
}
