package sim

import (
	"testing"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/fair"
)

// multiCfg is the shared fleet configuration of the multi-loop tests:
// the full Platform A under BS with a per-loop dynamic scheduler.
func multiCfg(chunk int64) Config {
	return Config{
		Platform: amp.PlatformA(),
		NThreads: 8,
		Binding:  amp.BindBS,
		Factory: func(info core.LoopInfo) (core.Scheduler, error) {
			return core.NewDynamic(info, chunk)
		},
	}
}

func uniformSpec(name string, ni int64, weight int) LoopSpec {
	return LoopSpec{
		Name:    name,
		NI:      ni,
		Profile: amp.Profile{ILP: 0.5, MemIntensity: 0.1},
		Cost:    UniformCost{PerIter: 20000},
		Weight:  weight,
	}
}

func sumIters(r LoopResult) int64 {
	var t int64
	for _, n := range r.Iters {
		t += n
	}
	return t
}

// TestMultiLoopExactCoverageMixedTenants runs K=5 concurrent loops with
// mixed trip counts (0, 1, prime, large) and mixed schedulers on one fleet
// and asserts per-loop exact coverage and per-loop barrier release: every
// loop gets an End, and the degenerate tenants release long before the
// large ones.
func TestMultiLoopExactCoverageMixedTenants(t *testing.T) {
	cfg := multiCfg(4)
	cfg.Factory = nil
	cfg.FactoryNamed = func(name string, info core.LoopInfo) (core.Scheduler, error) {
		switch name {
		case "empty", "big-dynamic":
			return core.NewDynamic(info, 4)
		case "one":
			return core.NewStatic(info)
		case "prime-aid-dynamic":
			return core.NewAIDDynamic(info, 1, 5)
		case "big-aid-hybrid":
			return core.NewAIDHybrid(info, 1, 0.8)
		}
		return nil, nil
	}
	specs := []LoopSpec{
		uniformSpec("empty", 0, 1),
		uniformSpec("one", 1, 1),
		uniformSpec("prime-aid-dynamic", 10007, 1),
		uniformSpec("big-dynamic", 200_000, 1),
		uniformSpec("big-aid-hybrid", 200_000, 1),
	}
	results, err := RunLoops(cfg, specs, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for li, r := range results {
		if got := sumIters(r); got != specs[li].NI {
			t.Errorf("loop %q covered %d of %d iterations", specs[li].Name, got, specs[li].NI)
		}
		if r.End <= 0 && specs[li].NI > 0 {
			t.Errorf("loop %q barrier never released (End=%d)", specs[li].Name, r.End)
		}
	}
	// Independent barriers: the empty and single-iteration tenants release
	// while the big tenants are still running.
	for _, small := range []int{0, 1} {
		for _, big := range []int{3, 4} {
			if results[small].End >= results[big].End {
				t.Errorf("loop %q (End %d) should release before %q (End %d)",
					specs[small].Name, results[small].End, specs[big].Name, results[big].End)
			}
		}
	}
}

// TestMultiLoopWeightedFairness submits two identical loops with weights
// 2:1 under weighted round-robin: the heavy loop must take the larger
// fleet share and release its barrier first, while total work conservation
// keeps the second barrier near the single-policy makespan.
func TestMultiLoopWeightedFairness(t *testing.T) {
	cfg := multiCfg(8)
	specs := []LoopSpec{
		uniformSpec("heavy", 60_000, 2),
		uniformSpec("light", 60_000, 1),
	}
	results, err := RunLoops(cfg, specs, fair.NewWeightedRoundRobin(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	for li, r := range results {
		if got := sumIters(r); got != specs[li].NI {
			t.Fatalf("loop %q covered %d of %d", specs[li].Name, got, specs[li].NI)
		}
	}
	if results[0].End >= results[1].End {
		t.Errorf("weight-2 loop End %d should precede weight-1 loop End %d",
			results[0].End, results[1].End)
	}
	// With a 2:1 share the heavy loop should be clearly ahead — its barrier
	// well before the light loop's — but not as extreme as run-to-completion.
	ratio := float64(results[0].End) / float64(results[1].End)
	if ratio > 0.95 {
		t.Errorf("weighted shares had no effect: End ratio %.3f", ratio)
	}
}

// TestMultiLoopFCFSHeadOfLine pins the baseline the fairness policy
// replaces: under first-come-first-served the whole fleet serves the oldest
// loop to completion, so the first barrier releases at roughly half the
// makespan and the second loop is blocked behind it.
func TestMultiLoopFCFSHeadOfLine(t *testing.T) {
	cfg := multiCfg(8)
	specs := []LoopSpec{
		uniformSpec("first", 60_000, 1),
		uniformSpec("second", 60_000, 1),
	}
	results, err := RunLoops(cfg, specs, fair.NewFCFS(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for li, r := range results {
		if got := sumIters(r); got != specs[li].NI {
			t.Fatalf("loop %q covered %d of %d", specs[li].Name, got, specs[li].NI)
		}
	}
	if results[0].End >= results[1].End {
		t.Fatalf("FCFS first loop End %d should precede second End %d",
			results[0].End, results[1].End)
	}
	if ratio := float64(results[0].End) / float64(results[1].End); ratio > 0.75 {
		t.Errorf("FCFS head-of-line not visible: End ratio %.3f, want ~0.5", ratio)
	}
}

// TestMultiLoopEqualWeightsBalanced checks that two identical weight-1
// loops release their barriers close together under WRR — neither starves.
func TestMultiLoopEqualWeightsBalanced(t *testing.T) {
	cfg := multiCfg(8)
	specs := []LoopSpec{
		uniformSpec("a", 60_000, 1),
		uniformSpec("b", 60_000, 1),
	}
	results, err := RunLoops(cfg, specs, fair.NewWeightedRoundRobin(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	early, late := results[0].End, results[1].End
	if early > late {
		early, late = late, early
	}
	if float64(early) < 0.8*float64(late) {
		t.Errorf("equal-weight loops diverged: Ends %d vs %d", results[0].End, results[1].End)
	}
}

// TestMultiLoopSingleMatchesDedicatedDistribution runs one loop through
// RunLoops and through RunLoop and asserts the dynamic scheduler makes the
// same per-thread distribution decisions (the multi-loop engine differs
// only in fork/join accounting, which dynamic ignores).
func TestMultiLoopSingleMatchesDedicatedDistribution(t *testing.T) {
	cfg := multiCfg(16)
	spec := uniformSpec("solo", 40_000, 1)
	multi, err := RunLoops(cfg, []LoopSpec{spec}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	single, err := RunLoop(cfg, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sumIters(multi[0]) != sumIters(single) {
		t.Fatalf("coverage differs: multi %d vs single %d", sumIters(multi[0]), sumIters(single))
	}
	for tid := range multi[0].Iters {
		if multi[0].Iters[tid] != single.Iters[tid] {
			t.Errorf("thread %d iters differ: multi %d vs single %d",
				tid, multi[0].Iters[tid], single.Iters[tid])
		}
	}
}

func TestMultiLoopErrors(t *testing.T) {
	cfg := multiCfg(4)
	spec := uniformSpec("x", 100, 1)
	if _, err := RunLoops(cfg, nil, nil, 0); err == nil {
		t.Error("empty spec list accepted")
	}
	bad := cfg
	bad.Migrations = []Migration{{Tid: 0, ToCPU: 1}}
	if _, err := RunLoops(bad, []LoopSpec{spec}, nil, 0); err == nil {
		t.Error("migrations accepted under multi-loop execution")
	}
	neg := spec
	neg.Weight = -1
	if _, err := RunLoops(cfg, []LoopSpec{neg}, nil, 0); err == nil {
		t.Error("negative weight accepted")
	}
	if err := neg.Validate(); err == nil {
		t.Error("LoopSpec.Validate accepted negative weight")
	}
}

// TestMultiLoopStaggeredArrivals is the open-loop extension's core
// contract: a loop admitted mid-run starts at its arrival stamp, never
// executes before it, still gets exact coverage, and its Start reflects the
// arrival (so End-Start is queueing-inclusive service latency, and the
// fleet span max(End)-min(Start) exceeds every individual latency when
// starts stagger).
func TestMultiLoopStaggeredArrivals(t *testing.T) {
	cfg := multiCfg(8)
	early := uniformSpec("early", 40_000, 1)
	late := uniformSpec("late", 40_000, 1)
	// Late arrives roughly mid-way through early's solo run.
	soloRes, err := RunLoops(cfg, []LoopSpec{early}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	late.Arrive = soloRes[0].End / 2
	results, err := RunLoops(cfg, []LoopSpec{early, late}, fair.NewWeightedRoundRobin(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	for li, spec := range []LoopSpec{early, late} {
		if got := sumIters(results[li]); got != spec.NI {
			t.Fatalf("loop %q covered %d of %d", spec.Name, got, spec.NI)
		}
	}
	if results[0].Start != 0 {
		t.Errorf("early loop Start = %d, want 0", results[0].Start)
	}
	if results[1].Start != late.Arrive {
		t.Errorf("late loop Start = %d, want its arrival %d", results[1].Start, late.Arrive)
	}
	if results[1].End <= late.Arrive {
		t.Errorf("late loop End %d not after its arrival %d", results[1].End, late.Arrive)
	}
	// No worker may touch the late loop before it arrives: its earliest
	// per-thread Finish (and hence every grant) is after Arrive, and the
	// early loop must have made progress alone — its End under staggered
	// competition lands before the late loop's.
	for tid, f := range results[1].Finish {
		if f < late.Arrive {
			t.Errorf("thread %d finished late loop at %d, before its arrival %d", tid, f, late.Arrive)
		}
	}
	if results[0].End >= results[1].End {
		t.Errorf("early loop End %d should precede late loop End %d", results[0].End, results[1].End)
	}
	// Fleet span vs per-loop latency: the span max(End)-min(Start) must
	// strictly exceed the larger individual latency — the quantity the
	// aidserve makespan bug conflated.
	span := results[1].End - 0
	lat0 := results[0].End - results[0].Start
	lat1 := results[1].End - results[1].Start
	if span <= lat0 || span <= lat1 {
		t.Errorf("fleet span %d not beyond per-loop latencies %d/%d", span, lat0, lat1)
	}
}

// TestMultiLoopArrivalAfterQuietFleet: a loop arriving after every earlier
// loop has drained must still run (workers idle forward to the arrival
// instead of exiting), and virtual time jumps — no busy-wait is modeled.
func TestMultiLoopArrivalAfterQuietFleet(t *testing.T) {
	cfg := multiCfg(8)
	first := uniformSpec("first", 5_000, 1)
	second := uniformSpec("second", 5_000, 1)
	second.Arrive = int64(1e12) // far beyond first's drain
	results, err := RunLoops(cfg, []LoopSpec{first, second}, fair.NewWeightedRoundRobin(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sumIters(results[1]); got != second.NI {
		t.Fatalf("post-idle loop covered %d of %d", got, second.NI)
	}
	if results[0].End >= second.Arrive {
		t.Fatalf("first loop End %d overlaps the far arrival %d", results[0].End, second.Arrive)
	}
	if results[1].Start != second.Arrive || results[1].End <= second.Arrive {
		t.Fatalf("idle-forward admission broken: Start %d End %d, arrival %d",
			results[1].Start, results[1].End, second.Arrive)
	}
	// The second loop ran on an otherwise idle fleet: its service time must
	// match a solo run of the same spec admitted at the same stamp.
	solo := second
	soloRes, err := RunLoops(cfg, []LoopSpec{solo}, nil, second.Arrive)
	if err != nil {
		t.Fatal(err)
	}
	if gotLat, soloLat := results[1].End-results[1].Start, soloRes[0].End-soloRes[0].Start; gotLat != soloLat {
		t.Errorf("post-idle latency %d differs from solo latency %d", gotLat, soloLat)
	}
}

// TestMultiLoopArrivalBreaksBurst mirrors the registry's admission
// generation: a single-tenant fleet serves under one unbounded burst, and
// the tests pins that a mid-run arrival still gets served promptly (the
// worker re-enters the policy rather than draining the first loop to
// completion, which is what FCFS — and a missing generation check — would
// do).
func TestMultiLoopArrivalBreaksBurst(t *testing.T) {
	cfg := multiCfg(8)
	big := uniformSpec("big", 80_000, 1)
	small := uniformSpec("small", 2_000, 1)
	small.Arrive = 1_000_000 // early in big's run
	wrr, err := RunLoops(cfg, []LoopSpec{big, small}, fair.NewWeightedRoundRobin(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	fcfs, err := RunLoops(cfg, []LoopSpec{big, small}, fair.NewFCFS(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Under WRR the small tenant must finish well before the big one; under
	// FCFS it is blocked behind it. If arrivals failed to break the burst,
	// WRR would degrade to the FCFS ordering.
	if wrr[1].End >= wrr[0].End {
		t.Errorf("WRR: small arrival End %d not before big End %d (burst never broke)", wrr[1].End, wrr[0].End)
	}
	if fcfs[1].End <= fcfs[0].End {
		t.Errorf("FCFS baseline lost head-of-line ordering: small End %d, big End %d", fcfs[1].End, fcfs[0].End)
	}
}
