package sim

import (
	"testing"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/fair"
)

// multiCfg is the shared fleet configuration of the multi-loop tests:
// the full Platform A under BS with a per-loop dynamic scheduler.
func multiCfg(chunk int64) Config {
	return Config{
		Platform: amp.PlatformA(),
		NThreads: 8,
		Binding:  amp.BindBS,
		Factory: func(info core.LoopInfo) (core.Scheduler, error) {
			return core.NewDynamic(info, chunk)
		},
	}
}

func uniformSpec(name string, ni int64, weight int) LoopSpec {
	return LoopSpec{
		Name:    name,
		NI:      ni,
		Profile: amp.Profile{ILP: 0.5, MemIntensity: 0.1},
		Cost:    UniformCost{PerIter: 20000},
		Weight:  weight,
	}
}

func sumIters(r LoopResult) int64 {
	var t int64
	for _, n := range r.Iters {
		t += n
	}
	return t
}

// TestMultiLoopExactCoverageMixedTenants runs K=5 concurrent loops with
// mixed trip counts (0, 1, prime, large) and mixed schedulers on one fleet
// and asserts per-loop exact coverage and per-loop barrier release: every
// loop gets an End, and the degenerate tenants release long before the
// large ones.
func TestMultiLoopExactCoverageMixedTenants(t *testing.T) {
	cfg := multiCfg(4)
	cfg.Factory = nil
	cfg.FactoryNamed = func(name string, info core.LoopInfo) (core.Scheduler, error) {
		switch name {
		case "empty", "big-dynamic":
			return core.NewDynamic(info, 4)
		case "one":
			return core.NewStatic(info)
		case "prime-aid-dynamic":
			return core.NewAIDDynamic(info, 1, 5)
		case "big-aid-hybrid":
			return core.NewAIDHybrid(info, 1, 0.8)
		}
		return nil, nil
	}
	specs := []LoopSpec{
		uniformSpec("empty", 0, 1),
		uniformSpec("one", 1, 1),
		uniformSpec("prime-aid-dynamic", 10007, 1),
		uniformSpec("big-dynamic", 200_000, 1),
		uniformSpec("big-aid-hybrid", 200_000, 1),
	}
	results, err := RunLoops(cfg, specs, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for li, r := range results {
		if got := sumIters(r); got != specs[li].NI {
			t.Errorf("loop %q covered %d of %d iterations", specs[li].Name, got, specs[li].NI)
		}
		if r.End <= 0 && specs[li].NI > 0 {
			t.Errorf("loop %q barrier never released (End=%d)", specs[li].Name, r.End)
		}
	}
	// Independent barriers: the empty and single-iteration tenants release
	// while the big tenants are still running.
	for _, small := range []int{0, 1} {
		for _, big := range []int{3, 4} {
			if results[small].End >= results[big].End {
				t.Errorf("loop %q (End %d) should release before %q (End %d)",
					specs[small].Name, results[small].End, specs[big].Name, results[big].End)
			}
		}
	}
}

// TestMultiLoopWeightedFairness submits two identical loops with weights
// 2:1 under weighted round-robin: the heavy loop must take the larger
// fleet share and release its barrier first, while total work conservation
// keeps the second barrier near the single-policy makespan.
func TestMultiLoopWeightedFairness(t *testing.T) {
	cfg := multiCfg(8)
	specs := []LoopSpec{
		uniformSpec("heavy", 60_000, 2),
		uniformSpec("light", 60_000, 1),
	}
	results, err := RunLoops(cfg, specs, fair.NewWeightedRoundRobin(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	for li, r := range results {
		if got := sumIters(r); got != specs[li].NI {
			t.Fatalf("loop %q covered %d of %d", specs[li].Name, got, specs[li].NI)
		}
	}
	if results[0].End >= results[1].End {
		t.Errorf("weight-2 loop End %d should precede weight-1 loop End %d",
			results[0].End, results[1].End)
	}
	// With a 2:1 share the heavy loop should be clearly ahead — its barrier
	// well before the light loop's — but not as extreme as run-to-completion.
	ratio := float64(results[0].End) / float64(results[1].End)
	if ratio > 0.95 {
		t.Errorf("weighted shares had no effect: End ratio %.3f", ratio)
	}
}

// TestMultiLoopFCFSHeadOfLine pins the baseline the fairness policy
// replaces: under first-come-first-served the whole fleet serves the oldest
// loop to completion, so the first barrier releases at roughly half the
// makespan and the second loop is blocked behind it.
func TestMultiLoopFCFSHeadOfLine(t *testing.T) {
	cfg := multiCfg(8)
	specs := []LoopSpec{
		uniformSpec("first", 60_000, 1),
		uniformSpec("second", 60_000, 1),
	}
	results, err := RunLoops(cfg, specs, fair.NewFCFS(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for li, r := range results {
		if got := sumIters(r); got != specs[li].NI {
			t.Fatalf("loop %q covered %d of %d", specs[li].Name, got, specs[li].NI)
		}
	}
	if results[0].End >= results[1].End {
		t.Fatalf("FCFS first loop End %d should precede second End %d",
			results[0].End, results[1].End)
	}
	if ratio := float64(results[0].End) / float64(results[1].End); ratio > 0.75 {
		t.Errorf("FCFS head-of-line not visible: End ratio %.3f, want ~0.5", ratio)
	}
}

// TestMultiLoopEqualWeightsBalanced checks that two identical weight-1
// loops release their barriers close together under WRR — neither starves.
func TestMultiLoopEqualWeightsBalanced(t *testing.T) {
	cfg := multiCfg(8)
	specs := []LoopSpec{
		uniformSpec("a", 60_000, 1),
		uniformSpec("b", 60_000, 1),
	}
	results, err := RunLoops(cfg, specs, fair.NewWeightedRoundRobin(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	early, late := results[0].End, results[1].End
	if early > late {
		early, late = late, early
	}
	if float64(early) < 0.8*float64(late) {
		t.Errorf("equal-weight loops diverged: Ends %d vs %d", results[0].End, results[1].End)
	}
}

// TestMultiLoopSingleMatchesDedicatedDistribution runs one loop through
// RunLoops and through RunLoop and asserts the dynamic scheduler makes the
// same per-thread distribution decisions (the multi-loop engine differs
// only in fork/join accounting, which dynamic ignores).
func TestMultiLoopSingleMatchesDedicatedDistribution(t *testing.T) {
	cfg := multiCfg(16)
	spec := uniformSpec("solo", 40_000, 1)
	multi, err := RunLoops(cfg, []LoopSpec{spec}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	single, err := RunLoop(cfg, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sumIters(multi[0]) != sumIters(single) {
		t.Fatalf("coverage differs: multi %d vs single %d", sumIters(multi[0]), sumIters(single))
	}
	for tid := range multi[0].Iters {
		if multi[0].Iters[tid] != single.Iters[tid] {
			t.Errorf("thread %d iters differ: multi %d vs single %d",
				tid, multi[0].Iters[tid], single.Iters[tid])
		}
	}
}

func TestMultiLoopErrors(t *testing.T) {
	cfg := multiCfg(4)
	spec := uniformSpec("x", 100, 1)
	if _, err := RunLoops(cfg, nil, nil, 0); err == nil {
		t.Error("empty spec list accepted")
	}
	bad := cfg
	bad.Migrations = []Migration{{Tid: 0, ToCPU: 1}}
	if _, err := RunLoops(bad, []LoopSpec{spec}, nil, 0); err == nil {
		t.Error("migrations accepted under multi-loop execution")
	}
	neg := spec
	neg.Weight = -1
	if _, err := RunLoops(cfg, []LoopSpec{neg}, nil, 0); err == nil {
		t.Error("negative weight accepted")
	}
	if err := neg.Validate(); err == nil {
		t.Error("LoopSpec.Validate accepted negative weight")
	}
}
