// Package sim is the discrete-event execution engine of the reproduction:
// it runs OpenMP-style programs (sequences of serial phases and parallel
// loops) on a modeled asymmetric multicore platform in virtual time.
//
// Substituting simulation for the paper's physical testbeds is the central
// reproduction decision (see DESIGN.md): Go cannot pin OS threads to cores
// of chosen types, but every phenomenon the paper studies is a function of
// (a) per-loop big/small speed ratios and (b) runtime overhead per
// iteration-pool access — both first-class quantities in this model. The
// virtual clock has nanosecond resolution and the engine is fully
// deterministic: the same configuration always yields the same trace.
//
// One simulated worker thread is bound to each platform CPU according to
// the SB/BS convention (§5). Worker execution interleaves through a
// earliest-clock-first event loop; each scheduler invocation is charged the
// platform's pool-access, contention, timestamp and locality costs, and each
// chunk's execution time follows the platform speed model for the loop's
// instruction-mix profile.
package sim

import (
	"fmt"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// CostModel gives the computational weight of loop iterations in abstract
// work units (1 unit ≈ 1 instruction of the modeled ISA).
type CostModel interface {
	// Units returns the cost of iteration i.
	Units(i int64) float64
	// RangeUnits returns the summed cost of iterations [lo, hi). It must
	// equal the sum of Units over the range; implementations provide
	// closed-form versions where possible because the simulator calls it
	// for every chunk.
	RangeUnits(lo, hi int64) float64
}

// UniformCost models loops whose iterations all cost the same (e.g. EP).
type UniformCost struct {
	PerIter float64
}

// Units implements CostModel.
func (u UniformCost) Units(int64) float64 { return u.PerIter }

// RangeUnits implements CostModel.
func (u UniformCost) RangeUnits(lo, hi int64) float64 { return float64(hi-lo) * u.PerIter }

// LinearCost models loops whose cost drifts linearly with the iteration
// index: Units(i) = Base + Slope·i. particlefilter's long-running loop —
// whose final iterations are the heaviest (§5A) — uses a positive slope.
type LinearCost struct {
	Base, Slope float64
}

// Units implements CostModel.
func (l LinearCost) Units(i int64) float64 { return l.Base + l.Slope*float64(i) }

// RangeUnits implements CostModel (closed form).
func (l LinearCost) RangeUnits(lo, hi int64) float64 {
	n := float64(hi - lo)
	// sum of indices lo..hi-1 = n*(lo+hi-1)/2
	return l.Base*n + l.Slope*n*(float64(lo+hi-1))/2
}

// FuncCost wraps an arbitrary per-iteration cost function. RangeUnits is
// computed by summation; prefer analytic models for very long loops.
type FuncCost struct {
	F func(i int64) float64
}

// Units implements CostModel.
func (f FuncCost) Units(i int64) float64 { return f.F(i) }

// RangeUnits implements CostModel.
func (f FuncCost) RangeUnits(lo, hi int64) float64 {
	sum := 0.0
	for i := lo; i < hi; i++ {
		sum += f.F(i)
	}
	return sum
}

// LoopSpec describes one parallel loop.
type LoopSpec struct {
	// Name identifies the loop in reports (e.g. "ep-main").
	Name string
	// NI is the trip count.
	NI int64
	// Profile is the loop body's instruction mix, which determines the
	// per-core-type speed (and therefore the loop's SF).
	Profile amp.Profile
	// Cost is the per-iteration work model.
	Cost CostModel
	// Weight is the loop's relative fairness share when several loops run
	// concurrently on one fleet (RunLoops); 0 selects the default weight 1.
	// Single-loop execution (RunLoop) ignores it.
	Weight int
	// Arrive is the loop's admission time on the virtual clock under
	// multi-loop execution (RunLoops) — the open-loop arrival stamp. The
	// loop is invisible to the fairness policy before Arrive, and its
	// latency is End-Arrive. Values at or below the run's startNs
	// (including the zero value) mean "admitted at start", which keeps the
	// closed-loop callers unchanged. Single-loop execution ignores it.
	Arrive int64
}

// Validate checks the loop description.
func (ls LoopSpec) Validate() error {
	if ls.NI < 0 {
		return fmt.Errorf("sim: loop %q has negative trip count %d", ls.Name, ls.NI)
	}
	if ls.Cost == nil {
		return fmt.Errorf("sim: loop %q has no cost model", ls.Name)
	}
	if ls.Weight < 0 {
		return fmt.Errorf("sim: loop %q has negative weight %d", ls.Name, ls.Weight)
	}
	return ls.Profile.Validate()
}

// SchedulerFactory builds a fresh scheduler for one execution of one loop.
// Scheduler instances are single use, so the engine calls the factory for
// every loop instance (and every repetition).
type SchedulerFactory func(info core.LoopInfo) (core.Scheduler, error)

// Config describes one simulated program execution.
type Config struct {
	// Platform is the modeled machine.
	Platform *amp.Platform
	// NThreads is the worker count (the paper runs one thread per core).
	NThreads int
	// Binding is the thread-to-core mapping convention (SB or BS).
	Binding amp.Binding
	// Factory builds the per-loop scheduler.
	Factory SchedulerFactory
	// FactoryNamed, when non-nil, takes precedence over Factory and also
	// receives the loop's name, letting experiments key behaviour per loop
	// (e.g. the per-loop offline-SF tables of §5C).
	FactoryNamed func(loopName string, info core.LoopInfo) (core.Scheduler, error)
	// Migrations lists OS-driven thread migrations to inject (§4.3). A
	// migration takes effect the next time the affected thread enters the
	// runtime system at or after AtNs — modeling the paper's proposal of a
	// signal delivered to the process, observed at the next runtime call.
	// Schedulers implementing core.Migratable are notified.
	Migrations []Migration
	// Trace, when non-nil, records per-thread timelines.
	Trace *trace.Trace
	// Recorder, when non-nil, captures the run as a serializable
	// trace.Record — loop descriptors, every chunk grant with its
	// runtime-cost metadata, AID phase transitions and the SF trajectory —
	// for internal/replay. A Recorder serves exactly one RunLoop or
	// RunLoops call.
	Recorder *trace.Recorder
	// Metrics populates LoopResult.Metrics with the runtime-counter
	// snapshot (internal/obs) of each loop: chunks and steals by provenance
	// tier, credit traffic, and the virtual-time busy/sched/idle split. The
	// counters observe the same quantities the real-goroutine registry
	// counts, so cross-engine comparisons read the same schema. Counting
	// never perturbs the virtual clock.
	Metrics bool
}

// Migration is one OS-driven thread-to-core move.
type Migration struct {
	// AtNs is the earliest virtual time the migration can take effect.
	AtNs int64
	// Tid is the affected worker thread.
	Tid int
	// ToCPU is the destination CPU number.
	ToCPU int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Platform == nil {
		return fmt.Errorf("sim: nil platform")
	}
	if c.NThreads <= 0 || c.NThreads > c.Platform.NumCores() {
		return fmt.Errorf("sim: thread count %d out of range [1,%d]", c.NThreads, c.Platform.NumCores())
	}
	if c.Factory == nil && c.FactoryNamed == nil {
		return fmt.Errorf("sim: nil scheduler factory")
	}
	return nil
}

// buildScheduler invokes the configured factory for one loop execution.
func (c Config) buildScheduler(loopName string, info core.LoopInfo) (core.Scheduler, error) {
	if c.FactoryNamed != nil {
		return c.FactoryNamed(loopName, info)
	}
	return c.Factory(info)
}

// LoopResult reports one loop execution.
type LoopResult struct {
	// Start and End are the fork time and the barrier-release time.
	Start, End int64
	// PoolAccesses counts shared-pool atomic operations across all threads.
	PoolAccesses int64
	// SchedNs is the total runtime-system time summed over threads.
	SchedNs int64
	// Iters is the per-thread count of executed iterations.
	Iters []int64
	// Finish is each thread's arrival time at the implicit barrier.
	Finish []int64
	// SchedulerName records which method ran the loop.
	SchedulerName string
	// SFEstimate is the scheduler's online per-core-type speedup-factor
	// estimate at loop end (nil when the method derives none). The
	// cross-engine conformance harness compares it against the real-
	// goroutine runtime's estimate for the same workload.
	SFEstimate []float64
	// SFTrajectory is the time-ordered sequence of SF tables the scheduler
	// published while the loop ran — the estimate was live mid-run at each
	// point, not reconstructed at retirement. Offline-SF variants contribute
	// a single point at loop start; methods that estimate nothing leave it
	// nil.
	SFTrajectory []SFPoint
	// EnergyJ is the modeled energy of the loop in Joules, summed over the
	// worker-occupied cores: each worker draws its core type's ActiveW from
	// fork to its barrier arrival and IdleW from there to barrier release.
	// Unoccupied cores are not charged. Filled by single-loop execution
	// (RunLoop); the multi-loop engine leaves it zero, since fleet energy
	// cannot be attributed to one loop.
	EnergyJ float64
	// ClusterEnergyJ breaks EnergyJ down by platform cluster.
	ClusterEnergyJ []float64
	// Metrics is the loop's runtime-counter snapshot, populated when
	// Config.Metrics is set. Under single-loop execution (RunLoop) IdleNs
	// is each worker's barrier wait; the multi-loop engine leaves IdleNs
	// zero, because a worker retired from one loop moves on to others and
	// its waits are not attributable to any single loop.
	Metrics *obs.Snapshot
}

// SFPoint is one timestamped speedup-factor-table publication.
type SFPoint struct {
	// TimeNs is the virtual time of the publishing phase transition.
	TimeNs int64
	// SF is the per-core-type table (immutable snapshot).
	SF []float64
}

// loopInfo builds the scheduler-facing description of a loop under cfg.
func loopInfo(cfg Config, ni int64) core.LoopInfo {
	return core.LoopInfo{
		NI:       ni,
		NThreads: cfg.NThreads,
		NumTypes: len(cfg.Platform.Clusters),
		TypeOf: func(tid int) int {
			return cfg.Platform.ClusterOf(cfg.Platform.CoreOf(tid, cfg.NThreads, cfg.Binding))
		},
		TypeDist: cfg.Platform.TypeDist(),
	}
}

// localityNs prices a chunk-discontinuity cache refill by the chunk's
// provenance: a chunk from the thread's home shard refills from the home
// cluster's LLC (base tier), a same-package foreign chunk crosses LLCs
// (foreign tier), a cross-package chunk pays the interconnect (remote
// tier). Shared-origin chunks (Origin < 0) have no provenance and charge
// the base tier, the pre-topology behavior.
func localityNs(ov amp.Overheads, dist [][]int, ownType, origin int) float64 {
	if origin < 0 || origin >= len(dist) {
		return ov.LocalityPenaltyNs
	}
	switch dist[ownType][origin] {
	case 0:
		return ov.LocalityPenaltyNs
	case 1:
		return ov.LocalityForeignNs
	default:
		return ov.LocalityRemoteNs
	}
}

// contenders returns how many OTHER threads an assignment's pool accesses
// contend with: threads actively scheduling on the origin shard's line,
// plus the claimer itself when it reached across (a foreign access adds
// one accessor the shard's home population does not include). A shared
// origin (Origin < 0) contends with every active thread — a single global
// line.
func contenders(activeByType []int, activeCount, ownType, origin int) int {
	var occ int
	if origin < 0 || origin >= len(activeByType) {
		occ = activeCount
	} else {
		occ = activeByType[origin]
		if origin != ownType {
			occ++
		}
	}
	if occ <= 1 {
		return 0
	}
	return occ - 1
}

// RunLoop simulates one execution of the loop starting at startNs and
// returns the result. The caller sequences loops and serial phases.
func RunLoop(cfg Config, spec LoopSpec, startNs int64) (LoopResult, error) {
	if err := cfg.Validate(); err != nil {
		return LoopResult{}, err
	}
	if err := spec.Validate(); err != nil {
		return LoopResult{}, err
	}
	info := loopInfo(cfg, spec.NI)
	sched, err := cfg.buildScheduler(spec.Name, info)
	if err != nil {
		return LoopResult{}, fmt.Errorf("sim: building scheduler for loop %q: %w", spec.Name, err)
	}
	recLoop := -1
	var recSink func(core.PhaseEvent)
	if cfg.Recorder != nil {
		if err := beginRecording(cfg, "", startNs); err != nil {
			return LoopResult{}, err
		}
		recLoop = addLoopRecord(cfg.Recorder, spec, sched)
		recSink = phaseRecorder(cfg.Recorder, recLoop)
	}
	var traj []SFPoint
	installPhaseSinks(sched, recSink, func(ev core.PhaseEvent) {
		if ev.SF != nil {
			traj = append(traj, SFPoint{TimeNs: ev.TimeNs, SF: ev.SF})
		}
	})
	if est, isEst := sched.(core.SFEstimator); isEst {
		// Offline-SF variants publish their table at construction, before
		// any phase event fires; seed the trajectory with it.
		if sf, ready := est.SFEstimate(); ready {
			traj = append(traj, SFPoint{TimeNs: startNs, SF: sf})
		}
	}

	pl := cfg.Platform
	ov := pl.Overhead
	res := LoopResult{
		Start:         startNs,
		Iters:         make([]int64, cfg.NThreads),
		Finish:        make([]int64, cfg.NThreads),
		SchedulerName: sched.Name(),
	}

	// Pre-resolve per-thread core, cluster, speed and cluster occupancy.
	coreOf := make([]int, cfg.NThreads)
	typeOf := make([]int, cfg.NThreads)
	speed := make([]float64, cfg.NThreads)
	activeInCluster := make([]int, len(pl.Clusters))
	// activeByType counts threads still scheduling per core type — the
	// population of each type's pool-shard line, which is what a claim on
	// that shard contends with.
	activeByType := make([]int, len(pl.Clusters))
	dist := pl.TypeDist()
	for tid := 0; tid < cfg.NThreads; tid++ {
		coreOf[tid] = pl.CoreOf(tid, cfg.NThreads, cfg.Binding)
		typeOf[tid] = pl.ClusterOf(coreOf[tid])
		activeInCluster[typeOf[tid]]++
		activeByType[typeOf[tid]]++
	}
	for tid := 0; tid < cfg.NThreads; tid++ {
		speed[tid] = pl.Speed(coreOf[tid], spec.Profile, activeInCluster[typeOf[tid]])
	}

	// Counter cells, keyed by each worker's home cluster at fork time (a
	// later migration moves the worker, not its occupancy bucket — same
	// convention as the registry's binding-derived home types).
	var met *obs.Metrics
	if cfg.Metrics {
		met = obs.New(cfg.NThreads, len(pl.Clusters), func(tid int) int { return typeOf[tid] })
	}

	// Fork: every thread pays the fork half of the fork/join cost.
	forkNs := int64(ov.ForkJoinNs / 2)
	clock := make([]int64, cfg.NThreads)
	lastHi := make([]int64, cfg.NThreads)
	active := make([]bool, cfg.NThreads)
	for tid := range clock {
		clock[tid] = startNs + forkNs
		lastHi[tid] = -1
		active[tid] = true
		res.SchedNs += forkNs
		if cfg.Trace != nil {
			cfg.Trace.Add(tid, startNs, clock[tid], trace.Sched)
		}
		if met != nil {
			met.Cell(tid).Sched(forkNs)
		}
	}

	// Pending migrations, consumed in order per thread.
	pending := append([]Migration(nil), cfg.Migrations...)
	migratable, _ := sched.(core.Migratable)

	activeCount := cfg.NThreads
	for activeCount > 0 {
		// Earliest-clock-first; ties resolve to the lowest thread ID, which
		// keeps the simulation deterministic.
		tid := -1
		for i := 0; i < cfg.NThreads; i++ {
			if active[i] && (tid == -1 || clock[i] < clock[tid]) {
				tid = i
			}
		}
		now := clock[tid]
		// Deliver any due migration for this thread before it re-enters the
		// runtime (the "signal observed at next runtime call" semantics).
		for i := 0; i < len(pending); i++ {
			mg := pending[i]
			if mg.Tid != tid || mg.AtNs > now {
				continue
			}
			if mg.ToCPU < 0 || mg.ToCPU >= pl.NumCores() {
				return LoopResult{}, fmt.Errorf("sim: migration to invalid CPU %d", mg.ToCPU)
			}
			oldCluster := pl.ClusterOf(coreOf[tid])
			newCluster := pl.ClusterOf(mg.ToCPU)
			coreOf[tid] = mg.ToCPU
			if oldCluster != newCluster {
				activeInCluster[oldCluster]--
				activeInCluster[newCluster]++
				activeByType[oldCluster]--
				activeByType[newCluster]++
				typeOf[tid] = newCluster
				// Cluster occupancies changed; refresh every thread's speed.
				for t := 0; t < cfg.NThreads; t++ {
					speed[t] = pl.Speed(coreOf[t], spec.Profile, activeInCluster[pl.ClusterOf(coreOf[t])])
				}
				if migratable != nil {
					migratable.Migrate(tid, newCluster, now)
				}
			}
			pending = append(pending[:i], pending[i+1:]...)
			i--
		}
		asg, ok := sched.Next(tid, now)

		// Charge the runtime-call overhead whether or not work was handed
		// out (the final empty call still costs a pool access). Contention
		// is charged by the occupancy of the accessed shard's line — the
		// threads actually sharing it — not by the whole fleet.
		contend := contenders(activeByType, activeCount, typeOf[tid], asg.Origin)
		ovhNs := float64(asg.PoolAccesses)*(ov.PoolAccessNs+ov.ContentionNs*float64(contend)) +
			float64(asg.Timestamps)*ov.TimestampNs
		res.PoolAccesses += int64(asg.PoolAccesses)
		if !ok {
			end := now + int64(ovhNs)
			if cfg.Trace != nil {
				cfg.Trace.Add(tid, now, end, trace.Sched)
			}
			if cfg.Recorder != nil {
				cfg.Recorder.Chunk(trace.ChunkEvent{TimeNs: now, Tid: tid, Loop: recLoop,
					Shard: pl.ClusterOf(coreOf[tid]), Origin: asg.Origin,
					PoolAccesses: asg.PoolAccesses,
					Timestamps: asg.Timestamps, Retire: true})
			}
			if met != nil {
				c := met.Cell(tid)
				c.Sched(int64(ovhNs))
				c.Credit(asg.CreditClaimed, asg.CreditReturned)
			}
			res.SchedNs += int64(ovhNs)
			res.Finish[tid] = end
			active[tid] = false
			activeCount--
			activeByType[typeOf[tid]]--
			continue
		}
		// Locality penalty: a chunk that does not extend the thread's
		// previous one lands cold in the cache (§2), at a price tiered by
		// the chunk's provenance.
		if asg.Lo != lastHi[tid] {
			ovhNs += localityNs(ov, dist, typeOf[tid], asg.Origin)
		}
		lastHi[tid] = asg.Hi

		units := spec.Cost.RangeUnits(asg.Lo, asg.Hi)
		execNs := units / speed[tid]
		schedEnd := now + int64(ovhNs)
		runEnd := schedEnd + int64(execNs)
		if cfg.Trace != nil {
			cfg.Trace.Add(tid, now, schedEnd, trace.Sched)
			cfg.Trace.Add(tid, schedEnd, runEnd, trace.Running)
		}
		if cfg.Recorder != nil {
			cfg.Recorder.Chunk(trace.ChunkEvent{TimeNs: now, Tid: tid, Loop: recLoop,
				Lo: asg.Lo, Hi: asg.Hi, Shard: pl.ClusterOf(coreOf[tid]), Origin: asg.Origin,
				Cost: units, ExecNs: int64(execNs), PoolAccesses: asg.PoolAccesses,
				Timestamps: asg.Timestamps})
		}
		if met != nil {
			c := met.Cell(tid)
			c.Grant(asg.N(), obs.Tier(dist, typeOf[tid], asg.Origin))
			c.Credit(asg.CreditClaimed, asg.CreditReturned)
			c.Sched(int64(ovhNs))
			c.Busy(int64(execNs))
		}
		res.SchedNs += int64(ovhNs)
		res.Iters[tid] += asg.N()
		clock[tid] = runEnd
	}

	if est, isEst := sched.(core.SFEstimator); isEst {
		if sf, ready := est.SFEstimate(); ready {
			res.SFEstimate = sf
		}
	}
	res.SFTrajectory = traj

	// Implicit barrier: release at the max finish time plus the join half.
	var maxFinish int64
	for _, f := range res.Finish {
		if f > maxFinish {
			maxFinish = f
		}
	}
	joinNs := int64(ov.ForkJoinNs) - forkNs
	res.End = maxFinish + joinNs
	if cfg.Trace != nil {
		for tid := 0; tid < cfg.NThreads; tid++ {
			cfg.Trace.Add(tid, res.Finish[tid], maxFinish, trace.Sync)
			cfg.Trace.Add(tid, maxFinish, res.End, trace.Sched)
		}
	}
	res.SchedNs += joinNs
	if met != nil {
		// Quiescent merge (obs doc.go, invariant 5): the event loop is done,
		// so writing barrier-wait idle into every worker's cell is safe.
		for tid := 0; tid < cfg.NThreads; tid++ {
			c := met.Cell(tid)
			if gap := maxFinish - res.Finish[tid]; gap > 0 {
				c.Idle(gap)
			}
			c.Sched(joinNs)
		}
		if rc, isRC := sched.(core.ReweightCounter); isRC {
			met.Cell(0).SetReweights(rc.PoolReweights())
		}
		snap := met.Snapshot()
		res.Metrics = &snap
	}
	// Energy: each worker's core draws ActiveW until the worker reaches the
	// barrier and IdleW while it waits for release.
	res.ClusterEnergyJ = make([]float64, len(pl.Clusters))
	for tid := 0; tid < cfg.NThreads; tid++ {
		ct := &pl.Clusters[typeOf[tid]].Type
		j := (float64(res.Finish[tid]-res.Start)*ct.ActiveW +
			float64(res.End-res.Finish[tid])*ct.IdleW) * 1e-9
		res.ClusterEnergyJ[typeOf[tid]] += j
		res.EnergyJ += j
	}
	if cfg.Recorder != nil {
		if res.SFEstimate != nil {
			cfg.Recorder.SFSample(trace.SFSample{TimeNs: res.End, Loop: recLoop,
				SF: append([]float64(nil), res.SFEstimate...)})
		}
		if cfg.Trace != nil {
			cfg.Recorder.AttachTimeline(cfg.Trace)
		}
		cfg.Recorder.EndRun(res.End - res.Start)
	}
	return res, nil
}

// MeasureLoopSF reproduces the paper's offline SF measurement (§2): run the
// loop with a single thread on a big core and again on a small core and
// return the completion-time ratio. The single-threaded runs see no LLC
// contention from sibling threads — the source of the offline-SF bias that
// Fig. 9c documents.
func MeasureLoopSF(pl *amp.Platform, spec LoopSpec) (float64, error) {
	oneThread := func(b amp.Binding) (int64, error) {
		cfg := Config{
			Platform: pl,
			NThreads: 1,
			Binding:  b,
			Factory: func(info core.LoopInfo) (core.Scheduler, error) {
				return core.NewStatic(info)
			},
		}
		r, err := RunLoop(cfg, spec, 0)
		if err != nil {
			return 0, err
		}
		return r.End - r.Start, nil
	}
	// BS puts the single thread on the highest CPU (big); SB on CPU 0 (small).
	tBig, err := oneThread(amp.BindBS)
	if err != nil {
		return 0, err
	}
	tSmall, err := oneThread(amp.BindSB)
	if err != nil {
		return 0, err
	}
	if tBig <= 0 {
		return 0, fmt.Errorf("sim: loop %q completed in non-positive time on big core", spec.Name)
	}
	return float64(tSmall) / float64(tBig), nil
}
