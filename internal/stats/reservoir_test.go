package stats

import (
	"math"
	"testing"
)

func TestPercentile(t *testing.T) {
	xs := []float64{40, 10, 20, 30} // deliberately unsorted
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10},
		{25, 17.5},
		{50, 25}, // even length: average of the two central elements
		{75, 32.5},
		{100, 40},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if xs[0] != 40 {
		t.Error("Percentile modified its input")
	}
	if got, _ := Percentile([]float64{3, 1, 2}, 50); got != 2 {
		t.Errorf("odd-length p50 = %v, want 2", got)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("empty slice: err = %v, want ErrEmpty", err)
	}
	for _, p := range []float64{-1, 101, math.NaN()} {
		if _, err := Percentile([]float64{1}, p); err == nil {
			t.Errorf("Percentile(_, %v) accepted an out-of-range p", p)
		}
	}
}

// TestMedianIsPercentile50 pins the consistency the aidserve report bug
// violated: a hand-rolled sorted[len/2] median disagrees with Median for
// even lengths; Median and Percentile(50) must always agree.
func TestMedianIsPercentile50(t *testing.T) {
	cases := [][]float64{
		{5},
		{1, 2},
		{3, 1, 2},
		{4, 1, 3, 2},
		{10, 20, 30, 40, 50, 60},
	}
	for _, xs := range cases {
		m, err1 := Median(xs)
		p, err2 := Percentile(xs, 50)
		if err1 != nil || err2 != nil {
			t.Fatalf("Median/Percentile errored: %v %v", err1, err2)
		}
		if m != p {
			t.Errorf("Median(%v) = %v but Percentile(50) = %v", xs, m, p)
		}
	}
	// The even-length case the off-by-one median got wrong: upper-mid 30
	// instead of 25.
	if m, _ := Median([]float64{10, 20, 30, 40}); m != 25 {
		t.Errorf("Median of {10,20,30,40} = %v, want 25", m)
	}
}

func TestReservoirExactWhileUnderCapacity(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 1; i <= 10; i++ {
		r.Add(float64(i) * 10)
	}
	if r.Count() != 10 || r.Sampled() != 10 {
		t.Fatalf("count/sampled = %d/%d, want 10/10", r.Count(), r.Sampled())
	}
	if r.Sum() != 550 || r.Mean() != 55 {
		t.Errorf("sum/mean = %v/%v, want 550/55", r.Sum(), r.Mean())
	}
	mn, _ := r.Min()
	mx, _ := r.Max()
	if mn != 10 || mx != 100 {
		t.Errorf("min/max = %v/%v, want 10/100", mn, mx)
	}
	p50, err := r.Percentile(50)
	if err != nil || p50 != 55 {
		t.Errorf("p50 = %v (err %v), want 55", p50, err)
	}
}

func TestReservoirBoundedAndUniform(t *testing.T) {
	const capN, streamN = 64, 100000
	r := NewReservoir(capN, 7)
	for i := 0; i < streamN; i++ {
		r.Add(float64(i))
	}
	if r.Sampled() != capN {
		t.Fatalf("sampled = %d, want capacity %d", r.Sampled(), capN)
	}
	if r.Count() != streamN {
		t.Fatalf("count = %d, want %d", r.Count(), streamN)
	}
	// Exact stream stats survive sampling.
	mn, _ := r.Min()
	mx, _ := r.Max()
	if mn != 0 || mx != streamN-1 {
		t.Errorf("min/max = %v/%v, want 0/%d", mn, mx, streamN-1)
	}
	// Over a uniform 0..N ramp the sampled median must land near N/2; a
	// 25% band is ~4 sigma for a 64-sample uniform reservoir.
	p50, err := r.Percentile(50)
	if err != nil {
		t.Fatal(err)
	}
	if p50 < 0.25*streamN || p50 > 0.75*streamN {
		t.Errorf("sampled p50 = %v far from %v", p50, streamN/2)
	}
}

func TestReservoirDeterministic(t *testing.T) {
	run := func(seed uint64) float64 {
		r := NewReservoir(32, seed)
		for i := 0; i < 5000; i++ {
			r.Add(float64(i % 977))
		}
		p, err := r.Percentile(99)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if a, b := run(3), run(3); a != b {
		t.Errorf("same seed, different p99: %v vs %v", a, b)
	}
}

func TestReservoirEmpty(t *testing.T) {
	r := NewReservoir(0, 0)
	if _, err := r.Min(); err != ErrEmpty {
		t.Errorf("Min on empty: %v, want ErrEmpty", err)
	}
	if _, err := r.Max(); err != ErrEmpty {
		t.Errorf("Max on empty: %v, want ErrEmpty", err)
	}
	if _, err := r.Percentile(50); err != ErrEmpty {
		t.Errorf("Percentile on empty: %v, want ErrEmpty", err)
	}
	if r.Mean() != 0 {
		t.Errorf("Mean on empty = %v, want 0", r.Mean())
	}
}
