// Package stats provides the small set of statistical helpers used by the
// experiment harness: arithmetic and geometric means, normalization against a
// baseline, and the "discard first run, geomean of the rest" aggregation the
// paper applies to completion times (§5).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values make the result NaN, mirroring math.Log domain errors.
// It returns 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Min returns the minimum of xs and an error if xs is empty.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs and an error if xs is empty.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Median returns the median of xs (average of the two central elements for
// even lengths) and an error if xs is empty. xs is not modified. It is
// exactly Percentile(xs, 50) — kept as its own entry point because the
// experiment harness reads better asking for "the median".
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile of xs (0 <= p <= 100) using linear
// interpolation between closest ranks: rank = (n-1)·p/100, with fractional
// ranks interpolating the two neighbouring order statistics. Percentile(xs,
// 0) is the minimum, Percentile(xs, 100) the maximum, and Percentile(xs,
// 50) the Median (averaging the two central elements for even lengths). It
// errors on an empty slice or a p outside [0, 100]. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: percentile %v outside [0, 100]", p)
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return percentileSorted(cp, p), nil
}

// percentileSorted is Percentile over an already-sorted, non-empty slice.
func percentileSorted(sorted []float64, p float64) float64 {
	rank := float64(len(sorted)-1) * p / 100
	lo := int(rank)
	frac := rank - float64(lo)
	if frac == 0 || lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Normalize returns xs[i]/baseline for every element. A zero baseline yields
// +Inf/NaN entries, as with ordinary float division.
func Normalize(xs []float64, baseline float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / baseline
	}
	return out
}

// Speedup converts a completion-time ratio into the paper's "normalized
// performance": baselineTime / time. Higher is better.
func Speedup(baselineTime, time float64) float64 {
	return baselineTime / time
}

// RelGainPct returns the relative performance gain, in percent, of `next`
// over `prev` where both are completion times (lower is better):
// (prev/next - 1) * 100.
func RelGainPct(prevTime, nextTime float64) float64 {
	return (prevTime/nextTime - 1) * 100
}

// JainIndex returns Jain's fairness index (Σx)²/(n·Σx²) over the per-tenant
// allocations xs. It is 1 when every tenant gets an equal share and
// approaches 1/n when one tenant monopolizes the resource; the multi-tenant
// harness uses it to pin the fairness band of the SF-aware policy against
// plain weighted round-robin. An empty slice or an all-zero allocation
// returns 0.
func JainIndex(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// AggregateRuns reproduces the paper's measurement protocol (§5): the first
// run is discarded (warm-up / input load) and the geometric mean of the
// remaining runs' completion times is reported. It returns an error when
// fewer than two runs are supplied.
func AggregateRuns(runTimes []float64) (float64, error) {
	if len(runTimes) < 2 {
		return 0, ErrEmpty
	}
	return GeoMean(runTimes[1:]), nil
}

// MeanGainPct returns the arithmetic mean of per-application relative gains
// (in percent) of scheme `b` over scheme `a`, where a[i] and b[i] are the
// completion times of application i under each scheme.
func MeanGainPct(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	gains := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		gains = append(gains, RelGainPct(a[i], b[i]))
	}
	return Mean(gains)
}

// GeoMeanGainPct returns the geometric-mean relative gain (in percent) of
// scheme b over scheme a, following Table 2's "Gmean" column: the geomean of
// the per-application speedup ratios, expressed as a percentage improvement.
func GeoMeanGainPct(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	ratios := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		ratios = append(ratios, a[i]/b[i])
	}
	return (GeoMean(ratios) - 1) * 100
}
