package stats

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestHistogramIndexBounds(t *testing.T) {
	// Every probe value must land in a bucket whose bounds contain it.
	probes := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20,
		1<<40 + 12345, math.MaxInt64}
	for _, v := range probes {
		i := histIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", v, i)
		}
		lo, hi := histBounds(i)
		if v < lo || (v >= hi && !(hi == math.MaxInt64 && v == hi)) {
			t.Errorf("value %d landed in bucket %d = [%d,%d)", v, i, lo, hi)
		}
		// The error-bound contract: bucket width <= lo >> histSubBits for
		// buckets past the exact region.
		if lo >= histSub && hi-lo > lo>>histSubBits {
			t.Errorf("bucket %d = [%d,%d) wider than lo/2^%d", i, lo, hi, histSubBits)
		}
	}
}

func TestHistogramExactStats(t *testing.T) {
	h := NewHistogram()
	if _, err := h.Percentile(50); err == nil {
		t.Fatal("empty histogram must refuse percentiles")
	}
	for _, v := range []float64{5, 3, 12, 3, 100} {
		h.Add(v)
	}
	if h.Count() != 5 || h.Sum() != 123 {
		t.Fatalf("count/sum = %d/%v, want 5/123", h.Count(), h.Sum())
	}
	if mn, _ := h.Min(); mn != 3 {
		t.Fatalf("min = %v, want 3", mn)
	}
	if mx, _ := h.Max(); mx != 100 {
		t.Fatalf("max = %v, want 100", mx)
	}
	if _, err := h.Percentile(-1); err == nil {
		t.Fatal("percentile -1 must be rejected")
	}
}

// TestHistogramVsReservoir is the cross-check gate: identical samples
// through a Reservoir (with capacity >= n, so its percentiles are exact
// order statistics) and the histogram must agree at p50/p95/p99 within the
// bucket relative-error bound.
func TestHistogramVsReservoir(t *testing.T) {
	const n = 20000
	rng := xrand.New(42)
	h := NewHistogram()
	r := NewReservoir(n, 7)
	for i := 0; i < n; i++ {
		// Latency-shaped stream: roughly log-uniform over [1e3, 1e8] ns
		// with a heavy tail, exercising many octaves.
		u := float64(rng.Uint64()%1_000_000) / 1_000_000
		v := math.Pow(10, 3+5*u)
		if rng.Uint64()%97 == 0 {
			v *= 8 // tail spikes
		}
		h.Add(v)
		r.Add(v)
	}
	bound := h.RelError()
	for _, p := range []float64{50, 95, 99} {
		hp, err := h.Percentile(p)
		if err != nil {
			t.Fatalf("hist p%v: %v", p, err)
		}
		rp, err := r.Percentile(p)
		if err != nil {
			t.Fatalf("reservoir p%v: %v", p, err)
		}
		// The reservoir interpolates between adjacent order statistics and
		// the histogram between bucket edges; allow two bucket widths.
		if diff := math.Abs(hp - rp); diff > 2*bound*rp+1 {
			t.Errorf("p%v disagree: hist %.0f vs exact %.0f (diff %.0f > %.0f)",
				p, hp, rp, diff, 2*bound*rp+1)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
	rng := xrand.New(9)
	for i := 0; i < 5000; i++ {
		v := float64(rng.Uint64() % 1_000_000)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		all.Add(v)
	}
	a.Merge(b)
	a.Merge(nil)
	a.Merge(NewHistogram())
	if a.Count() != all.Count() || a.Sum() != all.Sum() {
		t.Fatalf("merged count/sum %d/%v, want %d/%v", a.Count(), a.Sum(), all.Count(), all.Sum())
	}
	amn, _ := a.Min()
	mn, _ := all.Min()
	amx, _ := a.Max()
	mx, _ := all.Max()
	if amn != mn || amx != mx {
		t.Fatalf("merged min/max %v/%v, want %v/%v", amn, amx, mn, mx)
	}
	for _, p := range []float64{50, 99} {
		ap, _ := a.Percentile(p)
		fp, _ := all.Percentile(p)
		if ap != fp {
			t.Errorf("p%v after merge %v, direct %v", p, ap, fp)
		}
	}
}
