package stats

import (
	"repro/internal/xrand"
)

// Reservoir is a fixed-capacity uniform sample over an unbounded stream of
// observations — the latency store of the open-loop service tier. A server
// that runs for hours cannot keep every request latency just to answer
// "what was the p99": the reservoir keeps a capacity-bounded uniform sample
// (Vitter's algorithm R) plus exact running count/sum/min/max, so memory
// stays O(capacity) while percentile queries stay statistically sound over
// the whole stream.
//
// Randomness comes from the repository's deterministic PRNG: a seeded
// reservoir fed the same stream reports the same percentiles, which keeps
// the virtual-time serve runs byte-reproducible. Not safe for concurrent
// use; callers serialize Add (the server does so under its completion
// lock).
type Reservoir struct {
	sample []float64
	seen   int64 // observations offered
	sum    float64
	min    float64
	max    float64
	rng    *xrand.Rand
}

// NewReservoir returns an empty reservoir holding at most capacity samples
// (capacity <= 0 selects 1024, plenty for p99 at smoke-run scale).
func NewReservoir(capacity int, seed uint64) *Reservoir {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Reservoir{sample: make([]float64, 0, capacity), rng: xrand.New(seed)}
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.seen++
	r.sum += x
	if r.seen == 1 || x < r.min {
		r.min = x
	}
	if r.seen == 1 || x > r.max {
		r.max = x
	}
	if len(r.sample) < cap(r.sample) {
		r.sample = append(r.sample, x)
		return
	}
	// Algorithm R: the i-th observation replaces a random slot with
	// probability capacity/i, keeping every prefix uniformly represented.
	if j := int64(r.rng.Uint64() % uint64(r.seen)); j < int64(cap(r.sample)) {
		r.sample[j] = x
	}
}

// Count returns how many observations were offered (not how many are held).
func (r *Reservoir) Count() int64 { return r.seen }

// Sum returns the exact sum of every offered observation.
func (r *Reservoir) Sum() float64 { return r.sum }

// Mean returns the exact mean of every offered observation (0 when empty).
func (r *Reservoir) Mean() float64 {
	if r.seen == 0 {
		return 0
	}
	return r.sum / float64(r.seen)
}

// Min and Max return the exact stream extremes; both error on an empty
// reservoir.
func (r *Reservoir) Min() (float64, error) {
	if r.seen == 0 {
		return 0, ErrEmpty
	}
	return r.min, nil
}

// Max returns the exact stream maximum.
func (r *Reservoir) Max() (float64, error) {
	if r.seen == 0 {
		return 0, ErrEmpty
	}
	return r.max, nil
}

// Percentile estimates the p-th percentile (0 <= p <= 100) from the held
// sample, with the same interpolation as the package-level Percentile.
// While the stream fits the capacity the estimate is exact; past that it
// carries the sampling error of a capacity-sized uniform sample.
func (r *Reservoir) Percentile(p float64) (float64, error) {
	return Percentile(r.sample, p)
}

// Sampled returns how many observations the reservoir currently holds.
func (r *Reservoir) Sampled() int { return len(r.sample) }
