package stats

import (
	"fmt"
	"math"
	"math/bits"
)

// histSubBits is the log2 sub-bucket resolution of Histogram: each power-
// of-two octave is split into 2^histSubBits equal-width buckets, bounding
// the relative quantile error at 2^-histSubBits (see RelError).
const histSubBits = 5

// histSub is the sub-bucket count per octave.
const histSub = 1 << histSubBits

// histBuckets covers non-negative int64 values: the exact region [0,
// histSub) one bucket per value, then (63-histSubBits) octaves of histSub
// buckets each.
const histBuckets = (64 - histSubBits) * histSub

// Histogram is a mergeable log-bucketed latency histogram — the streaming
// percentile store that complements Reservoir where merging and a fixed
// error bound matter more than exactness. Values (nanoseconds, but any
// non-negative magnitude works) land in HDR-style buckets: exact below
// histSub, then power-of-two octaves split into histSub sub-buckets, so a
// quantile read is off by at most RelError of the true value no matter how
// many observations streamed through. Memory is a fixed ~15 KiB of
// counts; Merge is an element-wise add, which is what lets per-class
// histograms roll up into fleet-wide ones (and what a reservoir, whose
// merged sample is no longer uniform, cannot offer).
//
// The zero value is NOT ready; use NewHistogram. Not safe for concurrent
// use; callers serialize Add like they do for Reservoir.
type Histogram struct {
	counts []int64
	count  int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]int64, histBuckets)}
}

// histIndex maps a non-negative value to its bucket.
func histIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	m := 63 - bits.LeadingZeros64(uint64(v))
	return (m-histSubBits+1)*histSub + int((v-1<<m)>>(m-histSubBits))
}

// histBounds returns bucket i's half-open value interval [lo, hi). The
// final bucket's upper bound clamps to MaxInt64 (it is inclusive there):
// lo+w would wrap past the int64 range.
func histBounds(i int) (lo, hi int64) {
	if i < histSub {
		return int64(i), int64(i) + 1
	}
	m := i/histSub + histSubBits - 1
	off := int64(i % histSub)
	w := int64(1) << (m - histSubBits)
	lo = 1<<m + off*w
	if hi = lo + w; hi < lo {
		hi = math.MaxInt64
	}
	return lo, hi
}

// Add offers one observation. Negative values clamp to zero; values beyond
// int64 range clamp to the top bucket.
func (h *Histogram) Add(x float64) {
	v := int64(0)
	switch {
	case x != x || x <= 0: // NaN and negatives clamp to zero
	case x >= math.MaxInt64:
		v = math.MaxInt64
	default:
		v = int64(x)
	}
	h.counts[histIndex(v)]++
	h.count++
	h.sum += x
	if h.count == 1 || x < h.min {
		h.min = x
	}
	if h.count == 1 || x > h.max {
		h.max = x
	}
}

// Count returns how many observations were offered.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the exact minimum observation.
func (h *Histogram) Min() (float64, error) {
	if h.count == 0 {
		return 0, fmt.Errorf("stats: empty histogram")
	}
	return h.min, nil
}

// Max returns the exact maximum observation.
func (h *Histogram) Max() (float64, error) {
	if h.count == 0 {
		return 0, fmt.Errorf("stats: empty histogram")
	}
	return h.max, nil
}

// RelError returns the histogram's relative quantile error bound: a
// Percentile result is within RelError×value of some true order statistic
// adjacent to the requested rank (the bucket width over its lower edge).
func (h *Histogram) RelError() float64 { return 1.0 / histSub }

// Percentile returns the p-th percentile (0 <= p <= 100) to within
// RelError: the rank convention matches stats.Percentile (p=0 the minimum
// bucket, p=100 the maximum), with the position inside the winning bucket
// interpolated across its width.
func (h *Histogram) Percentile(p float64) (float64, error) {
	if h.count == 0 {
		return 0, fmt.Errorf("stats: empty histogram")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", p)
	}
	rank := p / 100 * float64(h.count-1) // fractional order-statistic rank
	cum := int64(0)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if float64(cum-1) >= rank {
			lo, hi := histBounds(i)
			// Interpolate within the bucket by the rank's position among
			// its c occupants, mirroring stats.Percentile's linear ranks.
			first := float64(cum - c) // rank of the bucket's first occupant
			frac := 0.5
			if c > 1 {
				frac = (rank - first + 0.5) / float64(c)
				if frac < 0 {
					frac = 0
				}
				if frac > 1 {
					frac = 1
				}
			}
			return float64(lo) + frac*float64(hi-lo), nil
		}
	}
	return h.max, nil // unreachable unless counts and count disagree
}

// Merge folds other into h element-wise. Exact count/sum/min/max merge
// exactly; bucket error bounds are unchanged.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}
