package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3}, 3},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1}, 0},
		{"many", []float64{1, 2, 3, 4, 5}, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestGeoMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"pair", []float64{1, 4}, 2},
		{"triple", []float64{1, 2, 4}, 2},
		{"identity", []float64{7, 7, 7}, 7},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := GeoMean(c.in); !almostEqual(got, c.want, 1e-12) {
				t.Errorf("GeoMean(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestGeoMeanLEMean(t *testing.T) {
	// AM-GM inequality: geomean <= mean for positive inputs.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1 // strictly positive
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	mn, err := Min(xs)
	if err != nil || mn != 1 {
		t.Errorf("Min = %v, %v; want 1, nil", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 9 {
		t.Errorf("Max = %v, %v; want 9, nil", mx, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMedian(t *testing.T) {
	odd := []float64{5, 1, 3}
	if m, err := Median(odd); err != nil || m != 3 {
		t.Errorf("Median(odd) = %v, %v", m, err)
	}
	even := []float64{4, 1, 3, 2}
	if m, err := Median(even); err != nil || m != 2.5 {
		t.Errorf("Median(even) = %v, %v", m, err)
	}
	if _, err := Median(nil); err != ErrEmpty {
		t.Errorf("Median(nil) err = %v", err)
	}
	// Median must not mutate its input.
	in := []float64{9, 1, 5}
	if _, err := Median(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Errorf("Median mutated input: %v", in)
	}
}

func TestNormalizeAndSpeedup(t *testing.T) {
	got := Normalize([]float64{2, 4, 8}, 4)
	want := []float64{0.5, 1, 2}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if s := Speedup(10, 5); s != 2 {
		t.Errorf("Speedup(10,5) = %v, want 2", s)
	}
}

func TestRelGainPct(t *testing.T) {
	// next twice as fast as prev -> +100% gain.
	if g := RelGainPct(10, 5); !almostEqual(g, 100, 1e-12) {
		t.Errorf("RelGainPct(10,5) = %v, want 100", g)
	}
	// no change -> 0%.
	if g := RelGainPct(7, 7); !almostEqual(g, 0, 1e-12) {
		t.Errorf("RelGainPct(7,7) = %v, want 0", g)
	}
	// regression -> negative.
	if g := RelGainPct(5, 10); !almostEqual(g, -50, 1e-12) {
		t.Errorf("RelGainPct(5,10) = %v, want -50", g)
	}
}

func TestAggregateRuns(t *testing.T) {
	// First run discarded; geomean of the rest.
	got, err := AggregateRuns([]float64{100, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2, 1e-12) {
		t.Errorf("AggregateRuns = %v, want 2", got)
	}
	if _, err := AggregateRuns([]float64{1}); err == nil {
		t.Error("AggregateRuns with one run should error")
	}
	if _, err := AggregateRuns(nil); err == nil {
		t.Error("AggregateRuns(nil) should error")
	}
}

func TestMeanGainPct(t *testing.T) {
	a := []float64{10, 10}
	b := []float64{5, 10} // one app 2x faster, one unchanged
	if g := MeanGainPct(a, b); !almostEqual(g, 50, 1e-12) {
		t.Errorf("MeanGainPct = %v, want 50", g)
	}
}

func TestGeoMeanGainPct(t *testing.T) {
	a := []float64{10, 10}
	b := []float64{5, 20} // ratios 2 and 0.5 -> geomean 1 -> 0% gain
	if g := GeoMeanGainPct(a, b); !almostEqual(g, 0, 1e-9) {
		t.Errorf("GeoMeanGainPct = %v, want 0", g)
	}
}

func TestGainPctProperties(t *testing.T) {
	// For identical time vectors the gains must be exactly zero.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1
		}
		return almostEqual(MeanGainPct(xs, xs), 0, 1e-9) &&
			almostEqual(GeoMeanGainPct(xs, xs), 0, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("equal shares: JainIndex = %v, want 1", got)
	}
	// One tenant monopolizing n tenants' resource scores exactly 1/n.
	if got := JainIndex([]float64{10, 0, 0, 0}); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("monopoly: JainIndex = %v, want 0.25", got)
	}
	if got := JainIndex([]float64{4, 2}); !almostEqual(got, 0.9, 1e-12) {
		t.Errorf("2:1 split: JainIndex = %v, want 0.9", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Errorf("empty: JainIndex = %v, want 0", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero: JainIndex = %v, want 0", got)
	}
	// Scale invariance: the index only sees the shape of the allocation.
	a := []float64{1, 2, 3, 4}
	b := []float64{10, 20, 30, 40}
	if !almostEqual(JainIndex(a), JainIndex(b), 1e-12) {
		t.Errorf("not scale invariant: %v vs %v", JainIndex(a), JainIndex(b))
	}
}
