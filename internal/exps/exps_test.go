package exps

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/amp"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// figA/figB are computed once; the sweeps cost a few seconds each.
var (
	figA = mustFig(amp.PlatformA())
	figB = mustFig(amp.PlatformB())
)

func mustFig(pl *amp.Platform) FigResult {
	f, err := RunFig6(pl)
	if err != nil {
		panic(err)
	}
	return f
}

func TestFig6Shape(t *testing.T) {
	if len(figA.Apps) != 21 {
		t.Fatalf("Fig 6 covers %d apps, want 21", len(figA.Apps))
	}
	if len(figA.Schemes) != 7 {
		t.Fatalf("Fig 6 has %d schemes, want 7", len(figA.Schemes))
	}
	for _, a := range figA.Apps {
		if got := a.NormPerf("static(SB)"); got != 1.0 {
			t.Errorf("%s: baseline normalized performance = %v, want 1", a.App, got)
		}
		for _, s := range figA.Schemes {
			v := a.NormPerf(s.Label)
			if v <= 0 || v > 10 {
				t.Errorf("%s under %s: normalized perf %v out of sane range", a.App, s.Label, v)
			}
		}
	}
}

// TestAIDStaticOutperformsStaticAcrossTheBoard asserts the paper's central
// claim (§5A): "AID-static outperforms static for the vast majority of
// workloads". particlefilter and leukocyte are the documented exceptions
// (rising/uneven cost hands AID-static the same problem as static(BS)).
func TestAIDStaticOutperformsStaticAcrossTheBoard(t *testing.T) {
	for _, fig := range []FigResult{figA, figB} {
		wins := 0
		for _, a := range fig.Apps {
			if a.NormPerf("AID-static") > a.NormPerf("static(BS)")*0.99 {
				wins++
			}
		}
		if wins < 18 {
			t.Errorf("%s: AID-static >= static(BS) for only %d/21 apps", fig.Platform, wins)
		}
	}
}

func TestAIDHybridBeatsAIDStaticOnAverage(t *testing.T) {
	for _, fig := range []FigResult{figA, figB} {
		var better int
		for _, a := range fig.Apps {
			if a.NormPerf("AID-hybrid") >= a.NormPerf("AID-static")*0.98 {
				better++
			}
		}
		if better < 15 {
			t.Errorf("%s: AID-hybrid >= AID-static for only %d/21 apps", fig.Platform, better)
		}
	}
}

// TestDynamicDisasters asserts the documented dynamic(1) pathologies: CG,
// IS, blackscholes and bfs suffer under dynamic on Platform A (§5A).
func TestDynamicDisasters(t *testing.T) {
	for _, app := range []string{"CG", "IS", "blackscholes", "bfs"} {
		for _, a := range figA.Apps {
			if a.App != app {
				continue
			}
			if v := a.NormPerf("dynamic(SB)"); v >= 1.0 {
				t.Errorf("%s: dynamic(SB) normalized perf %v, expected < 1 (overhead)", app, v)
			}
		}
	}
}

// TestCGDynamicBlowupPlatformB asserts the paper's most extreme overhead
// case: CG slows down by up to 2.86x under dynamic on Platform B.
func TestCGDynamicBlowupPlatformB(t *testing.T) {
	for _, a := range figB.Apps {
		if a.App != "CG" {
			continue
		}
		slowdown := 1 / a.NormPerf("dynamic(BS)")
		if slowdown < 1.4 {
			t.Errorf("CG dynamic(BS) slowdown on B = %.2fx, want substantial (paper: 2.86x)", slowdown)
		}
	}
}

// TestDynamicFriendlyApps asserts that FT, leukocyte and particlefilter
// benefit from dynamic relative to static under the same binding (§5A).
func TestDynamicFriendlyApps(t *testing.T) {
	for _, app := range []string{"FT", "leukocyte", "particlefilter"} {
		for _, a := range figA.Apps {
			if a.App != app {
				continue
			}
			if a.NormPerf("dynamic(BS)") <= a.NormPerf("static(BS)") {
				t.Errorf("%s: dynamic(BS) (%v) should beat static(BS) (%v)",
					app, a.NormPerf("dynamic(BS)"), a.NormPerf("static(BS)"))
			}
		}
	}
}

// TestParticleFilterInversion asserts the static(BS) < static(SB) anomaly.
func TestParticleFilterInversion(t *testing.T) {
	for _, a := range figA.Apps {
		if a.App != "particlefilter" {
			continue
		}
		if a.NormPerf("static(BS)") >= 1.0 {
			t.Errorf("particlefilter static(BS) = %v, expected < 1 (§5A inversion)", a.NormPerf("static(BS)"))
		}
	}
}

func TestTable2SignsAndMagnitudes(t *testing.T) {
	tab := RunTable2(figA, figB)
	if len(tab.Rows) != 3 || len(tab.Platforms) != 2 {
		t.Fatalf("Table 2 shape: %d rows, %d platforms", len(tab.Rows), len(tab.Platforms))
	}
	for _, r := range tab.Rows {
		for _, p := range tab.Platforms {
			if r.MeanPct[p] <= 0 {
				t.Errorf("%s on %s: mean gain %v%%, want positive", r.Comparison, p, r.MeanPct[p])
			}
			if r.MeanPct[p] > 60 {
				t.Errorf("%s on %s: mean gain %v%% implausibly high", r.Comparison, p, r.MeanPct[p])
			}
		}
	}
	// AID-hybrid's gains exceed AID-static's (its dynamic tail only helps).
	for _, p := range tab.Platforms {
		if tab.Rows[1].MeanPct[p] <= tab.Rows[0].MeanPct[p] {
			t.Errorf("on %s AID-hybrid gain (%v) should exceed AID-static gain (%v)",
				p, tab.Rows[1].MeanPct[p], tab.Rows[0].MeanPct[p])
		}
	}
	// The paper's platform asymmetry: AID-dynamic's advantage over dynamic
	// is small on A (3.1%) and large on B (22.3%).
	pa, pb := tab.Platforms[0], tab.Platforms[1]
	if tab.Rows[2].MeanPct[pb] <= tab.Rows[2].MeanPct[pa] {
		t.Errorf("AID-dynamic gain should be larger on B (%v) than on A (%v)",
			tab.Rows[2].MeanPct[pb], tab.Rows[2].MeanPct[pa])
	}
}

func TestRenderOutputs(t *testing.T) {
	out := figA.Render()
	for _, want := range []string{"static(SB)", "AID-dynamic", "streamcluster", "-- NPB --"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig render missing %q", want)
		}
	}
	csv := figA.CSV()
	if lines := strings.Count(csv, "\n"); lines != 22 {
		t.Errorf("CSV has %d lines, want 22 (header + 21 apps)", lines)
	}
	tab := RunTable2(figA, figB).Render()
	if !strings.Contains(tab, "AID-static vs. static(BS)") {
		t.Errorf("Table 2 render missing comparison row: %s", tab)
	}
}

func TestFig1Traces(t *testing.T) {
	a, b, err := RunFig1()
	if err != nil {
		t.Fatal(err)
	}
	// The headline observation: 2B-2S and 4S complete within a few percent.
	ratio := float64(a.CompletionNs) / float64(b.CompletionNs)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("Fig 1: 2B-2S vs 4S completion ratio = %.3f, want ~1", ratio)
	}
	// The 2B-2S trace must show the big-core threads idling (imbalance).
	if imb := a.Trace.ImbalancePct(); imb < 25 {
		t.Errorf("Fig 1a imbalance = %.1f%%, expected heavy", imb)
	}
	if imb := b.Trace.ImbalancePct(); imb > 10 {
		t.Errorf("Fig 1b (symmetric) imbalance = %.1f%%, expected low", imb)
	}
	if !strings.Contains(a.Render(), "Fig 1a") {
		t.Error("Fig 1a render missing title")
	}
}

func TestFig2Series(t *testing.T) {
	series, err := RunFig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("Fig 2 produced %d series, want 4 (BT/CG x A/B)", len(series))
	}
	for _, s := range series {
		if len(s.SF) != 30 {
			t.Errorf("%s on %s: %d loops, want 30", s.App, s.Platform, len(s.SF))
		}
		mn, _ := stats.Min(s.SF)
		mx, _ := stats.Max(s.SF)
		onA := strings.HasPrefix(s.Platform, "A")
		if onA {
			// Wide spread on the big.LITTLE platform (Fig 2a/2c).
			if mx < 3.0 {
				t.Errorf("%s on A: max SF %.2f, expected high-SF outliers", s.App, mx)
			}
			if mx/mn < 2.0 {
				t.Errorf("%s on A: SF spread %.2f-%.2f too narrow", s.App, mn, mx)
			}
		} else {
			// Narrow band on the emulated Xeon (Fig 2b/2d).
			if mx > 2.45 || mn < 1.5 {
				t.Errorf("%s on B: SF range [%.2f, %.2f] outside the paper's narrow band", s.App, mn, mx)
			}
		}
	}
}

func TestFig4HybridBeatsAIDStatic(t *testing.T) {
	as, ah, err := RunFig4()
	if err != nil {
		t.Fatal(err)
	}
	// Fig 4 story: AID-hybrid(80%) completes EP faster than AID-static
	// because the dynamic tail absorbs the SF drift (paper: 10.5% better).
	if ah.CompletionNs >= as.CompletionNs {
		t.Errorf("AID-hybrid (%d) should beat AID-static (%d) on EP", ah.CompletionNs, as.CompletionNs)
	}
	gain := float64(as.CompletionNs)/float64(ah.CompletionNs) - 1
	if gain > 0.30 {
		t.Errorf("AID-hybrid gain on EP = %.1f%%, implausibly high (paper: 10.5%%)", gain*100)
	}
	// The hybrid trace should end better balanced.
	if ah.Trace.ImbalancePct() >= as.Trace.ImbalancePct() {
		t.Errorf("hybrid imbalance (%.1f%%) should be below AID-static's (%.1f%%)",
			ah.Trace.ImbalancePct(), as.Trace.ImbalancePct())
	}
}

func TestGuidedComparisonRuns(t *testing.T) {
	// The paper's guided result (+44%/+65% vs static/dynamic) is a KNOWN
	// DEVIATION: the abstract overhead model does not reproduce guided's
	// collapse (see RunGuided's doc comment and EXPERIMENTS.md). This test
	// pins the *model's* behaviour so a future change that silently brings
	// guided to either extreme is noticed: guided must land between the
	// catastrophic and dominant extremes and never beat AID-hybrid overall.
	g, err := RunGuided(amp.PlatformA())
	if err != nil {
		t.Fatal(err)
	}
	if g.VsStaticPct < -60 || g.VsStaticPct > 80 {
		t.Errorf("guided vs static avg = %v%%, outside the pinned band", g.VsStaticPct)
	}
	if !strings.Contains(g.Render(), "guided") {
		t.Error("guided render malformed")
	}
	// Pin guided's relation to AID-hybrid: in the model they land at rough
	// parity (the paper's guided collapse is the documented deviation); a
	// drift outside this band signals an unintended model change.
	gb, err := RunGuidedVsAID(amp.PlatformA())
	if err != nil {
		t.Fatal(err)
	}
	if gb < 0.85 || gb > 1.08 {
		t.Errorf("guided/AID-hybrid gmean speedup = %v, outside the pinned parity band", gb)
	}
}

func TestFig9OfflineSFComparison(t *testing.T) {
	f, err := RunFig9(amp.PlatformA())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Apps) != 10 {
		t.Fatalf("Fig 9 covers %d apps, want 10", len(f.Apps))
	}
	// AID-static should track the offline variant within a few percent for
	// most apps...
	within := 0
	for _, app := range f.Apps {
		on := f.Norm["AID-static"][app]
		off := f.Norm["AID-static(offline-SF)"][app]
		if on >= off*0.93 {
			within++
		}
	}
	if within < 7 {
		t.Errorf("AID-static within range of offline-SF for only %d/10 apps", within)
	}
	// ...and must clearly beat it for blackscholes on Platform A (§5C: the
	// offline SF ignores LLC contention).
	on := f.Norm["AID-static"]["blackscholes"]
	off := f.Norm["AID-static(offline-SF)"]["blackscholes"]
	if on <= off {
		t.Errorf("blackscholes on A: AID-static (%v) should beat offline-SF (%v)", on, off)
	}
	if !strings.Contains(f.Render(), "blackscholes") {
		t.Error("Fig 9 render malformed")
	}
}

func TestFig9cSFSeries(t *testing.T) {
	f, err := RunFig9c(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.EstimatedSF) < 35 {
		t.Fatalf("Fig 9c: only %d estimates collected", len(f.EstimatedSF))
	}
	// Offline SF sits far above the online estimates (Fig 9c's whole point).
	meanEst := stats.Mean(f.EstimatedSF)
	if f.OfflineSF[0] < meanEst*1.5 {
		t.Errorf("offline SF (%.2f) should far exceed mean estimated SF (%.2f)", f.OfflineSF[0], meanEst)
	}
	if !strings.Contains(f.Render(), "Fig 9c") {
		t.Error("Fig 9c render malformed")
	}
}

func TestHybridPctSweep(t *testing.T) {
	var wl []workloads.Workload
	for _, n := range []string{"FT", "leukocyte", "blackscholes", "streamcluster"} {
		w, ok := workloads.ByName(n)
		if !ok {
			t.Fatalf("workload %s missing", n)
		}
		wl = append(wl, w)
	}
	h, err := RunHybridPct(amp.PlatformA(), wl)
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic-friendly apps should prefer lower percentages than
	// AID-static-friendly ones (§5B).
	if h.Best["leukocyte"] >= h.Best["blackscholes"] {
		t.Errorf("leukocyte best pct (%d) should be below blackscholes' (%d)",
			h.Best["leukocyte"], h.Best["blackscholes"])
	}
	if !strings.Contains(h.Render(), "gmean") {
		t.Error("hybrid pct render malformed")
	}
}

func TestFig8ChunkSensitivity(t *testing.T) {
	f, err := RunFig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Apps) != 11 {
		t.Fatalf("Fig 8 covers %d apps, want 11", len(f.Apps))
	}
	// Expected shape 1: very large dynamic chunks hurt (end-of-loop
	// imbalance) relative to the best dynamic setting, for most apps.
	hurt := 0
	for _, app := range f.Apps {
		best := 0.0
		for _, c := range f.DynChunks {
			if v := f.Norm[labelDyn(c)][app]; v > best {
				best = v
			}
		}
		if f.Norm[labelDyn(30)][app] < best*0.97 {
			hurt++
		}
	}
	if hurt < 6 {
		t.Errorf("large dynamic chunks hurt only %d/11 apps; expected the majority", hurt)
	}
	// Expected shape 2: AID-dynamic's tail switch removes the chunk-choice
	// risk — its worst setting stays close to dynamic's best, and far above
	// dynamic's worst setting for the chunk-sensitive apps (§5B: the
	// optimization "effectively remove[s] this source of load imbalance").
	sensitiveApps := 0
	for _, app := range f.Apps {
		worstDyn := worstOver(f, app, f.DynChunks, labelDyn)
		worstAID := worstOver(f, app, f.AIDMajors, labelAID)
		if worstAID < worstDyn*0.93 {
			t.Errorf("%s: AID-dynamic worst-case (%.3f) falls below dynamic's worst (%.3f)",
				app, worstAID, worstDyn)
		}
		if worstAID > worstDyn*1.1 {
			sensitiveApps++
		}
	}
	if sensitiveApps < 4 {
		t.Errorf("AID-dynamic clearly beats dynamic's worst chunk for only %d/11 apps", sensitiveApps)
	}
	if !strings.Contains(f.Render(), "AID-dynamic/1,35") {
		t.Error("Fig 8 render missing sweep rows")
	}
}

func labelDyn(c int64) string { return fmt.Sprintf("dynamic(BS)/%d", c) }
func labelAID(m int64) string { return fmt.Sprintf("AID-dynamic/1,%d", m) }

func worstOver(f Fig8Result, app string, chunks []int64, label func(int64) string) float64 {
	mn := 1e18
	for _, c := range chunks {
		if v := f.Norm[label(c)][app]; v < mn {
			mn = v
		}
	}
	return mn
}

func TestFig2Render(t *testing.T) {
	s := Fig2Series{App: "BT", Platform: "A", SF: []float64{1.5, 3.25}}
	out := s.Render()
	if !strings.Contains(out, "BT on Platform A") || !strings.Contains(out, "loop  1") {
		t.Errorf("Fig 2 render malformed: %q", out)
	}
}
