package exps

import (
	"fmt"
	"strings"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// TraceResult bundles a rendered execution trace with its metrics.
type TraceResult struct {
	Title        string
	Trace        *trace.Trace
	CompletionNs int64
}

// Render draws the trace with an 88-column timeline.
func (tr TraceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (completion: %d ns)\n", tr.Title, tr.CompletionNs)
	b.WriteString(tr.Trace.Render(88))
	return b.String()
}

// platformA2B2S builds the 2-big/2-small configuration of Fig. 1a from the
// Platform A core types (the paper restricts EP to four cores there).
func platformA2B2S() (*amp.Platform, error) {
	base := amp.PlatformA()
	cl := append([]amp.Cluster(nil), base.Clusters...)
	cl[0].NumCores = 2
	cl[1].NumCores = 2
	return amp.New("A-2B2S", cl, base.Overhead)
}

// epMainLoop extracts EP's single parallel loop.
func epMainLoop() sim.LoopSpec {
	w, _ := workloads.ByName("EP")
	loops := w.Program.Loops()
	return loops[0]
}

// traceLoop runs one loop under a scheme with tracing enabled.
func traceLoop(pl *amp.Platform, nthreads int, s Scheme, spec sim.LoopSpec, title string) (TraceResult, error) {
	tr := trace.New(nthreads)
	cfg := sim.Config{
		Platform: pl,
		NThreads: nthreads,
		Binding:  s.Binding,
		Factory:  s.Sched.Factory(),
		Trace:    tr,
	}
	res, err := sim.RunLoop(cfg, spec, 0)
	if err != nil {
		return TraceResult{}, err
	}
	return TraceResult{Title: title, Trace: tr, CompletionNs: res.End - res.Start}, nil
}

// RunFig1 regenerates Fig. 1: EP under static with 4 threads on (a) two big
// plus two small cores and (b) four small cores. The paper's observation:
// the two traces complete in nearly the same time because static's even
// split leaves the loop bounded by the small cores, wasting the big ones.
func RunFig1() (a, b TraceResult, err error) {
	spec := epMainLoop()
	mixed, err := platformA2B2S()
	if err != nil {
		return TraceResult{}, TraceResult{}, err
	}
	st := Scheme{Sched: rt.Schedule{Kind: rt.KindStatic}, Binding: amp.BindBS}
	a, err = traceLoop(mixed, 4, st, spec, "Fig 1a: EP, static, 2B-2S")
	if err != nil {
		return TraceResult{}, TraceResult{}, err
	}
	// 4 threads under SB on the full platform occupy CPUs 0-3: four small.
	st.Binding = amp.BindSB
	b, err = traceLoop(amp.PlatformA(), 4, st, spec, "Fig 1b: EP, static, 4S")
	if err != nil {
		return TraceResult{}, TraceResult{}, err
	}
	return a, b, nil
}

// Fig2Series is the per-loop SF series of one application on one platform.
type Fig2Series struct {
	App      string
	Platform string
	// SF[i] is the offline speedup factor of the application's i-th loop.
	SF []float64
}

// Render prints the series.
func (s Fig2Series) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2: per-loop offline SF — %s on Platform %s\n", s.App, s.Platform)
	for i, sf := range s.SF {
		fmt.Fprintf(&b, "loop %2d  SF %5.2f  %s\n", i, sf, strings.Repeat("*", int(sf*4+0.5)))
	}
	return b.String()
}

// RunFig2 measures the offline SF of the first 30 loops of BT and CG on
// both platforms, using the paper's method (§2): single-thread runs on a
// big and a small core, ratio of completion times. Expected shapes: wide SF
// spread on Platform A (up to ~7.7), narrow band (~1.7-2.3) on Platform B.
func RunFig2() ([]Fig2Series, error) {
	var out []Fig2Series
	for _, pl := range []*amp.Platform{amp.PlatformA(), amp.PlatformB()} {
		for _, name := range []string{"BT", "CG"} {
			w, ok := workloads.ByName(name)
			if !ok {
				return nil, fmt.Errorf("exps: workload %s missing", name)
			}
			loops := w.Program.Loops()
			if len(loops) > 30 {
				loops = loops[:30]
			}
			s := Fig2Series{App: name, Platform: pl.Name}
			for _, spec := range loops {
				sf, err := sim.MeasureLoopSF(pl, spec)
				if err != nil {
					return nil, err
				}
				s.SF = append(s.SF, sf)
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// RunFig4 regenerates Fig. 4: EP's loop with 8 threads on Platform A under
// AID-static and AID-hybrid(80%). The paper's observation: AID-static's
// sampled SF is not representative of the whole loop, leaving residual
// imbalance; AID-hybrid's dynamic tail absorbs it (~10% better).
func RunFig4() (aidStatic, aidHybrid TraceResult, err error) {
	spec := epMainLoop()
	pl := amp.PlatformA()
	aidStatic, err = traceLoop(pl, 8,
		Scheme{Sched: rt.Schedule{Kind: rt.KindAIDStatic}, Binding: amp.BindBS},
		spec, "Fig 4a: EP, AID-static, 8 threads")
	if err != nil {
		return TraceResult{}, TraceResult{}, err
	}
	aidHybrid, err = traceLoop(pl, 8,
		Scheme{Sched: rt.Schedule{Kind: rt.KindAIDHybrid, Pct: 0.80}, Binding: amp.BindBS},
		spec, "Fig 4b: EP, AID-hybrid(80%), 8 threads")
	if err != nil {
		return TraceResult{}, TraceResult{}, err
	}
	return aidStatic, aidHybrid, nil
}

// Fig8Result is the chunk-sensitivity sweep of §5B.
type Fig8Result struct {
	Platform string
	Apps     []string
	// DynChunks are the dynamic chunk values swept; AIDMajors the Major
	// chunk values for AID-dynamic (minor chunk fixed at 1).
	DynChunks []int64
	AIDMajors []int64
	// Norm maps "scheme/chunk" label -> app -> normalized performance
	// (vs static(BS), matching Fig. 8's baseline bar).
	Norm map[string]map[string]float64
}

// Fig8Apps lists the applications of Fig. 8 (those that benefit from
// distributing iterations dynamically, §5B).
func Fig8Apps() []string {
	return []string{"BT", "EP", "FT", "MG", "bodytrack", "heartwall",
		"hotspot3D", "lavamd", "leukocyte", "particlefilter", "sradv1"}
}

// RunFig8 sweeps dynamic's chunk and AID-dynamic's Major chunk on Platform
// A. Expected shapes: large dynamic chunks degrade performance through
// end-of-loop imbalance; AID-dynamic's tail switch makes it far less
// sensitive to the Major chunk choice.
func RunFig8() (Fig8Result, error) {
	pl := amp.PlatformA()
	out := Fig8Result{
		Platform:  pl.Name,
		Apps:      Fig8Apps(),
		DynChunks: []int64{1, 2, 4, 5, 10, 15, 20, 25, 30},
		AIDMajors: []int64{1, 2, 4, 5, 10, 15, 20, 25, 30, 35},
		Norm:      map[string]map[string]float64{},
	}
	schemes := []Scheme{{Label: "static(BS)", Sched: rt.Schedule{Kind: rt.KindStatic}, Binding: amp.BindBS}}
	for _, c := range out.DynChunks {
		schemes = append(schemes, Scheme{
			Label:   fmt.Sprintf("dynamic(BS)/%d", c),
			Sched:   rt.Schedule{Kind: rt.KindDynamic, Chunk: c},
			Binding: amp.BindBS,
		})
	}
	for _, m := range out.AIDMajors {
		schemes = append(schemes, Scheme{
			Label:   fmt.Sprintf("AID-dynamic/1,%d", m),
			Sched:   rt.Schedule{Kind: rt.KindAIDDynamic, Chunk: 1, Major: m},
			Binding: amp.BindBS,
		})
	}
	for _, appName := range out.Apps {
		w, ok := workloads.ByName(appName)
		if !ok {
			return Fig8Result{}, fmt.Errorf("exps: workload %s missing", appName)
		}
		var baseTime float64
		for _, s := range schemes {
			tns, err := runApp(pl, w, s)
			if err != nil {
				return Fig8Result{}, err
			}
			if s.Label == "static(BS)" {
				baseTime = tns
			}
			if out.Norm[s.Label] == nil {
				out.Norm[s.Label] = map[string]float64{}
			}
			out.Norm[s.Label][appName] = tns // store raw; normalize below
		}
		for _, s := range schemes {
			out.Norm[s.Label][appName] = baseTime / out.Norm[s.Label][appName]
		}
	}
	return out, nil
}

// Labels returns the scheme labels of the sweep in presentation order.
func (f Fig8Result) Labels() []string {
	labels := []string{"static(BS)"}
	for _, c := range f.DynChunks {
		labels = append(labels, fmt.Sprintf("dynamic(BS)/%d", c))
	}
	for _, m := range f.AIDMajors {
		labels = append(labels, fmt.Sprintf("AID-dynamic/1,%d", m))
	}
	return labels
}

// Render prints the sweep as a table with one row per scheme/chunk setting.
func (f Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8: chunk sensitivity, normalized performance vs static(BS) — Platform %s\n", f.Platform)
	fmt.Fprintf(&b, "%-20s", "scheme/chunk")
	for _, a := range f.Apps {
		fmt.Fprintf(&b, "%15s", a)
	}
	b.WriteByte('\n')
	for _, label := range f.Labels() {
		fmt.Fprintf(&b, "%-20s", label)
		for _, a := range f.Apps {
			fmt.Fprintf(&b, "%15.3f", f.Norm[label][a])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig9Apps lists the applications of Fig. 9 (those where AID-static or
// AID-hybrid is comparable to or better than AID-dynamic, §5C).
func Fig9Apps() []string {
	return []string{"CG", "IS", "LU", "blackscholes", "bodytrack",
		"streamcluster", "bfs", "hotspot3D", "sradv1", "sradv2"}
}

// Fig9Result compares AID-static against its offline-SF variant and
// AID-hybrid on one platform.
type Fig9Result struct {
	Platform string
	Apps     []string
	// Norm maps scheme label -> app -> normalized performance vs
	// static(SB), the same baseline as Figs. 6/7.
	Norm map[string]map[string]float64
}

// offlineSFTable measures each loop's offline SF (single-thread method) and
// returns a per-loop table keyed by loop name, which the offline-SF variant
// consumes — mirroring how the paper feeds offline-collected per-loop SF
// values to the runtime (§5C).
func offlineSFTable(pl *amp.Platform, w workloads.Workload) (map[string][]float64, error) {
	out := map[string][]float64{}
	for _, spec := range w.Program.Loops() {
		sf, err := sim.MeasureLoopSF(pl, spec)
		if err != nil {
			return nil, err
		}
		// Two core types: [bigSF, 1] relative to the small (slowest) type.
		out[spec.Name] = []float64{sf, 1}
	}
	return out, nil
}

// RunFig9 regenerates Figs. 9a/9b on the given platform. The expected
// shapes: AID-static tracks AID-static(offline-SF) within a few percent for
// most programs, and on Platform A the offline variant *loses* badly for
// blackscholes because offline SF ignores LLC contention (§5C).
func RunFig9(pl *amp.Platform) (Fig9Result, error) {
	out := Fig9Result{Platform: pl.Name, Apps: Fig9Apps(), Norm: map[string]map[string]float64{}}
	labels := []string{"AID-static", "AID-static(offline-SF)", "AID-hybrid"}
	for _, l := range labels {
		out.Norm[l] = map[string]float64{}
	}
	base := Scheme{Label: "static(SB)", Sched: rt.Schedule{Kind: rt.KindStatic}, Binding: amp.BindSB}
	for _, appName := range out.Apps {
		w, ok := workloads.ByName(appName)
		if !ok {
			return Fig9Result{}, fmt.Errorf("exps: workload %s missing", appName)
		}
		tBase, err := runApp(pl, w, base)
		if err != nil {
			return Fig9Result{}, err
		}
		// AID-static and AID-hybrid.
		for _, s := range []Scheme{
			{Label: "AID-static", Sched: rt.Schedule{Kind: rt.KindAIDStatic}, Binding: amp.BindBS},
			{Label: "AID-hybrid", Sched: rt.Schedule{Kind: rt.KindAIDHybrid, Pct: 0.80}, Binding: amp.BindBS},
		} {
			tns, err := runApp(pl, w, s)
			if err != nil {
				return Fig9Result{}, err
			}
			out.Norm[s.Label][appName] = tBase / tns
		}
		// Offline-SF variant: per-loop SF tables measured single-threaded.
		table, err := offlineSFTable(pl, w)
		if err != nil {
			return Fig9Result{}, err
		}
		res, err := sim.RunProgram(sim.Config{
			Platform: pl,
			NThreads: pl.NumCores(),
			Binding:  amp.BindBS,
			FactoryNamed: func(loopName string, info core.LoopInfo) (core.Scheduler, error) {
				sf, ok := table[loopName]
				if !ok {
					return nil, fmt.Errorf("exps: no offline SF for loop %q", loopName)
				}
				return core.NewAIDStaticOffline(info, 1, sf)
			},
		}, w.Program)
		if err != nil {
			return Fig9Result{}, err
		}
		out.Norm["AID-static(offline-SF)"][appName] = tBase / float64(res.TotalNs)
	}
	return out, nil
}

// Render prints the Fig. 9 comparison.
func (f Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 9: impact of SF-estimation accuracy — Platform %s (normalized vs static(SB))\n", f.Platform)
	labels := []string{"AID-static", "AID-static(offline-SF)", "AID-hybrid"}
	fmt.Fprintf(&b, "%-16s", "app")
	for _, l := range labels {
		fmt.Fprintf(&b, "%24s", l)
	}
	b.WriteByte('\n')
	for _, a := range f.Apps {
		fmt.Fprintf(&b, "%-16s", a)
		for _, l := range labels {
			fmt.Fprintf(&b, "%24.3f", f.Norm[l][a])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig9cResult contrasts offline-collected and online-estimated SF for
// blackscholes' pricing loop across its invocations on Platform A.
type Fig9cResult struct {
	// OfflineSF is the single-thread measured SF (constant per invocation).
	OfflineSF []float64
	// EstimatedSF is the sampling-phase estimate of each invocation under
	// the full 8-thread run.
	EstimatedSF []float64
}

// RunFig9c regenerates Fig. 9c. Expected shape: the offline series sits far
// above the estimated series, because single-thread measurement misses the
// LLC contention that compresses big-core advantage at run time (§5C: LLC
// misses per 1K instructions grow 3.6x from 1 to 8 threads).
func RunFig9c(invocations int) (Fig9cResult, error) {
	pl := amp.PlatformA()
	w, _ := workloads.ByName("blackscholes")
	var spec sim.LoopSpec
	for _, l := range w.Program.Loops() {
		if l.Name == "bs-price" {
			spec = l
		}
	}
	if spec.Name == "" {
		return Fig9cResult{}, fmt.Errorf("exps: bs-price loop not found")
	}
	offline, err := sim.MeasureLoopSF(pl, spec)
	if err != nil {
		return Fig9cResult{}, err
	}
	out := Fig9cResult{}
	// Collect the online estimate per invocation by capturing the
	// AID-static scheduler instance built for each loop execution.
	var captured []*core.AIDHybrid
	cfg := sim.Config{
		Platform: pl,
		NThreads: 8,
		Binding:  amp.BindBS,
		Factory: func(info core.LoopInfo) (core.Scheduler, error) {
			s, err := core.NewAIDStatic(info, 1)
			if err != nil {
				return nil, err
			}
			captured = append(captured, s)
			return s, nil
		},
	}
	cursor := int64(0)
	for i := 0; i < invocations; i++ {
		res, err := sim.RunLoop(cfg, spec, cursor)
		if err != nil {
			return Fig9cResult{}, err
		}
		cursor = res.End
	}
	for _, s := range captured {
		sf, ok := s.SFEstimate()
		if !ok {
			continue
		}
		out.EstimatedSF = append(out.EstimatedSF, sf[0])
		out.OfflineSF = append(out.OfflineSF, offline)
	}
	return out, nil
}

// Render prints both series.
func (f Fig9cResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig 9c: blackscholes per-invocation SF on Platform A\n")
	b.WriteString("invocation  offline-SF  estimated-SF\n")
	for i := range f.EstimatedSF {
		fmt.Fprintf(&b, "%10d  %10.2f  %12.2f\n", i, f.OfflineSF[i], f.EstimatedSF[i])
	}
	return b.String()
}
