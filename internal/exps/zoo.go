package exps

import (
	"fmt"
	"strings"

	"repro/internal/amp"
	"repro/internal/rt"
	"repro/internal/sim"
)

// ZooRow is one (platform, scheme) cell of the platform-zoo sweep: the
// virtual makespan of a fixed synthetic loop and the modeled energy spent
// by the fleet over it (active power while working, idle power while
// waiting on the barrier — per-cluster figures from the platform's energy
// model, summed).
type ZooRow struct {
	Platform   string
	Scheme     string
	MakespanNs float64
	EnergyJ    float64
}

// ZooResult is the outcome of RunZoo: rows in platform-major order, the
// platforms in registry order.
type ZooResult struct {
	Rows []ZooRow
}

// zooSchemes are the schedules the zoo sweep exercises: the static
// baseline, plain dynamic self-scheduling, and the AID-dynamic treatment —
// the three regimes whose relative cost the topology-aware overhead model
// (per-shard contention, provenance-tiered locality, nearest-victim steals)
// is supposed to separate.
func zooSchemes() []Scheme {
	return []Scheme{
		{Label: "static", Sched: rt.Schedule{Kind: rt.KindStatic}, Binding: amp.BindBS},
		{Label: "dynamic", Sched: rt.Schedule{Kind: rt.KindDynamic, Chunk: 8}, Binding: amp.BindBS},
		{Label: "aid-dynamic", Sched: rt.Schedule{Kind: rt.KindAIDDynamic, Chunk: 1, Major: 5}, Binding: amp.BindBS},
	}
}

// RunZoo sweeps one fixed loop over every named platform in the registry
// under the zoo schemes and reports makespan and energy per cell. The loop
// is moderately irregular (linear cost ramp), so schedulers that charge
// contention or locality differently across the zoo's topologies produce
// visibly different rows.
func RunZoo() (ZooResult, error) {
	var out ZooResult
	for _, name := range amp.Names() {
		pl, ok := amp.Lookup(name)
		if !ok {
			return ZooResult{}, fmt.Errorf("exps: zoo platform %q not registered", name)
		}
		spec := sim.LoopSpec{
			Name:    "zoo",
			NI:      40_000,
			Profile: amp.Profile{ILP: 0.6, MemIntensity: 0.2},
			Cost:    sim.LinearCost{Base: 20_000, Slope: 1.5},
		}
		for _, s := range zooSchemes() {
			res, err := sim.RunLoop(sim.Config{
				Platform: pl,
				NThreads: pl.NumCores(),
				Binding:  s.Binding,
				Factory:  s.Sched.Factory(),
			}, spec, 0)
			if err != nil {
				return ZooResult{}, fmt.Errorf("exps: zoo %s under %s: %w", name, s.Label, err)
			}
			out.Rows = append(out.Rows, ZooRow{
				Platform:   name,
				Scheme:     s.Label,
				MakespanNs: float64(res.End - res.Start),
				EnergyJ:    res.EnergyJ,
			})
		}
	}
	return out, nil
}

// Render prints the sweep as an aligned table.
func (z ZooResult) Render() string {
	var b strings.Builder
	b.WriteString("Platform zoo: makespan and modeled energy per schedule\n")
	fmt.Fprintf(&b, "%-10s %-12s %14s %12s\n", "platform", "scheme", "makespan(ms)", "energy(J)")
	for _, r := range z.Rows {
		fmt.Fprintf(&b, "%-10s %-12s %14.3f %12.4f\n", r.Platform, r.Scheme, r.MakespanNs/1e6, r.EnergyJ)
	}
	return b.String()
}
