// Package exps regenerates every table and figure of the paper's evaluation
// (§5) on the modeled platforms. Each experiment returns a structured result
// with a text renderer; cmd/aidbench exposes them on the command line and
// the repository-root benchmarks wrap them for `go test -bench`.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Fig1       EP execution traces, static schedule, 2B-2S vs 4S
//	Fig2       per-loop offline SF, BT and CG, Platforms A and B
//	Fig4       EP traces under AID-static and AID-hybrid(80%)
//	Fig6/Fig7  normalized performance, 21 apps x 7 schemes, Platform A/B
//	Table2     mean/gmean AID gains over the schemes they replace
//	Fig8       chunk sensitivity of dynamic and AID-dynamic
//	HybridPct  AID-hybrid percentage sensitivity (§5B, text)
//	Guided     guided vs static/dynamic (§5, text)
//	Fig9       AID-static vs AID-static(offline-SF) vs AID-hybrid
//	Fig9c      blackscholes estimated-vs-offline SF per loop instance
package exps

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/amp"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Scheme is one column of Figs. 6/7: a schedule plus a binding convention.
type Scheme struct {
	Label   string
	Sched   rt.Schedule
	Binding amp.Binding
}

// Fig6Schemes returns the seven schemes of Figs. 6 and 7 in the legend's
// order. All AID variants use BS, as §4.3 requires; static and dynamic are
// evaluated under both bindings to isolate the serial-phase effect (§5A).
func Fig6Schemes() []Scheme {
	return []Scheme{
		{Label: "static(SB)", Sched: rt.Schedule{Kind: rt.KindStatic}, Binding: amp.BindSB},
		{Label: "static(BS)", Sched: rt.Schedule{Kind: rt.KindStatic}, Binding: amp.BindBS},
		{Label: "dynamic(SB)", Sched: rt.Schedule{Kind: rt.KindDynamic}, Binding: amp.BindSB},
		{Label: "dynamic(BS)", Sched: rt.Schedule{Kind: rt.KindDynamic}, Binding: amp.BindBS},
		{Label: "AID-static", Sched: rt.Schedule{Kind: rt.KindAIDStatic}, Binding: amp.BindBS},
		{Label: "AID-hybrid", Sched: rt.Schedule{Kind: rt.KindAIDHybrid, Pct: 0.80}, Binding: amp.BindBS},
		{Label: "AID-dynamic", Sched: rt.Schedule{Kind: rt.KindAIDDynamic, Chunk: 1, Major: 5}, Binding: amp.BindBS},
	}
}

// AppTimes holds one application's completion time under every scheme.
type AppTimes struct {
	App   string
	Suite string
	// TimeNs maps scheme label to virtual completion time.
	TimeNs map[string]float64
}

// NormPerf returns the application's normalized performance for a scheme:
// baseline time / scheme time, with static(SB) as the baseline (higher is
// better), exactly as Figs. 6 and 7 plot it.
func (a AppTimes) NormPerf(label string) float64 {
	return a.TimeNs["static(SB)"] / a.TimeNs[label]
}

// FigResult is the outcome of a Fig. 6/7-style sweep.
type FigResult struct {
	Platform string
	Schemes  []Scheme
	Apps     []AppTimes
}

// runApp executes one workload under one scheme.
func runApp(pl *amp.Platform, w workloads.Workload, s Scheme) (float64, error) {
	res, err := sim.RunProgram(sim.Config{
		Platform: pl,
		NThreads: pl.NumCores(),
		Binding:  s.Binding,
		Factory:  s.Sched.Factory(),
	}, w.Program)
	if err != nil {
		return 0, fmt.Errorf("exps: %s under %s: %w", w.Name, s.Label, err)
	}
	return float64(res.TotalNs), nil
}

// RunFig6 regenerates Fig. 6 (Platform A) or Fig. 7 (Platform B): all 21
// applications under the seven schemes, normalized to static(SB).
func RunFig6(pl *amp.Platform) (FigResult, error) {
	return runSweep(pl, Fig6Schemes(), workloads.All())
}

// runSweep is the generic apps-x-schemes runner.
func runSweep(pl *amp.Platform, schemes []Scheme, apps []workloads.Workload) (FigResult, error) {
	out := FigResult{Platform: pl.Name, Schemes: schemes}
	for _, w := range apps {
		at := AppTimes{App: w.Name, Suite: w.Suite, TimeNs: make(map[string]float64, len(schemes))}
		for _, s := range schemes {
			tns, err := runApp(pl, w, s)
			if err != nil {
				return FigResult{}, err
			}
			at.TimeNs[s.Label] = tns
		}
		out.Apps = append(out.Apps, at)
	}
	return out, nil
}

// Render prints the figure as an aligned table of normalized performance.
func (f FigResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Normalized performance (baseline static(SB)) — Platform %s\n", f.Platform)
	fmt.Fprintf(&b, "%-16s", "app")
	for _, s := range f.Schemes {
		fmt.Fprintf(&b, "%14s", s.Label)
	}
	b.WriteByte('\n')
	suite := ""
	for _, a := range f.Apps {
		if a.Suite != suite {
			suite = a.Suite
			fmt.Fprintf(&b, "-- %s --\n", suite)
		}
		fmt.Fprintf(&b, "%-16s", a.App)
		for _, s := range f.Schemes {
			fmt.Fprintf(&b, "%14.3f", a.NormPerf(s.Label))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as comma-separated values (normalized performance).
func (f FigResult) CSV() string {
	var b strings.Builder
	b.WriteString("app,suite")
	for _, s := range f.Schemes {
		b.WriteString(",")
		b.WriteString(s.Label)
	}
	b.WriteByte('\n')
	for _, a := range f.Apps {
		fmt.Fprintf(&b, "%s,%s", a.App, a.Suite)
		for _, s := range f.Schemes {
			fmt.Fprintf(&b, ",%.4f", a.NormPerf(s.Label))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table2Row is one comparison line of Table 2.
type Table2Row struct {
	Comparison string
	// MeanPct and GmeanPct per platform name.
	MeanPct  map[string]float64
	GmeanPct map[string]float64
}

// Table2 aggregates the AID gains of Table 2 from Fig. 6/7 results.
type Table2 struct {
	Platforms []string
	Rows      []Table2Row
}

// RunTable2 computes Table 2 from the two figure sweeps.
func RunTable2(figs ...FigResult) Table2 {
	t := Table2{}
	comparisons := []struct{ name, a, b string }{
		{"AID-static vs. static(BS)", "static(BS)", "AID-static"},
		{"AID-hybrid vs. static(BS)", "static(BS)", "AID-hybrid"},
		{"AID-dynamic vs. dynamic(BS)", "dynamic(BS)", "AID-dynamic"},
	}
	for _, c := range comparisons {
		row := Table2Row{
			Comparison: c.name,
			MeanPct:    map[string]float64{},
			GmeanPct:   map[string]float64{},
		}
		t.Rows = append(t.Rows, row)
	}
	for _, f := range figs {
		t.Platforms = append(t.Platforms, f.Platform)
		for i, c := range comparisons {
			var base, aid []float64
			for _, a := range f.Apps {
				base = append(base, a.TimeNs[c.a])
				aid = append(aid, a.TimeNs[c.b])
			}
			t.Rows[i].MeanPct[f.Platform] = stats.MeanGainPct(base, aid)
			t.Rows[i].GmeanPct[f.Platform] = stats.GeoMeanGainPct(base, aid)
		}
	}
	return t
}

// Render prints Table 2 in the paper's layout.
func (t Table2) Render() string {
	var b strings.Builder
	b.WriteString("Table 2: Relative performance gains of the different AID variants\n")
	fmt.Fprintf(&b, "%-32s", "Loop-scheduling schemes")
	for range t.Platforms {
		fmt.Fprintf(&b, "%12s%12s", "Mean", "Gmean")
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-32s", "")
	for _, p := range t.Platforms {
		label := p
		if i := strings.IndexByte(label, ' '); i > 0 {
			label = label[:i]
		}
		fmt.Fprintf(&b, "%24s", "Platform "+label)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-32s", r.Comparison)
		for _, p := range t.Platforms {
			fmt.Fprintf(&b, "%11.2f%%%11.2f%%", r.MeanPct[p], r.GmeanPct[p])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// GuidedResult summarizes the guided-schedule comparison (§5, text): the
// average completion-time increase of guided relative to static and dynamic,
// and whether guided ever beats both.
type GuidedResult struct {
	Platform         string
	VsStaticPct      float64 // average completion-time increase vs static(BS)
	VsDynamicPct     float64 // vs dynamic(BS)
	EverBeatsBothFor []string
}

// RunGuided runs the guided-schedule comparison. The paper reports guided
// increasing completion time by 44% and 65% on average relative to static
// and dynamic, never outperforming both for any program.
//
// KNOWN DEVIATION (see EXPERIMENTS.md): our abstract overhead model does
// not reproduce guided's catastrophic slowdown. In the model, guided
// behaves like an adaptive schedule with few pool accesses and lands
// *between* static and dynamic. The paper gives no mechanism for guided's
// collapse; reproducing it would require implementation-specific detail of
// libgomp's guided path (e.g. lock-based chunk computation or
// cross-invocation cache-reuse destruction) that the model deliberately
// abstracts away. We report what the model produces and flag the mismatch
// rather than force the number.
func RunGuided(pl *amp.Platform) (GuidedResult, error) {
	schemes := []Scheme{
		{Label: "static(BS)", Sched: rt.Schedule{Kind: rt.KindStatic}, Binding: amp.BindBS},
		{Label: "dynamic(BS)", Sched: rt.Schedule{Kind: rt.KindDynamic}, Binding: amp.BindBS},
		{Label: "guided(BS)", Sched: rt.Schedule{Kind: rt.KindGuided}, Binding: amp.BindBS},
	}
	res := GuidedResult{Platform: pl.Name}
	var incStatic, incDynamic []float64
	for _, w := range workloads.All() {
		times := map[string]float64{}
		for _, s := range schemes {
			tns, err := runApp(pl, w, s)
			if err != nil {
				return GuidedResult{}, err
			}
			times[s.Label] = tns
		}
		g, st, dy := times["guided(BS)"], times["static(BS)"], times["dynamic(BS)"]
		incStatic = append(incStatic, (g/st-1)*100)
		incDynamic = append(incDynamic, (g/dy-1)*100)
		if g < st && g < dy {
			res.EverBeatsBothFor = append(res.EverBeatsBothFor, w.Name)
		}
	}
	res.VsStaticPct = stats.Mean(incStatic)
	res.VsDynamicPct = stats.Mean(incDynamic)
	return res, nil
}

// RunGuidedVsAID returns the geometric-mean speedup of guided relative to
// AID-hybrid(80%) across all workloads (< 1 means AID-hybrid dominates).
func RunGuidedVsAID(pl *amp.Platform) (float64, error) {
	guided := Scheme{Label: "guided(BS)", Sched: rt.Schedule{Kind: rt.KindGuided}, Binding: amp.BindBS}
	hybrid := Scheme{Label: "AID-hybrid", Sched: rt.Schedule{Kind: rt.KindAIDHybrid, Pct: 0.80}, Binding: amp.BindBS}
	var ratios []float64
	for _, w := range workloads.All() {
		tG, err := runApp(pl, w, guided)
		if err != nil {
			return 0, err
		}
		tH, err := runApp(pl, w, hybrid)
		if err != nil {
			return 0, err
		}
		ratios = append(ratios, tH/tG)
	}
	return stats.GeoMean(ratios), nil
}

// Render prints the guided summary.
func (g GuidedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "guided vs conventional schedules — Platform %s\n", g.Platform)
	fmt.Fprintf(&b, "avg completion-time increase vs static(BS):  %+.1f%%\n", g.VsStaticPct)
	fmt.Fprintf(&b, "avg completion-time increase vs dynamic(BS): %+.1f%%\n", g.VsDynamicPct)
	if len(g.EverBeatsBothFor) == 0 {
		b.WriteString("guided never outperforms both static and dynamic for any program\n")
	} else {
		fmt.Fprintf(&b, "guided beats both for: %s\n", strings.Join(g.EverBeatsBothFor, ", "))
	}
	return b.String()
}

// HybridPctResult is the §5B sensitivity study over AID-hybrid's percentage.
type HybridPctResult struct {
	Platform string
	Pcts     []int
	// GmeanNorm maps pct to the geometric-mean normalized performance
	// (vs static(BS)) across applications.
	GmeanNorm map[int]float64
	// PerApp maps app -> pct -> normalized performance.
	PerApp map[string]map[int]float64
	// Best maps app name to its best percentage.
	Best map[string]int
}

// RunHybridPct sweeps the AID-hybrid percentage. The paper finds the best
// value is application specific — dynamic-friendly programs prefer ~60%,
// AID-static-friendly ones 90%+ — with 80% a good overall trade-off.
func RunHybridPct(pl *amp.Platform, apps []workloads.Workload) (HybridPctResult, error) {
	pcts := []int{50, 60, 70, 80, 90, 95, 100}
	out := HybridPctResult{
		Platform:  pl.Name,
		Pcts:      pcts,
		GmeanNorm: map[int]float64{},
		PerApp:    map[string]map[int]float64{},
		Best:      map[string]int{},
	}
	base := Scheme{Label: "static(BS)", Sched: rt.Schedule{Kind: rt.KindStatic}, Binding: amp.BindBS}
	norms := map[int][]float64{}
	for _, w := range apps {
		tBase, err := runApp(pl, w, base)
		if err != nil {
			return HybridPctResult{}, err
		}
		out.PerApp[w.Name] = map[int]float64{}
		bestPct, bestNorm := 0, 0.0
		for _, pct := range pcts {
			s := Scheme{
				Label:   fmt.Sprintf("AID-hybrid(%d%%)", pct),
				Sched:   rt.Schedule{Kind: rt.KindAIDHybrid, Pct: float64(pct) / 100},
				Binding: amp.BindBS,
			}
			tns, err := runApp(pl, w, s)
			if err != nil {
				return HybridPctResult{}, err
			}
			norm := tBase / tns
			out.PerApp[w.Name][pct] = norm
			norms[pct] = append(norms[pct], norm)
			if norm > bestNorm {
				bestNorm, bestPct = norm, pct
			}
		}
		out.Best[w.Name] = bestPct
	}
	for _, pct := range pcts {
		out.GmeanNorm[pct] = stats.GeoMean(norms[pct])
	}
	return out, nil
}

// Render prints the percentage sweep.
func (h HybridPctResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AID-hybrid percentage sensitivity — Platform %s\n", h.Platform)
	fmt.Fprintf(&b, "%-16s", "app")
	for _, p := range h.Pcts {
		fmt.Fprintf(&b, "%8d%%", p)
	}
	fmt.Fprintf(&b, "%8s\n", "best")
	apps := make([]string, 0, len(h.PerApp))
	for name := range h.PerApp {
		apps = append(apps, name)
	}
	sort.Strings(apps)
	for _, name := range apps {
		fmt.Fprintf(&b, "%-16s", name)
		for _, p := range h.Pcts {
			fmt.Fprintf(&b, "%9.3f", h.PerApp[name][p])
		}
		fmt.Fprintf(&b, "%7d%%\n", h.Best[name])
	}
	fmt.Fprintf(&b, "%-16s", "gmean")
	for _, p := range h.Pcts {
		fmt.Fprintf(&b, "%9.3f", h.GmeanNorm[p])
	}
	b.WriteByte('\n')
	return b.String()
}
