package pool

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewWorkShare(t *testing.T) {
	ws := NewWorkShare(100)
	if ws.End() != 100 || ws.Next() != 0 || ws.Remaining() != 100 {
		t.Errorf("fresh pool: end=%d next=%d rem=%d", ws.End(), ws.Next(), ws.Remaining())
	}
}

func TestNewWorkShareNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWorkShare(-1) did not panic")
		}
	}()
	NewWorkShare(-1)
}

func TestTryStealSequential(t *testing.T) {
	ws := NewWorkShare(10)
	lo, hi, ok := ws.TrySteal(4)
	if !ok || lo != 0 || hi != 4 {
		t.Fatalf("first steal: [%d,%d) ok=%v", lo, hi, ok)
	}
	lo, hi, ok = ws.TrySteal(4)
	if !ok || lo != 4 || hi != 8 {
		t.Fatalf("second steal: [%d,%d) ok=%v", lo, hi, ok)
	}
	// Final steal is clipped at end.
	lo, hi, ok = ws.TrySteal(4)
	if !ok || lo != 8 || hi != 10 {
		t.Fatalf("clipped steal: [%d,%d) ok=%v", lo, hi, ok)
	}
	if _, _, ok := ws.TrySteal(4); ok {
		t.Error("steal from drained pool succeeded")
	}
	if ws.Remaining() != 0 {
		t.Errorf("Remaining after drain = %d", ws.Remaining())
	}
}

func TestTryStealZeroChunkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TrySteal(0) did not panic")
		}
	}()
	NewWorkShare(10).TrySteal(0)
}

func TestEmptyLoop(t *testing.T) {
	ws := NewWorkShare(0)
	if _, _, ok := ws.TrySteal(1); ok {
		t.Error("steal from empty loop succeeded")
	}
	if ws.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", ws.Remaining())
	}
}

func TestTryStealRest(t *testing.T) {
	ws := NewWorkShare(100)
	ws.TrySteal(30)
	lo, hi, ok := ws.TryStealRest()
	if !ok || lo != 30 || hi != 100 {
		t.Fatalf("TryStealRest: [%d,%d) ok=%v", lo, hi, ok)
	}
	if _, _, ok := ws.TryStealRest(); ok {
		t.Error("TryStealRest on drained pool succeeded")
	}
}

// TestConcurrentStealExactCoverage is the core lock-freedom invariant: under
// heavy concurrency every iteration is claimed exactly once and nothing is
// lost or duplicated.
func TestConcurrentStealExactCoverage(t *testing.T) {
	const (
		ni      = 100000
		workers = 16
	)
	ws := NewWorkShare(ni)
	var mu sync.Mutex
	claimed := make([]int32, ni)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		chunk := int64(1 + w%7) // mixed chunk sizes
		go func() {
			defer wg.Done()
			local := make([][2]int64, 0, ni/workers)
			for {
				lo, hi, ok := ws.TrySteal(chunk)
				if !ok {
					break
				}
				local = append(local, [2]int64{lo, hi})
			}
			mu.Lock()
			for _, r := range local {
				for i := r[0]; i < r[1]; i++ {
					claimed[i]++
				}
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	for i, c := range claimed {
		if c != 1 {
			t.Fatalf("iteration %d claimed %d times", i, c)
		}
	}
}

func TestConcurrentStealRestRace(t *testing.T) {
	// TryStealRest racing against TrySteal must still yield exact coverage.
	const ni = 50000
	ws := NewWorkShare(ni)
	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		rest := w%4 == 0
		go func() {
			defer wg.Done()
			sum := int64(0)
			for {
				var lo, hi int64
				var ok bool
				if rest {
					lo, hi, ok = ws.TryStealRest()
				} else {
					lo, hi, ok = ws.TrySteal(3)
				}
				if !ok {
					break
				}
				sum += hi - lo
			}
			mu.Lock()
			total += sum
			mu.Unlock()
		}()
	}
	wg.Wait()
	if total != ni {
		t.Errorf("claimed %d iterations total, want %d", total, ni)
	}
}

func TestStealCoverageProperty(t *testing.T) {
	// For any (ni, chunk), repeated stealing covers [0,ni) exactly, in order.
	f := func(niRaw uint16, chunkRaw uint8) bool {
		ni := int64(niRaw % 5000)
		chunk := int64(chunkRaw%64) + 1
		ws := NewWorkShare(ni)
		var cursor int64
		for {
			lo, hi, ok := ws.TrySteal(chunk)
			if !ok {
				break
			}
			if lo != cursor || hi <= lo || hi > ni {
				return false
			}
			cursor = hi
		}
		return cursor == ni
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTryStealFuncGuidedShape(t *testing.T) {
	// Guided with 4 threads: chunk sizes decrease as the pool drains.
	ws := NewWorkShare(1000)
	sizeOf := func(rem int64) int64 {
		s := rem / 4
		if s < 1 {
			s = 1
		}
		return s
	}
	var sizes []int64
	cursor := int64(0)
	for {
		lo, hi, ok, _ := ws.TryStealFunc(sizeOf)
		if !ok {
			break
		}
		if lo != cursor {
			t.Fatalf("non-contiguous guided steal: lo=%d want %d", lo, cursor)
		}
		cursor = hi
		sizes = append(sizes, hi-lo)
	}
	if cursor != 1000 {
		t.Fatalf("guided coverage ended at %d", cursor)
	}
	if sizes[0] != 250 {
		t.Errorf("first guided chunk = %d, want 250", sizes[0])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Errorf("guided chunk grew: %d -> %d at %d", sizes[i-1], sizes[i], i)
		}
	}
	if last := sizes[len(sizes)-1]; last != 1 {
		t.Errorf("last guided chunk = %d, want 1", last)
	}
}

func TestTryStealFuncConcurrent(t *testing.T) {
	const ni = 40000
	ws := NewWorkShare(ni)
	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum := int64(0)
			for {
				lo, hi, ok, _ := ws.TryStealFunc(func(rem int64) int64 {
					s := rem / 8
					if s < 1 {
						s = 1
					}
					return s
				})
				if !ok {
					break
				}
				sum += hi - lo
			}
			mu.Lock()
			total += sum
			mu.Unlock()
		}()
	}
	wg.Wait()
	if total != ni {
		t.Errorf("claimed %d, want %d", total, ni)
	}
}

func TestTryStealFuncBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TryStealFunc with zero size did not panic")
		}
	}()
	NewWorkShare(10).TryStealFunc(func(int64) int64 { return 0 })
}

func TestSampleCounters(t *testing.T) {
	sc := NewSampleCounters(2, 4)
	if sc.AllDone() {
		t.Error("fresh counters report AllDone")
	}
	if last := sc.Record(0, 100); last {
		t.Error("first Record reported last")
	}
	if last := sc.Record(0, 300); last {
		t.Error("second Record reported last")
	}
	if last := sc.Record(1, 800); last {
		t.Error("third Record reported last")
	}
	if last := sc.Record(1, 1200); !last {
		t.Error("fourth Record did not report last")
	}
	if !sc.AllDone() {
		t.Error("AllDone false after all records")
	}
	if avg, ok := sc.Avg(0); !ok || avg != 200 {
		t.Errorf("Avg(0) = %v, %v; want 200, true", avg, ok)
	}
	if avg, ok := sc.Avg(1); !ok || avg != 1000 {
		t.Errorf("Avg(1) = %v, %v; want 1000, true", avg, ok)
	}
}

func TestSampleCountersEmptyType(t *testing.T) {
	sc := NewSampleCounters(3, 2)
	sc.Record(0, 10)
	sc.Record(0, 20)
	if _, ok := sc.Avg(2); ok {
		t.Error("Avg for unused core type reported ok")
	}
}

func TestSampleCountersReset(t *testing.T) {
	sc := NewSampleCounters(2, 2)
	sc.Record(0, 50)
	sc.Record(1, 70)
	sc.Reset()
	if sc.AllDone() {
		t.Error("AllDone true after Reset")
	}
	if _, ok := sc.Avg(0); ok {
		t.Error("Avg(0) ok after Reset")
	}
	// Counters are reusable for the next AID-dynamic phase.
	sc.Record(0, 10)
	if last := sc.Record(1, 10); !last {
		t.Error("Record after Reset did not detect last thread")
	}
}

func TestSampleCountersConcurrentExactlyOneLast(t *testing.T) {
	const threads = 32
	sc := NewSampleCounters(2, threads)
	var lastCount int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		ct := i % 2
		go func() {
			defer wg.Done()
			if sc.Record(ct, 17) {
				mu.Lock()
				lastCount++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if lastCount != 1 {
		t.Errorf("%d threads observed themselves as last, want exactly 1", lastCount)
	}
}

func TestSampleCountersValidation(t *testing.T) {
	for _, c := range []struct{ types, threads int }{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSampleCounters(%d,%d) did not panic", c.types, c.threads)
				}
			}()
			NewSampleCounters(c.types, c.threads)
		}()
	}
}
