package pool

import "runtime"

// CreditBatch is the number of chunks a credit acquisition claims from the
// pool in one atomic RMW. A worker on the credit path (TryStealCredit) pays
// one fetch-and-add per CreditBatch chunks instead of one per chunk and
// draws the rest thread-locally, which is what removes the per-chunk
// cache-line contention at fine chunk granularity (the left end of the
// paper's Fig. 8 chunk sweep).
const CreditBatch = 8

// Credit is a worker's thread-local claim balance: a contiguous iteration
// range already removed from the pool but not yet served, plus the shard it
// was claimed from and the re-partition sequence observed at claim time.
// Draws against the balance are plain loads and stores — no shared memory
// is touched — so only the acquisition (and the drained-pool conclusion)
// costs an atomic RMW.
//
// A Credit belongs to exactly one worker and must never be shared. The zero
// value is an empty credit.
type Credit struct {
	lo, hi int64
	s      *shard
	seq    uint64
}

// N returns the number of unserved iterations in the credit.
func (c *Credit) N() int64 {
	if c.s == nil {
		return 0
	}
	return c.hi - c.lo
}

// Empty reports whether the credit holds no iterations.
func (c *Credit) Empty() bool { return c.N() == 0 }

// CreditSteal reports what one TryStealCredit call did, for the caller's δ
// and pool-access accounting: Accesses counts atomic RMW operations
// (acquisition fetch-and-adds, return CAS attempts, drained-pool
// observations), Claimed the iterations newly removed from the pool
// (served plus credited), Returned the iterations handed back to the
// pool by a credit return, and From the owner core type of the shard the
// served range came from (its provenance; meaningful only on ok).
type CreditSteal struct {
	Accesses int
	Claimed  int64
	Returned int64
	From     int
}

// ReturnCredit attempts to hand the unused part of a credit back to the
// pool, so a re-partition (Reweight) can redistribute it. The return is a
// single CAS that rolls the shard's claim counter back from the credit's
// upper bound to its lower bound; it can only succeed while the counter
// still stands exactly at the credit's upper bound — i.e. nothing was
// claimed from the shard since the acquisition. On success the caller no
// longer owns the iterations and the credit is emptied; on failure the
// caller keeps the credit and must serve it.
//
// A credit that reaches its shard's end is never returned (the CAS is
// refused outright): Reweight concludes a shard is drained without writing
// its counter in exactly that state, so a successful end-of-shard rollback
// could resurrect work on a generation no claimer can reach. Keeping the
// strict-inequality guard is what makes the return linearizable against the
// Reweight drain — see doc.go, "Hot-path invariants".
func (ws *ShardedWorkShare) ReturnCredit(c *Credit) (returned int64, casTried bool) {
	if c.s == nil {
		return 0, false
	}
	if c.lo >= c.hi {
		*c = Credit{}
		return 0, false
	}
	if c.hi >= c.s.end {
		// End-of-shard credit: refused outright, no RMW performed.
		return 0, false
	}
	if c.s.next.CompareAndSwap(c.hi, c.lo) {
		returned = c.hi - c.lo
		*c = Credit{}
		return returned, true
	}
	return 0, true
}

// creditClamp tapers a credit acquisition as its shard drains, guided
// style: the grab never exceeds remaining/(4·CreditBatch) iterations (a
// possibly stale shared-mode read — the clamp is a balance heuristic, never
// a correctness condition) and never shrinks below one chunk. Far from the
// end the full batch goes through, so the steady-state RMW amortization is
// untouched; the last few dozen grabs of a shard degenerate to strict
// single chunks, which keeps the end-of-loop imbalance of batched claiming
// at the strict path's level instead of multiplying it by CreditBatch.
func creditClamp(batch, chunk, remaining int64) int64 {
	if cap := remaining / (4 * CreditBatch); cap < batch {
		batch = cap
	}
	if batch < chunk {
		return chunk
	}
	return batch
}

// TryStealCredit removes up to chunk iterations with batched credit-based
// claiming: a claim that has to go to the pool acquires CreditBatch×chunk
// iterations in one fetch-and-add (home shard preferred, richest foreign
// shard as fallback, exactly like TryStealBatch) and the surplus is kept in
// the caller's credit, from which subsequent calls draw without touching
// shared memory. The steady-state cost is therefore one atomic RMW per
// CreditBatch chunks and zero heap allocations.
//
// When a re-partition has been published since the credit was acquired
// (the pool's seqlock moved), the unused balance is first offered back to
// the pool via ReturnCredit so Reweight's new cut can cover it; if the
// return loses the race the caller simply keeps serving the credit — the
// iterations are owned either way, so exactly-once coverage is preserved.
//
// ok=false means the pool is drained AND the credit is empty; as with
// every claim path, that conclusion is validated against the re-partition
// seqlock before it is returned.
func (ws *ShardedWorkShare) TryStealCredit(home int, chunk int64, c *Credit) (lo, hi int64, st CreditSteal, ok bool) {
	if chunk <= 0 || home < 0 {
		badSteal(home, chunk)
	}
	if c.s != nil && c.lo < c.hi {
		if seq := ws.seq.Load(); seq != c.seq {
			ret, tried := ws.ReturnCredit(c)
			if tried {
				st.Accesses++
			}
			if ret > 0 {
				st.Returned = ret
			} else {
				// Keep the balance, stop re-trying the return on every draw:
				// the counter has moved on, so the CAS can never succeed for
				// this credit again.
				c.seq = seq
			}
		}
	}
	if c.s != nil && c.lo < c.hi {
		st.From = int(c.s.owner)
		lo = c.lo
		hi = lo + chunk
		if hi > c.hi {
			hi = c.hi
		}
		c.lo = hi
		if c.lo >= c.hi {
			*c = Credit{}
		}
		return lo, hi, st, true
	}
	batch := chunk * CreditBatch
	if batch/CreditBatch != chunk {
		batch = chunk // overflow guard for absurd chunk sizes
	}
	for {
		seq := ws.seq.Load()
		g := ws.gen.Load()
		ht := g.clampType(home)
		for _, si := range g.byType[ht] {
			s := &g.shards[si]
			if s.dead.Load() {
				continue
			}
			b := creditClamp(batch, chunk, s.remaining())
			if lo = s.next.Add(b) - b; lo < s.end {
				end := lo + b
				if end > s.end {
					end = s.end
				}
				if hi = lo + chunk; hi > end {
					hi = end
				}
				if end > hi {
					*c = Credit{lo: hi, hi: end, s: s, seq: seq}
				}
				st.Accesses++
				st.Claimed += end - lo
				st.From = int(s.owner)
				return lo, hi, st, true
			}
			s.dead.Store(true)
			st.Accesses++
		}
		for {
			v := ws.victimForeign(g, ht)
			if v < 0 {
				break
			}
			st.Accesses++
			b := creditClamp(batch, chunk, g.shards[v].remaining())
			if clo, chi, cok := g.shards[v].claim(b); cok {
				ws.foreign.Add(1)
				lo = clo
				if hi = lo + chunk; hi > chi {
					hi = chi
				}
				if chi > hi {
					*c = Credit{lo: hi, hi: chi, s: &g.shards[v], seq: seq}
				}
				st.Claimed += chi - clo
				st.From = int(g.shards[v].owner)
				return lo, hi, st, true
			}
			g.shards[v].dead.Store(true)
		}
		if ws.drainedValid(seq) {
			if st.Accesses == 0 {
				st.Accesses = 1 // the drained-pool observation
			}
			return 0, 0, st, false
		}
		runtime.Gosched() // re-partition in flight: retry on the new generation
	}
}
