// Package pool implements the shared iteration pool that libgomp maintains
// per parallel loop in its work_share structure (§4.2 of the paper). The
// state of the pool is a pair (next, end): `next` is the first iteration not
// yet assigned to any thread and `end` is one past the last iteration of the
// loop. Threads remove ("steal") chunks with an atomic fetch-and-add on
// `next`, so the pool is lock free.
//
// The package also provides the per-core-type sampling counters the AID
// methods add to work_share: a lock-free accumulator of sampling-phase
// completion times per core type, and a counter of threads that completed
// the sampling phase (footnote 2 of §4.2).
//
// # Hot-path invariants
//
// This section records the memory layout and coverage arguments the sharded
// pool's lock-free hot path depends on, so the next rewrite does not have to
// re-derive them.
//
// Shard layout. Each shard owns 64-byte-aligned slots for its two mutable
// words: `next` (fetch-and-added by every home claim) sits alone on one
// cache line, `dead` (stored once, when the shard is observed drained) on
// another, and the immutable bounds (base, end, owner) on a third that stays
// in every cache in shared mode. The layout is pinned by unsafe.Offsetof
// assertions in reweight_test.go; if you reorder fields, the test tells you
// which line you just merged. The ShardedWorkShare header keeps the hot
// gen/seq words away from the foreign-claims metric the same way.
//
// Claim protocol. All claim paths share one structure: read the seqlock
// (`seq`), load the generation pointer, try home shards, then foreign
// shards, and — only if everything looks drained — validate the "drained"
// conclusion with drainedValid(seq). Successful claims are linearized by the
// per-shard `next` RMWs alone and never consult the seqlock; only the
// drained conclusion can be stale, because Reweight may have moved the
// remaining work to a generation the claimer has not seen. The governing
// invariant of a live shard is
//
//	unclaimed(s) ≡ [min(next, end), end)
//
// `next` only ever moves forward — with the single exception of a credit
// return, below.
//
// Reweight (generation + seqlock). Reweight bumps `seq` to odd, CAS-drains
// each shard of the current generation to its end (collecting the
// leftovers), publishes a freshly cut generation, and bumps `seq` to even.
// Claims racing the drain either win their range before the CAS lands (the
// work is theirs; Reweight collects only what is left) or lose and observe
// an empty shard. A claimer that concludes "drained" while `seq` was odd or
// changed re-reads the generation and retries, so work never vanishes
// across a re-cut: every iteration is either claimed by exactly one thread
// in the old generation or carried into exactly one shard of the new one.
//
// Credit-based claiming. TryStealCredit batches the claim RMW: one
// fetch-and-add removes CreditBatch×chunk iterations, the first chunk is
// served, and the surplus is kept in a caller-owned Credit from which later
// calls draw with plain loads/stores. Coverage still holds because the
// credit is just a claimed-but-unserved range — exactly like the handoff
// stash — owned by one thread that either serves it or returns it:
//
//   - A return (ReturnCredit) is a single CAS rolling `next` back from the
//     credit's upper bound to its lower bound. It can only succeed while
//     `next` still equals the upper bound, i.e. no claim intervened, so a
//     successful return restores the invariant above with the returned
//     range unclaimed — indistinguishable from it never having been taken.
//   - A return is refused outright when the credit's upper bound equals the
//     shard's end. Reweight concludes a shard drained precisely when it
//     reads next ≥ end (and then breaks WITHOUT writing `next`), so an
//     end-of-shard rollback could succeed after Reweight already carried
//     zero leftovers forward — resurrecting iterations on a superseded
//     generation no claimer will ever visit. The strict `hi < end` guard
//     makes that impossible: `next` can never drop from ≥ end to < end, so
//     "drained" is an absorbing observation per shard.
//   - Against a racing Reweight drain the return linearizes cleanly: if the
//     drain CAS wins, `next` is at end and the return fails (the thread
//     keeps serving its credit — iterations it owns); if the return wins,
//     the drain CAS fails, re-reads the rolled-back `next`, and collects
//     the returned range into the new generation.
//
// Credit holders notice a published re-cut via the seq stamp captured at
// acquisition and offer their balance back once; whichever way that race
// resolves, each iteration retains exactly one owner. The conformance
// harness and the Reweight stress test (reweight_test.go) exercise all
// three claim families — strict, batch, credit — against concurrent
// re-cuts and assert exactly-once coverage per iteration.
//
// Nearest-victim steal order. A claim that falls over to a foreign shard
// picks its victim by topology distance, not by wealth alone: with a
// distance matrix installed (SetTopology, typically amp.Platform.TypeDist),
// victimForeign ranks candidate shards by the distance between the
// claimer's core type and the shard's owner type and takes the richest
// shard of the NEAREST non-drained tier — a same-cluster handoff moves a
// cache line inside one LLC, a cross-package one pays an interconnect
// round-trip, so wealth only breaks ties within a tier. DrainAll walks
// foreign shards in the same tier order. Without a matrix the selection
// degenerates to richest-only, the pre-topology behavior. Victim selection
// is a read-only heuristic over possibly stale remaining() reads — it
// never participates in the coverage argument above, which rests solely on
// the per-shard RMWs and the seqlock. Every claim is provenance-tagged
// with the victim shard's owner type (Range.From, the From results of the
// claim paths) so the cost model can price the handoff by the same
// distance tiers.
//
// Interaction with Reweight: the matrix is indexed by owner TYPE, not by
// shard index, so it survives re-cuts unchanged — a re-weighted generation
// may split a type's share into several shards, but each keeps its owner
// tag and therefore its distance tier. The matrix itself is written once,
// before the pool is shared, and never by Reweight; installing a matrix
// with fewer rows than the pool has types panics at SetTopology time
// rather than racing at steal time.
package pool
