package pool

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

// TestShardLayout is the false-sharing guard for the shard struct: the two
// mutable fields must each sit alone on their own 64-byte cache line —
// next because home threads fetch-and-add it on every chunk, dead because
// a foreign thief's store to it must not invalidate the line next lives on
// (the regression this pins: base/end/dead used to share next's line).
func TestShardLayout(t *testing.T) {
	var s shard
	if got := unsafe.Sizeof(s); got != 256 {
		t.Errorf("sizeof(shard) = %d, want 256", got)
	}
	offNext := unsafe.Offsetof(s.next)
	offDead := unsafe.Offsetof(s.dead)
	offBase := unsafe.Offsetof(s.base)
	if offNext != 64 {
		t.Errorf("offsetof(next) = %d, want 64", offNext)
	}
	if offDead != 128 {
		t.Errorf("offsetof(dead) = %d, want 128", offDead)
	}
	if offBase != 192 {
		t.Errorf("offsetof(base) = %d, want 192 (read-only fields off the mutable lines)", offBase)
	}
	// No other field may share next's or dead's cache line.
	lineOf := func(off uintptr) uintptr { return off / 64 }
	if lineOf(offDead) == lineOf(offNext) || lineOf(offBase) == lineOf(offNext) ||
		lineOf(unsafe.Offsetof(s.end)) == lineOf(offNext) ||
		lineOf(unsafe.Offsetof(s.owner)) == lineOf(offNext) {
		t.Error("a field shares next's cache line")
	}
	if lineOf(offBase) == lineOf(offDead) {
		t.Error("base shares dead's cache line")
	}
}

// TestShardedPartitionNearOverflow pins the overflow fix in the cumulative
// proportional split: with ni near MaxInt64 the old int64 multiply
// ni*cum wrapped negative and produced inverted shard bounds. The 128-bit
// split must tile [0, ni) monotonically for any weight sum.
func TestShardedPartitionNearOverflow(t *testing.T) {
	for _, c := range []struct {
		ni      int64
		weights []int
	}{
		{math.MaxInt64, []int{1, 1}},
		{math.MaxInt64 - 1, []int{3, 5}},
		{math.MaxInt64 / 2, []int{7, 1, 9}},
		{1 << 62, []int{1000, 1}},
	} {
		ws := NewSharded(c.ni, c.weights)
		g := ws.gen.Load()
		lo := int64(0)
		for i := range g.shards {
			s := &g.shards[i]
			if s.base != lo || s.end < s.base {
				t.Fatalf("ni=%d weights=%v: shard %d = [%d,%d), prev end %d",
					c.ni, c.weights, i, s.base, s.end, lo)
			}
			lo = s.end
		}
		if lo != c.ni {
			t.Fatalf("ni=%d weights=%v: shards end at %d", c.ni, c.weights, lo)
		}
		// Shares must be proportional, not collapsed: with weights {1,1} the
		// first shard holds half the space.
		if len(c.weights) == 2 && c.weights[0] == c.weights[1] {
			if got := g.shards[0].end; got != c.ni/2 {
				t.Fatalf("ni=%d: even split boundary at %d, want %d", c.ni, got, c.ni/2)
			}
		}
	}
}

func TestShardedWeightSumTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("huge weight sum did not panic")
		}
	}()
	NewSharded(10, []int{math.MaxInt32, math.MaxInt32})
}

// TestReweightMovesUnclaimedWork checks the re-partition path: after a
// reweight toward type 0, type 0's home shards hold (nearly) all remaining
// work, claims stay exactly-once, and type-0 claims no longer touch
// foreign shards.
func TestReweightMovesUnclaimedWork(t *testing.T) {
	const ni = 10000
	cover(t, ni, func(mark func(lo, hi int64)) {
		ws := NewSharded(ni, []int{1, 1})
		// Consume a little from each home so the leftover is fragmented.
		for home := 0; home < 2; home++ {
			lo, hi, _, ok := ws.TrySteal(home, 100)
			if !ok {
				t.Fatal("warm-up steal failed")
			}
			mark(lo, hi)
		}
		before := ws.Remaining()
		ws.Reweight([]int{9, 1})
		if got := ws.Remaining(); got != before {
			t.Fatalf("Reweight changed remaining work: %d -> %d", before, got)
		}
		// Type 0 now owns 90% of the leftover.
		g := ws.gen.Load()
		var own0 int64
		for _, si := range g.byType[0] {
			own0 += g.shards[si].remaining()
		}
		if own0 != propCut(before, 9, 10) {
			t.Fatalf("type 0 owns %d of %d after 9:1 reweight", own0, before)
		}
		// Type-0 claims drain without a single foreign claim until its own
		// shards are gone.
		base := ws.ForeignClaims()
		for own0 > 0 {
			lo, hi, _, ok := ws.TrySteal(0, 7)
			if !ok {
				t.Fatal("home steal failed with home work left")
			}
			mark(lo, hi)
			own0 -= hi - lo
		}
		if got := ws.ForeignClaims() - base; got != 0 {
			t.Fatalf("%d foreign claims while home shards had work", got)
		}
		for {
			lo, hi, _, ok := ws.TrySteal(1, 7)
			if !ok {
				break
			}
			mark(lo, hi)
		}
	})
}

// TestReweightEmptyAndDegenerate exercises the edge shapes: reweighting a
// drained pool, reweighting twice, and a type ending up with zero work.
func TestReweightEmptyAndDegenerate(t *testing.T) {
	ws := NewSharded(10, []int{1, 1})
	for {
		if _, _, _, ok := ws.TrySteal(0, 4); !ok {
			break
		}
	}
	ws.Reweight([]int{1, 3})
	if ws.Remaining() != 0 {
		t.Fatalf("drained pool has %d remaining after reweight", ws.Remaining())
	}
	if _, _, _, ok := ws.TrySteal(1, 1); ok {
		t.Fatal("claim on drained reweighted pool succeeded")
	}

	ws = NewSharded(100, []int{1, 1})
	ws.Reweight([]int{0, 1}) // type 0 gets an empty shard
	ws.Reweight([]int{1, 0}) // and back
	if ws.Remaining() != 100 {
		t.Fatalf("double reweight lost work: %d remaining", ws.Remaining())
	}
	lo, hi, _, ok := ws.TrySteal(1, 5) // type 1 must hand off from type 0's shards
	if !ok || hi-lo != 5 {
		t.Fatalf("post-reweight handoff = [%d,%d) ok=%v", lo, hi, ok)
	}
	if bad := func() (bad bool) {
		defer func() { bad = recover() != nil }()
		ws.Reweight([]int{1, 2, 3})
		return false
	}(); !bad {
		t.Error("reweight with wrong type count did not panic")
	}
}

// TestReweightConcurrentCoverage races repeated re-partitions against all
// claim paths and asserts exactly-once coverage — the seqlock property: a
// thief that concludes "drained" against a superseded generation must
// retry rather than retire with work still in flight.
func TestReweightConcurrentCoverage(t *testing.T) {
	const ni = 200000
	const workers = 6
	ws := NewSharded(ni, []int{1, 1})
	seen := make([]atomic.Int32, ni)
	var claimers, rw sync.WaitGroup
	stop := make(chan struct{})
	rw.Add(1)
	go func() { // the single re-weighter, alternating skew
		defer rw.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				ws.Reweight([]int{7, 1})
			} else {
				ws.Reweight([]int{1, 7})
			}
		}
	}()
	for g := 0; g < workers; g++ {
		claimers.Add(1)
		go func(g int) {
			defer claimers.Done()
			home := g % 2
			for n := 0; ; n++ {
				var lo, hi int64
				var ok bool
				switch {
				case g == 0 && n%64 == 63:
					rs, _ := ws.StealSpan(home, 50)
					for _, r := range rs {
						for i := r.Lo; i < r.Hi; i++ {
							seen[i].Add(1)
						}
					}
					ok = len(rs) > 0
				case n%3 == 0:
					lo, hi, _, ok = ws.TryStealBatch(home, 2, 8)
				default:
					lo, hi, _, ok = ws.TrySteal(home, 3)
				}
				for i := lo; i < hi; i++ {
					seen[i].Add(1)
				}
				if !ok {
					return
				}
			}
		}(g)
	}
	claimers.Wait()
	close(stop)
	rw.Wait()
	for i := range seen {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("iteration %d claimed %d times", i, c)
		}
	}
}
