//go:build race

package pool

// raceEnabled gates tests whose assertions (allocation counts, layout-level
// timing) are not meaningful under the race detector's instrumentation.
const raceEnabled = true
