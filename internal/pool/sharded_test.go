package pool

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestShardedPartition(t *testing.T) {
	cases := []struct {
		ni      int64
		weights []int
	}{
		{0, []int{1}},
		{1, []int{4, 4}},
		{10, []int{1, 0}},
		{103, []int{2, 2}},
		{1000, []int{1, 7}},
		{9999, []int{3, 2, 1}},
	}
	for _, c := range cases {
		ws := NewSharded(c.ni, c.weights)
		if ws.NI() != c.ni {
			t.Errorf("NI() = %d, want %d", ws.NI(), c.ni)
		}
		if ws.NumShards() != len(c.weights) {
			t.Errorf("NumShards() = %d, want %d", ws.NumShards(), len(c.weights))
		}
		// Shards must tile [0, ni) exactly.
		var total int64
		lo := int64(0)
		g := ws.gen.Load()
		for i := range g.shards {
			s := &g.shards[i]
			if s.base != lo {
				t.Errorf("ni=%d weights=%v: shard %d starts at %d, want %d", c.ni, c.weights, i, s.base, lo)
			}
			if s.end < s.base {
				t.Errorf("shard %d inverted: [%d,%d)", i, s.base, s.end)
			}
			total += s.end - s.base
			lo = s.end
		}
		if total != c.ni || lo != c.ni {
			t.Errorf("ni=%d weights=%v: shards cover %d ending at %d", c.ni, c.weights, total, lo)
		}
		if ws.Remaining() != c.ni {
			t.Errorf("fresh pool Remaining() = %d, want %d", ws.Remaining(), c.ni)
		}
	}
}

func TestShardedValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewSharded(-1, []int{1}) },
		func() { NewSharded(10, nil) },
		func() { NewSharded(10, []int{0, 0}) },
		func() { NewSharded(10, []int{-1, 2}) },
		func() { NewSharded(10, []int{1}).TrySteal(0, 0) },
		func() { NewSharded(10, []int{1}).TrySteal(-1, 1) },
		func() { NewSharded(10, []int{1}).TryStealBatch(0, 4, 2) },
		func() { NewSharded(10, []int{1}).StealSpan(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid use did not panic")
				}
			}()
			f()
		}()
	}
}

// cover drains the pool via fn and asserts every iteration was claimed
// exactly once.
func cover(t *testing.T, ni int64, fn func(mark func(lo, hi int64))) {
	t.Helper()
	seen := make([]int32, ni)
	fn(func(lo, hi int64) {
		if lo < 0 || hi > ni || lo >= hi {
			t.Fatalf("bad range [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("iteration %d claimed %d times", i, c)
		}
	}
}

func TestShardedStealCoverage(t *testing.T) {
	const ni = 1003
	cover(t, ni, func(mark func(lo, hi int64)) {
		ws := NewSharded(ni, []int{2, 2})
		for home := 0; ; home = 1 - home {
			lo, hi, acc, ok := ws.TrySteal(home, 7)
			if !ok {
				if acc < 1 {
					t.Fatal("failed steal reported no accesses")
				}
				break
			}
			mark(lo, hi)
		}
	})
}

func TestShardedHandoffBatches(t *testing.T) {
	// Home shard 0 is empty (zero weight); a chunk-1 batched steal must
	// come back from the foreign shard with up to batch iterations.
	ws := NewSharded(100, []int{0, 1})
	lo, hi, _, ok := ws.TryStealBatch(0, 1, 8)
	if !ok || hi-lo != 8 {
		t.Fatalf("handoff claim = [%d,%d) ok=%v, want 8 iterations", lo, hi, ok)
	}
	// Strict steal never exceeds the requested chunk, even on handoff.
	lo, hi, _, ok = ws.TrySteal(0, 3)
	if !ok || hi-lo != 3 {
		t.Fatalf("strict handoff claim = [%d,%d) ok=%v, want 3 iterations", lo, hi, ok)
	}
}

func TestShardedHomeClamp(t *testing.T) {
	ws := NewSharded(10, []int{4})
	lo, hi, _, ok := ws.TrySteal(3, 5) // home beyond shard count clamps
	if !ok || lo != 0 || hi != 5 {
		t.Fatalf("clamped steal = [%d,%d) ok=%v", lo, hi, ok)
	}
}

func TestShardedSpanAndDrain(t *testing.T) {
	const ni = 100
	cover(t, ni, func(mark func(lo, hi int64)) {
		ws := NewSharded(ni, []int{1, 1})
		// A span bigger than the home shard must cross into the other.
		rs, acc := ws.StealSpan(0, 70)
		if acc < 2 || len(rs) != 2 || spanTotal(rs) != 70 {
			t.Fatalf("span = %v (accesses %d), want 70 iterations over 2 ranges", rs, acc)
		}
		for _, r := range rs {
			mark(r.Lo, r.Hi)
		}
		// DrainAll takes the rest.
		rs, _ = ws.DrainAll(1)
		if spanTotal(rs) != 30 {
			t.Fatalf("drain = %v, want the remaining 30", rs)
		}
		for _, r := range rs {
			mark(r.Lo, r.Hi)
		}
		if ws.Remaining() != 0 {
			t.Fatalf("Remaining() = %d after drain", ws.Remaining())
		}
		if rs, _ := ws.DrainAll(0); len(rs) != 0 {
			t.Fatalf("second drain returned %v", rs)
		}
	})
}

func spanTotal(rs []Range) int64 {
	var n int64
	for _, r := range rs {
		n += r.N()
	}
	return n
}

func TestShardedStealFunc(t *testing.T) {
	const ni = 1000
	cover(t, ni, func(mark func(lo, hi int64)) {
		ws := NewSharded(ni, []int{2, 2})
		first := true
		for {
			lo, hi, _, ok := ws.TryStealFunc(1, func(rem int64) int64 {
				if first {
					if rem != ni {
						t.Fatalf("first sizeOf saw remaining %d, want %d", rem, ni)
					}
					first = false
				}
				size := rem / 4
				if size < 1 {
					size = 1
				}
				return size
			})
			if !ok {
				break
			}
			mark(lo, hi)
		}
	})
}

// TestShardedConcurrentCoverage hammers one pool from many goroutines mixing
// all removal paths and asserts exactly-once coverage (run under -race).
func TestShardedConcurrentCoverage(t *testing.T) {
	const ni = 200000
	const workers = 8
	ws := NewSharded(ni, []int{1, 3})
	seen := make([]atomic.Int32, ni)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			home := g % 2
			for n := 0; ; n++ {
				var lo, hi int64
				var ok bool
				switch {
				case g == 0 && n%64 == 63:
					rs, _ := ws.StealSpan(home, 50)
					for _, r := range rs {
						for i := r.Lo; i < r.Hi; i++ {
							seen[i].Add(1)
						}
					}
					ok = len(rs) > 0
				case n%3 == 0:
					lo, hi, _, ok = ws.TryStealBatch(home, 2, 8)
				default:
					lo, hi, _, ok = ws.TrySteal(home, 3)
				}
				for i := lo; i < hi; i++ {
					seen[i].Add(1)
				}
				if !ok {
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for i := range seen {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("iteration %d claimed %d times", i, c)
		}
	}
}

// BenchmarkChunkRemoval compares chunk removal from the single-counter pool
// against the sharded pool under increasing goroutine counts. The headline
// numbers: at 1 thread the sharded fast path must not be slower (it is the
// same single fetch-and-add, plus a shard bound check), and at >=8 threads
// on real multicore hardware the per-core-type shards relieve the
// cache-line contention the single counter suffers. (On a single-CPU
// machine goroutines timeshare and the contention difference vanishes.)
func BenchmarkChunkRemoval(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("pool=single/threads=%d", threads), func(b *testing.B) {
			ws := NewWorkShare(int64(b.N) + 1024)
			benchSteal(b, threads, func(int) func() {
				return func() { ws.TrySteal(1) }
			})
		})
		b.Run(fmt.Sprintf("pool=sharded/threads=%d", threads), func(b *testing.B) {
			// Two core types, threads split between them, pool sized so no
			// shard drains: pure hot-path measurement.
			ws := NewSharded(int64(b.N)*2+4096, []int{1, 1})
			benchSteal(b, threads, func(g int) func() {
				home := g % 2
				return func() { ws.TrySteal(home, 1) }
			})
		})
	}
}

// benchSteal distributes b.N steal operations over the given goroutine
// count and waits for all of them.
func benchSteal(b *testing.B, threads int, mk func(g int) func()) {
	per := b.N / threads
	rem := b.N % threads
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		n := per
		if g < rem {
			n++
		}
		steal := mk(g)
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				steal()
			}
		}(n)
	}
	wg.Wait()
}
