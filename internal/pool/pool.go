package pool

import (
	"fmt"
	"sync/atomic"
)

// WorkShare is the per-loop iteration pool. All methods are safe for
// concurrent use by worker threads.
type WorkShare struct {
	next atomic.Int64
	end  int64
}

// NewWorkShare returns a pool over the iteration space [0, ni). ni may be 0
// (an empty loop); negative trip counts are a programming error and panic.
func NewWorkShare(ni int64) *WorkShare {
	if ni < 0 {
		panic(fmt.Sprintf("pool: negative iteration count %d", ni))
	}
	ws := &WorkShare{end: ni}
	return ws
}

// End returns one past the last iteration of the loop.
func (ws *WorkShare) End() int64 { return ws.end }

// Next returns the first iteration not yet assigned to any thread. The value
// may exceed End once the pool is drained (fetch-and-add overshoots).
func (ws *WorkShare) Next() int64 { return ws.next.Load() }

// Remaining returns the number of unassigned iterations (never negative).
func (ws *WorkShare) Remaining() int64 {
	r := ws.end - ws.next.Load()
	if r < 0 {
		return 0
	}
	return r
}

// TrySteal atomically removes up to chunk iterations from the pool, exactly
// as gomp_iter_dynamic_next does with fetch-and-add: it increments `next` by
// chunk and clips the claimed range against `end`. It returns the claimed
// half-open range [lo, hi) and ok=false when the pool was already drained.
// chunk must be positive.
func (ws *WorkShare) TrySteal(chunk int64) (lo, hi int64, ok bool) {
	if chunk <= 0 {
		panic(fmt.Sprintf("pool: non-positive chunk %d", chunk))
	}
	lo = ws.next.Add(chunk) - chunk
	if lo >= ws.end {
		return 0, 0, false
	}
	hi = lo + chunk
	if hi > ws.end {
		hi = ws.end
	}
	return lo, hi, true
}

// TryStealRest atomically claims all remaining iterations. Used by the
// AID-static final assignment for the last thread, which must take whatever
// is left so no iteration is orphaned by SF rounding.
func (ws *WorkShare) TryStealRest() (lo, hi int64, ok bool) {
	for {
		cur := ws.next.Load()
		if cur >= ws.end {
			return 0, 0, false
		}
		if ws.next.CompareAndSwap(cur, ws.end) {
			return cur, ws.end, true
		}
	}
}

// TryStealFunc atomically claims a chunk whose size depends on the number of
// remaining iterations, as the guided schedule requires (chunk =
// max(remaining/nthreads, minChunk)). sizeOf receives the remaining count
// (always > 0) and must return a positive size; it may be called several
// times if the CAS races with other threads. retries reports how many CAS
// attempts failed, which the simulator charges as extra pool accesses.
func (ws *WorkShare) TryStealFunc(sizeOf func(remaining int64) int64) (lo, hi int64, ok bool, retries int) {
	for {
		cur := ws.next.Load()
		if cur >= ws.end {
			return 0, 0, false, retries
		}
		size := sizeOf(ws.end - cur)
		if size <= 0 {
			panic(fmt.Sprintf("pool: sizeOf returned non-positive size %d", size))
		}
		hi = cur + size
		if hi > ws.end {
			hi = ws.end
		}
		if ws.next.CompareAndSwap(cur, hi) {
			return cur, hi, true, retries
		}
		retries++
	}
}

// SampleCounters implements footnote 2 of §4.2: to approximate a loop's SF
// in a scalable fashion, the runtime keeps, for each core type, a shared
// counter of the summed sampling-phase execution times plus a thread count.
// The average per core type is sum/count. A separate counter tracks how many
// threads have completed the sampling phase so the last one can be detected
// without locks.
type SampleCounters struct {
	sumNs  []atomic.Int64
	counts []atomic.Int64
	done   atomic.Int64
	total  int64
}

// NewSampleCounters returns counters for nCoreTypes core types and nThreads
// participating threads. Both must be positive.
func NewSampleCounters(nCoreTypes int, nThreads int) *SampleCounters {
	if nCoreTypes <= 0 {
		panic(fmt.Sprintf("pool: non-positive core type count %d", nCoreTypes))
	}
	if nThreads <= 0 {
		panic(fmt.Sprintf("pool: non-positive thread count %d", nThreads))
	}
	return &SampleCounters{
		sumNs:  make([]atomic.Int64, nCoreTypes),
		counts: make([]atomic.Int64, nCoreTypes),
		total:  int64(nThreads),
	}
}

// Record adds one thread's sampling-phase completion time (in ns) for its
// core type and marks the thread as done. It returns true when the calling
// thread was the LAST one to complete the sampling phase — that thread is
// responsible for computing SF and k (Fig. 3).
func (sc *SampleCounters) Record(coreType int, elapsedNs int64) (last bool) {
	sc.Add(coreType, elapsedNs)
	return sc.done.Add(1) == sc.total
}

// Add accumulates one sample without touching the completion counter.
// Schedulers that track phase completion externally (the packed epoch word
// of the lock-free AID state machines) use Add and detect the last thread
// themselves.
func (sc *SampleCounters) Add(coreType int, elapsedNs int64) {
	sc.sumNs[coreType].Add(elapsedNs)
	sc.counts[coreType].Add(1)
}

// AllDone reports whether every participating thread has recorded a sample.
func (sc *SampleCounters) AllDone() bool { return sc.done.Load() >= sc.total }

// Avg returns the average sampling time for a core type in ns, and ok=false
// when no thread of that type recorded a sample.
func (sc *SampleCounters) Avg(coreType int) (float64, bool) {
	n := sc.counts[coreType].Load()
	if n == 0 {
		return 0, false
	}
	return float64(sc.sumNs[coreType].Load()) / float64(n), true
}

// Reset re-arms the counters for a new sampling round (used by AID-dynamic,
// whose AID phases each double as the next sampling phase, Fig. 5).
func (sc *SampleCounters) Reset() {
	for i := range sc.sumNs {
		sc.sumNs[i].Store(0)
		sc.counts[i].Store(0)
	}
	sc.done.Store(0)
}
