package pool

import "testing"

// clusterDist is a 4-type topology shaped like a dual-package big.LITTLE:
// types 0/2 share package 0, types 1/3 share package 1, so the nearest
// foreign victim of type 0 is type 2 and vice versa.
var clusterDist = [][]int{
	{0, 2, 1, 2},
	{2, 0, 2, 1},
	{1, 2, 0, 2},
	{2, 1, 2, 0},
}

func newTopo4(ni int64) *ShardedWorkShare {
	ws := NewSharded(ni, []int{1, 1, 1, 1})
	ws.SetTopology(clusterDist)
	return ws
}

// TestNearestVictimSteal pins the victim-selection rule: a fallen-over
// claim steals from the topologically nearest tier even when a farther
// shard is richer, and only moves outward when the near tier drains.
func TestNearestVictimSteal(t *testing.T) {
	ws := newTopo4(400) // shards of 100 per type
	// Make the near victim (type 2) poorer than the far ones.
	if _, _, _, ok := ws.TrySteal(2, 30); !ok {
		t.Fatal("priming claim failed")
	}
	// Drain type 0's home shard.
	if lo, hi, _, ok := ws.TrySteal(0, 100); !ok || lo != 0 || hi != 100 {
		t.Fatalf("home drain got [%d,%d) ok=%v", lo, hi, ok)
	}
	// First foreign claim must come from type 2 (distance 1, 70 left)
	// although types 1 and 3 hold 100 each at distance 2.
	_, _, from, _, ok := ws.TryStealBatchFrom(0, 10, 40)
	if !ok || from != 2 {
		t.Fatalf("first foreign claim from type %d (ok=%v), want nearest type 2", from, ok)
	}
	// Exhaust the near tier, then the claim must move to distance 2.
	for {
		_, _, from, _, ok = ws.TryStealBatchFrom(0, 10, 40)
		if !ok {
			t.Fatal("pool drained before the far tier was reached")
		}
		if from != 2 {
			break
		}
	}
	if clusterDist[0][from] != 2 {
		t.Fatalf("after near tier drained, claim came from type %d (distance %d)", from, clusterDist[0][from])
	}
	// Without a topology the same setup steals from the richest shard.
	ws = NewSharded(400, []int{1, 1, 1, 1})
	ws.TrySteal(2, 30)
	ws.TrySteal(1, 60)
	ws.TrySteal(0, 100)
	if _, _, from, _, ok := ws.TryStealBatchFrom(0, 10, 40); !ok || from != 3 {
		t.Fatalf("richest-only fallback claimed from type %d, want 3", from)
	}
}

// TestDrainAllTierOrder pins DrainAll's foreign walk: home shard first,
// then foreign shards tier by tier.
func TestDrainAllTierOrder(t *testing.T) {
	ws := newTopo4(400)
	rs, _ := ws.DrainAll(0)
	var got []int32
	for _, r := range rs {
		got = append(got, r.From)
	}
	want := []int32{0, 2, 1, 3} // home, distance 1, then distance 2 in index order
	if len(got) != len(want) {
		t.Fatalf("DrainAll returned %d ranges: %v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DrainAll provenance order %v, want %v", got, want)
		}
	}
}

// TestStealSpanProvenance pins that span claims are provenance-tagged and
// overflow into the nearest foreign shard.
func TestStealSpanProvenance(t *testing.T) {
	ws := newTopo4(400)
	rs, _ := ws.StealSpan(0, 150)
	if len(rs) != 2 || rs[0].From != 0 || rs[1].From != 2 {
		t.Fatalf("StealSpan ranges %+v, want home then nearest foreign", rs)
	}
	if rs[0].N()+rs[1].N() != 150 {
		t.Fatalf("StealSpan claimed %d iterations, want 150", rs[0].N()+rs[1].N())
	}
}

// TestCreditProvenance pins CreditSteal.From across all three serve paths:
// home acquisition, thread-local credit draws, and foreign acquisition.
func TestCreditProvenance(t *testing.T) {
	ws := newTopo4(4000) // shards of 1000, big enough for real credit batches
	var c Credit
	_, _, st, ok := ws.TryStealCredit(0, 10, &c)
	if !ok || st.From != 0 {
		t.Fatalf("home credit claim From=%d ok=%v", st.From, ok)
	}
	// Drain the rest of the home shard behind the credit's back (the first
	// credit acquisition consumed [0,31): a 31-iteration clamped batch).
	if lo, hi, _, ok := ws.TrySteal(0, 969); !ok || hi-lo != 969 {
		t.Fatalf("home drain got [%d,%d) ok=%v", lo, hi, ok)
	}
	// Draws against the surviving credit still report the home provenance...
	sawDraw := false
	for !c.Empty() {
		if _, _, st, ok = ws.TryStealCredit(0, 10, &c); !ok || st.From != 0 {
			t.Fatalf("credit draw From=%d ok=%v", st.From, ok)
		}
		sawDraw = true
	}
	if !sawDraw {
		t.Fatal("credit was empty; test exercised no draw path")
	}
	// ...and the next acquisition is foreign, from the nearest tier.
	if _, _, st, ok = ws.TryStealCredit(0, 10, &c); !ok || st.From != 2 {
		t.Fatalf("foreign credit claim From=%d ok=%v, want nearest type 2", st.From, ok)
	}
}

func TestSetTopologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetTopology accepted a matrix with too few types")
		}
	}()
	NewSharded(100, []int{1, 1, 1}).SetTopology([][]int{{0}})
}
