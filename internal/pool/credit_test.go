package pool

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCreditSingleThreadCoverage drains a pool through the credit path with
// a single claimer and checks exactly-once coverage plus the amortization
// the credit exists for: far from the end one RMW serves CreditBatch
// chunks, so the total access count must sit well below the chunk count.
func TestCreditSingleThreadCoverage(t *testing.T) {
	const ni = 100003
	const chunk = 7
	cover(t, ni, func(mark func(lo, hi int64)) {
		ws := NewSharded(ni, []int{1, 1})
		var c Credit
		accesses := 0
		for home := 0; ; home = 1 - home {
			lo, hi, st, ok := ws.TryStealCredit(home, chunk, &c)
			accesses += st.Accesses
			if !ok {
				if !c.Empty() {
					t.Fatal("drained with a non-empty credit")
				}
				break
			}
			if hi-lo > chunk {
				t.Fatalf("served [%d,%d), more than one chunk", lo, hi)
			}
			mark(lo, hi)
		}
		// ~ni/chunk calls; strict claiming would pay ~ni/chunk RMWs. The
		// credit path must amortize by CreditBatch modulo the end-of-shard
		// taper, so half the strict count is a very loose ceiling.
		if calls := ni / chunk; accesses > calls/2 {
			t.Errorf("credit path used %d pool accesses for %d calls (no amortization)", accesses, calls)
		}
	})
}

// TestCreditTripCountsBelowBatch covers loops shorter than one credit grab
// (trip count < CreditBatch x chunk), where creditClamp degenerates every
// acquisition to a strict chunk: coverage must stay exactly-once and the
// drained conclusion must still arrive.
func TestCreditTripCountsBelowBatch(t *testing.T) {
	const chunk = 4
	for _, ni := range []int64{1, 3, chunk, chunk + 1, 2*chunk + 1, CreditBatch*chunk - 1} {
		ni := ni
		t.Run(fmt.Sprintf("ni=%d", ni), func(t *testing.T) {
			cover(t, ni, func(mark func(lo, hi int64)) {
				ws := NewSharded(ni, []int{1, 1})
				var c Credit
				for {
					lo, hi, _, ok := ws.TryStealCredit(0, chunk, &c)
					if !ok {
						if !c.Empty() {
							t.Fatal("drained with a non-empty credit")
						}
						return
					}
					mark(lo, hi)
				}
			})
		})
	}
}

// TestReturnCreditDirect unit-tests the rollback CAS in isolation: success
// while the shard counter still stands at the credit's upper bound, refusal
// after an intervening claim moved the counter, outright (RMW-free) refusal
// for an end-of-shard credit, and the no-op cases.
func TestReturnCreditDirect(t *testing.T) {
	const ni = 4096
	const chunk = 2
	ws := NewSharded(ni, []int{1})
	var c Credit

	// Acquire: one grab of CreditBatch*chunk, serving the first chunk.
	lo, hi, st, ok := ws.TryStealCredit(0, chunk, &c)
	if !ok || lo != 0 || hi != chunk {
		t.Fatalf("first credit steal = [%d,%d) ok=%v", lo, hi, ok)
	}
	if want := int64(CreditBatch*chunk) - chunk; c.N() != want {
		t.Fatalf("credit holds %d iterations, want %d", c.N(), want)
	}
	if st.Claimed != CreditBatch*chunk {
		t.Fatalf("st.Claimed = %d, want %d", st.Claimed, CreditBatch*chunk)
	}
	before := ws.Remaining()

	// Success: nothing claimed since the acquisition, the CAS rolls back.
	retN := c.N()
	returned, tried := ws.ReturnCredit(&c)
	if !tried || returned != retN {
		t.Fatalf("ReturnCredit = (%d,%v), want (%d,true)", returned, tried, retN)
	}
	if !c.Empty() {
		t.Fatal("successful return left a non-empty credit")
	}
	if got := ws.Remaining(); got != before+retN {
		t.Fatalf("Remaining = %d after return, want %d", got, before+retN)
	}

	// Failure: an intervening strict claim moved the counter, so the
	// rollback must lose and the caller keeps the credit.
	if _, _, _, ok := ws.TryStealCredit(0, chunk, &c); !ok {
		t.Fatal("re-acquisition failed")
	}
	if _, _, _, ok := ws.TrySteal(0, 3); !ok {
		t.Fatal("intervening strict steal failed")
	}
	held := c.N()
	if returned, tried = ws.ReturnCredit(&c); returned != 0 || !tried {
		t.Fatalf("ReturnCredit after intervening claim = (%d,%v), want (0,true)", returned, tried)
	}
	if c.N() != held {
		t.Fatal("failed return modified the credit")
	}

	// End-of-shard refusal: a credit whose upper bound touches the shard
	// end must be refused without an RMW — returning it could resurrect
	// work on a generation Reweight already concluded drained.
	eos := Credit{lo: c.s.end - chunk, hi: c.s.end, s: c.s, seq: c.seq}
	if returned, tried = ws.ReturnCredit(&eos); returned != 0 || tried {
		t.Fatalf("end-of-shard ReturnCredit = (%d,%v), want (0,false)", returned, tried)
	}
	if eos.N() != chunk {
		t.Fatal("end-of-shard refusal modified the credit")
	}

	// No-ops: the zero credit and an already-drained balance.
	var zero Credit
	if returned, tried = ws.ReturnCredit(&zero); returned != 0 || tried {
		t.Fatalf("zero-credit ReturnCredit = (%d,%v), want (0,false)", returned, tried)
	}
	drained := Credit{lo: 8, hi: 8, s: c.s, seq: c.seq}
	if returned, tried = ws.ReturnCredit(&drained); returned != 0 || tried {
		t.Fatalf("empty-balance ReturnCredit = (%d,%v), want (0,false)", returned, tried)
	}
	if drained.s != nil {
		t.Fatal("empty-balance return did not reset the credit")
	}
}

// TestCreditHeldAcrossReweight pins the losing side of the return race:
// Reweight CAS-drains every old-generation shard to its end, so a credit
// return attempted after the re-partition deterministically loses the CAS.
// The holder must keep serving the balance (the iterations are not in the
// new generation), try the return exactly once per re-partition rather than
// on every draw, and end with exactly-once coverage.
func TestCreditHeldAcrossReweight(t *testing.T) {
	const ni = 4096
	const chunk = 2
	cover(t, ni, func(mark func(lo, hi int64)) {
		ws := NewSharded(ni, []int{1, 1})
		var c Credit
		lo, hi, _, ok := ws.TryStealCredit(0, chunk, &c)
		if !ok {
			t.Fatal("first credit steal failed")
		}
		mark(lo, hi)
		held := c.N()
		if held == 0 {
			t.Fatal("no credit banked")
		}

		ws.Reweight([]int{3, 1})
		if got := ws.Remaining() + held + (hi - lo); got != ni {
			t.Fatalf("credit double-counted across reweight: remaining %d + held %d + served %d != %d",
				ws.Remaining(), held, hi-lo, ni)
		}

		// The next draw offers the return, loses, and serves the old credit.
		lo, hi, st, ok := ws.TryStealCredit(0, chunk, &c)
		if !ok || st.Returned != 0 {
			t.Fatalf("post-reweight draw = ok=%v returned=%d, want served from held credit", ok, st.Returned)
		}
		if st.Accesses != 1 {
			t.Fatalf("post-reweight draw paid %d accesses, want exactly the one failed return CAS", st.Accesses)
		}
		mark(lo, hi)
		if c.N() != held-(hi-lo) {
			t.Fatal("draw did not come out of the held credit")
		}

		// Subsequent draws must not re-try the doomed CAS.
		lo, hi, st, ok = ws.TryStealCredit(0, chunk, &c)
		if !ok || st.Accesses != 0 {
			t.Fatalf("second post-reweight draw paid %d accesses, want 0 (return not re-tried)", st.Accesses)
		}
		mark(lo, hi)

		// Drain everything (credit remainder + new generation; the foreign
		// fallback reaches the other type's shards) and let cover() assert
		// exactly-once.
		for {
			lo, hi, _, ok := ws.TryStealCredit(0, chunk, &c)
			if !ok {
				if !c.Empty() {
					t.Fatal("drained with a non-empty credit")
				}
				return
			}
			mark(lo, hi)
		}
	})
}

// TestReweightConcurrentCoverageCredit is the credit-path edition of the
// seqlock stress test: claimers that own thread-local credits race repeated
// re-partitions, so returns, lost return CASes, and drained conclusions all
// interleave with the generation swap. Exactly-once coverage must survive,
// and no claimer may retire holding a non-empty credit.
func TestReweightConcurrentCoverageCredit(t *testing.T) {
	const ni = 200000
	const workers = 6
	ws := NewSharded(ni, []int{1, 1})
	seen := make([]atomic.Int32, ni)
	var claimers, rw sync.WaitGroup
	stop := make(chan struct{})
	rw.Add(1)
	go func() { // the single re-weighter, alternating skew
		defer rw.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				ws.Reweight([]int{7, 1})
			} else {
				ws.Reweight([]int{1, 7})
			}
		}
	}()
	for g := 0; g < workers; g++ {
		claimers.Add(1)
		go func(g int) {
			defer claimers.Done()
			home := g % 2
			var c Credit
			chunk := int64(1 + g%3) // mix chunk sizes across claimers
			for n := 0; ; n++ {
				var lo, hi int64
				var ok bool
				switch {
				case g == 0 && n%64 == 63:
					// One claimer mixes in span steals: its credit stays
					// untouched in between, exercising stale-seq returns.
					rs, _ := ws.StealSpan(home, 50)
					for _, r := range rs {
						for i := r.Lo; i < r.Hi; i++ {
							seen[i].Add(1)
						}
					}
					ok = len(rs) > 0
				default:
					lo, hi, _, ok = ws.TryStealCredit(home, chunk, &c)
				}
				for i := lo; i < hi; i++ {
					seen[i].Add(1)
				}
				if !ok {
					if !c.Empty() {
						t.Errorf("claimer %d retired holding %d credited iterations", g, c.N())
					}
					return
				}
			}
		}(g)
	}
	claimers.Wait()
	close(stop)
	rw.Wait()
	for i := range seen {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("iteration %d claimed %d times", i, c)
		}
	}
}

// TestCreditStealAllocs pins the zero-allocation property of the claim hot
// path: neither the strict nor the credit path may allocate, steady state
// or at acquisition. Runs only without the race detector (instrumentation
// allocates).
func TestCreditStealAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	ws := NewSharded(1<<30, []int{1, 1})
	var c Credit
	if n := testing.AllocsPerRun(1000, func() {
		if _, _, _, ok := ws.TryStealCredit(0, 4, &c); !ok {
			t.Fatal("pool drained mid-measurement")
		}
	}); n != 0 {
		t.Errorf("TryStealCredit allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, _, _, ok := ws.TrySteal(1, 4); !ok {
			t.Fatal("pool drained mid-measurement")
		}
	}); n != 0 {
		t.Errorf("TrySteal allocates %v per op, want 0", n)
	}
}

// BenchmarkHotPath is the headline chunk-removal comparison for the credit
// work: per-chunk CAS claiming (claim=cas, the strict TrySteal path) against
// batched credit claiming (claim=credit) over the chunk sizes where the
// paper's Fig. 8 sweep shows per-chunk overhead dominating. At chunk=1 the
// credit path must win clearly (one RMW per CreditBatch iterations instead
// of one per iteration); as chunk grows the gap closes, which is the
// motivation for keeping both paths.
func BenchmarkHotPath(b *testing.B) {
	for _, chunk := range []int64{1, 4, 16} {
		for _, threads := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("claim=cas/chunk=%d/threads=%d", chunk, threads), func(b *testing.B) {
				ws := NewSharded(int64(b.N)*chunk*2+1<<20, []int{1, 1})
				b.ReportAllocs()
				benchSteal(b, threads, func(g int) func() {
					home := g % 2
					return func() { ws.TrySteal(home, chunk) }
				})
			})
			b.Run(fmt.Sprintf("claim=credit/chunk=%d/threads=%d", chunk, threads), func(b *testing.B) {
				ws := NewSharded(int64(b.N)*chunk*2+1<<20, []int{1, 1})
				b.ReportAllocs()
				benchSteal(b, threads, func(g int) func() {
					home := g % 2
					c := new(Credit) // per-goroutine, as in the runtime
					return func() { ws.TryStealCredit(home, chunk, c) }
				})
			})
		}
	}
}
