package pool

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"
)

// Range is a half-open iteration interval [Lo, Hi).
type Range struct {
	Lo, Hi int64
	// From is the owner core type of the shard the range was claimed from —
	// the chunk's provenance, which the simulator's tiered locality model
	// prices by topology distance. Ranges that do not originate from a
	// sharded pool leave it 0.
	From int32
}

// N returns the number of iterations in the range.
func (r Range) N() int64 { return r.Hi - r.Lo }

// HandoffBatch is the multiplier applied to a steal request when it has to
// be served from a foreign shard: the thief claims up to HandoffBatch times
// the requested size in one atomic operation and keeps the surplus in a
// thread-local stash (see TryStealBatch). Amortizing foreign-shard accesses
// this way keeps cross-core-type cache-line traffic bounded even after a
// shard drains.
const HandoffBatch = 4

// shard is one sub-pool: a contiguous iteration range with a single claim
// counter. The two mutable fields live on separate cache lines, each alone:
// next is fetch-and-added by the shard's home threads on every chunk, and
// dead is written once by whichever thread observes the shard drained —
// sharing a line between them (or with the read-only bounds) would let that
// one store invalidate the line every home thread is spinning on, exactly
// the cross-core traffic the sharded pool exists to avoid. The immutable
// fields (base, end, owner) share a third line that stays in every cache in
// shared mode.
type shard struct {
	_    [64]byte
	next atomic.Int64 // first unclaimed iteration; may overshoot end
	_    [56]byte
	// dead is set once the shard has been observed drained; it lets the
	// hot path skip a doomed fetch-and-add (next never decreases, so a
	// drained shard stays drained).
	dead atomic.Bool
	_    [60]byte
	base int64
	end  int64
	// owner is the core type whose threads call this shard home. Foreign
	// steals exclude shards by owner, not index, because a re-weighted
	// generation may hold several shards per type.
	owner int32
	_     [44]byte
}

// remaining returns the shard's unclaimed iteration count (never negative).
func (s *shard) remaining() int64 {
	r := s.end - s.next.Load()
	if r < 0 {
		return 0
	}
	return r
}

// claim fetch-and-adds n iterations out of shard s and clips against the
// shard end. ok=false when the shard was already drained.
func (s *shard) claim(n int64) (lo, hi int64, ok bool) {
	lo = s.next.Add(n) - n
	if lo >= s.end {
		return 0, 0, false
	}
	hi = lo + n
	if hi > s.end {
		hi = s.end
	}
	return lo, hi, true
}

// generation is one immutable partition of the (remaining) iteration space:
// a set of contiguous shards, each owned by a core type, plus the per-type
// index lists home claims walk. A generation's shard bounds never change
// after publication; Reweight replaces the whole generation instead
// (see ShardedWorkShare).
type generation struct {
	shards []shard
	// byType[t] lists the indexes of the shards owned by core type t, in
	// iteration order. Every type has at least one (possibly empty) shard.
	byType [][]int32
	ntypes int
}

// clampType maps a home core type onto the generation's type range: indexes
// beyond the type count clamp to the last type, preserving NewSharded's
// contract for pools built with fewer shards than the platform has types.
func (g *generation) clampType(home int) int {
	if home >= g.ntypes {
		return g.ntypes - 1
	}
	return home
}

// remaining sums the unclaimed iterations of every shard.
func (g *generation) remaining() int64 {
	var r int64
	for i := range g.shards {
		r += g.shards[i].remaining()
	}
	return r
}

// ShardedWorkShare is the sharded version of WorkShare: the iteration space
// is partitioned into one contiguous sub-pool per core type, sized
// proportionally to the number of threads of that type. Threads remove
// chunks from their home shard with a single fetch-and-add — the same lock
// free hot path as WorkShare, minus the cross-core-type contention — and
// fall over to the richest foreign shard when their home shard drains.
//
// The partition is replaceable mid-loop: Reweight drains the current
// generation of shards and re-cuts the leftover iterations under new
// per-type weights (the SF-aware re-partitioning of the AID schedulers once
// their speedup-factor estimate stabilizes). Claims and re-partitioning
// synchronize via a generation pointer plus a seqlock: claim successes are
// serialized by the per-shard atomics alone, and only a "pool drained"
// conclusion must re-check the sequence word — a thief that finds every
// shard of a superseded generation empty retries on the new one, so
// exactly-once coverage holds across re-partitions.
//
// All methods are safe for concurrent use (Reweight additionally requires
// external serialization of re-weighters; the AID transition window provides
// it). PoolAccess accounting counts atomic read-modify-write operations
// (fetch-and-add / CAS); read-only probes of a drained shard are not
// charged, matching the cost asymmetry of a shared-mode cache-line read
// versus an exclusive-mode RMW.
type ShardedWorkShare struct {
	ni  int64
	gen atomic.Pointer[generation]
	// seq is the re-partition seqlock: odd while Reweight is moving work
	// between generations, bumped to even when the new generation is
	// published. Claim paths validate "drained" conclusions against it.
	seq atomic.Uint64
	_   [48]byte
	// foreign counts successful foreign-shard claims (handoff traffic), the
	// signal Reweight exists to reduce. Padded so the metric's line is not
	// the seq/gen line the hot path reads.
	foreign atomic.Int64
	_       [56]byte
	// dist is the optional topology distance matrix installed by
	// SetTopology; nil means richest-only victim selection. Written once
	// before the pool is shared, read-only afterwards.
	dist [][]int
	// reweights counts published re-partitions (Reweight calls) — the
	// observability layer's "how often did the pool re-cut" signal. It is
	// written only by the externally-serialized re-weighter, on the cold
	// re-partition path, so it needs no cache-line isolation of its own.
	reweights atomic.Int64
}

// SetTopology installs a topology distance matrix for victim selection:
// dist[a][b] is the distance between the clusters of core types a and b
// (0 = same cluster, larger = farther; amp.Platform.TypeDist produces it).
// With a topology installed, claims that fall over to a foreign shard pick
// the topologically nearest victim first — richest only within the nearest
// distance tier — and DrainAll visits foreign shards nearest-tier-first.
// With no topology (nil), selection is richest-only, the pre-topology
// behavior.
//
// SetTopology must be called before the pool is shared with other threads;
// it is not synchronized with the claim paths.
func (ws *ShardedWorkShare) SetTopology(dist [][]int) {
	if dist != nil && len(dist) < ws.gen.Load().ntypes {
		panic(fmt.Sprintf("pool: topology matrix covers %d types, pool has %d", len(dist), ws.gen.Load().ntypes))
	}
	ws.dist = dist
}

// distOf returns the topology distance between core types a and b; with no
// matrix installed every foreign type is equidistant.
func (ws *ShardedWorkShare) distOf(a, b int) int {
	if ws.dist == nil {
		if a == b {
			return 0
		}
		return 1
	}
	return ws.dist[a][b]
}

// victimForeign picks the foreign shard a fallen-over claim steals from:
// the topologically nearest non-drained victim, richest within the nearest
// distance tier. -1 when every foreign shard is drained.
func (ws *ShardedWorkShare) victimForeign(g *generation, home int) int {
	victim, best, bestD := -1, int64(0), int(^uint(0)>>1)
	for i := range g.shards {
		o := int(g.shards[i].owner)
		if o == home {
			continue
		}
		r := g.shards[i].remaining()
		if r <= 0 {
			continue
		}
		if d := ws.distOf(home, o); d < bestD || (d == bestD && r > best) {
			victim, best, bestD = i, r, d
		}
	}
	return victim
}

// victimOther is victimForeign with exclusion by shard index instead of
// owner — the victim-selection rule of the span path, which walks shards
// individually and may legitimately revisit other home-owned shards.
// Distance is measured from core type home to each shard's owner, so
// same-type leftovers rank before any foreign tier.
func (ws *ShardedWorkShare) victimOther(g *generation, home, exclude int) int {
	victim, best, bestD := -1, int64(0), int(^uint(0)>>1)
	for i := range g.shards {
		if i == exclude {
			continue
		}
		r := g.shards[i].remaining()
		if r <= 0 {
			continue
		}
		if d := ws.distOf(home, int(g.shards[i].owner)); d < bestD || (d == bestD && r > best) {
			victim, best, bestD = i, r, d
		}
	}
	return victim
}

// propCut returns ni*cum/total without intermediate overflow: the 128-bit
// product keeps the cumulative proportional bound exact even when
// ni*cum exceeds int64 (the overflow the old int64 multiply hit for large
// trip counts x weight sums). Requires 0 <= cum <= total, which bounds the
// 128-bit quotient below 2^63.
func propCut(ni int64, cum, total int64) int64 {
	hi, lo := bits.Mul64(uint64(ni), uint64(cum))
	q, _ := bits.Div64(hi, lo, uint64(total))
	return int64(q)
}

// checkWeights validates a shard-weight slice and returns its sum.
func checkWeights(weights []int) int64 {
	if len(weights) == 0 {
		panic("pool: no shard weights")
	}
	total := int64(0)
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("pool: negative shard weight %d at %d", w, i))
		}
		total += int64(w)
	}
	if total <= 0 {
		panic("pool: shard weights sum to zero")
	}
	if total >= 1<<31 {
		panic(fmt.Sprintf("pool: shard weight sum %d too large", total))
	}
	return total
}

// NewSharded partitions [0, ni) into one shard per entry of weights, with
// shard sizes proportional to the weights (typically the per-core-type
// thread counts). A zero weight yields an empty shard; the weight sum must
// be positive. ni may be 0; negative values panic like NewWorkShare.
//
// A pool may be built with fewer shards than the platform has core types
// (a single shard preserves the unsharded global consumption order, which
// AID-auto's cost-variation classifier depends on); home indexes beyond
// the shard count clamp to the last shard.
func NewSharded(ni int64, weights []int) *ShardedWorkShare {
	if ni < 0 {
		panic(fmt.Sprintf("pool: negative iteration count %d", ni))
	}
	total := checkWeights(weights)
	ws := &ShardedWorkShare{ni: ni}
	g := &generation{
		shards: make([]shard, len(weights)),
		byType: make([][]int32, len(weights)),
		ntypes: len(weights),
	}
	// Cumulative proportional bounds: monotone and exactly covering [0, ni).
	cum, lo := int64(0), int64(0)
	for i, w := range weights {
		cum += int64(w)
		hi := propCut(ni, cum, total)
		s := &g.shards[i]
		s.base, s.end = lo, hi
		s.owner = int32(i)
		s.next.Store(lo)
		g.byType[i] = []int32{int32(i)}
		lo = hi
	}
	ws.gen.Store(g)
	return ws
}

// NI returns the total trip count of the pool.
func (ws *ShardedWorkShare) NI() int64 { return ws.ni }

// NumShards returns the number of sub-pools of the current generation (one
// per type at construction; a re-weighted generation may hold more).
func (ws *ShardedWorkShare) NumShards() int { return len(ws.gen.Load().shards) }

// NumTypes returns the number of core types the pool partitions for.
func (ws *ShardedWorkShare) NumTypes() int { return ws.gen.Load().ntypes }

// ForeignClaims returns the number of successful foreign-shard claims so
// far — the cross-core-type handoff traffic SF-aware re-weighting reduces.
func (ws *ShardedWorkShare) ForeignClaims() int64 { return ws.foreign.Load() }

// Remaining returns the total number of unclaimed iterations across all
// shards. Iterations claimed but not yet executed (e.g. a thread-local
// handoff stash) do not count — they are spoken for.
func (ws *ShardedWorkShare) Remaining() int64 { return ws.gen.Load().remaining() }

// ShardRemaining returns the unclaimed iteration count of one shard of the
// current generation.
func (ws *ShardedWorkShare) ShardRemaining(i int) int64 { return ws.gen.Load().shards[i].remaining() }

// Reweight re-partitions the pool's remaining iterations under new per-type
// weights: the current generation's shards are drained, the leftovers are
// re-cut at proportional boundaries (one or more contiguous shards per
// type), and the new generation is published. Iterations already claimed —
// including thread-local stashes — are untouched; only unclaimed work
// moves. len(weights) must equal NumTypes.
//
// Reweight may run concurrently with every claim path, but re-weighters
// must be externally serialized (the AID schedulers call it from their
// single-threaded phase-transition window).
func (ws *ShardedWorkShare) Reweight(weights []int) {
	total := checkWeights(weights)
	g := ws.gen.Load()
	if len(weights) != g.ntypes {
		panic(fmt.Sprintf("pool: reweight with %d weights, pool has %d types", len(weights), g.ntypes))
	}
	ws.seq.Add(1) // odd: re-partition in progress
	// Drain the current generation, collecting the leftover ranges in
	// iteration order. Concurrent claims serialize against the CAS: work a
	// thief wins before the drain stays with the thief.
	var rs []Range
	var left int64
	for i := range g.shards {
		s := &g.shards[i]
		for {
			cur := s.next.Load()
			if cur >= s.end {
				break
			}
			if s.next.CompareAndSwap(cur, s.end) {
				rs = append(rs, Range{Lo: cur, Hi: s.end})
				left += s.end - cur
				break
			}
		}
		s.dead.Store(true)
	}
	ws.gen.Store(buildGeneration(rs, left, weights, total))
	ws.seq.Add(1) // even: new generation published
	ws.reweights.Add(1)
}

// Reweights returns how many re-partitions have been published.
func (ws *ShardedWorkShare) Reweights() int64 { return ws.reweights.Load() }

// buildGeneration cuts the collected leftover ranges at overflow-safe
// proportional boundaries into owner-tagged shards. A type whose share
// lands entirely inside one leftover range gets one shard; shares spanning
// range gaps get one shard per covered piece. Types left with no work get
// an empty shard so they always have a home.
func buildGeneration(rs []Range, left int64, weights []int, total int64) *generation {
	ng := &generation{byType: make([][]int32, len(weights)), ntypes: len(weights)}
	ri, pos := 0, int64(0) // current range and work consumed so far
	curLo := int64(0)
	if ri < len(rs) {
		curLo = rs[ri].Lo
	}
	cum := int64(0)
	for t, w := range weights {
		cum += int64(w)
		cut := propCut(left, cum, total)
		for pos < cut {
			take := cut - pos
			if rem := rs[ri].Hi - curLo; take > rem {
				take = rem
			}
			idx := int32(len(ng.shards))
			ng.shards = append(ng.shards, shard{})
			s := &ng.shards[idx]
			s.base, s.end = curLo, curLo+take
			s.owner = int32(t)
			ng.byType[t] = append(ng.byType[t], idx)
			pos += take
			curLo += take
			if curLo == rs[ri].Hi {
				ri++
				if ri < len(rs) {
					curLo = rs[ri].Lo
				}
			}
		}
		if len(ng.byType[t]) == 0 {
			idx := int32(len(ng.shards))
			ng.shards = append(ng.shards, shard{owner: int32(t)})
			ng.byType[t] = append(ng.byType[t], idx)
		}
	}
	for i := range ng.shards {
		ng.shards[i].next.Store(ng.shards[i].base)
	}
	return ng
}

// drainedValid reports whether a "pool drained" conclusion reached while
// the sequence word read seq is trustworthy: no re-partition was in flight
// or completed meanwhile. On false the caller must reload the generation
// and retry — the work it failed to find may have moved.
func (ws *ShardedWorkShare) drainedValid(seq uint64) bool {
	return seq&1 == 0 && ws.seq.Load() == seq
}

// badSteal reports an invalid steal request; out of line so the hot-path
// callers only pay a branch for it.
func badSteal(home int, chunk int64) {
	panic(fmt.Sprintf("pool: bad steal request (home %d, chunk %d)", home, chunk))
}

// TrySteal removes up to chunk iterations, preferring the caller's home
// shard and falling over to the richest foreign shard when it drains. It is
// the strict (unbatched) removal path used by the conventional schedules:
// every call claims at most chunk iterations, exactly like
// gomp_iter_dynamic_next. accesses reports the RMW operations performed
// (minimum 1, the drained-pool observation the caller is charged for).
// The hot path is one flag load plus one fetch-and-add on the home shard's
// private cache line.
func (ws *ShardedWorkShare) TrySteal(home int, chunk int64) (lo, hi int64, accesses int, ok bool) {
	lo, hi, _, accesses, ok = ws.TryStealBatchFrom(home, chunk, chunk)
	return lo, hi, accesses, ok
}

// TryStealBatch is TrySteal with batched handoff: a claim served by the
// caller's home shard returns at most chunk iterations, but a claim that
// had to fall over to a foreign shard returns up to batch iterations in one
// RMW. The caller keeps the surplus in thread-local state, amortizing the
// contended foreign access. batch must be >= chunk.
func (ws *ShardedWorkShare) TryStealBatch(home int, chunk, batch int64) (lo, hi int64, accesses int, ok bool) {
	lo, hi, _, accesses, ok = ws.TryStealBatchFrom(home, chunk, batch)
	return lo, hi, accesses, ok
}

// TryStealBatchFrom is TryStealBatch additionally reporting the claimed
// range's provenance: from is the owner core type of the shard the range
// came from (the caller's own clamped type on the home fast path), which
// the cost model prices by topology distance. Foreign victims are picked
// nearest-first (see SetTopology).
func (ws *ShardedWorkShare) TryStealBatchFrom(home int, chunk, batch int64) (lo, hi int64, from, accesses int, ok bool) {
	if chunk <= 0 || home < 0 || batch < chunk {
		badSteal(home, chunk)
	}
	for {
		seq := ws.seq.Load()
		g := ws.gen.Load()
		ht := g.clampType(home)
		for _, si := range g.byType[ht] {
			s := &g.shards[si]
			if s.dead.Load() {
				continue
			}
			if lo = s.next.Add(chunk) - chunk; lo < s.end {
				if hi = lo + chunk; hi > s.end {
					hi = s.end
				}
				return lo, hi, ht, accesses + 1, true
			}
			s.dead.Store(true)
			accesses++
		}
		for {
			v := ws.victimForeign(g, ht)
			if v < 0 {
				break
			}
			accesses++
			if lo, hi, ok = g.shards[v].claim(batch); ok {
				ws.foreign.Add(1)
				return lo, hi, int(g.shards[v].owner), accesses, true
			}
			g.shards[v].dead.Store(true)
		}
		if ws.drainedValid(seq) {
			if accesses == 0 {
				accesses = 1 // the drained-pool observation
			}
			return 0, 0, ht, accesses, false
		}
		runtime.Gosched() // re-partition in flight: retry on the new generation
	}
}

// TryStealFunc removes a chunk whose size depends on the total number of
// remaining iterations, as the guided schedule requires. sizeOf receives
// the global remaining count (always > 0) and must return a positive size;
// the claim is CAS-based on a single shard (home preferred) and clipped at
// the shard boundary. accesses reports RMW attempts including CAS retries.
func (ws *ShardedWorkShare) TryStealFunc(home int, sizeOf func(remaining int64) int64) (lo, hi int64, accesses int, ok bool) {
	lo, hi, _, accesses, ok = ws.TryStealFuncFrom(home, sizeOf)
	return lo, hi, accesses, ok
}

// TryStealFuncFrom is TryStealFunc additionally reporting the claimed
// range's provenance (the owner core type of the shard it was cut from);
// foreign victims are picked nearest-first when a topology is installed.
func (ws *ShardedWorkShare) TryStealFuncFrom(home int, sizeOf func(remaining int64) int64) (lo, hi int64, from, accesses int, ok bool) {
	if home < 0 {
		panic(fmt.Sprintf("pool: home shard %d out of range", home))
	}
	for {
		seq := ws.seq.Load()
		g := ws.gen.Load()
		ht := g.clampType(home)
		var s *shard
		for _, si := range g.byType[ht] {
			if g.shards[si].remaining() > 0 {
				s = &g.shards[si]
				break
			}
		}
		if s == nil {
			v := ws.victimForeign(g, ht)
			if v < 0 {
				if ws.drainedValid(seq) {
					if accesses == 0 {
						accesses = 1
					}
					return 0, 0, ht, accesses, false
				}
				runtime.Gosched()
				continue
			}
			s = &g.shards[v]
		}
		cur := s.next.Load()
		if cur >= s.end {
			continue // raced to empty; re-select
		}
		rem := g.remaining()
		if rem <= 0 {
			continue
		}
		size := sizeOf(rem)
		if size <= 0 {
			panic(fmt.Sprintf("pool: sizeOf returned non-positive size %d", size))
		}
		hi = cur + size
		if hi > s.end {
			hi = s.end
		}
		accesses++
		if s.next.CompareAndSwap(cur, hi) {
			return cur, hi, int(s.owner), accesses, true
		}
	}
}

// StealSpan claims up to want iterations across shards (home shards first,
// then nearest-first foreign shards) and returns them as contiguous,
// provenance-tagged ranges. The AID final assignment uses it so an
// allotment that exceeds the home shard is not silently truncated. An empty
// slice means the pool is drained.
func (ws *ShardedWorkShare) StealSpan(home int, want int64) (rs []Range, accesses int) {
	if want <= 0 {
		panic(fmt.Sprintf("pool: non-positive span want %d", want))
	}
	for {
		seq := ws.seq.Load()
		g := ws.gen.Load()
		ht := g.clampType(home)
		got := int64(0)
		pick := int(g.byType[ht][0])
		hi := 0 // next home shard to fall over to
		for got < want {
			s := &g.shards[pick]
			if s.remaining() > 0 {
				accesses++
				if lo, shi, ok := s.claim(want - got); ok {
					rs = append(rs, Range{Lo: lo, Hi: shi, From: s.owner})
					got += shi - lo
					continue
				}
			}
			if hi++; hi < len(g.byType[ht]) {
				pick = int(g.byType[ht][hi])
				continue
			}
			next := ws.victimOther(g, ht, pick)
			if next < 0 || next == pick {
				break
			}
			pick = next
		}
		if len(rs) > 0 || got >= want {
			return rs, accesses
		}
		if ws.drainedValid(seq) {
			if accesses == 0 {
				accesses = 1 // drained-pool observation
			}
			return nil, accesses
		}
		runtime.Gosched()
	}
}

// DrainAll claims every remaining iteration, home shards first and foreign
// shards in nearest-tier order, as a list of contiguous, provenance-tagged
// ranges. It is the sharded analog of TryStealRest, used by the AID-static
// last-thread assignment so SF rounding never orphans work.
func (ws *ShardedWorkShare) DrainAll(home int) (rs []Range, accesses int) {
	for {
		seq := ws.seq.Load()
		g := ws.gen.Load()
		ht := g.clampType(home)
		order := make([]int, 0, len(g.shards))
		for _, si := range g.byType[ht] {
			order = append(order, int(si))
		}
		maxD := 0
		for i := range g.shards {
			if d := ws.distOf(ht, int(g.shards[i].owner)); d > maxD {
				maxD = d
			}
		}
		for d := 0; d <= maxD; d++ {
			for i := range g.shards {
				if o := int(g.shards[i].owner); o != ht && ws.distOf(ht, o) == d {
					order = append(order, i)
				}
			}
		}
		for _, i := range order {
			s := &g.shards[i]
			for {
				cur := s.next.Load()
				if cur >= s.end {
					break
				}
				accesses++
				if s.next.CompareAndSwap(cur, s.end) {
					rs = append(rs, Range{Lo: cur, Hi: s.end, From: s.owner})
					break
				}
			}
		}
		if len(rs) > 0 {
			return rs, accesses
		}
		if ws.drainedValid(seq) {
			if accesses == 0 {
				accesses = 1
			}
			return nil, accesses
		}
		runtime.Gosched()
	}
}
