package pool

import (
	"fmt"
	"sync/atomic"
)

// Range is a half-open iteration interval [Lo, Hi).
type Range struct {
	Lo, Hi int64
}

// N returns the number of iterations in the range.
func (r Range) N() int64 { return r.Hi - r.Lo }

// HandoffBatch is the multiplier applied to a steal request when it has to
// be served from a foreign shard: the thief claims up to HandoffBatch times
// the requested size in one atomic operation and keeps the surplus in a
// thread-local stash (see TryStealBatch). Amortizing foreign-shard accesses
// this way keeps cross-core-type cache-line traffic bounded even after a
// shard drains.
const HandoffBatch = 4

// shard is one per-core-type sub-pool. The hot field (next) sits alone on
// its own cache line so fetch-and-adds by threads of one core type never
// invalidate the line another core type is spinning on — the contention the
// single-counter work_share suffers on AMPs.
type shard struct {
	_    [64]byte
	next atomic.Int64 // first unclaimed iteration; may overshoot end
	base int64
	end  int64
	// dead is set once the shard has been observed drained; it lets the
	// hot path skip a doomed fetch-and-add (next never decreases, so a
	// drained shard stays drained).
	dead atomic.Bool
	_    [39]byte
}

// remaining returns the shard's unclaimed iteration count (never negative).
func (s *shard) remaining() int64 {
	r := s.end - s.next.Load()
	if r < 0 {
		return 0
	}
	return r
}

// ShardedWorkShare is the sharded version of WorkShare: the iteration space
// is partitioned into one contiguous sub-pool per core type, sized
// proportionally to the number of threads of that type. Threads remove
// chunks from their home shard with a single fetch-and-add — the same lock
// free hot path as WorkShare, minus the cross-core-type contention — and
// fall over to the richest foreign shard when their home shard drains.
//
// All methods are safe for concurrent use. PoolAccess accounting counts
// atomic read-modify-write operations (fetch-and-add / CAS); read-only
// probes of a drained shard are not charged, matching the cost asymmetry of
// a shared-mode cache-line read versus an exclusive-mode RMW.
type ShardedWorkShare struct {
	ni     int64
	shards []shard
}

// NewSharded partitions [0, ni) into one shard per entry of weights, with
// shard sizes proportional to the weights (typically the per-core-type
// thread counts). A zero weight yields an empty shard; the weight sum must
// be positive. ni may be 0; negative values panic like NewWorkShare.
//
// A pool may be built with fewer shards than the platform has core types
// (a single shard preserves the unsharded global consumption order, which
// AID-auto's cost-variation classifier depends on); home indexes beyond
// the shard count clamp to the last shard.
func NewSharded(ni int64, weights []int) *ShardedWorkShare {
	if ni < 0 {
		panic(fmt.Sprintf("pool: negative iteration count %d", ni))
	}
	if len(weights) == 0 {
		panic("pool: no shard weights")
	}
	total := 0
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("pool: negative shard weight %d at %d", w, i))
		}
		total += w
	}
	if total <= 0 {
		panic("pool: shard weights sum to zero")
	}
	ws := &ShardedWorkShare{ni: ni, shards: make([]shard, len(weights))}
	// Cumulative proportional bounds: monotone and exactly covering [0, ni).
	cum, lo := 0, int64(0)
	for i, w := range weights {
		cum += w
		hi := ni * int64(cum) / int64(total)
		s := &ws.shards[i]
		s.base, s.end = lo, hi
		s.next.Store(lo)
		lo = hi
	}
	return ws
}

// NI returns the total trip count of the pool.
func (ws *ShardedWorkShare) NI() int64 { return ws.ni }

// NumShards returns the number of sub-pools.
func (ws *ShardedWorkShare) NumShards() int { return len(ws.shards) }

// Remaining returns the total number of unclaimed iterations across all
// shards. Iterations claimed but not yet executed (e.g. a thread-local
// handoff stash) do not count — they are spoken for.
func (ws *ShardedWorkShare) Remaining() int64 {
	var r int64
	for i := range ws.shards {
		r += ws.shards[i].remaining()
	}
	return r
}

// ShardRemaining returns the unclaimed iteration count of one shard.
func (ws *ShardedWorkShare) ShardRemaining(i int) int64 { return ws.shards[i].remaining() }

// richestOther returns the foreign shard with the most unclaimed work, or
// -1 when every other shard is drained.
func (ws *ShardedWorkShare) richestOther(home int) int {
	victim, best := -1, int64(0)
	for i := range ws.shards {
		if i == home {
			continue
		}
		if r := ws.shards[i].remaining(); r > best {
			best = r
			victim = i
		}
	}
	return victim
}

// claim fetch-and-adds n iterations out of shard s and clips against the
// shard end. ok=false when the shard was already drained.
func (s *shard) claim(n int64) (lo, hi int64, ok bool) {
	lo = s.next.Add(n) - n
	if lo >= s.end {
		return 0, 0, false
	}
	hi = lo + n
	if hi > s.end {
		hi = s.end
	}
	return lo, hi, true
}

// badSteal reports an invalid steal request; out of line so the hot-path
// callers only pay a branch for it.
func badSteal(home int, chunk int64) {
	panic(fmt.Sprintf("pool: bad steal request (home %d, chunk %d)", home, chunk))
}

// TrySteal removes up to chunk iterations, preferring the caller's home
// shard and falling over to the richest foreign shard when it drains. It is
// the strict (unbatched) removal path used by the conventional schedules:
// every call claims at most chunk iterations, exactly like
// gomp_iter_dynamic_next. accesses reports the RMW operations performed
// (minimum 1, the drained-pool observation the caller is charged for).
// The hot path is one flag load plus one fetch-and-add on the home shard's
// private cache line.
func (ws *ShardedWorkShare) TrySteal(home int, chunk int64) (lo, hi int64, accesses int, ok bool) {
	return ws.TryStealBatch(home, chunk, chunk)
}

// TryStealBatch is TrySteal with batched handoff: a claim served by the
// caller's home shard returns at most chunk iterations, but a claim that
// had to fall over to a foreign shard returns up to batch iterations in one
// RMW. The caller keeps the surplus in thread-local state, amortizing the
// contended foreign access. batch must be >= chunk.
func (ws *ShardedWorkShare) TryStealBatch(home int, chunk, batch int64) (lo, hi int64, accesses int, ok bool) {
	if chunk <= 0 || home < 0 || batch < chunk {
		badSteal(home, chunk)
	}
	if home >= len(ws.shards) {
		home = len(ws.shards) - 1
	}
	s := &ws.shards[home]
	if !s.dead.Load() {
		if lo = s.next.Add(chunk) - chunk; lo < s.end {
			if hi = lo + chunk; hi > s.end {
				hi = s.end
			}
			return lo, hi, 1, true
		}
		s.dead.Store(true)
		return ws.stealForeign(home, batch, 1)
	}
	return ws.stealForeign(home, batch, 0)
}

// stealForeign serves a thief whose home shard drained: claim n iterations
// from the richest foreign shard, retrying while victims race to empty.
func (ws *ShardedWorkShare) stealForeign(home int, n int64, accesses int) (lo, hi int64, acc int, ok bool) {
	if home >= len(ws.shards) {
		home = len(ws.shards) - 1
	}
	for {
		v := ws.richestOther(home)
		if v < 0 {
			if accesses == 0 {
				accesses = 1 // the drained-pool observation
			}
			return 0, 0, accesses, false
		}
		accesses++
		if lo, hi, ok = ws.shards[v].claim(n); ok {
			return lo, hi, accesses, true
		}
		ws.shards[v].dead.Store(true)
	}
}

// TryStealFunc removes a chunk whose size depends on the total number of
// remaining iterations, as the guided schedule requires. sizeOf receives
// the global remaining count (always > 0) and must return a positive size;
// the claim is CAS-based on a single shard (home preferred) and clipped at
// the shard boundary. accesses reports RMW attempts including CAS retries.
func (ws *ShardedWorkShare) TryStealFunc(home int, sizeOf func(remaining int64) int64) (lo, hi int64, accesses int, ok bool) {
	if home < 0 {
		panic(fmt.Sprintf("pool: home shard %d out of range", home))
	}
	if home >= len(ws.shards) {
		home = len(ws.shards) - 1
	}
	for {
		s := &ws.shards[home]
		if s.remaining() <= 0 {
			v := ws.richestOther(home)
			if v < 0 {
				if accesses == 0 {
					accesses = 1
				}
				return 0, 0, accesses, false
			}
			s = &ws.shards[v]
		}
		cur := s.next.Load()
		if cur >= s.end {
			continue // raced to empty; re-select
		}
		rem := ws.Remaining()
		if rem <= 0 {
			continue
		}
		size := sizeOf(rem)
		if size <= 0 {
			panic(fmt.Sprintf("pool: sizeOf returned non-positive size %d", size))
		}
		hi = cur + size
		if hi > s.end {
			hi = s.end
		}
		accesses++
		if s.next.CompareAndSwap(cur, hi) {
			return cur, hi, accesses, true
		}
	}
}

// StealSpan claims up to want iterations across shards (home first, then
// richest-first foreign shards) and returns them as up to NumShards
// contiguous ranges. The AID final assignment uses it so an allotment that
// exceeds the home shard is not silently truncated. An empty slice means
// the pool is drained.
func (ws *ShardedWorkShare) StealSpan(home int, want int64) (rs []Range, accesses int) {
	if want <= 0 {
		panic(fmt.Sprintf("pool: non-positive span want %d", want))
	}
	if home >= len(ws.shards) {
		home = len(ws.shards) - 1
	}
	got := int64(0)
	pick := home
	for got < want {
		s := &ws.shards[pick]
		if s.remaining() > 0 {
			accesses++
			if lo, hi, ok := s.claim(want - got); ok {
				rs = append(rs, Range{Lo: lo, Hi: hi})
				got += hi - lo
				continue
			}
		}
		next := ws.richestOther(pick)
		if next < 0 || next == pick {
			break
		}
		pick = next
	}
	if len(rs) == 0 && accesses == 0 {
		accesses = 1 // drained-pool observation
	}
	return rs, accesses
}

// DrainAll claims every remaining iteration, home shard first, as up to
// NumShards ranges. It is the sharded analog of TryStealRest, used by the
// AID-static last-thread assignment so SF rounding never orphans work.
func (ws *ShardedWorkShare) DrainAll(home int) (rs []Range, accesses int) {
	if home >= len(ws.shards) {
		home = len(ws.shards) - 1
	}
	order := make([]int, 0, len(ws.shards))
	order = append(order, home)
	for i := range ws.shards {
		if i != home {
			order = append(order, i)
		}
	}
	for _, i := range order {
		s := &ws.shards[i]
		for {
			cur := s.next.Load()
			if cur >= s.end {
				break
			}
			accesses++
			if s.next.CompareAndSwap(cur, s.end) {
				rs = append(rs, Range{Lo: cur, Hi: s.end})
				break
			}
		}
	}
	if len(rs) == 0 && accesses == 0 {
		accesses = 1
	}
	return rs, accesses
}
