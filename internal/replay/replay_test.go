package replay

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/amp"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// recordSim records one simulated loop under the given schedule text.
func recordSim(t *testing.T, schedText string, spec sim.LoopSpec, withTrace bool) *trace.Record {
	t.Helper()
	sched, err := rt.ParseSchedule(schedText)
	if err != nil {
		t.Fatal(err)
	}
	pl := amp.PlatformA()
	rec := trace.NewRecorder()
	cfg := sim.Config{
		Platform: pl,
		NThreads: pl.NumCores(),
		Factory:  sched.Factory(),
		Recorder: rec,
	}
	if withTrace {
		cfg.Trace = trace.New(pl.NumCores())
	}
	if _, err := sim.RunLoop(cfg, spec, 0); err != nil {
		t.Fatal(err)
	}
	rec.SetLoopSchedule(0, sched.Canonical())
	return rec.Record()
}

func epSpec() sim.LoopSpec {
	return sim.LoopSpec{
		Name:    "ep-main",
		NI:      16384,
		Profile: amp.Profile{ILP: 0.25, MemIntensity: 0.05, FootprintMB: 0.1},
		Cost:    sim.BlockNoisyCost{Base: 120000, Amp: 0.35, BlockLen: 256, Seed: 0xE9},
	}
}

func encode(t *testing.T, rec *trace.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.EncodeJSONL(&buf, rec); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// roundTrip pushes a record through the codec, as the CLI does, so replay
// always sees a deserialized record.
func roundTrip(t *testing.T, rec *trace.Record) *trace.Record {
	t.Helper()
	got, err := trace.DecodeJSONL(bytes.NewReader(encode(t, rec)))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestExactReplaySimLoop is the core acceptance property: an exact replay
// of a sim-recorded run reproduces the identical event stream, timeline and
// makespan (verified inside Exact), and two replays serialize identically.
func TestExactReplaySimLoop(t *testing.T) {
	for _, schedText := range []string{"aid-dynamic,1,5", "aid-static", "dynamic,8", "static", "aid-auto,16,64"} {
		rec := roundTrip(t, recordSim(t, schedText, epSpec(), true))
		r1, err := Exact(rec)
		if err != nil {
			t.Fatalf("%s: Exact: %v", schedText, err)
		}
		if r1.MakespanNs != rec.MakespanNs {
			t.Fatalf("%s: makespan %d, recorded %d", schedText, r1.MakespanNs, rec.MakespanNs)
		}
		// The replayed record reproduces the recorded timeline too.
		if len(r1.Record.Timeline) != len(rec.Timeline) {
			t.Fatalf("%s: replayed %d timeline intervals, recorded %d", schedText, len(r1.Record.Timeline), len(rec.Timeline))
		}
		for i, iv := range r1.Record.Timeline {
			if iv != rec.Timeline[i] {
				t.Fatalf("%s: timeline interval %d diverged: %+v vs %+v", schedText, i, iv, rec.Timeline[i])
			}
		}
		r2, err := Exact(rec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encode(t, r1.Record), encode(t, r2.Record)) {
			t.Fatalf("%s: two exact replays serialized differently", schedText)
		}
	}
}

// TestExactReplaySimMultiLoop replays a recorded sim.RunLoops run: the
// scripted policy must reproduce each worker's loop-visit order, and the
// makespan must match exactly.
func TestExactReplaySimMultiLoop(t *testing.T) {
	pl := amp.PlatformA()
	aid, _ := rt.ParseSchedule("aid-dynamic,1,5")
	rec := trace.NewRecorder()
	cfg := sim.Config{
		Platform: pl,
		NThreads: pl.NumCores(),
		Factory:  aid.Factory(),
		Recorder: rec,
	}
	specs := []sim.LoopSpec{
		{Name: "a", NI: 4000, Profile: amp.Profile{ILP: 0.6}, Cost: sim.UniformCost{PerIter: 50000}, Weight: 2},
		{Name: "b", NI: 2000, Profile: amp.Profile{ILP: 0.2, MemIntensity: 0.4}, Cost: sim.LinearCost{Base: 20000, Slope: 30}},
		{Name: "c", NI: 1000, Profile: amp.Profile{MemIntensity: 0.7}, Cost: sim.UniformCost{PerIter: 90000}},
	}
	if _, err := sim.RunLoops(cfg, specs, nil, 0); err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		rec.SetLoopSchedule(i, aid.Canonical())
	}
	record := roundTrip(t, rec.Record())
	r1, err := Exact(record)
	if err != nil {
		t.Fatalf("Exact multi-loop: %v", err)
	}
	if r1.MakespanNs != record.MakespanNs {
		t.Fatalf("makespan %d, recorded %d", r1.MakespanNs, record.MakespanNs)
	}
	r2, err := Exact(record)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, r1.Record), encode(t, r2.Record)) {
		t.Fatal("two exact multi-loop replays serialized differently")
	}
}

// TestExactReplayZeroTripLoop: a recorded zero-trip loop is all retire
// events and must replay cleanly.
func TestExactReplayZeroTripLoop(t *testing.T) {
	spec := sim.LoopSpec{Name: "empty", NI: 0, Cost: sim.UniformCost{PerIter: 1}}
	rec := roundTrip(t, recordSim(t, "dynamic,4", spec, false))
	if _, err := Exact(rec); err != nil {
		t.Fatalf("Exact on zero-trip record: %v", err)
	}
}

// TestExactDetectsCorruptRecord: dropping a grant or granting twice must
// fail coverage verification, not silently replay.
func TestExactDetectsCorruptRecord(t *testing.T) {
	rec := roundTrip(t, recordSim(t, "dynamic,8", epSpec(), false))
	// Drop the first real grant: a coverage hole.
	holed := roundTrip(t, rec)
	for i, ev := range holed.Events {
		if !ev.Retire {
			holed.Events = append(holed.Events[:i], holed.Events[i+1:]...)
			break
		}
	}
	if _, err := Exact(holed); err == nil {
		t.Error("Exact accepted a record with a coverage hole")
	}
	// What-if must reject it too: with a piecewise cost the hole would
	// silently replay as zero-cost iterations.
	if _, err := WhatIf(holed, WhatIfConfig{Schedule: "aid-static"}); err == nil {
		t.Error("WhatIf accepted a record with a coverage hole")
	}
	// Duplicate a grant: double coverage.
	doubled := roundTrip(t, rec)
	for _, ev := range doubled.Events {
		if !ev.Retire {
			doubled.Events = append(doubled.Events, ev)
			break
		}
	}
	if _, err := Exact(doubled); err == nil {
		t.Error("Exact accepted a record with a doubly granted chunk")
	}
}

// TestWhatIfSwapsScheduler runs the recorded workload under a different
// scheduler and checks the counterfactual is deterministic and complete.
func TestWhatIfSwapsScheduler(t *testing.T) {
	rec := roundTrip(t, recordSim(t, "dynamic,1", epSpec(), true))
	w1, err := WhatIf(rec, WhatIfConfig{Schedule: "aid-static"})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := WhatIf(rec, WhatIfConfig{Schedule: "aid-static"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, w1.Record), encode(t, w2.Record)) {
		t.Fatal("what-if replay is not deterministic")
	}
	if w1.Record.Loops[0].Schedule != "aid-static,1" {
		t.Errorf("what-if record carries schedule %q", w1.Record.Loops[0].Schedule)
	}
	if got := w1.Record.Loops[0].Scheduler; got != "aid-static" {
		t.Errorf("what-if ran %q, want aid-static", got)
	}
	var iters int64
	for _, n := range w1.Results[0].Iters {
		iters += n
	}
	if iters != rec.Loops[0].NI {
		t.Errorf("what-if executed %d iterations, want %d", iters, rec.Loops[0].NI)
	}
	// dynamic,1 pays a pool access per iteration; AID-static should cut
	// pool traffic by orders of magnitude on this loop.
	if w1.Results[0].PoolAccesses*10 >= 16384 {
		t.Errorf("aid-static what-if still performs %d pool accesses", w1.Results[0].PoolAccesses)
	}
}

// TestWhatIfKeepsRecordedSchedule: with no override, each loop re-runs
// under its recorded schedule — reproducing the original makespan for a
// sim-produced record, since the simulator is deterministic.
func TestWhatIfKeepsRecordedSchedule(t *testing.T) {
	rec := roundTrip(t, recordSim(t, "aid-dynamic,1,5", epSpec(), true))
	w, err := WhatIf(rec, WhatIfConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if w.MakespanNs != rec.MakespanNs {
		t.Errorf("keep-schedule what-if makespan %d, recorded %d", w.MakespanNs, rec.MakespanNs)
	}
}

// TestWhatIfFromRTRecord is the acceptance property for the real engine:
// what-if replay of an rt-recorded run under a swapped scheduler is
// deterministic across repeated invocations.
func TestWhatIfFromRTRecord(t *testing.T) {
	team, err := rt.NewTeam(rt.TeamConfig{NThreads: 4, Schedule: rt.Schedule{Kind: rt.KindDynamic, Chunk: 8}})
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := team.RecordParallelFor("rt-loop", 4096, func(_ int, lo, hi int64) {
		runtime.Gosched()
	})
	if err != nil {
		t.Fatal(err)
	}
	record := roundTrip(t, rec)
	if record.Engine != "rt" {
		t.Fatalf("record engine %q", record.Engine)
	}
	// Exact replay: coverage and per-thread grant totals must verify.
	if _, err := Exact(record); err != nil {
		t.Fatalf("Exact on rt record: %v", err)
	}
	// What-if under a swapped scheduler, twice: byte-identical.
	w1, err := WhatIf(record, WhatIfConfig{Schedule: "aid-hybrid,80"})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := WhatIf(record, WhatIfConfig{Schedule: "aid-hybrid,80"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, w1.Record), encode(t, w2.Record)) {
		t.Fatal("rt what-if replay is not deterministic")
	}
	var iters int64
	for _, n := range w1.Results[0].Iters {
		iters += n
	}
	if iters != 4096 {
		t.Errorf("what-if executed %d iterations, want 4096", iters)
	}
}

// TestDiffIdenticalRunsIsClean is the acceptance property for diff: zero
// regressions for identical runs.
func TestDiffIdenticalRunsIsClean(t *testing.T) {
	rec := roundTrip(t, recordSim(t, "aid-dynamic,1,5", epSpec(), true))
	rep := Diff(rec, roundTrip(t, rec), 2.0)
	if rep.Regressions != 0 {
		t.Fatalf("identical runs diffed with %d regressions:\n%s", rep.Regressions, rep)
	}
	for _, m := range rep.Metrics {
		if m.DeltaPct != 0 {
			t.Errorf("metric %s has nonzero delta %v for identical runs", m.Name, m.DeltaPct)
		}
	}
}

// TestDiffFlagsRegression: a candidate with a worse makespan and more pool
// traffic must be flagged.
func TestDiffFlagsRegression(t *testing.T) {
	base := roundTrip(t, recordSim(t, "aid-static", epSpec(), true))
	// dynamic,1 on this loop pays a pool access per iteration and a far
	// larger runtime overhead: a genuine scheduling regression.
	cand, err := WhatIf(base, WhatIfConfig{Schedule: "dynamic,1"})
	if err != nil {
		t.Fatal(err)
	}
	rep := Diff(base, cand.Record, 2.0)
	if rep.Regressions == 0 {
		t.Fatalf("regression not flagged:\n%s", rep)
	}
	var poolFlagged bool
	for _, m := range rep.Metrics {
		if m.Name == "pool_accesses" && m.Regression {
			poolFlagged = true
		}
	}
	if !poolFlagged {
		t.Errorf("pool_accesses not flagged:\n%s", rep)
	}
	// The report renders with a verdict line.
	if s := rep.String(); !bytes.Contains([]byte(s), []byte("REGRESSION")) {
		t.Errorf("report lacks regression markers:\n%s", s)
	}
}

// TestDiffImprovementIsNotRegression: a faster candidate must not be
// flagged (cost metrics regress one-sided).
func TestDiffImprovementIsNotRegression(t *testing.T) {
	base := roundTrip(t, recordSim(t, "dynamic,1", epSpec(), true))
	cand, err := WhatIf(base, WhatIfConfig{Schedule: "aid-static"})
	if err != nil {
		t.Fatal(err)
	}
	rep := Diff(base, cand.Record, 2.0)
	for _, m := range rep.Metrics {
		switch m.Name {
		case "makespan_ns", "pool_accesses", "chunks", "sched_ns_total":
			if m.Regression && m.B < m.A {
				t.Errorf("improvement flagged as regression: %+v", m)
			}
		}
	}
}

// TestPiecewiseCost checks the reconstructed cost model: exact segment
// queries return stored totals, partial queries interpolate.
func TestPiecewiseCost(t *testing.T) {
	rec := &trace.Record{
		Version: trace.RecordVersion, Engine: "rt",
		Platform: trace.PlatformRecordOf(amp.PlatformA()),
		NThreads: 2, Binding: "BS",
		Loops: []trace.LoopRecord{{Index: 0, Name: "l", NI: 10}},
		Events: []trace.ChunkEvent{
			{TimeNs: 1, Tid: 0, Loop: 0, Lo: 0, Hi: 4, Cost: 400},
			{TimeNs: 2, Tid: 1, Loop: 0, Lo: 4, Hi: 10, Cost: 300},
		},
	}
	c, err := costFromEvents(rec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.RangeUnits(0, 4); got != 400 {
		t.Errorf("exact segment = %v, want 400", got)
	}
	if got := c.RangeUnits(4, 10); got != 300 {
		t.Errorf("exact segment = %v, want 300", got)
	}
	if got := c.RangeUnits(0, 10); got != 700 {
		t.Errorf("full span = %v, want 700", got)
	}
	if got := c.RangeUnits(2, 4); got != 200 {
		t.Errorf("half segment = %v, want 200", got)
	}
	if got := c.RangeUnits(2, 7); got != 200+150 {
		t.Errorf("straddling span = %v, want 350", got)
	}
	if got := c.Units(0); got != 100 {
		t.Errorf("Units(0) = %v, want 100", got)
	}
	if got := c.Units(5); got != 50 {
		t.Errorf("Units(5) = %v, want 50", got)
	}
}
