package replay

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Metric is one compared quantity of a run diff.
type Metric struct {
	// Name identifies the quantity (e.g. "makespan_ns", "sf[ep-main][0]").
	Name string
	// A and B are the baseline's and candidate's values.
	A, B float64
	// DeltaPct is the candidate's relative change in percent (positive =
	// larger). NaN when the baseline is zero and the candidate is not.
	DeltaPct float64
	// Regression marks a change beyond the report's tolerance in the
	// harmful direction (larger for cost metrics, either way for SF drift).
	Regression bool
}

// Report is the outcome of diffing two runs.
type Report struct {
	// TolerancePct is the relative change (percent) beyond which a metric
	// counts as a regression.
	TolerancePct float64
	// Metrics lists every compared quantity, cost metrics first.
	Metrics []Metric
	// Regressions counts the flagged metrics.
	Regressions int
}

// summary is the per-run digest Diff compares. Every field derives from
// the record alone, so recorded and replayed runs diff uniformly.
type summary struct {
	makespan  float64
	pool      float64
	chunks    float64
	runNs     []float64 // per thread
	schedNs   []float64
	syncNs    []float64
	haveTimes bool // timeline-derived Sched/Sync available
	finalSF   map[string][]float64
	sfSamples map[string]int
}

func summarize(rec *trace.Record) *summary {
	s := &summary{
		makespan:  float64(rec.MakespanNs),
		runNs:     make([]float64, rec.NThreads),
		schedNs:   make([]float64, rec.NThreads),
		syncNs:    make([]float64, rec.NThreads),
		finalSF:   map[string][]float64{},
		sfSamples: map[string]int{},
	}
	for _, ev := range rec.Events {
		s.pool += float64(ev.PoolAccesses)
		if !ev.Retire {
			s.chunks++
		}
	}
	if tr := rec.Trace(); tr != nil {
		s.haveTimes = true
		for tid := 0; tid < rec.NThreads; tid++ {
			s.runNs[tid] = float64(tr.TimeIn(tid, trace.Running))
			s.schedNs[tid] = float64(tr.TimeIn(tid, trace.Sched))
			s.syncNs[tid] = float64(tr.TimeIn(tid, trace.Sync))
		}
	} else {
		// No timeline (multi-loop records): derive Running from the
		// per-event execution times; Sched/Sync are not comparable.
		for _, ev := range rec.Events {
			if !ev.Retire {
				s.runNs[ev.Tid] += float64(ev.ExecNs)
			}
		}
	}
	for _, sf := range rec.SFSamples {
		name := loopName(rec, sf.Loop)
		s.finalSF[name] = sf.SF // samples are chronological; last wins
		s.sfSamples[name]++
	}
	return s
}

func loopName(rec *trace.Record, li int) string {
	if li >= 0 && li < len(rec.Loops) {
		return rec.Loops[li].Name
	}
	return fmt.Sprintf("loop-%d", li)
}

// imbalancePct mirrors trace.Trace.ImbalancePct over per-thread Running
// time: 100·(maxRun−minRun)/maxRun.
func imbalancePct(runNs []float64) float64 {
	minR, maxR := math.Inf(1), 0.0
	for _, r := range runNs {
		minR = math.Min(minR, r)
		maxR = math.Max(maxR, r)
	}
	if maxR == 0 {
		return 0
	}
	return 100 * (maxR - minR) / maxR
}

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// Diff compares two runs — a baseline and a candidate — into a regression
// report. Cost metrics (makespan, pool traffic, chunk count, aggregate
// Sched/Sync time, imbalance) regress when the candidate exceeds the
// baseline by more than tolPct percent; per-loop final SF estimates regress
// on drift beyond tolPct in either direction (a shifted estimate signals a
// changed sampling pipeline even when the makespan survives). Two identical
// runs — e.g. two exact replays of one record — always produce zero
// regressions.
func Diff(a, b *trace.Record, tolPct float64) *Report {
	sa, sb := summarize(a), summarize(b)
	rep := &Report{TolerancePct: tolPct}

	costMetric := func(name string, va, vb float64) {
		m := Metric{Name: name, A: va, B: vb, DeltaPct: deltaPct(va, vb)}
		m.Regression = vb > va && exceeds(m.DeltaPct, tolPct)
		rep.Metrics = append(rep.Metrics, m)
	}
	costMetric("makespan_ns", sa.makespan, sb.makespan)
	costMetric("pool_accesses", sa.pool, sb.pool)
	costMetric("chunks", sa.chunks, sb.chunks)
	costMetric("running_ns_total", sum(sa.runNs), sum(sb.runNs))
	if sa.haveTimes && sb.haveTimes {
		costMetric("sched_ns_total", sum(sa.schedNs), sum(sb.schedNs))
		// Sync time is informational only: where the idle time sits is
		// already judged by makespan and imbalance — a schedule can
		// lengthen the barrier wait in absolute terms while finishing
		// sooner, which is an improvement, not a regression.
		va, vb := sum(sa.syncNs), sum(sb.syncNs)
		rep.Metrics = append(rep.Metrics, Metric{Name: "sync_ns_total", A: va, B: vb, DeltaPct: deltaPct(va, vb)})
	}
	// Imbalance is already a percentage; compare in absolute points.
	ia, ib := imbalancePct(sa.runNs), imbalancePct(sb.runNs)
	im := Metric{Name: "imbalance_pct", A: ia, B: ib, DeltaPct: ib - ia}
	im.Regression = ib-ia > tolPct
	rep.Metrics = append(rep.Metrics, im)

	// SF trajectory: final estimate per loop (per core type) plus sample
	// count. Only loops present in both runs are comparable; names are
	// sorted so the report is reproducible (map order is not).
	names := make([]string, 0, len(sa.finalSF))
	for name := range sa.finalSF {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sfA := sa.finalSF[name]
		sfB, ok := sb.finalSF[name]
		if !ok {
			continue
		}
		for t := 0; t < len(sfA) && t < len(sfB); t++ {
			m := Metric{Name: fmt.Sprintf("sf[%s][%d]", name, t), A: sfA[t], B: sfB[t],
				DeltaPct: deltaPct(sfA[t], sfB[t])}
			m.Regression = exceeds(m.DeltaPct, tolPct)
			rep.Metrics = append(rep.Metrics, m)
		}
		rep.Metrics = append(rep.Metrics, Metric{Name: fmt.Sprintf("sf_samples[%s]", name),
			A: float64(sa.sfSamples[name]), B: float64(sb.sfSamples[name]),
			DeltaPct: deltaPct(float64(sa.sfSamples[name]), float64(sb.sfSamples[name]))})
	}
	for _, m := range rep.Metrics {
		if m.Regression {
			rep.Regressions++
		}
	}
	return rep
}

func deltaPct(a, b float64) float64 {
	if a == b {
		return 0
	}
	if a == 0 {
		return math.NaN()
	}
	return 100 * (b - a) / a
}

// exceeds reports whether a relative delta is beyond tolerance in
// magnitude; a NaN delta (zero baseline, non-zero candidate) always counts.
func exceeds(deltaPct, tolPct float64) bool {
	return math.IsNaN(deltaPct) || math.Abs(deltaPct) > tolPct
}

// String renders the report as an aligned table plus a verdict line.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %16s %16s %10s\n", "metric", "baseline", "candidate", "delta")
	for _, m := range r.Metrics {
		flag := ""
		if m.Regression {
			flag = "  << REGRESSION"
		}
		delta := fmt.Sprintf("%+.2f%%", m.DeltaPct)
		if math.IsNaN(m.DeltaPct) {
			delta = "new"
		}
		fmt.Fprintf(&b, "%-24s %16.6g %16.6g %10s%s\n", m.Name, m.A, m.B, delta, flag)
	}
	if r.Regressions == 0 {
		fmt.Fprintf(&b, "no regressions (tolerance %.1f%%)\n", r.TolerancePct)
	} else {
		fmt.Fprintf(&b, "%d regression(s) beyond %.1f%% tolerance\n", r.Regressions, r.TolerancePct)
	}
	return b.String()
}
