package replay

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// PiecewiseCost is a cost model reconstructed from a record's grant events:
// each recorded chunk becomes one segment whose total work is the event's
// Cost, spread uniformly across its iterations. For queries that cover a
// recorded chunk exactly — the case exact replay produces — RangeUnits
// returns the stored total without re-summation, so replayed execution
// times are bit-identical to the original run's. What-if replays slice the
// segments at arbitrary boundaries and get the uniform-within-chunk
// interpolation, the finest cost information a record carries.
//
// This is how runs recorded on the real-goroutine engine become
// re-executable: the engine cannot know a closed-form cost model for an
// arbitrary Go loop body, but it measures every chunk's wall time, and
// BuildRecord converts those to work units via the platform speed model.
type PiecewiseCost struct {
	los, his []int64   // segments, sorted by lo, disjoint
	units    []float64 // total units per segment
}

// costFromEvents builds the piecewise model for loop li. The record's
// events must cover the loop exactly (checkCoverage enforces this for
// replays; the constructor only requires disjoint, sorted coverage).
func costFromEvents(rec *trace.Record, li int) (*PiecewiseCost, error) {
	type seg struct {
		lo, hi int64
		units  float64
	}
	var segs []seg
	for _, ev := range rec.Events {
		if ev.Loop != li || ev.Retire {
			continue
		}
		segs = append(segs, seg{ev.Lo, ev.Hi, ev.Cost})
	}
	if len(segs) == 0 {
		if rec.Loops[li].NI == 0 {
			return &PiecewiseCost{}, nil
		}
		return nil, fmt.Errorf("replay: loop %q has no closed-form cost and no grant events to derive one", rec.Loops[li].Name)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].lo < segs[j].lo })
	c := &PiecewiseCost{
		los:   make([]int64, len(segs)),
		his:   make([]int64, len(segs)),
		units: make([]float64, len(segs)),
	}
	for i, s := range segs {
		if i > 0 && s.lo < c.his[i-1] {
			return nil, fmt.Errorf("replay: loop %q has overlapping grant events at iteration %d", rec.Loops[li].Name, s.lo)
		}
		c.los[i], c.his[i], c.units[i] = s.lo, s.hi, s.units
	}
	return c, nil
}

// segFor returns the index of the last segment with lo <= i.
func (c *PiecewiseCost) segFor(i int64) int {
	return sort.Search(len(c.los), func(k int) bool { return c.los[k] > i }) - 1
}

// Units implements sim.CostModel: the per-iteration share of iteration i's
// segment (0 for iterations outside every segment).
func (c *PiecewiseCost) Units(i int64) float64 {
	k := c.segFor(i)
	if k < 0 || i >= c.his[k] {
		return 0
	}
	return c.units[k] / float64(c.his[k]-c.los[k])
}

// RangeUnits implements sim.CostModel. A query matching one whole segment
// returns its stored total exactly; other queries sum whole segments and
// interpolate partial overlaps.
func (c *PiecewiseCost) RangeUnits(lo, hi int64) float64 {
	if hi <= lo || len(c.los) == 0 {
		return 0
	}
	k := c.segFor(lo)
	if k < 0 {
		k = 0
	}
	if c.los[k] == lo && c.his[k] == hi {
		return c.units[k] // exact-replay fast path: bit-identical total
	}
	sum := 0.0
	for ; k < len(c.los) && c.los[k] < hi; k++ {
		sLo, sHi := c.los[k], c.his[k]
		oLo, oHi := sLo, sHi
		if oLo < lo {
			oLo = lo
		}
		if oHi > hi {
			oHi = hi
		}
		if oHi <= oLo {
			continue
		}
		if oLo == sLo && oHi == sHi {
			sum += c.units[k]
			continue
		}
		sum += c.units[k] * float64(oHi-oLo) / float64(sHi-sLo)
	}
	return sum
}
