package replay

import (
	"testing"

	"repro/internal/amp"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchRecord records one EP-shaped loop under AID-dynamic for replaying.
func benchRecord(b *testing.B) *trace.Record {
	b.Helper()
	sched, err := rt.ParseSchedule("aid-dynamic,1,5")
	if err != nil {
		b.Fatal(err)
	}
	pl := amp.PlatformA()
	rec := trace.NewRecorder()
	cfg := sim.Config{Platform: pl, NThreads: pl.NumCores(), Factory: sched.Factory(), Recorder: rec}
	spec := sim.LoopSpec{
		Name:    "ep-main",
		NI:      16384,
		Profile: amp.Profile{ILP: 0.25, MemIntensity: 0.05, FootprintMB: 0.1},
		Cost:    sim.BlockNoisyCost{Base: 120000, Amp: 0.35, BlockLen: 256, Seed: 0xE9},
	}
	if _, err := sim.RunLoop(cfg, spec, 0); err != nil {
		b.Fatal(err)
	}
	rec.SetLoopSchedule(0, sched.Canonical())
	return rec.Record()
}

// BenchmarkReplayExact measures a full exact replay — script compilation,
// virtual-time re-execution, verification — of a recorded EP run. Wired
// into `make bench-short` as the replay smoke case: a failed replay fails
// the benchmark.
func BenchmarkReplayExact(b *testing.B) {
	rec := benchRecord(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exact(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayWhatIf measures a what-if replay under a swapped
// scheduler (the regression-hunting inner loop).
func BenchmarkReplayWhatIf(b *testing.B) {
	rec := benchRecord(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WhatIf(rec, WhatIfConfig{Schedule: "aid-static"}); err != nil {
			b.Fatal(err)
		}
	}
}
