package replay

import (
	"bytes"
	"testing"

	"repro/internal/rt"
	"repro/internal/trace"
)

// captureRun executes a small multi-loop workload with capture on and
// returns its run record. Compaction and the event budget are the sampled
// service recorder's reductions (cmd/aidserve -sample).
func captureRun(t *testing.T, compact bool, budget int) *trace.Record {
	t.Helper()
	reg, err := rt.NewRegistry(rt.RegistryConfig{NThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	var handles []*rt.Loop
	for i := 0; i < 3; i++ {
		h, err := reg.Submit(rt.LoopRequest{
			N:                4000,
			Schedule:         rt.Schedule{Kind: rt.KindDynamic, Chunk: 16},
			Body:             func(_ int, lo, hi int64) {},
			Capture:          true,
			CaptureCompact:   compact,
			CaptureMaxEvents: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		h.Wait()
	}
	rec, err := reg.BuildRecord(handles...)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// A compacted, budget-trimmed record — what an open-loop service run
// stores for its sampled loops — must still be internally consistent:
// identical inputs diff clean, before and after a serialization roundtrip.
func TestSampledRecordSelfDiffClean(t *testing.T) {
	rec := captureRun(t, true, 48)
	if rep := Diff(rec, rec, 1.0); rep.Regressions > 0 {
		t.Fatalf("sampled record fails self-diff:\n%s", rep)
	}
	var b bytes.Buffer
	if err := trace.EncodeJSONL(&b, rec); err != nil {
		t.Fatal(err)
	}
	dec, err := trace.DecodeJSONL(&b)
	if err != nil {
		t.Fatal(err)
	}
	if rep := Diff(rec, dec, 1.0); rep.Regressions > 0 {
		t.Fatalf("decoded sampled record diffs against its source:\n%s", rep)
	}
}

// Compacting a record's event stream coarsens grant granularity but must
// not move any cost total the diff compares: pool traffic and per-thread
// execution time stay exact, and the chunk count only shrinks.
func TestCompactionPreservesCostTotals(t *testing.T) {
	full := captureRun(t, false, 0)
	compacted := *full
	compacted.Events = trace.CompactEvents(append([]trace.ChunkEvent(nil), full.Events...))
	if len(compacted.Events) >= len(full.Events) {
		t.Fatalf("compaction kept %d of %d events; workload too fine to merge anything",
			len(compacted.Events), len(full.Events))
	}
	rep := Diff(full, &compacted, 0.001)
	if rep.Regressions > 0 {
		t.Fatalf("compaction regressed a cost metric:\n%s", rep)
	}
	for _, m := range rep.Metrics {
		switch m.Name {
		case "pool_accesses", "makespan_ns", "running_ns_total":
			if m.A != m.B {
				t.Fatalf("%s changed under compaction: %v -> %v", m.Name, m.A, m.B)
			}
		}
	}
}
