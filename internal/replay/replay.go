// Package replay re-executes recorded runs (trace.Record) in the
// discrete-event simulator — the regression-hunting workflow the ROADMAP
// calls trace-driven replay. Three modes:
//
//   - Exact re-executes the recorded chunk assignments: a script scheduler
//     replays each worker's grant sequence (including the recorded
//     pool-access and timestamp charges) through sim.RunLoop/RunLoops, and
//     the result is checked against the record — identical coverage always,
//     identical event times and makespan for sim-produced records. Replays
//     are fully deterministic: replaying the same record twice yields
//     byte-identical serialized output.
//   - WhatIf keeps the recorded workload (trip counts, cost profile,
//     platform, fleet shape) but swaps the scheduler, fairness policy,
//     binding or thread count — answering "would AID-dynamic have beaten
//     the schedule we ran in production?" without re-running production.
//   - Diff compares two runs (recorded or replayed) into a regression
//     report over makespan, per-thread Running/Sched/Sync, imbalance, pool
//     traffic and the SF trajectory.
//
// # Worked example: record, what-if, diff
//
// Record a production-shaped run on the real-goroutine engine, then ask in
// virtual time whether AID-dynamic would have beaten the schedule it ran
// under:
//
//	team, _ := rt.NewTeam(rt.TeamConfig{Schedule: rt.Schedule{Kind: rt.KindDynamic}})
//	rec, _, _ := team.RecordParallelFor("ingest", 1<<20, body)
//
//	// Persist / reload (e.g. ship the JSONL from production to a dev box).
//	var buf bytes.Buffer
//	trace.EncodeJSONL(&buf, rec)
//	rec, _ = trace.DecodeJSONL(&buf)
//
//	// Re-execute the recorded workload under a different scheduler.
//	base, _ := replay.WhatIf(rec, replay.WhatIfConfig{})                        // recorded schedule
//	cand, _ := replay.WhatIf(rec, replay.WhatIfConfig{Schedule: "aid-dynamic,1,5"}) // challenger
//	report := replay.Diff(base.Record, cand.Record, 2.0)
//	fmt.Print(report)
//
// The same record replays exactly (replay.Exact) to validate the record
// itself, and `aidtrace -record/-replay/-whatif/-diff` wraps this package
// for the command line.
package replay

import (
	"fmt"
	"sort"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/fair"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Result is one replayed execution.
type Result struct {
	// Results holds the per-loop outcomes, index-aligned with the input
	// record's Loops.
	Results []sim.LoopResult
	// Record is the replayed run's own record — diff it against the
	// original (or serialize it; two replays of one record are
	// byte-identical).
	Record *trace.Record
	// MakespanNs is the replayed start-to-last-barrier-release duration.
	MakespanNs int64
}

// grant is one scripted scheduler reply.
type grant struct {
	lo, hi       int64
	origin       int
	poolAccesses int
	timestamps   int
	retire       bool
}

// scriptSched replays a recorded per-thread grant sequence. It ignores the
// clock entirely — determinism comes from the script — and reproduces the
// recorded runtime-cost metadata so the simulator charges the same
// overheads the original run paid.
type scriptSched struct {
	name      string
	perThread [][]grant
	pos       []int
}

func (s *scriptSched) Name() string { return s.name }

func (s *scriptSched) Next(tid int, _ int64) (core.Assign, bool) {
	q := s.perThread[tid]
	i := s.pos[tid]
	if i >= len(q) {
		// Past the scripted retire: report no work (costs nothing). This
		// only happens if the engine calls again after ok=false, which it
		// does not; defensive rather than reachable.
		return core.Assign{}, false
	}
	s.pos[tid] = i + 1
	g := q[i]
	asg := core.Assign{Lo: g.lo, Hi: g.hi, Origin: g.origin,
		PoolAccesses: g.poolAccesses, Timestamps: g.timestamps}
	return asg, !g.retire
}

// scriptPolicy replays each worker's recorded loop-visit order under
// sim.RunLoops: every Pick grants a burst of 1, so the policy is consulted
// before every scheduler call and hands back exactly the recorded sequence.
type scriptPolicy struct {
	perThread [][]int // loop index sequence per tid
	pos       []int
}

func (p *scriptPolicy) Name() string { return "replay-script" }

func (p *scriptPolicy) Pick(tid int, cands []fair.Candidate) (int, int) {
	q := p.perThread[tid]
	i := p.pos[tid]
	if i >= len(q) {
		return 0, 1 // script exhausted; unreachable on a consistent record
	}
	p.pos[tid] = i + 1
	want := uint64(q[i])
	for idx, c := range cands {
		if c.ID == want {
			return idx, 1
		}
	}
	return 0, 1 // recorded loop already retired this worker; unreachable
}

// platformOf rebuilds the recorded machine and binding.
func platformOf(rec *trace.Record) (*amp.Platform, amp.Binding, error) {
	pl, err := rec.Platform.Platform()
	if err != nil {
		return nil, 0, fmt.Errorf("replay: rebuilding platform: %w", err)
	}
	binding := amp.BindBS
	if rec.Binding == "SB" {
		binding = amp.BindSB
	}
	if rec.NThreads > pl.NumCores() {
		return nil, 0, fmt.Errorf("replay: record has %d threads but platform %q has %d cores", rec.NThreads, pl.Name, pl.NumCores())
	}
	return pl, binding, nil
}

// costOf rebuilds loop li's cost model: the recorded closed form when
// present, otherwise a piecewise model from the loop's grant events.
func costOf(rec *trace.Record, li int) (sim.CostModel, error) {
	if cr := rec.Loops[li].Cost; cr != nil {
		return sim.CostFromRecord(cr)
	}
	return costFromEvents(rec, li)
}

// specsOf rebuilds the recorded workload as simulator loop specs.
func specsOf(rec *trace.Record) ([]sim.LoopSpec, error) {
	specs := make([]sim.LoopSpec, len(rec.Loops))
	for li, l := range rec.Loops {
		cost, err := costOf(rec, li)
		if err != nil {
			return nil, fmt.Errorf("replay: loop %q: %w", l.Name, err)
		}
		specs[li] = sim.LoopSpec{Name: l.Name, NI: l.NI, Profile: l.Profile, Cost: cost, Weight: l.Weight}
	}
	return specs, nil
}

// migrationsOf rebuilds the recorded migration injections.
func migrationsOf(rec *trace.Record) []sim.Migration {
	var out []sim.Migration
	for _, m := range rec.Migrations {
		out = append(out, sim.Migration{AtNs: m.AtNs, Tid: m.Tid, ToCPU: m.ToCPU})
	}
	return out
}

// scriptsOf compiles the record's event stream into per-loop, per-thread
// grant scripts plus each worker's loop-visit order. Events are taken in
// (TimeNs, Tid, Seq) order, which preserves every worker's recorded grant
// sequence (Seq breaks wall-clock ties within a worker under rt records).
func scriptsOf(rec *trace.Record) (scheds []*scriptSched, visit [][]int) {
	evs := append([]trace.ChunkEvent(nil), rec.Events...)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].TimeNs != evs[j].TimeNs {
			return evs[i].TimeNs < evs[j].TimeNs
		}
		if evs[i].Tid != evs[j].Tid {
			return evs[i].Tid < evs[j].Tid
		}
		return evs[i].Seq < evs[j].Seq
	})
	scheds = make([]*scriptSched, len(rec.Loops))
	for li, l := range rec.Loops {
		scheds[li] = &scriptSched{
			name:      "replay(" + l.Scheduler + ")",
			perThread: make([][]grant, rec.NThreads),
			pos:       make([]int, rec.NThreads),
		}
	}
	visit = make([][]int, rec.NThreads)
	for _, ev := range evs {
		s := scheds[ev.Loop]
		s.perThread[ev.Tid] = append(s.perThread[ev.Tid], grant{
			lo: ev.Lo, hi: ev.Hi, origin: ev.Origin,
			poolAccesses: ev.PoolAccesses,
			timestamps: ev.Timestamps, retire: ev.Retire,
		})
		visit[ev.Tid] = append(visit[ev.Tid], ev.Loop)
	}
	return scheds, visit
}

// Exact re-executes the recorded chunk assignments in virtual time and
// verifies the replay against the record: coverage must tile every loop's
// iteration space exactly, per-thread iteration totals must match the
// recorded grants, and for sim-produced records the replayed makespan and
// event times must be identical (the virtual-time engine is deterministic,
// so a faithful replay reproduces them bit for bit). rt-produced records
// replay their recorded assignments too, but wall-clock durations cannot be
// asserted against virtual time; coverage and grant sequence are.
func Exact(rec *trace.Record) (*Result, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	if err := checkCoverage(rec); err != nil {
		return nil, err
	}
	pl, binding, err := platformOf(rec)
	if err != nil {
		return nil, err
	}
	specs, err := specsOf(rec)
	if err != nil {
		return nil, err
	}
	scheds, visit := scriptsOf(rec)
	next := 0
	cfg := sim.Config{
		Platform: pl,
		NThreads: rec.NThreads,
		Binding:  binding,
		FactoryNamed: func(string, core.LoopInfo) (core.Scheduler, error) {
			// Loops are built in spec order by both RunLoop and RunLoops,
			// so a counter maps factory calls to script schedulers.
			s := scheds[next]
			next++
			return s, nil
		},
		Migrations: migrationsOf(rec),
		Recorder:   trace.NewRecorder(),
	}
	pol := &scriptPolicy{perThread: visit, pos: make([]int, rec.NThreads)}
	res, err := runConfigured(cfg, rec, specs, pol, rec.Timeline != nil)
	if err != nil {
		return nil, err
	}
	if err := verifyExact(rec, res); err != nil {
		return nil, err
	}
	return res, nil
}

// runConfigured executes a rebuilt configuration through the matching
// engine: single-loop records run through sim.RunLoop (with a per-thread
// timeline when withTrace is set); multi-loop records run through
// sim.RunLoops under the given fairness policy. Shared by exact (scripted
// schedulers + scripted policy) and what-if (real schedulers + real
// policy) replay.
func runConfigured(cfg sim.Config, rec *trace.Record, specs []sim.LoopSpec, policy fair.Policy, withTrace bool) (*Result, error) {
	if len(specs) == 1 && rec.Policy == "" {
		if withTrace {
			cfg.Trace = trace.New(cfg.NThreads)
		}
		r, err := sim.RunLoop(cfg, specs[0], rec.StartNs)
		if err != nil {
			return nil, err
		}
		return &Result{
			Results:    []sim.LoopResult{r},
			Record:     cfg.Recorder.Record(),
			MakespanNs: r.End - r.Start,
		}, nil
	}
	cfg.Migrations = nil // RunLoops rejects them; multi-loop records carry none
	rs, err := sim.RunLoops(cfg, specs, policy, rec.StartNs)
	if err != nil {
		return nil, err
	}
	var maxEnd int64
	for _, r := range rs {
		if r.End > maxEnd {
			maxEnd = r.End
		}
	}
	return &Result{Results: rs, Record: cfg.Recorder.Record(), MakespanNs: maxEnd - rec.StartNs}, nil
}

// checkCoverage asserts the record's grant events tile each loop's
// iteration space [0, NI) exactly once — the schedulers' exactly-once
// guarantee, which a truncated or corrupted record file would violate.
func checkCoverage(rec *trace.Record) error {
	type span struct{ lo, hi int64 }
	perLoop := make([][]span, len(rec.Loops))
	for _, ev := range rec.Events {
		if !ev.Retire {
			perLoop[ev.Loop] = append(perLoop[ev.Loop], span{ev.Lo, ev.Hi})
		}
	}
	for li, spans := range perLoop {
		sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
		var pos int64
		for _, s := range spans {
			if s.lo != pos {
				if s.lo < pos {
					return fmt.Errorf("replay: loop %q grants iteration %d twice", rec.Loops[li].Name, s.lo)
				}
				return fmt.Errorf("replay: loop %q never grants iterations [%d,%d)", rec.Loops[li].Name, pos, s.lo)
			}
			pos = s.hi
		}
		if pos != rec.Loops[li].NI {
			return fmt.Errorf("replay: loop %q covers %d of %d iterations", rec.Loops[li].Name, pos, rec.Loops[li].NI)
		}
	}
	return nil
}

// verifyExact compares the replayed execution against the source record.
func verifyExact(rec *trace.Record, res *Result) error {
	// Per-thread iteration totals must match the recorded grants in every
	// engine's records.
	wantIters := make([][]int64, len(rec.Loops))
	for li := range rec.Loops {
		wantIters[li] = make([]int64, rec.NThreads)
	}
	for _, ev := range rec.Events {
		if !ev.Retire {
			wantIters[ev.Loop][ev.Tid] += ev.Hi - ev.Lo
		}
	}
	for li, r := range res.Results {
		for tid, n := range r.Iters {
			if n != wantIters[li][tid] {
				return fmt.Errorf("replay: loop %q thread %d executed %d iterations, recorded %d",
					rec.Loops[li].Name, tid, n, wantIters[li][tid])
			}
		}
	}
	if rec.Engine != "sim" {
		return nil
	}
	// A sim-produced record must reproduce bit for bit: same event stream
	// with the same virtual times, same makespan.
	if res.MakespanNs != rec.MakespanNs {
		return fmt.Errorf("replay: makespan %d ns, recorded %d ns", res.MakespanNs, rec.MakespanNs)
	}
	got := res.Record.Events
	if len(got) != len(rec.Events) {
		return fmt.Errorf("replay: %d events, recorded %d", len(got), len(rec.Events))
	}
	for i := range got {
		g, w := got[i], rec.Events[i]
		if g.TimeNs != w.TimeNs || g.Tid != w.Tid || g.Loop != w.Loop ||
			g.Lo != w.Lo || g.Hi != w.Hi || g.Retire != w.Retire {
			return fmt.Errorf("replay: event %d diverged: got {t=%d tid=%d loop=%d [%d,%d) retire=%v}, recorded {t=%d tid=%d loop=%d [%d,%d) retire=%v}",
				i, g.TimeNs, g.Tid, g.Loop, g.Lo, g.Hi, g.Retire,
				w.TimeNs, w.Tid, w.Loop, w.Lo, w.Hi, w.Retire)
		}
	}
	return nil
}

// WhatIfConfig selects the counterfactual of a what-if replay. Zero-value
// fields keep the recorded configuration.
type WhatIfConfig struct {
	// Schedule, when non-empty, runs every loop under this schedule
	// (GOOMP_SCHEDULE syntax). Empty keeps each loop's recorded schedule —
	// which the record must then carry in parseable form.
	Schedule string
	// Policy, when non-empty, selects the fairness policy for multi-loop
	// records: "wrr" or "fcfs".
	Policy string
	// Binding, when non-empty, overrides the binding convention: "BS"/"SB".
	Binding string
	// NThreads, when non-zero, overrides the worker count.
	NThreads int
}

// WhatIf re-executes the recorded workload — trip counts, cost profile,
// platform — under a swapped configuration, in virtual time. The run uses
// real schedulers (not scripts), so it answers how a different runtime
// configuration would have scheduled the same work. It is deterministic:
// the simulator's virtual clock drives the schedulers' sampling machinery,
// so repeated invocations on one record produce byte-identical records.
func WhatIf(rec *trace.Record, wcfg WhatIfConfig) (*Result, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	// A record with grant holes would silently under-cost the replayed
	// workload (missing iterations read as zero work under a piecewise
	// cost), so what-if demands the same integrity as exact replay.
	if err := checkCoverage(rec); err != nil {
		return nil, err
	}
	pl, binding, err := platformOf(rec)
	if err != nil {
		return nil, err
	}
	if wcfg.Binding != "" {
		switch wcfg.Binding {
		case "BS":
			binding = amp.BindBS
		case "SB":
			binding = amp.BindSB
		default:
			return nil, fmt.Errorf("replay: binding %q is neither BS nor SB", wcfg.Binding)
		}
	}
	nthreads := rec.NThreads
	if wcfg.NThreads != 0 {
		nthreads = wcfg.NThreads
	}
	specs, err := specsOf(rec)
	if err != nil {
		return nil, err
	}
	// Resolve one schedule per loop: the override, or the loop's recorded
	// canonical form.
	factories := make([]sim.SchedulerFactory, len(specs))
	schedTexts := make([]string, len(specs))
	for li, l := range rec.Loops {
		text := wcfg.Schedule
		if text == "" {
			text = l.Schedule
		}
		if text == "" {
			return nil, fmt.Errorf("replay: loop %q carries no parseable schedule; pass an explicit what-if schedule", l.Name)
		}
		s, err := rt.ParseSchedule(text)
		if err != nil {
			return nil, err
		}
		schedTexts[li] = s.Canonical()
		factories[li] = s.Factory()
	}
	next := 0
	cfg := sim.Config{
		Platform: pl,
		NThreads: nthreads,
		Binding:  binding,
		FactoryNamed: func(_ string, info core.LoopInfo) (core.Scheduler, error) {
			// Both run paths build loop schedulers in spec order, so a
			// counter maps factory calls to per-loop schedules.
			f := factories[next]
			next++
			return f(info)
		},
		Migrations: migrationsOf(rec),
		Recorder:   trace.NewRecorder(),
	}
	// The fairness policy keeps the recorded configuration unless
	// overridden, like every other zero-value field.
	polName := wcfg.Policy
	if polName == "" {
		polName = rec.Policy
	}
	var policy fair.Policy
	switch polName {
	case "", "wrr":
		policy = fair.NewWeightedRoundRobin(0)
	case "fcfs":
		policy = fair.NewFCFS()
	case "sf-aware":
		policy = fair.NewSFAware(0, 0)
	default:
		return nil, fmt.Errorf("replay: unknown fairness policy %q (wrr, fcfs or sf-aware)", polName)
	}
	res, err := runConfigured(cfg, rec, specs, policy, true)
	if err != nil {
		return nil, err
	}
	for li, text := range schedTexts {
		res.Record.Loops[li].Schedule = text
	}
	return res, nil
}
