package kernels

import (
	"math"
	"testing"
)

func TestMonteCarloPiConverges(t *testing.T) {
	pi := MonteCarloPi(200000, 42)
	if math.Abs(pi-math.Pi) > 0.02 {
		t.Errorf("MonteCarloPi = %v, want ~%v", pi, math.Pi)
	}
}

func TestMonteCarloPiDeterministic(t *testing.T) {
	if MonteCarloPi(1000, 7) != MonteCarloPi(1000, 7) {
		t.Error("MonteCarloPi not deterministic")
	}
	if MonteCarloPi(1000, 7) == MonteCarloPi(1000, 8) {
		t.Error("MonteCarloPi ignores seed")
	}
	if MonteCarloPi(0, 1) != 0 {
		t.Error("MonteCarloPi(0) != 0")
	}
}

func TestMonteCarloPiRangePartitionInvariant(t *testing.T) {
	// Any partition of the sample space must produce the same total.
	const n = 10000
	whole := MonteCarloPiRange(0, n, 99)
	split := MonteCarloPiRange(0, 3000, 99) +
		MonteCarloPiRange(3000, 7777, 99) +
		MonteCarloPiRange(7777, n, 99)
	if whole != split {
		t.Errorf("partitioned sum %d != whole %d", split, whole)
	}
	pi := 4 * float64(whole) / n
	if math.Abs(pi-math.Pi) > 0.1 {
		t.Errorf("range-based pi = %v", pi)
	}
}

func TestBlackScholesCall(t *testing.T) {
	// Reference value: S=100, K=100, T=1, r=0.05, sigma=0.2 -> ~10.4506.
	got := BlackScholesCall(100, 100, 1, 0.05, 0.2)
	if math.Abs(got-10.4506) > 0.001 {
		t.Errorf("BlackScholesCall = %v, want ~10.4506", got)
	}
	// Deep in the money with zero time: intrinsic value.
	if got := BlackScholesCall(150, 100, 0, 0.05, 0.2); got != 50 {
		t.Errorf("expired ITM call = %v, want 50", got)
	}
	if got := BlackScholesCall(50, 100, 0, 0.05, 0.2); got != 0 {
		t.Errorf("expired OTM call = %v, want 0", got)
	}
	// Monotone in spot.
	if BlackScholesCall(110, 100, 1, 0.05, 0.2) <= got {
		t.Error("call price not monotone in spot")
	}
}

func TestGridAndStencil(t *testing.T) {
	src := NewGrid(8, 8)
	dst := NewGrid(8, 8)
	src.Set(4, 4, 100)
	for y := 0; y < 8; y++ {
		StencilRow(dst, src, y, 0.25)
	}
	// Heat spreads to the four neighbours.
	for _, p := range [][2]int{{3, 4}, {5, 4}, {4, 3}, {4, 5}} {
		if dst.At(p[0], p[1]) != 25 {
			t.Errorf("neighbour (%d,%d) = %v, want 25", p[0], p[1], dst.At(p[0], p[1]))
		}
	}
	if dst.At(4, 4) != 0 {
		t.Errorf("center = %v, want 0 (alpha=0.25 fully diffuses)", dst.At(4, 4))
	}
	// Total heat is conserved away from borders.
	var sum float64
	for _, v := range dst.Data {
		sum += v
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("heat not conserved: %v", sum)
	}
}

func TestStencilBordersCopy(t *testing.T) {
	src := NewGrid(5, 5)
	dst := NewGrid(5, 5)
	src.Set(0, 0, 7)
	src.Set(4, 4, 9)
	for y := 0; y < 5; y++ {
		StencilRow(dst, src, y, 0.2)
	}
	if dst.At(0, 0) != 7 || dst.At(4, 4) != 9 {
		t.Error("border cells not copied through")
	}
}

func TestRandomGraphConnected(t *testing.T) {
	g := RandomGraph(500, 6, 11)
	level := make([]int32, 500)
	for i := range level {
		level[i] = -1
	}
	level[0] = 0
	frontier := []int32{0}
	visited := 1
	for depth := int32(1); len(frontier) > 0; depth++ {
		frontier = BFSLevel(g, frontier, level, depth)
		visited += len(frontier)
	}
	if visited != 500 {
		t.Errorf("BFS reached %d/500 vertices; graph must be connected", visited)
	}
}

func TestBFSLevelsMonotone(t *testing.T) {
	g := RandomGraph(200, 4, 5)
	level := make([]int32, 200)
	for i := range level {
		level[i] = -1
	}
	level[0] = 0
	frontier := []int32{0}
	for depth := int32(1); len(frontier) > 0; depth++ {
		frontier = BFSLevel(g, frontier, level, depth)
	}
	// Every vertex's level differs from some neighbour's by exactly 1
	// (BFS tree property), and no vertex is unvisited.
	for v, lv := range level {
		if lv < 0 {
			t.Fatalf("vertex %d unvisited", v)
		}
		if lv == 0 {
			continue
		}
		ok := false
		for _, u := range g.Adj[v] {
			if level[u] == lv-1 {
				ok = true
			}
		}
		if !ok {
			t.Errorf("vertex %d at level %d has no level-%d neighbour", v, lv, lv-1)
		}
	}
}

func TestCSRSpMV(t *testing.T) {
	// Hand-built 3x3: [[2,0,0],[0,3,1],[1,0,1]] times [1,2,3].
	m := &CSR{
		N:      3,
		RowPtr: []int32{0, 1, 3, 5},
		ColIdx: []int32{0, 1, 2, 0, 2},
		Values: []float64{2, 3, 1, 1, 1},
	}
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	for r := 0; r < 3; r++ {
		m.SpMVRow(y, x, r)
	}
	want := []float64{2, 9, 4}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestRandomCSRShape(t *testing.T) {
	m := RandomCSR(100, 8, 3)
	if m.N != 100 || len(m.RowPtr) != 101 {
		t.Fatalf("bad CSR shape: N=%d rows=%d", m.N, len(m.RowPtr))
	}
	if int(m.RowPtr[100]) != len(m.ColIdx) || len(m.ColIdx) != len(m.Values) {
		t.Error("CSR arrays inconsistent")
	}
	for r := 0; r < 100; r++ {
		if m.RowPtr[r+1] < m.RowPtr[r] {
			t.Fatalf("row pointers not monotone at %d", r)
		}
	}
	for _, c := range m.ColIdx {
		if c < 0 || c >= 100 {
			t.Fatalf("column index %d out of range", c)
		}
	}
}
