// Package kernels provides small, real computational kernels used by the
// runnable examples and by the real-goroutine executor tests. Each kernel
// corresponds to one of the workload archetypes in the paper's evaluation:
// Monte-Carlo sampling (NPB EP), option pricing (PARSEC blackscholes), a
// heat-diffusion stencil (Rodinia hotspot), level-synchronous BFS (Rodinia
// bfs) and sparse matrix-vector products (NPB CG).
package kernels

import (
	"math"

	"repro/internal/xrand"
)

// MonteCarloPi estimates π from n pseudo-random points in the unit square,
// using a deterministic stream derived from seed. It is the EP-style kernel:
// every iteration performs the same amount of independent arithmetic.
func MonteCarloPi(n int, seed uint64) float64 {
	if n <= 0 {
		return 0
	}
	rng := xrand.New(seed)
	in := 0
	for i := 0; i < n; i++ {
		x := rng.Float64()
		y := rng.Float64()
		if x*x+y*y <= 1 {
			in++
		}
	}
	return 4 * float64(in) / float64(n)
}

// MonteCarloPiRange processes samples [lo, hi) of the stream for seed and
// returns the hit count, so a parallel loop can partition the sample space
// across worker threads and sum the partial results.
func MonteCarloPiRange(lo, hi int64, seed uint64) int64 {
	var in int64
	for i := lo; i < hi; i++ {
		// Derive a per-sample generator so any partition of [0,n) yields
		// the same total as a sequential run.
		rng := xrand.New(seed ^ uint64(i)*0x9E3779B97F4A7C15)
		x := rng.Float64()
		y := rng.Float64()
		if x*x+y*y <= 1 {
			in++
		}
	}
	return in
}

// BlackScholesCall prices a European call option with the Black-Scholes
// closed form. s is the spot price, k the strike, t the time to maturity in
// years, r the risk-free rate and sigma the volatility.
func BlackScholesCall(s, k, t, r, sigma float64) float64 {
	if t <= 0 || sigma <= 0 {
		if v := s - k; v > 0 {
			return v
		}
		return 0
	}
	d1 := (math.Log(s/k) + (r+sigma*sigma/2)*t) / (sigma * math.Sqrt(t))
	d2 := d1 - sigma*math.Sqrt(t)
	return s*cnd(d1) - k*math.Exp(-r*t)*cnd(d2)
}

// cnd is the cumulative standard normal distribution via math.Erf.
func cnd(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// Grid is a dense 2-D scalar field for the stencil kernel.
type Grid struct {
	W, H int
	Data []float64
}

// NewGrid allocates a W×H grid initialized to zero.
func NewGrid(w, h int) *Grid {
	return &Grid{W: w, H: h, Data: make([]float64, w*h)}
}

// At returns the cell value at (x, y).
func (g *Grid) At(x, y int) float64 { return g.Data[y*g.W+x] }

// Set assigns the cell at (x, y).
func (g *Grid) Set(x, y int, v float64) { g.Data[y*g.W+x] = v }

// StencilRow computes one row of a 5-point heat-diffusion step from src into
// dst with diffusion coefficient alpha in (0, 0.25]. Border cells copy
// through. Rows are independent, so a parallel loop over y reproduces the
// hotspot access pattern (each iteration is one row of inner work).
func StencilRow(dst, src *Grid, y int, alpha float64) {
	w, h := src.W, src.H
	if y == 0 || y == h-1 {
		copy(dst.Data[y*w:(y+1)*w], src.Data[y*w:(y+1)*w])
		return
	}
	for x := 0; x < w; x++ {
		if x == 0 || x == w-1 {
			dst.Set(x, y, src.At(x, y))
			continue
		}
		c := src.At(x, y)
		lap := src.At(x-1, y) + src.At(x+1, y) + src.At(x, y-1) + src.At(x, y+1) - 4*c
		dst.Set(x, y, c+alpha*lap)
	}
}

// Graph is an adjacency-list graph for the BFS kernel.
type Graph struct {
	Adj [][]int32
}

// RandomGraph builds a connected pseudo-random graph with n vertices and
// roughly n*degree edges, deterministically from seed.
func RandomGraph(n, degree int, seed uint64) *Graph {
	rng := xrand.New(seed)
	g := &Graph{Adj: make([][]int32, n)}
	// A spanning path guarantees connectivity.
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		g.Adj[u] = append(g.Adj[u], int32(v))
		g.Adj[v] = append(g.Adj[v], int32(u))
	}
	extra := n * (degree - 2) / 2
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		g.Adj[u] = append(g.Adj[u], int32(v))
		g.Adj[v] = append(g.Adj[v], int32(u))
	}
	return g
}

// BFSLevel expands one BFS frontier: for frontier vertex index i, it scans
// the vertex's neighbours and claims unvisited ones into next using the
// level array (level < 0 means unvisited). It returns the claimed vertices.
// Iterations have irregular cost (degree-dependent), the bfs workload's
// defining property.
func BFSLevel(g *Graph, frontier []int32, level []int32, depth int32) []int32 {
	var next []int32
	for _, u := range frontier {
		for _, v := range g.Adj[u] {
			if level[v] < 0 {
				level[v] = depth
				next = append(next, v)
			}
		}
	}
	return next
}

// CSR is a sparse matrix in compressed-sparse-row form.
type CSR struct {
	N      int
	RowPtr []int32
	ColIdx []int32
	Values []float64
}

// RandomCSR builds an n×n sparse matrix with about nnzPerRow non-zeros per
// row, deterministically from seed.
func RandomCSR(n, nnzPerRow int, seed uint64) *CSR {
	rng := xrand.New(seed)
	m := &CSR{N: n, RowPtr: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		nnz := 1 + rng.Intn(2*nnzPerRow)
		for j := 0; j < nnz; j++ {
			m.ColIdx = append(m.ColIdx, int32(rng.Intn(n)))
			m.Values = append(m.Values, rng.Float64()*2-1)
		}
		m.RowPtr[i+1] = int32(len(m.ColIdx))
	}
	return m
}

// SpMVRow computes one row of y = A·x. Row costs vary with the row's
// non-zero count, mirroring CG's irregular per-iteration work.
func (m *CSR) SpMVRow(y, x []float64, row int) {
	sum := 0.0
	for k := m.RowPtr[row]; k < m.RowPtr[row+1]; k++ {
		sum += m.Values[k] * x[m.ColIdx[k]]
	}
	y[row] = sum
}
