package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c == 0 {
			t.Errorf("value %d never produced", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpMoments(t *testing.T) {
	r := New(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Exp()
		if x < 0 {
			t.Fatalf("Exp produced negative value %v", x)
		}
		sum += x
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(123)
	child := parent.Split()
	// The two streams should not be identical.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("parent/child streams overlap in %d of 100 draws", same)
	}
}

func TestLnAgainstMathLog(t *testing.T) {
	f := func(raw uint32) bool {
		u := (float64(raw) + 1) / (float64(math.MaxUint32) + 2) // (0,1)
		return math.Abs(ln(u)-math.Log(u)) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Rand
	// Must not panic and must produce values.
	_ = r.Uint64()
	_ = r.Float64()
}
