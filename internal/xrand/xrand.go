// Package xrand implements a small, allocation-free, deterministic PRNG
// (SplitMix64) used everywhere the reproduction needs randomness: iteration
// cost noise, workload generation, and property tests. Unlike math/rand it
// has no global state, so two experiments with the same seed produce
// bit-identical streams regardless of package initialization order or
// goroutine interleaving.
package xrand

// Rand is a SplitMix64 generator. The zero value is a valid generator seeded
// with 0; use New to seed explicitly.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high-quality bits -> [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns an approximately standard-normal variate using the
// sum-of-uniforms (Irwin–Hall, n=12) method. The tails are clipped at ±6,
// which is adequate for cost-noise modeling and avoids math.Log/Sqrt in the
// hot path.
func (r *Rand) NormFloat64() float64 {
	sum := 0.0
	for i := 0; i < 12; i++ {
		sum += r.Float64()
	}
	return sum - 6
}

// Exp returns an approximately exponential variate with mean 1 generated via
// inverse transform on a uniform sample. Used for heavy-tailed iteration
// costs (leukocyte/particlefilter models).
func (r *Rand) Exp() float64 {
	u := r.Float64()
	// Avoid log(0).
	if u < 1e-15 {
		u = 1e-15
	}
	return -ln(u)
}

// Split derives an independent generator from the current one. Streams from
// the parent and child do not overlap for practical sequence lengths.
func (r *Rand) Split() *Rand {
	return &Rand{state: r.Uint64() ^ 0xDEADBEEFCAFEF00D}
}

// ln is a minimal natural-log implementation over (0,1] adequate for Exp.
// It uses the identity ln(u) = ln(m) + e*ln(2) after decomposing u = m*2^e
// with m in [1,2), then an atanh-series for ln(m). Max abs error < 1e-9 on
// (0,1], which is far below the noise this package models.
func ln(u float64) float64 {
	const ln2 = 0.6931471805599453
	e := 0
	for u < 1 {
		u *= 2
		e--
	}
	for u >= 2 {
		u /= 2
		e++
	}
	// u in [1,2): ln(u) = 2*atanh((u-1)/(u+1))
	t := (u - 1) / (u + 1)
	t2 := t * t
	s := t
	term := t
	for i := 3; i < 30; i += 2 {
		term *= t2
		s += term / float64(i)
	}
	return 2*s + float64(e)*ln2
}
