package amp

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// randomPlatform builds a random valid platform through New, the way every
// real platform is built: decreasing per-cluster compute speed, positive
// finite rates, a random package assignment.
func randomPlatform(rng *rand.Rand) *Platform {
	ncl := 1 + rng.Intn(4)
	clusters := make([]Cluster, ncl)
	speed := 4.0 + rng.Float64()
	for i := range clusters {
		freq := 0.8 + 0.4*rng.Float64()
		duty := 0.5 + 0.5*rng.Float64()
		// Flat IPC response pins ComputeSpeed(0.5) to the strictly
		// decreasing series, so the generated clusters are always big-first.
		ipc := speed / (freq * duty)
		clusters[i] = Cluster{
			Type: CoreType{
				Name:      "ct",
				FreqGHz:   freq,
				DutyCycle: duty,
				IPCScalar: ipc,
				IPCMax:    ipc,
				MemGBps:   0.5 + 4*rng.Float64(),
				ActiveW:   0.1 + 5*rng.Float64(),
				IdleW:     0.01 + 0.2*rng.Float64(),
			},
			NumCores:  1 + rng.Intn(4),
			LLCMB:     rng.Float64() * 8,
			MissSlope: rng.Float64(),
			SatGBps:   rng.Float64() * 10,
			Package:   rng.Intn(2),
		}
		speed *= 0.4 + 0.4*rng.Float64() // strictly shrinking
	}
	ov := Overheads{
		PoolAccessNs:      rng.Float64() * 200,
		ContentionNs:      rng.Float64() * 100,
		LocalityPenaltyNs: rng.Float64() * 300,
		LocalityForeignNs: rng.Float64() * 400,
		LocalityRemoteNs:  rng.Float64() * 600,
		ForkJoinNs:        rng.Float64() * 10000,
		TimestampNs:       rng.Float64() * 50,
	}
	p, err := New("random", clusters, ov)
	if err != nil {
		panic(err)
	}
	return p
}

// TestPlatformJSONRoundTrip is the codec's property test:
// decode(encode(p)) == p for randomly generated valid platforms and for
// every zoo preset, including the derived flattened core table.
func TestPlatformJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ps []*Platform
	for i := 0; i < 200; i++ {
		ps = append(ps, randomPlatform(rng))
	}
	for _, name := range Names() {
		p, ok := Lookup(name)
		if !ok {
			t.Fatalf("registry name %q does not resolve", name)
		}
		ps = append(ps, p)
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Fatalf("generated platform invalid: %v", err)
		}
		data, err := p.EncodeJSON()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		q, err := DecodeJSON(data)
		if err != nil {
			t.Fatalf("decode: %v\n%s", err, data)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("round trip changed the platform:\n%+v\nvs\n%+v", p, q)
		}
	}
}

func TestLoadFileRoundTrip(t *testing.T) {
	p := PlatformCluster()
	data, err := p.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	q, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("LoadFile changed the platform")
	}
	// Resolve accepts both registry names and file paths.
	if r, err := Resolve(path); err != nil || !reflect.DeepEqual(r, p) {
		t.Fatalf("Resolve(path) = %v, err %v", r, err)
	}
	if r, err := Resolve("cluster"); err != nil || !reflect.DeepEqual(r, p) {
		t.Fatalf("Resolve(name) err %v", err)
	}
	if _, err := Resolve("no-such-platform"); err == nil {
		t.Fatal("Resolve of an unknown name should fail")
	}
}

// TestValidateRejections covers the malformations a platform file can carry.
func TestValidateRejections(t *testing.T) {
	valid := func() *Platform { return PlatformA() }
	cases := []struct {
		name string
		mut  func(p *Platform)
		want string
	}{
		{"zero-core cluster", func(p *Platform) { p.Clusters[1].NumCores = 0 }, "cores"},
		{"nan freq", func(p *Platform) { p.Clusters[0].Type.FreqGHz = math.NaN() }, "frequency"},
		{"negative freq", func(p *Platform) { p.Clusters[0].Type.FreqGHz = -2 }, "frequency"},
		{"inf freq", func(p *Platform) { p.Clusters[0].Type.FreqGHz = math.Inf(1) }, "frequency"},
		{"duty over 1", func(p *Platform) { p.Clusters[0].Type.DutyCycle = 1.5 }, "duty"},
		{"zero duty", func(p *Platform) { p.Clusters[0].Type.DutyCycle = 0 }, "duty"},
		{"nan ipc", func(p *Platform) { p.Clusters[0].Type.IPCScalar = math.NaN() }, "IPC"},
		{"zero mem", func(p *Platform) { p.Clusters[0].Type.MemGBps = 0 }, "memory"},
		{"negative watts", func(p *Platform) { p.Clusters[0].Type.ActiveW = -1 }, "power"},
		{"negative package", func(p *Platform) { p.Clusters[0].Package = -1 }, "package"},
		{"negative overhead", func(p *Platform) { p.Overhead.ContentionNs = -5 }, "overhead"},
		{"nan overhead", func(p *Platform) { p.Overhead.LocalityRemoteNs = math.NaN() }, "overhead"},
		{"not big-first", func(p *Platform) { p.Clusters[0], p.Clusters[1] = p.Clusters[1], p.Clusters[0] }, "big-first"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := valid()
			c.mut(p)
			err := p.Validate()
			if err == nil {
				t.Fatalf("Validate accepted a platform with %s", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
	// The same malformations must be rejected at decode time.
	p := valid()
	p.Clusters[1].NumCores = 0
	data, err := p.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeJSON(data); err == nil {
		t.Fatal("DecodeJSON accepted a zero-core cluster")
	}
	if _, err := DecodeJSON([]byte("not json")); err == nil {
		t.Fatal("DecodeJSON accepted garbage")
	}
}

func TestZooPresetsValid(t *testing.T) {
	want := []string{"A", "B", "Tri", "Cluster", "Hybrid"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range Names() {
		p, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		// The energy model must be populated: every cluster draws power.
		for ci, c := range p.Clusters {
			if c.Type.ActiveW <= 0 || c.Type.IdleW <= 0 {
				t.Errorf("preset %s cluster %d has no power model: %+v", name, ci, c.Type)
			}
			if c.Type.IdleW >= c.Type.ActiveW {
				t.Errorf("preset %s cluster %d idles above active draw", name, ci)
			}
		}
		// The locality tiers must escalate with distance.
		ov := p.Overhead
		if !(ov.LocalityPenaltyNs < ov.LocalityForeignNs && ov.LocalityForeignNs < ov.LocalityRemoteNs) {
			t.Errorf("preset %s locality tiers do not escalate: %+v", name, ov)
		}
	}
	// Lookup is case-insensitive; fresh instances do not alias.
	p1, _ := Lookup("CLUSTER")
	p2, _ := Lookup("cluster")
	if p1 == p2 {
		t.Fatal("Lookup returned aliased instances")
	}
}

func TestClusterDist(t *testing.T) {
	p := PlatformCluster() // clusters: big(pkg0), big(pkg1), little(pkg0), little(pkg1)
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 2, 1}, {0, 1, 2}, {0, 3, 2}, {1, 3, 1}, {2, 3, 2},
	}
	for _, c := range cases {
		if got := p.ClusterDist(c.a, c.b); got != c.want {
			t.Errorf("ClusterDist(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := p.ClusterDist(c.b, c.a); got != c.want {
			t.Errorf("ClusterDist not symmetric at (%d,%d)", c.b, c.a)
		}
	}
	d := p.TypeDist()
	if len(d) != 4 || d[0][2] != 1 || d[0][1] != 2 {
		t.Errorf("TypeDist malformed: %v", d)
	}
	// Single-package platforms never reach distance 2.
	for _, row := range PlatformHybrid().TypeDist() {
		for _, v := range row {
			if v > 1 {
				t.Errorf("Hybrid (one package) has distance %d", v)
			}
		}
	}
}

func TestZooTopologies(t *testing.T) {
	cl := PlatformCluster()
	if cl.NumCores() != 8 || len(cl.Clusters) != 4 || cl.NumBig() != 2 {
		t.Errorf("Cluster topology: %d cores, %d clusters, %d big", cl.NumCores(), len(cl.Clusters), cl.NumBig())
	}
	hy := PlatformHybrid()
	if hy.NumCores() != 12 || len(hy.Clusters) != 3 || hy.NumBig() != 4 {
		t.Errorf("Hybrid topology: %d cores, %d clusters, %d big", hy.NumCores(), len(hy.Clusters), hy.NumBig())
	}
	// Both presets keep the big-core advantage the schedulers depend on.
	for _, p := range []*Platform{cl, hy} {
		if sf := p.OfflineSF(Profile{ILP: 0.9}); sf <= 1.2 {
			t.Errorf("%s compute SF = %v, want clearly above 1", p.Name, sf)
		}
	}
}
