package amp

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// platformFile is the serialized shape of a platform description: exactly
// the three public fields of Platform. The flattened core table is derived,
// so it is rebuilt by New on decode.
type platformFile struct {
	Name     string
	Clusters []Cluster
	Overhead Overheads
}

// EncodeJSON serializes the platform description as indented JSON — the
// platform-file format Resolve and LoadFile read back. Only the description
// is written (name, clusters, overheads); derived state is recomputed on
// decode, so decode(encode(p)) reproduces p exactly for any platform built
// by New.
func (p *Platform) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(platformFile{Name: p.Name, Clusters: p.Clusters, Overhead: p.Overhead}, "", "  ")
}

// DecodeJSON parses a platform file, rebuilds the platform through New
// (which fills defaulted energy/locality fields) and rejects descriptions
// that fail Validate.
func DecodeJSON(data []byte) (*Platform, error) {
	var pf platformFile
	if err := json.Unmarshal(data, &pf); err != nil {
		return nil, fmt.Errorf("amp: parsing platform file: %w", err)
	}
	p, err := New(pf.Name, pf.Clusters, pf.Overhead)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// LoadFile reads a platform file from disk (see DecodeJSON).
func LoadFile(path string) (*Platform, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("amp: reading platform file: %w", err)
	}
	p, err := DecodeJSON(data)
	if err != nil {
		return nil, fmt.Errorf("amp: %s: %w", path, err)
	}
	return p, nil
}

// registry maps the zoo's short names to preset constructors. Constructors,
// not instances: every Lookup returns a fresh platform, so callers can
// never alias each other's overhead tweaks.
var registry = map[string]func() *Platform{
	"a":       PlatformA,
	"b":       PlatformB,
	"tri":     PlatformTri,
	"cluster": PlatformCluster,
	"hybrid":  PlatformHybrid,
}

// Lookup resolves a registry name (case-insensitive) to a fresh platform.
func Lookup(name string) (*Platform, bool) {
	f, ok := registry[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return f(), true
}

// Names returns the registry's platform names, the two-cluster paper
// machines first, then alphabetically.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	canon := []string{"A", "B", "Tri", "Cluster", "Hybrid"}
	out := make([]string, 0, len(names))
	for _, c := range canon {
		if _, ok := registry[strings.ToLower(c)]; ok {
			out = append(out, c)
		}
	}
	for _, n := range names {
		known := false
		for _, c := range canon {
			if strings.EqualFold(c, n) {
				known = true
			}
		}
		if !known {
			out = append(out, n)
		}
	}
	return out
}

// Resolve is the shared -platform flag helper used by every command: the
// argument is either a registry name (see Names) or a path to a platform
// file. Registry names win; anything else must name a readable file.
func Resolve(nameOrPath string) (*Platform, error) {
	if p, ok := Lookup(nameOrPath); ok {
		return p, nil
	}
	if _, err := os.Stat(nameOrPath); err == nil {
		return LoadFile(nameOrPath)
	}
	return nil, fmt.Errorf("amp: unknown platform %q (registry: %s; or pass a platform-file path)",
		nameOrPath, strings.Join(Names(), ", "))
}

// PlatformCluster returns a dual-package big.LITTLE: two identical big
// clusters and two identical little clusters, one of each per package, every
// cluster with its own private LLC. It is the zoo's cross-package machine —
// a chunk handed off between packages pays the remote locality tier, and the
// nearest-victim steal order prefers the same-package sibling over the twin
// cluster on the other die.
func PlatformCluster() *Platform {
	big := func(pkg int) Cluster {
		return Cluster{
			Type: CoreType{
				Name:      "big",
				FreqGHz:   2.4,
				DutyCycle: 1.0,
				IPCScalar: 1.05,
				IPCMax:    3.4,
				MemGBps:   2.0,
				ActiveW:   2.2,
				IdleW:     0.2,
			},
			NumCores:  2,
			LLCMB:     1.5,
			MissSlope: 0.65,
			SatGBps:   2.1,
			Package:   pkg,
		}
	}
	little := func(pkg int) Cluster {
		return Cluster{
			Type: CoreType{
				Name:      "little",
				FreqGHz:   1.6,
				DutyCycle: 1.0,
				IPCScalar: 0.72,
				IPCMax:    0.58,
				MemGBps:   1.5,
				ActiveW:   0.4,
				IdleW:     0.04,
			},
			NumCores:  2,
			LLCMB:     0.5,
			MissSlope: 0.45,
			SatGBps:   1.9,
			Package:   pkg,
		}
	}
	ov := Overheads{
		PoolAccessNs:      115,
		ContentionNs:      100,
		LocalityPenaltyNs: 150,
		LocalityForeignNs: 230,
		LocalityRemoteNs:  430, // cross-die cache-line transfer
		ForkJoinNs:        8500,
		TimestampNs:       28,
	}
	p, err := New("Cluster (dual-package big.LITTLE, private LLCs)",
		[]Cluster{big(0), big(1), little(0), little(1)}, ov)
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return p
}

// PlatformHybrid returns a P/E-core hybrid desktop in the style of a
// big-little x86 part: four wide P cores and two four-core E clusters, each
// E cluster sharing a private L2 that acts as its LLC slice, all on one
// package. Its 12 cores and 3 clusters make it the zoo's widest machine.
func PlatformHybrid() *Platform {
	pcore := Cluster{
		Type: CoreType{
			Name:      "P-core",
			FreqGHz:   3.2,
			DutyCycle: 1.0,
			IPCScalar: 1.4,
			IPCMax:    4.2,
			MemGBps:   5.2,
			ActiveW:   9.0,
			IdleW:     0.8,
		},
		NumCores:  4,
		LLCMB:     10.0,
		MissSlope: 0.2,
		SatGBps:   11.0,
	}
	ecluster := Cluster{
		Type: CoreType{
			Name:      "E-core",
			FreqGHz:   2.4,
			DutyCycle: 1.0,
			IPCScalar: 1.1,
			IPCMax:    2.3,
			MemGBps:   3.4,
			ActiveW:   2.4,
			IdleW:     0.25,
		},
		NumCores:  4,
		LLCMB:     2.0, // the E cluster's shared L2
		MissSlope: 0.35,
		SatGBps:   9.0,
	}
	ov := Overheads{
		PoolAccessNs:      80,
		ContentionNs:      85,
		LocalityPenaltyNs: 120,
		LocalityForeignNs: 190,
		LocalityRemoteNs:  320,
		ForkJoinNs:        4800,
		TimestampNs:       16,
	}
	p, err := New("Hybrid (4 P + 2x4 E-core desktop)",
		[]Cluster{pcore, ecluster, ecluster}, ov)
	if err != nil {
		panic(err)
	}
	return p
}
