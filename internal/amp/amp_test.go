package amp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProfileValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Profile
		ok   bool
	}{
		{"zero", Profile{}, true},
		{"typical", Profile{ILP: 0.7, MemIntensity: 0.2, FootprintMB: 1}, true},
		{"bounds", Profile{ILP: 1, MemIntensity: 1}, true},
		{"ilp-low", Profile{ILP: -0.1}, false},
		{"ilp-high", Profile{ILP: 1.1}, false},
		{"mem-low", Profile{MemIntensity: -0.1}, false},
		{"mem-high", Profile{MemIntensity: 1.5}, false},
		{"neg-footprint", Profile{FootprintMB: -1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.p.Validate()
			if (err == nil) != c.ok {
				t.Errorf("Validate(%+v) err=%v, ok=%v", c.p, err, c.ok)
			}
		})
	}
}

func TestCoreTypeIPCInterpolates(t *testing.T) {
	ct := CoreType{IPCScalar: 1, IPCMax: 3}
	if got := ct.IPC(0); got != 1 {
		t.Errorf("IPC(0) = %v, want 1", got)
	}
	if got := ct.IPC(1); got != 3 {
		t.Errorf("IPC(1) = %v, want 3", got)
	}
	// Cubic response: IPC(0.5) = scalar + (max-scalar)*0.125.
	if got := ct.IPC(0.5); got != 1.25 {
		t.Errorf("IPC(0.5) = %v, want 1.25", got)
	}
	// Monotone non-decreasing when IPCMax >= IPCScalar.
	prev := 0.0
	for ilp := 0.0; ilp <= 1.0; ilp += 0.05 {
		if got := ct.IPC(ilp); got < prev {
			t.Errorf("IPC not monotone at ilp=%v: %v < %v", ilp, got, prev)
		} else {
			prev = got
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("empty", nil, Overheads{}); err == nil {
		t.Error("New with no clusters should fail")
	}
	bad := []Cluster{{Type: CoreType{}, NumCores: 0}}
	if _, err := New("zero-cores", bad, Overheads{}); err == nil {
		t.Error("New with zero-core cluster should fail")
	}
}

func TestPlatformTopologyA(t *testing.T) {
	p := PlatformA()
	if p.NumCores() != 8 || p.NumBig() != 4 || p.NumSmall() != 4 {
		t.Fatalf("Platform A topology: cores=%d big=%d small=%d",
			p.NumCores(), p.NumBig(), p.NumSmall())
	}
	// Paper convention: CPUs 0-3 are small, CPUs 4-7 are big.
	for cpu := 0; cpu < 4; cpu++ {
		if p.IsBig(cpu) {
			t.Errorf("CPU %d should be small", cpu)
		}
	}
	for cpu := 4; cpu < 8; cpu++ {
		if !p.IsBig(cpu) {
			t.Errorf("CPU %d should be big", cpu)
		}
	}
}

func TestBindings(t *testing.T) {
	p := PlatformA()
	// SB: ascending by thread ID -> thread 0 on CPU 0 (small).
	if cpu := p.CoreOf(0, 8, BindSB); cpu != 0 || p.IsBig(cpu) {
		t.Errorf("SB thread 0 -> CPU %d (big=%v), want CPU 0 small", cpu, p.IsBig(cpu))
	}
	// BS: descending -> thread 0 on CPU 7 (big).
	if cpu := p.CoreOf(0, 8, BindBS); cpu != 7 || !p.IsBig(cpu) {
		t.Errorf("BS thread 0 -> CPU %d (big=%v), want CPU 7 big", cpu, p.IsBig(cpu))
	}
	// Under BS, threads 0..NB-1 are on big cores (AID's assumption, §4.3).
	for tid := 0; tid < 4; tid++ {
		if !p.IsBig(p.CoreOf(tid, 8, BindBS)) {
			t.Errorf("BS thread %d not on big core", tid)
		}
	}
	for tid := 4; tid < 8; tid++ {
		if p.IsBig(p.CoreOf(tid, 8, BindBS)) {
			t.Errorf("BS thread %d not on small core", tid)
		}
	}
	if n := p.BigThreads(8, BindBS); n != 4 {
		t.Errorf("BigThreads(8, BS) = %d, want 4", n)
	}
	if n := p.BigThreads(8, BindSB); n != 4 {
		t.Errorf("BigThreads(8, SB) = %d, want 4", n)
	}
	// 4-thread runs: BS gives all-big, SB gives all-small.
	if n := p.BigThreads(4, BindBS); n != 4 {
		t.Errorf("BigThreads(4, BS) = %d, want 4", n)
	}
	if n := p.BigThreads(4, BindSB); n != 0 {
		t.Errorf("BigThreads(4, SB) = %d, want 0", n)
	}
}

func TestCoreOfPanics(t *testing.T) {
	p := PlatformA()
	for _, c := range []struct {
		name          string
		tid, nthreads int
	}{
		{"tid-negative", -1, 8},
		{"tid-too-big", 8, 8},
		{"nthreads-zero", 0, 0},
		{"nthreads-over", 0, 9},
	} {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("CoreOf(%d,%d) did not panic", c.tid, c.nthreads)
				}
			}()
			p.CoreOf(c.tid, c.nthreads, BindBS)
		})
	}
}

func TestSFRangePlatformA(t *testing.T) {
	p := PlatformA()
	// High-ILP compute-bound code: SF should be large (paper: up to ~8.9).
	hi := p.OfflineSF(Profile{ILP: 1, MemIntensity: 0})
	if hi < 6.5 || hi > 9.5 {
		t.Errorf("Platform A compute SF = %v, want within [6.5, 9.5]", hi)
	}
	// Memory-bound code: SF should be modest (~1.2-1.5).
	lo := p.OfflineSF(Profile{ILP: 0, MemIntensity: 1})
	if lo < 1.0 || lo > 1.6 {
		t.Errorf("Platform A memory SF = %v, want within [1.0, 1.6]", lo)
	}
	if hi <= lo {
		t.Errorf("compute SF %v should exceed memory SF %v", hi, lo)
	}
}

func TestSFRangePlatformB(t *testing.T) {
	p := PlatformB()
	// Paper: SF on Platform B spans roughly 1.7-2.3 (Fig 2b/2d).
	hi := p.OfflineSF(Profile{ILP: 1, MemIntensity: 0})
	if hi < 2.0 || hi > 2.45 {
		t.Errorf("Platform B compute SF = %v, want within [2.0, 2.45]", hi)
	}
	lo := p.OfflineSF(Profile{ILP: 0, MemIntensity: 1})
	if lo < 1.55 || lo > 1.9 {
		t.Errorf("Platform B memory SF = %v, want within [1.55, 1.9]", lo)
	}
	// The max big-to-small speedup is substantially smaller on B than A (§5A).
	if amax := PlatformA().OfflineSF(Profile{ILP: 1}); amax <= hi {
		t.Errorf("Platform A max SF (%v) should exceed Platform B max SF (%v)", amax, hi)
	}
}

func TestSFMonotonicInILP(t *testing.T) {
	// On Platform A, more ILP means bigger big-core advantage.
	p := PlatformA()
	f := func(rawA, rawB uint8) bool {
		a := float64(rawA) / 255
		b := float64(rawB) / 255
		if a > b {
			a, b = b, a
		}
		sfA := p.OfflineSF(Profile{ILP: a})
		sfB := p.OfflineSF(Profile{ILP: b})
		return sfB >= sfA-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSFDecreasesWithMemIntensity(t *testing.T) {
	p := PlatformA()
	prev := math.Inf(1)
	for m := 0.0; m <= 1.0; m += 0.1 {
		sf := p.OfflineSF(Profile{ILP: 0.8, MemIntensity: m})
		if sf > prev+1e-9 {
			t.Errorf("SF increased with MemIntensity at m=%v: %v > %v", m, sf, prev)
		}
		prev = sf
	}
}

func TestLLCContentionReducesSF(t *testing.T) {
	// The blackscholes effect (§5C, Fig 9c): a cache-hungry profile shows a
	// high SF in single-threaded (offline) measurement but a much lower SF
	// when all 8 threads contend for the LLCs.
	p := PlatformA()
	prof := Profile{ILP: 0.9, MemIntensity: 0.1, FootprintMB: 0.9}
	offline := p.OfflineSF(prof)
	online := p.SF(prof, 4, 4)
	if online >= offline {
		t.Errorf("contended SF (%v) should be below offline SF (%v)", online, offline)
	}
	if offline/online < 1.5 {
		t.Errorf("contention effect too weak: offline=%v online=%v", offline, online)
	}
}

func TestNoContentionForPureComputeCode(t *testing.T) {
	// Pure compute code (no memory component, no footprint) sees neither
	// LLC contention nor DRAM saturation: SF is thread-count independent.
	p := PlatformA()
	prof := Profile{ILP: 0.5} // MemIntensity = 0, FootprintMB = 0
	if got, want := p.SF(prof, 4, 4), p.OfflineSF(prof); math.Abs(got-want) > 1e-12 {
		t.Errorf("pure-compute SF changed under contention: %v vs %v", got, want)
	}
}

func TestDRAMSaturationCompressesMemoryBoundSF(t *testing.T) {
	// Memory-bound code saturates the shared DRAM at 4 threads per cluster;
	// the cap is core-type independent, so the 8-thread SF drops below the
	// offline SF (the §5C effect, generalized).
	p := PlatformA()
	prof := Profile{ILP: 0.5, MemIntensity: 0.5}
	offline := p.OfflineSF(prof)
	online := p.SF(prof, 4, 4)
	if online >= offline {
		t.Errorf("saturated SF (%v) should be below offline SF (%v)", online, offline)
	}
}

func TestSpeedPositive(t *testing.T) {
	for _, p := range []*Platform{PlatformA(), PlatformB()} {
		f := func(ilpRaw, memRaw, fpRaw uint8, cpuRaw uint8, nActRaw uint8) bool {
			prof := Profile{
				ILP:          float64(ilpRaw) / 255,
				MemIntensity: float64(memRaw) / 255,
				FootprintMB:  float64(fpRaw) / 64,
			}
			cpu := int(cpuRaw) % p.NumCores()
			nAct := 1 + int(nActRaw)%4
			s := p.Speed(cpu, prof, nAct)
			return s > 0 && !math.IsInf(s, 0) && !math.IsNaN(s)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("platform %s: %v", p.Name, err)
		}
	}
}

func TestBigAlwaysAtLeastAsFast(t *testing.T) {
	// For any profile without contention asymmetry, a big core is at least
	// as fast as a small one on the same platform.
	for _, p := range []*Platform{PlatformA(), PlatformB()} {
		f := func(ilpRaw, memRaw uint8) bool {
			prof := Profile{
				ILP:          float64(ilpRaw) / 255,
				MemIntensity: float64(memRaw) / 255,
			}
			return p.SF(prof, 1, 1) >= 1.0-1e-9
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("platform %s: %v", p.Name, err)
		}
	}
}

func TestBindingString(t *testing.T) {
	if BindSB.String() != "SB" || BindBS.String() != "BS" {
		t.Errorf("Binding.String: got %q, %q", BindSB, BindBS)
	}
}

func TestOverheadsPopulated(t *testing.T) {
	for _, p := range []*Platform{PlatformA(), PlatformB()} {
		ov := p.Overhead
		if ov.PoolAccessNs <= 0 || ov.ContentionNs <= 0 || ov.LocalityPenaltyNs <= 0 ||
			ov.ForkJoinNs <= 0 || ov.TimestampNs <= 0 {
			t.Errorf("platform %s has unpopulated overheads: %+v", p.Name, ov)
		}
	}
	// ARM atomics are modeled as more expensive than x86 ones.
	if PlatformA().Overhead.PoolAccessNs <= PlatformB().Overhead.PoolAccessNs {
		t.Error("expected Platform A pool access to cost more than Platform B")
	}
}

func TestPlatformTriTopology(t *testing.T) {
	p := PlatformTri()
	if p.NumCores() != 8 {
		t.Fatalf("Tri has %d cores, want 8", p.NumCores())
	}
	if len(p.Clusters) != 3 {
		t.Fatalf("Tri has %d clusters, want 3", len(p.Clusters))
	}
	// Flattening puts the smallest cluster at the lowest CPU numbers:
	// CPUs 0-2 little (cluster 2), 3-5 middle (cluster 1), 6-7 prime (0).
	wantCluster := []int{2, 2, 2, 1, 1, 1, 0, 0}
	for cpu, want := range wantCluster {
		if got := p.ClusterOf(cpu); got != want {
			t.Errorf("CPU %d in cluster %d, want %d", cpu, got, want)
		}
	}
	// Only cluster 0 counts as "big".
	if p.NumBig() != 2 || p.NumSmall() != 6 {
		t.Errorf("big/small counts: %d/%d, want 2/6", p.NumBig(), p.NumSmall())
	}
}

func TestPlatformTriSpeedOrdering(t *testing.T) {
	p := PlatformTri()
	// For any profile, prime >= middle >= little (single thread active).
	f := func(ilpRaw, memRaw uint8) bool {
		prof := Profile{ILP: float64(ilpRaw) / 255, MemIntensity: float64(memRaw) / 255}
		prime := p.Speed(7, prof, 1)
		middle := p.Speed(4, prof, 1)
		little := p.Speed(0, prof, 1)
		return prime >= middle-1e-12 && middle >= little-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlatformTriBSBinding(t *testing.T) {
	p := PlatformTri()
	// Under BS with 8 threads: threads 0-1 on prime, 2-4 middle, 5-7 little.
	wantCluster := []int{0, 0, 1, 1, 1, 2, 2, 2}
	for tid, want := range wantCluster {
		cpu := p.CoreOf(tid, 8, BindBS)
		if got := p.ClusterOf(cpu); got != want {
			t.Errorf("BS thread %d on cluster %d, want %d", tid, got, want)
		}
	}
}
