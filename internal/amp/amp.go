// Package amp models single-ISA asymmetric multicore processors (AMPs): core
// types with different frequency, microarchitecture (in-order vs
// out-of-order IPC), duty cycle, and per-cluster last-level caches with a
// contention model.
//
// The package reproduces the two evaluation platforms from the paper (§5):
//
//   - Platform A: the Odroid-XU4 board — an ARM big.LITTLE with four
//     out-of-order Cortex-A15 cores at 2.0 GHz sharing a 2 MB LLC and four
//     in-order Cortex-A7 cores at 1.5 GHz sharing a 512 KB LLC.
//   - Platform B: an emulated AMP built from an Intel Xeon E5-2620 v4 —
//     four "fast" cores at 2.1 GHz and four "slow" cores throttled to the
//     1.2 GHz P-state at 87.5% duty cycle, all sharing a 20 MB LLC.
//
// The central quantity in the paper is the speedup factor (SF): the ratio of
// completion times of the same code on a small vs a big core. SF is loop
// specific (Fig. 2) because it depends on the loop's instruction mix. Here
// the mix is described by a Profile, and SF *emerges* from the speed model —
// the runtime system never reads it and must estimate it online, exactly as
// libgomp must on real hardware.
//
// # Platform zoo and platform files
//
// Beyond the paper's two machines the package keeps a registry of named
// platforms — the "zoo" — so every command and experiment can run on any of
// them. Lookup resolves a registry name, Names lists them, and Resolve
// additionally accepts a path to a platform file. The current registry:
//
//	A        Odroid-XU4 big.LITTLE (4x Cortex-A15 + 4x Cortex-A7)
//	B        emulated Xeon E5-2620 v4 AMP (4 fast + 4 throttled cores)
//	Tri      DynamIQ-style tri-gear (2 prime + 3 middle + 3 little)
//	Cluster  dual-package big.LITTLE, two big + two little clusters with
//	         private per-cluster LLCs (exercises the cross-package tier)
//	Hybrid   P/E-core hybrid desktop (4 P cores + two 4-core E clusters)
//
// A platform file is the JSON encoding produced by Platform.EncodeJSON: an
// object with "Name" (string), "Clusters" (ordered big-first; each cluster
// carries its CoreType, NumCores, LLCMB, MissSlope, SatGBps and Package) and
// "Overhead" (the runtime cost constants). DecodeJSON/LoadFile rebuild the
// platform through New — which fills defaulted energy and tiered-locality
// fields — and reject files that fail Validate (zero-core clusters,
// non-finite frequencies, clusters not ordered big-first, ...).
package amp

import (
	"fmt"
	"math"
)

// Profile characterizes the instruction mix of a piece of code (one parallel
// loop, or a serial phase). It determines the per-core-type execution speed
// and therefore the loop's big-to-small speedup factor.
type Profile struct {
	// ILP in [0,1] is the fraction of exploitable instruction-level
	// parallelism. Out-of-order big cores convert high ILP into high IPC;
	// in-order small cores mostly cannot.
	ILP float64
	// MemIntensity in [0,1] is the fraction of execution that is bound on
	// the memory hierarchy rather than the pipeline. Memory-bound code sees
	// small big-to-small speedups (DRAM is symmetric).
	MemIntensity float64
	// FootprintMB is the per-thread working-set size. When the sum of
	// active footprints exceeds a cluster's LLC, extra misses push the
	// effective memory intensity up (the blackscholes effect of §5C).
	FootprintMB float64
}

// Validate reports whether the profile fields are inside their domains.
func (p Profile) Validate() error {
	if p.ILP < 0 || p.ILP > 1 {
		return fmt.Errorf("amp: ILP %v out of [0,1]", p.ILP)
	}
	if p.MemIntensity < 0 || p.MemIntensity > 1 {
		return fmt.Errorf("amp: MemIntensity %v out of [0,1]", p.MemIntensity)
	}
	if p.FootprintMB < 0 {
		return fmt.Errorf("amp: negative FootprintMB %v", p.FootprintMB)
	}
	return nil
}

// CoreType describes one kind of core on the platform.
type CoreType struct {
	Name string
	// FreqGHz is the nominal clock frequency.
	FreqGHz float64
	// DutyCycle in (0,1] scales effective frequency (Platform B throttles
	// slow cores to 87.5% duty in addition to the frequency reduction).
	DutyCycle float64
	// IPCScalar is instructions/cycle for serial-dependent (ILP=0) code.
	IPCScalar float64
	// IPCMax is instructions/cycle for fully parallel (ILP=1) code; the gap
	// to IPCScalar captures the out-of-order window advantage.
	IPCMax float64
	// MemGBps is the effective units/ns throughput for fully memory-bound
	// code on an otherwise idle cluster (covers prefetching quality and the
	// frequency-scaled cache hierarchy).
	MemGBps float64
	// ActiveW is the per-core power draw in Watts while executing; IdleW the
	// draw while parked (retired from a loop but inside the barrier). They
	// feed the per-cluster energy model the simulator surfaces as Joules.
	// Zero values are filled by New with frequency-scaled defaults.
	ActiveW float64
	IdleW   float64
}

// IPC returns instructions per cycle for code with the given ILP. The
// response is cubic: the out-of-order window pays off superlinearly, so only
// code with pervasive exploitable ILP approaches IPCMax. This concentrates
// large big-core advantages in a minority of loops, matching Fig. 2's
// distribution (most loops cluster at modest SFs; a few reach 7-8x).
func (ct CoreType) IPC(ilp float64) float64 {
	x := ilp * ilp * ilp
	return ct.IPCScalar + (ct.IPCMax-ct.IPCScalar)*x
}

// ComputeSpeed returns work units per nanosecond for pure compute code.
func (ct CoreType) ComputeSpeed(ilp float64) float64 {
	return ct.FreqGHz * ct.DutyCycle * ct.IPC(ilp)
}

// Cluster is a set of identical cores sharing a last-level cache.
type Cluster struct {
	Type CoreType
	// NumCores in this cluster.
	NumCores int
	// LLCMB is the shared last-level cache size.
	LLCMB float64
	// MissSlope controls how quickly LLC over-subscription converts compute
	// time into memory time: extraMiss = clamp(MissSlope*(occupancy-1)).
	MissSlope float64
	// SatGBps models DRAM-bandwidth saturation: with k active threads in
	// the cluster, per-thread memory throughput is capped at SatGBps/k.
	// Crucially the cap is a property of the DRAM, not of the core type, so
	// at saturation big and small cores see the *same* memory speed — the
	// equalizer that compresses effective loop SFs at 8 threads far below
	// their offline (single-thread) values. This is the second contention
	// mechanism behind §5C: offline-collected SF values overestimate the
	// big-core advantage because single-thread runs never saturate DRAM.
	SatGBps float64
	// Package is the physical package (die) the cluster sits on. Clusters
	// on the same package exchange cache lines over the on-die interconnect;
	// cross-package transfers pay the remote locality tier. ClusterDist
	// derives the topology distance from it.
	Package int
}

// Overheads are the runtime-system cost constants used by the simulator.
// They model libgomp's costs on each platform: the price of one atomic
// iteration-pool access (a fetch-and-add plus the surrounding call), the
// additional cost when several threads contend on the same cache line, the
// data-locality penalty paid at every chunk boundary under dynamic
// scheduling (§2: "the non-predictive behavior of this approach tends to
// degrade data locality"), the fork/join cost per parallel loop, and the
// cost of reading a timestamp (cheap on Linux thanks to the vsyscall, §4.2).
// The locality penalty is tiered by chunk provenance: a cold chunk claimed
// from the thread's own (home) shard pays LocalityPenaltyNs, one handed off
// from a foreign shard whose owner cluster shares the package pays
// LocalityForeignNs, and one pulled across packages pays LocalityRemoteNs.
// Zero tier values are filled by New from LocalityPenaltyNs (1.5x / 2.5x),
// so platform descriptions that predate the tiers stay valid.
type Overheads struct {
	PoolAccessNs      float64 // one GOMP_loop_*_next style pool access
	ContentionNs      float64 // extra per concurrent accessor on the pool line
	LocalityPenaltyNs float64 // cold chunk from the home shard
	LocalityForeignNs float64 // cold chunk from a same-package foreign shard
	LocalityRemoteNs  float64 // cold chunk from a cross-package foreign shard
	ForkJoinNs        float64 // per parallel loop (fork + implicit barrier)
	TimestampNs       float64 // one clock read during sampling
}

// Platform is a complete AMP: an ordered list of clusters (big first by
// convention, matching the paper's CPU numbering where CPUs 4-7 are big)
// plus the runtime overhead constants calibrated for the machine.
type Platform struct {
	Name     string
	Clusters []Cluster
	Overhead Overheads

	cores []coreInfo // flattened topology
}

type coreInfo struct {
	cluster int
	big     bool
}

// Binding is the thread-to-core mapping convention of §5: under SB, cores
// are populated in ascending order by thread ID (threads 0..3 land on small
// cores); under BS, in descending order (big cores are reserved for threads
// 0..3). All AID variants assume BS (§4.3).
type Binding int

const (
	// BindBS assigns thread 0 to the highest-numbered CPU (a big core). It
	// is the zero value because every AID variant assumes it (§4.3).
	BindBS Binding = iota
	// BindSB assigns thread 0 to CPU 0 (a small core).
	BindSB
)

// String implements fmt.Stringer.
func (b Binding) String() string {
	if b == BindBS {
		return "BS"
	}
	return "SB"
}

// New assembles a platform from clusters and overheads. Clusters must be
// ordered big-to-small (cluster 0 = big), mirroring the paper's convention
// that CPUs with higher numbers are big cores: the flattened CPU numbering
// puts small-cluster cores first, so CPU IDs 0..NS-1 are small and
// NS..NS+NB-1 are big, as on the Odroid.
func New(name string, clusters []Cluster, ov Overheads) (*Platform, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("amp: platform %q has no clusters", name)
	}
	p := &Platform{Name: name, Clusters: append([]Cluster(nil), clusters...), Overhead: ov}
	// Flatten: small clusters occupy low CPU numbers. We treat cluster 0 as
	// the big cluster and later clusters as progressively smaller, so we
	// emit cores in reverse cluster order.
	for ci := len(clusters) - 1; ci >= 0; ci-- {
		c := clusters[ci]
		if c.NumCores <= 0 {
			return nil, fmt.Errorf("amp: cluster %d of %q has %d cores", ci, name, c.NumCores)
		}
		for i := 0; i < c.NumCores; i++ {
			p.cores = append(p.cores, coreInfo{cluster: ci, big: ci == 0})
		}
	}
	// Fill defaulted energy and locality-tier fields so descriptions that
	// predate them (old platform files, trace records) keep working. The
	// defaults are deterministic functions of the populated fields, which
	// keeps New idempotent: re-encoding a normalized platform and decoding
	// it yields the same platform.
	for ci := range p.Clusters {
		ct := &p.Clusters[ci].Type
		if ct.ActiveW == 0 {
			ipc := ct.IPCScalar
			if ct.IPCMax > ipc {
				ipc = ct.IPCMax
			}
			ct.ActiveW = 0.5 * ct.FreqGHz * ct.DutyCycle * ipc
		}
		if ct.IdleW == 0 {
			ct.IdleW = 0.08 * ct.ActiveW
		}
	}
	if p.Overhead.LocalityForeignNs == 0 {
		p.Overhead.LocalityForeignNs = 1.5 * p.Overhead.LocalityPenaltyNs
	}
	if p.Overhead.LocalityRemoteNs == 0 {
		p.Overhead.LocalityRemoteNs = 2.5 * p.Overhead.LocalityPenaltyNs
	}
	return p, nil
}

// ClusterDist returns the topology distance between two clusters: 0 for the
// same cluster, 1 for distinct clusters on the same package, 2 across
// packages. It is the metric behind the tiered locality penalty and the
// nearest-victim steal order.
func (p *Platform) ClusterDist(a, b int) int {
	if a == b {
		return 0
	}
	if p.Clusters[a].Package == p.Clusters[b].Package {
		return 1
	}
	return 2
}

// TypeDist returns the full cluster-to-cluster distance matrix (see
// ClusterDist), in the shape pool.SetTopology and core.LoopInfo consume.
func (p *Platform) TypeDist() [][]int {
	d := make([][]int, len(p.Clusters))
	for i := range d {
		d[i] = make([]int, len(p.Clusters))
		for j := range d[i] {
			d[i][j] = p.ClusterDist(i, j)
		}
	}
	return d
}

// Validate checks the platform description for the malformations a hand-
// written or corrupted platform file can carry: zero-core clusters,
// non-finite or non-positive rates, duty cycles outside (0,1], negative
// overheads, and clusters not ordered big-first (New's flattening convention
// requires cluster 0 to be the fastest). New performs only the structural
// checks; DecodeJSON and the registry run Validate on top.
func (p *Platform) Validate() error {
	if len(p.Clusters) == 0 {
		return fmt.Errorf("amp: platform %q has no clusters", p.Name)
	}
	bad := func(x float64) bool { return math.IsNaN(x) || math.IsInf(x, 0) }
	prev := math.Inf(1)
	for ci, c := range p.Clusters {
		if c.NumCores <= 0 {
			return fmt.Errorf("amp: cluster %d of %q has %d cores", ci, p.Name, c.NumCores)
		}
		ct := c.Type
		if !(ct.FreqGHz > 0) || bad(ct.FreqGHz) {
			return fmt.Errorf("amp: cluster %d of %q: frequency %v GHz not positive and finite", ci, p.Name, ct.FreqGHz)
		}
		if !(ct.DutyCycle > 0) || ct.DutyCycle > 1 {
			return fmt.Errorf("amp: cluster %d of %q: duty cycle %v outside (0,1]", ci, p.Name, ct.DutyCycle)
		}
		if !(ct.IPCScalar > 0) || bad(ct.IPCScalar) || !(ct.IPCMax > 0) || bad(ct.IPCMax) {
			return fmt.Errorf("amp: cluster %d of %q: IPC %v/%v not positive and finite", ci, p.Name, ct.IPCScalar, ct.IPCMax)
		}
		if !(ct.MemGBps > 0) || bad(ct.MemGBps) {
			return fmt.Errorf("amp: cluster %d of %q: memory throughput %v not positive and finite", ci, p.Name, ct.MemGBps)
		}
		if ct.ActiveW < 0 || bad(ct.ActiveW) || ct.IdleW < 0 || bad(ct.IdleW) {
			return fmt.Errorf("amp: cluster %d of %q: power draw %v/%v W negative or not finite", ci, p.Name, ct.ActiveW, ct.IdleW)
		}
		if c.LLCMB < 0 || bad(c.LLCMB) || c.MissSlope < 0 || bad(c.MissSlope) || c.SatGBps < 0 || bad(c.SatGBps) {
			return fmt.Errorf("amp: cluster %d of %q: negative or non-finite cache/saturation parameters", ci, p.Name)
		}
		if c.Package < 0 {
			return fmt.Errorf("amp: cluster %d of %q: negative package %d", ci, p.Name, c.Package)
		}
		// Big-first ordering: single-thread compute speed at a moderate mix
		// must not increase along the cluster list (ties allowed — twin
		// clusters on different packages are legitimately equal).
		ref := ct.ComputeSpeed(0.5)
		if ref > prev*(1+1e-9) {
			return fmt.Errorf("amp: clusters of %q not ordered big-first: cluster %d (speed %.3f) is faster than its predecessor (%.3f)",
				p.Name, ci, ref, prev)
		}
		prev = ref
	}
	ov := p.Overhead
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"PoolAccessNs", ov.PoolAccessNs}, {"ContentionNs", ov.ContentionNs},
		{"LocalityPenaltyNs", ov.LocalityPenaltyNs}, {"LocalityForeignNs", ov.LocalityForeignNs},
		{"LocalityRemoteNs", ov.LocalityRemoteNs}, {"ForkJoinNs", ov.ForkJoinNs},
		{"TimestampNs", ov.TimestampNs},
	} {
		if f.v < 0 || bad(f.v) {
			return fmt.Errorf("amp: platform %q: overhead %s = %v negative or not finite", p.Name, f.name, f.v)
		}
	}
	return nil
}

// NumCores returns the total core count.
func (p *Platform) NumCores() int { return len(p.cores) }

// NumBig returns the number of cores in the big cluster (cluster 0).
func (p *Platform) NumBig() int { return p.Clusters[0].NumCores }

// NumSmall returns the number of cores outside the big cluster.
func (p *Platform) NumSmall() int { return p.NumCores() - p.NumBig() }

// IsBig reports whether CPU id belongs to the big cluster.
func (p *Platform) IsBig(cpu int) bool { return p.cores[cpu].big }

// ClusterOf returns the cluster index of CPU id.
func (p *Platform) ClusterOf(cpu int) int { return p.cores[cpu].cluster }

// CoreOf maps a thread ID to a CPU under the given binding convention with
// nthreads total threads. It panics if tid or nthreads is out of range,
// since a bad mapping is a programming error in the runtime.
func (p *Platform) CoreOf(tid, nthreads int, b Binding) int {
	if nthreads <= 0 || nthreads > p.NumCores() {
		panic(fmt.Sprintf("amp: nthreads %d out of range (platform has %d cores)", nthreads, p.NumCores()))
	}
	if tid < 0 || tid >= nthreads {
		panic(fmt.Sprintf("amp: tid %d out of range [0,%d)", tid, nthreads))
	}
	if b == BindSB {
		return tid // ascending: thread 0 -> CPU 0 (small)
	}
	return p.NumCores() - 1 - tid // descending: thread 0 -> highest CPU (big)
}

// BigThreads returns how many of nthreads land on big cores under binding b.
func (p *Platform) BigThreads(nthreads int, b Binding) int {
	n := 0
	for tid := 0; tid < nthreads; tid++ {
		if p.IsBig(p.CoreOf(tid, nthreads, b)) {
			n++
		}
	}
	return n
}

// effectiveMem returns the profile's memory intensity after accounting for
// LLC over-subscription in the cluster: activeInCluster threads each with
// p.FootprintMB of working set compete for the cluster's LLC; occupancy
// beyond 1.0 converts part of the remaining compute time into memory time.
func (p *Platform) effectiveMem(prof Profile, cluster, activeInCluster int) float64 {
	c := p.Clusters[cluster]
	m := prof.MemIntensity
	if prof.FootprintMB <= 0 || c.LLCMB <= 0 || activeInCluster <= 0 {
		return m
	}
	occ := float64(activeInCluster) * prof.FootprintMB / c.LLCMB
	if occ <= 1 {
		return m
	}
	extra := c.MissSlope * (occ - 1)
	if extra > 0.9 {
		extra = 0.9
	}
	return m + (1-m)*extra
}

// Speed returns execution speed in work units per nanosecond for CPU `cpu`
// running code with profile prof while activeInCluster threads (including
// this one) are running in the same cluster. The model composes a compute
// term and a memory term in series:
//
//	t(unit) = (1-m)/computeSpeed + m/memSpeed
//
// where m is the LLC-contention-adjusted memory intensity.
func (p *Platform) Speed(cpu int, prof Profile, activeInCluster int) float64 {
	ci := p.cores[cpu].cluster
	c := p.Clusters[ci]
	m := p.effectiveMem(prof, ci, activeInCluster)
	cs := c.Type.ComputeSpeed(prof.ILP)
	ms := c.Type.MemGBps
	if c.SatGBps > 0 && activeInCluster > 0 {
		if cap := c.SatGBps / float64(activeInCluster); cap < ms {
			ms = cap
		}
	}
	t := (1-m)/cs + m/ms
	return 1 / t
}

// SF returns the emergent big-to-small speedup factor for code with profile
// prof when activeBig and activeSmall threads run on each cluster. This is
// the quantity Fig. 2 measures offline; the runtime estimates it online.
// For platforms with more than two clusters, the ratio is taken between
// cluster 0 and the last cluster.
func (p *Platform) SF(prof Profile, activeBig, activeSmall int) float64 {
	bigCPU := p.NumCores() - 1 // highest CPU is big
	smallCPU := 0              // lowest CPU is in the smallest cluster
	return p.Speed(bigCPU, prof, activeBig) / p.Speed(smallCPU, prof, activeSmall)
}

// OfflineSF reproduces the paper's offline SF measurement method (§2): run
// the code with a single thread on a big core, then on a small core, and
// take the completion-time ratio. Single-threaded runs see no LLC
// contention, which is precisely why offline SF misleads for
// cache-contended programs (§5C, Fig. 9c).
func (p *Platform) OfflineSF(prof Profile) float64 {
	return p.SF(prof, 1, 1)
}

// PlatformA returns the Odroid-XU4 model (Table 1). Calibration targets the
// published behaviour rather than microarchitectural truth: big-to-small SF
// ranges from ~1.2 for fully memory-bound loops to ~8.9 for high-ILP compute
// loops, matching the ranges reported in §2 and §5 (up to 7.7 in Fig. 2,
// 8.9 max across all loops).
func PlatformA() *Platform {
	big := Cluster{
		Type: CoreType{
			Name:      "Cortex-A15",
			FreqGHz:   2.0,
			DutyCycle: 1.0,
			IPCScalar: 1.0,
			IPCMax:    3.3, // wide OoO: high ILP pays off
			MemGBps:   1.6,
			ActiveW:   1.8, // the A15 cluster dominates the XU4's power budget
			IdleW:     0.15,
		},
		NumCores: 4,
		LLCMB:    2.0,
		// The out-of-order core is hit harder by LLC overflow: its wide
		// window stalls on misses it cannot hide. Only per-thread working
		// sets above ~0.5 MB overflow this 2 MB cluster LLC at 4 threads
		// (blackscholes, streamcluster).
		MissSlope: 0.75,
		SatGBps:   1.7,
	}
	small := Cluster{
		Type: CoreType{
			Name:      "Cortex-A7",
			FreqGHz:   1.5,
			DutyCycle: 1.0,
			IPCScalar: 0.70, // in-order cores keep up on serial-dependent code
			IPCMax:    0.52, // ...but gain nothing from exploitable ILP
			MemGBps:   1.45,
			ActiveW:   0.33,
			IdleW:     0.03,
		},
		NumCores:  4,
		LLCMB:     0.5,
		MissSlope: 0.45,
		SatGBps:   1.7,
	}
	ov := Overheads{
		// ARM atomics and the shared pool line are comparatively expensive;
		// these values make dynamic(1) overhead visible for short loops
		// (IS slows down ~1.9x, §5A) while staying negligible for long ones.
		// ContentionNs is calibrated for per-shard occupancy accounting: a
		// home claim with the full cluster active pays 3x105 ns, matching
		// the 7x45 ns the old all-active-threads model charged.
		PoolAccessNs:      120,
		ContentionNs:      105,
		LocalityPenaltyNs: 160,
		LocalityForeignNs: 240,
		LocalityRemoteNs:  400,
		ForkJoinNs:        9000,
		TimestampNs:       30,
	}
	p, err := New("A (Odroid-XU4 big.LITTLE)", []Cluster{big, small}, ov)
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return p
}

// PlatformB returns the emulated x86 AMP model (§5): four fast cores at
// 2.1 GHz and four slow ones at 1.2 GHz x 87.5% duty cycle, sharing one
// 20 MB LLC. Both core types have the same microarchitecture, so the SF
// range is narrow: ~1.7 (memory-bound; DRAM and LLC are shared and the duty
// mechanism still gates the load/store units) to ~2.3 (compute-bound),
// matching Fig. 2b/2d.
func PlatformB() *Platform {
	fast := Cluster{
		Type: CoreType{
			Name:      "Xeon-fast",
			FreqGHz:   2.1,
			DutyCycle: 1.0,
			IPCScalar: 1.3,
			IPCMax:    3.8,
			MemGBps:   4.6,
			ActiveW:   8.5,
			IdleW:     1.1,
		},
		NumCores:  4,
		LLCMB:     10.0, // half of the shared 20MB LLC attributed per group
		MissSlope: 0.18,
		SatGBps:   8.0,
	}
	slow := Cluster{
		Type: CoreType{
			Name:      "Xeon-slow",
			FreqGHz:   1.2,
			DutyCycle: 0.875,
			IPCScalar: 1.25,
			IPCMax:    3.35,
			MemGBps:   2.7,
			ActiveW:   4.2, // same microarchitecture, lower frequency and duty
			IdleW:     1.0,
		},
		NumCores:  4,
		LLCMB:     10.0,
		MissSlope: 0.18,
		SatGBps:   8.0,
	}
	ov := Overheads{
		// x86 atomics are cheaper in absolute terms, but the relative
		// benefit of big cores is small (SF <= 2.3), so overhead more
		// easily negates dynamic's benefit (§5A: CG slows down by up to
		// 2.86x under dynamic on this platform).
		PoolAccessNs:      90,
		ContentionNs:      95, // per-shard occupancy: 3x95 ~= the old 7x40
		LocalityPenaltyNs: 140,
		LocalityForeignNs: 210,
		LocalityRemoteNs:  350,
		ForkJoinNs:        5200,
		TimestampNs:       20,
	}
	p, err := New("B (Xeon E5-2620 v4 emulated AMP)", []Cluster{fast, slow}, ov)
	if err != nil {
		panic(err)
	}
	return p
}

// PlatformTri returns a three-core-type platform in the style of an ARM
// DynamIQ design (2 prime + 3 middle + 3 little cores). The paper
// generalizes AID-static to NC core types in §4.2 — "for each core type j,
// SF_j must be measured ... each thread in core type j would receive SF_j·k
// iterations, where k = NI / Σ_t N_t·SF_t" — and this platform exercises
// that path (no two-type shortcut survives contact with it).
func PlatformTri() *Platform {
	prime := Cluster{
		Type: CoreType{
			Name:      "prime",
			FreqGHz:   2.8,
			DutyCycle: 1.0,
			IPCScalar: 1.15,
			IPCMax:    3.6,
			MemGBps:   2.2,
		},
		NumCores:  2,
		LLCMB:     2.0,
		MissSlope: 0.6,
		SatGBps:   2.4,
	}
	mid := Cluster{
		Type: CoreType{
			Name:      "middle",
			FreqGHz:   2.2,
			DutyCycle: 1.0,
			IPCScalar: 0.95,
			IPCMax:    2.2,
			MemGBps:   1.8,
		},
		NumCores:  3,
		LLCMB:     1.0,
		MissSlope: 0.5,
		SatGBps:   2.2,
	}
	little := Cluster{
		Type: CoreType{
			Name:      "little",
			FreqGHz:   1.6,
			DutyCycle: 1.0,
			IPCScalar: 0.72,
			IPCMax:    0.6,
			MemGBps:   1.5,
		},
		NumCores:  3,
		LLCMB:     0.5,
		MissSlope: 0.45,
		SatGBps:   2.0,
	}
	ov := Overheads{
		PoolAccessNs:      110,
		ContentionNs:      95,
		LocalityPenaltyNs: 150,
		LocalityForeignNs: 225,
		LocalityRemoteNs:  375,
		ForkJoinNs:        8000,
		TimestampNs:       25,
	}
	p, err := New("Tri (2 prime + 3 middle + 3 little)", []Cluster{prime, mid, little}, ov)
	if err != nil {
		panic(err)
	}
	return p
}
