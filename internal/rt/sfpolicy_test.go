package rt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fair"
)

// spyPolicy wraps a real policy and records every hook the registry drives:
// Pick candidate sets, fast-path Observe grants, and Retire notifications.
// The registry calls all three under its lock; the mutex makes the test
// goroutine's reads race-clean.
type spyPolicy struct {
	inner fair.Policy

	mu       sync.Mutex
	observed []uint64   // loop IDs granted via the single-candidate fast path
	picked   [][]uint64 // candidate ID sets per Pick call
	retired  []uint64
	sawSF    bool // some candidate carried a live SF estimate
}

func newSpyPolicy() *spyPolicy {
	return &spyPolicy{inner: fair.NewWeightedRoundRobin(0)}
}

func (s *spyPolicy) Name() string { return "spy" }

func (s *spyPolicy) Pick(tid int, cands []fair.Candidate) (int, int) {
	s.mu.Lock()
	ids := make([]uint64, len(cands))
	for i, c := range cands {
		ids[i] = c.ID
		if c.SF != nil {
			s.sawSF = true
		}
	}
	s.picked = append(s.picked, ids)
	s.mu.Unlock()
	return s.inner.Pick(tid, cands)
}

func (s *spyPolicy) Observe(tid int, c fair.Candidate) {
	s.mu.Lock()
	s.observed = append(s.observed, c.ID)
	if c.SF != nil {
		s.sawSF = true
	}
	s.mu.Unlock()
	if ob, ok := s.inner.(fair.Observer); ok {
		ob.Observe(tid, c)
	}
}

func (s *spyPolicy) Retire(id uint64) {
	s.mu.Lock()
	s.retired = append(s.retired, id)
	s.mu.Unlock()
	if rt, ok := s.inner.(fair.Retirer); ok {
		rt.Retire(id)
	}
}

// TestRegistryPolicyHooks drives the single→multi tenant transition the
// fast-path bug hid from the policy: a lone loop must reach the policy
// through Observe (the fast path bypasses Pick), a second concurrent tenant
// must force a real Pick over both candidates, and each barrier release
// must Retire its loop ID so cursor state cannot leak.
func TestRegistryPolicyHooks(t *testing.T) {
	spy := newSpyPolicy()
	reg, err := NewRegistry(RegistryConfig{NThreads: 4, Policy: spy})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	// Loop A blocks in its body until loop B has been admitted, so both are
	// runnable together and the post-gate re-pick sees two candidates. B is
	// only submitted once a worker is inside A's body — i.e. after a pick
	// that saw A as the lone candidate — so the fast path provably ran.
	gate := make(chan struct{})
	var started atomic.Int32
	a, err := reg.Submit(LoopRequest{N: 64, Schedule: Schedule{Kind: KindDynamic, Chunk: 4},
		Body: func(_ int, _, _ int64) { started.Add(1); <-gate }})
	if err != nil {
		t.Fatal(err)
	}
	for started.Load() == 0 {
		time.Sleep(10 * time.Microsecond)
	}
	b, err := reg.Submit(LoopRequest{N: 64, Schedule: Schedule{Kind: KindDynamic, Chunk: 4},
		Body: func(_ int, _, _ int64) {}})
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	a.Wait()
	b.Wait()
	reg.Close()

	spy.mu.Lock()
	defer spy.mu.Unlock()
	sawA := false
	for _, id := range spy.observed {
		if id == a.ID() {
			sawA = true
		}
	}
	if !sawA {
		t.Error("single-candidate fast path never reached the policy via Observe")
	}
	both := false
	for _, ids := range spy.picked {
		if len(ids) == 2 {
			both = true
		}
	}
	if !both {
		t.Error("no Pick saw both tenants as candidates")
	}
	ret := map[uint64]bool{}
	for _, id := range spy.retired {
		ret[id] = true
	}
	if !ret[a.ID()] || !ret[b.ID()] {
		t.Errorf("Retire calls %v missing a loop; want both %d and %d", spy.retired, a.ID(), b.ID())
	}
}

// TestRegistryLiveSFMidRun pins the tentpole's observability claim on the
// real engine: an AID loop's SF estimate must be pollable through
// Loop.LiveSF while the loop is still executing — not only at retirement —
// and the fast-path Observe grants must carry it to the policy.
func TestRegistryLiveSFMidRun(t *testing.T) {
	spy := newSpyPolicy()
	reg, err := NewRegistry(RegistryConfig{NThreads: 4, Policy: spy})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	// A per-iteration stall keeps the AID phase (the bulk of the loop) slow
	// enough for the poller, while the chunk-1 sampling phase that produces
	// the estimate finishes almost immediately.
	l, err := reg.Submit(LoopRequest{N: 20000, Schedule: Schedule{Kind: KindAIDStatic},
		Body: func(_ int, lo, hi int64) {
			for i := lo; i < hi; i += 256 {
				time.Sleep(50 * time.Microsecond)
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	var midRun []float64
poll:
	for {
		select {
		case <-l.Done():
			break poll
		default:
			if sf := l.LiveSF(); sf != nil {
				midRun = sf
				break poll
			}
			time.Sleep(20 * time.Microsecond)
		}
	}
	// A lone tenant is picked once (unbounded burst), before sampling has
	// published anything. Admitting a second tenant now forces every worker
	// back through Pick, where the AID loop's candidate must carry the
	// estimate we just observed.
	l2, err := reg.Submit(LoopRequest{N: 100, Schedule: Schedule{Kind: KindDynamic},
		Body: func(_ int, _, _ int64) {}})
	if err != nil {
		t.Fatal(err)
	}
	l2.Wait()
	stats := l.Wait()
	if midRun == nil {
		t.Fatal("LiveSF never published before the barrier released")
	}
	if len(midRun) != 2 || midRun[0] < 1 {
		t.Errorf("mid-run SF = %v; want a 2-type table with SF >= 1 for big cores", midRun)
	}
	if stats.SFEstimate == nil {
		t.Error("final stats lost the SF estimate")
	}
	spy.mu.Lock()
	defer spy.mu.Unlock()
	if !spy.sawSF {
		t.Error("no candidate handed to the policy carried a live SF estimate")
	}
}

// TestRegistryLiveSFNilForConventional: schedules with no SF estimator must
// report nil rather than a fabricated table.
func TestRegistryLiveSFNilForConventional(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{NThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	l, err := reg.Submit(LoopRequest{N: 100, Schedule: Schedule{Kind: KindDynamic},
		Body: func(_ int, _, _ int64) {}})
	if err != nil {
		t.Fatal(err)
	}
	l.Wait()
	if sf := l.LiveSF(); sf != nil {
		t.Errorf("dynamic schedule reports LiveSF %v, want nil", sf)
	}
}

// TestParseScheduleReweight covers the ",rw" GOOMP_SCHEDULE extension:
// accepted on the online-SF AID methods (any case, any parameter count),
// rejected everywhere else, and round-tripped by Canonical.
func TestParseScheduleReweight(t *testing.T) {
	good := map[string]Schedule{
		"aid-static,rw":      {Kind: KindAIDStatic, Reweight: true},
		"aid-static,2,rw":    {Kind: KindAIDStatic, Chunk: 2, Reweight: true},
		"aid-hybrid,80,rw":   {Kind: KindAIDHybrid, Pct: 0.8, Reweight: true},
		"aid-dynamic,1,5,rw": {Kind: KindAIDDynamic, Chunk: 1, Major: 5, Reweight: true},
		"AID-DYNAMIC,1,5,RW": {Kind: KindAIDDynamic, Chunk: 1, Major: 5, Reweight: true},
	}
	for in, want := range good {
		got, err := ParseSchedule(in)
		if err != nil {
			t.Errorf("ParseSchedule(%q): %v", in, err)
			continue
		}
		if got.Kind != want.Kind || got.Chunk != want.Chunk ||
			got.Major != want.Major || got.Pct != want.Pct || !got.Reweight {
			t.Errorf("ParseSchedule(%q) = %+v, want %+v", in, got, want)
		}
	}
	for _, in := range []string{
		"static,rw", "dynamic,4,rw", "guided,rw", "work-steal,4,rw",
		"aid-auto,2,8,rw", "rw",
	} {
		if _, err := ParseSchedule(in); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", in)
		}
	}
	for _, in := range []string{"aid-static,rw", "aid-hybrid,70,rw", "aid-dynamic,2,10,rw"} {
		s, err := ParseSchedule(in)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		c := s.Canonical()
		s2, err := ParseSchedule(c)
		if err != nil {
			t.Fatalf("%s -> Canonical %q does not parse: %v", in, c, err)
		}
		if !s2.Reweight {
			t.Errorf("%s: Canonical %q dropped the rw flag", in, c)
		}
		if c2 := s2.Canonical(); c2 != c {
			t.Errorf("%s: Canonical not a fixed point: %q -> %q", in, c, c2)
		}
	}
	if got := (Schedule{Kind: KindAIDDynamic, Reweight: true}).String(); got != "AID-dynamic/1,5+rw" {
		t.Errorf("String() = %q, want AID-dynamic/1,5+rw", got)
	}
}

// TestFactoryReweight: the factory must apply SetReweight to schedulers that
// support it and refuse Reweight on kinds that do not (the struct field is
// reachable without going through ParseSchedule's validation).
func TestFactoryReweight(t *testing.T) {
	info := core.LoopInfo{NI: 100, NThreads: 4, NumTypes: 2, TypeOf: func(tid int) int { return tid % 2 }}
	for _, k := range []Kind{KindAIDStatic, KindAIDHybrid, KindAIDDynamic} {
		if _, err := (Schedule{Kind: k, Reweight: true}).Factory()(info); err != nil {
			t.Errorf("factory for %v+rw: %v", k, err)
		}
	}
	if _, err := (Schedule{Kind: KindDynamic, Reweight: true}).Factory()(info); err == nil {
		t.Error("factory accepted Reweight on dynamic")
	}
}

// TestParallelForReweightCoverage runs the ,rw variants end-to-end on the
// real executor: re-partitioning mid-loop must not lose or duplicate
// iterations.
func TestParallelForReweightCoverage(t *testing.T) {
	for _, txt := range []string{"aid-hybrid,80,rw", "aid-dynamic,1,5,rw"} {
		t.Run(txt, func(t *testing.T) {
			s, err := ParseSchedule(txt)
			if err != nil {
				t.Fatal(err)
			}
			team, err := NewTeam(TeamConfig{NThreads: 4, Schedule: s})
			if err != nil {
				t.Fatal(err)
			}
			const n = 10007
			hits := make([]int32, n)
			var mu sync.Mutex
			if err := team.ParallelForChunked(n, func(lo, hi int64) {
				mu.Lock()
				for i := lo; i < hi; i++ {
					hits[i]++
				}
				mu.Unlock()
			}); err != nil {
				t.Fatal(err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("iteration %d executed %d times", i, h)
				}
			}
		})
	}
}
