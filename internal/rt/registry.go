package rt

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/fair"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Registry is the multi-loop executor: it owns a fixed fleet of worker
// goroutines (one per modeled CPU, with the same per-worker slowdown
// emulation as Team) and admits many concurrent loop submissions. Each
// admitted loop gets its own single-use core.Scheduler — and therefore its
// own sharded iteration pool — while the fleet is shared: a configurable
// fairness policy (internal/fair) decides which runnable loop a free worker
// serves next. This is the building block for serving many users at once:
// one request's parallel loop no longer needs a private set of threads.
//
// Barrier accounting is per loop. A worker that receives ok=false from a
// loop's scheduler is retired from that loop (ok=false is terminal per
// thread, the contract every scheduler satisfies); the loop's implicit
// barrier releases — Wait returns — when all fleet workers have retired
// from it, which by the schedulers' exactly-once coverage guarantee is
// exactly when all of its iterations have executed. Other loops are
// unaffected: their workers keep running.
//
// Every loop runs over the full fleet with the registry's thread-to-core
// binding, so the scheduler-facing LoopInfo is identical to the one Team
// builds and the big/small TypeOf mapping each AID variant assumes is
// stable for the duration of the loop. One fidelity caveat is inherent to
// sharing workers: an AID sampling window measured by a worker that was
// handed to another loop in between includes foreign-chunk time, so online
// SF estimates under heavy multi-tenancy are noisier than in dedicated
// fleets (coverage and barrier correctness are unaffected).
type Registry struct {
	platform *amp.Platform
	nthreads int
	binding  amp.Binding
	profile  amp.Profile
	slowdown []float64
	types    []int // per-worker home core type (cluster index)
	typeOf   func(tid int) int
	policy   fair.Policy
	base     time.Time

	// dist caches the platform's cluster-distance matrix for the metrics
	// layer's provenance-tier bucketing (nil-safe; obs.Tier handles it).
	dist [][]int
	// metrics, when non-nil, holds the fleet-level counter cells — idle
	// time between picks lands here; per-loop counters live on each Loop.
	// Enabled by RegistryConfig.Metrics for the registry's lifetime.
	metrics *obs.Metrics

	// scratch holds each worker's private pick buffers (reused across
	// picks, so the steady-state scheduling path allocates nothing).
	scratch []pickScratch

	// gen counts admissions; workers snapshot it at pick time and re-enter
	// the policy when it changes, so a newly submitted loop is noticed even
	// by a worker in the middle of an unbounded single-loop burst. It sits
	// alone on its cache line: every worker loads it once per served chunk,
	// and letting Submit's increment share a line with the mutex word (or
	// anything else the control plane writes) would broadcast invalidations
	// into every burst loop in the fleet.
	_   [64]byte
	gen atomic.Uint64
	_   [56]byte

	mu     sync.Mutex
	cond   *sync.Cond
	run    []*Loop // admitted, incomplete loops in admission order
	nextID uint64
	closed bool
	wg     sync.WaitGroup
	// retiredAgg accumulates the metrics snapshots of completed loops
	// (guarded by mu), so MetricsSnapshot stays O(live loops), not
	// O(all loops ever served).
	retiredAgg obs.Snapshot
}

// RegistryConfig configures NewRegistry.
type RegistryConfig struct {
	// Platform provides the topology and the per-core slowdown factors;
	// defaults to Platform A.
	Platform *amp.Platform
	// NThreads is the fleet size; 0 selects the platform core count.
	NThreads int
	// Binding defaults to BS (the convention all AID variants assume).
	Binding amp.Binding
	// Profile is the instruction mix used to derive emulated slowdown
	// factors from the platform model; the zero value is a moderate mix.
	Profile amp.Profile
	// Policy is the fairness policy handing workers between runnable
	// loops; defaults to fair.NewWeightedRoundRobin(0). A policy instance
	// is stateful and must not be shared between registries.
	Policy fair.Policy
	// Metrics enables the always-on runtime counters (internal/obs): each
	// loop gets per-worker counter cells surfaced via LoopStats.Metrics,
	// and Registry.MetricsSnapshot serves the live fleet-wide view. The
	// hot path stays allocation free with metrics on (gated by
	// TestRegistryMetricsSteadyStateAllocs); the per-chunk cost is a few
	// single-writer counter bumps (BenchmarkMetricsOverhead pins it).
	Metrics bool
}

// fleetParams validates and defaults the platform/thread-count/profile
// triple shared by NewTeam and NewRegistry. NThreads 0 selects the
// platform core count; anything else must lie in [1, NumCores].
func fleetParams(pl *amp.Platform, nthreads int, prof amp.Profile) (*amp.Platform, int, error) {
	if pl == nil {
		pl = amp.PlatformA()
	}
	if nthreads < 0 || nthreads > pl.NumCores() {
		return nil, 0, fmt.Errorf("rt: thread count %d out of range [0,%d] (0 selects the platform core count)", nthreads, pl.NumCores())
	}
	if nthreads == 0 {
		nthreads = pl.NumCores()
	}
	if err := prof.Validate(); err != nil {
		return nil, 0, err
	}
	return pl, nthreads, nil
}

// fleetSlowdowns derives each worker's emulated slowdown from the platform
// speed model: the fastest core type runs unthrottled; others are throttled
// by the speed ratio.
func fleetSlowdowns(pl *amp.Platform, nthreads int, binding amp.Binding, prof amp.Profile) []float64 {
	fastest := 0.0
	speeds := make([]float64, nthreads)
	for tid := 0; tid < nthreads; tid++ {
		cpu := pl.CoreOf(tid, nthreads, binding)
		speeds[tid] = pl.Speed(cpu, prof, 1)
		if speeds[tid] > fastest {
			fastest = speeds[tid]
		}
	}
	slowdown := make([]float64, nthreads)
	for tid := range speeds {
		slowdown[tid] = fastest / speeds[tid]
	}
	return slowdown
}

// NewRegistry builds the worker fleet and starts its goroutines. The fleet
// runs until Close.
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	pl, nthreads, err := fleetParams(cfg.Platform, cfg.NThreads, cfg.Profile)
	if err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		cfg.Policy = fair.NewWeightedRoundRobin(0)
	}
	r := &Registry{
		platform: pl,
		nthreads: nthreads,
		binding:  cfg.Binding,
		profile:  cfg.Profile,
		slowdown: fleetSlowdowns(pl, nthreads, cfg.Binding, cfg.Profile),
		types:    make([]int, nthreads),
		policy:   cfg.Policy,
		base:     time.Now(),
	}
	for tid := 0; tid < nthreads; tid++ {
		r.types[tid] = pl.ClusterOf(pl.CoreOf(tid, nthreads, cfg.Binding))
	}
	r.dist = pl.TypeDist()
	// One type-lookup closure for the registry's lifetime: LoopInfo wants a
	// func, and building a fresh closure per Submit is an allocation the
	// admission path does not need.
	types := r.types
	r.typeOf = func(tid int) int { return types[tid] }
	if cfg.Metrics {
		r.metrics = obs.New(nthreads, len(pl.Clusters), r.typeOf)
	}
	r.scratch = make([]pickScratch, nthreads)
	r.cond = sync.NewCond(&r.mu)
	r.wg.Add(nthreads)
	for tid := 0; tid < nthreads; tid++ {
		go r.worker(tid)
	}
	return r, nil
}

// NThreads returns the fleet size.
func (r *Registry) NThreads() int { return r.nthreads }

// Slowdown returns worker tid's emulated slowdown factor (1 = big core).
func (r *Registry) Slowdown(tid int) float64 { return r.slowdown[tid] }

// Policy returns the registry's fairness policy.
func (r *Registry) Policy() fair.Policy { return r.policy }

// InFlight returns the number of admitted loops whose barriers have not
// released yet — the service tier's saturation signal for admission
// control. It is a snapshot: by the time the caller acts, loops may have
// arrived or drained.
func (r *Registry) InFlight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.run)
}

// now returns monotonic nanoseconds since fleet creation (the timestamp
// source fed to the schedulers' sampling machinery).
func (r *Registry) now() int64 { return int64(time.Since(r.base)) }

// loopInfo builds the scheduler-facing description of a loop on this fleet.
// The platform's cluster-distance matrix rides along so sharded pools steal
// from the topologically nearest victim.
func (r *Registry) loopInfo(n int64) core.LoopInfo {
	return core.LoopInfo{
		NI:       n,
		NThreads: r.nthreads,
		NumTypes: len(r.platform.Clusters),
		TypeOf:   r.typeOf,
		TypeDist: r.platform.TypeDist(),
	}
}

// LoopRequest describes one loop submission.
type LoopRequest struct {
	// Name identifies the loop in reports and run records; "" selects
	// "loop-<id>".
	Name string
	// N is the trip count.
	N int64
	// Schedule selects the scheduling method (the zero value is the plain
	// static schedule).
	Schedule Schedule
	// Weight is the loop's relative fairness share; 0 selects 1.
	Weight int
	// Body executes iterations [lo, hi) on fleet worker tid.
	Body func(tid int, lo, hi int64)
	// Capture records the loop's real execution: wall-clock per-worker
	// timelines, every chunk grant, and the scheduler's phase transitions.
	// Workers append to private per-worker tapes (the lock-free hot path
	// stays lock free) which are merged when the loop's barrier releases;
	// the result lands in LoopStats.Trace/Events/Phases and feeds
	// Registry.BuildRecord.
	Capture bool
	// CaptureCompact, with Capture, merges adjacent contiguous grants to
	// the same worker at tape-merge time (trace.CompactEvents) — the
	// always-on sampling recorder's first reduction. Totals (iterations,
	// pool accesses, execution time) are preserved; only grant granularity
	// is coarsened.
	CaptureCompact bool
	// CaptureMaxEvents, with Capture, bounds the loop's merged event
	// stream: when the (possibly compacted) stream exceeds it, the first
	// CaptureHead events and the last CaptureMaxEvents-CaptureHead events
	// are retained and the middle is dropped (trace.TrimToBudget). 0 means
	// unbounded. The budget is applied after compaction, so it bounds what
	// a record actually stores.
	CaptureMaxEvents int
	// CaptureHead is the head-retention share of CaptureMaxEvents; 0
	// selects half the budget.
	CaptureHead int
}

// Loop is the handle of one admitted submission. Wait (or Done) observes
// the loop's own barrier: it releases when this loop's iterations are done,
// independent of the rest of the fleet's work.
type Loop struct {
	id       uint64
	name     string
	weight   int
	n        int64
	schedule Schedule
	sched    core.Scheduler
	body     func(tid int, lo, hi int64)

	// cells is worker-indexed: cell tid is written only by worker tid and
	// published to the waiter by close(done), which happens-after every
	// worker's retirement (each retirement passes through the registry
	// lock). One padded cell per worker replaces the old parallel
	// iters/accesses/finishNs slices, whose 8-byte slots shared cache
	// lines across workers — every chunk's counter bump invalidated the
	// line of up to seven neighbours.
	cells    []workerCell
	retired  []bool // guarded by Registry.mu
	nretired int    // guarded by Registry.mu

	// sfView caches the scheduler's zero-copy live-SF interface (nil when
	// unsupported), so the per-pick candidate build is a plain call, not a
	// type assertion plus a defensive copy.
	sfView core.SFLiveViewer

	// metrics is non-nil when the registry runs with counters enabled: the
	// loop's per-worker cells (internal/obs), written on the hot path by
	// single-writer bumps and merged into LoopStats.Metrics at barrier
	// release.
	metrics *obs.Metrics

	// capture is non-nil when the loop records its execution: slot tid is
	// a private tape appended only by worker tid (published like cells).
	capture []paddedTape
	startNs int64
	// captureCompact/captureMax/captureHead are the sampled-capture
	// reductions applied when the tapes merge (see LoopRequest).
	captureCompact bool
	captureMax     int
	captureHead    int

	submitted time.Time
	latency   time.Duration
	stats     LoopStats
	done      chan struct{}
}

// workerCell is one worker's private counters for one loop: iterations
// executed, pool accesses charged, and (under capture) the worker's
// retirement time on the fleet clock. Padded to exactly one cache line so
// neighbouring workers' per-chunk updates never contend; the size is pinned
// by a layout test.
type workerCell struct {
	iters    int64
	accesses int64
	finishNs int64
	_        [40]byte
}

// ID returns the loop's admission-ordered identifier.
func (l *Loop) ID() uint64 { return l.id }

// Weight returns the loop's fairness weight.
func (l *Loop) Weight() int { return l.weight }

// Done returns a channel closed when the loop's barrier releases.
func (l *Loop) Done() <-chan struct{} { return l.done }

// Wait blocks until the loop's barrier releases and returns the loop's
// execution statistics.
func (l *Loop) Wait() LoopStats {
	<-l.done
	return l.stats
}

// Latency returns the submission-to-barrier-release duration. It is only
// meaningful once the loop is done.
func (l *Loop) Latency() time.Duration { return l.latency }

// LiveSF returns the loop's current per-core-type speedup-factor estimate,
// or nil while its scheduler has not published one (or never will — the
// conventional schedules estimate nothing). Safe to call from any
// goroutine at any time: the schedulers publish their tables through
// atomics, so this is the mid-run view the fairness policy steers by, not
// a retirement-only statistic.
// The returned slice is the scheduler's published table — read-only; do
// not mutate it.
func (l *Loop) LiveSF() []float64 {
	if l.sfView != nil {
		return l.sfView.SFLiveView()
	}
	if est, ok := l.sched.(core.SFEstimator); ok {
		if sf, ready := est.SFEstimate(); ready {
			return sf
		}
	}
	return nil
}

// Submit admits a loop for execution on the fleet and returns immediately;
// the loop starts as soon as the policy hands workers to it. It fails if
// the registry is closed or the request is invalid.
func (r *Registry) Submit(req LoopRequest) (*Loop, error) {
	if req.N < 0 {
		return nil, fmt.Errorf("rt: negative trip count %d", req.N)
	}
	if req.Body == nil {
		return nil, fmt.Errorf("rt: nil loop body")
	}
	if req.Weight < 0 {
		return nil, fmt.Errorf("rt: negative loop weight %d", req.Weight)
	}
	if req.Weight == 0 {
		req.Weight = 1
	}
	sched, err := req.Schedule.Factory()(r.loopInfo(req.N))
	if err != nil {
		return nil, err
	}
	l := &Loop{
		name:      req.Name,
		weight:    req.Weight,
		n:         req.N,
		schedule:  req.Schedule,
		sched:     sched,
		body:      req.Body,
		cells:     make([]workerCell, r.nthreads),
		retired:   make([]bool, r.nthreads),
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if v, ok := sched.(core.SFLiveViewer); ok {
		l.sfView = v
	}
	if r.metrics != nil {
		l.metrics = obs.New(r.nthreads, len(r.platform.Clusters), r.typeOf)
		l.startNs = r.now()
	}
	if req.CaptureMaxEvents < 0 {
		return nil, fmt.Errorf("rt: negative capture event budget %d", req.CaptureMaxEvents)
	}
	if req.Capture {
		l.capture = make([]paddedTape, r.nthreads)
		l.startNs = r.now()
		l.captureCompact = req.CaptureCompact
		l.captureMax = req.CaptureMaxEvents
		l.captureHead = req.CaptureHead
		if l.captureMax > 0 && l.captureHead <= 0 {
			l.captureHead = l.captureMax / 2
		}
		// Pre-size the tapes from the schedule's chunk geometry so the
		// capturing hot path appends into reserved space instead of
		// growing its buffers mid-run.
		est := tapeEstimate(req.N, req.Schedule.Chunk, r.nthreads)
		for tid := range l.capture {
			l.capture[tid].Reserve(est)
		}
		if po, ok := sched.(core.PhaseObservable); ok {
			// The observer runs on the transition-owning worker and appends
			// to that worker's private tape, so the capture path inherits
			// the schedulers' lock freedom.
			po.SetPhaseObserver(func(ev core.PhaseEvent) {
				tp := &l.capture[ev.Tid].WorkerTape
				tp.Phases = append(tp.Phases, trace.PhaseEvent{TimeNs: ev.TimeNs,
					Tid: ev.Tid, Epoch: ev.Epoch, Kind: ev.Kind, SF: ev.SF})
			})
		}
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, fmt.Errorf("rt: registry is closed")
	}
	l.id = r.nextID
	r.nextID++
	if l.name == "" {
		l.name = fmt.Sprintf("loop-%d", l.id)
	}
	r.run = append(r.run, l)
	r.gen.Add(1)
	r.cond.Broadcast()
	r.mu.Unlock()
	return l, nil
}

// BuildRecord assembles a serializable run record from completed captured
// loops — the real-engine analog of the simulator's native recording. All
// loops must have been submitted to this registry with Capture set and have
// released their barriers. Events are merged into global time order (per-
// worker capture order breaks timestamp ties) and each event's abstract
// work units are derived from its measured wall time and the platform speed
// model, so internal/replay can re-execute and what-if the run in virtual
// time.
func (r *Registry) BuildRecord(loops ...*Loop) (*trace.Record, error) {
	if len(loops) == 0 {
		return nil, fmt.Errorf("rt: no loops to record")
	}
	rec := trace.NewRecorder()
	// The modeled per-worker speed converts measured wall time to work
	// units. Cluster occupancy is the full fleet, matching the simulator's
	// single-loop model where every worker is resident.
	occupancy := make([]int, len(r.platform.Clusters))
	for tid := 0; tid < r.nthreads; tid++ {
		occupancy[r.types[tid]]++
	}
	speed := make([]float64, r.nthreads)
	for tid := 0; tid < r.nthreads; tid++ {
		cpu := r.platform.CoreOf(tid, r.nthreads, r.binding)
		speed[tid] = r.platform.Speed(cpu, r.profile, occupancy[r.types[tid]])
	}
	startNs := int64(-1)
	var endNs int64
	for _, l := range loops {
		select {
		case <-l.done:
		default:
			return nil, fmt.Errorf("rt: loop %q has not released its barrier", l.name)
		}
		if l.capture == nil {
			return nil, fmt.Errorf("rt: loop %q was not submitted with Capture", l.name)
		}
		if startNs == -1 || l.startNs < startNs {
			startNs = l.startNs
		}
		if l.stats.EndNs > endNs {
			endNs = l.stats.EndNs
		}
	}
	policy := ""
	if len(loops) > 1 {
		policy = r.policy.Name()
	}
	if err := rec.BeginRun(trace.RunMeta{
		Engine:   "rt",
		Platform: trace.PlatformRecordOf(r.platform),
		NThreads: r.nthreads,
		Binding:  r.binding.String(),
		Policy:   policy,
		StartNs:  startNs,
	}); err != nil {
		return nil, err
	}
	var nev, nph int
	for _, l := range loops {
		nev += len(l.stats.Events)
		nph += len(l.stats.Phases)
	}
	evs := make([]trace.ChunkEvent, 0, nev)
	phs := make([]trace.PhaseEvent, 0, nph)
	for _, l := range loops {
		idx := rec.AddLoop(trace.LoopRecord{
			Name:      l.name,
			NI:        l.n,
			Weight:    l.weight,
			Scheduler: l.sched.Name(),
			Schedule:  l.schedule.Canonical(),
			Profile:   r.profile,
		})
		for _, ev := range l.stats.Events {
			ev.Loop = idx
			if !ev.Retire {
				ev.Cost = float64(ev.ExecNs) * speed[ev.Tid]
			}
			evs = append(evs, ev)
		}
		for _, p := range l.stats.Phases {
			p.Loop = idx
			phs = append(phs, p)
		}
	}
	sortEvents(evs)
	rec.ReserveChunks(len(evs))
	for _, ev := range evs {
		rec.Chunk(ev)
	}
	// Per-loop phase streams are already sorted; interleave them
	// chronologically across loops (stable, to preserve each stream).
	sort.Stable(phaseEventOrder(phs))
	for _, p := range phs {
		rec.Phase(p)
	}
	// Final estimates go last: Phase() auto-derives mid-run SF samples, and
	// the serialized trajectory must stay chronological.
	for idx, l := range loops {
		if l.stats.SFEstimate != nil {
			rec.SFSample(trace.SFSample{TimeNs: l.stats.EndNs, Loop: idx,
				SF: append([]float64(nil), l.stats.SFEstimate...)})
		}
	}
	if len(loops) == 1 {
		rec.AttachTimeline(loops[0].stats.Trace)
	}
	rec.EndRun(endNs - startNs)
	return rec.Record(), nil
}

// Close stops accepting submissions, lets the already-admitted loops drain,
// and joins the worker fleet. It blocks until every worker has exited and
// is safe to call more than once.
func (r *Registry) Close() {
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	r.wg.Wait()
}

// paddedTape is one worker's private capture buffer; the pad keeps
// neighbouring workers' tape headers off each other's cache lines.
type paddedTape struct {
	trace.WorkerTape
	_ [64]byte
}

// tapeEstimate guesses how many chunk grants one worker will capture for a
// loop of n iterations under the given chunk size (0 = schedule default,
// treated as 1, the paper's fine-grained default). The guess is clamped to
// [8, 1<<14] — an estimate only: workloads that blow past it just pay the
// append growth the reservation usually avoids, and the cap keeps a huge
// coarse loop from reserving megabytes per worker up front.
func tapeEstimate(n, chunk int64, nthreads int) int {
	if chunk <= 0 {
		chunk = 1
	}
	per := n/(chunk*int64(nthreads)) + 4
	if per < 8 {
		per = 8
	}
	if per > 1<<14 {
		per = 1 << 14
	}
	return int(per)
}

// pickScratch is one worker's private, reusable pick buffers. The slices
// grow to the fleet's high-water tenant count and stay there, so the
// steady-state pick path performs no allocations; the pad keeps
// neighbouring workers' slice headers off each other's cache lines (the
// size is pinned by a layout test).
type pickScratch struct {
	cands []fair.Candidate
	loops []*Loop
	_     [16]byte
}

// worker is one fleet goroutine: pick a loop under the fairness policy,
// serve it for the granted burst of scheduler calls, repeat. The chunk
// execution path is the same lock-free hot path as Team's — the control
// plane (pick/retire) takes the registry lock only between bursts, and
// capture (when a loop requests it) appends to the worker's private tape.
func (r *Registry) worker(tid int) {
	defer r.wg.Done()
	f := r.slowdown[tid]
	myType := r.types[tid]
	// fleet is this worker's registry-lifetime counter cell (idle time spent
	// between loops lands here, not on any tenant); per-loop counters go to
	// mc below. Both are nil when the registry runs without metrics, and the
	// bump sites cost a single predictable branch each.
	var fleet *obs.Cell
	if r.metrics != nil {
		fleet = r.metrics.Cell(tid)
	}
	// wseq totally orders this worker's captured events across loops; the
	// wall clock alone cannot (two grants can land in the same nanosecond
	// tick on coarse timers), and replay needs the per-worker grant order.
	var wseq int64
	for {
		var pickStart int64
		if fleet != nil {
			pickStart = r.now()
		}
		l, burst, gen := r.pick(tid)
		if fleet != nil {
			fleet.Idle(r.now() - pickStart)
		}
		if l == nil {
			return
		}
		cell := &l.cells[tid]
		// mb accumulates this burst's counter deltas in plain locals and is
		// applied to the loop's cell every flushEvery chunks and at every
		// burst exit — the batching that keeps the metrics path inside the
		// overhead budget (see obs.Batch).
		var mc *obs.Cell
		var mb obs.Batch
		if l.metrics != nil {
			mc = l.metrics.Cell(tid)
		}
		const flushEvery = 32
		for served := 0; served < burst; served++ {
			if r.gen.Load() != gen {
				break // a new loop arrived: give the policy a say
			}
			nowNs := r.now()
			asg, ok := l.sched.Next(tid, nowNs)
			cell.accesses += int64(asg.PoolAccesses)
			if !ok {
				if l.capture != nil || mc != nil {
					schedEnd := r.now()
					cell.finishNs = schedEnd
					if mc != nil {
						mb.SchedNs += schedEnd - nowNs
						mb.CreditClaimed += asg.CreditClaimed
						mb.CreditReturned += asg.CreditReturned
						mc.Apply(&mb)
					}
					if l.capture != nil {
						tp := &l.capture[tid].WorkerTape
						tp.Intervals = append(tp.Intervals, trace.Interval{Start: nowNs, End: schedEnd, State: trace.Sched})
						tp.Events = append(tp.Events, trace.ChunkEvent{Seq: wseq, TimeNs: nowNs,
							Tid: tid, Shard: r.types[tid], Origin: asg.Origin,
							PoolAccesses: asg.PoolAccesses,
							Timestamps: asg.Timestamps, Retire: true})
						wseq++
					}
				}
				r.retire(l, tid)
				break
			}
			cell.iters += asg.N()
			if mc != nil {
				mb.Grant(asg.N(), obs.Tier(r.dist, myType, asg.Origin))
				mb.CreditClaimed += asg.CreditClaimed
				mb.CreditReturned += asg.CreditReturned
			}
			if l.capture == nil {
				start := time.Now()
				if mc != nil {
					// The scheduling window ends where the body clock starts;
					// deriving it from `start` keeps the metrics path at the
					// same three clock reads per chunk as the bare path.
					mb.SchedNs += int64(start.Sub(r.base)) - nowNs
				}
				l.body(tid, asg.Lo, asg.Hi)
				d := int64(time.Since(start))
				throttle(d, f)
				if mc != nil {
					mb.BusyNs += throttledNs(d, f)
					if mb.Chunks >= flushEvery {
						mc.Apply(&mb)
					}
				}
				continue
			}
			schedEnd := r.now()
			start := time.Now()
			l.body(tid, asg.Lo, asg.Hi)
			throttle(int64(time.Since(start)), f)
			end := r.now()
			if mc != nil {
				mb.SchedNs += schedEnd - nowNs
				mb.BusyNs += end - schedEnd
				if mb.Chunks >= flushEvery {
					mc.Apply(&mb)
				}
			}
			tp := &l.capture[tid].WorkerTape
			tp.Intervals = append(tp.Intervals,
				trace.Interval{Start: nowNs, End: schedEnd, State: trace.Sched},
				trace.Interval{Start: schedEnd, End: end, State: trace.Running})
			tp.Events = append(tp.Events, trace.ChunkEvent{Seq: wseq, TimeNs: nowNs,
				Tid: tid, Lo: asg.Lo, Hi: asg.Hi, Shard: r.types[tid], Origin: asg.Origin,
				ExecNs: end - schedEnd,
				PoolAccesses: asg.PoolAccesses, Timestamps: asg.Timestamps})
			wseq++
		}
		if mc != nil {
			// Burst exit without retirement (generation change): publish what
			// the batch still holds before the next pick can land elsewhere.
			mc.Apply(&mb)
		}
	}
}

// throttledNs is the wall-clock occupancy of a body that measured execNs of
// its own time and was then throttled by slowdown factor f (throttle
// busy-waits roughly execNs*(f-1) more, so the worker occupied ~execNs*f).
func throttledNs(execNs int64, f float64) int64 {
	if f > 1 {
		return int64(float64(execNs) * f)
	}
	return execNs
}

// pick blocks until some admitted loop still wants scheduler calls from
// worker tid, returning it with the policy's burst and the admission
// generation, or returns nil after Close once nothing is left for this
// worker. A lone runnable loop is granted an effectively unbounded burst —
// the generation check in the worker loop restores fairness the moment a
// second loop arrives — so single-tenant execution pays one pick per loop,
// not one per chunk.
func (r *Registry) pick(tid int) (*Loop, int, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sc := &r.scratch[tid]
	for {
		cands, loops := sc.cands[:0], sc.loops[:0]
		for _, l := range r.run {
			if !l.retired[tid] {
				cands = append(cands, fair.Candidate{ID: l.id, Weight: l.weight,
					CoreType: r.types[tid], SF: l.LiveSF()})
				loops = append(loops, l)
			}
		}
		sc.cands, sc.loops = cands, loops
		gen := r.gen.Load()
		if len(cands) == 1 {
			// The policy is bypassed, not left behind: stateful policies
			// see the grant through the Observe hook, so their cursors are
			// current when a second tenant arrives.
			if ob, ok := r.policy.(fair.Observer); ok {
				ob.Observe(tid, cands[0])
			}
			return loops[0], 1 << 30, gen
		}
		if len(cands) > 0 {
			idx, burst := r.policy.Pick(tid, cands)
			if idx < 0 || idx >= len(cands) {
				idx = 0 // a broken policy must not crash the fleet
			}
			if burst < 1 {
				burst = 1
			}
			return loops[idx], burst, gen
		}
		if r.closed {
			return nil, 0, 0
		}
		// Idle: drop stale loop references (the truncated slices' backing
		// arrays still hold them) before sleeping, so a long-lived fleet
		// does not pin retired loops and their capture tapes in memory.
		full := sc.loops[:cap(sc.loops)]
		for i := range full {
			full[i] = nil
		}
		fullc := sc.cands[:cap(sc.cands)]
		for i := range fullc {
			fullc[i] = fair.Candidate{}
		}
		r.cond.Wait()
	}
}

// retire records that worker tid has no more work in loop l. The last
// retirement releases the loop's barrier: the loop leaves the runnable
// list, its stats are published, and Done/Wait unblock.
func (r *Registry) retire(l *Loop, tid int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if l.retired[tid] {
		return
	}
	l.retired[tid] = true
	l.nretired++
	if l.nretired < r.nthreads {
		return
	}
	// Swap-remove: the runnable list is consulted on every pick under this
	// lock, and fairness policies order by loop ID, not slice position, so
	// shifting the whole tail on each retirement buys nothing.
	for i, cand := range r.run {
		if cand == l {
			last := len(r.run) - 1
			r.run[i] = r.run[last]
			r.run[last] = nil
			r.run = r.run[:last]
			break
		}
	}
	if rt, ok := r.policy.(fair.Retirer); ok {
		rt.Retire(l.id) // drop cursors referencing the finished loop
	}
	l.latency = time.Since(l.submitted)
	l.stats = LoopStats{
		Iters:         make([]int64, len(l.cells)),
		SchedulerName: l.sched.Name(),
	}
	for tid := range l.cells {
		l.stats.Iters[tid] = l.cells[tid].iters
		l.stats.PoolAccesses += l.cells[tid].accesses
	}
	if est, ok := l.sched.(core.SFEstimator); ok {
		if sf, ready := est.SFEstimate(); ready {
			l.stats.SFEstimate = sf
		}
	}
	if l.metrics != nil {
		l.finishMetrics(r)
	}
	if l.capture != nil {
		l.mergeCapture(r.nthreads)
	}
	close(l.done)
}

// finishMetrics folds the loop's counter cells into its published stats at
// barrier release (under the registry lock, after every worker's retirement
// — the quiescent-merge window of obs's counter invariants). Each worker's
// barrier wait is charged as idle time against its cell, the pool's
// reweight count is read once from the scheduler, and the snapshot is both
// attached to LoopStats and accumulated into the registry's completed-loop
// aggregate for MetricsSnapshot.
func (l *Loop) finishMetrics(r *Registry) {
	var maxFinish int64
	for tid := range l.cells {
		if fn := l.cells[tid].finishNs; fn > maxFinish {
			maxFinish = fn
		}
	}
	for tid := range l.cells {
		if gap := maxFinish - l.cells[tid].finishNs; gap > 0 {
			l.metrics.Cell(tid).Idle(gap)
		}
	}
	if rc, ok := l.sched.(core.ReweightCounter); ok {
		l.metrics.Cell(0).SetReweights(rc.PoolReweights())
	}
	snap := l.metrics.Snapshot()
	l.stats.Metrics = &snap
	// Start/end on the fleet clock; mergeCapture overwrites with the same
	// values when the loop was also captured.
	l.stats.StartNs = l.startNs
	l.stats.EndNs = maxFinish
	r.retiredAgg = r.retiredAgg.Add(snap)
}

// MetricsSnapshot returns the live fleet-wide counter view: everything the
// completed loops retired plus a scrape of the in-flight loops' cells and
// the fleet's own idle cells. It returns the zero Snapshot when the
// registry was built without Metrics. Cold path: safe to call from a
// scrape handler at any rate that tolerates taking the registry lock.
func (r *Registry) MetricsSnapshot() obs.Snapshot {
	if r.metrics == nil {
		return obs.Snapshot{}
	}
	r.mu.Lock()
	agg := r.retiredAgg
	live := make([]*obs.Metrics, 0, len(r.run))
	for _, l := range r.run {
		if l.metrics != nil {
			live = append(live, l.metrics)
		}
	}
	r.mu.Unlock()
	for _, m := range live {
		agg = agg.Add(m.Snapshot())
	}
	return agg.Add(r.metrics.Snapshot())
}

// MetricsEnabled reports whether the registry was built with Metrics.
func (r *Registry) MetricsEnabled() bool { return r.metrics != nil }

// mergeCapture folds the per-worker tapes into the loop's stats once the
// barrier has released (runs under the registry lock, after every worker's
// retirement published its tape). Sync time — each worker's wait between
// its own retirement and the barrier release — is synthesized here, like
// the simulator does at its implicit barrier.
func (l *Loop) mergeCapture(nthreads int) {
	var maxFinish int64
	var nev, nph int
	for tid := 0; tid < nthreads; tid++ {
		if f := l.cells[tid].finishNs; f > maxFinish {
			maxFinish = f
		}
		nev += len(l.capture[tid].Events)
		nph += len(l.capture[tid].Phases)
	}
	tr := trace.New(nthreads)
	evs := make([]trace.ChunkEvent, 0, nev)
	phs := make([]trace.PhaseEvent, 0, nph)
	for tid := 0; tid < nthreads; tid++ {
		tp := &l.capture[tid].WorkerTape
		for _, iv := range tp.Intervals {
			tr.Add(tid, iv.Start, iv.End, iv.State)
		}
		tr.Add(tid, l.cells[tid].finishNs, maxFinish, trace.Sync)
		evs = append(evs, tp.Events...)
		phs = append(phs, tp.Phases...)
	}
	// Seq keeps the per-worker capture sequence (NOT reassigned here): it
	// is the tie-break token BuildRecord needs when merging several loops'
	// events whose wall-clock stamps collide; the Recorder assigns the
	// global sequence when a record is built.
	sortEvents(evs)
	// The sampled-capture reductions run here, after the merge sort and
	// before publication: compaction needs the engines' event order, and
	// the budget must bound what the loop's stats (and any record built
	// from them) actually retain.
	if l.captureCompact {
		evs = trace.CompactEvents(evs)
	}
	evs = trace.TrimToBudget(evs, l.captureMax, l.captureHead)
	sort.Sort(phaseEventOrder(phs))
	l.stats.StartNs = l.startNs
	l.stats.EndNs = maxFinish
	l.stats.Trace = tr
	l.stats.Events = evs
	l.stats.Phases = phs
}

// chunkEventOrder orders captured events chronologically; timestamp ties
// break by thread, then by the per-worker capture sequence (the ground
// truth for one worker's grant order, which replay depends on). A named
// sort.Interface instead of sort.Slice closures: the merge paths run per
// barrier release, and the closure variants allocate on every call.
type chunkEventOrder []trace.ChunkEvent

func (e chunkEventOrder) Len() int      { return len(e) }
func (e chunkEventOrder) Swap(i, j int) { e[i], e[j] = e[j], e[i] }
func (e chunkEventOrder) Less(i, j int) bool {
	if e[i].TimeNs != e[j].TimeNs {
		return e[i].TimeNs < e[j].TimeNs
	}
	if e[i].Tid != e[j].Tid {
		return e[i].Tid < e[j].Tid
	}
	return e[i].Seq < e[j].Seq
}

// phaseEventOrder orders phase transitions chronologically, thread as the
// tie-break (per-loop streams are already internally ordered, so stable
// merges across loops preserve each stream).
type phaseEventOrder []trace.PhaseEvent

func (e phaseEventOrder) Len() int      { return len(e) }
func (e phaseEventOrder) Swap(i, j int) { e[i], e[j] = e[j], e[i] }
func (e phaseEventOrder) Less(i, j int) bool {
	if e[i].TimeNs != e[j].TimeNs {
		return e[i].TimeNs < e[j].TimeNs
	}
	return e[i].Tid < e[j].Tid
}

// sortEvents orders captured events by chunkEventOrder.
func sortEvents(evs []trace.ChunkEvent) { sort.Sort(chunkEventOrder(evs)) }
