package rt

import (
	"bytes"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/trace"
)

// coverageFromEvents asserts the grant events tile [0, n) exactly once and
// returns the number of retire events.
func coverageFromEvents(t *testing.T, evs []trace.ChunkEvent, n int64) int {
	t.Helper()
	seen := make([]int8, n)
	retires := 0
	for _, ev := range evs {
		if ev.Retire {
			retires++
			continue
		}
		for i := ev.Lo; i < ev.Hi; i++ {
			seen[i]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("iteration %d granted %d times", i, c)
		}
	}
	return retires
}

// TestTeamParallelForCapturesTimeline is the satellite check: the real
// executor now produces a trace.Trace timeline, where before only the
// simulator did.
func TestTeamParallelForCapturesTimeline(t *testing.T) {
	team, err := NewTeam(TeamConfig{NThreads: 4, Schedule: Schedule{Kind: KindAIDStatic}, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	// The body yields after each chunk: with a no-op body on GOMAXPROCS=1
	// the first worker drains the whole pool before the rest of the fleet
	// wakes, sampling never completes, and no SF transition exists to
	// capture. Cooperative rotation guarantees every worker participates.
	const n = 20000
	var ran atomic.Int64
	stats, err := team.ParallelForChunkedStats(n, func(_ int, lo, hi int64) {
		ran.Add(hi - lo)
		runtime.Gosched()
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != n {
		t.Fatalf("ran %d iterations, want %d", ran.Load(), n)
	}
	if stats.Trace == nil {
		t.Fatal("capture produced no timeline")
	}
	if got := stats.Trace.NThreads(); got != 4 {
		t.Fatalf("timeline has %d threads, want 4", got)
	}
	totalRun := int64(0)
	for tid := 0; tid < 4; tid++ {
		totalRun += stats.Trace.TimeIn(tid, trace.Running)
		if stats.Trace.TimeIn(tid, trace.Sched) <= 0 {
			t.Errorf("thread %d recorded no Sched time", tid)
		}
	}
	if totalRun <= 0 {
		t.Error("timeline recorded no Running time")
	}
	if stats.EndNs <= stats.StartNs {
		t.Errorf("loop bounds [%d,%d] not increasing", stats.StartNs, stats.EndNs)
	}
	if retires := coverageFromEvents(t, stats.Events, n); retires != 4 {
		t.Errorf("%d retire events, want one per worker", retires)
	}
	// AID-static publishes exactly one SF transition.
	found := false
	for _, p := range stats.Phases {
		if p.Kind == "sf-published" && len(p.SF) == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("no sf-published phase captured: %+v", stats.Phases)
	}
	// Events must be time-ordered with per-worker sequence preserved.
	perTid := map[int]int64{}
	for i, ev := range stats.Events {
		if i > 0 && ev.TimeNs < stats.Events[i-1].TimeNs {
			t.Fatalf("event %d out of time order", i)
		}
		if last, ok := perTid[ev.Tid]; ok && ev.Seq <= last {
			t.Fatalf("worker %d capture sequence not increasing", ev.Tid)
		}
		perTid[ev.Tid] = ev.Seq
	}
}

// TestTeamCaptureOffByDefault: without Capture the hot path must not pay
// for tapes and the stats carry no timeline.
func TestTeamCaptureOffByDefault(t *testing.T) {
	team, err := NewTeam(TeamConfig{NThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := team.ParallelForChunkedStats(100, func(_ int, _, _ int64) {})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Trace != nil || stats.Events != nil || stats.Phases != nil {
		t.Error("capture fields populated without Capture")
	}
}

// TestRegistryBuildRecordMultiLoop captures two concurrent loops and checks
// the assembled record is a valid, codec-round-trippable multi-loop record.
func TestRegistryBuildRecordMultiLoop(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{NThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	const n0, n1 = 6000, 3000
	l0, err := reg.Submit(LoopRequest{Name: "alpha", N: n0, Capture: true, Weight: 2,
		Schedule: Schedule{Kind: KindAIDDynamic}, Body: func(_ int, _, _ int64) {}})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := reg.Submit(LoopRequest{Name: "beta", N: n1, Capture: true,
		Schedule: Schedule{Kind: KindDynamic, Chunk: 16}, Body: func(_ int, _, _ int64) {}})
	if err != nil {
		t.Fatal(err)
	}
	l0.Wait()
	l1.Wait()
	rec, err := reg.BuildRecord(l0, l1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Engine != "rt" || rec.NThreads != 4 || len(rec.Loops) != 2 {
		t.Fatalf("record header wrong: %+v", rec)
	}
	if rec.Policy == "" {
		t.Error("multi-loop record carries no policy name")
	}
	if rec.Loops[0].Schedule != "aid-dynamic,1,5" || rec.Loops[1].Schedule != "dynamic,16" {
		t.Errorf("canonical schedules wrong: %q %q", rec.Loops[0].Schedule, rec.Loops[1].Schedule)
	}
	var ev0, ev1 []trace.ChunkEvent
	for _, ev := range rec.Events {
		switch ev.Loop {
		case 0:
			ev0 = append(ev0, ev)
		case 1:
			ev1 = append(ev1, ev)
		default:
			t.Fatalf("event references loop %d", ev.Loop)
		}
		if !ev.Retire && ev.Cost <= 0 {
			// A zero-duration chunk on a coarse clock is possible, but the
			// derived cost must then be zero, never negative.
			if ev.Cost < 0 {
				t.Fatalf("event has negative derived cost: %+v", ev)
			}
		}
	}
	coverageFromEvents(t, ev0, n0)
	coverageFromEvents(t, ev1, n1)
	var buf bytes.Buffer
	if err := trace.EncodeJSONL(&buf, rec); err != nil {
		t.Fatalf("record does not encode: %v", err)
	}
	if _, err := trace.DecodeJSONL(&buf); err != nil {
		t.Fatalf("record does not decode: %v", err)
	}
}

// TestBuildRecordRejectsUncaptured: a loop without capture cannot be
// assembled into a record.
func TestBuildRecordRejectsUncaptured(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{NThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	l, err := reg.Submit(LoopRequest{N: 100, Body: func(_ int, _, _ int64) {}})
	if err != nil {
		t.Fatal(err)
	}
	l.Wait()
	if _, err := reg.BuildRecord(l); err == nil {
		t.Error("BuildRecord accepted an uncaptured loop")
	}
}
