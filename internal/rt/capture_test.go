package rt

import (
	"bytes"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/trace"
)

// coverageFromEvents asserts the grant events tile [0, n) exactly once and
// returns the number of retire events.
func coverageFromEvents(t *testing.T, evs []trace.ChunkEvent, n int64) int {
	t.Helper()
	seen := make([]int8, n)
	retires := 0
	for _, ev := range evs {
		if ev.Retire {
			retires++
			continue
		}
		for i := ev.Lo; i < ev.Hi; i++ {
			seen[i]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("iteration %d granted %d times", i, c)
		}
	}
	return retires
}

// TestTeamParallelForCapturesTimeline is the satellite check: the real
// executor now produces a trace.Trace timeline, where before only the
// simulator did.
func TestTeamParallelForCapturesTimeline(t *testing.T) {
	team, err := NewTeam(TeamConfig{NThreads: 4, Schedule: Schedule{Kind: KindAIDStatic}, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	// The body yields after each chunk: with a no-op body on GOMAXPROCS=1
	// the first worker drains the whole pool before the rest of the fleet
	// wakes, sampling never completes, and no SF transition exists to
	// capture. Cooperative rotation guarantees every worker participates.
	const n = 20000
	var ran atomic.Int64
	stats, err := team.ParallelForChunkedStats(n, func(_ int, lo, hi int64) {
		ran.Add(hi - lo)
		runtime.Gosched()
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != n {
		t.Fatalf("ran %d iterations, want %d", ran.Load(), n)
	}
	if stats.Trace == nil {
		t.Fatal("capture produced no timeline")
	}
	if got := stats.Trace.NThreads(); got != 4 {
		t.Fatalf("timeline has %d threads, want 4", got)
	}
	totalRun := int64(0)
	for tid := 0; tid < 4; tid++ {
		totalRun += stats.Trace.TimeIn(tid, trace.Running)
		if stats.Trace.TimeIn(tid, trace.Sched) <= 0 {
			t.Errorf("thread %d recorded no Sched time", tid)
		}
	}
	if totalRun <= 0 {
		t.Error("timeline recorded no Running time")
	}
	if stats.EndNs <= stats.StartNs {
		t.Errorf("loop bounds [%d,%d] not increasing", stats.StartNs, stats.EndNs)
	}
	if retires := coverageFromEvents(t, stats.Events, n); retires != 4 {
		t.Errorf("%d retire events, want one per worker", retires)
	}
	// AID-static publishes exactly one SF transition.
	found := false
	for _, p := range stats.Phases {
		if p.Kind == "sf-published" && len(p.SF) == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("no sf-published phase captured: %+v", stats.Phases)
	}
	// Events must be time-ordered with per-worker sequence preserved.
	perTid := map[int]int64{}
	for i, ev := range stats.Events {
		if i > 0 && ev.TimeNs < stats.Events[i-1].TimeNs {
			t.Fatalf("event %d out of time order", i)
		}
		if last, ok := perTid[ev.Tid]; ok && ev.Seq <= last {
			t.Fatalf("worker %d capture sequence not increasing", ev.Tid)
		}
		perTid[ev.Tid] = ev.Seq
	}
}

// TestTeamCaptureOffByDefault: without Capture the hot path must not pay
// for tapes and the stats carry no timeline.
func TestTeamCaptureOffByDefault(t *testing.T) {
	team, err := NewTeam(TeamConfig{NThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := team.ParallelForChunkedStats(100, func(_ int, _, _ int64) {})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Trace != nil || stats.Events != nil || stats.Phases != nil {
		t.Error("capture fields populated without Capture")
	}
}

// TestRegistryBuildRecordMultiLoop captures two concurrent loops and checks
// the assembled record is a valid, codec-round-trippable multi-loop record.
func TestRegistryBuildRecordMultiLoop(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{NThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	const n0, n1 = 6000, 3000
	l0, err := reg.Submit(LoopRequest{Name: "alpha", N: n0, Capture: true, Weight: 2,
		Schedule: Schedule{Kind: KindAIDDynamic}, Body: func(_ int, _, _ int64) {}})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := reg.Submit(LoopRequest{Name: "beta", N: n1, Capture: true,
		Schedule: Schedule{Kind: KindDynamic, Chunk: 16}, Body: func(_ int, _, _ int64) {}})
	if err != nil {
		t.Fatal(err)
	}
	l0.Wait()
	l1.Wait()
	rec, err := reg.BuildRecord(l0, l1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Engine != "rt" || rec.NThreads != 4 || len(rec.Loops) != 2 {
		t.Fatalf("record header wrong: %+v", rec)
	}
	if rec.Policy == "" {
		t.Error("multi-loop record carries no policy name")
	}
	if rec.Loops[0].Schedule != "aid-dynamic,1,5" || rec.Loops[1].Schedule != "dynamic,16" {
		t.Errorf("canonical schedules wrong: %q %q", rec.Loops[0].Schedule, rec.Loops[1].Schedule)
	}
	var ev0, ev1 []trace.ChunkEvent
	for _, ev := range rec.Events {
		switch ev.Loop {
		case 0:
			ev0 = append(ev0, ev)
		case 1:
			ev1 = append(ev1, ev)
		default:
			t.Fatalf("event references loop %d", ev.Loop)
		}
		if !ev.Retire && ev.Cost <= 0 {
			// A zero-duration chunk on a coarse clock is possible, but the
			// derived cost must then be zero, never negative.
			if ev.Cost < 0 {
				t.Fatalf("event has negative derived cost: %+v", ev)
			}
		}
	}
	coverageFromEvents(t, ev0, n0)
	coverageFromEvents(t, ev1, n1)
	var buf bytes.Buffer
	if err := trace.EncodeJSONL(&buf, rec); err != nil {
		t.Fatalf("record does not encode: %v", err)
	}
	if _, err := trace.DecodeJSONL(&buf); err != nil {
		t.Fatalf("record does not decode: %v", err)
	}
}

// TestCaptureBudgetBounded pins the sampling recorder's contract: a
// captured loop submitted with an event budget never publishes more than
// CaptureMaxEvents events, head and tail are retained, and compaction
// preserves the iteration total while (with a fine chunk) reducing the
// event count.
func TestCaptureBudgetBounded(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{NThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	const n, budget = 50000, 64
	l, err := reg.Submit(LoopRequest{
		Name: "budgeted", N: n, Capture: true, CaptureCompact: true,
		CaptureMaxEvents: budget,
		Schedule:         Schedule{Kind: KindDynamic, Chunk: 8},
		Body:             func(_ int, _, _ int64) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := l.Wait()
	if len(st.Events) > budget {
		t.Fatalf("budgeted capture published %d events, budget %d", len(st.Events), budget)
	}
	if len(st.Events) == 0 {
		t.Fatal("budgeted capture published no events")
	}
	// Head retention: the stream still starts in the loop's opening region
	// (dynamic grants ranges in claim order, so early events carry low Lo);
	// tail retention: it still ends in the barrier-convergence region (a
	// retirement or a grant from the top of the range).
	if first := st.Events[0]; first.Lo >= n/2 {
		t.Errorf("head not retained: first event %+v", first)
	}
	last := st.Events[len(st.Events)-1]
	if !last.Retire && last.Hi <= n/2 {
		t.Errorf("tail not retained: last event %+v", last)
	}
	// Iteration totals from the per-worker cells are exact regardless of
	// what the budget dropped.
	var total int64
	for _, it := range st.Iters {
		total += it
	}
	if total != n {
		t.Fatalf("executed %d iterations, want %d", total, n)
	}
}

// TestCaptureCompactionPreservesCoverage: with compaction but no budget the
// merged grant stream must still tile [0, n) exactly once — merges only
// coarsen contiguous runs, they never lose or duplicate iterations.
func TestCaptureCompactionPreservesCoverage(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{NThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	const n = 20000
	l, err := reg.Submit(LoopRequest{
		Name: "compacted", N: n, Capture: true, CaptureCompact: true,
		Schedule: Schedule{Kind: KindStatic, Chunk: 4},
		Body:     func(_ int, _, _ int64) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := l.Wait()
	retires := coverageFromEvents(t, st.Events, n)
	if retires != 4 {
		t.Errorf("%d retire events, want one per worker", retires)
	}
	// static,4 hands each worker a long run of contiguous chunks;
	// compaction must collapse them well below one event per chunk.
	if max := n/4 + 8; len(st.Events) >= max {
		t.Errorf("compaction kept %d events for %d chunk grants", len(st.Events), n/4)
	}
}

// TestSubmitRejectsNegativeCaptureBudget covers the validation path.
func TestSubmitRejectsNegativeCaptureBudget(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{NThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if _, err := reg.Submit(LoopRequest{N: 10, CaptureMaxEvents: -1,
		Body: func(_ int, _, _ int64) {}}); err == nil {
		t.Error("Submit accepted a negative capture budget")
	}
}

// TestBuildRecordRejectsUncaptured: a loop without capture cannot be
// assembled into a record.
func TestBuildRecordRejectsUncaptured(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{NThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	l, err := reg.Submit(LoopRequest{N: 100, Body: func(_ int, _, _ int64) {}})
	if err != nil {
		t.Fatal(err)
	}
	l.Wait()
	if _, err := reg.BuildRecord(l); err == nil {
		t.Error("BuildRecord accepted an uncaptured loop")
	}
}
