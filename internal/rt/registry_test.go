package rt

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/fair"
)

// registryTenant describes one loop of the multi-tenant conformance run.
type registryTenant struct {
	name  string
	ni    int64
	sched Schedule
}

// registryTenants mixes trip counts {0, 1, prime, big} with schedulers
// from every family, mirroring the core-level harness on the real fleet.
func registryTenants(big int64) []registryTenant {
	return []registryTenant{
		{"empty/static", 0, Schedule{Kind: KindStatic}},
		{"one/aid-static", 1, Schedule{Kind: KindAIDStatic}},
		{"prime/aid-dynamic", 10007, Schedule{Kind: KindAIDDynamic, Chunk: 1, Major: 5}},
		{"prime/guided", 10007, Schedule{Kind: KindGuided}},
		{"big/dynamic", big, Schedule{Kind: KindDynamic, Chunk: 16}},
		{"big/aid-hybrid", big, Schedule{Kind: KindAIDHybrid, Chunk: 4}},
	}
}

// TestRegistryMultiTenantConformance submits K=6 concurrent loops (mixed
// trip counts and schedulers) to one shared fleet and verifies per-loop
// exactly-once coverage, per-loop totals in the published stats, and
// independent barrier release for every tenant.
func TestRegistryMultiTenantConformance(t *testing.T) {
	big := int64(200_000)
	if testing.Short() {
		big = 40_000
	}
	reg, err := NewRegistry(RegistryConfig{NThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	tenants := registryTenants(big)
	covered := make([][]atomic.Int32, len(tenants))
	loops := make([]*Loop, len(tenants))
	for i, tn := range tenants {
		covered[i] = make([]atomic.Int32, tn.ni)
		cov := covered[i]
		loops[i], err = reg.Submit(LoopRequest{
			N:        tn.ni,
			Schedule: tn.sched,
			Body: func(_ int, lo, hi int64) {
				for j := lo; j < hi; j++ {
					cov[j].Add(1)
				}
			},
		})
		if err != nil {
			t.Fatalf("submitting %s: %v", tn.name, err)
		}
	}
	for i, tn := range tenants {
		stats := loops[i].Wait()
		var total int64
		for _, n := range stats.Iters {
			total += n
		}
		if total != tn.ni {
			t.Errorf("tenant %s: stats report %d of %d iterations", tn.name, total, tn.ni)
		}
		for j := range covered[i] {
			if c := covered[i][j].Load(); c != 1 {
				t.Fatalf("tenant %s: iteration %d covered %d times", tn.name, j, c)
			}
		}
		if loops[i].Latency() <= 0 {
			t.Errorf("tenant %s: non-positive latency %v", tn.name, loops[i].Latency())
		}
	}
}

// TestRegistryBarrierIndependence verifies per-loop barrier accounting: a
// small loop submitted behind a large one releases its own barrier while
// the large loop is still executing.
func TestRegistryBarrierIndependence(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{NThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	var longIters atomic.Int64
	long, err := reg.Submit(LoopRequest{
		N:        300_000,
		Schedule: Schedule{Kind: KindDynamic, Chunk: 4},
		Body: func(_ int, lo, hi int64) {
			for i := lo; i < hi; i++ {
				longIters.Add(1)
				spinWork(30)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var shortIters atomic.Int64
	short, err := reg.Submit(LoopRequest{
		N:        64,
		Schedule: Schedule{Kind: KindDynamic, Chunk: 4},
		Weight:   4,
		Body:     func(_ int, lo, hi int64) { shortIters.Add(hi - lo) },
	})
	if err != nil {
		t.Fatal(err)
	}
	short.Wait()
	if got := shortIters.Load(); got != 64 {
		t.Fatalf("short loop covered %d of 64", got)
	}
	select {
	case <-long.Done():
		t.Error("long loop finished before the short loop's barrier check — barrier independence untestable")
	default:
		// Expected: the short loop's barrier released on its own while the
		// long loop still owns most of the fleet.
	}
	long.Wait()
	if got := longIters.Load(); got != 300_000 {
		t.Fatalf("long loop covered %d of 300000", got)
	}
}

// TestRegistryFCFSPolicy runs two loops under the run-to-completion
// baseline policy: coverage must hold and the first submission must not
// finish after the second (head-of-line order).
func TestRegistryFCFSPolicy(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{NThreads: 4, Policy: fair.NewFCFS()})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if reg.Policy().Name() != "fcfs" {
		t.Errorf("Policy().Name() = %q", reg.Policy().Name())
	}
	var a, b atomic.Int64
	la, err := reg.Submit(LoopRequest{N: 50_000, Schedule: Schedule{Kind: KindDynamic, Chunk: 8},
		Body: func(_ int, lo, hi int64) { a.Add(hi - lo) }})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := reg.Submit(LoopRequest{N: 50_000, Schedule: Schedule{Kind: KindDynamic, Chunk: 8},
		Body: func(_ int, lo, hi int64) { b.Add(hi - lo) }})
	if err != nil {
		t.Fatal(err)
	}
	la.Wait()
	lb.Wait()
	if a.Load() != 50_000 || b.Load() != 50_000 {
		t.Errorf("coverage under FCFS: %d, %d of 50000", a.Load(), b.Load())
	}
}

func TestRegistrySubmitValidation(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{NThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	body := func(int, int64, int64) {}
	if _, err := reg.Submit(LoopRequest{N: -1, Body: body}); err == nil {
		t.Error("negative trip count accepted")
	}
	if _, err := reg.Submit(LoopRequest{N: 10}); err == nil {
		t.Error("nil body accepted")
	}
	if _, err := reg.Submit(LoopRequest{N: 10, Weight: -2, Body: body}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := reg.Submit(LoopRequest{N: 10, Schedule: Schedule{Kind: Kind(99)}, Body: body}); err == nil {
		t.Error("unknown schedule kind accepted")
	}
	l, err := reg.Submit(LoopRequest{N: 10, Body: body})
	if err != nil {
		t.Fatal(err)
	}
	if l.Weight() != 1 {
		t.Errorf("default weight = %d, want 1", l.Weight())
	}
	l.Wait()
}

func TestRegistrySubmitAfterClose(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{NThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg.Close()
	if _, err := reg.Submit(LoopRequest{N: 10, Body: func(int, int64, int64) {}}); err == nil ||
		!strings.Contains(err.Error(), "closed") {
		t.Errorf("Submit after Close: err = %v, want closed error", err)
	}
	reg.Close() // idempotent
}

// TestRegistryCloseDrains submits loops and closes immediately: Close must
// block until every admitted loop has released its barrier.
func TestRegistryCloseDrains(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{NThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	var total atomic.Int64
	loops := make([]*Loop, 5)
	for i := range loops {
		loops[i], err = reg.Submit(LoopRequest{N: 10_000, Schedule: Schedule{Kind: KindDynamic, Chunk: 16},
			Body: func(_ int, lo, hi int64) { total.Add(hi - lo) }})
		if err != nil {
			t.Fatal(err)
		}
	}
	reg.Close()
	for i, l := range loops {
		select {
		case <-l.Done():
		default:
			t.Fatalf("loop %d not drained by Close", i)
		}
	}
	if total.Load() != 50_000 {
		t.Errorf("drained %d of 50000 iterations", total.Load())
	}
}

// TestRegistryZeroTripCount: an empty loop's barrier must still release
// (every worker observes the drained pool exactly once).
func TestRegistryZeroTripCount(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{NThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ran := false
	l, err := reg.Submit(LoopRequest{N: 0, Body: func(int, int64, int64) { ran = true }})
	if err != nil {
		t.Fatal(err)
	}
	stats := l.Wait()
	if ran {
		t.Error("body ran for an empty loop")
	}
	for tid, n := range stats.Iters {
		if n != 0 {
			t.Errorf("thread %d reports %d iterations for an empty loop", tid, n)
		}
	}
}

// TestRegistrySFEstimateSurfaced checks the published stats carry the AID
// online SF estimate, like Team's.
func TestRegistrySFEstimateSurfaced(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{NThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	l, err := reg.Submit(LoopRequest{
		N:        8000,
		Schedule: Schedule{Kind: KindAIDStatic, OfflineSF: []float64{3, 1}},
		Body:     func(int, int64, int64) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := l.Wait()
	if stats.SchedulerName != "aid-static" {
		t.Errorf("SchedulerName = %q", stats.SchedulerName)
	}
	if len(stats.SFEstimate) != 2 || stats.SFEstimate[0] != 3 {
		t.Errorf("SFEstimate = %v, want offline [3 1]", stats.SFEstimate)
	}
}

func TestRegistryConfigValidation(t *testing.T) {
	if _, err := NewRegistry(RegistryConfig{NThreads: -1}); err == nil {
		t.Error("negative fleet size accepted")
	}
	if _, err := NewRegistry(RegistryConfig{NThreads: 99}); err == nil {
		t.Error("oversubscribed fleet accepted")
	}
	reg, err := NewRegistry(RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if reg.NThreads() != 8 {
		t.Errorf("default fleet size = %d, want 8 (Platform A cores)", reg.NThreads())
	}
	if reg.Slowdown(0) != 1 {
		t.Errorf("big-core slowdown = %v, want 1", reg.Slowdown(0))
	}
	if reg.Policy().Name() != "wrr" {
		t.Errorf("default policy = %q, want wrr", reg.Policy().Name())
	}
}
