// Package rt is the user-facing runtime of the reproduction — the analog of
// libgomp as the paper modified it. It provides:
//
//   - Schedule: a parsed loop-schedule selection (method + parameters),
//     configurable programmatically or through environment variables that
//     mirror the paper's setup (§4.1): GOOMP_SCHEDULE plays the role of
//     OMP_SCHEDULE (the modified GCC defaults every loop to the `runtime`
//     schedule, so this variable governs all loops), and GOOMP_AMP_AFFINITY
//     selects the SB/BS thread-to-core binding convention like
//     GOMP_AMP_AFFINITY does in the paper (§4.3).
//   - Registry: the multi-loop executor — a persistent fleet of worker
//     goroutines (one per modeled CPU, with per-worker speed throttling
//     that emulates big/small cores) serving many concurrent loop
//     submissions, each with its own scheduler, sharded pool and barrier,
//     under a pluggable fairness policy (internal/fair). This is the
//     building block for serving many users' loops at once.
//   - Team: the single-loop fork/join facade over Registry, used by the
//     runnable examples. Go offers no thread-to-core affinity, so
//     wall-clock fidelity is limited; the discrete-event engine
//     (internal/sim, including the multi-loop sim.RunLoops) carries the
//     paper's evaluation, while Team and Registry demonstrate the
//     schedulers as real concurrent code.
package rt

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/sim"
)

// Kind enumerates the loop-scheduling methods.
type Kind int

const (
	// KindStatic is OpenMP static (even contiguous blocks, compiled in).
	KindStatic Kind = iota
	// KindStaticChunked is OpenMP static,chunk (round-robin blocks).
	KindStaticChunked
	// KindDynamic is OpenMP dynamic,chunk.
	KindDynamic
	// KindGuided is OpenMP guided,chunk.
	KindGuided
	// KindAIDStatic is the paper's AID-static (§4.2, Fig. 3).
	KindAIDStatic
	// KindAIDHybrid is the paper's AID-hybrid (§4.2).
	KindAIDHybrid
	// KindAIDDynamic is the paper's AID-dynamic (§4.2, Fig. 5).
	KindAIDDynamic
	// KindAIDAuto is the §6 future-work extension implemented here: per
	// loop, the sampling phase classifies iteration costs as uniform or
	// irregular and picks the AID-hybrid or AID-dynamic treatment.
	KindAIDAuto
	// KindWorkSteal is the work-stealing alternative of §4.3: an even
	// initial split with back-half stealing from the most-loaded victim.
	KindWorkSteal
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindStaticChunked:
		return "static-chunked"
	case KindDynamic:
		return "dynamic"
	case KindGuided:
		return "guided"
	case KindAIDStatic:
		return "aid-static"
	case KindAIDHybrid:
		return "aid-hybrid"
	case KindAIDDynamic:
		return "aid-dynamic"
	case KindAIDAuto:
		return "aid-auto"
	case KindWorkSteal:
		return "work-steal"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Schedule is a fully parameterized loop-schedule selection.
type Schedule struct {
	Kind Kind
	// Chunk is the dynamic/guided/static chunk, or the AID sampling chunk
	// (the minor chunk m for AID-dynamic). Defaults to 1 where it applies.
	Chunk int64
	// Major is AID-dynamic's Major chunk M (default 5, the paper's setting).
	Major int64
	// Pct is AID-hybrid's asymmetric share (default 0.80 per §5B).
	Pct float64
	// OfflineSF, when non-nil, turns AID-static into the
	// AID-static(offline-SF) variant of §5C with the given per-core-type
	// speedup factors.
	OfflineSF []float64
	// Reweight enables SF-aware pool re-partitioning for the AID methods
	// that support it (aid-static/aid-hybrid/aid-dynamic): once the
	// scheduler's SF estimate stabilizes, the sharded pool is re-cut so
	// each core type's home shards match its consumption rate. Parsed from
	// a trailing ",rw" in GOOMP_SCHEDULE syntax.
	Reweight bool
}

// withDefaults fills unset parameters with the paper's defaults.
func (s Schedule) withDefaults() Schedule {
	if s.Chunk == 0 {
		s.Chunk = 1
	}
	if s.Major == 0 {
		s.Major = 5
	}
	if s.Pct == 0 {
		s.Pct = 0.80
	}
	return s
}

// String renders the schedule in the paper's notation, e.g. "dynamic/4" or
// "AID-dynamic/1,5"; "+rw" marks SF-aware re-partitioning.
func (s Schedule) String() string {
	rw := ""
	if s.Reweight {
		rw = "+rw"
	}
	d := s.withDefaults()
	switch s.Kind {
	case KindStatic:
		return "static"
	case KindStaticChunked:
		return fmt.Sprintf("static/%d", d.Chunk)
	case KindDynamic:
		return fmt.Sprintf("dynamic/%d", d.Chunk)
	case KindGuided:
		return fmt.Sprintf("guided/%d", d.Chunk)
	case KindAIDStatic:
		if s.OfflineSF != nil {
			return "AID-static(offline-SF)" + rw
		}
		return "AID-static" + rw
	case KindAIDHybrid:
		return fmt.Sprintf("AID-hybrid(%d%%)%s", int(d.Pct*100+0.5), rw)
	case KindAIDDynamic:
		return fmt.Sprintf("AID-dynamic/%d,%d%s", d.Chunk, d.Major, rw)
	case KindAIDAuto:
		return fmt.Sprintf("AID-auto/%d,%d", d.Chunk, d.Major)
	case KindWorkSteal:
		return fmt.Sprintf("work-steal/%d", d.Chunk)
	}
	return s.Kind.String()
}

// Canonical renders the schedule in re-parseable GOOMP_SCHEDULE syntax:
// ParseSchedule(s.Canonical()) selects the same schedule. Run records store
// this form so replay's what-if mode can rebuild the recorded schedule.
// The offline-SF table of AID-static(offline-SF) has no textual syntax, so
// Canonical returns "" for it — a record of such a run carries no
// re-parseable schedule and what-if replay demands an explicit override
// rather than silently substituting the online-sampling variant.
func (s Schedule) Canonical() string {
	rw := ""
	if s.Reweight {
		rw = ",rw"
	}
	d := s.withDefaults()
	switch s.Kind {
	case KindStatic:
		return "static"
	case KindStaticChunked:
		return fmt.Sprintf("static,%d", d.Chunk)
	case KindDynamic:
		return fmt.Sprintf("dynamic,%d", d.Chunk)
	case KindGuided:
		return fmt.Sprintf("guided,%d", d.Chunk)
	case KindAIDStatic:
		if s.OfflineSF != nil {
			return ""
		}
		return fmt.Sprintf("aid-static,%d%s", d.Chunk, rw)
	case KindAIDHybrid:
		if d.Chunk != 1 {
			return fmt.Sprintf("aid-hybrid,%d,%d%s", int(d.Pct*100+0.5), d.Chunk, rw)
		}
		return fmt.Sprintf("aid-hybrid,%d%s", int(d.Pct*100+0.5), rw)
	case KindAIDDynamic:
		return fmt.Sprintf("aid-dynamic,%d,%d%s", d.Chunk, d.Major, rw)
	case KindAIDAuto:
		return fmt.Sprintf("aid-auto,%d,%d", d.Chunk, d.Major)
	case KindWorkSteal:
		return fmt.Sprintf("work-steal,%d", d.Chunk)
	}
	return ""
}

// Factory returns a scheduler factory for the simulator or the Team
// executor.
func (s Schedule) Factory() sim.SchedulerFactory {
	d := s.withDefaults()
	return func(info core.LoopInfo) (core.Scheduler, error) {
		sched, err := d.build(info)
		if err != nil || !d.Reweight {
			return sched, err
		}
		rw, ok := sched.(interface{ SetReweight(bool) })
		if !ok {
			return nil, fmt.Errorf("rt: schedule %s does not support SF-aware reweighting", d.Kind)
		}
		rw.SetReweight(true)
		return sched, nil
	}
}

// build constructs the scheduler for an already-defaulted schedule.
func (d Schedule) build(info core.LoopInfo) (core.Scheduler, error) {
	switch d.Kind {
	case KindStatic:
		return core.NewStatic(info)
	case KindStaticChunked:
		return core.NewStaticChunked(info, d.Chunk)
	case KindDynamic:
		return core.NewDynamic(info, d.Chunk)
	case KindGuided:
		return core.NewGuided(info, d.Chunk)
	case KindAIDStatic:
		if d.OfflineSF != nil {
			return core.NewAIDStaticOffline(info, d.Chunk, d.OfflineSF)
		}
		return core.NewAIDStatic(info, d.Chunk)
	case KindAIDHybrid:
		return core.NewAIDHybrid(info, d.Chunk, d.Pct)
	case KindAIDDynamic:
		return core.NewAIDDynamic(info, d.Chunk, d.Major)
	case KindAIDAuto:
		return core.NewAIDAuto(info, d.Chunk, d.Pct, d.Major, 0)
	case KindWorkSteal:
		return core.NewWorkSteal(info, d.Chunk)
	}
	return nil, fmt.Errorf("rt: unknown schedule kind %d", int(d.Kind))
}

// reweightable reports whether a schedule kind supports the ",rw" flag.
func reweightable(k Kind) bool {
	return k == KindAIDStatic || k == KindAIDHybrid || k == KindAIDDynamic
}

// ParseSchedule parses the GOOMP_SCHEDULE syntax. Accepted forms (method
// names are case-insensitive; parameters follow after commas):
//
//	static            static,<chunk>
//	dynamic           dynamic,<chunk>
//	guided            guided,<chunk>
//	aid-static        aid-static,<chunk>
//	aid-hybrid        aid-hybrid,<pct>[,<chunk>]   (pct in percent, e.g. 80)
//	aid-dynamic       aid-dynamic,<m>,<M>
//	aid-auto          aid-auto,<m>,<M>
//	work-steal        work-steal,<chunk>
//
// The AID methods with an online SF estimate (aid-static, aid-hybrid,
// aid-dynamic) additionally accept a trailing ",rw" argument selecting
// SF-aware pool re-partitioning (Schedule.Reweight), e.g.
// "aid-dynamic,1,5,rw".
func ParseSchedule(text string) (Schedule, error) {
	parts := strings.Split(strings.TrimSpace(text), ",")
	name := strings.ToLower(strings.TrimSpace(parts[0]))
	args := parts[1:]
	reweight := false
	if n := len(args); n > 0 && strings.EqualFold(strings.TrimSpace(args[n-1]), "rw") {
		reweight = true
		args = args[:n-1]
	}
	argN := func(i int) (int64, error) {
		v, err := strconv.ParseInt(strings.TrimSpace(args[i]), 10, 64)
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("rt: bad schedule parameter %q in %q", args[i], text)
		}
		return v, nil
	}
	var s Schedule
	switch name {
	case "static":
		s.Kind = KindStatic
		if len(args) == 1 {
			c, err := argN(0)
			if err != nil {
				return Schedule{}, err
			}
			s.Kind = KindStaticChunked
			s.Chunk = c
		} else if len(args) > 1 {
			return Schedule{}, fmt.Errorf("rt: too many parameters in %q", text)
		}
	case "dynamic", "guided":
		s.Kind = KindDynamic
		if name == "guided" {
			s.Kind = KindGuided
		}
		if len(args) > 1 {
			return Schedule{}, fmt.Errorf("rt: too many parameters in %q", text)
		}
		if len(args) == 1 {
			c, err := argN(0)
			if err != nil {
				return Schedule{}, err
			}
			s.Chunk = c
		}
	case "aid-static":
		s.Kind = KindAIDStatic
		if len(args) > 1 {
			return Schedule{}, fmt.Errorf("rt: too many parameters in %q", text)
		}
		if len(args) == 1 {
			c, err := argN(0)
			if err != nil {
				return Schedule{}, err
			}
			s.Chunk = c
		}
	case "aid-hybrid":
		s.Kind = KindAIDHybrid
		if len(args) > 2 {
			return Schedule{}, fmt.Errorf("rt: too many parameters in %q", text)
		}
		if len(args) >= 1 {
			p, err := argN(0)
			if err != nil {
				return Schedule{}, err
			}
			if p > 100 {
				return Schedule{}, fmt.Errorf("rt: AID-hybrid percentage %d out of (0,100]", p)
			}
			s.Pct = float64(p) / 100
		}
		if len(args) == 2 {
			c, err := argN(1)
			if err != nil {
				return Schedule{}, err
			}
			s.Chunk = c
		}
	case "work-steal":
		s.Kind = KindWorkSteal
		if len(args) > 1 {
			return Schedule{}, fmt.Errorf("rt: too many parameters in %q", text)
		}
		if len(args) == 1 {
			c, err := argN(0)
			if err != nil {
				return Schedule{}, err
			}
			s.Chunk = c
		}
	case "aid-auto":
		s.Kind = KindAIDAuto
		if len(args) > 2 {
			return Schedule{}, fmt.Errorf("rt: too many parameters in %q", text)
		}
		if len(args) >= 1 {
			m, err := argN(0)
			if err != nil {
				return Schedule{}, err
			}
			s.Chunk = m
		}
		if len(args) == 2 {
			mm, err := argN(1)
			if err != nil {
				return Schedule{}, err
			}
			s.Major = mm
		}
	case "aid-dynamic":
		s.Kind = KindAIDDynamic
		if len(args) > 2 {
			return Schedule{}, fmt.Errorf("rt: too many parameters in %q", text)
		}
		if len(args) >= 1 {
			m, err := argN(0)
			if err != nil {
				return Schedule{}, err
			}
			s.Chunk = m
		}
		if len(args) == 2 {
			mm, err := argN(1)
			if err != nil {
				return Schedule{}, err
			}
			s.Major = mm
		}
	default:
		return Schedule{}, fmt.Errorf("rt: unknown schedule %q", name)
	}
	if reweight {
		if !reweightable(s.Kind) {
			return Schedule{}, fmt.Errorf("rt: schedule %q does not support the rw flag", name)
		}
		s.Reweight = true
	}
	return s, nil
}

// Env variable names, mirroring the paper's configuration surface.
const (
	// EnvSchedule selects the schedule applied to every parallel loop
	// (the paper's OMP_SCHEDULE under the modified compiler, §4.1).
	EnvSchedule = "GOOMP_SCHEDULE"
	// EnvAffinity selects the SB or BS binding convention (the paper's
	// GOMP_AMP_AFFINITY, §4.3).
	EnvAffinity = "GOOMP_AMP_AFFINITY"
	// EnvNThreads sets the worker count (OMP_NUM_THREADS).
	EnvNThreads = "GOOMP_NUM_THREADS"
)

// FromEnv reads the runtime configuration from the environment, with the
// given fall-backs for unset variables. It returns the schedule, binding and
// thread count.
func FromEnv(defSched Schedule, defBind amp.Binding, defThreads int) (Schedule, amp.Binding, int, error) {
	sched := defSched
	if v := os.Getenv(EnvSchedule); v != "" {
		s, err := ParseSchedule(v)
		if err != nil {
			return Schedule{}, 0, 0, err
		}
		sched = s
	}
	bind := defBind
	if v := os.Getenv(EnvAffinity); v != "" {
		switch strings.ToUpper(strings.TrimSpace(v)) {
		case "SB":
			bind = amp.BindSB
		case "BS":
			bind = amp.BindBS
		default:
			return Schedule{}, 0, 0, fmt.Errorf("rt: %s must be SB or BS, got %q", EnvAffinity, v)
		}
	}
	n := defThreads
	if v := os.Getenv(EnvNThreads); v != "" {
		parsed, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || parsed <= 0 {
			return Schedule{}, 0, 0, fmt.Errorf("rt: bad %s value %q", EnvNThreads, v)
		}
		n = parsed
	}
	return sched, bind, n, nil
}
