package rt

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/amp"
	"repro/internal/core"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindStatic: "static", KindStaticChunked: "static-chunked",
		KindDynamic: "dynamic", KindGuided: "guided",
		KindAIDStatic: "aid-static", KindAIDHybrid: "aid-hybrid",
		KindAIDDynamic: "aid-dynamic", Kind(42): "Kind(42)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestScheduleString(t *testing.T) {
	cases := []struct {
		s    Schedule
		want string
	}{
		{Schedule{Kind: KindStatic}, "static"},
		{Schedule{Kind: KindStaticChunked, Chunk: 4}, "static/4"},
		{Schedule{Kind: KindDynamic}, "dynamic/1"},
		{Schedule{Kind: KindDynamic, Chunk: 5}, "dynamic/5"},
		{Schedule{Kind: KindGuided, Chunk: 2}, "guided/2"},
		{Schedule{Kind: KindAIDStatic}, "AID-static"},
		{Schedule{Kind: KindAIDStatic, OfflineSF: []float64{3, 1}}, "AID-static(offline-SF)"},
		{Schedule{Kind: KindAIDHybrid}, "AID-hybrid(80%)"},
		{Schedule{Kind: KindAIDHybrid, Pct: 0.6}, "AID-hybrid(60%)"},
		{Schedule{Kind: KindAIDDynamic}, "AID-dynamic/1,5"},
		{Schedule{Kind: KindAIDDynamic, Chunk: 2, Major: 10}, "AID-dynamic/2,10"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestParseSchedule(t *testing.T) {
	cases := []struct {
		in   string
		want Schedule
	}{
		{"static", Schedule{Kind: KindStatic}},
		{"static,8", Schedule{Kind: KindStaticChunked, Chunk: 8}},
		{"dynamic", Schedule{Kind: KindDynamic}},
		{"dynamic,4", Schedule{Kind: KindDynamic, Chunk: 4}},
		{"guided,2", Schedule{Kind: KindGuided, Chunk: 2}},
		{"AID-STATIC", Schedule{Kind: KindAIDStatic}},
		{"aid-static,2", Schedule{Kind: KindAIDStatic, Chunk: 2}},
		{"aid-hybrid,60", Schedule{Kind: KindAIDHybrid, Pct: 0.6}},
		{"aid-dynamic,1,5", Schedule{Kind: KindAIDDynamic, Chunk: 1, Major: 5}},
		{" dynamic , 3 ", Schedule{Kind: KindDynamic, Chunk: 3}},
	}
	for _, c := range cases {
		got, err := ParseSchedule(c.in)
		if err != nil {
			t.Errorf("ParseSchedule(%q) error: %v", c.in, err)
			continue
		}
		if got.Kind != c.want.Kind || got.Chunk != c.want.Chunk ||
			got.Major != c.want.Major || got.Pct != c.want.Pct {
			t.Errorf("ParseSchedule(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	bad := []string{
		"", "nonsense", "dynamic,0", "dynamic,-3", "dynamic,x", "dynamic,1,2",
		"aid-hybrid,0", "aid-hybrid,150", "aid-dynamic,1,2,3", "static,1,2",
	}
	for _, in := range bad {
		if _, err := ParseSchedule(in); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", in)
		}
	}
}

func TestFactoryProducesRightSchedulers(t *testing.T) {
	info := core.LoopInfo{NI: 100, NThreads: 4, NumTypes: 2, TypeOf: func(tid int) int { return tid % 2 }}
	cases := []struct {
		sched Schedule
		want  string
	}{
		{Schedule{Kind: KindStatic}, "static"},
		{Schedule{Kind: KindStaticChunked, Chunk: 2}, "static-chunked"},
		{Schedule{Kind: KindDynamic}, "dynamic"},
		{Schedule{Kind: KindGuided}, "guided"},
		{Schedule{Kind: KindAIDStatic}, "aid-static"},
		{Schedule{Kind: KindAIDStatic, OfflineSF: []float64{3, 1}}, "aid-static"},
		{Schedule{Kind: KindAIDHybrid}, "aid-hybrid"},
		{Schedule{Kind: KindAIDDynamic}, "aid-dynamic"},
	}
	for _, c := range cases {
		s, err := c.sched.Factory()(info)
		if err != nil {
			t.Errorf("factory for %v: %v", c.sched, err)
			continue
		}
		if s.Name() != c.want {
			t.Errorf("factory for %v built %q", c.sched, s.Name())
		}
	}
	if _, err := (Schedule{Kind: Kind(99)}).Factory()(info); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvSchedule, "aid-dynamic,2,10")
	t.Setenv(EnvAffinity, "sb")
	t.Setenv(EnvNThreads, "6")
	sched, bind, n, err := FromEnv(Schedule{Kind: KindStatic}, amp.BindBS, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Kind != KindAIDDynamic || sched.Chunk != 2 || sched.Major != 10 {
		t.Errorf("schedule = %+v", sched)
	}
	if bind != amp.BindSB {
		t.Errorf("binding = %v", bind)
	}
	if n != 6 {
		t.Errorf("threads = %d", n)
	}
}

func TestFromEnvDefaults(t *testing.T) {
	t.Setenv(EnvSchedule, "")
	t.Setenv(EnvAffinity, "")
	t.Setenv(EnvNThreads, "")
	sched, bind, n, err := FromEnv(Schedule{Kind: KindAIDHybrid}, amp.BindBS, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Kind != KindAIDHybrid || bind != amp.BindBS || n != 8 {
		t.Errorf("defaults not honored: %+v %v %d", sched, bind, n)
	}
}

func TestFromEnvErrors(t *testing.T) {
	t.Setenv(EnvSchedule, "bogus")
	if _, _, _, err := FromEnv(Schedule{}, amp.BindBS, 8); err == nil {
		t.Error("bad schedule accepted")
	}
	t.Setenv(EnvSchedule, "")
	t.Setenv(EnvAffinity, "XX")
	if _, _, _, err := FromEnv(Schedule{}, amp.BindBS, 8); err == nil {
		t.Error("bad affinity accepted")
	}
	t.Setenv(EnvAffinity, "")
	t.Setenv(EnvNThreads, "-1")
	if _, _, _, err := FromEnv(Schedule{}, amp.BindBS, 8); err == nil {
		t.Error("bad thread count accepted")
	}
}

// --- Team (real executor) ---

func TestNewTeamDefaults(t *testing.T) {
	team, err := NewTeam(TeamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if team.NThreads() != 8 {
		t.Errorf("default team size = %d, want 8 (Platform A cores)", team.NThreads())
	}
	// Under the default BS binding, thread 0 is on a big core (slowdown 1)
	// and thread 7 on a small one (slowdown > 1).
	if team.Slowdown(0) != 1 {
		t.Errorf("thread 0 slowdown = %v, want 1", team.Slowdown(0))
	}
	if team.Slowdown(7) <= 1.5 {
		t.Errorf("thread 7 slowdown = %v, want > 1.5", team.Slowdown(7))
	}
}

func TestNewTeamValidation(t *testing.T) {
	if _, err := NewTeam(TeamConfig{NThreads: 99}); err == nil {
		t.Error("oversubscribed team accepted")
	}
	if _, err := NewTeam(TeamConfig{Profile: amp.Profile{ILP: 7}}); err == nil {
		t.Error("bad profile accepted")
	}
}

// TestNewTeamThreadCountMessage pins the validation contract: 0 is the
// documented "platform default" value and must be accepted, negatives and
// oversubscription must be rejected, and the error message must state the
// actual accepted range [0, NumCores] including the meaning of 0 — the
// message used to claim [1, N] while silently defaulting 0.
func TestNewTeamThreadCountMessage(t *testing.T) {
	team, err := NewTeam(TeamConfig{NThreads: 0})
	if err != nil {
		t.Fatalf("NThreads 0 rejected: %v", err)
	}
	if team.NThreads() != 8 {
		t.Errorf("NThreads 0 defaulted to %d, want the platform core count 8", team.NThreads())
	}
	for _, n := range []int{-1, 9, 99} {
		_, err := NewTeam(TeamConfig{NThreads: n})
		if err == nil {
			t.Errorf("NThreads %d accepted", n)
			continue
		}
		if !strings.Contains(err.Error(), "[0,8]") || !strings.Contains(err.Error(), "0 selects") {
			t.Errorf("NThreads %d error %q does not state the accepted range and the 0 default", n, err)
		}
	}
}

func TestParallelForCoverage(t *testing.T) {
	for _, sched := range []Schedule{
		{Kind: KindStatic},
		{Kind: KindDynamic, Chunk: 7},
		{Kind: KindGuided},
		{Kind: KindAIDStatic},
		{Kind: KindAIDHybrid, Pct: 0.7},
		{Kind: KindAIDDynamic, Chunk: 1, Major: 8},
	} {
		t.Run(sched.String(), func(t *testing.T) {
			team, err := NewTeam(TeamConfig{NThreads: 4, Schedule: sched})
			if err != nil {
				t.Fatal(err)
			}
			const n = 5000
			hits := make([]int32, n)
			if err := team.ParallelFor(n, func(i int64) {
				atomic.AddInt32(&hits[i], 1)
			}); err != nil {
				t.Fatal(err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("iteration %d executed %d times", i, h)
				}
			}
		})
	}
}

func TestParallelForChunked(t *testing.T) {
	team, err := NewTeam(TeamConfig{NThreads: 4, Schedule: Schedule{Kind: KindDynamic, Chunk: 16}})
	if err != nil {
		t.Fatal(err)
	}
	var sum atomic.Int64
	if err := team.ParallelForChunked(1000, func(lo, hi int64) {
		sum.Add(hi - lo)
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 1000 {
		t.Errorf("chunked coverage = %d, want 1000", sum.Load())
	}
}

func TestParallelForNegativeTripCount(t *testing.T) {
	team, _ := NewTeam(TeamConfig{NThreads: 2})
	if err := team.ParallelFor(-1, func(int64) {}); err == nil {
		t.Error("negative trip count accepted")
	}
}

func TestParallelForEmptyLoop(t *testing.T) {
	team, _ := NewTeam(TeamConfig{NThreads: 2})
	ran := false
	if err := team.ParallelFor(0, func(int64) { ran = true }); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("body ran for empty loop")
	}
}

func TestSerial(t *testing.T) {
	team, _ := NewTeam(TeamConfig{NThreads: 2})
	ran := false
	team.Serial(func() { ran = true })
	if !ran {
		t.Error("Serial did not run f")
	}
}

func TestTeamScheduleAccessor(t *testing.T) {
	s := Schedule{Kind: KindAIDDynamic, Chunk: 2, Major: 6}
	team, _ := NewTeam(TeamConfig{NThreads: 2, Schedule: s})
	if got := team.Schedule(); got.Kind != s.Kind || got.Chunk != s.Chunk || got.Major != s.Major {
		t.Errorf("Schedule() = %+v", got)
	}
}

func TestScheduleStringsAreDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range []Schedule{
		{Kind: KindStatic}, {Kind: KindDynamic}, {Kind: KindGuided},
		{Kind: KindAIDStatic}, {Kind: KindAIDHybrid}, {Kind: KindAIDDynamic},
	} {
		str := s.String()
		if seen[str] {
			t.Errorf("duplicate schedule string %q", str)
		}
		seen[str] = true
		if strings.Contains(str, "Kind(") {
			t.Errorf("schedule %v renders as raw kind: %q", s, str)
		}
	}
}

func TestParseScheduleAIDAuto(t *testing.T) {
	s, err := ParseSchedule("aid-auto,2,16")
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != KindAIDAuto || s.Chunk != 2 || s.Major != 16 {
		t.Errorf("ParseSchedule(aid-auto,2,16) = %+v", s)
	}
	if _, err := ParseSchedule("aid-auto,1,2,3"); err == nil {
		t.Error("extra aid-auto parameters accepted")
	}
	if got := (Schedule{Kind: KindAIDAuto}).String(); got != "AID-auto/1,5" {
		t.Errorf("String() = %q", got)
	}
	if KindAIDAuto.String() != "aid-auto" {
		t.Errorf("Kind.String() = %q", KindAIDAuto)
	}
}

func TestFactoryAIDAuto(t *testing.T) {
	info := core.LoopInfo{NI: 100, NThreads: 4, NumTypes: 2, TypeOf: func(tid int) int { return tid % 2 }}
	s, err := (Schedule{Kind: KindAIDAuto}).Factory()(info)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "aid-auto" {
		t.Errorf("factory built %q", s.Name())
	}
}

func TestParallelForAIDAuto(t *testing.T) {
	team, err := NewTeam(TeamConfig{NThreads: 4, Schedule: Schedule{Kind: KindAIDAuto, Chunk: 32, Major: 64}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	hits := make([]int32, n)
	if err := team.ParallelFor(n, func(i int64) {
		atomic.AddInt32(&hits[i], 1)
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("iteration %d executed %d times", i, h)
		}
	}
}

func TestWorkStealSchedule(t *testing.T) {
	s, err := ParseSchedule("work-steal,16")
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != KindWorkSteal || s.Chunk != 16 {
		t.Errorf("ParseSchedule(work-steal,16) = %+v", s)
	}
	if got := s.String(); got != "work-steal/16" {
		t.Errorf("String() = %q", got)
	}
	info := core.LoopInfo{NI: 100, NThreads: 4, NumTypes: 2, TypeOf: func(tid int) int { return tid % 2 }}
	sc, err := s.Factory()(info)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name() != "work-steal" {
		t.Errorf("factory built %q", sc.Name())
	}
	team, err := NewTeam(TeamConfig{NThreads: 4, Schedule: s})
	if err != nil {
		t.Fatal(err)
	}
	var sum atomic.Int64
	if err := team.ParallelForChunked(3000, func(lo, hi int64) { sum.Add(hi - lo) }); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 3000 {
		t.Errorf("coverage %d, want 3000", sum.Load())
	}
}

// TestScheduleCanonicalRoundTrip: ParseSchedule(s.Canonical()) must select
// the same schedule — the property run records rely on to re-run a loop
// under its recorded configuration.
func TestScheduleCanonicalRoundTrip(t *testing.T) {
	for _, txt := range []string{
		"static", "static,8", "dynamic,1", "dynamic,16", "guided,2",
		"aid-static", "aid-static,2", "aid-hybrid,70", "aid-hybrid,80,4",
		"aid-dynamic,2,10", "aid-auto,16,64", "work-steal,4",
	} {
		s, err := ParseSchedule(txt)
		if err != nil {
			t.Fatalf("%s: %v", txt, err)
		}
		c := s.Canonical()
		s2, err := ParseSchedule(c)
		if err != nil {
			t.Fatalf("%s -> Canonical %q does not parse: %v", txt, c, err)
		}
		d, d2 := s.withDefaults(), s2.withDefaults()
		if d.Kind != d2.Kind || d.Chunk != d2.Chunk || d.Major != d2.Major || d.Pct != d2.Pct {
			t.Errorf("%s -> %q round-trips to %+v, want %+v", txt, c, d2, d)
		}
		if c2 := s2.Canonical(); c2 != c {
			t.Errorf("%s: Canonical not a fixed point: %q -> %q", txt, c, c2)
		}
	}
}
