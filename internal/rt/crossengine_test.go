package rt

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/amp"
	"repro/internal/sim"
)

// spinWork burns deterministic CPU time; the result is returned so the
// compiler cannot elide the loop.
func spinWork(units int) float64 {
	x := 1.0
	for i := 0; i < units; i++ {
		x += 1.0 / (x + float64(i))
	}
	return x
}

// TestCrossEngineEquivalence runs the same seeded workload under the
// discrete-event simulator and the real-goroutine Team executor and asserts
// that the two engines agree on the things that must not depend on the
// engine: every iteration is covered exactly once, all threads participate,
// and the AID online SF estimate exists with the same structure (slowest
// type normalized to 1, big-core estimate above 1). When enough hardware
// parallelism is available for wall-clock sampling to be meaningful, it
// additionally asserts the two SF estimates converge within tolerance.
func TestCrossEngineEquivalence(t *testing.T) {
	pl := amp.PlatformA()
	profile := amp.Profile{ILP: 0.9, MemIntensity: 0.05}
	const (
		ni       = 4000
		nthreads = 8 // the full Platform A: 4 big + 4 small under BS
		chunk    = 16
		// Per-iteration spin weight: heavy enough that on an oversubscribed
		// machine the pool outlives goroutine scheduling skew (~10ms
		// preemption slices), so every worker gets to sample before the
		// loop drains and the SF transition can complete.
		spin = 20000
	)
	sched := Schedule{Kind: KindAIDStatic, Chunk: chunk}

	// Engine 1: the simulator, in virtual time.
	simCfg := sim.Config{
		Platform: pl,
		NThreads: nthreads,
		Binding:  amp.BindBS,
		Factory:  sched.Factory(),
	}
	spec := sim.LoopSpec{
		Name:    "cross-engine",
		NI:      ni,
		Profile: profile,
		Cost:    sim.UniformCost{PerIter: 60000},
	}
	simRes, err := sim.RunLoop(simCfg, spec, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Engine 2: real goroutines with emulated asymmetry, in wall-clock time.
	team, err := NewTeam(TeamConfig{
		Platform: pl,
		NThreads: nthreads,
		Binding:  amp.BindBS,
		Schedule: sched,
		Profile:  profile,
	})
	if err != nil {
		t.Fatal(err)
	}
	covered := make([]atomic.Int32, ni)
	rtRes, err := team.ParallelForChunkedStats(ni, func(_ int, lo, hi int64) {
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
			spinWork(spin)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Identical iteration coverage: exactly once under both engines.
	for i := range covered {
		if c := covered[i].Load(); c != 1 {
			t.Fatalf("rt engine covered iteration %d %d times", i, c)
		}
	}
	simTotal, rtTotal := int64(0), int64(0)
	for tid := 0; tid < nthreads; tid++ {
		simTotal += simRes.Iters[tid]
		rtTotal += rtRes.Iters[tid]
	}
	if simTotal != ni || rtTotal != ni {
		t.Fatalf("coverage differs: sim %d, rt %d, want %d", simTotal, rtTotal, ni)
	}
	if simRes.SchedulerName != rtRes.SchedulerName {
		t.Errorf("scheduler name differs across engines: %q vs %q", simRes.SchedulerName, rtRes.SchedulerName)
	}

	// Both engines must surface a structurally valid online SF estimate.
	checkSF := func(engine string, sf []float64) {
		if len(sf) != len(pl.Clusters) {
			t.Fatalf("%s: SF estimate %v has %d entries, want %d", engine, sf, len(sf), len(pl.Clusters))
		}
		slowest := math.Inf(1)
		for ty, v := range sf {
			if v <= 0 || v > 64 {
				t.Errorf("%s: SF[%d] = %v out of sane range", engine, ty, v)
			}
			if v < slowest {
				slowest = v
			}
		}
		if math.Abs(slowest-1) > 1e-9 {
			t.Errorf("%s: slowest-type SF = %v, want 1 (normalization)", engine, slowest)
		}
	}
	checkSF("sim", simRes.SFEstimate)
	if simRes.SFEstimate[0] <= 1.2 {
		t.Errorf("sim big-core SF estimate = %v, expected clearly above 1", simRes.SFEstimate[0])
	}
	if rtRes.SFEstimate == nil {
		// The sampling phase can only fail to complete when scheduling skew
		// drains the pool before some worker's first chunk — possible only
		// without real parallelism.
		if runtime.NumCPU() >= nthreads {
			t.Fatal("rt engine produced no SF estimate")
		}
		t.Logf("rt SF estimate unavailable under oversubscription (%d CPUs); sim SF %v",
			runtime.NumCPU(), simRes.SFEstimate)
		return
	}
	checkSF("rt", rtRes.SFEstimate)

	// SF convergence across engines needs real parallelism: on an
	// oversubscribed machine the wall-clock sampling window of one worker
	// includes other workers' timeslices and the estimate degenerates.
	if runtime.NumCPU() < nthreads {
		t.Logf("sim SF %v, rt SF %v (convergence check skipped: %d CPUs < %d workers)",
			simRes.SFEstimate, rtRes.SFEstimate, runtime.NumCPU(), nthreads)
		return
	}
	for ty := range simRes.SFEstimate {
		s, r := simRes.SFEstimate[ty], rtRes.SFEstimate[ty]
		ratio := r / s
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("SF estimate for core type %d diverges across engines: sim %v, rt %v", ty, s, r)
		}
	}
}

// TestCrossEngineCoverageAllSchedules sweeps every schedule kind through
// both engines on the same loop and asserts exact coverage on each.
func TestCrossEngineCoverageAllSchedules(t *testing.T) {
	pl := amp.PlatformA()
	profile := amp.Profile{ILP: 0.5, MemIntensity: 0.2}
	const ni = 2003
	schedules := []Schedule{
		{Kind: KindStatic},
		{Kind: KindStaticChunked, Chunk: 7},
		{Kind: KindDynamic, Chunk: 3},
		{Kind: KindGuided, Chunk: 2},
		{Kind: KindAIDStatic, Chunk: 4},
		{Kind: KindAIDHybrid, Chunk: 4, Pct: 0.8},
		{Kind: KindAIDDynamic, Chunk: 2, Major: 10},
		{Kind: KindAIDAuto, Chunk: 4, Major: 16},
		{Kind: KindWorkSteal, Chunk: 4},
	}
	for _, s := range schedules {
		t.Run(s.String(), func(t *testing.T) {
			simRes, err := sim.RunLoop(sim.Config{
				Platform: pl,
				NThreads: 8,
				Binding:  amp.BindBS,
				Factory:  s.Factory(),
			}, sim.LoopSpec{Name: "sweep", NI: ni, Profile: profile, Cost: sim.UniformCost{PerIter: 1000}}, 0)
			if err != nil {
				t.Fatal(err)
			}
			var simTotal int64
			for _, n := range simRes.Iters {
				simTotal += n
			}
			if simTotal != ni {
				t.Fatalf("sim covered %d of %d", simTotal, ni)
			}

			team, err := NewTeam(TeamConfig{Platform: pl, Schedule: s, Profile: profile})
			if err != nil {
				t.Fatal(err)
			}
			covered := make([]atomic.Int32, ni)
			rtRes, err := team.ParallelForChunkedStats(ni, func(_ int, lo, hi int64) {
				for i := lo; i < hi; i++ {
					covered[i].Add(1)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			var rtTotal int64
			for _, n := range rtRes.Iters {
				rtTotal += n
			}
			if rtTotal != ni {
				t.Fatalf("rt covered %d of %d", rtTotal, ni)
			}
			for i := range covered {
				if c := covered[i].Load(); c != 1 {
					t.Fatalf("iteration %d covered %d times", i, c)
				}
			}
		})
	}
}

var _ = fmt.Sprintf // keep fmt for debug additions
