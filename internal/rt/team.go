package rt

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/amp"
	"repro/internal/core"
)

// Team executes parallel loops with real goroutines, one worker per modeled
// CPU, emulating core asymmetry by throttling "small-core" workers: after
// executing a chunk for d nanoseconds, a worker on a core with slowdown
// factor f busy-waits for d·(f−1), so its effective throughput is 1/f of an
// unthrottled worker. The schedulers observe genuine wall-clock completion
// times and genuinely concurrent pool accesses, so this executor validates
// the runtime as real parallel code (the simulator validates the
// performance model).
type Team struct {
	platform *amp.Platform
	nthreads int
	binding  amp.Binding
	schedule Schedule
	slowdown []float64 // per thread, >= 1
	base     time.Time
}

// TeamConfig configures NewTeam.
type TeamConfig struct {
	// Platform provides the topology and the per-core slowdown factors;
	// defaults to Platform A.
	Platform *amp.Platform
	// NThreads defaults to the platform core count.
	NThreads int
	// Binding defaults to BS (the convention all AID variants assume).
	Binding amp.Binding
	// Schedule defaults to AID-static.
	Schedule Schedule
	// Profile is the instruction mix used to derive emulated slowdown
	// factors from the platform model; the zero value is a moderate mix.
	Profile amp.Profile
}

// NewTeam builds a team of workers.
func NewTeam(cfg TeamConfig) (*Team, error) {
	if cfg.Platform == nil {
		cfg.Platform = amp.PlatformA()
	}
	if cfg.NThreads == 0 {
		cfg.NThreads = cfg.Platform.NumCores()
	}
	if cfg.NThreads < 0 || cfg.NThreads > cfg.Platform.NumCores() {
		return nil, fmt.Errorf("rt: thread count %d out of range [1,%d]", cfg.NThreads, cfg.Platform.NumCores())
	}
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	t := &Team{
		platform: cfg.Platform,
		nthreads: cfg.NThreads,
		binding:  cfg.Binding,
		schedule: cfg.Schedule,
		slowdown: make([]float64, cfg.NThreads),
		base:     time.Now(),
	}
	// Derive each worker's slowdown from the platform speed model: the
	// fastest core type runs unthrottled; others are throttled by the
	// speed ratio.
	fastest := 0.0
	speeds := make([]float64, cfg.NThreads)
	for tid := 0; tid < cfg.NThreads; tid++ {
		cpu := cfg.Platform.CoreOf(tid, cfg.NThreads, cfg.Binding)
		speeds[tid] = cfg.Platform.Speed(cpu, cfg.Profile, 1)
		if speeds[tid] > fastest {
			fastest = speeds[tid]
		}
	}
	for tid := range speeds {
		t.slowdown[tid] = fastest / speeds[tid]
	}
	return t, nil
}

// NThreads returns the worker count.
func (t *Team) NThreads() int { return t.nthreads }

// Schedule returns the team's configured schedule.
func (t *Team) Schedule() Schedule { return t.schedule }

// Slowdown returns worker tid's emulated slowdown factor (1 = big core).
func (t *Team) Slowdown(tid int) float64 { return t.slowdown[tid] }

// now returns monotonic nanoseconds since team creation.
func (t *Team) now() int64 { return int64(time.Since(t.base)) }

// throttle busy-waits to stretch a chunk that took execNs to the duration it
// would have taken on a core slower by factor f.
func throttle(execNs int64, f float64) {
	if f <= 1 {
		return
	}
	extra := time.Duration(float64(execNs) * (f - 1))
	deadline := time.Now().Add(extra)
	for time.Now().Before(deadline) {
		// Busy wait, as a pinned thread on a slow core would keep its core
		// busy. The loop body is intentionally empty.
	}
}

// loopInfo builds the scheduler-facing loop description.
func (t *Team) loopInfo(n int64) core.LoopInfo {
	return core.LoopInfo{
		NI:       n,
		NThreads: t.nthreads,
		NumTypes: len(t.platform.Clusters),
		TypeOf: func(tid int) int {
			return t.platform.ClusterOf(t.platform.CoreOf(tid, t.nthreads, t.binding))
		},
	}
}

// ParallelFor executes body(i) for every i in [0, n) across the team's
// workers under the team's schedule, blocking until the implicit barrier
// releases (all iterations done). It corresponds to `#pragma omp parallel
// for schedule(runtime)` under the paper's modified compiler.
func (t *Team) ParallelFor(n int64, body func(i int64)) error {
	return t.ParallelForChunked(n, func(lo, hi int64) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ParallelForChunked is ParallelFor for bodies that prefer whole chunks
// (e.g. to vectorize or batch). body must process exactly [lo, hi).
func (t *Team) ParallelForChunked(n int64, body func(lo, hi int64)) error {
	_, err := t.ParallelForChunkedStats(n, func(_ int, lo, hi int64) { body(lo, hi) })
	return err
}

// LoopStats reports one real-goroutine loop execution in the same terms as
// sim.LoopResult, so the cross-engine conformance harness can compare the
// two execution engines on identical workloads.
type LoopStats struct {
	// Iters is the per-thread count of executed iterations.
	Iters []int64
	// PoolAccesses counts shared-pool RMW operations across all threads.
	PoolAccesses int64
	// SchedulerName records which method ran the loop.
	SchedulerName string
	// SFEstimate is the scheduler's online per-core-type speedup-factor
	// estimate at loop end (nil when the method derives none).
	SFEstimate []float64
}

// ParallelForChunkedStats executes body(tid, lo, hi) for every scheduled
// chunk and reports per-thread iteration counts, pool accesses and the
// scheduler's SF estimate. It is the instrumented core of the ParallelFor
// family; the tid is the worker's team-local thread ID.
func (t *Team) ParallelForChunkedStats(n int64, body func(tid int, lo, hi int64)) (LoopStats, error) {
	if n < 0 {
		return LoopStats{}, fmt.Errorf("rt: negative trip count %d", n)
	}
	sched, err := t.schedule.Factory()(t.loopInfo(n))
	if err != nil {
		return LoopStats{}, err
	}
	stats := LoopStats{
		Iters:         make([]int64, t.nthreads),
		SchedulerName: sched.Name(),
	}
	accesses := make([]int64, t.nthreads)
	var wg sync.WaitGroup
	for tid := 0; tid < t.nthreads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			f := t.slowdown[tid]
			for {
				asg, ok := sched.Next(tid, t.now())
				accesses[tid] += int64(asg.PoolAccesses)
				if !ok {
					return
				}
				stats.Iters[tid] += asg.N()
				start := time.Now()
				body(tid, asg.Lo, asg.Hi)
				throttle(int64(time.Since(start)), f)
			}
		}(tid)
	}
	wg.Wait()
	for _, a := range accesses {
		stats.PoolAccesses += a
	}
	if est, ok := sched.(core.SFEstimator); ok {
		if sf, ready := est.SFEstimate(); ready {
			stats.SFEstimate = sf
		}
	}
	return stats, nil
}

// Serial runs f on the calling goroutine, corresponding to code between
// parallel loops (executed by the master thread).
func (t *Team) Serial(f func()) { f() }
