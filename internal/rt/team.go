package rt

import (
	"fmt"
	"time"

	"repro/internal/amp"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Team executes parallel loops with real goroutines, one worker per modeled
// CPU, emulating core asymmetry by throttling "small-core" workers: after
// executing a chunk for d nanoseconds, a worker on a core with slowdown
// factor f busy-waits for d·(f−1), so its effective throughput is 1/f of an
// unthrottled worker. The schedulers observe genuine wall-clock completion
// times and genuinely concurrent pool accesses, so this executor validates
// the runtime as real parallel code (the simulator validates the
// performance model).
//
// Team is the single-loop facade over Registry: each ParallelFor call
// spins up a dedicated worker fleet, submits the one loop, waits on its
// barrier and tears the fleet down — the classic fork/join shape of
// `#pragma omp parallel for`. Long-lived services that run many loops
// (from many requests) on one persistent fleet should use Registry
// directly.
type Team struct {
	platform *amp.Platform
	nthreads int
	binding  amp.Binding
	schedule Schedule
	profile  amp.Profile
	slowdown []float64 // per thread, >= 1
	capture  bool
}

// TeamConfig configures NewTeam.
type TeamConfig struct {
	// Platform provides the topology and the per-core slowdown factors;
	// defaults to Platform A.
	Platform *amp.Platform
	// NThreads is the worker count; 0 selects the platform core count.
	// Values outside [0, NumCores] are rejected.
	NThreads int
	// Binding defaults to BS (the convention all AID variants assume).
	Binding amp.Binding
	// Schedule defaults to the zero value (the plain static schedule).
	Schedule Schedule
	// Profile is the instruction mix used to derive emulated slowdown
	// factors from the platform model; the zero value is a moderate mix.
	Profile amp.Profile
	// Capture records every ParallelFor execution: per-worker wall-clock
	// timelines, chunk grants and scheduler phase transitions, surfaced
	// through LoopStats (the real-engine analog of sim.Config.Trace).
	Capture bool
}

// NewTeam builds a team of workers.
func NewTeam(cfg TeamConfig) (*Team, error) {
	pl, nthreads, err := fleetParams(cfg.Platform, cfg.NThreads, cfg.Profile)
	if err != nil {
		return nil, err
	}
	return &Team{
		platform: pl,
		nthreads: nthreads,
		binding:  cfg.Binding,
		schedule: cfg.Schedule,
		profile:  cfg.Profile,
		slowdown: fleetSlowdowns(pl, nthreads, cfg.Binding, cfg.Profile),
		capture:  cfg.Capture,
	}, nil
}

// NThreads returns the worker count.
func (t *Team) NThreads() int { return t.nthreads }

// Schedule returns the team's configured schedule.
func (t *Team) Schedule() Schedule { return t.schedule }

// Slowdown returns worker tid's emulated slowdown factor (1 = big core).
func (t *Team) Slowdown(tid int) float64 { return t.slowdown[tid] }

// throttle busy-waits to stretch a chunk that took execNs to the duration it
// would have taken on a core slower by factor f.
func throttle(execNs int64, f float64) {
	if f <= 1 {
		return
	}
	extra := time.Duration(float64(execNs) * (f - 1))
	deadline := time.Now().Add(extra)
	for time.Now().Before(deadline) {
		// Busy wait, as a pinned thread on a slow core would keep its core
		// busy. The loop body is intentionally empty.
	}
}

// ParallelFor executes body(i) for every i in [0, n) across the team's
// workers under the team's schedule, blocking until the implicit barrier
// releases (all iterations done). It corresponds to `#pragma omp parallel
// for schedule(runtime)` under the paper's modified compiler.
func (t *Team) ParallelFor(n int64, body func(i int64)) error {
	return t.ParallelForChunked(n, func(lo, hi int64) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ParallelForChunked is ParallelFor for bodies that prefer whole chunks
// (e.g. to vectorize or batch). body must process exactly [lo, hi).
func (t *Team) ParallelForChunked(n int64, body func(lo, hi int64)) error {
	_, err := t.ParallelForChunkedStats(n, func(_ int, lo, hi int64) { body(lo, hi) })
	return err
}

// LoopStats reports one real-goroutine loop execution in the same terms as
// sim.LoopResult, so the cross-engine conformance harness can compare the
// two execution engines on identical workloads.
type LoopStats struct {
	// Iters is the per-thread count of executed iterations.
	Iters []int64
	// PoolAccesses counts shared-pool RMW operations across all threads.
	PoolAccesses int64
	// SchedulerName records which method ran the loop.
	SchedulerName string
	// SFEstimate is the scheduler's online per-core-type speedup-factor
	// estimate at loop end (nil when the method derives none).
	SFEstimate []float64
	// Metrics is the loop's runtime-counter snapshot (chunks, steals by
	// provenance tier, credit traffic, busy/sched/idle time) — populated
	// only on registries built with RegistryConfig.Metrics.
	Metrics *obs.Snapshot

	// The fields below are populated only for loops submitted with
	// LoopRequest.Capture (or run on a Team configured with Capture).

	// StartNs and EndNs bound the loop on the fleet's monotonic clock
	// (submission to barrier release).
	StartNs, EndNs int64
	// Trace is the merged per-worker wall-clock timeline: Sched for time
	// inside the scheduler, Running for chunk execution (including the
	// small-core throttle), Sync for the wait between a worker's
	// retirement and the barrier release.
	Trace *trace.Trace
	// Events is the loop's chunk-grant stream in wall-clock order; Seq
	// holds each event's per-worker capture sequence (the tie-break token
	// Registry.BuildRecord uses when interleaving several loops).
	Events []trace.ChunkEvent
	// Phases is the scheduler's transition stream (AID methods only).
	Phases []trace.PhaseEvent
}

// ParallelForChunkedStats executes body(tid, lo, hi) for every scheduled
// chunk and reports per-thread iteration counts, pool accesses and the
// scheduler's SF estimate. It is the instrumented core of the ParallelFor
// family; the tid is the worker's team-local thread ID.
func (t *Team) ParallelForChunkedStats(n int64, body func(tid int, lo, hi int64)) (LoopStats, error) {
	stats, _, err := t.run("parallel-for", n, body, false)
	return stats, err
}

// RecordParallelFor executes body like ParallelForChunkedStats with capture
// forced on and additionally assembles the serializable run record — the
// real-engine entry point of the record & replay subsystem. The record can
// be written with trace.EncodeJSONL and re-executed (exact or what-if) by
// internal/replay.
func (t *Team) RecordParallelFor(name string, n int64, body func(tid int, lo, hi int64)) (*trace.Record, LoopStats, error) {
	stats, rec, err := t.run(name, n, body, true)
	return rec, stats, err
}

// run is the shared single-loop execution path: a dedicated fleet, one
// submission, barrier wait, optional record assembly, teardown.
func (t *Team) run(name string, n int64, body func(tid int, lo, hi int64), record bool) (LoopStats, *trace.Record, error) {
	if n < 0 {
		return LoopStats{}, nil, fmt.Errorf("rt: negative trip count %d", n)
	}
	reg, err := NewRegistry(RegistryConfig{
		Platform: t.platform,
		NThreads: t.nthreads,
		Binding:  t.binding,
		Profile:  t.profile,
	})
	if err != nil {
		return LoopStats{}, nil, err
	}
	defer reg.Close()
	l, err := reg.Submit(LoopRequest{Name: name, N: n, Schedule: t.schedule, Body: body,
		Capture: t.capture || record})
	if err != nil {
		return LoopStats{}, nil, err
	}
	stats := l.Wait()
	if !record {
		return stats, nil, nil
	}
	rec, err := reg.BuildRecord(l)
	return stats, rec, err
}

// Serial runs f on the calling goroutine, corresponding to code between
// parallel loops (executed by the master thread).
func (t *Team) Serial(f func()) { f() }
