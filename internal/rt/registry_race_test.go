package rt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/fair"
)

// stressSchedules cycles every pool-backed scheduling family through the
// stress runs, mirroring internal/core/race_test.go at the registry level.
var stressSchedules = []Schedule{
	{Kind: KindDynamic, Chunk: 3},
	{Kind: KindGuided},
	{Kind: KindAIDStatic},
	{Kind: KindAIDHybrid},
	{Kind: KindAIDDynamic, Chunk: 1, Major: 5},
	{Kind: KindAIDAuto, Chunk: 2, Major: 8},
	{Kind: KindWorkSteal, Chunk: 2},
}

// TestRegistrySubmitStress hammers one fleet with concurrent submitters
// across a GOMAXPROCS sweep: every submission mixes trip counts (including
// the degenerate 0 and 1) with a different scheduler and weight, waits for
// its own barrier and verifies exactly-once coverage. Run under -race this
// exercises the control plane (submission, picking, retirement, barrier
// release) concurrently with the lock-free scheduler hot paths.
func TestRegistrySubmitStress(t *testing.T) {
	trips := []int64{0, 1, 977, 4096, 10007}
	for _, procs := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			reg, err := NewRegistry(RegistryConfig{NThreads: 8})
			if err != nil {
				t.Fatal(err)
			}
			defer reg.Close()
			const submitters = 4
			loopsEach := 6
			if testing.Short() {
				loopsEach = 3
			}
			var wg sync.WaitGroup
			for s := 0; s < submitters; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for j := 0; j < loopsEach; j++ {
						ni := trips[(s+j)%len(trips)]
						sched := stressSchedules[(s*loopsEach+j)%len(stressSchedules)]
						covered := make([]atomic.Int32, ni)
						l, err := reg.Submit(LoopRequest{
							N:        ni,
							Schedule: sched,
							Weight:   1 + (s+j)%3,
							Body: func(_ int, lo, hi int64) {
								for i := lo; i < hi; i++ {
									covered[i].Add(1)
								}
							},
						})
						if err != nil {
							t.Errorf("submitter %d loop %d: %v", s, j, err)
							return
						}
						stats := l.Wait()
						var total int64
						for _, n := range stats.Iters {
							total += n
						}
						if total != ni {
							t.Errorf("submitter %d loop %d (%s): stats cover %d of %d",
								s, j, sched, total, ni)
							return
						}
						for i := range covered {
							if c := covered[i].Load(); c != 1 {
								t.Errorf("submitter %d loop %d (%s): iteration %d covered %d times",
									s, j, sched, i, c)
								return
							}
						}
					}
				}(s)
			}
			wg.Wait()
		})
	}
}

// TestRegistryTeardownRace races Close against in-flight execution and
// further Submit attempts: submissions that beat Close must complete with
// full coverage before Close returns; submissions that lose must fail
// cleanly with the closed error.
func TestRegistryTeardownRace(t *testing.T) {
	for _, procs := range []int{2, 8} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			reg, err := NewRegistry(RegistryConfig{NThreads: 4})
			if err != nil {
				t.Fatal(err)
			}
			var mu sync.Mutex
			type admitted struct {
				l     *Loop
				total *atomic.Int64
				ni    int64
			}
			var ok []admitted
			var wg sync.WaitGroup
			for s := 0; s < 4; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for j := 0; j < 8; j++ {
						var total atomic.Int64
						ni := int64(500 + 100*j)
						l, err := reg.Submit(LoopRequest{
							N:        ni,
							Schedule: Schedule{Kind: KindDynamic, Chunk: 8},
							Body:     func(_ int, lo, hi int64) { total.Add(hi - lo) },
						})
						if err != nil {
							return // lost the race to Close: acceptable
						}
						mu.Lock()
						ok = append(ok, admitted{l, &total, ni})
						mu.Unlock()
					}
				}(s)
			}
			reg.Close()
			wg.Wait()
			mu.Lock()
			defer mu.Unlock()
			for i, a := range ok {
				select {
				case <-a.l.Done():
				default:
					t.Fatalf("admitted loop %d not drained by Close", i)
				}
				if got := a.total.Load(); got != a.ni {
					t.Errorf("admitted loop %d covered %d of %d", i, got, a.ni)
				}
			}
		})
	}
}

// TestRegistryPolicySweepStress runs the multi-tenant conformance tenants
// under both shipped policies with real concurrency, so -race sees the
// policy-specific pick paths.
func TestRegistryPolicySweepStress(t *testing.T) {
	for _, mk := range []func() fair.Policy{
		func() fair.Policy { return fair.NewWeightedRoundRobin(0) },
		func() fair.Policy { return fair.NewFCFS() },
	} {
		policy := mk()
		t.Run(policy.Name(), func(t *testing.T) {
			reg, err := NewRegistry(RegistryConfig{NThreads: 8, Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			defer reg.Close()
			tenants := registryTenants(30_000)
			loops := make([]*Loop, len(tenants))
			totals := make([]atomic.Int64, len(tenants))
			for i, tn := range tenants {
				total := &totals[i]
				loops[i], err = reg.Submit(LoopRequest{N: tn.ni, Schedule: tn.sched,
					Body: func(_ int, lo, hi int64) { total.Add(hi - lo) }})
				if err != nil {
					t.Fatalf("submitting %s: %v", tn.name, err)
				}
			}
			for i, tn := range tenants {
				loops[i].Wait()
				if got := totals[i].Load(); got != tn.ni {
					t.Errorf("tenant %s covered %d of %d under %s", tn.name, got, tn.ni, policy.Name())
				}
			}
		})
	}
}
