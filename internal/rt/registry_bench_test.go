package rt

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/fair"
)

// BenchmarkMultiLoop measures aggregate multi-tenant throughput on a fixed
// 8-worker fleet: the same total iteration count split across 1, 4 or 16
// concurrent loop submissions under weighted round-robin. The acceptance
// signal is that aggregate throughput (the iters/s metric) holds steady or
// improves as tenancy rises — the registry control plane must not collapse
// when many loops share the fleet. It is the rt-level companion of
// internal/pool's BenchmarkChunkRemoval.
func BenchmarkMultiLoop(b *testing.B) {
	const totalIters = 1 << 17
	for _, nloops := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("loops=%d", nloops), func(b *testing.B) {
			reg, err := NewRegistry(RegistryConfig{NThreads: 8})
			if err != nil {
				b.Fatal(err)
			}
			defer reg.Close()
			perLoop := int64(totalIters / nloops)
			sched := Schedule{Kind: KindDynamic, Chunk: 64}
			var sink atomic.Int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loops := make([]*Loop, nloops)
				for j := range loops {
					loops[j], err = reg.Submit(LoopRequest{
						N:        perLoop,
						Schedule: sched,
						Body:     func(_ int, lo, hi int64) { sink.Add(hi - lo) },
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				for _, l := range loops {
					l.Wait()
				}
			}
			b.StopTimer()
			if want := int64(b.N) * int64(nloops) * perLoop; sink.Load() != want {
				b.Fatalf("covered %d of %d iterations", sink.Load(), want)
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)*float64(totalIters)/secs, "iters/s")
			}
		})
	}

	// The SF-loop rows: aid-dynamic tenants (the schedulers that publish live
	// SF estimates) under plain WRR versus the SF-aware policy, so the cost
	// of steering — the extra SF reads and the subset partition per pick —
	// shows up next to the baseline in the same BENCH_multiloop.json.
	for _, pol := range []struct {
		name string
		mk   func() fair.Policy
	}{
		{"wrr", func() fair.Policy { return fair.NewWeightedRoundRobin(0) }},
		{"sf-aware", func() fair.Policy { return fair.NewSFAware(0, 0) }},
	} {
		b.Run(fmt.Sprintf("loops=4/sched=aid-dynamic/policy=%s", pol.name), func(b *testing.B) {
			reg, err := NewRegistry(RegistryConfig{NThreads: 8, Policy: pol.mk()})
			if err != nil {
				b.Fatal(err)
			}
			defer reg.Close()
			const nloops = 4
			perLoop := int64(totalIters / nloops)
			sched := Schedule{Kind: KindAIDDynamic, Chunk: 1, Major: 5}
			var sink atomic.Int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loops := make([]*Loop, nloops)
				for j := range loops {
					loops[j], err = reg.Submit(LoopRequest{
						N:        perLoop,
						Schedule: sched,
						Body:     func(_ int, lo, hi int64) { sink.Add(hi - lo) },
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				for _, l := range loops {
					l.Wait()
				}
			}
			b.StopTimer()
			if want := int64(b.N) * nloops * perLoop; sink.Load() != want {
				b.Fatalf("covered %d of %d iterations", sink.Load(), want)
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)*float64(totalIters)/secs, "iters/s")
			}
		})
	}
}
