package rt

import (
	"sync/atomic"
	"testing"

	"repro/internal/amp"
	"repro/internal/sim"
)

// TestCrossEngineZooEquivalence runs the same loop through both engines on
// the new zoo presets — the clustered big.LITTLE with private per-cluster
// LLCs and the P/E-core hybrid desktop — and asserts engine-independent
// invariants on each: exact single coverage, full-fleet participation in
// the iteration totals, and matching scheduler identity. This is the
// equivalence gate for platforms whose topology matrices actually exercise
// the nearest-victim steal order (Cluster has a cross-package tier, Hybrid
// has two same-package E-clusters).
func TestCrossEngineZooEquivalence(t *testing.T) {
	profile := amp.Profile{ILP: 0.6, MemIntensity: 0.15}
	const ni = 3001
	schedules := []Schedule{
		{Kind: KindDynamic, Chunk: 5},
		{Kind: KindAIDStatic, Chunk: 8},
		{Kind: KindAIDDynamic, Chunk: 4, Major: 20},
	}
	for _, name := range []string{"Cluster", "Hybrid"} {
		pl, ok := amp.Lookup(name)
		if !ok {
			t.Fatalf("zoo preset %q not registered", name)
		}
		nthreads := pl.NumCores()
		for _, s := range schedules {
			t.Run(name+"/"+s.String(), func(t *testing.T) {
				simRes, err := sim.RunLoop(sim.Config{
					Platform: pl,
					NThreads: nthreads,
					Binding:  amp.BindBS,
					Factory:  s.Factory(),
				}, sim.LoopSpec{Name: "zoo", NI: ni, Profile: profile,
					Cost: sim.UniformCost{PerIter: 2000}}, 0)
				if err != nil {
					t.Fatal(err)
				}
				var simTotal int64
				for _, n := range simRes.Iters {
					simTotal += n
				}
				if simTotal != ni {
					t.Fatalf("sim covered %d of %d on %s", simTotal, ni, name)
				}
				if simRes.EnergyJ <= 0 {
					t.Errorf("sim reported no energy on %s", name)
				}

				team, err := NewTeam(TeamConfig{
					Platform: pl,
					NThreads: nthreads,
					Binding:  amp.BindBS,
					Schedule: s,
					Profile:  profile,
				})
				if err != nil {
					t.Fatal(err)
				}
				covered := make([]atomic.Int32, ni)
				rtRes, err := team.ParallelForChunkedStats(ni, func(_ int, lo, hi int64) {
					for i := lo; i < hi; i++ {
						covered[i].Add(1)
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				var rtTotal int64
				for _, n := range rtRes.Iters {
					rtTotal += n
				}
				if rtTotal != ni {
					t.Fatalf("rt covered %d of %d on %s", rtTotal, ni, name)
				}
				for i := range covered {
					if c := covered[i].Load(); c != 1 {
						t.Fatalf("iteration %d covered %d times on %s", i, c, name)
					}
				}
				if simRes.SchedulerName != rtRes.SchedulerName {
					t.Errorf("scheduler name differs across engines on %s: %q vs %q",
						name, simRes.SchedulerName, rtRes.SchedulerName)
				}
			})
		}
	}
}
