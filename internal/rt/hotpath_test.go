package rt

import (
	"runtime"
	"sync/atomic"
	"testing"
	"unsafe"
)

// TestRegistryHotLayout is the false-sharing guard for the registry's hot
// data, the rt companion of pool.TestShardLayout: per-worker cells and pick
// scratch must each fill exactly one cache line (so worker i's updates never
// invalidate worker i+1's line), and the admission generation — loaded by
// every worker once per served chunk — must sit clear of both the control
// plane's mutex and the slice headers the pick path reads.
func TestRegistryHotLayout(t *testing.T) {
	if got := unsafe.Sizeof(workerCell{}); got != 64 {
		t.Errorf("sizeof(workerCell) = %d, want 64 (one cache line per worker)", got)
	}
	if got := unsafe.Sizeof(pickScratch{}); got != 64 {
		t.Errorf("sizeof(pickScratch) = %d, want 64 (one cache line per worker)", got)
	}
	var r Registry
	scratchEnd := unsafe.Offsetof(r.scratch) + unsafe.Sizeof(r.scratch)
	genOff := unsafe.Offsetof(r.gen)
	if gap := genOff - scratchEnd; gap < 64 {
		t.Errorf("gen is %d bytes after the preceding field, want >= 64 (own cache line)", gap)
	}
	if gap := unsafe.Offsetof(r.mu) - (genOff + unsafe.Sizeof(r.gen)); gap < 56 {
		t.Errorf("mu is %d bytes after gen, want >= 56 (Submit's increment must not share the mutex line)", gap)
	}
}

// TestRegistrySteadyStateAllocs pins the allocation-free hot path end to
// end: with the fleet warm (scratch grown, policy cursors populated), a
// multi-tenant run of tens of thousands of chunks may only allocate the
// per-submission constants (loop handles, schedulers, pool shards) — if the
// per-chunk path (claim, serve, pick) allocates, the delta explodes past the
// threshold and this test fails make ci.
func TestRegistrySteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	reg, err := NewRegistry(RegistryConfig{NThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	var sink atomic.Int64
	run := func(n int64) {
		a, err := reg.Submit(LoopRequest{N: n, Schedule: Schedule{Kind: KindDynamic, Chunk: 4},
			Body: func(_ int, lo, hi int64) { sink.Add(hi - lo) }})
		if err != nil {
			t.Fatal(err)
		}
		b, err := reg.Submit(LoopRequest{N: n, Schedule: Schedule{Kind: KindAIDHybrid, Chunk: 1},
			Body: func(_ int, lo, hi int64) { sink.Add(hi - lo) }})
		if err != nil {
			t.Fatal(err)
		}
		a.Wait()
		b.Wait()
	}
	run(50000) // warm: scratch growth, policy maps, timer setup

	const n = 100000 // ~25k dynamic chunks + ~100k hybrid chunks per run
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	run(n)
	runtime.ReadMemStats(&m1)
	delta := m1.Mallocs - m0.Mallocs
	// Submission constants (schedulers, shards, cells, handles) are a few
	// hundred objects; 125k chunks at even one alloc each would be 1000x
	// that. The threshold splits the difference conservatively.
	if delta > 4000 {
		t.Errorf("steady-state run of ~125k chunks allocated %d objects, want < 4000 (per-chunk path must not allocate)", delta)
	}
	if got := sink.Load(); got != 2*50000+2*n {
		t.Fatalf("covered %d iterations, want %d", got, 2*50000+2*n)
	}
}

// BenchmarkHotPath measures the registry's steady-state per-iteration cost
// on the claim hot path — submit one loop per b.N batch and drive it through
// the fleet — at the fine chunk sizes where per-chunk overhead dominates.
// With -benchmem this is the allocation trajectory the issue pins: the
// steady-state rows must report 0 allocs/op beyond the per-submission
// constants (which amortize to ~0 over the iteration counts measured).
func BenchmarkHotPath(b *testing.B) {
	for _, c := range []struct {
		name  string
		sched Schedule
	}{
		{"sched=dynamic/chunk=1", Schedule{Kind: KindDynamic, Chunk: 1}},
		{"sched=dynamic/chunk=16", Schedule{Kind: KindDynamic, Chunk: 16}},
		{"sched=aid-hybrid/chunk=1", Schedule{Kind: KindAIDHybrid, Chunk: 1}},
	} {
		b.Run(c.name, func(b *testing.B) {
			reg, err := NewRegistry(RegistryConfig{NThreads: 4})
			if err != nil {
				b.Fatal(err)
			}
			defer reg.Close()
			var sink atomic.Int64
			run := func(n int64) {
				l, err := reg.Submit(LoopRequest{N: n, Schedule: c.sched,
					Body: func(_ int, lo, hi int64) { sink.Add(hi - lo) }})
				if err != nil {
					b.Fatal(err)
				}
				l.Wait()
			}
			run(1 << 14) // warm the fleet before the clock starts
			b.ReportAllocs()
			b.ResetTimer()
			run(int64(b.N))
			b.StopTimer()
			if got := sink.Load(); got != int64(b.N)+1<<14 {
				b.Fatalf("covered %d iterations, want %d", got, int64(b.N)+1<<14)
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "iters/s")
			}
		})
	}
}
