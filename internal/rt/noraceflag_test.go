//go:build !race

package rt

// raceEnabled gates tests whose assertions (allocation counts, layout-level
// timing) are not meaningful under the race detector's instrumentation.
const raceEnabled = false
