package rt

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestRegistryMetricsCounters checks the counter wiring end to end: a loop
// run on a metrics-enabled registry publishes a snapshot whose totals match
// the loop's ground truth (every iteration counted exactly once, busy time
// accumulated, occupancy conserved across core types), and the fleet-wide
// MetricsSnapshot view agrees with the per-loop one.
func TestRegistryMetricsCounters(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{NThreads: 4, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	const n = 5000
	var sink atomic.Int64
	l, err := reg.Submit(LoopRequest{N: n, Schedule: Schedule{Kind: KindAIDDynamic, Chunk: 8, Major: 64, Reweight: true},
		Body: func(_ int, lo, hi int64) { sink.Add(hi - lo) }})
	if err != nil {
		t.Fatal(err)
	}
	st := l.Wait()
	if sink.Load() != n {
		t.Fatalf("covered %d iterations, want %d", sink.Load(), n)
	}
	if st.Metrics == nil {
		t.Fatal("LoopStats.Metrics is nil on a metrics-enabled registry")
	}
	m := st.Metrics
	if m.Iters != n {
		t.Errorf("snapshot Iters = %d, want %d", m.Iters, n)
	}
	if m.Chunks <= 0 {
		t.Errorf("snapshot Chunks = %d, want > 0", m.Chunks)
	}
	if m.BusyNs <= 0 {
		t.Errorf("snapshot BusyNs = %d, want > 0", m.BusyNs)
	}
	if got := len(m.Workers); got != reg.NThreads() {
		t.Fatalf("snapshot has %d worker rows, want %d", got, reg.NThreads())
	}
	var witers, wbusy int64
	for _, w := range m.Workers {
		witers += w.Iters
		wbusy += w.BusyNs
	}
	if witers != m.Iters {
		t.Errorf("per-worker iters sum to %d, total says %d", witers, m.Iters)
	}
	var occ int64
	for _, o := range m.OccupancyNs {
		occ += o
	}
	if occ != wbusy {
		t.Errorf("per-type occupancy sums to %d ns, per-worker busy to %d ns", occ, wbusy)
	}
	if steals := m.StealsHome + m.StealsSamePkg + m.StealsCross; steals > m.Chunks {
		t.Errorf("tier buckets count %d grants, more than the %d chunks granted", steals, m.Chunks)
	}
	if st.EndNs <= st.StartNs {
		t.Errorf("loop bounds [%d, %d] not increasing", st.StartNs, st.EndNs)
	}
	snap := reg.MetricsSnapshot()
	if snap.Iters != n {
		t.Errorf("fleet snapshot Iters = %d, want %d (one retired loop)", snap.Iters, n)
	}
	if snap.Chunks != m.Chunks {
		t.Errorf("fleet snapshot Chunks = %d, loop says %d", snap.Chunks, m.Chunks)
	}
}

// TestRegistryMetricsDisabled checks the off switch: without
// RegistryConfig.Metrics no snapshot is attached and the fleet view is the
// zero Snapshot.
func TestRegistryMetricsDisabled(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{NThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	l, err := reg.Submit(LoopRequest{N: 100, Body: func(_ int, _, _ int64) {}})
	if err != nil {
		t.Fatal(err)
	}
	if st := l.Wait(); st.Metrics != nil {
		t.Error("LoopStats.Metrics set on a registry built without Metrics")
	}
	if snap := reg.MetricsSnapshot(); snap.Iters != 0 || snap.Workers != nil {
		t.Errorf("MetricsSnapshot = %+v, want zero Snapshot when disabled", snap)
	}
}

// TestRegistryMetricsSteadyStateAllocs is TestRegistrySteadyStateAllocs with
// the counters switched on: the metrics layer rides the same lock-free hot
// path and must not add a single steady-state allocation — this is the gate
// behind the issue's "zero-alloc with metrics enabled" guarantee, run by
// make obs-check (and alloc-check's Allocs pattern) without the race
// detector.
func TestRegistryMetricsSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	reg, err := NewRegistry(RegistryConfig{NThreads: 4, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	var sink atomic.Int64
	run := func(n int64) {
		a, err := reg.Submit(LoopRequest{N: n, Schedule: Schedule{Kind: KindDynamic, Chunk: 4},
			Body: func(_ int, lo, hi int64) { sink.Add(hi - lo) }})
		if err != nil {
			t.Fatal(err)
		}
		b, err := reg.Submit(LoopRequest{N: n, Schedule: Schedule{Kind: KindAIDHybrid, Chunk: 1},
			Body: func(_ int, lo, hi int64) { sink.Add(hi - lo) }})
		if err != nil {
			t.Fatal(err)
		}
		a.Wait()
		b.Wait()
	}
	run(50000) // warm: scratch growth, policy maps, timer setup

	const n = 100000 // ~25k dynamic chunks + ~100k hybrid chunks per run
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	run(n)
	runtime.ReadMemStats(&m1)
	delta := m1.Mallocs - m0.Mallocs
	// Same budget as the metrics-off gate: the per-submission constants now
	// include two obs.Metrics cell arrays and two barrier-release snapshots
	// (a few dozen objects); the per-chunk counter bumps must add zero.
	if delta > 4000 {
		t.Errorf("metrics-on steady-state run of ~125k chunks allocated %d objects, want < 4000 (counter bumps must not allocate)", delta)
	}
	if got := sink.Load(); got != 2*50000+2*n {
		t.Fatalf("covered %d iterations, want %d", got, 2*50000+2*n)
	}
}

// BenchmarkMetricsOverhead compares the steady-state chunk path with the
// counters off and on — the issue's <=5% overhead budget is read off these
// two rows (pinned in BENCH_obs.json by make bench-short). The name
// deliberately does not match the BenchmarkHotPath pattern so the hotpath
// baseline comparison keeps its exact row set.
func BenchmarkMetricsOverhead(b *testing.B) {
	for _, c := range []struct {
		name    string
		metrics bool
	}{
		{"metrics=off/sched=dynamic/chunk=1", false},
		{"metrics=on/sched=dynamic/chunk=1", true},
	} {
		b.Run(c.name, func(b *testing.B) {
			reg, err := NewRegistry(RegistryConfig{NThreads: 4, Metrics: c.metrics})
			if err != nil {
				b.Fatal(err)
			}
			defer reg.Close()
			var sink atomic.Int64
			run := func(n int64) {
				l, err := reg.Submit(LoopRequest{N: n, Schedule: Schedule{Kind: KindDynamic, Chunk: 1},
					Body: func(_ int, lo, hi int64) { sink.Add(hi - lo) }})
				if err != nil {
					b.Fatal(err)
				}
				l.Wait()
			}
			run(1 << 14) // warm the fleet before the clock starts
			b.ReportAllocs()
			b.ResetTimer()
			run(int64(b.N))
			b.StopTimer()
			if got := sink.Load(); got != int64(b.N)+1<<14 {
				b.Fatalf("covered %d iterations, want %d", got, int64(b.N)+1<<14)
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "iters/s")
			}
		})
	}
}
