package trace

import (
	"fmt"
)

// Recorder accumulates a Record during one run. It is single-writer: the
// discrete-event simulator records directly from its event loop, and the
// real-goroutine runtime records into per-worker buffers (WorkerTape) that
// the registry merges and feeds to the Recorder under its lock at barrier
// release, so the lock-free loop hot path never touches the Recorder.
//
// A Recorder serves exactly one run (one sim.RunLoop, one sim.RunLoops, or
// one rt loop/record batch): BeginRun fails on reuse.
type Recorder struct {
	rec   Record
	begun bool
	seq   int64
}

// RunMeta is the run-level header BeginRun stamps into the record.
type RunMeta struct {
	Engine     string
	Platform   PlatformRecord
	NThreads   int
	Binding    string
	Policy     string
	StartNs    int64
	Migrations []MigrationRecord
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// BeginRun stamps the run header. It fails if the recorder already served a
// run — a recorder must not be shared between runs, or the resulting record
// would interleave two event streams.
func (r *Recorder) BeginRun(meta RunMeta) error {
	if r.begun {
		return fmt.Errorf("trace: recorder already holds a run (one Recorder per recorded run)")
	}
	r.begun = true
	r.rec = Record{
		Version:    RecordVersion,
		Engine:     meta.Engine,
		Platform:   meta.Platform,
		NThreads:   meta.NThreads,
		Binding:    meta.Binding,
		Policy:     meta.Policy,
		StartNs:    meta.StartNs,
		Migrations: meta.Migrations,
	}
	return nil
}

// AddLoop registers a loop descriptor and returns its index (the value
// chunk events must carry in their Loop field).
func (r *Recorder) AddLoop(l LoopRecord) int {
	l.Index = len(r.rec.Loops)
	r.rec.Loops = append(r.rec.Loops, l)
	return l.Index
}

// SetLoopSchedule attaches the re-parseable schedule text to a registered
// loop (callers that know the rt.Schedule set it; engines only know the
// resolved scheduler name).
func (r *Recorder) SetLoopSchedule(idx int, text string) {
	r.rec.Loops[idx].Schedule = text
}

// ReserveChunks pre-sizes the event stream for n upcoming Chunk calls, so
// bulk merges (the registry feeding a whole run's worth of events) append
// without reallocating mid-stream.
func (r *Recorder) ReserveChunks(n int) {
	if free := cap(r.rec.Events) - len(r.rec.Events); free < n {
		evs := make([]ChunkEvent, len(r.rec.Events), len(r.rec.Events)+n)
		copy(evs, r.rec.Events)
		r.rec.Events = evs
	}
}

// Chunk appends one grant event, assigning its global sequence number.
func (r *Recorder) Chunk(ev ChunkEvent) {
	ev.Seq = r.seq
	r.seq++
	r.rec.Events = append(r.rec.Events, ev)
}

// Phase appends one scheduler transition.
func (r *Recorder) Phase(p PhaseEvent) {
	r.rec.Phases = append(r.rec.Phases, p)
	if p.SF != nil {
		r.rec.SFSamples = append(r.rec.SFSamples, SFSample{TimeNs: p.TimeNs, Loop: p.Loop, SF: p.SF})
	}
}

// SFSample appends one SF-trajectory point (engines add the final estimate
// of each loop at barrier release; transition-published estimates are added
// by Phase automatically).
func (r *Recorder) SFSample(s SFSample) {
	r.rec.SFSamples = append(r.rec.SFSamples, s)
}

// WorkerTape is one worker's append-only capture buffer under the
// real-goroutine engine. Only the owning worker appends, so the loop hot
// path needs no synchronization; publication to the merger happens through
// the registry lock at retirement. The registry owns the merge (it alone
// knows the per-worker capture order that breaks wall-clock ties); merged
// streams enter the Recorder through Chunk/Phase/SFSample.
type WorkerTape struct {
	Events    []ChunkEvent
	Phases    []PhaseEvent
	Intervals []Interval
}

// Reserve pre-sizes the tape for roughly nEvents chunk grants — nEvents
// event slots plus the two intervals (sched + running) each grant appends —
// so the capturing hot path does not grow its buffers mid-run. An estimate
// is fine: appends beyond the reservation still work, they just pay the
// reallocation the reservation exists to avoid.
func (t *WorkerTape) Reserve(nEvents int) {
	if nEvents <= 0 {
		return
	}
	if cap(t.Events) < nEvents {
		t.Events = make([]ChunkEvent, len(t.Events), nEvents)
	}
	if n := 2*nEvents + 1; cap(t.Intervals) < n {
		t.Intervals = make([]Interval, len(t.Intervals), n)
	}
}

// AttachTimeline stores the per-thread timeline (single-loop runs).
func (r *Recorder) AttachTimeline(t *Trace) {
	r.rec.Timeline = TimelineOf(t)
}

// EndRun finalizes the record with the run's makespan.
func (r *Recorder) EndRun(makespanNs int64) {
	r.rec.MakespanNs = makespanNs
}

// Record returns the accumulated record. The recorder retains ownership;
// callers must not mutate it while recording is still in progress.
func (r *Recorder) Record() *Record { return &r.rec }
