package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/amp"
)

// RecordVersion is the current serialization format version. Decode accepts
// exactly the versions in [1, RecordVersion]; a record written by a newer
// build fails loudly instead of being misinterpreted.
const RecordVersion = 1

// Record is a complete, serializable description of one recorded run — the
// persistent form of the Paraver-style data this package previously only
// rendered and threw away. A record captures everything internal/replay
// needs to re-execute the run deterministically in virtual time: the
// platform model, the loop descriptors (workload + cost profile), every
// chunk grant with its runtime-cost metadata, the AID schedulers' phase
// transitions, the SF-estimate trajectory, and (for single-loop runs) the
// per-thread timeline.
//
// Records round-trip losslessly through EncodeJSONL/DecodeJSONL:
// DecodeJSONL(EncodeJSONL(r)) is reflect.DeepEqual to r.
type Record struct {
	// Version is the serialization format version (RecordVersion).
	Version int `json:"version"`
	// Engine identifies the producer: "sim" (discrete-event, virtual ns) or
	// "rt" (real goroutines, monotonic wall-clock ns).
	Engine string `json:"engine"`
	// Platform is the full machine model, sufficient to rebuild it.
	Platform PlatformRecord `json:"platform"`
	// NThreads is the worker-fleet size of the recorded run.
	NThreads int `json:"nthreads"`
	// Binding is the thread-to-core convention, "BS" or "SB".
	Binding string `json:"binding"`
	// Policy names the fairness policy of a multi-loop run ("" for
	// single-loop fork/join runs).
	Policy string `json:"policy,omitempty"`
	// StartNs is the run's start time on the producing engine's clock;
	// event times are absolute on that clock, not offsets from StartNs.
	StartNs int64 `json:"start_ns"`
	// MakespanNs is the start-to-last-barrier-release duration.
	MakespanNs int64 `json:"makespan_ns"`
	// Migrations lists the OS-driven thread migrations injected into the
	// run (sim only); replay re-injects them so speed tables evolve
	// identically.
	Migrations []MigrationRecord `json:"migrations,omitempty"`

	// Loops are the run's loop descriptors; ChunkEvent.Loop indexes them.
	Loops []LoopRecord `json:"-"`
	// Events is the chronological stream of chunk grants and retirements.
	Events []ChunkEvent `json:"-"`
	// Phases is the stream of AID scheduler transitions.
	Phases []PhaseEvent `json:"-"`
	// SFSamples is the SF-estimate trajectory (one sample per transition
	// that published an estimate, plus the final estimate per loop).
	SFSamples []SFSample `json:"-"`
	// Timeline is the per-thread interval timeline of single-loop runs
	// (nil when not captured, e.g. multi-loop runs).
	Timeline []IntervalRecord `json:"-"`
}

// PlatformRecord is the serializable form of an amp.Platform.
type PlatformRecord struct {
	Name     string        `json:"name"`
	Clusters []amp.Cluster `json:"clusters"`
	Overhead amp.Overheads `json:"overhead"`
}

// PlatformRecordOf snapshots a platform into its serializable form.
func PlatformRecordOf(p *amp.Platform) PlatformRecord {
	return PlatformRecord{
		Name:     p.Name,
		Clusters: append([]amp.Cluster(nil), p.Clusters...),
		Overhead: p.Overhead,
	}
}

// Platform rebuilds the modeled machine.
func (pr PlatformRecord) Platform() (*amp.Platform, error) {
	return amp.New(pr.Name, pr.Clusters, pr.Overhead)
}

// MigrationRecord is one injected OS-driven thread migration.
type MigrationRecord struct {
	AtNs  int64 `json:"at_ns"`
	Tid   int   `json:"tid"`
	ToCPU int   `json:"to_cpu"`
}

// LoopRecord describes one loop of the recorded run.
type LoopRecord struct {
	// Index is the loop's position in Record.Loops (and the value
	// ChunkEvent.Loop carries).
	Index int `json:"index"`
	// Name is the loop's report name (e.g. "ep-main").
	Name string `json:"name"`
	// NI is the trip count.
	NI int64 `json:"ni"`
	// Weight is the fairness weight under multi-loop execution.
	Weight int `json:"weight,omitempty"`
	// Scheduler is the scheduling method as the scheduler reported it
	// (core.Scheduler.Name, e.g. "aid-dynamic").
	Scheduler string `json:"scheduler"`
	// Schedule is the re-parseable schedule selection in GOOMP_SCHEDULE
	// syntax (e.g. "aid-dynamic,1,5"). Replay's keep-recorded-schedule
	// what-if mode needs it; recorders that cannot derive it leave it
	// empty, and what-if then requires an explicit schedule override.
	Schedule string `json:"schedule,omitempty"`
	// Profile is the loop body's instruction mix.
	Profile amp.Profile `json:"profile"`
	// Cost is the closed-form cost model when the producer recognized one;
	// nil means replay reconstructs a piecewise cost from the per-event
	// Cost fields.
	Cost *CostRecord `json:"cost,omitempty"`
}

// CostRecord is the serializable form of the closed-form cost models.
type CostRecord struct {
	// Kind is "uniform", "linear" or "block".
	Kind string `json:"kind"`
	// Base is the uniform per-iteration cost, the linear base, or the
	// block base.
	Base float64 `json:"base"`
	// Slope is the linear drift (kind "linear").
	Slope float64 `json:"slope,omitempty"`
	// Amp, BlockLen and Seed parameterize block-correlated noise (kind
	// "block").
	Amp      float64 `json:"amp,omitempty"`
	BlockLen int64   `json:"block_len,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`
}

// ChunkEvent is one scheduler grant: either a chunk assignment or, with
// Retire set, the final empty call that sends the thread to the loop's
// barrier (which still costs pool accesses and is therefore recorded).
type ChunkEvent struct {
	// Seq is the event's position in the engine's global grant order.
	Seq int64 `json:"seq"`
	// TimeNs is when the grant was issued on the producing engine's clock.
	TimeNs int64 `json:"time_ns"`
	// Tid is the worker thread the grant went to.
	Tid int `json:"tid"`
	// Loop indexes Record.Loops.
	Loop int `json:"loop"`
	// Lo, Hi delimit the granted iterations [Lo, Hi); both zero on retire.
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	// Shard is the core-type shard the grant was served from (the
	// thread's home cluster at grant time).
	Shard int `json:"shard"`
	// Origin is the chunk's provenance as the scheduler reported it: the
	// owner core type of the shard the iterations were claimed from, or
	// core.OriginShared (-1) for central single-shard pools. Replayed
	// verbatim so the per-shard contention and provenance-tiered locality
	// charges match the original run.
	Origin int `json:"origin,omitempty"`
	// Cost is the chunk's work in abstract units (the simulator's
	// RangeUnits; derived from ExecNs and the speed model under rt).
	Cost float64 `json:"cost,omitempty"`
	// ExecNs is the chunk's execution time on the producing engine.
	ExecNs int64 `json:"exec_ns,omitempty"`
	// PoolAccesses and Timestamps are the runtime-cost metadata of the
	// scheduler call, replayed verbatim so virtual-time charges match.
	PoolAccesses int `json:"pool,omitempty"`
	Timestamps   int `json:"ts,omitempty"`
	// Retire marks the final empty grant of (Loop, Tid).
	Retire bool `json:"retire,omitempty"`
}

// PhaseEvent is one recorded AID scheduler transition (see
// core.PhaseEvent; Loop additionally indexes Record.Loops).
type PhaseEvent struct {
	TimeNs int64     `json:"time_ns"`
	Tid    int       `json:"tid"`
	Loop   int       `json:"loop"`
	Epoch  int       `json:"epoch"`
	Kind   string    `json:"kind"`
	SF     []float64 `json:"sf,omitempty"`
}

// SFSample is one point of a loop's SF-estimate trajectory.
type SFSample struct {
	TimeNs int64     `json:"time_ns"`
	Loop   int       `json:"loop"`
	SF     []float64 `json:"sf"`
}

// IntervalRecord is one serialized timeline interval.
type IntervalRecord struct {
	Tid     int   `json:"tid"`
	StartNs int64 `json:"start_ns"`
	EndNs   int64 `json:"end_ns"`
	State   State `json:"state"`
}

// Trace reconstructs the per-thread timeline, or nil when the record
// carries none.
func (r *Record) Trace() *Trace {
	if len(r.Timeline) == 0 {
		return nil
	}
	t := New(r.NThreads)
	for _, iv := range r.Timeline {
		t.Add(iv.Tid, iv.StartNs, iv.EndNs, iv.State)
	}
	return t
}

// TimelineOf flattens a timeline into its serializable form (threads in
// order, intervals in time order — the canonical layout DecodeJSONL
// produces).
func TimelineOf(t *Trace) []IntervalRecord {
	if t == nil {
		return nil
	}
	var out []IntervalRecord
	for tid := 0; tid < t.NThreads(); tid++ {
		for _, iv := range t.Intervals(tid) {
			out = append(out, IntervalRecord{Tid: tid, StartNs: iv.Start, EndNs: iv.End, State: iv.State})
		}
	}
	return out
}

// Validate checks a record's internal consistency (the invariants Decode
// enforces and replay relies on).
func (r *Record) Validate() error {
	if r.Version < 1 || r.Version > RecordVersion {
		return fmt.Errorf("trace: record version %d outside supported [1,%d]", r.Version, RecordVersion)
	}
	if r.Engine != "sim" && r.Engine != "rt" {
		return fmt.Errorf("trace: unknown record engine %q", r.Engine)
	}
	if r.NThreads <= 0 {
		return fmt.Errorf("trace: record has non-positive thread count %d", r.NThreads)
	}
	if r.Binding != "BS" && r.Binding != "SB" {
		return fmt.Errorf("trace: record binding %q is neither BS nor SB", r.Binding)
	}
	for i, l := range r.Loops {
		if l.Index != i {
			return fmt.Errorf("trace: loop %d carries index %d", i, l.Index)
		}
		if l.NI < 0 {
			return fmt.Errorf("trace: loop %d has negative trip count %d", i, l.NI)
		}
	}
	for i, ev := range r.Events {
		if ev.Loop < 0 || ev.Loop >= len(r.Loops) {
			return fmt.Errorf("trace: event %d references loop %d of %d", i, ev.Loop, len(r.Loops))
		}
		if ev.Tid < 0 || ev.Tid >= r.NThreads {
			return fmt.Errorf("trace: event %d references thread %d of %d", i, ev.Tid, r.NThreads)
		}
		if !ev.Retire && ev.Hi <= ev.Lo {
			return fmt.Errorf("trace: event %d grants empty range [%d,%d)", i, ev.Lo, ev.Hi)
		}
	}
	for i, p := range r.Phases {
		if p.Loop < 0 || p.Loop >= len(r.Loops) {
			return fmt.Errorf("trace: phase %d references loop %d of %d", i, p.Loop, len(r.Loops))
		}
		if p.Tid < 0 || p.Tid >= r.NThreads {
			return fmt.Errorf("trace: phase %d references thread %d of %d", i, p.Tid, r.NThreads)
		}
	}
	for i, s := range r.SFSamples {
		if s.Loop < 0 || s.Loop >= len(r.Loops) {
			return fmt.Errorf("trace: SF sample %d references loop %d of %d", i, s.Loop, len(r.Loops))
		}
	}
	for i, iv := range r.Timeline {
		if iv.Tid < 0 || iv.Tid >= r.NThreads {
			return fmt.Errorf("trace: timeline interval %d references thread %d of %d", i, iv.Tid, r.NThreads)
		}
	}
	return nil
}

// jsonlLine is the envelope of one serialized line: a type tag plus the
// type-specific payload.
type jsonlLine struct {
	T string          `json:"t"`
	D json.RawMessage `json:"d"`
}

// Line type tags of the JSONL format.
const (
	lineRun      = "run"
	lineLoop     = "loop"
	lineEvent    = "ev"
	linePhase    = "phase"
	lineSF       = "sf"
	lineInterval = "iv"
)

func writeLine(w *bufio.Writer, tag string, v any) error {
	d, err := json.Marshal(v)
	if err != nil {
		return err
	}
	env, err := json.Marshal(jsonlLine{T: tag, D: d})
	if err != nil {
		return err
	}
	if _, err := w.Write(env); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// EncodeJSONL writes the record as JSON Lines: a "run" header line (version,
// engine, platform, fleet shape, makespan) followed by one line per loop
// descriptor, chunk event, phase transition, SF sample and timeline
// interval, in that order. The encoding is deterministic: encoding the same
// record twice yields byte-identical output (the property `make
// replay-determinism` checks end to end).
func EncodeJSONL(w io.Writer, r *Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if err := writeLine(bw, lineRun, r); err != nil {
		return err
	}
	for i := range r.Loops {
		if err := writeLine(bw, lineLoop, &r.Loops[i]); err != nil {
			return err
		}
	}
	for i := range r.Events {
		if err := writeLine(bw, lineEvent, &r.Events[i]); err != nil {
			return err
		}
	}
	for i := range r.Phases {
		if err := writeLine(bw, linePhase, &r.Phases[i]); err != nil {
			return err
		}
	}
	for i := range r.SFSamples {
		if err := writeLine(bw, lineSF, &r.SFSamples[i]); err != nil {
			return err
		}
	}
	for i := range r.Timeline {
		if err := writeLine(bw, lineInterval, &r.Timeline[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeJSONL reads a record previously written by EncodeJSONL. It fails on
// unknown versions, unknown line types and structurally invalid records, so
// a corrupt or future-format file cannot silently replay as garbage.
func DecodeJSONL(rd io.Reader) (*Record, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var rec *Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var env jsonlLine
		if err := json.Unmarshal(raw, &env); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		if rec == nil && env.T != lineRun {
			return nil, fmt.Errorf("trace: line %d: expected run header, got %q", lineNo, env.T)
		}
		switch env.T {
		case lineRun:
			if rec != nil {
				return nil, fmt.Errorf("trace: line %d: duplicate run header", lineNo)
			}
			rec = &Record{}
			if err := json.Unmarshal(env.D, rec); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			if rec.Version < 1 || rec.Version > RecordVersion {
				return nil, fmt.Errorf("trace: unsupported record version %d (this build reads [1,%d])", rec.Version, RecordVersion)
			}
		case lineLoop:
			var l LoopRecord
			if err := json.Unmarshal(env.D, &l); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			rec.Loops = append(rec.Loops, l)
		case lineEvent:
			var ev ChunkEvent
			if err := json.Unmarshal(env.D, &ev); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			rec.Events = append(rec.Events, ev)
		case linePhase:
			var p PhaseEvent
			if err := json.Unmarshal(env.D, &p); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			rec.Phases = append(rec.Phases, p)
		case lineSF:
			var s SFSample
			if err := json.Unmarshal(env.D, &s); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			rec.SFSamples = append(rec.SFSamples, s)
		case lineInterval:
			var iv IntervalRecord
			if err := json.Unmarshal(env.D, &iv); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			rec.Timeline = append(rec.Timeline, iv)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown line type %q", lineNo, env.T)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading record: %w", err)
	}
	if rec == nil {
		return nil, fmt.Errorf("trace: empty record stream")
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return rec, nil
}
