package trace

import (
	"reflect"
	"testing"
)

func grant(seq, t int64, tid, loop int, lo, hi, execNs int64, pool int) ChunkEvent {
	return ChunkEvent{Seq: seq, TimeNs: t, Tid: tid, Loop: loop, Lo: lo, Hi: hi,
		ExecNs: execNs, Cost: float64(execNs), PoolAccesses: pool}
}

func retire(seq, t int64, tid, loop int) ChunkEvent {
	return ChunkEvent{Seq: seq, TimeNs: t, Tid: tid, Loop: loop, Retire: true, PoolAccesses: 1}
}

// TestCompactMergesAdjacentSameThread: contiguous grants of one worker
// collapse even when another worker's events interleave, and the merged
// event sums the additive fields while keeping the first grant's stamp.
func TestCompactMergesAdjacentSameThread(t *testing.T) {
	evs := []ChunkEvent{
		grant(0, 100, 0, 0, 0, 4, 50, 1),
		grant(1, 110, 1, 0, 100, 104, 60, 1), // other thread interleaves
		grant(2, 160, 0, 0, 4, 8, 55, 1),     // contiguous with seq 0
		grant(3, 170, 1, 0, 104, 108, 65, 1), // contiguous with seq 1
		grant(4, 220, 0, 0, 8, 12, 52, 1),    // extends the merged run again
	}
	got := CompactEvents(evs)
	want := []ChunkEvent{
		grant(0, 100, 0, 0, 0, 12, 157, 3),
		grant(1, 110, 1, 0, 100, 108, 125, 2),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("compacted = %+v\nwant %+v", got, want)
	}
}

// TestCompactRespectsBoundaries: non-contiguous ranges, different loops and
// retirements all break a merge run.
func TestCompactRespectsBoundaries(t *testing.T) {
	evs := []ChunkEvent{
		grant(0, 100, 0, 0, 0, 4, 50, 1),
		grant(1, 150, 0, 0, 8, 12, 50, 1),  // gap: a steal landed in between
		grant(2, 200, 0, 1, 12, 16, 50, 1), // different loop
		retire(3, 250, 0, 1),
		grant(4, 300, 0, 1, 16, 20, 50, 1), // after a retire: no merge
	}
	got := CompactEvents(evs)
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("boundary-separated events were merged: %+v", got)
	}
	// Totals must be preserved by compaction whatever merges happen.
	sum := func(evs []ChunkEvent) (iters int64, pool int) {
		for _, ev := range evs {
			iters += ev.Hi - ev.Lo
			pool += ev.PoolAccesses
		}
		return
	}
	wantIters, wantPool := sum(evs)
	gotIters, gotPool := sum(got)
	if gotIters != wantIters || gotPool != wantPool {
		t.Fatalf("compaction changed totals: iters %d->%d pool %d->%d", wantIters, gotIters, wantPool, gotPool)
	}
}

func TestCompactEmpty(t *testing.T) {
	if got := CompactEvents(nil); got != nil {
		t.Fatalf("CompactEvents(nil) = %v", got)
	}
}

// TestTrimToBudget pins head/tail retention: first head events, last
// budget-head events, middle dropped.
func TestTrimToBudget(t *testing.T) {
	evs := make([]ChunkEvent, 10)
	for i := range evs {
		evs[i] = grant(int64(i), int64(100*i), 0, 0, int64(i), int64(i+1), 1, 1)
	}
	got := TrimToBudget(evs, 4, 1)
	if len(got) != 4 {
		t.Fatalf("trimmed to %d events, want 4", len(got))
	}
	wantSeqs := []int64{0, 7, 8, 9}
	for i, ev := range got {
		if ev.Seq != wantSeqs[i] {
			t.Fatalf("kept seqs %v, want %v", []int64{got[0].Seq, got[1].Seq, got[2].Seq, got[3].Seq}, wantSeqs)
		}
	}
	// Under budget: untouched (same backing array, no copy).
	if got := TrimToBudget(evs, 20, 5); len(got) != len(evs) {
		t.Fatalf("under-budget trim dropped events: %d of %d", len(got), len(evs))
	}
	// Unbounded budget.
	if got := TrimToBudget(evs, 0, 5); len(got) != len(evs) {
		t.Fatalf("budget 0 must mean unbounded, got %d events", len(got))
	}
	// Head clamping.
	if got := TrimToBudget(evs, 3, 99); len(got) != 3 || got[0].Seq != 0 || got[2].Seq != 2 {
		t.Fatalf("head>budget clamp broken: %+v", got)
	}
	if got := TrimToBudget(evs, 3, -1); len(got) != 3 || got[0].Seq != 7 {
		t.Fatalf("negative head clamp broken: %+v", got)
	}
}
