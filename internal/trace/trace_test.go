package trace

import (
	"strings"
	"testing"
)

func TestNewPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestAddAndQuery(t *testing.T) {
	tr := New(2)
	tr.Add(0, 0, 100, Running)
	tr.Add(0, 100, 120, Sched)
	tr.Add(0, 120, 200, Sync)
	tr.Add(1, 0, 200, Running)
	if got := tr.EndTime(); got != 200 {
		t.Errorf("EndTime = %d, want 200", got)
	}
	if got := tr.TimeIn(0, Running); got != 100 {
		t.Errorf("TimeIn(0,Running) = %d, want 100", got)
	}
	if got := tr.TimeIn(0, Sched); got != 20 {
		t.Errorf("TimeIn(0,Sched) = %d, want 20", got)
	}
	if got := tr.TimeIn(1, Running); got != 200 {
		t.Errorf("TimeIn(1,Running) = %d, want 200", got)
	}
	if got := tr.NThreads(); got != 2 {
		t.Errorf("NThreads = %d", got)
	}
}

func TestAddMergesAdjacentSameState(t *testing.T) {
	tr := New(1)
	tr.Add(0, 0, 50, Running)
	tr.Add(0, 50, 100, Running)
	if got := len(tr.Intervals(0)); got != 1 {
		t.Errorf("adjacent same-state intervals not merged: %d intervals", got)
	}
	tr.Add(0, 100, 150, Sync)
	if got := len(tr.Intervals(0)); got != 2 {
		t.Errorf("state change should create a new interval: %d", got)
	}
}

func TestAddDropsEmpty(t *testing.T) {
	tr := New(1)
	tr.Add(0, 100, 100, Running)
	tr.Add(0, 100, 90, Running)
	if got := len(tr.Intervals(0)); got != 0 {
		t.Errorf("empty/negative intervals recorded: %d", got)
	}
}

func TestAddPanicsOnOverlap(t *testing.T) {
	tr := New(1)
	tr.Add(0, 0, 100, Running)
	defer func() {
		if recover() == nil {
			t.Error("overlapping Add did not panic")
		}
	}()
	tr.Add(0, 50, 150, Sync)
}

func TestUtilizationAndImbalance(t *testing.T) {
	tr := New(2)
	// Thread 0 runs the whole time; thread 1 runs half then waits.
	tr.Add(0, 0, 1000, Running)
	tr.Add(1, 0, 500, Running)
	tr.Add(1, 500, 1000, Sync)
	if got := tr.Utilization(0); got != 1.0 {
		t.Errorf("Utilization(0) = %v", got)
	}
	if got := tr.Utilization(1); got != 0.5 {
		t.Errorf("Utilization(1) = %v", got)
	}
	if got := tr.ImbalancePct(); got != 50 {
		t.Errorf("ImbalancePct = %v, want 50", got)
	}
}

func TestImbalanceBalanced(t *testing.T) {
	tr := New(4)
	for tid := 0; tid < 4; tid++ {
		tr.Add(tid, 0, 1000, Running)
	}
	if got := tr.ImbalancePct(); got != 0 {
		t.Errorf("balanced trace ImbalancePct = %v", got)
	}
}

func TestSchedOverheadPct(t *testing.T) {
	tr := New(1)
	tr.Add(0, 0, 90, Running)
	tr.Add(0, 90, 100, Sched)
	if got := tr.SchedOverheadPct(); got != 10 {
		t.Errorf("SchedOverheadPct = %v, want 10", got)
	}
}

func TestEmptyTraceMetrics(t *testing.T) {
	tr := New(2)
	if tr.EndTime() != 0 || tr.ImbalancePct() != 0 || tr.SchedOverheadPct() != 0 || tr.Utilization(0) != 0 {
		t.Error("empty trace should report zero metrics")
	}
	out := tr.Render(40)
	if !strings.Contains(out, "time 0 .. 0 ns") {
		t.Errorf("empty render missing header: %q", out)
	}
}

func TestRenderShape(t *testing.T) {
	tr := New(2)
	tr.Add(0, 0, 1000, Running)
	tr.Add(1, 0, 500, Running)
	tr.Add(1, 500, 1000, Sync)
	out := tr.Render(40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + 2 thread rows + footer
	if len(lines) != 4 {
		t.Fatalf("render has %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "T1 ") || !strings.HasPrefix(lines[2], "T2 ") {
		t.Errorf("thread rows mislabeled: %q %q", lines[1], lines[2])
	}
	// Thread 1's row should be all '#'; thread 2's second half mostly '.'.
	row1 := lines[1][strings.Index(lines[1], "|")+1 : strings.LastIndex(lines[1], "|")]
	if strings.ContainsAny(row1, ". +") {
		t.Errorf("thread 1 row should be fully Running: %q", row1)
	}
	row2 := lines[2][strings.Index(lines[2], "|")+1 : strings.LastIndex(lines[2], "|")]
	firstHalf := row2[:20]
	secondHalf := row2[20:]
	if strings.Count(firstHalf, "#") < 18 {
		t.Errorf("thread 2 first half should be Running: %q", firstHalf)
	}
	if strings.Count(secondHalf, ".") < 18 {
		t.Errorf("thread 2 second half should be Sync: %q", secondHalf)
	}
}

func TestRenderDefaultWidth(t *testing.T) {
	tr := New(1)
	tr.Add(0, 0, 100, Running)
	out := tr.Render(0) // falls back to 80 columns
	lines := strings.Split(out, "\n")
	row := lines[1]
	inner := row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
	if len(inner) != 80 {
		t.Errorf("default width = %d, want 80", len(inner))
	}
}

func TestStateString(t *testing.T) {
	if Running.String() != "Running" || Sched.String() != "Sched" || Sync.String() != "Sync" {
		t.Error("State.String() wrong")
	}
	if State(9).String() != "State(9)" {
		t.Errorf("unknown state: %q", State(9).String())
	}
}

func TestAddPanicsOnBadTid(t *testing.T) {
	for _, tid := range []int{-1, 2, 100} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("Add(tid=%d) did not panic", tid)
					return
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "out of range") || !strings.Contains(msg, "tid") {
					t.Errorf("Add(tid=%d) panic %v lacks a descriptive message", tid, r)
				}
			}()
			New(2).Add(tid, 0, 10, Running)
		}()
	}
}

func TestAllSyncThreads(t *testing.T) {
	// Threads that never ran anything (e.g. a zero-trip loop's barrier wait)
	// must not divide by zero or report phantom imbalance.
	tr := New(3)
	for tid := 0; tid < 3; tid++ {
		tr.Add(tid, 0, 500, Sync)
	}
	if got := tr.ImbalancePct(); got != 0 {
		t.Errorf("ImbalancePct = %v, want 0 for all-Sync trace", got)
	}
	if got := tr.SchedOverheadPct(); got != 0 {
		t.Errorf("SchedOverheadPct = %v, want 0", got)
	}
	if got := tr.Utilization(1); got != 0 {
		t.Errorf("Utilization = %v, want 0", got)
	}
	out := tr.Render(20)
	if !strings.Contains(out, "....................") {
		t.Errorf("all-Sync render should be dotted: %q", out)
	}
}

func TestSingleMergedInterval(t *testing.T) {
	// Contiguous same-state Adds collapse to ONE stored interval, so the
	// serialized timeline of a merged trace stays minimal.
	tr := New(1)
	tr.Add(0, 0, 10, Running)
	tr.Add(0, 10, 25, Running)
	tr.Add(0, 25, 40, Running)
	if ivs := tr.Intervals(0); len(ivs) != 1 || ivs[0] != (Interval{Start: 0, End: 40, State: Running}) {
		t.Errorf("intervals = %+v, want one merged [0,40) Running", ivs)
	}
}
