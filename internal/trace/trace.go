// Package trace records per-thread execution timelines in the style of the
// Paraver traces the paper uses to visualize load imbalance (Figs. 1 and 4).
// Each worker thread contributes a sequence of intervals in one of three
// states — Running (useful iteration work), Sched (runtime scheduling and
// fork/join overhead), and Sync (waiting at the implicit barrier) — and the
// package renders them as an ASCII Gantt chart plus utilization metrics.
package trace

import (
	"fmt"
	"strings"
)

// State classifies what a thread was doing during an interval, mirroring the
// three categories in the paper's trace legends.
type State int

const (
	// Running means the thread executed loop iterations or serial work.
	Running State = iota
	// Sched means the thread was inside the runtime system (pool accesses,
	// sampling bookkeeping, fork/join).
	Sched
	// Sync means the thread waited at a barrier.
	Sync
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Running:
		return "Running"
	case Sched:
		return "Sched"
	case Sync:
		return "Sync"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// glyph is the ASCII rendering of each state.
func (s State) glyph() byte {
	switch s {
	case Running:
		return '#'
	case Sched:
		return '+'
	default:
		return '.'
	}
}

// Interval is a half-open time span [Start, End) in one state.
type Interval struct {
	Start, End int64
	State      State
}

// Trace accumulates intervals for a fixed number of threads. The zero value
// is not usable; call New. Trace is not safe for concurrent use; the
// simulator is single-goroutine and the real executor records per thread
// then merges.
type Trace struct {
	perThread [][]Interval
}

// New returns a trace for nThreads threads.
func New(nThreads int) *Trace {
	if nThreads <= 0 {
		panic(fmt.Sprintf("trace: non-positive thread count %d", nThreads))
	}
	return &Trace{perThread: make([][]Interval, nThreads)}
}

// NThreads returns the number of threads in the trace.
func (t *Trace) NThreads() int { return len(t.perThread) }

// Add appends an interval for a thread. Zero-length intervals are dropped;
// an interval that continues the previous one in the same state is merged.
// Intervals must be appended in non-decreasing time order per thread. An
// out-of-range tid panics with a descriptive message (it is a programming
// error in the recording engine, not a recoverable condition).
func (t *Trace) Add(tid int, start, end int64, s State) {
	if tid < 0 || tid >= len(t.perThread) {
		panic(fmt.Sprintf("trace: Add tid %d out of range [0,%d)", tid, len(t.perThread)))
	}
	if end <= start {
		return
	}
	ivs := t.perThread[tid]
	if n := len(ivs); n > 0 {
		if last := &ivs[n-1]; last.End > start {
			panic(fmt.Sprintf("trace: thread %d interval [%d,%d) overlaps previous end %d", tid, start, end, last.End))
		} else if last.End == start && last.State == s {
			last.End = end
			return
		}
	}
	t.perThread[tid] = append(ivs, Interval{Start: start, End: end, State: s})
}

// Intervals returns thread tid's recorded intervals (not a copy; callers
// must not modify it).
func (t *Trace) Intervals(tid int) []Interval { return t.perThread[tid] }

// EndTime returns the latest interval end across all threads.
func (t *Trace) EndTime() int64 {
	var end int64
	for _, ivs := range t.perThread {
		if n := len(ivs); n > 0 && ivs[n-1].End > end {
			end = ivs[n-1].End
		}
	}
	return end
}

// TimeIn returns the total time thread tid spent in state s.
func (t *Trace) TimeIn(tid int, s State) int64 {
	var sum int64
	for _, iv := range t.perThread[tid] {
		if iv.State == s {
			sum += iv.End - iv.Start
		}
	}
	return sum
}

// Utilization returns the fraction of the full trace duration that thread
// tid spent Running.
func (t *Trace) Utilization(tid int) float64 {
	end := t.EndTime()
	if end == 0 {
		return 0
	}
	return float64(t.TimeIn(tid, Running)) / float64(end)
}

// ImbalancePct quantifies load imbalance as the percentage of total trace
// time that the least-utilized thread spends not Running relative to the
// most-utilized one: 100·(maxRun − minRun)/maxRun. A perfectly balanced
// trace scores 0.
func (t *Trace) ImbalancePct() float64 {
	var minRun, maxRun int64 = -1, 0
	for tid := range t.perThread {
		r := t.TimeIn(tid, Running)
		if minRun == -1 || r < minRun {
			minRun = r
		}
		if r > maxRun {
			maxRun = r
		}
	}
	if maxRun == 0 {
		return 0
	}
	return 100 * float64(maxRun-minRun) / float64(maxRun)
}

// SchedOverheadPct returns the share of the aggregate thread-time spent in
// the runtime system (Sched), in percent.
func (t *Trace) SchedOverheadPct() float64 {
	var sched, total int64
	for tid := range t.perThread {
		for _, iv := range t.perThread[tid] {
			d := iv.End - iv.Start
			total += d
			if iv.State == Sched {
				sched += d
			}
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(sched) / float64(total)
}

// Render draws the trace as an ASCII Gantt chart of the given width
// (columns of timeline, excluding the row label). Each row is one thread;
// '#' marks Running, '+' Sched, '.' Sync, ' ' no data. The dominant state
// within each column wins.
func (t *Trace) Render(width int) string {
	if width <= 0 {
		width = 80
	}
	end := t.EndTime()
	var b strings.Builder
	fmt.Fprintf(&b, "time 0 .. %d ns   legend: #=Running +=Sched .=Sync\n", end)
	if end == 0 {
		return b.String()
	}
	colDur := float64(end) / float64(width)
	for tid := range t.perThread {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		// Accumulate time per state per column, then pick the dominant.
		var occupancy [3][]int64
		for s := range occupancy {
			occupancy[s] = make([]int64, width)
		}
		for _, iv := range t.perThread[tid] {
			c0 := int(float64(iv.Start) / colDur)
			c1 := int(float64(iv.End) / colDur)
			if c1 >= width {
				c1 = width - 1
			}
			for c := c0; c <= c1; c++ {
				colStart := int64(float64(c) * colDur)
				colEnd := int64(float64(c+1) * colDur)
				lo, hi := iv.Start, iv.End
				if lo < colStart {
					lo = colStart
				}
				if hi > colEnd {
					hi = colEnd
				}
				if hi > lo {
					occupancy[iv.State][c] += hi - lo
				}
			}
		}
		for c := 0; c < width; c++ {
			best := int64(0)
			for s := 0; s < 3; s++ {
				if occupancy[s][c] > best {
					best = occupancy[s][c]
					row[c] = State(s).glyph()
				}
			}
		}
		fmt.Fprintf(&b, "T%-2d |%s|\n", tid+1, row)
	}
	fmt.Fprintf(&b, "imbalance: %.1f%%   sched overhead: %.2f%%\n",
		t.ImbalancePct(), t.SchedOverheadPct())
	return b.String()
}
