package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/amp"
)

// sampleRecord builds a small, fully populated record by hand.
func sampleRecord() *Record {
	return &Record{
		Version:  RecordVersion,
		Engine:   "sim",
		Platform: PlatformRecordOf(amp.PlatformA()),
		NThreads: 4,
		Binding:  "BS",
		Policy:   "wrr",
		StartNs:  100,
		// Absolute times; makespan is a duration.
		MakespanNs: 4200,
		Migrations: []MigrationRecord{{AtNs: 900, Tid: 2, ToCPU: 1}},
		Loops: []LoopRecord{
			{Index: 0, Name: "ep-main", NI: 128, Weight: 2, Scheduler: "aid-dynamic",
				Schedule: "aid-dynamic,1,5", Profile: amp.Profile{ILP: 0.25, MemIntensity: 0.05, FootprintMB: 0.1},
				Cost: &CostRecord{Kind: "block", Base: 120000, Amp: 0.35, BlockLen: 256, Seed: 0xE9}},
			{Index: 1, Name: "is-l0", NI: 64, Weight: 1, Scheduler: "dynamic", Schedule: "dynamic,4",
				Profile: amp.Profile{ILP: 0.3, MemIntensity: 0.55, FootprintMB: 0.1},
				Cost:    &CostRecord{Kind: "uniform", Base: 230}},
		},
		Events: []ChunkEvent{
			{Seq: 0, TimeNs: 104, Tid: 0, Loop: 0, Lo: 0, Hi: 16, Shard: 0, Cost: 1234.5, ExecNs: 700, PoolAccesses: 1, Timestamps: 1},
			{Seq: 1, TimeNs: 110, Tid: 1, Loop: 1, Lo: 0, Hi: 4, Shard: 1, Cost: 920, ExecNs: 300, PoolAccesses: 2},
			{Seq: 2, TimeNs: 900, Tid: 0, Loop: 0, Retire: true, PoolAccesses: 1},
		},
		Phases: []PhaseEvent{
			{TimeNs: 300, Tid: 3, Loop: 0, Epoch: 1, Kind: "r-initial", SF: []float64{2.5, 1}},
			{TimeNs: 800, Tid: 1, Loop: 0, Epoch: 2, Kind: "tail-switch"},
		},
		SFSamples: []SFSample{
			{TimeNs: 300, Loop: 0, SF: []float64{2.5, 1}},
			{TimeNs: 4200, Loop: 0, SF: []float64{2.4375, 1}},
		},
		Timeline: []IntervalRecord{
			{Tid: 0, StartNs: 100, EndNs: 104, State: Sched},
			{Tid: 0, StartNs: 104, EndNs: 804, State: Running},
			{Tid: 0, StartNs: 804, EndNs: 4200, State: Sync},
		},
	}
}

func encodeToBytes(t *testing.T, r *Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, r); err != nil {
		t.Fatalf("EncodeJSONL: %v", err)
	}
	return buf.Bytes()
}

func TestRecordRoundTrip(t *testing.T) {
	want := sampleRecord()
	data := encodeToBytes(t, want)
	got, err := DecodeJSONL(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("DecodeJSONL: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	r := sampleRecord()
	if !bytes.Equal(encodeToBytes(t, r), encodeToBytes(t, r)) {
		t.Error("encoding the same record twice produced different bytes")
	}
}

// randomRecord generates a structurally valid record with randomized
// payloads — the property-test generator for the lossless-codec claim.
func randomRecord(rng *rand.Rand) *Record {
	engines := []string{"sim", "rt"}
	bindings := []string{"BS", "SB"}
	platforms := []*amp.Platform{amp.PlatformA(), amp.PlatformB(), amp.PlatformTri()}
	nThreads := 1 + rng.Intn(8)
	nLoops := 1 + rng.Intn(4)
	r := &Record{
		Version:    RecordVersion,
		Engine:     engines[rng.Intn(2)],
		Platform:   PlatformRecordOf(platforms[rng.Intn(3)]),
		NThreads:   nThreads,
		Binding:    bindings[rng.Intn(2)],
		StartNs:    rng.Int63n(1 << 20),
		MakespanNs: rng.Int63n(1 << 40),
	}
	if rng.Intn(2) == 0 {
		r.Policy = "wrr"
	}
	if rng.Intn(3) == 0 {
		r.Migrations = []MigrationRecord{{AtNs: rng.Int63n(1000), Tid: rng.Intn(nThreads), ToCPU: rng.Intn(8)}}
	}
	for li := 0; li < nLoops; li++ {
		l := LoopRecord{
			Index:     li,
			Name:      fmt.Sprintf("loop-%d", li),
			NI:        rng.Int63n(1 << 20),
			Weight:    rng.Intn(4),
			Scheduler: "aid-static",
			Profile:   amp.Profile{ILP: rng.Float64(), MemIntensity: rng.Float64(), FootprintMB: rng.Float64() * 4},
		}
		switch rng.Intn(4) {
		case 0:
			l.Cost = &CostRecord{Kind: "uniform", Base: rng.Float64() * 1e5}
		case 1:
			l.Cost = &CostRecord{Kind: "linear", Base: rng.Float64() * 1e4, Slope: rng.Float64()}
		case 2:
			l.Cost = &CostRecord{Kind: "block", Base: rng.Float64() * 1e5, Amp: rng.Float64() * 3,
				BlockLen: 1 + rng.Int63n(64), Seed: rng.Uint64()}
		}
		if rng.Intn(2) == 0 {
			l.Schedule = "aid-static,2"
		}
		r.Loops = append(r.Loops, l)
	}
	nEvents := rng.Intn(50)
	for i := 0; i < nEvents; i++ {
		ev := ChunkEvent{
			Seq:          int64(i),
			TimeNs:       rng.Int63n(1 << 40),
			Tid:          rng.Intn(nThreads),
			Loop:         rng.Intn(nLoops),
			Shard:        rng.Intn(3),
			Origin:       rng.Intn(4) - 1, // includes OriginShared (-1)
			PoolAccesses: rng.Intn(4),
			Timestamps:   rng.Intn(2),
		}
		if rng.Intn(8) == 0 {
			ev.Retire = true
		} else {
			ev.Lo = rng.Int63n(1 << 20)
			ev.Hi = ev.Lo + 1 + rng.Int63n(1024)
			ev.Cost = rng.Float64() * 1e7
			ev.ExecNs = rng.Int63n(1 << 30)
		}
		r.Events = append(r.Events, ev)
	}
	for i := rng.Intn(5); i > 0; i-- {
		p := PhaseEvent{TimeNs: rng.Int63n(1 << 40), Tid: rng.Intn(nThreads),
			Loop: rng.Intn(nLoops), Epoch: rng.Intn(10), Kind: "r-smoothed"}
		if rng.Intn(2) == 0 {
			p.SF = []float64{1 + rng.Float64()*7, 1}
		}
		r.Phases = append(r.Phases, p)
	}
	for i := rng.Intn(5); i > 0; i-- {
		r.SFSamples = append(r.SFSamples, SFSample{TimeNs: rng.Int63n(1 << 40),
			Loop: rng.Intn(nLoops), SF: []float64{1 + rng.Float64()*7}})
	}
	if rng.Intn(2) == 0 {
		start := int64(0)
		for i := 0; i < 4; i++ {
			end := start + 1 + rng.Int63n(1000)
			r.Timeline = append(r.Timeline, IntervalRecord{Tid: rng.Intn(nThreads),
				StartNs: start, EndNs: end, State: State(rng.Intn(3))})
			start = end
		}
	}
	return r
}

// TestRecordRoundTripProperty is the decode(encode(r)) == r property over
// randomized records, covering float round-tripping (JSON shortest-form
// float64 encoding is exact) and every optional section present/absent.
func TestRecordRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0xA1D))
	for i := 0; i < 200; i++ {
		want := randomRecord(rng)
		data := encodeToBytes(t, want)
		got, err := DecodeJSONL(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("case %d: DecodeJSONL: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
		// Second-generation stability: re-encoding the decoded record must
		// be byte-identical (no normalization drift between generations).
		if !bytes.Equal(data, encodeToBytes(t, got)) {
			t.Fatalf("case %d: re-encoded record differs from first encoding", i)
		}
	}
}

func TestDecodeRejectsUnsupportedVersion(t *testing.T) {
	r := sampleRecord()
	r.Version = RecordVersion + 1
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, r); err == nil {
		// Encode validates too; craft the bad header by string surgery so
		// the decoder's own check is exercised.
		t.Fatal("EncodeJSONL accepted an unsupported version")
	}
	data := string(encodeToBytes(t, sampleRecord()))
	data = strings.Replace(data, fmt.Sprintf(`"version":%d`, RecordVersion),
		fmt.Sprintf(`"version":%d`, RecordVersion+1), 1)
	if _, err := DecodeJSONL(strings.NewReader(data)); err == nil {
		t.Error("DecodeJSONL accepted an unsupported version")
	} else if !strings.Contains(err.Error(), "version") {
		t.Errorf("error %q does not mention the version", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"not json":         "hello\n",
		"no header":        `{"t":"ev","d":{"seq":0}}` + "\n",
		"unknown line":     string(encodeToBytes(t, sampleRecord())) + `{"t":"wat","d":{}}` + "\n",
		"duplicate header": string(encodeToBytes(t, sampleRecord())) + string(encodeToBytes(t, sampleRecord())),
	}
	for name, data := range cases {
		if _, err := DecodeJSONL(strings.NewReader(data)); err == nil {
			t.Errorf("%s: DecodeJSONL succeeded, want error", name)
		}
	}
}

func TestDecodeRejectsInconsistentRecord(t *testing.T) {
	r := sampleRecord()
	r.Events[0].Loop = 99 // dangling loop reference
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, r); err == nil {
		t.Error("EncodeJSONL accepted an event referencing a missing loop")
	}
}

func TestRecordTraceReconstruction(t *testing.T) {
	r := sampleRecord()
	tr := r.Trace()
	if tr == nil {
		t.Fatal("Trace() = nil for a record with a timeline")
	}
	if got := tr.TimeIn(0, Running); got != 700 {
		t.Errorf("reconstructed Running time = %d, want 700", got)
	}
	// Flattening the reconstructed trace must reproduce the section.
	if got := TimelineOf(tr); !reflect.DeepEqual(got, r.Timeline) {
		t.Errorf("TimelineOf(Trace()) = %+v, want %+v", got, r.Timeline)
	}
	r.Timeline = nil
	if r.Trace() != nil {
		t.Error("Trace() != nil for a record without a timeline")
	}
}

func TestRecorderSingleRun(t *testing.T) {
	rec := NewRecorder()
	meta := RunMeta{Engine: "sim", Platform: PlatformRecordOf(amp.PlatformA()), NThreads: 2, Binding: "BS"}
	if err := rec.BeginRun(meta); err != nil {
		t.Fatalf("BeginRun: %v", err)
	}
	if err := rec.BeginRun(meta); err == nil {
		t.Error("second BeginRun succeeded, want error")
	}
}

func TestRecorderPhaseDerivesSFSample(t *testing.T) {
	rec := NewRecorder()
	if err := rec.BeginRun(RunMeta{Engine: "rt", Platform: PlatformRecordOf(amp.PlatformA()), NThreads: 2, Binding: "BS"}); err != nil {
		t.Fatalf("BeginRun: %v", err)
	}
	li := rec.AddLoop(LoopRecord{Name: "l", NI: 8, Scheduler: "aid-static"})
	rec.Phase(PhaseEvent{TimeNs: 20, Tid: 1, Loop: li, Epoch: 1, Kind: "sf-published", SF: []float64{2, 1}})
	rec.Phase(PhaseEvent{TimeNs: 30, Tid: 0, Loop: li, Epoch: 2, Kind: "tail-switch"})
	r := rec.Record()
	if len(r.Phases) != 2 {
		t.Fatalf("recorded %d phases, want 2", len(r.Phases))
	}
	if len(r.SFSamples) != 1 || r.SFSamples[0].TimeNs != 20 || r.SFSamples[0].Loop != li {
		t.Errorf("SF-bearing phase did not derive exactly one sample: %+v", r.SFSamples)
	}
}

func TestValidateRejectsOutOfRangeReferences(t *testing.T) {
	cases := map[string]func(*Record){
		"timeline tid":   func(r *Record) { r.Timeline[0].Tid = r.NThreads },
		"phase tid":      func(r *Record) { r.Phases[0].Tid = -1 },
		"phase loop":     func(r *Record) { r.Phases[0].Loop = len(r.Loops) },
		"sf sample loop": func(r *Record) { r.SFSamples[0].Loop = 99 },
	}
	for name, corrupt := range cases {
		r := sampleRecord()
		corrupt(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an out-of-range reference", name)
		}
	}
}
