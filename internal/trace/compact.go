package trace

// Sampled-capture primitives: always-on recording at service scale cannot
// afford one ChunkEvent per grant per loop forever, so the service tier
// records every Nth loop instance and bounds each instance's event stream
// with the two lossy-but-honest reductions below. Compaction merges what
// replay does not need to distinguish (adjacent contiguous grants to the
// same worker); the budget keeps what a latency investigation reads first
// (the head, where the schedulers' sampling phases live, and the tail,
// where the barrier convergence lives).

// CompactEvents merges adjacent same-thread grants: consecutive events of
// one worker in one loop whose ranges are contiguous (previous Hi == next
// Lo) collapse into a single event spanning both, with their execution
// time, cost and runtime-call charges summed. The merged event keeps the
// first grant's Seq and TimeNs — it describes work that started then — so
// a compacted stream stays chronologically ordered and replays through the
// same code paths, just at coarser grain. Retirements never merge (they
// are the barrier bookkeeping replay keys on), and events of different
// loops or threads never merge across each other even when interleaved.
//
// The input must be in the engines' event order (time, then tid, then
// per-worker seq); the output preserves it. evs is not modified.
func CompactEvents(evs []ChunkEvent) []ChunkEvent {
	if len(evs) == 0 {
		return nil
	}
	out := make([]ChunkEvent, 0, len(evs))
	// last[tid] is the index in out of worker tid's most recent kept
	// event; a worker's grants are sequential per loop, so contiguity only
	// needs to be checked against that one event.
	last := map[int]int{}
	for _, ev := range evs {
		if li, ok := last[ev.Tid]; ok && !ev.Retire {
			prev := &out[li]
			if !prev.Retire && prev.Loop == ev.Loop && prev.Hi == ev.Lo {
				prev.Hi = ev.Hi
				prev.Cost += ev.Cost
				prev.ExecNs += ev.ExecNs
				prev.PoolAccesses += ev.PoolAccesses
				prev.Timestamps += ev.Timestamps
				continue
			}
		}
		out = append(out, ev)
		last[ev.Tid] = len(out) - 1
	}
	return out
}

// TrimToBudget bounds evs to at most budget events by dropping the middle:
// the first head events and the last budget-head events are retained, the
// rest discarded. Head/tail retention keeps the two regions an
// investigation reads first — the start of the loop (AID sampling phases,
// first grants) and the barrier convergence (final grants, retirements) —
// at the cost of the steady-state middle, which compaction has usually
// already collapsed. A budget <= 0 means unbounded (evs is returned as
// is); head is clamped to [0, budget].
func TrimToBudget(evs []ChunkEvent, budget, head int) []ChunkEvent {
	if budget <= 0 || len(evs) <= budget {
		return evs
	}
	if head < 0 {
		head = 0
	}
	if head > budget {
		head = budget
	}
	out := make([]ChunkEvent, 0, budget)
	out = append(out, evs[:head]...)
	out = append(out, evs[len(evs)-(budget-head):]...)
	return out
}
