// Package arrival implements the open-loop arrival processes of the
// service tier: request streams that tick on their own clock, independent
// of how fast the fleet drains them. This is the load model that separates
// a server benchmark from a replay — N simultaneous submissions all start
// at t=0 and measure only the fleet's drain rate, whereas an open-loop
// stream keeps arriving while the fleet is busy, so queueing delay (and,
// past saturation, unbounded backlog) becomes visible in the latency
// distribution.
//
// The processes are engine agnostic: a Process yields inter-arrival gaps in
// nanoseconds, which the real server (cmd/aidserve) sleeps out on the wall
// clock and the discrete-event engine (sim.RunLoops) uses as virtual
// admission stamps via LoopSpec.Arrive. All randomness comes from the
// repository's deterministic PRNG (internal/xrand), so a seeded arrival
// sequence is bit-identical across runs and engines.
package arrival

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/xrand"
)

// Process generates one arrival stream. Implementations are stateful
// (they own their PRNG stream) and not safe for concurrent use; drive one
// process per stream.
type Process interface {
	// Gap returns the nanoseconds between the arrival at absolute stream
	// time nowNs and the next one. Implementations must return a positive
	// value so arrival times strictly increase.
	Gap(nowNs int64) int64
	// Name identifies the process in reports ("poisson", "bursty", ...).
	Name() string
}

// minGapNs floors every generated gap: a zero gap would make two arrivals
// carry the same timestamp, which the virtual engine's deterministic
// tie-breaks would then order arbitrarily with respect to the stream.
const minGapNs = 1

// expGap draws an exponential inter-arrival gap for ratePerSec using the
// inverse transform on rng's uniform stream.
func expGap(rng *xrand.Rand, ratePerSec float64) int64 {
	gap := int64(rng.Exp() / ratePerSec * 1e9)
	if gap < minGapNs {
		gap = minGapNs
	}
	return gap
}

// Poisson is the memoryless baseline: exponentially distributed gaps with a
// constant mean rate — the standard open-loop load model.
type Poisson struct {
	rate float64
	rng  *xrand.Rand
}

// NewPoisson returns a Poisson process with the given mean arrival rate
// (arrivals per second) and PRNG seed.
func NewPoisson(ratePerSec float64, seed uint64) (*Poisson, error) {
	if ratePerSec <= 0 || math.IsInf(ratePerSec, 0) || math.IsNaN(ratePerSec) {
		return nil, fmt.Errorf("arrival: poisson rate %v must be a positive finite number", ratePerSec)
	}
	return &Poisson{rate: ratePerSec, rng: xrand.New(seed)}, nil
}

// Name implements Process.
func (p *Poisson) Name() string { return "poisson" }

// Gap implements Process.
func (p *Poisson) Gap(int64) int64 { return expGap(p.rng, p.rate) }

// Bursty is a two-state Markov-modulated Poisson process (MMPP): the stream
// alternates between a quiet state at the base rate and a burst state at
// burstFactor times the base rate, with exponentially distributed state
// dwell times. Bursts are what break percentile reporting that was tuned on
// smooth traffic — the p99 under MMPP load is dominated by the queue the
// burst leaves behind.
type Bursty struct {
	base, burst float64 // arrivals/sec in each state
	meanDwellNs float64 // mean state dwell time
	inBurst     bool
	stateLeftNs float64 // remaining dwell in the current state
	rng         *xrand.Rand
}

// BurstFactor is the default burst-to-base rate ratio of NewBursty.
const BurstFactor = 8

// DefaultDwell is the default mean state dwell time of NewBursty.
const DefaultDwell = 100 * 1e6 // 100ms in ns

// NewBursty returns an MMPP process whose quiet state arrives at
// ratePerSec and whose burst state arrives at burstFactor*ratePerSec
// (burstFactor 0 selects BurstFactor), with mean state dwell time
// meanDwellNs (0 selects DefaultDwell).
func NewBursty(ratePerSec, burstFactor, meanDwellNs float64, seed uint64) (*Bursty, error) {
	if ratePerSec <= 0 || math.IsInf(ratePerSec, 0) || math.IsNaN(ratePerSec) {
		return nil, fmt.Errorf("arrival: bursty base rate %v must be a positive finite number", ratePerSec)
	}
	if burstFactor == 0 {
		burstFactor = BurstFactor
	}
	if burstFactor < 1 {
		return nil, fmt.Errorf("arrival: burst factor %v must be >= 1 (the burst state must not be slower than the base)", burstFactor)
	}
	if meanDwellNs == 0 {
		meanDwellNs = DefaultDwell
	}
	if meanDwellNs < 0 {
		return nil, fmt.Errorf("arrival: negative mean dwell %v", meanDwellNs)
	}
	b := &Bursty{base: ratePerSec, burst: ratePerSec * burstFactor, meanDwellNs: meanDwellNs, rng: xrand.New(seed)}
	b.stateLeftNs = b.rng.Exp() * meanDwellNs
	return b, nil
}

// Name implements Process.
func (b *Bursty) Name() string { return "bursty" }

// Gap implements Process: the gap is drawn at the current state's rate, and
// the state advances by the consumed time (a gap that outlives the dwell
// flips the state; the modulation is applied per arrival, the standard
// discrete MMPP approximation).
func (b *Bursty) Gap(int64) int64 {
	rate := b.base
	if b.inBurst {
		rate = b.burst
	}
	gap := expGap(b.rng, rate)
	b.stateLeftNs -= float64(gap)
	for b.stateLeftNs <= 0 {
		b.inBurst = !b.inBurst
		b.stateLeftNs += b.rng.Exp() * b.meanDwellNs
	}
	return gap
}

// Diurnal modulates a Poisson stream with a sinusoidal rate ramp — the
// day/night cycle compressed to Period. The instantaneous rate swings
// between trough and peak:
//
//	rate(t) = trough + (peak-trough) * (1 - cos(2πt/period)) / 2
//
// starting at the trough (t=0). Gaps are drawn at the instantaneous rate
// (piecewise-homogeneous approximation, accurate while gaps are short
// against the period, which holds for any service-scale rate).
type Diurnal struct {
	trough, peak float64
	periodNs     float64
	rng          *xrand.Rand
}

// NewDiurnal returns a diurnal ramp between troughRate and peakRate
// arrivals/sec over the given cycle period.
func NewDiurnal(troughRate, peakRate float64, periodNs int64, seed uint64) (*Diurnal, error) {
	if troughRate <= 0 || math.IsInf(troughRate, 0) || math.IsNaN(troughRate) {
		return nil, fmt.Errorf("arrival: diurnal trough rate %v must be a positive finite number", troughRate)
	}
	if peakRate < troughRate || math.IsInf(peakRate, 0) || math.IsNaN(peakRate) {
		return nil, fmt.Errorf("arrival: diurnal peak rate %v must be finite and >= trough rate %v", peakRate, troughRate)
	}
	if periodNs <= 0 {
		return nil, fmt.Errorf("arrival: diurnal period %dns must be positive", periodNs)
	}
	return &Diurnal{trough: troughRate, peak: peakRate, periodNs: float64(periodNs), rng: xrand.New(seed)}, nil
}

// Name implements Process.
func (d *Diurnal) Name() string { return "diurnal" }

// Rate returns the instantaneous arrival rate at stream time nowNs.
func (d *Diurnal) Rate(nowNs int64) float64 {
	phase := 2 * math.Pi * math.Mod(float64(nowNs), d.periodNs) / d.periodNs
	return d.trough + (d.peak-d.trough)*(1-math.Cos(phase))/2
}

// Gap implements Process.
func (d *Diurnal) Gap(nowNs int64) int64 { return expGap(d.rng, d.Rate(nowNs)) }

// New builds a process from its CLI name. ratePerSec is the mean (poisson),
// base (bursty) or trough (diurnal) rate; the remaining shape parameters
// take their defaults (bursty: BurstFactor/DefaultDwell; diurnal: peak =
// 4x trough over a 1s period — a full cycle inside even a short smoke run).
func New(name string, ratePerSec float64, seed uint64) (Process, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "poisson":
		return NewPoisson(ratePerSec, seed)
	case "bursty", "mmpp":
		return NewBursty(ratePerSec, 0, 0, seed)
	case "diurnal":
		return NewDiurnal(ratePerSec, 4*ratePerSec, int64(1e9), seed)
	}
	return nil, fmt.Errorf("arrival: unknown process %q (want poisson, bursty or diurnal)", name)
}

// Times materializes the arrival stamps of p that fall inside
// [startNs, startNs+durationNs), relative to the stream's own clock. The
// first arrival is one gap after startNs (the window opens empty). This is
// the virtual-time form of the stream: feed the stamps to
// sim.LoopSpec.Arrive to mirror a wall-clock serve in the discrete-event
// engine.
func Times(p Process, startNs, durationNs int64) []int64 {
	var out []int64
	end := startNs + durationNs
	for t := startNs + p.Gap(startNs); t < end; t += p.Gap(t) {
		out = append(out, t)
	}
	return out
}
