package arrival

import (
	"math"
	"testing"
)

// meanGapNs drives p for n arrivals and returns the mean inter-arrival gap.
func meanGapNs(t *testing.T, p Process, n int) float64 {
	t.Helper()
	var now, sum int64
	for i := 0; i < n; i++ {
		g := p.Gap(now)
		if g <= 0 {
			t.Fatalf("%s: non-positive gap %d at arrival %d", p.Name(), g, i)
		}
		now += g
		sum += g
	}
	return float64(sum) / float64(n)
}

// TestPoissonMeanRate checks the exponential gaps against their nominal
// mean: at 1000 arrivals/s the mean gap must be 1ms within a 10% sampling
// band over 20k draws.
func TestPoissonMeanRate(t *testing.T) {
	p, err := NewPoisson(1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	mean := meanGapNs(t, p, 20000)
	want := 1e6 // 1ms
	if mean < 0.9*want || mean > 1.1*want {
		t.Fatalf("poisson mean gap %.0fns outside [%.0f, %.0f]", mean, 0.9*want, 1.1*want)
	}
}

// TestDeterministicSeeds pins that equal seeds yield bit-identical streams
// and different seeds yield different ones, for every process kind.
func TestDeterministicSeeds(t *testing.T) {
	for _, name := range []string{"poisson", "bursty", "diurnal"} {
		build := func(seed uint64) Process {
			p, err := New(name, 500, seed)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		a, b, c := build(7), build(7), build(8)
		var now int64
		diverged := false
		for i := 0; i < 1000; i++ {
			ga, gb := a.Gap(now), b.Gap(now)
			if ga != gb {
				t.Fatalf("%s: same seed diverged at arrival %d: %d vs %d", name, i, ga, gb)
			}
			if c.Gap(now) != ga {
				diverged = true
			}
			now += ga
		}
		if !diverged {
			t.Fatalf("%s: seeds 7 and 8 produced identical 1000-gap streams", name)
		}
	}
}

// TestBurstyMeanBetweenStates: the MMPP spends half its time in each state,
// so the long-run mean gap must sit strictly between the pure base-rate and
// pure burst-rate means.
func TestBurstyMeanBetweenStates(t *testing.T) {
	p, err := NewBursty(100, 8, 50e6, 3)
	if err != nil {
		t.Fatal(err)
	}
	mean := meanGapNs(t, p, 50000)
	baseMean := 1e9 / 100.0 // 10ms
	burstMean := 1e9 / 800.0
	if mean >= baseMean || mean <= burstMean {
		t.Fatalf("bursty mean gap %.0fns not strictly between burst %.0f and base %.0f", mean, burstMean, baseMean)
	}
}

// TestDiurnalRateEnvelope pins the instantaneous rate to its trough/peak
// envelope: the trough at phase 0, the peak at half period, and every
// sampled point within [trough, peak].
func TestDiurnalRateEnvelope(t *testing.T) {
	d, err := NewDiurnal(50, 200, int64(1e9), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := d.Rate(0); math.Abs(r-50) > 1e-9 {
		t.Fatalf("rate at phase 0 = %v, want trough 50", r)
	}
	if r := d.Rate(int64(5e8)); math.Abs(r-200) > 1e-9 {
		t.Fatalf("rate at half period = %v, want peak 200", r)
	}
	for ns := int64(0); ns < 2e9; ns += 1e7 {
		if r := d.Rate(ns); r < 50-1e-9 || r > 200+1e-9 {
			t.Fatalf("rate at %dns = %v outside [50, 200]", ns, r)
		}
	}
}

// TestTimesWindow: materialized stamps are strictly increasing, inside the
// window, and roughly rate*duration many.
func TestTimesWindow(t *testing.T) {
	p, err := NewPoisson(2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	start, dur := int64(1e6), int64(5e8) // 0.5s at 2000/s -> ~1000 arrivals
	ts := Times(p, start, dur)
	if n := len(ts); n < 800 || n > 1200 {
		t.Fatalf("got %d arrivals in a 0.5s window at 2000/s, want ~1000", n)
	}
	prev := start
	for i, at := range ts {
		if at <= prev {
			t.Fatalf("arrival %d at %dns does not advance past %dns", i, at, prev)
		}
		if at >= start+dur {
			t.Fatalf("arrival %d at %dns outside window end %dns", i, at, start+dur)
		}
		prev = at
	}
}

// TestNewRejectsBadSpecs covers the constructor validation paths.
func TestNewRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		rate float64
	}{
		{"poisson", 0},
		{"poisson", -5},
		{"poisson", math.Inf(1)},
		{"poisson", math.NaN()},
		{"bursty", 0},
		{"diurnal", -1},
		{"warp", 100},
	}
	for _, c := range cases {
		if _, err := New(c.name, c.rate, 1); err == nil {
			t.Errorf("New(%q, %v) accepted an invalid spec", c.name, c.rate)
		}
	}
	if _, err := NewBursty(100, 0.5, 0, 1); err == nil {
		t.Error("NewBursty accepted burst factor < 1")
	}
	if _, err := NewDiurnal(100, 50, int64(1e9), 1); err == nil {
		t.Error("NewDiurnal accepted peak < trough")
	}
	if _, err := NewDiurnal(100, 200, 0, 1); err == nil {
		t.Error("NewDiurnal accepted zero period")
	}
}
