package core

import (
	"fmt"
	"sync/atomic"
)

// phaseWord is the packed CAS state word that serializes AID phase
// transitions without a lock (§4.2 keeps the whole loop hot path lock
// free; the seed's mutex around the O(1) transition bookkeeping was the
// last blocking piece). One 64-bit word packs:
//
//	bits 32..63  epoch      — 0 is the sampling phase, n>0 the nth AID phase
//	bits  0..31  remaining  — threads yet to report a measurement this epoch
//
// A thread finishing its measured chunk calls complete: a CAS decrement of
// remaining under an unchanged epoch. The thread that decrements remaining
// to zero is the LAST of the epoch — it owns the single-threaded transition
// window (compute SF/R, reset the sample counters) and then publishes the
// next epoch with advance, re-arming remaining in the same store. Readers
// observe the epoch with a plain atomic load. Because every measurement is
// added to the sample counters before complete, and advance is the only
// publication of the new epoch, the counters are never touched concurrently
// with the transition — the property the seed bought with a mutex.
type phaseWord struct {
	v atomic.Uint64
}

func packPhase(epoch, remaining uint32) uint64 {
	return uint64(epoch)<<32 | uint64(remaining)
}

// init arms the word for the given epoch with nthreads outstanding
// measurements. Also used by adopting constructors (AID-auto) that enter
// mid-schedule.
func (p *phaseWord) init(epoch uint32, nthreads int) {
	p.v.Store(packPhase(epoch, uint32(nthreads)))
}

// epoch returns the current phase number.
func (p *phaseWord) epoch() uint32 {
	return uint32(p.v.Load() >> 32)
}

// complete records that the calling thread finished its measurement for
// myEpoch and reports whether it was the last to do so. A stale myEpoch
// (the word already moved on) is a state-machine bug and panics.
func (p *phaseWord) complete(myEpoch uint32) (last bool) {
	for {
		cur := p.v.Load()
		epoch, rem := uint32(cur>>32), uint32(cur)
		if epoch != myEpoch || rem == 0 {
			panic(fmt.Sprintf("core: phase completion for epoch %d against word (epoch %d, remaining %d)", myEpoch, epoch, rem))
		}
		if p.v.CompareAndSwap(cur, packPhase(epoch, rem-1)) {
			return rem == 1
		}
	}
}

// advance publishes the next epoch with all nthreads measurements
// outstanding. Only the thread that observed last=true from complete may
// call it, after finishing its transition work.
func (p *phaseWord) advance(nextEpoch uint32, nthreads int) {
	p.v.Store(packPhase(nextEpoch, uint32(nthreads)))
}
