package core

import (
	"testing"

	"repro/internal/amp"
)

// TestZooConformance runs the exactly-once conformance harness over every
// named platform in the zoo (`make zoo-check`). Unlike the synthetic
// two-type mixes of TestSchedulerConformance, each platform contributes its
// real shape: cluster count, core counts per cluster under the BS binding,
// and the topology-distance matrix that drives nearest-victim stealing —
// so a preset whose matrix misroutes a steal, or whose shard cuts lose
// iterations, fails here by name.
func TestZooConformance(t *testing.T) {
	const ni = 10007 // prime: defeats every divisibility assumption
	for _, name := range amp.Names() {
		pl, ok := amp.Lookup(name)
		if !ok {
			t.Fatalf("zoo platform %q not registered", name)
		}
		nt := pl.NumCores()
		info := LoopInfo{
			NI:       ni,
			NThreads: nt,
			NumTypes: len(pl.Clusters),
			TypeOf: func(tid int) int {
				return pl.ClusterOf(pl.CoreOf(tid, nt, amp.BindBS))
			},
			TypeDist: pl.TypeDist(),
		}
		// Slower per-iteration time on later (smaller) clusters, so the
		// fast types drain their shards and must steal across topology.
		perIter := make([]int64, len(pl.Clusters))
		for i := range perIter {
			perIter[i] = int64(100 * (i + 1))
		}
		for sname, s := range conformanceSchedulers(t, info) {
			t.Run(name+"/"+sname, func(t *testing.T) {
				counts, _ := virtualExec(t, s, info, perIter)
				var total int64
				for _, c := range counts {
					total += c
				}
				if total != ni {
					t.Fatalf("%s/%s covered %d of %d iterations", name, sname, total, ni)
				}
			})
		}
	}
}
