package core

import (
	"fmt"
	"sync"

	"repro/internal/pool"
)

// AIDAuto implements the paper's future-work proposal (§6): decide *per
// loop* whether the AID-static or the AID-dynamic treatment fits, instead of
// applying one variant to every loop of the program. The paper suggests a
// compiler-assisted decision ([44]); here the decision is taken online from
// the same sampling phase the AID methods already run, at no extra cost:
//
//   - every thread samples `chunk` iterations, as in Fig. 3;
//   - the last thread to finish sampling computes, per core type, the mean
//     per-iteration time (the SF estimate) and, across *all* threads, the
//     coefficient of variation (CV) of per-iteration times normalized by
//     their core type's mean. Uniform loops have CV ≈ 0 regardless of the
//     platform's asymmetry, because normalization removes the core-type
//     speed difference;
//   - if CV ≤ Threshold the loop's iterations are treated as equally costly
//     and the remainder is scheduled like AID-hybrid (one asymmetric
//     allotment for Pct of the iterations, dynamic tail) — the §5A result
//     that AID-hybrid is the safest static-family method;
//   - otherwise the loop is irregular and the remainder is scheduled like
//     AID-dynamic (uneven R·M/M phases with re-estimation).
//
// The wrapped variants reuse this scheduler's pool, so no iteration is lost
// or duplicated at the handover.
//
// Caveat: the classifier only sees NThreads·chunk iterations. Cost
// variation at a coarser granularity than that window is invisible and the
// loop is classified uniform; choose the sampling chunk so the window spans
// several cost regions (the adaptive example uses chunk 16 against
// 16-iteration cost blocks).
type AIDAuto struct {
	info      LoopInfo
	chunk     int64
	pct       float64
	major     int64
	threshold float64

	ws *pool.ShardedWorkShare
	sc *pool.SampleCounters

	mu        sync.Mutex
	th        []perThread
	samples   []float64 // per-thread per-iteration sampling time (scaled)
	decided   bool
	irregular bool
	cv        float64

	// Post-decision state (one of the two is active).
	sf       []float64
	k        float64
	assigned int
	dyn      *AIDDynamic // initialized lazily for irregular loops

	// observe, when non-nil, receives the classification decision and is
	// forwarded to the adopted AID-dynamic instance (decision-capture hook
	// of the record & replay subsystem). Set before the first Next call.
	observe func(PhaseEvent)
}

// SetPhaseObserver implements PhaseObservable.
func (a *AIDAuto) SetPhaseObserver(fn func(PhaseEvent)) { a.observe = fn }

// NewAIDAuto returns an adaptive scheduler. chunk is the sampling chunk, pct
// the AID-hybrid share used for regular loops, major the AID-dynamic Major
// chunk used for irregular loops, and threshold the CV above which a loop
// counts as irregular (0 selects the default of 0.25).
func NewAIDAuto(info LoopInfo, chunk int64, pct float64, major int64, threshold float64) (*AIDAuto, error) {
	if err := info.Validate(); err != nil {
		return nil, err
	}
	if chunk <= 0 {
		return nil, fmt.Errorf("core: AID-auto sampling chunk must be positive, got %d", chunk)
	}
	if pct <= 0 || pct > 1 {
		return nil, fmt.Errorf("core: AID-auto pct %v out of (0,1]", pct)
	}
	if major < chunk {
		return nil, fmt.Errorf("core: AID-auto Major chunk %d must be >= sampling chunk %d", major, chunk)
	}
	if threshold < 0 {
		return nil, fmt.Errorf("core: negative CV threshold %v", threshold)
	}
	if threshold == 0 {
		threshold = 0.25
	}
	return &AIDAuto{
		info:      info,
		chunk:     chunk,
		pct:       pct,
		major:     major,
		threshold: threshold,
		// A single shard, deliberately: the CV classifier reads cost
		// variation out of the sampling chunks, which must tile one
		// contiguous global window of the iteration space — per-type
		// shards would fragment the window and alias against block-
		// structured cost patterns. The adopted AID-dynamic inherits the
		// pool; the pool clamps core-type home indexes to its shard count.
		ws:      pool.NewSharded(info.NI, []int{info.NThreads}),
		sc:      pool.NewSampleCounters(info.NumTypes, info.NThreads),
		th:      make([]perThread, info.NThreads),
		samples: make([]float64, info.NThreads),
	}, nil
}

// Name implements Scheduler.
func (a *AIDAuto) Name() string { return "aid-auto" }

// PoolReweights implements ReweightCounter (the adopted post-decision
// scheduler shares this pool, so its re-cuts are counted too).
func (a *AIDAuto) PoolReweights() int64 { return a.ws.Reweights() }

// Decision reports the variant chosen for this loop and the measured
// coefficient of variation; ok is false before sampling completes.
func (a *AIDAuto) Decision() (irregular bool, cv float64, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.irregular, a.cv, a.decided
}

func (a *AIDAuto) take(tid int, st *perThread, n int64, asg *Assign) (Assign, bool) {
	return st.take(a.ws, a.info.TypeOf(tid), n, asg)
}

// decide computes the SF table and the cross-thread CV of type-normalized
// per-iteration times, then locks in the variant.
func (a *AIDAuto) decide() {
	// Per-type means (the SF estimate, identical to AID-static's).
	a.sf = make([]float64, a.info.NumTypes)
	slowest := 0.0
	typeAvg := make([]float64, a.info.NumTypes)
	for t := 0; t < a.info.NumTypes; t++ {
		if avg, ok := a.sc.Avg(t); ok {
			typeAvg[t] = avg
			if avg > slowest {
				slowest = avg
			}
		}
	}
	for t := 0; t < a.info.NumTypes; t++ {
		if typeAvg[t] > 0 && slowest > 0 {
			a.sf[t] = slowest / typeAvg[t]
		} else {
			a.sf[t] = 1
		}
	}
	// Cross-thread CV of normalized samples.
	var n, sum, sumSq float64
	for tid, s := range a.samples {
		t := a.info.TypeOf(tid)
		if s <= 0 || typeAvg[t] <= 0 {
			continue
		}
		norm := s / typeAvg[t]
		n++
		sum += norm
		sumSq += norm * norm
	}
	if n > 1 && sum > 0 {
		mean := sum / n
		variance := sumSq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		a.cv = sqrt(variance) / mean
	}
	a.irregular = a.cv > a.threshold
	a.decided = true
	if a.irregular {
		// Hand the remaining pool to an AID-dynamic instance seeded with
		// the estimated R, skipping its own sampling phase.
		a.dyn = newAIDDynamicAdopting(a.info, a.chunk, a.major, a.ws, a.sf)
		if a.observe != nil {
			a.dyn.SetPhaseObserver(a.observe)
		}
		return
	}
	denom := 0.0
	for t, cnt := range a.info.typeCounts() {
		denom += float64(cnt) * a.sf[t]
	}
	if denom > 0 {
		a.k = a.pct * float64(a.info.NI) / denom
	}
}

// finalAssign mirrors AIDHybrid's single asymmetric allotment, claimed
// across shards so a share larger than the home shard is not truncated.
func (a *AIDAuto) finalAssign(tid int, st *perThread, asg *Assign) (Assign, bool) {
	a.assigned++
	st.state = stDrain
	asg.Origin = OriginShared
	want := int64(a.sf[a.info.TypeOf(tid)]*a.k+0.5) - st.delta
	if want <= 0 {
		return a.take(tid, st, a.chunk, asg)
	}
	rs, acc := a.ws.StealSpan(a.info.TypeOf(tid), want)
	normalizeOrigin(a.ws, rs) // the classifier's pool is a single global window
	asg.PoolAccesses += acc
	st.delta += spanN(rs)
	return st.serve(rs, asg)
}

// Next implements Scheduler.
func (a *AIDAuto) Next(tid int, nowNs int64) (Assign, bool) {
	a.mu.Lock()
	st := &a.th[tid]
	asg := &Assign{}
	switch st.state {
	case stNew:
		st.lastTS = nowNs
		asg.Timestamps++
		st.state = stSampling
		r, ok := a.take(tid, st, a.chunk, asg)
		a.mu.Unlock()
		return r, ok

	case stSampling:
		asg.Timestamps++
		elapsed := nowNs - st.lastTS
		st.lastTS = nowNs
		last := false
		if st.lastN > 0 {
			perIter := elapsed * 1024 / st.lastN
			a.samples[tid] = float64(perIter)
			last = a.sc.Record(a.info.TypeOf(tid), perIter)
		}
		if last {
			a.decide()
			if a.observe != nil {
				kind := PhaseAutoUniform
				if a.irregular {
					kind = PhaseAutoIrregular
				}
				a.observe(PhaseEvent{TimeNs: nowNs, Tid: tid, Epoch: 1,
					Kind: kind, SF: append([]float64(nil), a.sf...)})
			}
			if a.irregular {
				st.state = stDrain // bookkeeping only; dyn takes over
				dyn := a.dyn
				a.mu.Unlock()
				return dyn.Next(tid, nowNs)
			}
			r, ok := a.finalAssign(tid, st, asg)
			a.mu.Unlock()
			return r, ok
		}
		st.state = stSamplingWait
		r, ok := a.take(tid, st, a.chunk, asg)
		a.mu.Unlock()
		return r, ok

	case stSamplingWait:
		if a.decided {
			if a.irregular {
				dyn := a.dyn
				a.mu.Unlock()
				return dyn.Next(tid, nowNs)
			}
			r, ok := a.finalAssign(tid, st, asg)
			a.mu.Unlock()
			return r, ok
		}
		r, ok := a.take(tid, st, a.chunk, asg)
		a.mu.Unlock()
		return r, ok

	case stDrain:
		if a.irregular {
			dyn := a.dyn
			a.mu.Unlock()
			return dyn.Next(tid, nowNs)
		}
		r, ok := a.take(tid, st, a.chunk, asg)
		a.mu.Unlock()
		return r, ok
	}
	a.mu.Unlock()
	panic(fmt.Sprintf("core: thread %d in invalid state %v", tid, st.state))
}

// sqrt is a local Newton iteration to avoid importing math for one call in
// the scheduling hot path (the decision runs once per loop).
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 32; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// newAIDDynamicAdopting builds an AID-dynamic instance that adopts an
// existing iteration pool and a pre-computed R table, entering the AID-phase
// regime directly (its own sampling already happened in the caller).
func newAIDDynamicAdopting(info LoopInfo, m, major int64, ws *pool.ShardedWorkShare, r []float64) *AIDDynamic {
	d := &AIDDynamic{
		info:  info,
		m:     m,
		M:     major,
		ws:    ws,
		sc:    pool.NewSampleCounters(info.NumTypes, info.NThreads),
		th:    make([]aidDynThread, info.NThreads),
		types: info.atomicTypes(),
	}
	rv := make([]float64, len(r))
	for i, v := range r {
		rv[i] = clampR(v)
	}
	d.r.Store(&rv)
	// Epoch 1 opens with all threads outstanding, as if they had just
	// finished the initial sampling phase.
	d.phase.init(1, info.NThreads)
	for tid := range d.th {
		d.th[tid].state = stSamplingWait
	}
	return d
}
