package core

import (
	"testing"
)

// TestNextSteadyStateAllocs pins the zero-allocation property of the chunk
// hot path: once a scheduler is past its transient phases (AID sampling,
// allotment computation), every Next call must serve from the thread's
// stash, credit, or the lock-free pool without touching the heap.
//
// Coverage is limited to the schedulers whose steady state IS the per-chunk
// claim loop. AID-static (one-shot allotments, a handful of calls total)
// and AID-dynamic (legitimately refreshes a multi-range allotment every M
// chunks — a bounded, amortized allocation) have no such steady state;
// guided has one but drains in O(P·log NI) calls, so it gets a huge loop
// and a short measurement window.
func TestNextSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	cases := []struct {
		name       string
		ni         int64
		build      func(info LoopInfo) (Scheduler, error)
		warm, runs int
	}{
		{"static-chunked", 1 << 24,
			func(info LoopInfo) (Scheduler, error) { return NewStaticChunked(info, 3) }, 64, 2000},
		{"dynamic", 1 << 24,
			func(info LoopInfo) (Scheduler, error) { return NewDynamic(info, 4) }, 64, 2000},
		{"guided", 1 << 40,
			func(info LoopInfo) (Scheduler, error) { return NewGuided(info, 1) }, 4, 32},
		{"aid-hybrid", 1 << 24,
			func(info LoopInfo) (Scheduler, error) { return NewAIDHybrid(info, 1, 0.8) }, 20000, 2000},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			info := conformanceInfo(c.ni, 1, 1)
			s, err := c.build(info)
			if err != nil {
				t.Fatalf("building %s: %v", c.name, err)
			}
			// Warm past the transient phases: sampling, SF estimation, and
			// the first final-phase allotment all happen in here, as does
			// any one-time stash/credit growth.
			now := int64(1)
			for i := 0; i < c.warm; i++ {
				for tid := 0; tid < info.NThreads; tid++ {
					if _, ok := s.Next(tid, now); !ok {
						t.Fatalf("%s drained during warm-up", c.name)
					}
					now += 100
				}
			}
			if n := testing.AllocsPerRun(c.runs, func() {
				if _, ok := s.Next(0, now); !ok {
					t.Fatalf("%s drained mid-measurement", c.name)
				}
				now += 100
			}); n != 0 {
				t.Errorf("%s: steady-state Next allocates %v per op, want 0", c.name, n)
			}
		})
	}
}
