package core

import (
	"sync"
	"testing"
)

// noisyExec drives a scheduler with per-iteration costs that alternate
// between cheap and expensive blocks (irregular), or stay uniform.
func noisyExec(t *testing.T, s Scheduler, info LoopInfo, irregular bool) (counts []int64, finish []int64) {
	t.Helper()
	counts = make([]int64, info.NThreads)
	finish = make([]int64, info.NThreads)
	clock := make([]int64, info.NThreads)
	active := make([]bool, info.NThreads)
	for i := range active {
		active[i] = true
	}
	covered := make([]int32, info.NI)
	perIter := []int64{100, 300}
	for {
		tid := -1
		for i := range clock {
			if active[i] && (tid == -1 || clock[i] < clock[tid]) {
				tid = i
			}
		}
		if tid == -1 {
			break
		}
		asg, ok := s.Next(tid, clock[tid])
		if !ok {
			active[tid] = false
			finish[tid] = clock[tid]
			continue
		}
		for i := asg.Lo; i < asg.Hi; i++ {
			covered[i]++
			cost := perIter[info.TypeOf(tid)]
			if irregular && (i/64)%3 == 0 {
				cost *= 6 // heavy blocks
			}
			clock[tid] += cost
		}
		counts[tid] += asg.N()
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("%s: iteration %d covered %d times", s.Name(), i, c)
		}
	}
	return counts, finish
}

func TestAIDAutoValidation(t *testing.T) {
	info := twoTypeInfo(100, 2, 2)
	cases := []struct {
		name           string
		chunk, major   int64
		pct, threshold float64
	}{
		{"zero-chunk", 0, 5, 0.8, 0.25},
		{"bad-pct", 1, 5, 0, 0.25},
		{"pct-high", 1, 5, 1.5, 0.25},
		{"major-lt-chunk", 4, 2, 0.8, 0.25},
		{"neg-threshold", 1, 5, 0.8, -1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewAIDAuto(info, c.chunk, c.pct, c.major, c.threshold); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if _, err := NewAIDAuto(twoTypeInfo(-1, 2, 2), 1, 0.8, 5, 0.25); err == nil {
		t.Error("bad info accepted")
	}
	a, err := NewAIDAuto(info, 1, 0.8, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "aid-auto" {
		t.Errorf("Name() = %q", a.Name())
	}
	if a.threshold != 0.25 {
		t.Errorf("default threshold = %v, want 0.25", a.threshold)
	}
}

func TestAIDAutoPicksStaticForUniformLoop(t *testing.T) {
	info := twoTypeInfo(10000, 2, 2)
	a, err := NewAIDAuto(info, 1, 0.9, 5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	counts, finish := noisyExec(t, a, info, false)
	irregular, cv, ok := a.Decision()
	if !ok {
		t.Fatal("no decision made")
	}
	if irregular {
		t.Errorf("uniform loop classified irregular (CV %v)", cv)
	}
	// Distribution should be asymmetric (big threads got ~3x).
	if counts[0] < counts[2]*2 {
		t.Errorf("big/small distribution not asymmetric: %v", counts)
	}
	// Balanced finish.
	var minF, maxF = finish[0], finish[0]
	for _, f := range finish[1:] {
		if f < minF {
			minF = f
		}
		if f > maxF {
			maxF = f
		}
	}
	if float64(maxF-minF) > 0.12*float64(maxF) {
		t.Errorf("uniform loop under aid-auto imbalanced: %v", finish)
	}
}

func TestAIDAutoPicksDynamicForIrregularLoop(t *testing.T) {
	info := twoTypeInfo(10000, 2, 2)
	// Sampling chunk must be large enough to see the block structure.
	a, err := NewAIDAuto(info, 128, 0.9, 256, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	noisyExec(t, a, info, true)
	irregular, cv, ok := a.Decision()
	if !ok {
		t.Fatal("no decision made")
	}
	if !irregular {
		t.Errorf("irregular loop classified uniform (CV %v)", cv)
	}
}

func TestAIDAutoIrregularBeatsAIDStaticStyle(t *testing.T) {
	// On an irregular loop, aid-auto (which switches to AID-dynamic phases)
	// should finish better balanced than a pure one-shot AID allotment.
	info := twoTypeInfo(12000, 2, 2)
	auto, _ := NewAIDAuto(info, 128, 1.0, 256, 0.25)
	_, autoFinish := noisyExec(t, auto, info, true)
	static, _ := NewAIDStatic(info, 128)
	_, staticFinish := noisyExec(t, static, info, true)
	imbalance := func(f []int64) float64 {
		mn, mx := f[0], f[0]
		for _, v := range f[1:] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		return float64(mx-mn) / float64(mx)
	}
	if imbalance(autoFinish) >= imbalance(staticFinish) {
		t.Errorf("aid-auto imbalance %.3f should beat AID-static's %.3f on irregular loop",
			imbalance(autoFinish), imbalance(staticFinish))
	}
}

func TestAIDAutoTinyLoops(t *testing.T) {
	for _, ni := range []int64{0, 1, 3, 7, 50} {
		info := twoTypeInfo(ni, 2, 2)
		a, err := NewAIDAuto(info, 1, 0.8, 5, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		noisyExec(t, a, info, false)
	}
}

func TestAIDAutoConcurrent(t *testing.T) {
	info := twoTypeInfo(30000, 2, 2)
	a, _ := NewAIDAuto(info, 4, 0.8, 16, 0.25)
	covered := make([]int32, info.NI)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for tid := 0; tid < info.NThreads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			now := int64(tid)
			local := make([][2]int64, 0, 64)
			for {
				asg, ok := a.Next(tid, now)
				if !ok {
					break
				}
				now += asg.N() * 100
				local = append(local, [2]int64{asg.Lo, asg.Hi})
			}
			mu.Lock()
			for _, r := range local {
				for i := r[0]; i < r[1]; i++ {
					covered[i]++
				}
			}
			mu.Unlock()
		}(tid)
	}
	wg.Wait()
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("iteration %d covered %d times", i, c)
		}
	}
}

func TestSqrtHelper(t *testing.T) {
	for _, c := range []struct{ in, want float64 }{
		{0, 0}, {-4, 0}, {1, 1}, {4, 2}, {9, 3}, {2, 1.4142135623730951},
	} {
		got := sqrt(c.in)
		if diff := got - c.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("sqrt(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
