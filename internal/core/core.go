// Package core implements the paper's primary contribution: the
// loop-scheduling methods for asymmetric multicore processors. It provides
// the conventional OpenMP schedules (static, dynamic, guided) as baselines
// plus the three Asymmetric Iteration Distribution (AID) methods of §4.2:
//
//   - AID-static: an asymmetry-aware replacement for static. A short
//     sampling phase estimates the loop's big-to-small speedup factor (SF)
//     online, then iterations are distributed unevenly in one final
//     assignment per thread — SF·k iterations to big-core threads and k to
//     small-core threads, where k = NI / (NB·SF + NS) (Fig. 3).
//   - AID-hybrid: AID-static applied to a configurable percentage of the
//     iterations; the remainder is scheduled dynamically to absorb residual
//     imbalance at the loop's end.
//   - AID-dynamic: a replacement for dynamic that alternates uneven "AID
//     phases" (big cores take R·M iterations, small cores M) with continuous
//     re-estimation of R via a smoothing factor, and switches to dynamic(m)
//     when few iterations remain (Fig. 5).
//
// Schedulers are engine agnostic: every Next call receives the current
// timestamp from the caller, so the same implementation runs under the
// discrete-event simulator (virtual ns) and under real goroutines (monotonic
// ns). All scheduling state lives in shared structures mirroring libgomp's
// work_share; the entire hot path is lock free. Chunk removal is an atomic
// fetch-and-add on the caller's per-core-type sub-pool
// (internal/pool.ShardedWorkShare), so big- and small-core threads do not
// contend on a single counter cache line, and AID phase-transition
// bookkeeping rides a packed CAS epoch word (phaseWord) instead of a mutex:
// the thread reporting the last measurement of a phase owns the transition
// window and publishes the next phase in one atomic store.
package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/pool"
)

// LoopInfo describes one parallel loop to a scheduler: the trip count, the
// worker-thread count, and the mapping from threads to core types. Core
// types are indexed with 0 = fastest (big) and NumTypes-1 = slowest (small),
// matching the generalization of AID-static to NC core types in §4.2.
type LoopInfo struct {
	// NI is the total number of iterations in the loop.
	NI int64
	// NThreads is the number of worker threads.
	NThreads int
	// NumTypes is the number of distinct core types on the platform.
	NumTypes int
	// TypeOf maps a thread ID to its core type. The runtime derives this
	// from the binding convention (BS for all AID variants, §4.3). It must
	// be stable for the duration of the loop (assumption (iii) of §4.2:
	// threads are not migrated between core types during a loop).
	TypeOf func(tid int) int
	// TypeDist, when non-nil, is the platform's topology distance matrix
	// between core types (amp.Platform.TypeDist): TypeDist[a][b] is 0 for
	// types in the same cluster and grows with distance (same package,
	// cross package). Schedulers that shard their pool per core type
	// install it so foreign steals pick the topologically nearest victim;
	// nil keeps the richest-only selection.
	TypeDist [][]int
}

// Validate checks the loop description.
func (li LoopInfo) Validate() error {
	if li.NI < 0 {
		return fmt.Errorf("core: negative trip count %d", li.NI)
	}
	if li.NThreads <= 0 {
		return fmt.Errorf("core: non-positive thread count %d", li.NThreads)
	}
	if li.NumTypes <= 0 {
		return fmt.Errorf("core: non-positive core type count %d", li.NumTypes)
	}
	if li.TypeOf == nil {
		return fmt.Errorf("core: nil TypeOf mapping")
	}
	for tid := 0; tid < li.NThreads; tid++ {
		ct := li.TypeOf(tid)
		if ct < 0 || ct >= li.NumTypes {
			return fmt.Errorf("core: thread %d maps to core type %d, out of [0,%d)", tid, ct, li.NumTypes)
		}
	}
	if li.TypeDist != nil && len(li.TypeDist) < li.NumTypes {
		return fmt.Errorf("core: topology matrix covers %d types, platform has %d", len(li.TypeDist), li.NumTypes)
	}
	return nil
}

// newSharded builds the loop's per-core-type sharded pool with the
// topology distance matrix installed when the loop description carries one.
func (li LoopInfo) newSharded() *pool.ShardedWorkShare {
	ws := pool.NewSharded(li.NI, li.typeCounts())
	if li.TypeDist != nil {
		ws.SetTopology(li.TypeDist)
	}
	return ws
}

// typeCounts returns the number of threads per core type (N_t in §4.2).
func (li LoopInfo) typeCounts() []int {
	counts := make([]int, li.NumTypes)
	for tid := 0; tid < li.NThreads; tid++ {
		counts[li.TypeOf(tid)]++
	}
	return counts
}

// typeSlice snapshots the thread-to-core-type mapping.
func (li LoopInfo) typeSlice() []int {
	types := make([]int, li.NThreads)
	for tid := range types {
		types[tid] = li.TypeOf(tid)
	}
	return types
}

// atomicTypes snapshots the mapping into atomics, for schedulers whose
// Migrate updates it concurrently with readers.
func (li LoopInfo) atomicTypes() []atomic.Int32 {
	types := make([]atomic.Int32, li.NThreads)
	for tid := range types {
		types[tid].Store(int32(li.TypeOf(tid)))
	}
	return types
}

// OriginShared marks an Assign whose iterations came from a type-shared
// pool structure (a single-shard pool, a central mutex-protected deque)
// rather than a per-core-type shard: there is no per-type line to charge,
// so the cost model attributes contention globally and prices locality at
// the base tier.
const OriginShared = -1

// Assign is the result of one scheduler invocation: a half-open iteration
// range plus the runtime-cost metadata the simulator charges for the call.
type Assign struct {
	// Lo, Hi delimit the assigned iterations [Lo, Hi).
	Lo, Hi int64
	// Origin is the provenance of the assigned range: the core type whose
	// shard (or static share) the iterations came from, or OriginShared
	// for ranges from a type-shared pool line. The simulator charges
	// ContentionNs by the occupancy of the Origin shard and tiers the
	// locality penalty by the topology distance between the executing
	// thread's type and Origin.
	Origin int
	// PoolAccesses counts atomic operations on the shared iteration pool
	// performed during this call (0 for compiled-in static distribution,
	// 1 for a dynamic steal, 1+retries for a guided CAS).
	PoolAccesses int
	// Timestamps counts clock reads performed during this call (the
	// sampling machinery of the AID methods).
	Timestamps int
	// CreditClaimed and CreditReturned report the batched credit path's
	// pool traffic for this call, in iterations: Claimed is what the call
	// newly removed from the pool (served plus banked as thread-local
	// credit), Returned what a credit return handed back across a
	// re-partition (pool.CreditSteal). Both zero on the strict claim paths
	// and on thread-local credit draws — which is exactly what the
	// observability layer counts them to see.
	CreditClaimed, CreditReturned int64
}

// N returns the number of iterations in the assignment.
func (a Assign) N() int64 { return a.Hi - a.Lo }

// Scheduler hands out iteration chunks to worker threads. Implementations
// must be safe for concurrent use by NThreads goroutines. A Scheduler
// instance is single use: it schedules exactly one execution of one loop.
type Scheduler interface {
	// Next returns the next chunk for thread tid given the current time in
	// nanoseconds. ok=false means no work remains for this thread and it
	// should proceed to the loop's implicit barrier.
	Next(tid int, nowNs int64) (Assign, bool)
	// Name identifies the scheduling method (for reports).
	Name() string
}

// --- static ---

// Static implements the OpenMP static schedule without a chunk: the
// iteration space is split into NThreads contiguous blocks of near-equal
// size, assigned by thread ID. GCC compiles this distribution directly into
// the program (§4.1), so it costs no runtime pool accesses at all.
type Static struct {
	info LoopInfo
	done []bool
}

// NewStatic returns a static scheduler for the loop.
func NewStatic(info LoopInfo) (*Static, error) {
	if err := info.Validate(); err != nil {
		return nil, err
	}
	return &Static{info: info, done: make([]bool, info.NThreads)}, nil
}

// Name implements Scheduler.
func (s *Static) Name() string { return "static" }

// Range returns thread tid's precomputed block, matching libgomp: the first
// NI%N threads receive ceil(NI/N) iterations, the rest floor(NI/N).
func (s *Static) Range(tid int) (lo, hi int64) {
	n := int64(s.info.NThreads)
	q := s.info.NI / n
	r := s.info.NI % n
	t := int64(tid)
	if t < r {
		lo = t * (q + 1)
		return lo, lo + q + 1
	}
	lo = r*(q+1) + (t-r)*q
	return lo, lo + q
}

// Next implements Scheduler. Each thread receives its block exactly once.
func (s *Static) Next(tid int, _ int64) (Assign, bool) {
	if s.done[tid] {
		return Assign{}, false
	}
	s.done[tid] = true
	lo, hi := s.Range(tid)
	if lo >= hi {
		return Assign{}, false
	}
	return Assign{Lo: lo, Hi: hi, Origin: s.info.TypeOf(tid)}, true
}

// --- static with chunk ---

// StaticChunked implements the OpenMP static,chunk schedule: blocks of the
// given chunk size are assigned to threads round-robin. Like Static, the
// distribution is compiled in and costs no pool accesses.
type StaticChunked struct {
	info  LoopInfo
	chunk int64
	pos   []int64 // next block start per thread
}

// NewStaticChunked returns a static,chunk scheduler.
func NewStaticChunked(info LoopInfo, chunk int64) (*StaticChunked, error) {
	if err := info.Validate(); err != nil {
		return nil, err
	}
	if chunk <= 0 {
		return nil, fmt.Errorf("core: static chunk must be positive, got %d", chunk)
	}
	s := &StaticChunked{info: info, chunk: chunk, pos: make([]int64, info.NThreads)}
	for tid := range s.pos {
		s.pos[tid] = int64(tid) * chunk
	}
	return s, nil
}

// Name implements Scheduler.
func (s *StaticChunked) Name() string { return "static-chunked" }

// Next implements Scheduler.
func (s *StaticChunked) Next(tid int, _ int64) (Assign, bool) {
	lo := s.pos[tid]
	if lo >= s.info.NI {
		return Assign{}, false
	}
	hi := lo + s.chunk
	if hi > s.info.NI {
		hi = s.info.NI
	}
	s.pos[tid] = lo + s.chunk*int64(s.info.NThreads)
	return Assign{Lo: lo, Hi: hi, Origin: s.info.TypeOf(tid)}, true
}

// --- dynamic ---

// Dynamic implements the OpenMP dynamic schedule: threads repeatedly steal
// `chunk` iterations from the shared pool with an atomic fetch-and-add,
// mirroring gomp_iter_dynamic_next (§4.2). The pool is sharded per core
// type, so the fetch-and-add lands on the caller's home sub-pool and only
// spills to a foreign shard when the home shard drains. Every call claims
// at most chunk iterations (strict OpenMP semantics — no handoff batching).
// The default chunk is 1.
type Dynamic struct {
	info  LoopInfo
	chunk int64
	types []int
	ws    *pool.ShardedWorkShare
}

// NewDynamic returns a dynamic scheduler with the given chunk.
func NewDynamic(info LoopInfo, chunk int64) (*Dynamic, error) {
	if err := info.Validate(); err != nil {
		return nil, err
	}
	if chunk <= 0 {
		return nil, fmt.Errorf("core: dynamic chunk must be positive, got %d", chunk)
	}
	return &Dynamic{info: info, chunk: chunk, types: info.typeSlice(), ws: info.newSharded()}, nil
}

// Name implements Scheduler.
func (d *Dynamic) Name() string { return "dynamic" }

// Chunk returns the configured chunk size.
func (d *Dynamic) Chunk() int64 { return d.chunk }

// Next implements Scheduler.
func (d *Dynamic) Next(tid int, _ int64) (Assign, bool) {
	lo, hi, from, acc, ok := d.ws.TryStealBatchFrom(d.types[tid], d.chunk, d.chunk)
	if !ok {
		return Assign{Origin: d.types[tid], PoolAccesses: acc}, false
	}
	return Assign{Lo: lo, Hi: hi, Origin: from, PoolAccesses: acc}, true
}

// --- guided ---

// Guided implements the OpenMP guided schedule: the chunk starts large and
// decays as the pool drains — each steal takes max(remaining/NThreads,
// minChunk) iterations. The paper evaluated guided and found it inferior to
// both static and dynamic on AMPs (§5: +44%/+65% average completion time);
// it is provided as a baseline for that comparison.
type Guided struct {
	info     LoopInfo
	minChunk int64
	types    []int
	ws       *pool.ShardedWorkShare
}

// NewGuided returns a guided scheduler with the given minimum chunk.
func NewGuided(info LoopInfo, minChunk int64) (*Guided, error) {
	if err := info.Validate(); err != nil {
		return nil, err
	}
	if minChunk <= 0 {
		return nil, fmt.Errorf("core: guided min chunk must be positive, got %d", minChunk)
	}
	return &Guided{info: info, minChunk: minChunk, types: info.typeSlice(), ws: info.newSharded()}, nil
}

// Name implements Scheduler.
func (g *Guided) Name() string { return "guided" }

// Next implements Scheduler.
func (g *Guided) Next(tid int, _ int64) (Assign, bool) {
	n := int64(g.info.NThreads)
	lo, hi, from, acc, ok := g.ws.TryStealFuncFrom(g.types[tid], func(rem int64) int64 {
		size := rem / n
		if size < g.minChunk {
			size = g.minChunk
		}
		return size
	})
	if !ok {
		return Assign{Origin: g.types[tid], PoolAccesses: acc}, false
	}
	return Assign{Lo: lo, Hi: hi, Origin: from, PoolAccesses: acc}, true
}

// Migratable is implemented by schedulers that can adapt when the OS
// migrates a worker thread between cores of different types mid-loop. The
// paper proposes exactly this OS-runtime interaction for multi-application
// scenarios (§4.3): "the runtime system would also greatly benefit from
// notifications from the OS when an application thread is migrated between
// cores of different types ... That would give the runtime system
// opportunities to readjust the distribution of iterations dynamically."
// AIDHybrid (and so AID-static) and AIDDynamic implement it.
type Migratable interface {
	// Migrate tells the scheduler that thread tid now runs on a core of
	// type newType, effective at time nowNs. Out-of-range types are
	// ignored (defensive: a racing notification must not corrupt state).
	Migrate(tid, newType int, nowNs int64)
}

// SFEstimator is implemented by schedulers that derive an online estimate
// of the per-core-type speedup factors (AID-static/hybrid's SF, AID-
// dynamic's R). Both execution engines surface the estimate after a loop,
// which lets the cross-engine conformance harness assert that the
// simulator and the real-goroutine runtime converge to compatible values.
// ok is false while the estimate is not available yet. SFEstimate is safe
// to poll from any goroutine mid-run: the implementations publish their
// tables through atomics (the epoch word, a pointer swap), never in place
// — this is what lets the engines feed live estimates to the fairness
// policy (fair.Candidate.SF) instead of reading them only at retirement.
type SFEstimator interface {
	SFEstimate() (sf []float64, ok bool)
}

// SFLiveViewer is the zero-copy companion of SFEstimator for polling hot
// paths: SFLiveView returns the scheduler's current estimate WITHOUT
// copying, or nil while none is published. The returned slice is the
// published table itself — the implementations replace it wholesale
// (pointer swap, epoch-gated publication) and never mutate it in place, so
// it is safe to read concurrently but MUST be treated as immutable by the
// caller. The multi-loop registry reads it on every scheduling pick; the
// copy SFEstimate makes per call is exactly the allocation a steady-state
// pick cannot afford.
type SFLiveViewer interface {
	SFLiveView() []float64
}
