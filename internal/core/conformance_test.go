package core

import (
	"fmt"
	"testing"
)

// conformanceInfo builds a LoopInfo with big threads first (the BS binding
// convention all AID variants assume) on a two-type platform. small may be
// 0: the platform still reports two core types, exercising empty shards.
func conformanceInfo(ni int64, big, small int) LoopInfo {
	return LoopInfo{
		NI:       ni,
		NThreads: big + small,
		NumTypes: 2,
		TypeOf: func(tid int) int {
			if tid < big {
				return 0
			}
			return 1
		},
	}
}

// conformanceSchedulers enumerates every scheduling method under test, each
// built fresh per loop (Scheduler instances are single use).
func conformanceSchedulers(t *testing.T, info LoopInfo) map[string]Scheduler {
	t.Helper()
	mk := map[string]Scheduler{}
	add := func(name string, s Scheduler, err error) {
		if err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
		mk[name] = s
	}
	st, err := NewStatic(info)
	add("static", st, err)
	sc, err := NewStaticChunked(info, 3)
	add("static-chunked", sc, err)
	dy, err := NewDynamic(info, 1)
	add("dynamic", dy, err)
	dy4, err := NewDynamic(info, 4)
	add("dynamic-4", dy4, err)
	gu, err := NewGuided(info, 1)
	add("guided", gu, err)
	as, err := NewAIDStatic(info, 1)
	add("aid-static", as, err)
	offSF := make([]float64, info.NumTypes)
	for i := range offSF {
		offSF[i] = float64(info.NumTypes - i)
	}
	ao, err := NewAIDStaticOffline(info, 1, offSF)
	add("aid-static-offline", ao, err)
	ah, err := NewAIDHybrid(info, 1, 0.8)
	add("aid-hybrid", ah, err)
	ad, err := NewAIDDynamic(info, 1, 5)
	add("aid-dynamic", ad, err)
	au, err := NewAIDAuto(info, 2, 0.8, 8, 0)
	add("aid-auto", au, err)
	wsl, err := NewWorkSteal(info, 2)
	add("work-steal", wsl, err)
	return mk
}

// TestSchedulerConformance is the cross-method conformance harness: every
// scheduler must cover each iteration of the loop exactly once — no loss,
// no duplication — across trip counts from degenerate (0, 1, fewer
// iterations than threads) through a prime count that defeats every
// divisibility assumption, up to a million iterations, and across thread
// mixes from all-big to heavily small-skewed. virtualExec asserts the
// exactly-once property and range sanity on every assignment.
func TestSchedulerConformance(t *testing.T) {
	bigNI := int64(1_000_000)
	if testing.Short() {
		bigNI = 100_000
	}
	mixes := []struct {
		name       string
		big, small int
	}{
		{"1B+0S", 1, 0},
		{"2B+2S", 2, 2},
		{"1B+7S", 1, 7},
	}
	for _, mix := range mixes {
		nt := mix.big + mix.small
		trips := []int64{0, 1, int64(nt) - 1, 10007, bigNI}
		for _, ni := range trips {
			if ni < 0 {
				continue // 1B+0S has no "fewer than threads" case
			}
			info := conformanceInfo(ni, mix.big, mix.small)
			for name, s := range conformanceSchedulers(t, info) {
				t.Run(fmt.Sprintf("%s/ni=%d/%s", mix.name, ni, name), func(t *testing.T) {
					counts, _ := virtualExec(t, s, info, []int64{100, 300})
					var total int64
					for _, c := range counts {
						total += c
					}
					if total != ni {
						t.Fatalf("covered %d of %d iterations", total, ni)
					}
				})
			}
		}
	}
}

// TestConformanceReversedTypeOrder runs the harness with small cores listed
// first (type 0 slowest is not the AID convention, but LoopInfo permits any
// mapping and coverage must be unconditional).
func TestConformanceReversedTypeOrder(t *testing.T) {
	info := LoopInfo{
		NI:       10007,
		NThreads: 4,
		NumTypes: 2,
		TypeOf:   func(tid int) int { return 1 - tid%2 },
	}
	for name, s := range conformanceSchedulers(t, info) {
		t.Run(name, func(t *testing.T) {
			virtualExec(t, s, info, []int64{300, 100})
		})
	}
}

// TestConformanceThreeTypes covers a three-core-type platform (the §4.2
// generalization), including a type with zero running threads.
func TestConformanceThreeTypes(t *testing.T) {
	info := LoopInfo{
		NI:       5003,
		NThreads: 5,
		NumTypes: 3,
		TypeOf: func(tid int) int {
			if tid < 2 {
				return 0
			}
			return 2 // type 1 has no threads: its shard must still drain
		},
	}
	for name, s := range conformanceSchedulers(t, info) {
		t.Run(name, func(t *testing.T) {
			virtualExec(t, s, info, []int64{100, 200, 300})
		})
	}
}
