package core

import (
	"fmt"
	"testing"
)

// conformanceInfo builds a LoopInfo with big threads first (the BS binding
// convention all AID variants assume) on a two-type platform. small may be
// 0: the platform still reports two core types, exercising empty shards.
func conformanceInfo(ni int64, big, small int) LoopInfo {
	return LoopInfo{
		NI:       ni,
		NThreads: big + small,
		NumTypes: 2,
		TypeOf: func(tid int) int {
			if tid < big {
				return 0
			}
			return 1
		},
	}
}

// conformanceSchedulers enumerates every scheduling method under test, each
// built fresh per loop (Scheduler instances are single use).
func conformanceSchedulers(t *testing.T, info LoopInfo) map[string]Scheduler {
	t.Helper()
	mk := map[string]Scheduler{}
	add := func(name string, s Scheduler, err error) {
		if err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
		mk[name] = s
	}
	st, err := NewStatic(info)
	add("static", st, err)
	sc, err := NewStaticChunked(info, 3)
	add("static-chunked", sc, err)
	dy, err := NewDynamic(info, 1)
	add("dynamic", dy, err)
	dy4, err := NewDynamic(info, 4)
	add("dynamic-4", dy4, err)
	gu, err := NewGuided(info, 1)
	add("guided", gu, err)
	as, err := NewAIDStatic(info, 1)
	add("aid-static", as, err)
	offSF := make([]float64, info.NumTypes)
	for i := range offSF {
		offSF[i] = float64(info.NumTypes - i)
	}
	ao, err := NewAIDStaticOffline(info, 1, offSF)
	add("aid-static-offline", ao, err)
	ah, err := NewAIDHybrid(info, 1, 0.8)
	add("aid-hybrid", ah, err)
	ad, err := NewAIDDynamic(info, 1, 5)
	add("aid-dynamic", ad, err)
	// SF-aware pool re-partitioning must preserve exactly-once coverage
	// through every mid-loop re-cut.
	ahrw, err := NewAIDHybrid(info, 1, 0.8)
	if err == nil {
		ahrw.SetReweight(true)
	}
	add("aid-hybrid-rw", ahrw, err)
	adrw, err := NewAIDDynamic(info, 1, 5)
	if err == nil {
		adrw.SetReweight(true)
	}
	add("aid-dynamic-rw", adrw, err)
	au, err := NewAIDAuto(info, 2, 0.8, 8, 0)
	add("aid-auto", au, err)
	wsl, err := NewWorkSteal(info, 2)
	add("work-steal", wsl, err)
	return mk
}

// TestSchedulerConformance is the cross-method conformance harness: every
// scheduler must cover each iteration of the loop exactly once — no loss,
// no duplication — across trip counts from degenerate (0, 1, fewer
// iterations than threads) through a prime count that defeats every
// divisibility assumption, up to a million iterations, and across thread
// mixes from all-big to heavily small-skewed. virtualExec asserts the
// exactly-once property and range sanity on every assignment.
func TestSchedulerConformance(t *testing.T) {
	bigNI := int64(1_000_000)
	if testing.Short() {
		bigNI = 100_000
	}
	mixes := []struct {
		name       string
		big, small int
	}{
		{"1B+0S", 1, 0},
		{"2B+2S", 2, 2},
		{"1B+7S", 1, 7},
	}
	for _, mix := range mixes {
		nt := mix.big + mix.small
		trips := []int64{0, 1, int64(nt) - 1, 10007, bigNI}
		for _, ni := range trips {
			if ni < 0 {
				continue // 1B+0S has no "fewer than threads" case
			}
			info := conformanceInfo(ni, mix.big, mix.small)
			for name, s := range conformanceSchedulers(t, info) {
				t.Run(fmt.Sprintf("%s/ni=%d/%s", mix.name, ni, name), func(t *testing.T) {
					counts, _ := virtualExec(t, s, info, []int64{100, 300})
					var total int64
					for _, c := range counts {
						total += c
					}
					if total != ni {
						t.Fatalf("covered %d of %d iterations", total, ni)
					}
				})
			}
		}
	}
}

// TestMultiTenantConformance is the multi-tenant harness: K concurrent
// loops — mixed trip counts {0, 1, prime, 1e6} and mixed schedulers, each
// with its own Scheduler instance — share one virtual fleet of workers.
// Each worker round-robins its Next calls across the tenants that have not
// yet retired it, modeling the multi-loop registry's interleaving at the
// scheduler level. The harness verifies, per tenant: exactly-once
// iteration coverage, that coverage is already complete at the moment the
// tenant's barrier releases (all workers retired), and that barriers are
// independent — degenerate tenants release while the million-iteration
// tenants still hold workers.
func TestMultiTenantConformance(t *testing.T) {
	bigNI := int64(1_000_000)
	if testing.Short() {
		bigNI = 100_000
	}
	info := func(ni int64) LoopInfo { return conformanceInfo(ni, 2, 2) }
	nthreads := info(0).NThreads

	type tenant struct {
		name    string
		ni      int64
		s       Scheduler
		seen    []int32
		total   int64
		active  []bool
		nactive int
		release int // barrier-release sequence number, -1 while running
	}
	mk := func(name string, ni int64, s Scheduler, err error) *tenant {
		if err != nil {
			t.Fatalf("building tenant %s: %v", name, err)
		}
		tn := &tenant{name: name, ni: ni, s: s, seen: make([]int32, ni),
			active: make([]bool, nthreads), nactive: nthreads, release: -1}
		for i := range tn.active {
			tn.active[i] = true
		}
		return tn
	}
	var tenants []*tenant
	add := func(name string, ni int64, s Scheduler, err error) {
		tenants = append(tenants, mk(name, ni, s, err))
	}
	{
		s, err := NewStatic(info(0))
		add("empty/static", 0, s, err)
	}
	{
		s, err := NewAIDStatic(info(1), 1)
		add("one/aid-static", 1, s, err)
	}
	{
		s, err := NewAIDDynamic(info(10007), 1, 5)
		add("prime/aid-dynamic", 10007, s, err)
	}
	{
		s, err := NewGuided(info(10007), 1)
		add("prime/guided", 10007, s, err)
	}
	{
		s, err := NewDynamic(info(bigNI), 7)
		add("big/dynamic", bigNI, s, err)
	}
	{
		s, err := NewAIDHybrid(info(bigNI), 1, 0.8)
		add("big/aid-hybrid", bigNI, s, err)
	}

	// Virtual multi-tenant fleet: per-worker clock plus a per-worker
	// round-robin cursor over its unretired tenants. Earliest clock acts.
	perIterNs := []int64{100, 300}
	clock := make([]int64, nthreads)
	cursor := make([]int, nthreads)
	remaining := make([]int, nthreads) // unretired tenants per worker
	for i := range remaining {
		remaining[i] = len(tenants)
	}
	releases := 0
	for {
		tid := -1
		for i := 0; i < nthreads; i++ {
			if remaining[i] > 0 && (tid == -1 || clock[i] < clock[tid]) {
				tid = i
			}
		}
		if tid == -1 {
			break
		}
		// Round-robin to this worker's next unretired tenant.
		var tn *tenant
		for range tenants {
			cursor[tid] = (cursor[tid] + 1) % len(tenants)
			if cand := tenants[cursor[tid]]; cand.active[tid] {
				tn = cand
				break
			}
		}
		asg, ok := tn.s.Next(tid, clock[tid])
		if !ok {
			tn.active[tid] = false
			tn.nactive--
			remaining[tid]--
			if tn.nactive == 0 {
				// Barrier release: coverage must already be complete.
				if tn.total != tn.ni {
					t.Fatalf("tenant %s released its barrier with %d of %d iterations done",
						tn.name, tn.total, tn.ni)
				}
				tn.release = releases
				releases++
			}
			continue
		}
		if asg.Lo < 0 || asg.Hi > tn.ni || asg.Lo >= asg.Hi {
			t.Fatalf("tenant %s: bad range [%d,%d)", tn.name, asg.Lo, asg.Hi)
		}
		for i := asg.Lo; i < asg.Hi; i++ {
			tn.seen[i]++
		}
		tn.total += asg.N()
		clock[tid] += asg.N() * perIterNs[info(0).TypeOf(tid)]
	}

	for _, tn := range tenants {
		if tn.release < 0 {
			t.Errorf("tenant %s never released its barrier", tn.name)
		}
		for i, c := range tn.seen {
			if c != 1 {
				t.Fatalf("tenant %s: iteration %d covered %d times", tn.name, i, c)
			}
		}
	}
	// Barrier independence: the degenerate tenants (0 and 1 iterations)
	// must release before every million-iteration tenant.
	for _, small := range tenants[:2] {
		for _, big := range tenants[4:] {
			if small.release > big.release {
				t.Errorf("tenant %s released after %s despite having %d iterations vs %d",
					small.name, big.name, small.ni, big.ni)
			}
		}
	}
}

// TestConformanceReversedTypeOrder runs the harness with small cores listed
// first (type 0 slowest is not the AID convention, but LoopInfo permits any
// mapping and coverage must be unconditional).
func TestConformanceReversedTypeOrder(t *testing.T) {
	info := LoopInfo{
		NI:       10007,
		NThreads: 4,
		NumTypes: 2,
		TypeOf:   func(tid int) int { return 1 - tid%2 },
	}
	for name, s := range conformanceSchedulers(t, info) {
		t.Run(name, func(t *testing.T) {
			virtualExec(t, s, info, []int64{300, 100})
		})
	}
}

// TestConformanceThreeTypes covers a three-core-type platform (the §4.2
// generalization), including a type with zero running threads.
func TestConformanceThreeTypes(t *testing.T) {
	info := LoopInfo{
		NI:       5003,
		NThreads: 5,
		NumTypes: 3,
		TypeOf: func(tid int) int {
			if tid < 2 {
				return 0
			}
			return 2 // type 1 has no threads: its shard must still drain
		},
	}
	for name, s := range conformanceSchedulers(t, info) {
		t.Run(name, func(t *testing.T) {
			virtualExec(t, s, info, []int64{100, 200, 300})
		})
	}
}
