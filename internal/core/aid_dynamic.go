package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/pool"
)

// AIDDynamic implements the AID-dynamic schedule of §4.2 (Fig. 5), an
// asymmetry-aware replacement for OpenMP dynamic that reduces pool-access
// overhead by letting big-core threads remove larger chunks.
//
// Two chunk sizes are configured: the minor chunk m (used in the initial
// sampling phase and in all wait states) and the Major chunk M ≥ m. The
// schedule alternates:
//
//  1. an initial sampling phase identical to AID-static's, which yields the
//     first value of R (= the estimated SF);
//  2. AID phases, during which a small-core thread is allotted M iterations
//     and a big-core thread R·M. Each AID phase doubles as the next sampling
//     phase: when all threads complete it, the smoothing factor
//     SM = avg small-core phase time / avg big-core phase time
//     is computed and the next phase uses R' = R·SM. If the allotments were
//     perfectly balanced the raw phase times match and SM = 1.
//
// The whole schedule is lock free: chunk removal is a fetch-and-add on the
// caller's per-core-type shard, and phase transitions ride the packed CAS
// epoch word (phaseWord) — the thread that reports the last measurement of
// an epoch owns the transition window, re-estimates R, and publishes the
// next epoch in a single store.
//
// Following the optimization noted under Fig. 5, the scheduler switches
// permanently to dynamic(m) as soon as the remaining iteration count drops
// to M·NThreads or below, which removes the end-of-loop imbalance that large
// chunks would otherwise cause (§5B, Fig. 8).
type AIDDynamic struct {
	info LoopInfo
	m, M int64

	ws *pool.ShardedWorkShare
	sc *pool.SampleCounters

	th    []aidDynThread
	types []atomic.Int32 // per-thread core type; mutable via Migrate (§4.3)

	// phase packs (epoch, remaining): epoch 0 is the initial sampling, n>0
	// the nth AID phase. r is published by pointer swap inside the
	// transition window, so mid-run readers never observe a half-written
	// table.
	phase phaseWord
	r     atomic.Pointer[[]float64] // per core type, progress vs slowest type
	tail  atomic.Bool               // switched to dynamic(m) for the loop's end

	// Ablation toggles (see SetAblation); set before the first Next call.
	noTailSwitch bool
	noSMClamp    bool

	// reweight re-partitions the pool under R-proportional per-type
	// weights when the estimate is first published and again whenever it
	// drifts past reweightDrift (see SetReweight). lastRW is the table the
	// pool was last cut for; both are touched only inside the
	// single-threaded transition windows.
	reweight bool
	lastRW   []float64

	// observe, when non-nil, receives R publications and the tail switch
	// (the decision-capture hook of the record & replay subsystem). Set
	// before the first Next call. Epoch transitions invoke it inside the
	// transition window; the tail switch invokes it from whichever thread
	// won the CAS, possibly concurrently with a transition.
	observe func(PhaseEvent)
}

// SetPhaseObserver implements PhaseObservable.
func (a *AIDDynamic) SetPhaseObserver(fn func(PhaseEvent)) { a.observe = fn }

type aidDynThread struct {
	state  threadState
	epoch  uint32 // last epoch this thread received an AID assignment for
	lastTS int64
	// nominalN is the intended allotment (R_j·M) of the thread's current
	// AID phase. The actual allotment may be smaller (δ subtraction, pool
	// drain); measured phase times are rescaled to the nominal size so
	// the smoothing-factor invariant holds: a perfectly balanced phase
	// yields SM = 1 regardless of how many iterations each thread already
	// covered while waiting.
	nominalN int64
	// servedN accumulates the allotment pieces served so far this phase;
	// the phase measurement covers all of them, so a multi-shard span does
	// not shrink the measured window to its first piece.
	servedN int64
	claimState
	_ [64]byte
}

// NewAIDDynamic returns an AID-dynamic scheduler with minor chunk m and
// Major chunk M (the paper's default experiments use m=1, M=5).
func NewAIDDynamic(info LoopInfo, m, M int64) (*AIDDynamic, error) {
	if err := info.Validate(); err != nil {
		return nil, err
	}
	if m <= 0 {
		return nil, fmt.Errorf("core: minor chunk must be positive, got %d", m)
	}
	if M < m {
		return nil, fmt.Errorf("core: Major chunk %d must be >= minor chunk %d", M, m)
	}
	a := &AIDDynamic{
		info:  info,
		m:     m,
		M:     M,
		ws:    info.newSharded(),
		sc:    pool.NewSampleCounters(info.NumTypes, info.NThreads),
		th:    make([]aidDynThread, info.NThreads),
		types: info.atomicTypes(),
	}
	a.phase.init(0, info.NThreads)
	return a, nil
}

// Name implements Scheduler.
func (a *AIDDynamic) Name() string { return "aid-dynamic" }

// PoolReweights implements ReweightCounter.
func (a *AIDDynamic) PoolReweights() int64 { return a.ws.Reweights() }

// SetAblation disables individual design mechanisms so their contribution
// can be quantified (the root benchmark harness exercises both):
// disableTail removes the Fig. 5 end-of-loop switch to dynamic(m);
// disableSMClamp removes the per-phase bound on the smoothing factor.
// Must be called before the first Next invocation.
func (a *AIDDynamic) SetAblation(disableTail, disableSMClamp bool) {
	a.noTailSwitch = disableTail
	a.noSMClamp = disableSMClamp
}

// reweightDrift is the stabilization threshold of the re-partition path: a
// published R table triggers a fresh pool cut only when some type's ratio
// moved by more than this relative fraction since the last cut. Within the
// band the estimate is considered stable and the partition is left alone —
// re-cutting on every smoothing step would churn shard ownership for noise.
const reweightDrift = 0.25

// SetReweight enables SF-aware pool re-partitioning: when the initial
// sampling publishes R — and again whenever smoothing moves it past
// reweightDrift — the pool's unclaimed iterations are re-cut so each core
// type's home shards hold a share proportional to its consumption rate
// N_t·R_t. Big-core threads then serve their R·M allotments from home
// shards instead of paying foreign-shard handoff traffic once the
// thread-count-proportional partition runs dry under them. Off by default
// (the paper's partition is per-type thread counts). Must be called before
// the first Next.
func (a *AIDDynamic) SetReweight(on bool) { a.reweight = on }

// maybeReweight re-cuts the pool for the just-published table r. Runs only
// inside the single-threaded transition windows; force skips the drift
// band (the initial publication, where there is no previous cut).
func (a *AIDDynamic) maybeReweight(r []float64, force bool) {
	if !a.reweight || a.tail.Load() {
		return
	}
	if !force {
		drift := 0.0
		for t := range r {
			if t < len(a.lastRW) && a.lastRW[t] > 0 {
				if d := math.Abs(r[t]-a.lastRW[t]) / a.lastRW[t]; d > drift {
					drift = d
				}
			}
		}
		if drift <= reweightDrift {
			return
		}
	}
	if w := sfWeights(a.info.typeCounts(), r); w != nil && a.ws.NumTypes() == len(w) {
		a.ws.Reweight(w)
		a.lastRW = append(a.lastRW[:0], r...)
	}
}

// Chunks returns the configured (m, M) pair.
func (a *AIDDynamic) Chunks() (m, M int64) { return a.m, a.M }

// R returns the current per-core-type progress ratios and ok=false before
// the initial sampling completes. Exposed for tests and ablations.
func (a *AIDDynamic) R() (r []float64, ok bool) {
	rp := a.r.Load()
	if rp == nil {
		return nil, false
	}
	return append([]float64(nil), (*rp)...), true
}

// SFEstimate implements SFEstimator: AID-dynamic's R is its running
// estimate of the per-core-type speedup factors.
func (a *AIDDynamic) SFEstimate() ([]float64, bool) { return a.R() }

// SFLiveView implements SFLiveViewer: R tables are published by pointer
// swap and never mutated in place (smoothR builds a fresh slice), so the
// current table can be handed out without a copy.
func (a *AIDDynamic) SFLiveView() []float64 {
	if rp := a.r.Load(); rp != nil {
		return *rp
	}
	return nil
}

// InTail reports whether the end-of-loop dynamic(m) switch has engaged.
func (a *AIDDynamic) InTail() bool { return a.tail.Load() }

// take serves thread tid up to n iterations via its claimState, on the
// batched credit path from the thread's current home shard: the sampling,
// wait and drain states draw most minor chunks from a thread-local credit
// instead of paying one pool RMW per chunk.
func (a *AIDDynamic) take(tid int, st *aidDynThread, n int64, asg *Assign) (Assign, bool) {
	return st.takeCredit(a.ws, int(a.types[tid].Load()), n, asg)
}

// clampR keeps the progress ratio inside a sane envelope; a wildly wrong
// sample (e.g. a descheduled thread) must not produce pathological chunks.
func clampR(r float64) float64 {
	const lo, hi = 0.25, 64
	if r < lo {
		return lo
	}
	if r > hi {
		return hi
	}
	return r
}

// computeInitialR derives R from the initial sampling counters exactly as
// AID-static derives SF (per-iteration-normalized times). Runs inside the
// single-threaded transition window of epoch 0.
func (a *AIDDynamic) computeInitialR() []float64 {
	r := make([]float64, a.info.NumTypes)
	slowest := 0.0
	for t := 0; t < a.info.NumTypes; t++ {
		if avg, ok := a.sc.Avg(t); ok && avg > slowest {
			slowest = avg
		}
	}
	for t := 0; t < a.info.NumTypes; t++ {
		avg, ok := a.sc.Avg(t)
		if !ok || avg <= 0 || slowest <= 0 {
			r[t] = 1
			continue
		}
		r[t] = clampR(slowest / avg)
	}
	return r
}

// smoothR updates R per Fig. 5: R' = R·SM with SM the ratio of raw average
// phase completion times (slowest type over each type). Raw times are the
// correct signal here: if the previous allotment (R·M vs M) was balanced,
// all types finish simultaneously and SM = 1, leaving R unchanged. The
// per-phase correction is bounded to [2/3, 3/2] so one phase that happened
// to land on unusually heavy (or light) iterations cannot swing R wildly —
// without the bound, loops with coarse content-dependent cost variation
// oscillate, which is precisely what AID-dynamic's reduced chunk
// sensitivity (Fig. 8) is meant to avoid. Runs inside the transition
// window; the new table is published by pointer swap.
func (a *AIDDynamic) smoothR() {
	old := *a.r.Load()
	r := append([]float64(nil), old...)
	slowest := 0.0
	for t := 0; t < a.info.NumTypes; t++ {
		if avg, ok := a.sc.Avg(t); ok && avg > slowest {
			slowest = avg
		}
	}
	for t := 0; t < a.info.NumTypes; t++ {
		avg, ok := a.sc.Avg(t)
		if !ok || avg <= 0 || slowest <= 0 {
			continue
		}
		sm := slowest / avg
		if !a.noSMClamp {
			if sm < 2.0/3.0 {
				sm = 2.0 / 3.0
			} else if sm > 1.5 {
				sm = 1.5
			}
		}
		r[t] = clampR(r[t] * sm)
	}
	a.r.Store(&r)
}

// phaseSpan returns the iteration count one full AID phase consumes,
// Σ_i R_type(i)·M — the tail-switch threshold: once less than one phase of
// work remains, uneven chunks can only create end-of-loop imbalance, so
// the schedule finishes under dynamic(m). (With R=1 everywhere this
// reduces to the M·NThreads bound stated under Fig. 5.) It reads the live
// thread-to-type mapping so OS migrations (§4.3) keep the threshold honest.
func (a *AIDDynamic) phaseSpan() int64 {
	span := float64(0)
	r := a.r.Load()
	for tid := range a.types {
		rt := 1.0
		if r != nil {
			rt = (*r)[a.types[tid].Load()]
		}
		span += rt
	}
	return int64(span * float64(a.M))
}

// aidAssign hands thread tid its allotment for the current AID phase:
// R_j·M − δ iterations (M for the slowest type). It also performs the tail
// check: with less than one phase of work left, AID phases stop and the
// loop finishes under dynamic(m).
func (a *AIDDynamic) aidAssign(tid int, st *aidDynThread, asg *Assign, nowNs int64) (Assign, bool) {
	if !a.tail.Load() && !a.noTailSwitch && a.ws.Remaining() <= a.phaseSpan() {
		if a.tail.CompareAndSwap(false, true) && a.observe != nil {
			// The CAS winner reports the switch exactly once.
			a.observe(PhaseEvent{TimeNs: nowNs, Tid: tid,
				Epoch: int(a.phase.epoch()), Kind: PhaseTailSwitch})
		}
	}
	if a.tail.Load() {
		st.state = stDrain
		return a.take(tid, st, a.m, asg)
	}
	st.state = stAID
	st.epoch = a.phase.epoch()
	st.lastTS = nowNs
	asg.Origin = int(a.types[tid].Load()) // drained-pool probes charge the home line
	r := *a.r.Load()
	nominal := int64(math.Round(r[a.types[tid].Load()] * float64(a.M)))
	if nominal < a.m {
		nominal = a.m
	}
	st.nominalN = nominal
	// δ holds what the thread claimed while waiting (§4.2): it has already
	// covered that much of its share, so the allotment shrinks accordingly.
	want := nominal - st.delta
	if want < a.m {
		want = a.m
	}
	// Re-arm δ at the thread's unserved credit balance: that work is still
	// owned (and will be executed this phase), so zeroing it outright would
	// under-count the next allotment subtraction.
	st.delta = st.credit.N()
	// Claim the allotment across shards: clipping it to a nearly drained
	// home shard would shrink the phase to a sliver, and rescaling a tiny
	// measured chunk to the nominal size amplifies timer noise straight
	// into the SM update. Tail pieces go to the stash and are served (and
	// measured) before the phase completes.
	rs, acc := a.ws.StealSpan(int(a.types[tid].Load()), want)
	normalizeOrigin(a.ws, rs) // adopted single-shard pools (AID-auto) have no type tags
	asg.PoolAccesses += acc
	got, ok := a.serveAllotment(st, rs, asg)
	if !ok {
		// Pool drained under the allotment claim, but the thread may still
		// hold credit; the drain path serves it — a thread must never
		// retire while it owns iterations.
		st.state = stDrain
		if st.credit.Empty() {
			// StealSpan above already observed the drained pool.
			return got, false
		}
		return a.take(tid, st, a.m, asg)
	}
	return got, ok
}

// serveAllotment starts the phase-measurement window over the claimed span.
func (a *AIDDynamic) serveAllotment(st *aidDynThread, rs []pool.Range, asg *Assign) (Assign, bool) {
	got, ok := st.serve(rs, asg)
	st.servedN = st.lastN
	return got, ok
}

// Migrate implements Migratable (§4.3): thread tid now runs on newType.
// AID-dynamic adapts naturally — the thread's next AID-phase allotment uses
// the new type's R, and subsequent smoothing folds the thread's measured
// times into the new type's average. This is the property that makes
// AID-dynamic the paper's candidate for multi-application scenarios with
// OS-driven thread placement.
func (a *AIDDynamic) Migrate(tid, newType int, _ int64) {
	if newType >= 0 && newType < a.info.NumTypes {
		a.types[tid].Store(int32(newType))
	}
}

// Next implements Scheduler, realizing the Fig. 5 state machine.
func (a *AIDDynamic) Next(tid int, nowNs int64) (Assign, bool) {
	st := &a.th[tid]
	asg := &Assign{}
	switch st.state {
	case stNew:
		st.lastTS = nowNs
		asg.Timestamps++
		st.state = stSampling
		return a.take(tid, st, a.m, asg)

	case stSampling:
		asg.Timestamps++
		elapsed := nowNs - st.lastTS
		st.lastTS = nowNs
		if st.lastN > 0 {
			perIter := elapsed * 1024 / st.lastN
			a.sc.Add(int(a.types[tid].Load()), perIter)
			if a.phase.complete(0) {
				rv := a.computeInitialR()
				a.r.Store(&rv)
				a.sc.Reset()
				a.maybeReweight(rv, true)
				if a.observe != nil {
					a.observe(PhaseEvent{TimeNs: nowNs, Tid: tid, Epoch: 1,
						Kind: PhaseRInitial, SF: append([]float64(nil), rv...)})
				}
				a.phase.advance(1, a.info.NThreads)
				return a.aidAssign(tid, st, asg, nowNs)
			}
		}
		st.state = stSamplingWait
		return a.take(tid, st, a.m, asg)

	case stSamplingWait:
		if a.phase.epoch() > 0 {
			return a.aidAssign(tid, st, asg, nowNs)
		}
		return a.take(tid, st, a.m, asg)

	case stAID:
		// Serve any outstanding pieces of the current allotment first: the
		// phase measurement must span the whole allotment, not just its
		// first piece.
		if rg, ok := st.pop(); ok {
			st.servedN += rg.N()
			asg.Lo, asg.Hi, asg.Origin = rg.Lo, rg.Hi, int(rg.From)
			return *asg, true
		}
		// The thread just completed its AID-phase allotment; the phase
		// completion time is the next sampling measurement (Fig. 5). The
		// elapsed time is rescaled from the actual to the nominal allotment
		// so that δ subtraction and pool drain cannot distort SM.
		asg.Timestamps++
		elapsed := nowNs - st.lastTS
		st.lastTS = nowNs
		if st.servedN > 0 {
			scaled := elapsed
			if st.nominalN > 0 && st.nominalN != st.servedN {
				scaled = elapsed * st.nominalN / st.servedN
			}
			a.sc.Add(int(a.types[tid].Load()), scaled)
			if a.phase.complete(st.epoch) {
				a.smoothR()
				a.sc.Reset()
				a.maybeReweight(*a.r.Load(), false)
				if a.observe != nil {
					a.observe(PhaseEvent{TimeNs: nowNs, Tid: tid, Epoch: int(st.epoch) + 1,
						Kind: PhaseRSmoothed, SF: append([]float64(nil), *a.r.Load()...)})
				}
				a.phase.advance(st.epoch+1, a.info.NThreads)
				return a.aidAssign(tid, st, asg, nowNs)
			}
		}
		st.state = stSamplingWait2
		return a.take(tid, st, a.m, asg)

	case stSamplingWait2:
		if st.epoch < a.phase.epoch() {
			return a.aidAssign(tid, st, asg, nowNs)
		}
		return a.take(tid, st, a.m, asg)

	case stDrain:
		return a.take(tid, st, a.m, asg)
	}
	panic(fmt.Sprintf("core: thread %d in invalid state %v", tid, st.state))
}
