package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/pool"
)

// AIDDynamic implements the AID-dynamic schedule of §4.2 (Fig. 5), an
// asymmetry-aware replacement for OpenMP dynamic that reduces pool-access
// overhead by letting big-core threads remove larger chunks.
//
// Two chunk sizes are configured: the minor chunk m (used in the initial
// sampling phase and in all wait states) and the Major chunk M ≥ m. The
// schedule alternates:
//
//  1. an initial sampling phase identical to AID-static's, which yields the
//     first value of R (= the estimated SF);
//  2. AID phases, during which a small-core thread is allotted M iterations
//     and a big-core thread R·M. Each AID phase doubles as the next sampling
//     phase: when all threads complete it, the smoothing factor
//     SM = avg small-core phase time / avg big-core phase time
//     is computed and the next phase uses R' = R·SM. If the allotments were
//     perfectly balanced the raw phase times match and SM = 1.
//
// Following the optimization noted under Fig. 5, the scheduler switches
// permanently to dynamic(m) as soon as the remaining iteration count drops
// to M·NThreads or below, which removes the end-of-loop imbalance that large
// chunks would otherwise cause (§5B, Fig. 8).
type AIDDynamic struct {
	info LoopInfo
	m, M int64

	ws *pool.WorkShare
	sc *pool.SampleCounters

	mu    sync.Mutex
	th    []aidDynThread
	types []int     // per-thread core type; mutable via Migrate (§4.3)
	epoch int       // 0 = initial sampling; n>0 = nth AID phase
	r     []float64 // per core type, relative progress vs slowest type
	tail  bool      // switched to dynamic(m) for the loop's end

	// Ablation toggles (see SetAblation).
	noTailSwitch bool
	noSMClamp    bool
	// phaseRecorded counts threads that reported their time for the current
	// epoch; the counters are a.sc, reset at each phase boundary.
}

type aidDynThread struct {
	state  threadState
	epoch  int // last epoch this thread received an AID assignment for
	lastTS int64
	lastN  int64
	delta  int64 // iterations executed in wait states since last AID assignment
	// nominalN is the intended allotment (R_j·M) of the thread's current
	// AID phase. The actual allotment may be smaller (δ subtraction, pool
	// clipping); measured phase times are rescaled to the nominal size so
	// the smoothing-factor invariant holds: a perfectly balanced phase
	// yields SM = 1 regardless of how many iterations each thread already
	// covered while waiting.
	nominalN int64
}

// NewAIDDynamic returns an AID-dynamic scheduler with minor chunk m and
// Major chunk M (the paper's default experiments use m=1, M=5).
func NewAIDDynamic(info LoopInfo, m, M int64) (*AIDDynamic, error) {
	if err := info.Validate(); err != nil {
		return nil, err
	}
	if m <= 0 {
		return nil, fmt.Errorf("core: minor chunk must be positive, got %d", m)
	}
	if M < m {
		return nil, fmt.Errorf("core: Major chunk %d must be >= minor chunk %d", M, m)
	}
	types := make([]int, info.NThreads)
	for tid := range types {
		types[tid] = info.TypeOf(tid)
	}
	return &AIDDynamic{
		info:  info,
		m:     m,
		M:     M,
		ws:    pool.NewWorkShare(info.NI),
		sc:    pool.NewSampleCounters(info.NumTypes, info.NThreads),
		th:    make([]aidDynThread, info.NThreads),
		types: types,
	}, nil
}

// Name implements Scheduler.
func (a *AIDDynamic) Name() string { return "aid-dynamic" }

// SetAblation disables individual design mechanisms so their contribution
// can be quantified (the root benchmark harness exercises both):
// disableTail removes the Fig. 5 end-of-loop switch to dynamic(m);
// disableSMClamp removes the per-phase bound on the smoothing factor.
// Must be called before the first Next invocation.
func (a *AIDDynamic) SetAblation(disableTail, disableSMClamp bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.noTailSwitch = disableTail
	a.noSMClamp = disableSMClamp
}

// Chunks returns the configured (m, M) pair.
func (a *AIDDynamic) Chunks() (m, M int64) { return a.m, a.M }

// R returns the current per-core-type progress ratios and ok=false before
// the initial sampling completes. Exposed for tests and ablations.
func (a *AIDDynamic) R() (r []float64, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.r == nil {
		return nil, false
	}
	return append([]float64(nil), a.r...), true
}

// InTail reports whether the end-of-loop dynamic(m) switch has engaged.
func (a *AIDDynamic) InTail() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tail
}

func (a *AIDDynamic) steal(st *aidDynThread, n int64, asg *Assign) (Assign, bool) {
	asg.PoolAccesses++
	lo, hi, ok := a.ws.TrySteal(n)
	if !ok {
		st.lastN = 0
		return *asg, false
	}
	st.delta += hi - lo
	st.lastN = hi - lo
	asg.Lo, asg.Hi = lo, hi
	return *asg, true
}

// clampR keeps the progress ratio inside a sane envelope; a wildly wrong
// sample (e.g. a descheduled thread) must not produce pathological chunks.
func clampR(r float64) float64 {
	const lo, hi = 0.25, 64
	if r < lo {
		return lo
	}
	if r > hi {
		return hi
	}
	return r
}

// computeInitialR derives R from the initial sampling counters exactly as
// AID-static derives SF (per-iteration-normalized times).
func (a *AIDDynamic) computeInitialR() []float64 {
	r := make([]float64, a.info.NumTypes)
	slowest := 0.0
	for t := 0; t < a.info.NumTypes; t++ {
		if avg, ok := a.sc.Avg(t); ok && avg > slowest {
			slowest = avg
		}
	}
	for t := 0; t < a.info.NumTypes; t++ {
		avg, ok := a.sc.Avg(t)
		if !ok || avg <= 0 || slowest <= 0 {
			r[t] = 1
			continue
		}
		r[t] = clampR(slowest / avg)
	}
	return r
}

// smoothR updates R per Fig. 5: R' = R·SM with SM the ratio of raw average
// phase completion times (slowest type over each type). Raw times are the
// correct signal here: if the previous allotment (R·M vs M) was balanced,
// all types finish simultaneously and SM = 1, leaving R unchanged. The
// per-phase correction is bounded to [2/3, 3/2] so one phase that happened
// to land on unusually heavy (or light) iterations cannot swing R wildly —
// without the bound, loops with coarse content-dependent cost variation
// oscillate, which is precisely what AID-dynamic's reduced chunk
// sensitivity (Fig. 8) is meant to avoid.
func (a *AIDDynamic) smoothR() {
	slowest := 0.0
	for t := 0; t < a.info.NumTypes; t++ {
		if avg, ok := a.sc.Avg(t); ok && avg > slowest {
			slowest = avg
		}
	}
	for t := 0; t < a.info.NumTypes; t++ {
		avg, ok := a.sc.Avg(t)
		if !ok || avg <= 0 || slowest <= 0 {
			continue
		}
		sm := slowest / avg
		if !a.noSMClamp {
			if sm < 2.0/3.0 {
				sm = 2.0 / 3.0
			} else if sm > 1.5 {
				sm = 1.5
			}
		}
		a.r[t] = clampR(a.r[t] * sm)
	}
}

// aidAssign hands thread tid its allotment for the current AID phase:
// R_j·M − δ iterations (M for the slowest type). It also performs the tail
// check: with M·NThreads or fewer iterations left, AID phases stop and the
// loop finishes under dynamic(m).
func (a *AIDDynamic) aidAssign(tid int, st *aidDynThread, asg *Assign, nowNs int64) (Assign, bool) {
	if !a.tail && !a.noTailSwitch && a.ws.Remaining() <= a.M*int64(a.info.NThreads) {
		a.tail = true
	}
	if a.tail {
		st.state = stDrain
		return a.steal(st, a.m, asg)
	}
	st.state = stAID
	st.epoch = a.epoch
	st.lastTS = nowNs
	nominal := int64(math.Round(a.r[a.types[tid]] * float64(a.M)))
	if nominal < a.m {
		nominal = a.m
	}
	st.nominalN = nominal
	want := nominal - st.delta
	if want < a.m {
		want = a.m
	}
	st.delta = 0
	got, ok := a.steal(st, want, asg)
	return got, ok
}

// Migrate implements Migratable (§4.3): thread tid now runs on newType.
// AID-dynamic adapts naturally — the thread's next AID-phase allotment uses
// the new type's R, and subsequent smoothing folds the thread's measured
// times into the new type's average. This is the property that makes
// AID-dynamic the paper's candidate for multi-application scenarios with
// OS-driven thread placement.
func (a *AIDDynamic) Migrate(tid, newType int, _ int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if newType >= 0 && newType < a.info.NumTypes {
		a.types[tid] = newType
	}
}

// Next implements Scheduler, realizing the Fig. 5 state machine.
func (a *AIDDynamic) Next(tid int, nowNs int64) (Assign, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := &a.th[tid]
	asg := &Assign{}
	switch st.state {
	case stNew:
		st.lastTS = nowNs
		asg.Timestamps++
		st.state = stSampling
		return a.steal(st, a.m, asg)

	case stSampling:
		asg.Timestamps++
		elapsed := nowNs - st.lastTS
		st.lastTS = nowNs
		last := false
		if st.lastN > 0 {
			perIter := elapsed * 1024 / st.lastN
			last = a.sc.Record(a.types[tid], perIter)
		}
		if last {
			a.r = a.computeInitialR()
			a.sc.Reset()
			a.epoch = 1
			return a.aidAssign(tid, st, asg, nowNs)
		}
		st.state = stSamplingWait
		return a.steal(st, a.m, asg)

	case stSamplingWait:
		if a.r != nil {
			return a.aidAssign(tid, st, asg, nowNs)
		}
		return a.steal(st, a.m, asg)

	case stAID:
		// The thread just completed its AID-phase allotment; the phase
		// completion time is the next sampling measurement (Fig. 5). The
		// elapsed time is rescaled from the actual to the nominal allotment
		// so that δ subtraction and pool clipping cannot distort SM.
		asg.Timestamps++
		elapsed := nowNs - st.lastTS
		st.lastTS = nowNs
		last := false
		if st.lastN > 0 {
			scaled := elapsed
			if st.nominalN > 0 && st.nominalN != st.lastN {
				scaled = elapsed * st.nominalN / st.lastN
			}
			last = a.sc.Record(a.types[tid], scaled)
		}
		if last {
			a.smoothR()
			a.sc.Reset()
			a.epoch++
			return a.aidAssign(tid, st, asg, nowNs)
		}
		st.state = stSamplingWait2
		return a.steal(st, a.m, asg)

	case stSamplingWait2:
		if st.epoch < a.epoch {
			return a.aidAssign(tid, st, asg, nowNs)
		}
		return a.steal(st, a.m, asg)

	case stDrain:
		return a.steal(st, a.m, asg)
	}
	panic(fmt.Sprintf("core: thread %d in invalid state %v", tid, st.state))
}
