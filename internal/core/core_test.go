package core

import (
	"sync"
	"testing"
	"testing/quick"
)

// twoTypeInfo builds a LoopInfo with nBig big threads (type 0) followed by
// nSmall small threads (type 1), matching the BS mapping convention.
func twoTypeInfo(ni int64, nBig, nSmall int) LoopInfo {
	return LoopInfo{
		NI:       ni,
		NThreads: nBig + nSmall,
		NumTypes: 2,
		TypeOf: func(tid int) int {
			if tid < nBig {
				return 0
			}
			return 1
		},
	}
}

// virtualExec drives a scheduler with a deterministic virtual-time executor:
// each thread has a clock; iterations cost perIterNs[coreType] each; the
// thread with the earliest clock acts next. It returns the per-thread
// iteration counts, a coverage bitmap, and the per-thread finish times.
func virtualExec(t *testing.T, s Scheduler, info LoopInfo, perIterNs []int64) (counts []int64, finish []int64) {
	t.Helper()
	counts = make([]int64, info.NThreads)
	finish = make([]int64, info.NThreads)
	clock := make([]int64, info.NThreads)
	active := make([]bool, info.NThreads)
	for i := range active {
		active[i] = true
	}
	covered := make([]int32, info.NI)
	for {
		// Pick the active thread with the smallest clock (ties: lowest tid).
		tid := -1
		for i := 0; i < info.NThreads; i++ {
			if active[i] && (tid == -1 || clock[i] < clock[tid]) {
				tid = i
			}
		}
		if tid == -1 {
			break
		}
		asg, ok := s.Next(tid, clock[tid])
		if !ok {
			active[tid] = false
			finish[tid] = clock[tid]
			continue
		}
		if asg.Lo < 0 || asg.Hi > info.NI || asg.Lo >= asg.Hi {
			t.Fatalf("scheduler %s returned bad range [%d,%d)", s.Name(), asg.Lo, asg.Hi)
		}
		for i := asg.Lo; i < asg.Hi; i++ {
			covered[i]++
		}
		counts[tid] += asg.N()
		clock[tid] += asg.N() * perIterNs[info.TypeOf(tid)]
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("scheduler %s: iteration %d covered %d times", s.Name(), i, c)
		}
	}
	return counts, finish
}

func TestLoopInfoValidate(t *testing.T) {
	good := twoTypeInfo(100, 2, 2)
	if err := good.Validate(); err != nil {
		t.Errorf("valid info rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*LoopInfo)
	}{
		{"negative-ni", func(li *LoopInfo) { li.NI = -1 }},
		{"zero-threads", func(li *LoopInfo) { li.NThreads = 0 }},
		{"zero-types", func(li *LoopInfo) { li.NumTypes = 0 }},
		{"nil-typeof", func(li *LoopInfo) { li.TypeOf = nil }},
		{"bad-type", func(li *LoopInfo) { li.TypeOf = func(int) int { return 7 } }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			li := twoTypeInfo(100, 2, 2)
			c.mut(&li)
			if err := li.Validate(); err == nil {
				t.Error("invalid info accepted")
			}
		})
	}
}

func TestStaticRanges(t *testing.T) {
	// libgomp distribution: NI=10, N=4 -> 3,3,2,2 contiguous.
	info := twoTypeInfo(10, 2, 2)
	s, err := NewStatic(info)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{0, 3}, {3, 6}, {6, 8}, {8, 10}}
	for tid, w := range want {
		lo, hi := s.Range(tid)
		if lo != w[0] || hi != w[1] {
			t.Errorf("Range(%d) = [%d,%d), want [%d,%d)", tid, lo, hi, w[0], w[1])
		}
	}
}

func TestStaticCoverageAndSingleCall(t *testing.T) {
	info := twoTypeInfo(1000, 2, 2)
	s, _ := NewStatic(info)
	counts, _ := virtualExec(t, s, info, []int64{100, 300})
	for tid, c := range counts {
		if c != 250 {
			t.Errorf("static gave thread %d %d iterations, want 250", tid, c)
		}
	}
	// Second call returns false (single assignment).
	if _, ok := s.Next(0, 0); ok {
		t.Error("static handed out a second assignment")
	}
}

func TestStaticZeroPoolAccesses(t *testing.T) {
	info := twoTypeInfo(100, 2, 2)
	s, _ := NewStatic(info)
	asg, ok := s.Next(0, 0)
	if !ok || asg.PoolAccesses != 0 {
		t.Errorf("static assignment: ok=%v accesses=%d, want true/0", ok, asg.PoolAccesses)
	}
}

func TestStaticEmptyLoop(t *testing.T) {
	info := twoTypeInfo(0, 2, 2)
	s, _ := NewStatic(info)
	if _, ok := s.Next(0, 0); ok {
		t.Error("static handed out work for an empty loop")
	}
}

func TestStaticFewerIterationsThanThreads(t *testing.T) {
	info := twoTypeInfo(3, 2, 2)
	s, _ := NewStatic(info)
	counts, _ := virtualExec(t, s, info, []int64{100, 300})
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Errorf("covered %d iterations, want 3", total)
	}
}

func TestStaticChunked(t *testing.T) {
	info := twoTypeInfo(20, 2, 2)
	s, err := NewStaticChunked(info, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Thread 0 gets [0,3), [12,15); thread 1 [3,6), [15,18); etc.
	asg, ok := s.Next(0, 0)
	if !ok || asg.Lo != 0 || asg.Hi != 3 {
		t.Errorf("first block for tid 0: [%d,%d) ok=%v", asg.Lo, asg.Hi, ok)
	}
	asg, ok = s.Next(0, 0)
	if !ok || asg.Lo != 12 || asg.Hi != 15 {
		t.Errorf("second block for tid 0: [%d,%d) ok=%v", asg.Lo, asg.Hi, ok)
	}
}

func TestStaticChunkedCoverage(t *testing.T) {
	info := twoTypeInfo(103, 2, 2) // not a multiple of chunk*threads
	s, _ := NewStaticChunked(info, 4)
	virtualExec(t, s, info, []int64{100, 300})
}

func TestDynamicChunks(t *testing.T) {
	info := twoTypeInfo(10, 1, 1)
	d, err := NewDynamic(info, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Chunk() != 3 {
		t.Errorf("Chunk() = %d", d.Chunk())
	}
	asg, ok := d.Next(0, 0)
	if !ok || asg.N() != 3 || asg.PoolAccesses != 1 {
		t.Errorf("dynamic steal: %+v ok=%v", asg, ok)
	}
}

func TestDynamicBigCoresTakeMore(t *testing.T) {
	// The essential property from §3/[13]: under dynamic, threads on big
	// cores complete chunks faster and therefore steal more of the pool.
	info := twoTypeInfo(9000, 2, 2)
	d, _ := NewDynamic(info, 1)
	counts, _ := virtualExec(t, d, info, []int64{100, 300}) // SF = 3
	bigAvg := float64(counts[0]+counts[1]) / 2
	smallAvg := float64(counts[2]+counts[3]) / 2
	ratio := bigAvg / smallAvg
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("big/small steal ratio = %v, want ~3 (counts %v)", ratio, counts)
	}
}

func TestGuidedDecreasingAndCoverage(t *testing.T) {
	info := twoTypeInfo(4000, 2, 2)
	g, err := NewGuided(info, 1)
	if err != nil {
		t.Fatal(err)
	}
	virtualExec(t, g, info, []int64{100, 300})
}

func TestGuidedFirstChunkSize(t *testing.T) {
	info := twoTypeInfo(1000, 2, 2)
	g, _ := NewGuided(info, 1)
	asg, ok := g.Next(0, 0)
	if !ok || asg.N() != 250 {
		t.Errorf("first guided chunk = %d, want 250", asg.N())
	}
}

func TestConstructorValidation(t *testing.T) {
	info := twoTypeInfo(100, 2, 2)
	bad := twoTypeInfo(-1, 2, 2)
	if _, err := NewStatic(bad); err == nil {
		t.Error("NewStatic accepted bad info")
	}
	if _, err := NewStaticChunked(info, 0); err == nil {
		t.Error("NewStaticChunked accepted chunk 0")
	}
	if _, err := NewDynamic(info, 0); err == nil {
		t.Error("NewDynamic accepted chunk 0")
	}
	if _, err := NewGuided(info, -1); err == nil {
		t.Error("NewGuided accepted negative min chunk")
	}
	if _, err := NewAIDStatic(info, 0); err == nil {
		t.Error("NewAIDStatic accepted chunk 0")
	}
	if _, err := NewAIDHybrid(info, 1, 0); err == nil {
		t.Error("NewAIDHybrid accepted pct 0")
	}
	if _, err := NewAIDHybrid(info, 1, 1.5); err == nil {
		t.Error("NewAIDHybrid accepted pct > 1")
	}
	if _, err := NewAIDDynamic(info, 0, 5); err == nil {
		t.Error("NewAIDDynamic accepted m=0")
	}
	if _, err := NewAIDDynamic(info, 5, 1); err == nil {
		t.Error("NewAIDDynamic accepted M < m")
	}
	if _, err := NewAIDStaticOffline(info, 1, []float64{3}); err == nil {
		t.Error("NewAIDStaticOffline accepted short SF table")
	}
	if _, err := NewAIDStaticOffline(info, 1, []float64{-3, 1}); err == nil {
		t.Error("NewAIDStaticOffline accepted negative SF")
	}
}

func TestSchedulerNames(t *testing.T) {
	info := twoTypeInfo(100, 2, 2)
	st, _ := NewStatic(info)
	sc, _ := NewStaticChunked(info, 2)
	dy, _ := NewDynamic(info, 1)
	gu, _ := NewGuided(info, 1)
	as, _ := NewAIDStatic(info, 1)
	ah, _ := NewAIDHybrid(info, 1, 0.8)
	ad, _ := NewAIDDynamic(info, 1, 5)
	ao, _ := NewAIDStaticOffline(info, 1, []float64{3, 1})
	for _, c := range []struct {
		s    Scheduler
		want string
	}{
		{st, "static"}, {sc, "static-chunked"}, {dy, "dynamic"}, {gu, "guided"},
		{as, "aid-static"}, {ah, "aid-hybrid"}, {ad, "aid-dynamic"}, {ao, "aid-static"},
	} {
		if c.s.Name() != c.want {
			t.Errorf("Name() = %q, want %q", c.s.Name(), c.want)
		}
	}
}

// --- AID-static ---

func TestAIDStaticSFEstimate(t *testing.T) {
	info := twoTypeInfo(10000, 2, 2)
	a, _ := NewAIDStatic(info, 1)
	virtualExec(t, a, info, []int64{100, 300}) // true SF = 3
	sf, ok := a.SFEstimate()
	if !ok {
		t.Fatal("SF never computed")
	}
	if sf[1] != 1 {
		t.Errorf("slowest-type SF = %v, want 1", sf[1])
	}
	if sf[0] < 2.7 || sf[0] > 3.3 {
		t.Errorf("estimated SF = %v, want ~3", sf[0])
	}
}

func TestAIDStaticProportionalDistribution(t *testing.T) {
	// With SF=3, NB=NS=2: k = NI/(2*3+2) = NI/8; big threads get ~3k each.
	info := twoTypeInfo(8000, 2, 2)
	a, _ := NewAIDStatic(info, 1)
	counts, finish := virtualExec(t, a, info, []int64{100, 300})
	for tid := 0; tid < 2; tid++ {
		if counts[tid] < 2700 || counts[tid] > 3300 {
			t.Errorf("big thread %d got %d iterations, want ~3000", tid, counts[tid])
		}
	}
	for tid := 2; tid < 4; tid++ {
		if counts[tid] < 700 || counts[tid] > 1300 {
			t.Errorf("small thread %d got %d iterations, want ~1000", tid, counts[tid])
		}
	}
	// The whole point: finish times should be nearly equal (balanced load).
	var minF, maxF int64 = finish[0], finish[0]
	for _, f := range finish[1:] {
		if f < minF {
			minF = f
		}
		if f > maxF {
			maxF = f
		}
	}
	if float64(maxF-minF) > 0.10*float64(maxF) {
		t.Errorf("AID-static imbalance too high: finish times %v", finish)
	}
}

func TestAIDStaticBeatsStaticOnAMP(t *testing.T) {
	// Completion time under AID-static must clearly beat plain static for a
	// uniform loop on an asymmetric machine (the Fig. 1 scenario).
	info := twoTypeInfo(8000, 2, 2)
	st, _ := NewStatic(info)
	_, finishStatic := virtualExec(t, st, info, []int64{100, 300})
	a, _ := NewAIDStatic(info, 1)
	_, finishAID := virtualExec(t, a, info, []int64{100, 300})
	var tStatic, tAID int64
	for i := range finishStatic {
		if finishStatic[i] > tStatic {
			tStatic = finishStatic[i]
		}
		if finishAID[i] > tAID {
			tAID = finishAID[i]
		}
	}
	// static is bounded by small cores: 2000 iter * 300ns = 600000.
	// Ideal AID: ~3000*100 = 300000. Require at least a 1.5x win.
	if float64(tStatic)/float64(tAID) < 1.5 {
		t.Errorf("AID-static %dns vs static %dns: expected >=1.5x win", tAID, tStatic)
	}
}

func TestAIDStaticSymmetricPlatformDegradesToEven(t *testing.T) {
	// On a symmetric machine (equal speeds) AID-static should converge to a
	// near-even distribution (SF ~ 1).
	info := twoTypeInfo(8000, 2, 2)
	a, _ := NewAIDStatic(info, 1)
	counts, _ := virtualExec(t, a, info, []int64{200, 200})
	for tid, c := range counts {
		if c < 1600 || c > 2400 {
			t.Errorf("thread %d got %d iterations, want ~2000 on symmetric platform", tid, c)
		}
	}
	sf, ok := a.SFEstimate()
	if !ok || sf[0] < 0.9 || sf[0] > 1.1 {
		t.Errorf("symmetric SF estimate = %v (ok=%v), want ~1", sf, ok)
	}
}

func TestAIDStaticSingleCoreType(t *testing.T) {
	// All threads on one core type (e.g. the 4S configuration of Fig. 1b).
	info := LoopInfo{NI: 4000, NThreads: 4, NumTypes: 2, TypeOf: func(int) int { return 1 }}
	a, _ := NewAIDStatic(info, 1)
	counts, _ := virtualExec(t, a, info, []int64{100, 300})
	for tid, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("thread %d got %d, want ~1000", tid, c)
		}
	}
}

func TestAIDStaticTinyLoop(t *testing.T) {
	// Fewer iterations than threads: must terminate and cover exactly.
	for _, ni := range []int64{0, 1, 2, 3, 5, 7} {
		info := twoTypeInfo(ni, 2, 2)
		a, _ := NewAIDStatic(info, 1)
		virtualExec(t, a, info, []int64{100, 300})
	}
}

func TestAIDStaticOfflineSkipsSampling(t *testing.T) {
	info := twoTypeInfo(8000, 2, 2)
	a, err := NewAIDStaticOffline(info, 1, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	// First call must already be the final AID assignment: ~3000 iterations.
	asg, ok := a.Next(0, 0)
	if !ok || asg.N() < 2900 || asg.N() > 3100 {
		t.Errorf("offline-SF first assignment = %d iterations, want ~3000", asg.N())
	}
	if sf, ok := a.SFEstimate(); !ok || sf[0] != 3 {
		t.Errorf("offline SFEstimate = %v, %v", sf, ok)
	}
}

func TestAIDStaticOfflineCoverage(t *testing.T) {
	info := twoTypeInfo(5000, 2, 2)
	a, _ := NewAIDStaticOffline(info, 1, []float64{3, 1})
	virtualExec(t, a, info, []int64{100, 300})
}

func TestAIDStaticOfflineMispredictionStillCompletes(t *testing.T) {
	// Feeding a wildly wrong offline SF must still complete the loop with
	// exact coverage (imbalance, not incorrectness — the Fig. 9 scenario).
	info := twoTypeInfo(5000, 2, 2)
	a, _ := NewAIDStaticOffline(info, 1, []float64{8, 1})
	counts, _ := virtualExec(t, a, info, []int64{100, 300})
	if counts[0] <= counts[2] {
		t.Errorf("big thread should still get more iterations: %v", counts)
	}
}

// --- AID-hybrid ---

func TestAIDHybridSplitsStaticAndDynamicParts(t *testing.T) {
	info := twoTypeInfo(10000, 2, 2)
	a, _ := NewAIDHybrid(info, 1, 0.8)
	if a.Pct() != 0.8 {
		t.Errorf("Pct() = %v", a.Pct())
	}
	counts, finish := virtualExec(t, a, info, []int64{100, 300})
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	if total != 10000 {
		t.Fatalf("covered %d, want 10000", total)
	}
	// Finish times balanced within a few percent (better than AID-static
	// could do if SF drifted — here it mainly checks the tail drain).
	var minF, maxF int64 = finish[0], finish[0]
	for _, f := range finish[1:] {
		if f < minF {
			minF = f
		}
		if f > maxF {
			maxF = f
		}
	}
	if float64(maxF-minF) > 0.05*float64(maxF) {
		t.Errorf("AID-hybrid tail imbalance too high: %v", finish)
	}
}

func TestAIDHybridBalancesDriftingCost(t *testing.T) {
	// Iteration cost drifts upward through the loop, so the sampled SF
	// under-weights late iterations. AID-hybrid's dynamic tail must absorb
	// the drift better than AID-static (the EP trace of Fig. 4).
	info := twoTypeInfo(8000, 2, 2)
	driftExec := func(s Scheduler) (maxFinish, minFinish int64) {
		clock := make([]int64, info.NThreads)
		active := make([]bool, info.NThreads)
		for i := range active {
			active[i] = true
		}
		perIter := []int64{100, 300}
		for {
			tid := -1
			for i := range clock {
				if active[i] && (tid == -1 || clock[i] < clock[tid]) {
					tid = i
				}
			}
			if tid == -1 {
				break
			}
			asg, ok := s.Next(tid, clock[tid])
			if !ok {
				active[tid] = false
				continue
			}
			for i := asg.Lo; i < asg.Hi; i++ {
				// cost grows 2x across the iteration space
				scale := 1.0 + float64(i)/float64(info.NI)
				clock[tid] += int64(float64(perIter[info.TypeOf(tid)]) * scale)
			}
		}
		minFinish, maxFinish = clock[0], clock[0]
		for _, c := range clock[1:] {
			if c < minFinish {
				minFinish = c
			}
			if c > maxFinish {
				maxFinish = c
			}
		}
		return maxFinish, minFinish
	}
	as, _ := NewAIDStatic(info, 1)
	ah, _ := NewAIDHybrid(info, 1, 0.8)
	maxS, minS := driftExec(as)
	maxH, minH := driftExec(ah)
	imbS := float64(maxS-minS) / float64(maxS)
	imbH := float64(maxH-minH) / float64(maxH)
	if imbH >= imbS {
		t.Errorf("hybrid imbalance %v should beat AID-static %v under drift", imbH, imbS)
	}
	if maxH >= maxS {
		t.Errorf("hybrid completion %d should beat AID-static %d under drift", maxH, maxS)
	}
}

func TestAIDHybridLowPct(t *testing.T) {
	info := twoTypeInfo(5000, 2, 2)
	a, _ := NewAIDHybrid(info, 1, 0.6)
	virtualExec(t, a, info, []int64{100, 300})
}

// --- AID-dynamic ---

func TestAIDDynamicCoverageAndR(t *testing.T) {
	info := twoTypeInfo(20000, 2, 2)
	a, _ := NewAIDDynamic(info, 1, 5)
	m, M := a.Chunks()
	if m != 1 || M != 5 {
		t.Errorf("Chunks() = %d,%d", m, M)
	}
	counts, _ := virtualExec(t, a, info, []int64{100, 300})
	r, ok := a.R()
	if !ok {
		t.Fatal("R never computed")
	}
	if r[0] < 2.0 || r[0] > 4.0 {
		t.Errorf("converged R = %v, want ~3", r[0])
	}
	bigShare := float64(counts[0]+counts[1]) / float64(info.NI)
	// With SF=3, big threads should take ~75% of the iterations.
	if bigShare < 0.65 || bigShare > 0.85 {
		t.Errorf("big-core share = %v, want ~0.75 (counts %v)", bigShare, counts)
	}
}

func TestAIDDynamicFewerPoolAccessesThanDynamic(t *testing.T) {
	// The design goal (§4.2): AID-dynamic reduces pool accesses relative to
	// dynamic with the same minor chunk.
	info := twoTypeInfo(20000, 2, 2)
	countAccesses := func(s Scheduler) int {
		clock := make([]int64, info.NThreads)
		active := make([]bool, info.NThreads)
		for i := range active {
			active[i] = true
		}
		perIter := []int64{100, 300}
		accesses := 0
		for {
			tid := -1
			for i := range clock {
				if active[i] && (tid == -1 || clock[i] < clock[tid]) {
					tid = i
				}
			}
			if tid == -1 {
				break
			}
			asg, ok := s.Next(tid, clock[tid])
			accesses += asg.PoolAccesses
			if !ok {
				active[tid] = false
				continue
			}
			clock[tid] += asg.N() * perIter[info.TypeOf(tid)]
		}
		return accesses
	}
	d, _ := NewDynamic(info, 1)
	ad, _ := NewAIDDynamic(info, 1, 5)
	dynAcc := countAccesses(d)
	aidAcc := countAccesses(ad)
	if aidAcc >= dynAcc/2 {
		t.Errorf("AID-dynamic pool accesses = %d, dynamic = %d; want < half", aidAcc, dynAcc)
	}
}

func TestAIDDynamicTailSwitch(t *testing.T) {
	info := twoTypeInfo(2000, 2, 2)
	a, _ := NewAIDDynamic(info, 1, 50)
	virtualExec(t, a, info, []int64{100, 300})
	if !a.InTail() {
		t.Error("tail switch never engaged")
	}
}

func TestAIDDynamicUnevenIterations(t *testing.T) {
	// Cost varies per iteration; AID-dynamic must still cover exactly and
	// keep threads balanced via R smoothing.
	info := twoTypeInfo(10000, 2, 2)
	a, _ := NewAIDDynamic(info, 1, 10)
	clock := make([]int64, info.NThreads)
	active := make([]bool, info.NThreads)
	for i := range active {
		active[i] = true
	}
	covered := make([]int32, info.NI)
	for {
		tid := -1
		for i := range clock {
			if active[i] && (tid == -1 || clock[i] < clock[tid]) {
				tid = i
			}
		}
		if tid == -1 {
			break
		}
		asg, ok := a.Next(tid, clock[tid])
		if !ok {
			active[tid] = false
			continue
		}
		base := int64(100)
		if info.TypeOf(tid) == 1 {
			base = 300
		}
		for i := asg.Lo; i < asg.Hi; i++ {
			covered[i]++
			cost := base
			if i%7 == 0 {
				cost *= 5 // heavy iterations sprinkled in
			}
			clock[tid] += cost
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("iteration %d covered %d times", i, c)
		}
	}
}

func TestAIDDynamicTinyLoops(t *testing.T) {
	for _, ni := range []int64{0, 1, 3, 7, 20} {
		info := twoTypeInfo(ni, 2, 2)
		a, _ := NewAIDDynamic(info, 1, 5)
		virtualExec(t, a, info, []int64{100, 300})
	}
}

func TestAIDDynamicSmoothingConverges(t *testing.T) {
	// Feed a loop whose true SF differs from the initial estimate the
	// sampling could see, and check R converges near the true ratio.
	info := twoTypeInfo(100000, 2, 2)
	a, _ := NewAIDDynamic(info, 1, 20)
	virtualExec(t, a, info, []int64{100, 450}) // SF = 4.5
	r, ok := a.R()
	if !ok {
		t.Fatal("no R")
	}
	if r[0] < 3.5 || r[0] > 5.5 {
		t.Errorf("R = %v, want ~4.5", r[0])
	}
}

// --- concurrency (real goroutines, exercised under -race) ---

func concurrentExec(t *testing.T, s Scheduler, info LoopInfo) {
	t.Helper()
	covered := make([]int32, info.NI)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for tid := 0; tid < info.NThreads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			now := int64(tid) // synthetic, strictly increasing per thread
			local := make([][2]int64, 0, 64)
			for {
				asg, ok := s.Next(tid, now)
				if !ok {
					break
				}
				now += asg.N() * 100
				local = append(local, [2]int64{asg.Lo, asg.Hi})
			}
			mu.Lock()
			for _, r := range local {
				for i := r[0]; i < r[1]; i++ {
					covered[i]++
				}
			}
			mu.Unlock()
		}(tid)
	}
	wg.Wait()
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("%s: iteration %d covered %d times under concurrency", s.Name(), i, c)
		}
	}
}

func TestConcurrentCoverageAllSchedulers(t *testing.T) {
	info := twoTypeInfo(30000, 2, 2)
	make := []func() Scheduler{
		func() Scheduler { s, _ := NewDynamic(info, 3); return s },
		func() Scheduler { s, _ := NewGuided(info, 1); return s },
		func() Scheduler { s, _ := NewAIDStatic(info, 1); return s },
		func() Scheduler { s, _ := NewAIDHybrid(info, 1, 0.8); return s },
		func() Scheduler { s, _ := NewAIDDynamic(info, 1, 5); return s },
		func() Scheduler { s, _ := NewAIDStaticOffline(info, 1, []float64{3, 1}); return s },
	}
	for _, mk := range make {
		s := mk()
		t.Run(s.Name(), func(t *testing.T) { concurrentExec(t, s, info) })
	}
}

// --- property tests ---

func TestPropertyExactCoverageAllSchedulers(t *testing.T) {
	f := func(niRaw uint16, nBigRaw, nSmallRaw, chunkRaw uint8, pick uint8) bool {
		ni := int64(niRaw % 4000)
		nBig := 1 + int(nBigRaw)%4
		nSmall := 1 + int(nSmallRaw)%4
		chunk := int64(chunkRaw%16) + 1
		info := twoTypeInfo(ni, nBig, nSmall)
		var s Scheduler
		switch pick % 7 {
		case 0:
			s, _ = NewStatic(info)
		case 1:
			s, _ = NewStaticChunked(info, chunk)
		case 2:
			s, _ = NewDynamic(info, chunk)
		case 3:
			s, _ = NewGuided(info, chunk)
		case 4:
			s, _ = NewAIDStatic(info, chunk)
		case 5:
			s, _ = NewAIDHybrid(info, chunk, 0.8)
		case 6:
			s, _ = NewAIDDynamic(info, chunk, chunk*5)
		}
		// Inline coverage check, mirroring virtualExec without *testing.T.
		counts := make([]int32, ni)
		clock := make([]int64, info.NThreads)
		active := make([]bool, info.NThreads)
		for i := range active {
			active[i] = true
		}
		perIter := []int64{100, 300}
		for {
			tid := -1
			for i := range clock {
				if active[i] && (tid == -1 || clock[i] < clock[tid]) {
					tid = i
				}
			}
			if tid == -1 {
				break
			}
			asg, ok := s.Next(tid, clock[tid])
			if !ok {
				active[tid] = false
				continue
			}
			if asg.Lo < 0 || asg.Hi > ni || asg.Lo >= asg.Hi {
				return false
			}
			for i := asg.Lo; i < asg.Hi; i++ {
				counts[i]++
			}
			clock[tid] += asg.N() * perIter[info.TypeOf(tid)]
		}
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestThreadStateString(t *testing.T) {
	for st, want := range map[threadState]string{
		stNew: "NEW", stSampling: "SAMPLING", stSamplingWait: "SAMPLING_WAIT",
		stAID: "AID", stSamplingWait2: "SAMPLING_WAIT2", stDrain: "DRAIN",
		threadState(99): "threadState(99)",
	} {
		if got := st.String(); got != want {
			t.Errorf("threadState(%d).String() = %q, want %q", int(st), got, want)
		}
	}
}

func TestMigrateChangesAllotments(t *testing.T) {
	// Direct Migratable coverage: demote thread 0 (big->small) before the
	// final AID-static allotment; its allotment shrinks to the small share.
	info := twoTypeInfo(8000, 2, 2)
	a, _ := NewAIDStatic(info, 1)
	var m Migratable = a
	m.Migrate(0, 1, 0)
	counts, _ := virtualExec(t, a, info, []int64{100, 300})
	if counts[0] >= counts[1] {
		t.Errorf("demoted thread got %d iterations, big thread got %d", counts[0], counts[1])
	}
	// Out-of-range migration must be ignored.
	m.Migrate(0, 99, 0)
	m.Migrate(0, -1, 0)
}

func TestMigrateAIDDynamicDirect(t *testing.T) {
	info := twoTypeInfo(20000, 2, 2)
	a, _ := NewAIDDynamic(info, 1, 10)
	var m Migratable = a
	m.Migrate(3, 0, 0) // promote a small thread before sampling
	m.Migrate(3, 99, 0)
	counts, _ := virtualExec(t, a, info, []int64{100, 300})
	// Thread 3 is treated as big: it should out-receive thread 2 (small).
	if counts[3] <= counts[2] {
		t.Errorf("promoted thread got %d iterations, small thread got %d", counts[3], counts[2])
	}
}

func TestSetAblationNoTailSwitch(t *testing.T) {
	info := twoTypeInfo(2000, 2, 2)
	a, _ := NewAIDDynamic(info, 1, 50)
	a.SetAblation(true, true)
	virtualExec(t, a, info, []int64{100, 300}) // still exact coverage
	if a.InTail() {
		t.Error("tail switch engaged despite ablation")
	}
}

func TestClampR(t *testing.T) {
	for _, c := range []struct{ in, want float64 }{
		{0.01, 0.25}, {0.25, 0.25}, {1, 1}, {64, 64}, {1000, 64},
	} {
		if got := clampR(c.in); got != c.want {
			t.Errorf("clampR(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
