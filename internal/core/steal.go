package core

import (
	"fmt"
	"sync"
)

// WorkSteal implements the work-stealing alternative the paper contrasts
// AID's work-sharing approach with (§4.3: "possibly by combining our
// work-sharing version of AID, with work-stealing techniques [4, 27]").
//
// Each thread owns a contiguous range of the iteration space, initially the
// same even split the static schedule would use. A thread consumes its own
// range from the front in `chunk`-sized bites; when its range runs dry it
// steals the back *half* of the most-loaded victim's range. On an AMP the
// big-core threads drain their ranges first and then relieve the small-core
// threads, so asymmetry is absorbed without any SF estimation — at the cost
// of steal operations and of the stolen ranges landing cold in the thief's
// cache.
//
// WorkSteal also implements Migratable: migrations need no action because
// stealing continuously rebalances; the method exists so the runtime can
// treat all adaptive schedulers uniformly.
type WorkSteal struct {
	info  LoopInfo
	chunk int64

	mu     sync.Mutex
	ranges []stealRange
	// steals counts successful steal operations (for tests/ablation).
	steals int
}

type stealRange struct {
	lo, hi int64
}

// NewWorkSteal returns a work-stealing scheduler with the given bite size.
func NewWorkSteal(info LoopInfo, chunk int64) (*WorkSteal, error) {
	if err := info.Validate(); err != nil {
		return nil, err
	}
	if chunk <= 0 {
		return nil, fmt.Errorf("core: work-steal chunk must be positive, got %d", chunk)
	}
	w := &WorkSteal{info: info, chunk: chunk, ranges: make([]stealRange, info.NThreads)}
	// Even contiguous split, exactly like Static.Range.
	n := int64(info.NThreads)
	q := info.NI / n
	r := info.NI % n
	cursor := int64(0)
	for tid := int64(0); tid < n; tid++ {
		size := q
		if tid < r {
			size++
		}
		w.ranges[tid] = stealRange{lo: cursor, hi: cursor + size}
		cursor += size
	}
	return w, nil
}

// Name implements Scheduler.
func (w *WorkSteal) Name() string { return "work-steal" }

// Steals returns the number of successful steals so far.
func (w *WorkSteal) Steals() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.steals
}

// Migrate implements Migratable; work stealing self-balances, so the
// notification needs no bookkeeping.
func (w *WorkSteal) Migrate(int, int, int64) {}

// Next implements Scheduler.
func (w *WorkSteal) Next(tid int, _ int64) (Assign, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	// All range bookkeeping sits behind one mutex — a single shared line in
	// the cost model, so contention is attributed globally.
	asg := Assign{Origin: OriginShared}
	r := &w.ranges[tid]
	if r.lo >= r.hi {
		// Local range dry: steal the back half of the most-loaded victim.
		victim := -1
		var best int64
		for v := range w.ranges {
			if v == tid {
				continue
			}
			if load := w.ranges[v].hi - w.ranges[v].lo; load > best {
				best = load
				victim = v
			}
		}
		// Not worth stealing less than a chunk; finish instead.
		if victim < 0 || best <= w.chunk {
			return asg, false
		}
		vr := &w.ranges[victim]
		mid := vr.lo + (vr.hi-vr.lo)/2
		r.lo, r.hi = mid, vr.hi
		vr.hi = mid
		w.steals++
		asg.PoolAccesses++ // the steal is a synchronized operation
	}
	hi := r.lo + w.chunk
	if hi > r.hi {
		hi = r.hi
	}
	asg.Lo, asg.Hi = r.lo, hi
	asg.PoolAccesses++ // local deque access (cheaper in reality; modeled flat)
	r.lo = hi
	return asg, true
}
