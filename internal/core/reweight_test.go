package core

import "testing"

// reweightInfo is a 2-big/2-small loop; perIterNs {100, 300} gives the big
// type a 3x speedup, well past the reweightDrift band.
func reweightInfo(ni int64) LoopInfo {
	return LoopInfo{
		NI:       ni,
		NThreads: 4,
		NumTypes: 2,
		TypeOf: func(tid int) int {
			if tid < 2 {
				return 0
			}
			return 1
		},
	}
}

// TestAIDDynamicReweightReducesForeignClaims pins the point of the
// re-partition path: with the thread-count-proportional cut, big-core
// threads under AID-dynamic exhaust their half of the pool early and serve
// the rest of their R·M allotments via foreign-shard handoffs; an
// R-proportional re-cut moves that work into their home shards up front.
func TestAIDDynamicReweightReducesForeignClaims(t *testing.T) {
	const ni = 30000
	run := func(rw bool) (*AIDDynamic, int64) {
		info := reweightInfo(ni)
		a, err := NewAIDDynamic(info, 1, 5)
		if err != nil {
			t.Fatal(err)
		}
		a.SetReweight(rw)
		virtualExec(t, a, info, []int64{100, 300})
		return a, a.ws.ForeignClaims()
	}
	a, with := run(true)
	if a.lastRW == nil {
		t.Fatal("reweight never fired despite a 3x SF spread")
	}
	_, without := run(false)
	if with >= without {
		t.Errorf("foreign claims with reweight = %d, without = %d; want a reduction", with, without)
	}
}

// TestAIDHybridReweightCoverageAndFiring checks the hybrid wiring: the
// re-cut happens in the sampling→AID window (pct < 1), coverage stays
// exact (virtualExec asserts it), and pure AID-static (pct = 1) never
// re-cuts — its final assignment empties the pool in the same window.
func TestAIDHybridReweightCoverageAndFiring(t *testing.T) {
	const ni = 30000
	info := reweightInfo(ni)
	h, err := NewAIDHybrid(info, 1, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	h.SetReweight(true)
	virtualExec(t, h, info, []int64{100, 300})
	if h.ws.NumShards() == info.NumTypes {
		// A 3x-skewed re-cut of fragmented leftovers yields more shards
		// than types; shard count unchanged means Reweight never ran.
		t.Error("hybrid reweight did not re-partition the pool")
	}

	st, err := NewAIDStatic(info, 1)
	if err != nil {
		t.Fatal(err)
	}
	st.SetReweight(true)
	virtualExec(t, st, info, []int64{100, 300})
	if st.ws.NumShards() != info.NumTypes {
		t.Error("pure AID-static must not re-partition (pct = 1)")
	}
}
