package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// stressExec drives a scheduler with real concurrent goroutines, one per
// thread, feeding Next a fabricated monotonic clock, and asserts the
// exactly-once coverage invariant. Unlike virtualExec there is no global
// serialization: every lock-free path — sharded chunk removal, batched
// handoff, packed-word phase transitions, migration notifications — runs
// genuinely in parallel, which is what `go test -race` needs to see.
func stressExec(t *testing.T, s Scheduler, info LoopInfo, migrate bool) {
	t.Helper()
	seen := make([]atomic.Int32, info.NI)
	var clock atomic.Int64
	var wg sync.WaitGroup
	for tid := 0; tid < info.NThreads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			m, _ := s.(Migratable)
			for n := 0; ; n++ {
				if migrate && m != nil && n%97 == 96 {
					// Hammer the migration path concurrently with scheduling.
					m.Migrate(tid, (tid+n)%info.NumTypes, clock.Load())
				}
				asg, ok := s.Next(tid, clock.Add(50))
				if !ok {
					return
				}
				if asg.Lo < 0 || asg.Hi > info.NI || asg.Lo >= asg.Hi {
					panic(fmt.Sprintf("%s: bad range [%d,%d)", s.Name(), asg.Lo, asg.Hi))
				}
				for i := asg.Lo; i < asg.Hi; i++ {
					seen[i].Add(1)
				}
			}
		}(tid)
	}
	wg.Wait()
	for i := range seen {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("%s: iteration %d covered %d times", s.Name(), i, c)
		}
	}
}

// TestLockFreeSchedulersStress exercises every pool-backed scheduler with
// real goroutine concurrency across a GOMAXPROCS sweep. The small Major
// chunk forces AID-dynamic through many phase transitions, stressing the
// packed CAS epoch word; the migrating variant additionally flips thread
// core types mid-loop.
func TestLockFreeSchedulersStress(t *testing.T) {
	ni := int64(120_000)
	if testing.Short() {
		ni = 20_000
	}
	info := conformanceInfo(ni, 2, 6)
	build := func(t *testing.T, name string) Scheduler {
		t.Helper()
		s, ok := conformanceSchedulers(t, info)[name]
		if !ok {
			t.Fatalf("unknown scheduler %s", name)
		}
		return s
	}
	names := []string{"dynamic", "guided", "aid-static", "aid-hybrid", "aid-dynamic", "aid-auto"}
	for _, procs := range []int{1, 2, 8} {
		for _, name := range names {
			for _, migrate := range []bool{false, true} {
				label := fmt.Sprintf("procs=%d/%s", procs, name)
				if migrate {
					label += "/migrate"
				}
				t.Run(label, func(t *testing.T) {
					prev := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(prev)
					stressExec(t, build(t, name), info, migrate)
				})
			}
		}
	}
}

// TestAIDDynamicManyPhases pins the phase machinery: with m=M=1 every
// allotment is tiny, maximizing epoch turnover and transition contention.
func TestAIDDynamicManyPhases(t *testing.T) {
	info := conformanceInfo(30_000, 4, 4)
	a, err := NewAIDDynamic(info, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	stressExec(t, a, info, false)
}
