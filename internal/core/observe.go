package core

// PhaseEvent describes one internal transition of an AID scheduler's state
// machine — the decisions the record & replay subsystem captures so a
// recorded run can be inspected and diffed (e.g. "when did sampling finish,
// and what SF did it publish?"). The zero value is meaningless; events are
// only produced through a PhaseObservable hook.
type PhaseEvent struct {
	// TimeNs is the engine timestamp passed to the Next call that performed
	// the transition (virtual ns under the simulator, monotonic ns under
	// the real-goroutine runtime).
	TimeNs int64
	// Tid is the worker thread that owned the transition window.
	Tid int
	// Epoch is the phase number published by the transition: 1 when the
	// initial sampling phase closes, n+1 for AID-dynamic's nth re-estimation.
	// Tail switches keep the epoch they interrupted.
	Epoch int
	// Kind classifies the transition:
	//
	//	"sf-published"  AID-static/hybrid finished sampling and fixed SF/k
	//	"r-initial"     AID-dynamic derived its first R from sampling
	//	"r-smoothed"    AID-dynamic re-estimated R after an AID phase
	//	"tail-switch"   AID-dynamic engaged the end-of-loop dynamic(m) mode
	//	"auto-uniform"  AID-auto classified the loop as uniform (hybrid path)
	//	"auto-irregular" AID-auto classified the loop as irregular (dynamic path)
	Kind string
	// SF is the per-core-type estimate published with the transition (a
	// copy; nil for transitions that publish none, e.g. the tail switch).
	SF []float64
}

// PhaseEvent kind values (see PhaseEvent.Kind).
const (
	PhaseSFPublished   = "sf-published"
	PhaseRInitial      = "r-initial"
	PhaseRSmoothed     = "r-smoothed"
	PhaseTailSwitch    = "tail-switch"
	PhaseAutoUniform   = "auto-uniform"
	PhaseAutoIrregular = "auto-irregular"
)

// ReweightCounter is implemented by schedulers whose iteration pool can be
// re-cut mid-loop (the SF-driven Reweight path): PoolReweights returns how
// many re-partitions the loop's pool has published so far. The engines
// read it once, at barrier release, and fold it into the loop's metrics
// snapshot (internal/obs) — it is an observability accessor, not part of
// the scheduling contract.
type ReweightCounter interface {
	PoolReweights() int64
}

// PhaseObservable is implemented by schedulers that can report their phase
// transitions to an observer — the decision-capture hook of the record &
// replay subsystem. SetPhaseObserver must be called before the first Next
// invocation (both engines install observers at loop admission).
//
// The callback runs on the worker thread that owns the transition; it must
// be cheap and must not call back into the scheduler. Epoch transitions are
// totally ordered (the packed CAS epoch word serializes their windows), but
// AID-dynamic's tail switch rides a separate flag and may fire from another
// thread concurrently with a transition window — concurrent engines must
// therefore route events by Tid into per-worker buffers (as internal/rt
// does) or otherwise tolerate concurrent invocation; the single-goroutine
// simulator needs no such care.
type PhaseObservable interface {
	SetPhaseObserver(fn func(PhaseEvent))
}
