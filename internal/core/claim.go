package core

import (
	"math"

	"repro/internal/pool"
)

// claimState is the per-thread claim bookkeeping shared by every AID
// scheduler: the δ counter, the size of the last served chunk, and the
// thread-local stash of claimed-but-unserved ranges (batched foreign-shard
// handoffs, the tail pieces of a multi-shard span). It is only ever
// touched by its owning thread.
type claimState struct {
	// delta counts the iterations the thread has claimed for itself (the
	// δ_i of §4.2, including any not-yet-served stash), which is
	// subtracted from its next asymmetric allotment.
	delta int64
	// lastN is the size of the chunk served by the most recent call.
	lastN int64
	// pending is the stash: ranges already claimed from the pool and
	// awaiting execution by this thread.
	pending []pool.Range
	// credit is the thread-local claim balance of the batched credit path
	// (takeCredit): iterations removed from the pool in one RMW and drawn
	// down locally. Like pending, it counts in delta at claim time.
	credit pool.Credit
}

// pop takes the next stashed range, if any.
func (cs *claimState) pop() (pool.Range, bool) {
	if len(cs.pending) == 0 {
		return pool.Range{}, false
	}
	r := cs.pending[0]
	cs.pending = cs.pending[1:]
	return r, true
}

// originOf resolves a pool-reported provenance into Assign.Origin space: a
// pool with a single shard is a type-shared line (AID-auto's deliberate
// global window), whose owner tag means nothing in core-type space, so its
// claims are marked OriginShared and charged globally.
func originOf(ws *pool.ShardedWorkShare, from int) int {
	if ws.NumTypes() == 1 {
		return OriginShared
	}
	return from
}

// take serves up to n iterations: first from the stash, then from the pool
// with batched foreign-shard handoff. Everything claimed (served or
// stashed) is added to δ at claim time, so a thread can never exit with
// stashed work and δ never under-counts what the thread owns. Served
// ranges carry their provenance (Assign.Origin); stashed surplus keeps it
// in Range.From.
func (cs *claimState) take(ws *pool.ShardedWorkShare, home int, n int64, asg *Assign) (Assign, bool) {
	if r, ok := cs.pop(); ok {
		cs.lastN = r.N()
		asg.Lo, asg.Hi, asg.Origin = r.Lo, r.Hi, int(r.From)
		return *asg, true
	}
	lo, hi, from, acc, ok := ws.TryStealBatchFrom(home, n, n*pool.HandoffBatch)
	asg.PoolAccesses += acc
	asg.Origin = originOf(ws, from)
	if !ok {
		cs.lastN = 0
		return *asg, false
	}
	cs.delta += hi - lo
	if hi-lo > n {
		cs.pending = append(cs.pending, pool.Range{Lo: lo + n, Hi: hi, From: int32(asg.Origin)})
		hi = lo + n
	}
	cs.lastN = hi - lo
	asg.Lo, asg.Hi = lo, hi
	return *asg, true
}

// takeCredit is take on the batched credit path: stash first, then the
// thread's credit (a thread-local draw, no shared RMW), then the pool —
// where one fetch-and-add claims pool.CreditBatch chunks and banks the
// surplus as new credit. δ accounting mirrors take: everything claimed is
// added at claim time and anything successfully returned to the pool (a
// credit handed back across a re-partition) is subtracted, so δ always
// equals the iterations this thread owns. ok=false only when the pool,
// stash and credit are all empty.
func (cs *claimState) takeCredit(ws *pool.ShardedWorkShare, home int, n int64, asg *Assign) (Assign, bool) {
	if r, ok := cs.pop(); ok {
		cs.lastN = r.N()
		asg.Lo, asg.Hi, asg.Origin = r.Lo, r.Hi, int(r.From)
		return *asg, true
	}
	lo, hi, st, ok := ws.TryStealCredit(home, n, &cs.credit)
	asg.PoolAccesses += st.Accesses
	asg.Origin = originOf(ws, st.From)
	asg.CreditClaimed += st.Claimed
	asg.CreditReturned += st.Returned
	cs.delta += st.Claimed - st.Returned
	if !ok {
		cs.lastN = 0
		return *asg, false
	}
	cs.lastN = hi - lo
	asg.Lo, asg.Hi = lo, hi
	return *asg, true
}

// normalizeOrigin rewrites the provenance tags of ranges claimed from a
// type-shared (single-shard) pool to OriginShared — see originOf. A no-op
// for per-type sharded pools, whose owner tags are already in core-type
// space.
func normalizeOrigin(ws *pool.ShardedWorkShare, rs []pool.Range) {
	if ws.NumTypes() > 1 {
		return
	}
	for i := range rs {
		rs[i].From = OriginShared
	}
}

// serve hands the first of the given claimed ranges to the thread and
// stashes the rest, falling back to the stash; ok=false means the thread
// has nothing left at all. The caller accounts δ for the span itself.
func (cs *claimState) serve(rs []pool.Range, asg *Assign) (Assign, bool) {
	cs.pending = append(cs.pending, rs...)
	if r, ok := cs.pop(); ok {
		cs.lastN = r.N()
		asg.Lo, asg.Hi, asg.Origin = r.Lo, r.Hi, int(r.From)
		return *asg, true
	}
	cs.lastN = 0
	return *asg, false
}

// spanN sums the iterations of a claimed span.
func spanN(rs []pool.Range) int64 {
	var n int64
	for _, r := range rs {
		n += r.N()
	}
	return n
}

// sfWeights converts per-type thread counts and a speedup-factor table to
// pool partition weights proportional to each type's consumption rate
// N_t·SF_t, scaled x16 so fractional SFs survive integer rounding. nil
// means the table yields no usable partition (all shares rounded to zero);
// the caller keeps the existing one.
func sfWeights(counts []int, sf []float64) []int {
	w := make([]int, len(counts))
	any := false
	for t, n := range counts {
		f := 1.0
		if t < len(sf) && sf[t] > 0 {
			f = sf[t]
		}
		w[t] = int(math.Round(float64(n) * f * 16))
		if w[t] > 0 {
			any = true
		}
	}
	if !any {
		return nil
	}
	return w
}
