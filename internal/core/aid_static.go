package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/pool"
)

// threadState enumerates the per-thread states of the AID state machines
// (Figs. 3 and 5 of the paper).
type threadState int

const (
	stNew threadState = iota
	stSampling
	stSamplingWait
	stAID
	stSamplingWait2 // AID-dynamic: waiting for the next AID phase to open
	stDrain         // past the final AID assignment; mop up leftovers dynamically
)

// String implements fmt.Stringer for test diagnostics.
func (s threadState) String() string {
	switch s {
	case stNew:
		return "NEW"
	case stSampling:
		return "SAMPLING"
	case stSamplingWait:
		return "SAMPLING_WAIT"
	case stAID:
		return "AID"
	case stSamplingWait2:
		return "SAMPLING_WAIT2"
	case stDrain:
		return "DRAIN"
	}
	return fmt.Sprintf("threadState(%d)", int(s))
}

// perThread is the bookkeeping each AID scheduler keeps per worker.
type perThread struct {
	state  threadState
	lastTS int64
	// delta counts the iterations the thread executed before entering the
	// AID state (the δ_i of §4.2), which is subtracted from its final
	// assignment.
	delta int64
	// lastN is the size of the chunk whose execution time the next Next
	// call will measure.
	lastN int64
}

// AIDHybrid implements both AID-static and AID-hybrid (§4.2): AID-static is
// the pct=1.0 special case. The state machine follows Fig. 3:
//
//	SAMPLING --(not last)--> SAMPLING_WAIT --(all sampled)--> AID
//	SAMPLING --(last: compute SF, k)-----------------------> AID
//
// During SAMPLING and SAMPLING_WAIT every thread steals `chunk` iterations
// per call, so no thread idles while the SF estimate converges. In the AID
// state each thread receives one final assignment: SF_j·k−δ_i iterations for
// a thread on core type j (k for the slowest type), where
// k = pct·NI / Σ_t N_t·SF_t. With pct < 1, the remaining iterations stay in
// the pool and are drained dynamically with chunk-size steals, balancing the
// loop tail at the price of extra pool accesses (Fig. 4b).
//
// If the supplied offline SF table is non-nil, the sampling phase is skipped
// entirely and the distribution uses the given per-type SF values — the
// AID-static(offline-SF) variant of §5C.
type AIDHybrid struct {
	info   LoopInfo
	chunk  int64 // sampling and drain chunk (paper default: 1)
	pct    float64
	static bool // report as AID-static

	ws *pool.WorkShare
	sc *pool.SampleCounters

	mu       sync.Mutex
	th       []perThread
	types    []int // per-thread core type; mutable via Migrate (§4.3)
	sfReady  bool
	sf       []float64 // per core type, relative to the slowest sampled type
	k        float64
	assigned int
}

// NewAIDStatic returns an AID-static scheduler with the given sampling
// chunk. The paper uses chunk 1 in all experiments (§5A).
func NewAIDStatic(info LoopInfo, chunk int64) (*AIDHybrid, error) {
	s, err := NewAIDHybrid(info, chunk, 1.0)
	if err != nil {
		return nil, err
	}
	s.static = true
	return s, nil
}

// NewAIDStaticOffline returns the AID-static(offline-SF) variant: sampling
// is skipped and the per-core-type speedup factors sf (indexed by core type,
// relative to the slowest type, so sf[NumTypes-1] should be 1) are used
// directly. The paper uses this variant to quantify the impact of online SF
// estimation errors (§5C, Fig. 9).
func NewAIDStaticOffline(info LoopInfo, chunk int64, sf []float64) (*AIDHybrid, error) {
	s, err := NewAIDHybrid(info, chunk, 1.0)
	if err != nil {
		return nil, err
	}
	if len(sf) != info.NumTypes {
		return nil, fmt.Errorf("core: offline SF table has %d entries, platform has %d core types", len(sf), info.NumTypes)
	}
	for i, v := range sf {
		if v <= 0 {
			return nil, fmt.Errorf("core: offline SF[%d] = %v must be positive", i, v)
		}
	}
	s.static = true
	s.sf = append([]float64(nil), sf...)
	s.k = s.computeK(s.sf, s.pct)
	s.sfReady = true
	return s, nil
}

// NewAIDHybrid returns an AID-hybrid scheduler distributing pct (in (0,1])
// of the iterations via asymmetric distribution and the rest dynamically.
// The paper's sensitivity study selects pct=0.80 as the safe default (§5B).
func NewAIDHybrid(info LoopInfo, chunk int64, pct float64) (*AIDHybrid, error) {
	if err := info.Validate(); err != nil {
		return nil, err
	}
	if chunk <= 0 {
		return nil, fmt.Errorf("core: AID sampling chunk must be positive, got %d", chunk)
	}
	if pct <= 0 || pct > 1 {
		return nil, fmt.Errorf("core: AID-hybrid percentage %v out of (0,1]", pct)
	}
	types := make([]int, info.NThreads)
	for tid := range types {
		types[tid] = info.TypeOf(tid)
	}
	return &AIDHybrid{
		info:  info,
		chunk: chunk,
		pct:   pct,
		ws:    pool.NewWorkShare(info.NI),
		sc:    pool.NewSampleCounters(info.NumTypes, info.NThreads),
		th:    make([]perThread, info.NThreads),
		types: types,
	}, nil
}

// Name implements Scheduler.
func (a *AIDHybrid) Name() string {
	if a.static {
		return "aid-static"
	}
	return "aid-hybrid"
}

// Pct returns the fraction distributed asymmetrically.
func (a *AIDHybrid) Pct() float64 { return a.pct }

// SFEstimate returns the speedup factors the scheduler derived (or was
// given), indexed by core type, and ok=false when sampling has not finished
// yet. Exposed for the Fig. 9c experiment and for tests.
func (a *AIDHybrid) SFEstimate() (sf []float64, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.sfReady {
		return nil, false
	}
	return append([]float64(nil), a.sf...), true
}

// steal removes up to n iterations from the pool for thread st, updating its
// δ counter, and fills asg. Returns ok=false when the pool is drained.
func (a *AIDHybrid) steal(st *perThread, n int64, asg *Assign) (Assign, bool) {
	asg.PoolAccesses++
	lo, hi, ok := a.ws.TrySteal(n)
	if !ok {
		st.lastN = 0
		return *asg, false
	}
	st.delta += hi - lo
	st.lastN = hi - lo
	asg.Lo, asg.Hi = lo, hi
	return *asg, true
}

// computeSF derives per-type SF values from the sampling counters: the
// slowest core type (largest average per-iteration time) is the reference
// with SF=1; every other type's SF is slowestAvg/typeAvg. Types with no
// running threads keep SF=1; they receive no iterations anyway (N_t = 0).
func (a *AIDHybrid) computeSF() []float64 {
	sf := make([]float64, a.info.NumTypes)
	slowest := 0.0
	for t := 0; t < a.info.NumTypes; t++ {
		if avg, ok := a.sc.Avg(t); ok && avg > slowest {
			slowest = avg
		}
	}
	for t := 0; t < a.info.NumTypes; t++ {
		avg, ok := a.sc.Avg(t)
		if !ok || avg <= 0 || slowest <= 0 {
			sf[t] = 1
			continue
		}
		sf[t] = slowest / avg
	}
	return sf
}

// computeK evaluates k = pct·NI / Σ_t N_t·SF_t (§4.2, generalized to NC
// core types).
func (a *AIDHybrid) computeK(sf []float64, pct float64) float64 {
	denom := 0.0
	for t, n := range a.info.typeCounts() {
		denom += float64(n) * sf[t]
	}
	if denom <= 0 {
		return 0
	}
	return pct * float64(a.info.NI) / denom
}

// finalAssign hands thread tid its single AID allotment: SF_j·k − δ_i
// iterations. Under pure AID-static the last thread to be assigned takes
// whatever remains instead, so SF rounding never orphans iterations.
func (a *AIDHybrid) finalAssign(tid int, st *perThread, asg *Assign) (Assign, bool) {
	a.assigned++
	st.state = stDrain
	if a.static && a.assigned == a.info.NThreads {
		asg.PoolAccesses++
		lo, hi, ok := a.ws.TryStealRest()
		if !ok {
			return *asg, false
		}
		st.lastN = hi - lo
		asg.Lo, asg.Hi = lo, hi
		return *asg, true
	}
	want := int64(math.Round(a.sf[a.types[tid]]*a.k)) - st.delta
	if want <= 0 {
		// The thread already covered its share during sampling; send it
		// straight to the drain state (it will mop up leftovers, if any).
		return a.steal(st, a.chunk, asg)
	}
	return a.steal(st, want, asg)
}

// Migrate implements Migratable (§4.3): the runtime is told that thread tid
// now runs on a core of newType. If the thread has not received its final
// AID allotment yet, the new type is used for it; after the final allotment,
// AID-static has no rebalancing mechanism (the paper suggests combining it
// with work stealing for that case) — the drain state's dynamic fallback is
// the only relief.
func (a *AIDHybrid) Migrate(tid, newType int, _ int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if newType >= 0 && newType < a.info.NumTypes {
		a.types[tid] = newType
	}
}

// Next implements Scheduler, realizing the Fig. 3 state machine.
func (a *AIDHybrid) Next(tid int, nowNs int64) (Assign, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := &a.th[tid]
	asg := &Assign{}
	switch st.state {
	case stNew:
		st.lastTS = nowNs
		asg.Timestamps++
		if a.sfReady {
			// Offline-SF variant: no sampling phase at all (§5C).
			return a.finalAssign(tid, st, asg)
		}
		st.state = stSampling
		return a.steal(st, a.chunk, asg)

	case stSampling:
		// The chunk just finished is this thread's sampling phase.
		asg.Timestamps++
		elapsed := nowNs - st.lastTS
		st.lastTS = nowNs
		last := false
		if st.lastN > 0 {
			// Record per-iteration time (scaled for integer precision) so
			// end-of-loop clipping cannot bias the estimate.
			perIter := elapsed * 1024 / st.lastN
			last = a.sc.Record(a.types[tid], perIter)
		}
		if last {
			a.sf = a.computeSF()
			a.k = a.computeK(a.sf, a.pct)
			a.sfReady = true
			return a.finalAssign(tid, st, asg)
		}
		st.state = stSamplingWait
		return a.steal(st, a.chunk, asg)

	case stSamplingWait:
		if a.sfReady {
			return a.finalAssign(tid, st, asg)
		}
		return a.steal(st, a.chunk, asg)

	case stDrain:
		// Past the final assignment: under AID-hybrid this schedules the
		// remaining (1-pct)·NI iterations dynamically; under AID-static it
		// only fires if SF rounding left a residue.
		return a.steal(st, a.chunk, asg)
	}
	panic(fmt.Sprintf("core: thread %d in invalid state %v", tid, st.state))
}
