package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/pool"
)

// threadState enumerates the per-thread states of the AID state machines
// (Figs. 3 and 5 of the paper).
type threadState int

const (
	stNew threadState = iota
	stSampling
	stSamplingWait
	stAID
	stSamplingWait2 // AID-dynamic: waiting for the next AID phase to open
	stDrain         // past the final AID assignment; mop up leftovers dynamically
)

// String implements fmt.Stringer for test diagnostics.
func (s threadState) String() string {
	switch s {
	case stNew:
		return "NEW"
	case stSampling:
		return "SAMPLING"
	case stSamplingWait:
		return "SAMPLING_WAIT"
	case stAID:
		return "AID"
	case stSamplingWait2:
		return "SAMPLING_WAIT2"
	case stDrain:
		return "DRAIN"
	}
	return fmt.Sprintf("threadState(%d)", int(s))
}

// perThread is the bookkeeping each AID scheduler keeps per worker. Entries
// are only ever touched by their owning thread, so no synchronization is
// needed; the trailing pad keeps neighbouring entries off each other's
// cache lines.
type perThread struct {
	state  threadState
	lastTS int64
	claimState
	_ [64]byte
}

// AIDHybrid implements both AID-static and AID-hybrid (§4.2): AID-static is
// the pct=1.0 special case. The state machine follows Fig. 3:
//
//	SAMPLING --(not last)--> SAMPLING_WAIT --(all sampled)--> AID
//	SAMPLING --(last: compute SF, k)-----------------------> AID
//
// During SAMPLING and SAMPLING_WAIT every thread steals `chunk` iterations
// per call, so no thread idles while the SF estimate converges. In the AID
// state each thread receives one final assignment: SF_j·k−δ_i iterations for
// a thread on core type j (k for the slowest type), where
// k = pct·NI / Σ_t N_t·SF_t. With pct < 1, the remaining iterations stay in
// the pool and are drained dynamically with chunk-size steals, balancing the
// loop tail at the price of extra pool accesses (Fig. 4b).
//
// The scheduler is fully lock free: chunk removal is a fetch-and-add on the
// caller's per-core-type shard (internal/pool.ShardedWorkShare), and the
// sampling→AID transition is serialized by a packed CAS epoch word — the
// last thread to report a sample owns the transition window and publishes
// SF and k by advancing the epoch.
//
// If the supplied offline SF table is non-nil, the sampling phase is skipped
// entirely and the distribution uses the given per-type SF values — the
// AID-static(offline-SF) variant of §5C.
type AIDHybrid struct {
	info   LoopInfo
	chunk  int64 // sampling and drain chunk (paper default: 1)
	pct    float64
	static bool // report as AID-static

	ws *pool.ShardedWorkShare
	sc *pool.SampleCounters

	th    []perThread
	types []atomic.Int32 // per-thread core type; mutable via Migrate (§4.3)

	// phase epoch 0 is the sampling phase; epoch 1 means SF and k are
	// published. sf and k are written only inside the transition window
	// (or by the constructor for the offline variant).
	phase    phaseWord
	sf       []float64 // per core type, relative to the slowest sampled type
	k        float64
	assigned atomic.Int32

	// reweight re-partitions the pool under SF-proportional per-type
	// weights inside the sampling→AID transition window (see SetReweight).
	reweight bool

	// observe, when non-nil, receives the sampling→AID transition (the
	// decision-capture hook of the record & replay subsystem). Set before
	// the first Next call; invoked inside the transition window.
	observe func(PhaseEvent)
}

// SetReweight enables SF-aware pool re-partitioning: once the sampling
// phase publishes the SF estimate, the pool's unclaimed iterations are
// re-cut so each core type's home shards hold a share proportional to its
// consumption rate N_t·SF_t — big-core threads then serve their larger
// allotments and the (1−pct) dynamic tail from home shards instead of
// paying foreign-shard handoff traffic. Off by default (the paper's
// partition is per-type thread counts); meaningful for pct < 1, where the
// tail is drained chunk-wise. Must be called before the first Next.
func (a *AIDHybrid) SetReweight(on bool) { a.reweight = on }

// SetPhaseObserver implements PhaseObservable.
func (a *AIDHybrid) SetPhaseObserver(fn func(PhaseEvent)) { a.observe = fn }

// NewAIDStatic returns an AID-static scheduler with the given sampling
// chunk. The paper uses chunk 1 in all experiments (§5A).
func NewAIDStatic(info LoopInfo, chunk int64) (*AIDHybrid, error) {
	s, err := NewAIDHybrid(info, chunk, 1.0)
	if err != nil {
		return nil, err
	}
	s.static = true
	return s, nil
}

// NewAIDStaticOffline returns the AID-static(offline-SF) variant: sampling
// is skipped and the per-core-type speedup factors sf (indexed by core type,
// relative to the slowest type, so sf[NumTypes-1] should be 1) are used
// directly. The paper uses this variant to quantify the impact of online SF
// estimation errors (§5C, Fig. 9).
func NewAIDStaticOffline(info LoopInfo, chunk int64, sf []float64) (*AIDHybrid, error) {
	s, err := NewAIDHybrid(info, chunk, 1.0)
	if err != nil {
		return nil, err
	}
	if len(sf) != info.NumTypes {
		return nil, fmt.Errorf("core: offline SF table has %d entries, platform has %d core types", len(sf), info.NumTypes)
	}
	for i, v := range sf {
		if v <= 0 {
			return nil, fmt.Errorf("core: offline SF[%d] = %v must be positive", i, v)
		}
	}
	s.static = true
	s.sf = append([]float64(nil), sf...)
	s.k = s.computeK(s.sf, s.pct)
	s.phase.init(1, info.NThreads) // SF published; no sampling phase
	return s, nil
}

// NewAIDHybrid returns an AID-hybrid scheduler distributing pct (in (0,1])
// of the iterations via asymmetric distribution and the rest dynamically.
// The paper's sensitivity study selects pct=0.80 as the safe default (§5B).
func NewAIDHybrid(info LoopInfo, chunk int64, pct float64) (*AIDHybrid, error) {
	if err := info.Validate(); err != nil {
		return nil, err
	}
	if chunk <= 0 {
		return nil, fmt.Errorf("core: AID sampling chunk must be positive, got %d", chunk)
	}
	if pct <= 0 || pct > 1 {
		return nil, fmt.Errorf("core: AID-hybrid percentage %v out of (0,1]", pct)
	}
	a := &AIDHybrid{
		info:  info,
		chunk: chunk,
		pct:   pct,
		ws:    info.newSharded(),
		sc:    pool.NewSampleCounters(info.NumTypes, info.NThreads),
		th:    make([]perThread, info.NThreads),
		types: info.atomicTypes(),
	}
	a.phase.init(0, info.NThreads)
	return a, nil
}

// Name implements Scheduler.
func (a *AIDHybrid) Name() string {
	if a.static {
		return "aid-static"
	}
	return "aid-hybrid"
}

// Pct returns the fraction distributed asymmetrically.
func (a *AIDHybrid) Pct() float64 { return a.pct }

// PoolReweights implements ReweightCounter.
func (a *AIDHybrid) PoolReweights() int64 { return a.ws.Reweights() }

// SFEstimate returns the speedup factors the scheduler derived (or was
// given), indexed by core type, and ok=false when sampling has not finished
// yet. Implements SFEstimator; exposed for the Fig. 9c experiment, the
// cross-engine conformance harness and tests.
func (a *AIDHybrid) SFEstimate() (sf []float64, ok bool) {
	if a.phase.epoch() == 0 {
		return nil, false
	}
	return append([]float64(nil), a.sf...), true
}

// SFLiveView implements SFLiveViewer: the published table is only ever
// replaced wholesale inside the single-threaded transition window (or set
// once by the offline constructor) before the epoch advances, so returning
// it without a copy is safe for concurrent readers.
func (a *AIDHybrid) SFLiveView() []float64 {
	if a.phase.epoch() == 0 {
		return nil
	}
	return a.sf
}

// take serves thread tid up to n iterations via its claimState, on the
// batched credit path from the thread's current home shard: the sampling
// and drain states draw most chunks from a thread-local credit instead of
// paying one pool RMW per chunk.
func (a *AIDHybrid) take(tid int, st *perThread, n int64, asg *Assign) (Assign, bool) {
	return st.takeCredit(a.ws, int(a.types[tid].Load()), n, asg)
}

// computeSF derives per-type SF values from the sampling counters: the
// slowest core type (largest average per-iteration time) is the reference
// with SF=1; every other type's SF is slowestAvg/typeAvg. Types with no
// running threads keep SF=1; they receive no iterations anyway (N_t = 0).
func (a *AIDHybrid) computeSF() []float64 {
	sf := make([]float64, a.info.NumTypes)
	slowest := 0.0
	for t := 0; t < a.info.NumTypes; t++ {
		if avg, ok := a.sc.Avg(t); ok && avg > slowest {
			slowest = avg
		}
	}
	for t := 0; t < a.info.NumTypes; t++ {
		avg, ok := a.sc.Avg(t)
		if !ok || avg <= 0 || slowest <= 0 {
			sf[t] = 1
			continue
		}
		sf[t] = slowest / avg
	}
	return sf
}

// computeK evaluates k = pct·NI / Σ_t N_t·SF_t (§4.2, generalized to NC
// core types).
func (a *AIDHybrid) computeK(sf []float64, pct float64) float64 {
	denom := 0.0
	for t, n := range a.info.typeCounts() {
		denom += float64(n) * sf[t]
	}
	if denom <= 0 {
		return 0
	}
	return pct * float64(a.info.NI) / denom
}

// finalAssign hands thread tid its single AID allotment: SF_j·k − δ_i
// iterations, claimed across shards so a share larger than the home shard
// is not truncated. Under pure AID-static the last thread to be assigned
// takes whatever remains instead, so SF rounding never orphans iterations.
func (a *AIDHybrid) finalAssign(tid int, st *perThread, asg *Assign) (Assign, bool) {
	st.state = stDrain
	home := int(a.types[tid].Load())
	asg.Origin = home // drained-pool probes are charged to the home line
	var rs []pool.Range
	want := int64(math.Round(a.sf[home]*a.k)) - st.delta
	if want > 0 {
		var acc int
		rs, acc = a.ws.StealSpan(home, want)
		asg.PoolAccesses += acc
		st.delta += spanN(rs)
	}
	// Claim order is load-bearing without a lock: each thread claims its
	// own span BEFORE announcing itself assigned, so when the last
	// announcement lands every share has already left the pool and the
	// residue drain below can only ever take SF-rounding leftovers —
	// never a peer's allotment whose steal has not executed yet.
	if a.static && int(a.assigned.Add(1)) == a.info.NThreads {
		drained, acc := a.ws.DrainAll(home)
		asg.PoolAccesses += acc
		st.delta += spanN(drained)
		rs = append(rs, drained...)
	}
	if len(rs) == 0 {
		if asg.PoolAccesses > 0 && len(st.pending) == 0 && st.credit.Empty() {
			// The span/drain probes above already observed the drained pool
			// and the thread owns nothing: retire without a further access.
			return st.serve(nil, asg)
		}
		// Fall through to the drain path, which serves the stash AND the
		// thread's credit — a thread must never retire while it still owns
		// iterations (want <= 0 lands here too: the thread covered its
		// share during sampling and mops up leftovers, if any).
		return a.take(tid, st, a.chunk, asg)
	}
	return st.serve(rs, asg)
}

// Migrate implements Migratable (§4.3): the runtime is told that thread tid
// now runs on a core of newType. If the thread has not received its final
// AID allotment yet, the new type is used for it; after the final allotment,
// AID-static has no rebalancing mechanism (the paper suggests combining it
// with work stealing for that case) — the drain state's dynamic fallback is
// the only relief.
func (a *AIDHybrid) Migrate(tid, newType int, _ int64) {
	if newType >= 0 && newType < a.info.NumTypes {
		a.types[tid].Store(int32(newType))
	}
}

// Next implements Scheduler, realizing the Fig. 3 state machine.
func (a *AIDHybrid) Next(tid int, nowNs int64) (Assign, bool) {
	st := &a.th[tid]
	asg := &Assign{}
	switch st.state {
	case stNew:
		st.lastTS = nowNs
		asg.Timestamps++
		if a.phase.epoch() > 0 {
			// Offline-SF variant: no sampling phase at all (§5C).
			return a.finalAssign(tid, st, asg)
		}
		st.state = stSampling
		return a.take(tid, st, a.chunk, asg)

	case stSampling:
		// The chunk just finished is this thread's sampling phase.
		asg.Timestamps++
		elapsed := nowNs - st.lastTS
		st.lastTS = nowNs
		if st.lastN > 0 {
			// Record per-iteration time (scaled for integer precision) so
			// end-of-loop clipping cannot bias the estimate.
			perIter := elapsed * 1024 / st.lastN
			a.sc.Add(int(a.types[tid].Load()), perIter)
			if a.phase.complete(0) {
				// Last sampler: single-threaded transition window.
				a.sf = a.computeSF()
				a.k = a.computeK(a.sf, a.pct)
				if a.reweight && a.pct < 1 {
					// Re-cut the pool before the final assignments claim
					// their spans: the drain tail then serves each type
					// from SF-proportional home shards.
					if w := sfWeights(a.info.typeCounts(), a.sf); w != nil && a.ws.NumTypes() == len(w) {
						a.ws.Reweight(w)
					}
				}
				if a.observe != nil {
					a.observe(PhaseEvent{TimeNs: nowNs, Tid: tid, Epoch: 1,
						Kind: PhaseSFPublished, SF: append([]float64(nil), a.sf...)})
				}
				a.phase.advance(1, a.info.NThreads)
				return a.finalAssign(tid, st, asg)
			}
		}
		st.state = stSamplingWait
		return a.take(tid, st, a.chunk, asg)

	case stSamplingWait:
		if a.phase.epoch() > 0 {
			return a.finalAssign(tid, st, asg)
		}
		return a.take(tid, st, a.chunk, asg)

	case stDrain:
		// Past the final assignment: under AID-hybrid this schedules the
		// remaining (1-pct)·NI iterations dynamically; under AID-static it
		// only fires if SF rounding left a residue.
		return a.take(tid, st, a.chunk, asg)
	}
	panic(fmt.Sprintf("core: thread %d in invalid state %v", tid, st.state))
}
