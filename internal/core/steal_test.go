package core

import (
	"testing"
)

func TestWorkStealValidation(t *testing.T) {
	info := twoTypeInfo(100, 2, 2)
	if _, err := NewWorkSteal(info, 0); err == nil {
		t.Error("chunk 0 accepted")
	}
	if _, err := NewWorkSteal(twoTypeInfo(-1, 2, 2), 4); err == nil {
		t.Error("bad info accepted")
	}
	w, err := NewWorkSteal(info, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "work-steal" {
		t.Errorf("Name() = %q", w.Name())
	}
}

func TestWorkStealCoverage(t *testing.T) {
	for _, ni := range []int64{0, 1, 7, 100, 4096} {
		info := twoTypeInfo(ni, 2, 2)
		w, _ := NewWorkSteal(info, 8)
		virtualExec(t, w, info, []int64{100, 300})
	}
}

func TestWorkStealAbsorbsAsymmetry(t *testing.T) {
	// On an AMP, big threads drain their ranges and then steal from small
	// threads: the finish times balance without any SF estimation.
	info := twoTypeInfo(8000, 2, 2)
	w, _ := NewWorkSteal(info, 16)
	counts, finish := virtualExec(t, w, info, []int64{100, 300})
	if w.Steals() == 0 {
		t.Fatal("no steals on an asymmetric platform")
	}
	bigAvg := float64(counts[0]+counts[1]) / 2
	smallAvg := float64(counts[2]+counts[3]) / 2
	if bigAvg < smallAvg*1.8 {
		t.Errorf("big threads should end up with far more iterations: big %v small %v", bigAvg, smallAvg)
	}
	var minF, maxF = finish[0], finish[0]
	for _, f := range finish[1:] {
		if f < minF {
			minF = f
		}
		if f > maxF {
			maxF = f
		}
	}
	if float64(maxF-minF) > 0.1*float64(maxF) {
		t.Errorf("work stealing left imbalance: %v", finish)
	}
}

func TestWorkStealNoStealsOnSymmetricUniform(t *testing.T) {
	// Equal speeds and uniform cost: the even split needs no stealing
	// beyond boundary effects.
	info := twoTypeInfo(8000, 2, 2)
	w, _ := NewWorkSteal(info, 16)
	virtualExec(t, w, info, []int64{200, 200})
	if w.Steals() > 2 {
		t.Errorf("symmetric uniform run performed %d steals, want ~0", w.Steals())
	}
}

func TestWorkStealVsAIDStatic(t *testing.T) {
	// The §4.3 trade-off: on a uniform loop, work stealing approaches
	// AID-static's completion time (both balance the AMP), but performs
	// many more synchronized operations.
	info := twoTypeInfo(8000, 2, 2)
	countAccesses := func(s Scheduler) (finishMax int64, accesses int) {
		clock := make([]int64, info.NThreads)
		active := make([]bool, info.NThreads)
		for i := range active {
			active[i] = true
		}
		perIter := []int64{100, 300}
		for {
			tid := -1
			for i := range clock {
				if active[i] && (tid == -1 || clock[i] < clock[tid]) {
					tid = i
				}
			}
			if tid == -1 {
				break
			}
			asg, ok := s.Next(tid, clock[tid])
			accesses += asg.PoolAccesses
			if !ok {
				active[tid] = false
				continue
			}
			clock[tid] += asg.N() * perIter[info.TypeOf(tid)]
		}
		for _, c := range clock {
			if c > finishMax {
				finishMax = c
			}
		}
		return finishMax, accesses
	}
	ws, _ := NewWorkSteal(info, 16)
	aid, _ := NewAIDStatic(info, 16)
	tSteal, accSteal := countAccesses(ws)
	tAID, accAID := countAccesses(aid)
	if ratio := float64(tSteal) / float64(tAID); ratio > 1.1 {
		t.Errorf("work-steal completion %.2fx AID-static's; should be comparable", ratio)
	}
	if accSteal <= accAID {
		t.Errorf("work-steal used %d synchronized ops vs AID-static's %d; expected more", accSteal, accAID)
	}
}

func TestWorkStealMigrateIsNoOp(t *testing.T) {
	info := twoTypeInfo(4000, 2, 2)
	w, _ := NewWorkSteal(info, 8)
	var m Migratable = w
	m.Migrate(0, 1, 0) // must not panic or affect coverage
	virtualExec(t, w, info, []int64{100, 300})
}
