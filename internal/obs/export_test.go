package obs_test

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/fair"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// simRecord produces a deterministic two-loop multi-tenant sim record — the
// same construction aidstat's golden fixture uses.
func simRecord(t testing.TB) *trace.Record {
	t.Helper()
	rec := trace.NewRecorder()
	cfg := sim.Config{
		Platform: amp.PlatformA(),
		NThreads: 8,
		Binding:  amp.BindBS,
		Factory: func(info core.LoopInfo) (core.Scheduler, error) {
			return core.NewAIDDynamic(info, 8, 64)
		},
		Recorder: rec,
	}
	specs := []sim.LoopSpec{
		{Name: "alpha", NI: 4000, Cost: sim.UniformCost{PerIter: 700}},
		{Name: "beta", NI: 2500, Cost: sim.LinearCost{Base: 300, Slope: 0.4}, Weight: 2},
	}
	if _, err := sim.RunLoops(cfg, specs, fair.NewWeightedRoundRobin(0), 0); err != nil {
		t.Fatal(err)
	}
	return rec.Record()
}

func TestAnalyzeSimRecord(t *testing.T) {
	rec := simRecord(t)
	a, err := obs.Analyze(rec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Engine != "sim" || a.SpanNs <= 0 {
		t.Fatalf("bad provenance: engine=%q span=%d", a.Engine, a.SpanNs)
	}
	var iters int64
	for _, th := range a.Threads {
		iters += th.Iters
		if th.UtilPct < 0 || th.UtilPct > 100.0001 {
			t.Errorf("t%d: utilization %f out of range", th.Tid, th.UtilPct)
		}
	}
	if want := int64(4000 + 2500); iters != want {
		t.Errorf("threads account for %d iters, want %d", iters, want)
	}
	var chunks, tiers int64
	for _, ls := range a.Loops {
		chunks += ls.Chunks
	}
	for _, c := range a.TierCounts {
		tiers += c
	}
	if tiers != chunks {
		t.Errorf("tier counts sum to %d, loops count %d chunks", tiers, chunks)
	}
	if a.ImbalancePct < 0 || a.ImbalancePct >= 100 {
		t.Errorf("imbalance %f%% out of range", a.ImbalancePct)
	}
	if len(a.Loops) != 2 || a.Loops[0].Name != "alpha" || a.Loops[1].Name != "beta" {
		t.Fatalf("loop summaries wrong: %+v", a.Loops)
	}
	// AID-dynamic publishes an initial R and a final estimate at least.
	if a.Loops[0].SFFirst == nil || a.Loops[0].SFSamples < 1 {
		t.Errorf("loop alpha has no SF trajectory: %+v", a.Loops[0])
	}

	var buf bytes.Buffer
	if err := obs.WriteReport(&buf, rec, a); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"imbalance:", "steal matrix", "activity", `loop "alpha"`, "steals by tier"} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
	// Gantt strips must be exactly the declared width.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "t0 ") {
			fields := strings.Fields(line)
			strip := fields[len(fields)-1]
			if len(strip) != 60 {
				t.Errorf("gantt strip is %d chars, want 60: %q", len(strip), strip)
			}
		}
	}
}

func TestExportChromeDeterministicAndValid(t *testing.T) {
	rec := simRecord(t)
	var a, b bytes.Buffer
	if err := obs.ExportChrome(&a, rec); err != nil {
		t.Fatal(err)
	}
	if err := obs.ExportChrome(&b, rec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same record differ byte-wise")
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Tid  int     `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var complete, instants, counters, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Dur < 0 {
				t.Errorf("negative duration on %q", ev.Name)
			}
		case "i":
			instants++
		case "C":
			counters++
		case "M":
			meta++
		}
	}
	if complete == 0 || instants == 0 || counters == 0 {
		t.Errorf("export lacks event kinds: X=%d i=%d C=%d", complete, instants, counters)
	}
	if meta != 1+rec.NThreads {
		t.Errorf("got %d metadata events, want %d (process + threads)", meta, 1+rec.NThreads)
	}
}

var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? (-?[0-9.e+-]+|NaN)$`)

func TestWritePrometheusFormat(t *testing.T) {
	m := obs.New(2, 2, func(tid int) int { return tid % 2 })
	m.Cell(0).Grant(10, obs.TierHome)
	m.Cell(0).Busy(500)
	m.Cell(1).Grant(5, obs.TierCross)
	m.Cell(1).Idle(100)
	m.Cell(1).Credit(32, 4)
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, "", m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	for _, want := range []string{
		"aid_chunks_total 2",
		"aid_iters_total 15",
		`aid_steals_total{tier="home"} 1`,
		`aid_steals_total{tier="cross_pkg"} 1`,
		"aid_credit_claimed_iters_total 32",
		"aid_busy_ns_total 500",
		"aid_idle_ns_total 100",
		`aid_occupancy_ns_total{type="0"} 500`,
		"aid_workers 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestWriteLatencySummaryMatchesHistogram(t *testing.T) {
	h := stats.NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i) * 1000)
	}
	var buf bytes.Buffer
	if err := obs.WriteLatencySummary(&buf, "aidserve_latency_ns", "gold", h, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	p50, err := h.Percentile(50)
	if err != nil {
		t.Fatal(err)
	}
	want := `aidserve_latency_ns{class="gold",quantile="0.5"} `
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, want) {
			found = true
			got, err := strconv.ParseFloat(line[len(want):], 64)
			if err != nil {
				t.Fatalf("unparseable quantile line %q: %v", line, err)
			}
			if got != p50 {
				t.Errorf("exported p50 %g, histogram says %g", got, p50)
			}
		}
	}
	if !found {
		t.Fatalf("no p50 line in:\n%s", out)
	}
	if !strings.Contains(out, `aidserve_latency_ns_count{class="gold"} 1000`) {
		t.Errorf("count line missing:\n%s", out)
	}
}
