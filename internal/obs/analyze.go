package obs

import (
	"fmt"
	"io"

	"repro/internal/trace"
)

// Analysis is the offline digest of one run record (trace.Record): the
// flight-recorder view aidstat prints. All times are on the producing
// engine's clock (virtual ns for sim records, monotonic wall ns for rt).
type Analysis struct {
	// Engine and Policy echo the record's provenance.
	Engine, Policy string
	// SpanNs is the analysis window: the recorded makespan when present,
	// otherwise the extent of the event stream.
	SpanNs int64
	// StartNs is the window's origin on the record's clock.
	StartNs int64
	// Threads is the per-thread usage breakdown, indexed by tid.
	Threads []ThreadUsage
	// ImbalancePct is the paper's load-imbalance metric over the busy
	// times: (1 - avg/max) * 100.
	ImbalancePct float64
	// TierCounts buckets every grant by provenance tier (Tier-indexed).
	TierCounts [3]int64
	// SharedGrants counts grants served from central (shared) pools —
	// provenance-free, charged to TierHome in TierCounts.
	SharedGrants int64
	// StealMatrix[thief][origin] counts chunks a thread homed on cluster
	// `thief` claimed from cluster `origin`'s shard (shared-pool grants are
	// excluded; the diagonal holds home-shard grants).
	StealMatrix [][]int64
	// Loops summarizes each recorded loop.
	Loops []LoopSummary
}

// ThreadUsage is one worker's share of the recorded run.
type ThreadUsage struct {
	Tid int
	// Type is the thread's home cluster (the Shard of its grants).
	Type int
	// BusyNs sums the thread's chunk execution times; UtilPct is BusyNs
	// over the analysis span.
	BusyNs  int64
	UtilPct float64
	// Chunks and Iters count the thread's grants and their iterations.
	Chunks, Iters int64
	// PoolAccesses sums the runtime-cost metadata of its scheduler calls.
	PoolAccesses int64
}

// LoopSummary condenses one loop's recorded life.
type LoopSummary struct {
	Name      string
	Scheduler string
	NI        int64
	// Iters counts recorded granted iterations (< NI when the producer
	// compacted or trimmed the event stream).
	Iters  int64
	Chunks int64
	// StartNs/EndNs bound the loop's recorded events.
	StartNs, EndNs int64
	// PhaseCounts tallies the scheduler's transitions by kind, and
	// PhaseKinds lists the kinds in first-occurrence order.
	PhaseCounts map[string]int
	PhaseKinds  []string
	// SFFirst and SFLast are the loop's first and last published SF tables
	// (nil when the method estimates nothing) — the SF trajectory's
	// endpoints; SFSamples counts the points between them.
	SFFirst, SFLast []float64
	SFSamples       int
}

// Analyze digests a run record. The record must be valid (decoded records
// are); the platform's cluster-distance matrix drives the tier bucketing.
func Analyze(rec *trace.Record) (*Analysis, error) {
	pl, err := rec.Platform.Platform()
	if err != nil {
		return nil, fmt.Errorf("obs: rebuilding recorded platform: %w", err)
	}
	dist := pl.TypeDist()
	ntypes := len(pl.Clusters)
	a := &Analysis{
		Engine:      rec.Engine,
		Policy:      rec.Policy,
		StartNs:     rec.StartNs,
		SpanNs:      rec.MakespanNs,
		Threads:     make([]ThreadUsage, rec.NThreads),
		StealMatrix: make([][]int64, ntypes),
		Loops:       make([]LoopSummary, len(rec.Loops)),
	}
	for t := range a.StealMatrix {
		a.StealMatrix[t] = make([]int64, ntypes)
	}
	for tid := range a.Threads {
		a.Threads[tid].Tid = tid
	}
	for i, l := range rec.Loops {
		a.Loops[i] = LoopSummary{Name: l.Name, Scheduler: l.Scheduler, NI: l.NI,
			StartNs: -1, PhaseCounts: make(map[string]int)}
	}
	var maxEnd int64
	for _, ev := range rec.Events {
		th := &a.Threads[ev.Tid]
		th.Type = ev.Shard
		th.PoolAccesses += int64(ev.PoolAccesses)
		ls := &a.Loops[ev.Loop]
		if ls.StartNs < 0 || ev.TimeNs < ls.StartNs {
			ls.StartNs = ev.TimeNs
		}
		if end := ev.TimeNs + ev.ExecNs; end > ls.EndNs {
			ls.EndNs = end
		}
		if end := ev.TimeNs + ev.ExecNs; end > maxEnd {
			maxEnd = end
		}
		if ev.Retire {
			continue
		}
		th.BusyNs += ev.ExecNs
		th.Chunks++
		th.Iters += ev.Hi - ev.Lo
		ls.Chunks++
		ls.Iters += ev.Hi - ev.Lo
		a.TierCounts[Tier(dist, ev.Shard, ev.Origin)]++
		if ev.Origin < 0 {
			a.SharedGrants++
		} else if ev.Shard < ntypes && ev.Origin < ntypes {
			a.StealMatrix[ev.Shard][ev.Origin]++
		}
	}
	if a.SpanNs <= 0 && maxEnd > a.StartNs {
		a.SpanNs = maxEnd - a.StartNs
	}
	var maxBusy, sumBusy int64
	for tid := range a.Threads {
		th := &a.Threads[tid]
		if a.SpanNs > 0 {
			th.UtilPct = 100 * float64(th.BusyNs) / float64(a.SpanNs)
		}
		sumBusy += th.BusyNs
		if th.BusyNs > maxBusy {
			maxBusy = th.BusyNs
		}
	}
	if maxBusy > 0 {
		avg := float64(sumBusy) / float64(len(a.Threads))
		a.ImbalancePct = (1 - avg/float64(maxBusy)) * 100
	}
	for _, p := range rec.Phases {
		ls := &a.Loops[p.Loop]
		if _, seen := ls.PhaseCounts[p.Kind]; !seen {
			ls.PhaseKinds = append(ls.PhaseKinds, p.Kind)
		}
		ls.PhaseCounts[p.Kind]++
	}
	for _, s := range rec.SFSamples {
		ls := &a.Loops[s.Loop]
		if ls.SFFirst == nil {
			ls.SFFirst = s.SF
		}
		ls.SFLast = s.SF
		ls.SFSamples++
	}
	return a, nil
}

// ganttWidth is the character width of the per-thread activity strips.
const ganttWidth = 60

// WriteReport renders the analysis as the aidstat text report: run
// provenance, a per-thread utilization table with a Gantt strip (one letter
// per loop, '.' for idle), the imbalance figure, the steal matrix by tier,
// and per-loop phase/SF summaries. The strips are rebuilt from the
// record's event stream, so the report needs the record the analysis came
// from.
func WriteReport(w io.Writer, rec *trace.Record, a *Analysis) error {
	e := &errWriter{w: w}
	e.printf("engine=%s nthreads=%d binding=%s", a.Engine, len(a.Threads), rec.Binding)
	if a.Policy != "" {
		e.printf(" policy=%s", a.Policy)
	}
	e.printf(" span=%.3fms\n\n", float64(a.SpanNs)/1e6)

	strips := ganttStrips(rec, a)
	e.printf("%-4s %-4s %12s %7s %8s %9s  %s\n", "tid", "type", "busy-ms", "util%", "chunks", "iters", "activity")
	for _, th := range a.Threads {
		e.printf("t%-3d %-4d %12.3f %7.1f %8d %9d  %s\n",
			th.Tid, th.Type, float64(th.BusyNs)/1e6, th.UtilPct, th.Chunks, th.Iters, strips[th.Tid])
	}
	e.printf("\nimbalance: %.1f%% (1 - avg/max busy)\n", a.ImbalancePct)

	e.printf("\nsteals by tier: home=%d same-pkg=%d cross-pkg=%d (shared-pool grants: %d)\n",
		a.TierCounts[TierHome], a.TierCounts[TierSamePkg], a.TierCounts[TierCross], a.SharedGrants)
	if len(a.StealMatrix) > 1 {
		e.printf("steal matrix (rows: thief home type, cols: origin shard):\n")
		e.printf("%8s", "")
		for t := range a.StealMatrix {
			e.printf(" %8s", fmt.Sprintf("type%d", t))
		}
		e.printf("\n")
		for t, row := range a.StealMatrix {
			e.printf("%8s", fmt.Sprintf("type%d", t))
			for _, v := range row {
				e.printf(" %8d", v)
			}
			e.printf("\n")
		}
	}

	for _, ls := range a.Loops {
		e.printf("\nloop %q (%s): %d/%d iters in %d chunks, [%.3f, %.3f]ms\n",
			ls.Name, ls.Scheduler, ls.Iters, ls.NI, ls.Chunks,
			float64(ls.StartNs-a.StartNs)/1e6, float64(ls.EndNs-a.StartNs)/1e6)
		if len(ls.PhaseKinds) > 0 {
			e.printf("  phases:")
			for _, k := range ls.PhaseKinds {
				e.printf(" %s×%d", k, ls.PhaseCounts[k])
			}
			e.printf("\n")
		}
		if ls.SFFirst != nil {
			e.printf("  SF: %v", ls.SFFirst)
			if ls.SFSamples > 1 {
				e.printf(" → %v (%d samples)", ls.SFLast, ls.SFSamples)
			}
			e.printf("\n")
		}
	}
	return e.err
}

// ganttStrips renders one ganttWidth-character activity strip per thread:
// the loop's letter ('A' + loop index, wrapping through the alphabet) where
// the thread was executing a chunk, '.' where it was not.
func ganttStrips(rec *trace.Record, a *Analysis) []string {
	strips := make([][]byte, len(a.Threads))
	for tid := range strips {
		strips[tid] = make([]byte, ganttWidth)
		for i := range strips[tid] {
			strips[tid][i] = '.'
		}
	}
	if a.SpanNs <= 0 {
		out := make([]string, len(strips))
		for tid := range strips {
			out[tid] = string(strips[tid])
		}
		return out
	}
	scale := float64(ganttWidth) / float64(a.SpanNs)
	for _, ev := range rec.Events {
		if ev.Retire || ev.Tid >= len(strips) {
			continue
		}
		lo := int(float64(ev.TimeNs-a.StartNs) * scale)
		hi := int(float64(ev.TimeNs+ev.ExecNs-a.StartNs) * scale)
		if lo < 0 {
			lo = 0
		}
		if hi >= ganttWidth {
			hi = ganttWidth - 1
		}
		letter := byte('A' + ev.Loop%26)
		for i := lo; i <= hi && i < ganttWidth; i++ {
			strips[ev.Tid][i] = letter
		}
	}
	out := make([]string, len(strips))
	for tid := range strips {
		out[tid] = string(strips[tid])
	}
	return out
}
