// Package obs is the flight-recorder observability layer: always-on,
// lock-free runtime metrics for both execution engines, plus the offline
// analysis that turns a recorded trace.Record into per-thread utilization,
// steal matrices and Chrome trace-event exports.
//
// The live half is Metrics: one cache-line-sized counter Cell per worker,
// updated on the engines' chunk-grant hot path and scraped at any time into
// a Snapshot (e.g. by aidserve's -metrics Prometheus endpoint). The offline
// half is Analyze/WriteReport/ExportChrome, the cmd/aidstat backend.
//
// # Counter invariants
//
// The hot-path rules mirror pool/doc.go's "Hot-path invariants": every
// property below is load-bearing for the zero-allocation guarantee and is
// pinned by a layout or allocation test.
//
//  1. One cell per worker, one writer per cell. Cell tid is updated only by
//     worker tid while the worker serves a loop. Because each counter has a
//     single writer, updates are owner-side read-modify-writes expressed as
//     atomic Load+Store pairs — plain MOV loads and stores on x86, no LOCK
//     prefix — which keeps the metrics-on hot path within the overhead
//     budget while staying exactly as visible to concurrent scrapers (and
//     to the race detector) as atomic.Add would be.
//
//  2. Cells are exactly two cache lines (128 bytes, pinned by
//     TestCellLayout). Neighbouring workers' per-chunk updates therefore
//     never share a line, the same false-sharing rule the registry's
//     workerCell and the pool's shard obey.
//
//  3. Updates never allocate. Cell methods touch only the cell's own
//     fields; Snapshot (which allocates its result slices) runs on cold
//     paths only — barrier release, endpoint scrapes, end-of-run reports.
//     The registry's metrics-on steady state is gated at zero allocations
//     per chunk by TestRegistryMetricsSteadyStateAllocs.
//
//  4. A Snapshot is per-counter monotonic, not a consistent cut. Scrapers
//     read the cells with atomic loads while workers keep counting, so two
//     counters in one Snapshot may be skewed by in-flight chunks; each
//     counter individually never goes backwards between Snapshots of the
//     same Metrics. Delta of two such snapshots is therefore always
//     non-negative per counter.
//
//  5. Quiescent-merge writes are the one exception to rule 1: when a
//     loop's barrier releases, the retiring worker folds barrier-wait idle
//     time and the scheduler's re-partition count into cells it does not
//     own. By then every worker has retired from the loop — the cells are
//     quiescent — and the engines serialize the merge (the registry under
//     its lock, the simulator on its single goroutine), so the single-
//     writer discipline is preserved in time rather than by thread
//     identity.
//
// Steals are bucketed by provenance tier — TierHome (the chunk came from
// the worker's home shard or a shared pool), TierSamePkg (a foreign shard
// one package hop away) and TierCross (across packages) — using the same
// platform TypeDist matrix the simulator's tiered locality charges use, so
// live counters and offline trace analysis agree on what "remote" means.
package obs
