package obs

import (
	"fmt"
	"sync/atomic"
)

// Provenance tiers of a chunk grant, measured from the consuming worker's
// home cluster to the shard the chunk was claimed from (see Tier).
const (
	// TierHome: the worker's own shard, or a shared (single-shard) pool.
	TierHome = 0
	// TierSamePkg: a foreign shard whose owner cluster shares the package.
	TierSamePkg = 1
	// TierCross: a foreign shard across a package boundary.
	TierCross = 2
)

// Tier buckets a chunk's provenance by topology distance: dist is the
// platform's cluster-distance matrix (amp.Platform.TypeDist), own the
// consuming worker's home cluster, origin the chunk's provenance
// (core.Assign.Origin; negative means a shared pool, charged as home —
// there is no remote line to have crossed). A nil or short matrix treats
// every foreign origin as same-package, the topology-free default.
func Tier(dist [][]int, own, origin int) int {
	if origin < 0 || origin == own {
		return TierHome
	}
	if dist == nil || own >= len(dist) || origin >= len(dist[own]) {
		return TierSamePkg
	}
	switch dist[own][origin] {
	case 0:
		return TierHome
	case 1:
		return TierSamePkg
	default:
		return TierCross
	}
}

// Cell is one worker's private counter block. All fields are atomics so
// concurrent scrapers (Snapshot) read torn-free values, but each counter
// has a single writer — the owning worker — so updates are Load+Store
// pairs, not LOCK-prefixed RMWs (doc.go, invariant 1). The block is padded
// to exactly two cache lines (invariant 2, pinned by TestCellLayout).
type Cell struct {
	chunks         atomic.Int64
	iters          atomic.Int64
	stealsHome     atomic.Int64
	stealsSamePkg  atomic.Int64
	stealsCross    atomic.Int64
	creditClaimed  atomic.Int64
	creditReturned atomic.Int64
	reweights      atomic.Int64
	busyNs         atomic.Int64
	schedNs        atomic.Int64
	idleNs         atomic.Int64
	_              [40]byte
}

// bump is the owner-side increment: a plain load plus a plain store of the
// same word, legal because the owner is the only writer (invariant 1).
func bump(c *atomic.Int64, n int64) { c.Store(c.Load() + n) }

// Grant records one chunk grant of n iterations at the given provenance
// tier (Tier). Owner-only.
func (c *Cell) Grant(n int64, tier int) {
	bump(&c.chunks, 1)
	bump(&c.iters, n)
	switch tier {
	case TierSamePkg:
		bump(&c.stealsSamePkg, 1)
	case TierCross:
		bump(&c.stealsCross, 1)
	default:
		bump(&c.stealsHome, 1)
	}
}

// Credit records the batched credit path's pool traffic for one scheduler
// call: claimed iterations newly removed from the pool, returned iterations
// handed back across a re-partition. No-op when both are zero (the common
// thread-local draw). Owner-only.
func (c *Cell) Credit(claimed, returned int64) {
	if claimed != 0 {
		bump(&c.creditClaimed, claimed)
	}
	if returned != 0 {
		bump(&c.creditReturned, returned)
	}
}

// Busy adds chunk-execution time. Owner-only.
func (c *Cell) Busy(ns int64) { bump(&c.busyNs, ns) }

// Sched adds runtime-system (scheduler-call) time. Owner-only.
func (c *Cell) Sched(ns int64) { bump(&c.schedNs, ns) }

// Idle adds time spent without work (waiting for a pick, or parked at a
// barrier). Owner-only.
func (c *Cell) Idle(ns int64) { bump(&c.idleNs, ns) }

// SetReweights publishes the pool's re-partition count. Called at barrier
// release, when the loop's cells are quiescent (doc.go, invariant 5).
func (c *Cell) SetReweights(n int64) { c.reweights.Store(n) }

// Batch is a worker-local accumulator for the hottest loops. Go's atomic
// stores compile to serializing instructions (XCHG on amd64), so even
// uncontended owner-side bumps cost tens of nanoseconds per chunk at fine
// granularity; a hot loop instead adds into a Batch's plain fields —
// ordinary register/stack arithmetic — and applies it to its cell every few
// dozen chunks (and at every burst boundary), amortizing the atomic stores
// to a fraction of a chunk. Scrapers lag the owner by at most one
// unflushed batch; totals are exact after Apply at retirement.
type Batch struct {
	Chunks, Iters                 int64
	Steals                        [3]int64 // indexed by tier (TierHome..TierCross)
	CreditClaimed, CreditReturned int64
	BusyNs, SchedNs, IdleNs       int64
}

// Grant accumulates one chunk grant of n iterations at the given tier.
func (b *Batch) Grant(n int64, tier int) {
	b.Chunks++
	b.Iters += n
	b.Steals[tier]++
}

// Apply folds the batch into the cell and zeroes it. Owner-only, like every
// cell write; zero counters are skipped so an empty flush costs only the
// field checks.
func (c *Cell) Apply(b *Batch) {
	if b.Chunks != 0 {
		bump(&c.chunks, b.Chunks)
	}
	if b.Iters != 0 {
		bump(&c.iters, b.Iters)
	}
	if b.Steals[TierHome] != 0 {
		bump(&c.stealsHome, b.Steals[TierHome])
	}
	if b.Steals[TierSamePkg] != 0 {
		bump(&c.stealsSamePkg, b.Steals[TierSamePkg])
	}
	if b.Steals[TierCross] != 0 {
		bump(&c.stealsCross, b.Steals[TierCross])
	}
	if b.CreditClaimed != 0 {
		bump(&c.creditClaimed, b.CreditClaimed)
	}
	if b.CreditReturned != 0 {
		bump(&c.creditReturned, b.CreditReturned)
	}
	if b.BusyNs != 0 {
		bump(&c.busyNs, b.BusyNs)
	}
	if b.SchedNs != 0 {
		bump(&c.schedNs, b.SchedNs)
	}
	if b.IdleNs != 0 {
		bump(&c.idleNs, b.IdleNs)
	}
	*b = Batch{}
}

// load scrapes the cell into plain counters (concurrent-scraper safe).
func (c *Cell) load() Counters {
	return Counters{
		Chunks:         c.chunks.Load(),
		Iters:          c.iters.Load(),
		StealsHome:     c.stealsHome.Load(),
		StealsSamePkg:  c.stealsSamePkg.Load(),
		StealsCross:    c.stealsCross.Load(),
		CreditClaimed:  c.creditClaimed.Load(),
		CreditReturned: c.creditReturned.Load(),
		Reweights:      c.reweights.Load(),
		BusyNs:         c.busyNs.Load(),
		SchedNs:        c.schedNs.Load(),
		IdleNs:         c.idleNs.Load(),
	}
}

// Counters is one scraped counter set — a cell's, or a whole fleet's sum.
type Counters struct {
	// Chunks counts scheduler grants; Iters the iterations they carried.
	Chunks, Iters int64
	// StealsHome/StealsSamePkg/StealsCross bucket Chunks by provenance
	// tier (their sum equals Chunks).
	StealsHome, StealsSamePkg, StealsCross int64
	// CreditClaimed/CreditReturned are the batched credit path's pool
	// traffic in iterations (pool.CreditSteal).
	CreditClaimed, CreditReturned int64
	// Reweights counts the pool re-partitions published for the loop.
	Reweights int64
	// BusyNs/SchedNs/IdleNs split the worker's time: chunk execution,
	// runtime-system calls, and no-work waits.
	BusyNs, SchedNs, IdleNs int64
}

// plus returns the element-wise sum.
func (c Counters) plus(o Counters) Counters {
	return Counters{
		Chunks:         c.Chunks + o.Chunks,
		Iters:          c.Iters + o.Iters,
		StealsHome:     c.StealsHome + o.StealsHome,
		StealsSamePkg:  c.StealsSamePkg + o.StealsSamePkg,
		StealsCross:    c.StealsCross + o.StealsCross,
		CreditClaimed:  c.CreditClaimed + o.CreditClaimed,
		CreditReturned: c.CreditReturned + o.CreditReturned,
		Reweights:      c.Reweights + o.Reweights,
		BusyNs:         c.BusyNs + o.BusyNs,
		SchedNs:        c.SchedNs + o.SchedNs,
		IdleNs:         c.IdleNs + o.IdleNs,
	}
}

// minus returns the element-wise difference.
func (c Counters) minus(o Counters) Counters {
	return Counters{
		Chunks:         c.Chunks - o.Chunks,
		Iters:          c.Iters - o.Iters,
		StealsHome:     c.StealsHome - o.StealsHome,
		StealsSamePkg:  c.StealsSamePkg - o.StealsSamePkg,
		StealsCross:    c.StealsCross - o.StealsCross,
		CreditClaimed:  c.CreditClaimed - o.CreditClaimed,
		CreditReturned: c.CreditReturned - o.CreditReturned,
		Reweights:      c.Reweights - o.Reweights,
		BusyNs:         c.BusyNs - o.BusyNs,
		SchedNs:        c.SchedNs - o.SchedNs,
		IdleNs:         c.IdleNs - o.IdleNs,
	}
}

// Steals returns the foreign-provenance chunk count (same-package plus
// cross-package; home-tier grants are not steals).
func (c Counters) Steals() int64 { return c.StealsSamePkg + c.StealsCross }

// Metrics is one fleet's (or one loop's) live counter set: a padded Cell
// per worker plus the worker-to-home-cluster mapping that drives the
// per-core-type occupancy rollup.
type Metrics struct {
	types  []int
	ntypes int
	cells  []Cell
}

// New builds a Metrics for nworkers workers over ntypes core types;
// typeOf maps a worker to its home cluster (nil maps every worker to 0).
func New(nworkers, ntypes int, typeOf func(tid int) int) *Metrics {
	if nworkers <= 0 {
		panic(fmt.Sprintf("obs: non-positive worker count %d", nworkers))
	}
	if ntypes <= 0 {
		ntypes = 1
	}
	m := &Metrics{
		types:  make([]int, nworkers),
		ntypes: ntypes,
		cells:  make([]Cell, nworkers),
	}
	for tid := range m.types {
		if typeOf != nil {
			if t := typeOf(tid); t >= 0 && t < ntypes {
				m.types[tid] = t
			}
		}
	}
	return m
}

// Cell returns worker tid's counter block. Only worker tid may write
// through it (doc.go, invariant 1).
func (m *Metrics) Cell(tid int) *Cell { return &m.cells[tid] }

// NWorkers returns the fleet size the metrics were built for.
func (m *Metrics) NWorkers() int { return len(m.cells) }

// Snapshot scrapes every cell: the fleet-wide totals, the per-worker
// breakdown, and busy time rolled up by each worker's home core type. Safe
// to call from any goroutine while workers keep counting; see doc.go,
// invariant 4, for what "consistent" means here.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		OccupancyNs: make([]int64, m.ntypes),
		Workers:     make([]Counters, len(m.cells)),
	}
	for i := range m.cells {
		w := m.cells[i].load()
		s.Workers[i] = w
		s.Counters = s.Counters.plus(w)
		s.OccupancyNs[m.types[i]] += w.BusyNs
	}
	return s
}

// Snapshot is one scraped view of a Metrics: fleet totals, the busy-time
// occupancy per core type, and the per-worker counter sets.
type Snapshot struct {
	Counters
	// OccupancyNs is busy time summed by worker home core type — the
	// per-core-type occupancy signal.
	OccupancyNs []int64
	// Workers is the per-worker breakdown, indexed by tid.
	Workers []Counters
}

// Delta returns the change from prev to s, element-wise. Both snapshots
// should come from the same Metrics (or Add-compatible aggregates); every
// counter of the result is non-negative then (invariant 4).
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{Counters: s.Counters.minus(prev.Counters)}
	d.OccupancyNs = make([]int64, len(s.OccupancyNs))
	copy(d.OccupancyNs, s.OccupancyNs)
	for t := range prev.OccupancyNs {
		if t < len(d.OccupancyNs) {
			d.OccupancyNs[t] -= prev.OccupancyNs[t]
		}
	}
	d.Workers = make([]Counters, len(s.Workers))
	copy(d.Workers, s.Workers)
	for i := range prev.Workers {
		if i < len(d.Workers) {
			d.Workers[i] = d.Workers[i].minus(prev.Workers[i])
		}
	}
	return d
}

// Add returns the element-wise sum of two snapshots (e.g. folding several
// loops' metrics into a fleet view). Slices are sized to the longer
// operand; neither operand is mutated.
func (s Snapshot) Add(o Snapshot) Snapshot {
	r := Snapshot{Counters: s.Counters.plus(o.Counters)}
	no := len(s.OccupancyNs)
	if len(o.OccupancyNs) > no {
		no = len(o.OccupancyNs)
	}
	r.OccupancyNs = make([]int64, no)
	copy(r.OccupancyNs, s.OccupancyNs)
	for t := range o.OccupancyNs {
		r.OccupancyNs[t] += o.OccupancyNs[t]
	}
	nw := len(s.Workers)
	if len(o.Workers) > nw {
		nw = len(o.Workers)
	}
	r.Workers = make([]Counters, nw)
	copy(r.Workers, s.Workers)
	for i := range o.Workers {
		r.Workers[i] = r.Workers[i].plus(o.Workers[i])
	}
	return r
}
