package obs

import (
	"fmt"
	"io"
	"math"

	"repro/internal/stats"
)

// tierLabels are the Prometheus label values of the provenance tiers,
// indexed like the Tier constants.
var tierLabels = [...]string{"home", "same_pkg", "cross_pkg"}

// errWriter folds the error handling of a sequence of writes: after the
// first failure every printf is a no-op and the error is returned once.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4). prefix namespaces the metric families ("" selects
// "aid"); the families are counters except the worker gauge:
//
//	<p>_chunks_total, <p>_iters_total
//	<p>_steals_total{tier="home|same_pkg|cross_pkg"}
//	<p>_credit_claimed_iters_total, <p>_credit_returned_iters_total
//	<p>_pool_reweights_total
//	<p>_busy_ns_total, <p>_sched_ns_total, <p>_idle_ns_total
//	<p>_occupancy_ns_total{type="<cluster>"}
//	<p>_workers
//
// Counter semantics hold between scrapes of the same live source (obs
// invariant 4: per-counter monotone). Output order is fixed, so identical
// snapshots render byte-identically.
func WritePrometheus(w io.Writer, prefix string, s Snapshot) error {
	if prefix == "" {
		prefix = "aid"
	}
	e := &errWriter{w: w}
	counter := func(name, help string, v int64) {
		e.printf("# HELP %s_%s %s\n# TYPE %s_%s counter\n%s_%s %d\n",
			prefix, name, help, prefix, name, prefix, name, v)
	}
	counter("chunks_total", "Chunk grants served.", s.Chunks)
	counter("iters_total", "Iterations executed.", s.Iters)
	e.printf("# HELP %s_steals_total Chunk grants by provenance tier.\n# TYPE %s_steals_total counter\n", prefix, prefix)
	for tier, v := range [...]int64{s.StealsHome, s.StealsSamePkg, s.StealsCross} {
		e.printf("%s_steals_total{tier=%q} %d\n", prefix, tierLabels[tier], v)
	}
	counter("credit_claimed_iters_total", "Iterations claimed through the batched credit path.", s.CreditClaimed)
	counter("credit_returned_iters_total", "Iterations returned to the pool across re-partitions.", s.CreditReturned)
	counter("pool_reweights_total", "Pool re-partitions published.", s.Reweights)
	counter("busy_ns_total", "Worker time executing chunks.", s.BusyNs)
	counter("sched_ns_total", "Worker time inside the runtime system.", s.SchedNs)
	counter("idle_ns_total", "Worker time without work.", s.IdleNs)
	e.printf("# HELP %s_occupancy_ns_total Busy time by home core type.\n# TYPE %s_occupancy_ns_total counter\n", prefix, prefix)
	for t, v := range s.OccupancyNs {
		e.printf("%s_occupancy_ns_total{type=\"%d\"} %d\n", prefix, t, v)
	}
	e.printf("# HELP %s_workers Worker cells in the snapshot.\n# TYPE %s_workers gauge\n%s_workers %d\n",
		prefix, prefix, prefix, len(s.Workers))
	return e.err
}

// summaryQuantiles are the quantile labels WriteLatencySummary emits.
var summaryQuantiles = [...]struct {
	label string
	pct   float64
}{{"0.5", 50}, {"0.95", 95}, {"0.99", 99}}

// WriteLatencySummary renders one histogram as a Prometheus summary family
// named name (e.g. "aidserve_latency_ns") with a class label — the per-QoS-
// class latency export. The quantiles come from the histogram's log-bucketed
// percentiles, so a scrape and the end-of-run report read the same numbers.
// Emit the whole family through consecutive calls with writeHeader true on
// the first only (Prometheus allows one TYPE line per family).
func WriteLatencySummary(w io.Writer, name, class string, h *stats.Histogram, writeHeader bool) error {
	e := &errWriter{w: w}
	if writeHeader {
		e.printf("# HELP %s Request latency by QoS class.\n# TYPE %s summary\n", name, name)
	}
	for _, q := range summaryQuantiles {
		v, err := h.Percentile(q.pct)
		if err != nil {
			v = math.NaN() // empty class: NaN quantiles, per Prometheus convention
		}
		e.printf("%s{class=%q,quantile=%q} %g\n", name, class, q.label, v)
	}
	e.printf("%s_sum{class=%q} %g\n", name, class, h.Sum())
	e.printf("%s_count{class=%q} %d\n", name, class, h.Count())
	return e.err
}
