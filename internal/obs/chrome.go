package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/amp"
	"repro/internal/trace"
)

// ExportChrome writes a run record in the Chrome trace-event JSON format
// (the chrome://tracing / Perfetto "JSON object" flavor): one complete "X"
// event per chunk grant on thread lanes named after the workers, instant
// "i" events for retirements and AID phase transitions, and one "C" counter
// track per loop charting the SF-estimate trajectory.
//
// The output is byte-deterministic for a given record: events are emitted
// in the record's order, encoding/json sorts object keys, and Go renders
// floats with the shortest round-trip representation — the property
// aidstat's golden test pins. Timestamps are the record's nanoseconds
// scaled to the format's microseconds.
func ExportChrome(w io.Writer, rec *trace.Record) error {
	type obj = map[string]any
	events := make([]obj, 0, len(rec.Events)+len(rec.Phases)+len(rec.SFSamples)+rec.NThreads+1)
	events = append(events, obj{
		"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
		"args": obj{"name": fmt.Sprintf("%s run on %s", rec.Engine, rec.Platform.Name)},
	})
	pl, err := rec.Platform.Platform()
	if err != nil {
		return fmt.Errorf("obs: rebuilding recorded platform: %w", err)
	}
	for tid := 0; tid < rec.NThreads; tid++ {
		cluster := pl.ClusterOf(pl.CoreOf(tid, rec.NThreads, bindingOf(rec.Binding)))
		events = append(events, obj{
			"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
			"args": obj{"name": fmt.Sprintf("worker-%d (type%d)", tid, cluster)},
		})
	}
	us := func(ns int64) float64 { return float64(ns) / 1000.0 }
	for _, ev := range rec.Events {
		name := loopName(rec, ev.Loop)
		if ev.Retire {
			events = append(events, obj{
				"name": "retire " + name, "cat": "retire", "ph": "i", "s": "t",
				"ts": us(ev.TimeNs), "pid": 1, "tid": ev.Tid,
			})
			continue
		}
		events = append(events, obj{
			"name": name, "cat": "chunk", "ph": "X",
			"ts": us(ev.TimeNs), "dur": us(ev.ExecNs), "pid": 1, "tid": ev.Tid,
			"args": obj{"lo": ev.Lo, "hi": ev.Hi, "shard": ev.Shard, "origin": ev.Origin,
				"pool": ev.PoolAccesses, "cost": ev.Cost},
		})
	}
	for _, p := range rec.Phases {
		events = append(events, obj{
			"name": p.Kind + " " + loopName(rec, p.Loop), "cat": "phase", "ph": "i", "s": "t",
			"ts": us(p.TimeNs), "pid": 1, "tid": p.Tid,
			"args": obj{"epoch": p.Epoch},
		})
	}
	for _, s := range rec.SFSamples {
		args := obj{}
		for t, v := range s.SF {
			args[fmt.Sprintf("sf%d", t)] = v
		}
		events = append(events, obj{
			"name": "SF " + loopName(rec, s.Loop), "cat": "sf", "ph": "C",
			"ts": us(s.TimeNs), "pid": 1,
			"args": args,
		})
	}
	doc := obj{"displayTimeUnit": "ms", "traceEvents": events}
	data, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	_, err = w.Write([]byte("\n"))
	return err
}

// bindingOf parses a record's binding string ("SB" selects small-first;
// anything else the default BS, mirroring the recorders' String output).
func bindingOf(s string) amp.Binding {
	if s == "SB" {
		return amp.BindSB
	}
	return amp.BindBS
}

// loopName resolves an event's loop index to the recorded loop name.
func loopName(rec *trace.Record, idx int) string {
	if idx >= 0 && idx < len(rec.Loops) {
		return rec.Loops[idx].Name
	}
	return fmt.Sprintf("loop-%d", idx)
}
