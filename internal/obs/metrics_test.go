package obs

import (
	"sync"
	"testing"
	"unsafe"
)

// TestCellLayout pins the counter block at exactly two cache lines, so
// neighbouring workers' per-chunk updates never share a line (doc.go,
// invariant 2). Runs under alloc-check's Layout regex.
func TestCellLayout(t *testing.T) {
	if got := unsafe.Sizeof(Cell{}); got != 128 {
		t.Fatalf("Cell is %d bytes, want exactly 128 (two cache lines)", got)
	}
	var m [2]Cell
	d := uintptr(unsafe.Pointer(&m[1])) - uintptr(unsafe.Pointer(&m[0]))
	if d != 128 {
		t.Fatalf("adjacent cells are %d bytes apart, want 128", d)
	}
}

func TestTier(t *testing.T) {
	// Two packages: clusters {0,1} together, cluster 2 alone.
	dist := [][]int{{0, 1, 2}, {1, 0, 2}, {2, 2, 0}}
	cases := []struct {
		own, origin, want int
	}{
		{0, 0, TierHome},
		{0, -1, TierHome}, // shared pool
		{0, 1, TierSamePkg},
		{0, 2, TierCross},
		{2, 0, TierCross},
		{1, 0, TierSamePkg},
	}
	for _, c := range cases {
		if got := Tier(dist, c.own, c.origin); got != c.want {
			t.Errorf("Tier(own=%d, origin=%d) = %d, want %d", c.own, c.origin, got, c.want)
		}
	}
	// No topology: every foreign origin is same-package, home stays home.
	if got := Tier(nil, 0, 1); got != TierSamePkg {
		t.Errorf("Tier(nil, 0, 1) = %d, want TierSamePkg", got)
	}
	if got := Tier(nil, 1, 1); got != TierHome {
		t.Errorf("Tier(nil, 1, 1) = %d, want TierHome", got)
	}
}

func TestSnapshotTotalsAndOccupancy(t *testing.T) {
	// 4 workers, types 0,0,1,1.
	m := New(4, 2, func(tid int) int { return tid / 2 })
	m.Cell(0).Grant(10, TierHome)
	m.Cell(0).Busy(100)
	m.Cell(1).Grant(5, TierSamePkg)
	m.Cell(1).Busy(50)
	m.Cell(2).Grant(3, TierCross)
	m.Cell(2).Busy(30)
	m.Cell(2).Credit(8, 2)
	m.Cell(3).Idle(40)
	m.Cell(3).Sched(7)

	s := m.Snapshot()
	if s.Chunks != 3 || s.Iters != 18 {
		t.Fatalf("totals chunks=%d iters=%d, want 3/18", s.Chunks, s.Iters)
	}
	if s.StealsHome != 1 || s.StealsSamePkg != 1 || s.StealsCross != 1 {
		t.Fatalf("tier buckets %d/%d/%d, want 1/1/1", s.StealsHome, s.StealsSamePkg, s.StealsCross)
	}
	if s.Steals() != 2 {
		t.Fatalf("Steals() = %d, want 2", s.Steals())
	}
	if s.CreditClaimed != 8 || s.CreditReturned != 2 {
		t.Fatalf("credit %d/%d, want 8/2", s.CreditClaimed, s.CreditReturned)
	}
	if s.BusyNs != 180 || s.IdleNs != 40 || s.SchedNs != 7 {
		t.Fatalf("time busy=%d idle=%d sched=%d, want 180/40/7", s.BusyNs, s.IdleNs, s.SchedNs)
	}
	if s.OccupancyNs[0] != 150 || s.OccupancyNs[1] != 30 {
		t.Fatalf("occupancy %v, want [150 30]", s.OccupancyNs)
	}
	if len(s.Workers) != 4 || s.Workers[2].CreditClaimed != 8 {
		t.Fatalf("per-worker breakdown wrong: %+v", s.Workers)
	}
}

func TestSnapshotDeltaAndAdd(t *testing.T) {
	m := New(2, 2, func(tid int) int { return tid })
	m.Cell(0).Grant(4, TierHome)
	m.Cell(0).Busy(10)
	prev := m.Snapshot()
	m.Cell(0).Grant(6, TierCross)
	m.Cell(1).Busy(5)
	cur := m.Snapshot()

	d := cur.Delta(prev)
	if d.Chunks != 1 || d.Iters != 6 || d.StealsCross != 1 {
		t.Fatalf("delta chunks=%d iters=%d cross=%d, want 1/6/1", d.Chunks, d.Iters, d.StealsCross)
	}
	if d.OccupancyNs[0] != 0 || d.OccupancyNs[1] != 5 {
		t.Fatalf("delta occupancy %v, want [0 5]", d.OccupancyNs)
	}
	if d.Workers[0].Iters != 6 || d.Workers[1].BusyNs != 5 {
		t.Fatalf("delta workers wrong: %+v", d.Workers)
	}

	sum := prev.Add(d)
	if sum.Chunks != cur.Chunks || sum.Iters != cur.Iters || sum.BusyNs != cur.BusyNs {
		t.Fatalf("prev.Add(delta) != cur: %+v vs %+v", sum.Counters, cur.Counters)
	}
	// Adding a zero snapshot (nil slices) must size up gracefully.
	z := Snapshot{}.Add(cur)
	if z.Chunks != cur.Chunks || len(z.OccupancyNs) != 2 || len(z.Workers) != 2 {
		t.Fatalf("zero.Add(cur) wrong: %+v", z)
	}
}

// TestSnapshotConcurrentScrape exercises invariant 4 under the race
// detector: a scraper reading while the owner counts must be race-free and
// observe per-counter monotonic values.
func TestSnapshotConcurrentScrape(t *testing.T) {
	m := New(1, 1, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.Cell(0).Grant(1, TierHome)
			m.Cell(0).Busy(2)
		}
	}()
	var last Snapshot
	for i := 0; i < 1000; i++ {
		s := m.Snapshot()
		if s.Chunks < last.Chunks || s.BusyNs < last.BusyNs {
			t.Errorf("counter went backwards: %+v after %+v", s.Counters, last.Counters)
			break
		}
		last = s
	}
	close(stop)
	wg.Wait()
}
