package fair

import (
	"fmt"
	"strconv"
	"strings"
)

// Class is one per-tenant QoS tier of the service front end: a human name
// ("gold") bound to the fairness weight its loops are submitted with. The
// policies themselves stay weight-based — a class is purely the service
// tier's naming layer over Candidate.Weight, so the same wrr/sf-aware
// machinery serves both hand-assigned weights and tiered tenants.
type Class struct {
	// Name identifies the tier in reports.
	Name string
	// Weight is the fleet share loops of this tier request (>= 1).
	Weight int
}

// ParseClasses parses a QoS tier list of the form
// "gold:8,silver:4,bronze:1" into ordered classes. Names must be non-empty
// and unique; weights must be positive integers. A single bare name
// ("std") gets weight 1.
func ParseClasses(s string) ([]Class, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("fair: empty QoS class list")
	}
	parts := strings.Split(s, ",")
	classes := make([]Class, 0, len(parts))
	seen := make(map[string]bool, len(parts))
	for _, part := range parts {
		name, weightText, hasWeight := strings.Cut(strings.TrimSpace(part), ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("fair: QoS class %q has no name", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("fair: duplicate QoS class %q", name)
		}
		seen[name] = true
		weight := 1
		if hasWeight {
			w, err := strconv.Atoi(strings.TrimSpace(weightText))
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("fair: QoS class %q has invalid weight %q (want a positive integer)", name, weightText)
			}
			weight = w
		}
		classes = append(classes, Class{Name: name, Weight: weight})
	}
	return classes, nil
}
