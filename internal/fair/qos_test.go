package fair

import (
	"reflect"
	"testing"
)

func TestParseClasses(t *testing.T) {
	got, err := ParseClasses("gold:8, silver:4 ,bronze:1")
	if err != nil {
		t.Fatal(err)
	}
	want := []Class{{"gold", 8}, {"silver", 4}, {"bronze", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseClasses = %+v, want %+v", got, want)
	}
	// A bare name defaults to weight 1.
	got, err = ParseClasses("std")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []Class{{"std", 1}}) {
		t.Fatalf("bare class = %+v", got)
	}
}

func TestParseClassesErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"  ",
		"gold:0",
		"gold:-2",
		"gold:x",
		"gold:8,gold:4", // duplicate name
		":3",            // no name
		"gold:8,,bronze:1",
	} {
		if _, err := ParseClasses(s); err == nil {
			t.Errorf("ParseClasses(%q) accepted an invalid list", s)
		}
	}
}
