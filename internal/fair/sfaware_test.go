package fair

import "testing"

// sfCand builds a candidate with a two-type SF table (big, small) as seen
// by a worker on core type ct.
func sfCand(id uint64, ct int, sf ...float64) Candidate {
	return Candidate{ID: id, Weight: 1, CoreType: ct, SF: sf}
}

func TestWRRObserveAdvancesCursor(t *testing.T) {
	// The regression of the single-candidate fast path: a grant made
	// outside Pick must advance the cursor, so the first Pick after a
	// single-to-multi transition does NOT hand the worker the loop it has
	// been serving all along.
	p := NewWeightedRoundRobin(1).(*weightedRoundRobin)
	p.Observe(0, Candidate{ID: 1})
	if idx, _ := p.Pick(0, cands(1, 2)); cands(1, 2)[idx].ID != 2 {
		t.Fatal("pick after Observe(1) should advance to loop 2")
	}
	// Without Observe the stale cursor replays loop 1 first — the skew the
	// hook removes. (Fresh policy: first pick is the oldest loop.)
	q := NewWeightedRoundRobin(1)
	if idx, _ := q.Pick(0, cands(1, 2)); cands(1, 2)[idx].ID != 1 {
		t.Fatal("fresh cursor should start at the oldest loop")
	}
}

func TestWRRRetirePurgesCursors(t *testing.T) {
	p := NewWeightedRoundRobin(1).(*weightedRoundRobin)
	p.Pick(0, cands(5))
	p.Pick(1, cands(5, 8)) // worker 1 cursor at 5 too
	p.Observe(2, Candidate{ID: 8})
	p.Retire(5)
	if len(p.last) != 1 {
		t.Fatalf("cursor map holds %d entries after Retire(5), want 1", len(p.last))
	}
	if p.last[2] != 8 {
		t.Fatal("Retire dropped a cursor for a live loop")
	}
}

func TestSFAwareFallsBackUntilStabilized(t *testing.T) {
	p := NewSFAware(1, 0)
	// Loop 2's estimate is not published yet: plain WRR over all, in
	// admission order.
	cs := []Candidate{sfCand(1, 0, 3.0, 1.0), {ID: 2, Weight: 1, CoreType: 0}}
	var got []uint64
	for i := 0; i < 4; i++ {
		idx, _ := p.Pick(0, cs)
		got = append(got, cs[idx].ID)
	}
	want := []uint64{1, 2, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pre-stabilization picks %v, want %v", got, want)
		}
	}
}

func TestSFAwareFallsBackOnNarrowSpread(t *testing.T) {
	p := NewSFAware(1, 1.5)
	// Spread 1.2 < 1.5: the loops speed up alike, so the big-core worker
	// still serves both.
	cs := []Candidate{sfCand(1, 0, 1.2, 1.0), sfCand(2, 0, 1.0, 1.0)}
	seen := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		idx, _ := p.Pick(0, cs)
		seen[cs[idx].ID] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("narrow spread should round-robin both loops, served %v", seen)
	}
}

func TestSFAwareSteersByCoreType(t *testing.T) {
	p := NewSFAware(1, 0)
	mk := func(ct int) []Candidate {
		return []Candidate{
			sfCand(1, ct, 4.0, 1.0), // high SF: wants big cores
			sfCand(2, ct, 1.05, 1.0),
			sfCand(3, ct, 3.8, 1.0),
		}
	}
	// A big-core worker (type 0) only ever serves the high-SF loops.
	for i := 0; i < 6; i++ {
		idx, _ := p.Pick(0, mk(0))
		if id := mk(0)[idx].ID; id == 2 {
			t.Fatal("big-core worker was handed the SF~1 loop")
		}
	}
	// A small-core worker (type 1) only ever serves the SF~1 loop.
	for i := 0; i < 4; i++ {
		idx, _ := p.Pick(1, mk(1))
		if id := mk(1)[idx].ID; id != 2 {
			t.Fatalf("small-core worker was handed high-SF loop %d", id)
		}
	}
	// Burst semantics carry over from WRR: weight x quantum.
	q := NewSFAware(4, 0)
	cs := mk(0)
	cs[0].Weight = 3
	idx, burst := q.Pick(0, cs)
	if cs[idx].ID != 1 || burst != 12 {
		t.Fatalf("pick = loop %d burst %d, want loop 1 burst 12", cs[idx].ID, burst)
	}
}

func TestSFAwareRotatesWithinClass(t *testing.T) {
	p := NewSFAware(1, 0)
	cs := []Candidate{
		sfCand(1, 0, 4.0, 1.0),
		sfCand(2, 0, 1.0, 1.0),
		sfCand(3, 0, 3.5, 1.0),
	}
	var got []uint64
	for i := 0; i < 4; i++ {
		idx, _ := p.Pick(0, cs)
		got = append(got, cs[idx].ID)
	}
	want := []uint64{1, 3, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("big-core rotation %v, want %v", got, want)
		}
	}
}

func TestSFAwareMiddleTypeServesAll(t *testing.T) {
	// On a three-type platform the middle type has no steering preference.
	p := NewSFAware(1, 0)
	cs := []Candidate{
		sfCand(1, 1, 4.0, 2.0, 1.0),
		sfCand(2, 1, 1.0, 1.0, 1.0),
	}
	seen := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		idx, _ := p.Pick(0, cs)
		seen[cs[idx].ID] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("middle-type worker should serve all loops, served %v", seen)
	}
}

func TestSFAwareName(t *testing.T) {
	if got := NewSFAware(0, 0).Name(); got != "sf-aware" {
		t.Errorf("Name() = %q", got)
	}
	// The optional hooks must be wired (the registry type-asserts them).
	var p Policy = NewSFAware(0, 0)
	if _, ok := p.(Observer); !ok {
		t.Error("SFAware does not implement Observer")
	}
	if _, ok := p.(Retirer); !ok {
		t.Error("SFAware does not implement Retirer")
	}
}
