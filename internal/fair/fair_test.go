package fair

import "testing"

func cands(ids ...uint64) []Candidate {
	cs := make([]Candidate, len(ids))
	for i, id := range ids {
		cs[i] = Candidate{ID: id, Weight: 1}
	}
	return cs
}

func TestWRRCyclesInAdmissionOrder(t *testing.T) {
	p := NewWeightedRoundRobin(1)
	cs := cands(3, 7, 9)
	var got []uint64
	for i := 0; i < 6; i++ {
		idx, burst := p.Pick(0, cs)
		if burst != 1 {
			t.Fatalf("burst = %d, want 1 (weight 1, quantum 1)", burst)
		}
		got = append(got, cs[idx].ID)
	}
	want := []uint64{3, 7, 9, 3, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pick sequence %v, want %v", got, want)
		}
	}
}

func TestWRRPerWorkerCursorsIndependent(t *testing.T) {
	p := NewWeightedRoundRobin(1)
	cs := cands(1, 2)
	if idx, _ := p.Pick(0, cs); cs[idx].ID != 1 {
		t.Fatal("worker 0 first pick should be the oldest loop")
	}
	// Worker 5 has its own cursor: it also starts at the oldest loop.
	if idx, _ := p.Pick(5, cs); cs[idx].ID != 1 {
		t.Fatal("worker 5 first pick should be the oldest loop")
	}
	if idx, _ := p.Pick(0, cs); cs[idx].ID != 2 {
		t.Fatal("worker 0 second pick should advance")
	}
}

func TestWRRBurstScalesWithWeight(t *testing.T) {
	p := NewWeightedRoundRobin(4)
	cs := []Candidate{{ID: 1, Weight: 3}}
	if _, burst := p.Pick(0, cs); burst != 12 {
		t.Fatalf("burst = %d, want weight 3 x quantum 4 = 12", burst)
	}
	// Non-positive weights are clamped to 1.
	cs[0].Weight = 0
	if _, burst := p.Pick(0, cs); burst != 4 {
		t.Fatalf("burst = %d, want 4 for clamped weight", burst)
	}
}

func TestWRRSurvivesCandidateRemoval(t *testing.T) {
	p := NewWeightedRoundRobin(1)
	p.Pick(0, cands(1, 2, 3)) // cursor at 1
	// Loop 2 completed; the next pick after 1 is 3.
	if idx, _ := p.Pick(0, cands(1, 3)); idx != 1 {
		t.Fatal("pick should skip the removed loop and take the next ID")
	}
	// Everything after the cursor completed: wrap to the oldest.
	if idx, _ := p.Pick(0, cands(1)); idx != 0 {
		t.Fatal("pick should wrap when no higher ID remains")
	}
}

func TestWRRDefaultQuantum(t *testing.T) {
	p := NewWeightedRoundRobin(0)
	if _, burst := p.Pick(0, cands(1)); burst != DefaultQuantum {
		t.Fatalf("burst = %d, want DefaultQuantum %d", burst, DefaultQuantum)
	}
}

func TestFCFSHeadOfLine(t *testing.T) {
	p := NewFCFS()
	idx, burst := p.Pick(3, cands(10, 11, 12))
	if idx != 0 {
		t.Fatalf("FCFS picked index %d, want the oldest loop", idx)
	}
	if burst < 1<<20 {
		t.Fatalf("FCFS burst = %d, want effectively unbounded", burst)
	}
}

func TestPolicyNames(t *testing.T) {
	if got := NewWeightedRoundRobin(0).Name(); got != "wrr" {
		t.Errorf("WRR Name() = %q", got)
	}
	if got := NewFCFS().Name(); got != "fcfs" {
		t.Errorf("FCFS Name() = %q", got)
	}
}
