// Package fair implements the loop-fairness policies of the multi-loop
// executor. When several parallel loops (typically loop instances from
// different requests) are runnable on one worker fleet, a policy decides
// which loop a free worker serves next and for how many consecutive
// scheduler calls (the burst). The policies are engine agnostic: the
// real-goroutine registry (internal/rt) and the discrete-event simulator
// (internal/sim) consult the same implementations, so fairness behaviour
// validated in virtual time carries over to real execution.
//
// Fairness here is deliberately chunk-granular: a worker is never preempted
// mid-chunk, matching the paper's model where the runtime system is only
// entered between chunks. A loop's share of the fleet is therefore
// proportional to its weight only in scheduler-call terms; schedulers that
// hand out very large assignments (AID-static's one-shot allotment) make
// the share approximate, exactly as a non-preemptive runtime would.
package fair

// Candidate describes one runnable loop to a policy. Candidate slices are
// always presented in admission order (ascending ID).
type Candidate struct {
	// ID is the loop's admission-ordered identifier, unique within a fleet.
	ID uint64
	// Weight is the loop's relative fleet share (>= 1).
	Weight int
}

// Policy selects the next loop for a free worker. Implementations need not
// be safe for concurrent use: both execution engines invoke Pick under
// their own serialization (the registry's control-plane lock, the
// simulator's event loop), and a policy instance must not be shared between
// fleets.
type Policy interface {
	// Pick returns the index into cands of the loop that worker tid should
	// serve next, plus the number of consecutive scheduler calls (burst >=
	// 1) to issue to that loop before re-picking. cands is never empty.
	Pick(tid int, cands []Candidate) (idx, burst int)
	// Name identifies the policy in reports.
	Name() string
}

// DefaultQuantum is the number of scheduler calls a weight-1 loop receives
// per weighted-round-robin turn. A quantum above 1 amortizes the per-pick
// control-plane cost over several lock-free scheduler calls without
// changing the relative shares (burst = weight x quantum).
const DefaultQuantum = 8

// weightedRoundRobin cycles each worker independently through the runnable
// loops in admission order, serving weight x quantum scheduler calls per
// turn. Per-worker cursors keep the policy deterministic for a fixed
// sequence of Pick calls, which the virtual-time fairness tests rely on.
type weightedRoundRobin struct {
	quantum int
	last    map[int]uint64 // per worker: ID served on the previous turn
}

// NewWeightedRoundRobin returns the default fairness policy: weighted
// round-robin over the runnable loops with the given per-turn quantum
// (0 selects DefaultQuantum). A loop of weight w receives w x quantum
// consecutive scheduler calls per turn, so relative weights set relative
// fleet shares.
func NewWeightedRoundRobin(quantum int) Policy {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	return &weightedRoundRobin{quantum: quantum, last: make(map[int]uint64)}
}

// Name implements Policy.
func (w *weightedRoundRobin) Name() string { return "wrr" }

// Pick implements Policy: the first candidate whose ID follows the one this
// worker served last, wrapping to the oldest loop.
func (w *weightedRoundRobin) Pick(tid int, cands []Candidate) (int, int) {
	idx := 0
	if last, seen := w.last[tid]; seen {
		for i, c := range cands {
			if c.ID > last {
				idx = i
				break
			}
		}
	}
	c := cands[idx]
	w.last[tid] = c.ID
	weight := c.Weight
	if weight < 1 {
		weight = 1
	}
	return idx, weight * w.quantum
}

// fcfs is the run-to-completion baseline: every worker serves the oldest
// runnable loop until that loop has no work left for it. It minimizes
// per-loop completion time for the head of the queue at the cost of
// head-of-line blocking for everyone behind it — the comparison point that
// motivates weighted round-robin.
type fcfs struct{}

// NewFCFS returns the first-come-first-served policy.
func NewFCFS() Policy { return fcfs{} }

// Name implements Policy.
func (fcfs) Name() string { return "fcfs" }

// Pick implements Policy: always the oldest loop, with an effectively
// unbounded burst (the caller re-picks when the loop retires the worker).
func (fcfs) Pick(int, []Candidate) (int, int) { return 0, 1 << 30 }
