// Package fair implements the loop-fairness policies of the multi-loop
// executor. When several parallel loops (typically loop instances from
// different requests) are runnable on one worker fleet, a policy decides
// which loop a free worker serves next and for how many consecutive
// scheduler calls (the burst). The policies are engine agnostic: the
// real-goroutine registry (internal/rt) and the discrete-event simulator
// (internal/sim) consult the same implementations, so fairness behaviour
// validated in virtual time carries over to real execution.
//
// Fairness here is deliberately chunk-granular: a worker is never preempted
// mid-chunk, matching the paper's model where the runtime system is only
// entered between chunks. A loop's share of the fleet is therefore
// proportional to its weight only in scheduler-call terms; schedulers that
// hand out very large assignments (AID-static's one-shot allotment) make
// the share approximate, exactly as a non-preemptive runtime would.
//
// # Speedup-factor-aware selection
//
// Beyond weights, candidates carry the asymmetry signal the paper's
// schedulers estimate online: the calling worker's core type and each
// loop's live per-core-type speedup factor (SF) table. The SFAware policy
// (NewSFAware) uses them to steer big-core bursts toward the loops that
// profit most from big cores and small-core bursts toward the loops that
// profit least, while degenerating to plain weighted round-robin whenever
// the estimates cannot support the distinction:
//
//   - Stabilization. A loop's estimate counts as stabilized once its
//     scheduler has published a non-nil SF table (the end of the AID
//     sampling phase). Until every candidate is stabilized the policy
//     serves all loops under WRR — steering before the sampling phases
//     complete would starve exactly the measurements it depends on.
//   - Spread threshold. With all estimates live, steering engages only if
//     maxSF >= spread * minSF across the candidates (spread defaults to
//     DefaultSpread): when every loop speeds up alike, core placement
//     cannot matter and WRR's shares are optimal.
//   - Steering. Candidates partition at the geometric mid
//     sqrt(minSF*maxSF): big-core workers serve the high-SF side,
//     small-core workers the low-SF side, and the WRR cursor rotates
//     within the side so weighted shares are preserved per class. A side
//     is never empty (the extremes land on opposite sides), and a served
//     loop always finishes: steering delays a loop's turn on the wrong
//     core class, it never removes the loop from its own class.
package fair

// Candidate describes one runnable loop to a policy. Slice order is
// unspecified (the registry's runnable list is compacted by swap-remove,
// so it is NOT admission order); policies that care about age must order
// by ID, which is admission-ordered by construction.
type Candidate struct {
	// ID is the loop's admission-ordered identifier, unique within a fleet.
	ID uint64
	// Weight is the loop's relative fleet share (>= 1).
	Weight int
	// CoreType is the core type (platform cluster index) of the worker the
	// Pick call is selecting for — the same value for every candidate of
	// one call. Engines that do not model core types leave it 0.
	CoreType int
	// SF is the loop's live per-core-type speedup-factor estimate, indexed
	// by core type and relative to the slowest type (see core.SFEstimator),
	// or nil while the loop's scheduler has not published one. Policies
	// must treat it as read-only.
	SF []float64
}

// Policy selects the next loop for a free worker. Implementations need not
// be safe for concurrent use: both execution engines invoke Pick under
// their own serialization (the registry's control-plane lock, the
// simulator's event loop), and a policy instance must not be shared between
// fleets.
type Policy interface {
	// Pick returns the index into cands of the loop that worker tid should
	// serve next, plus the number of consecutive scheduler calls (burst >=
	// 1) to issue to that loop before re-picking. cands is never empty.
	Pick(tid int, cands []Candidate) (idx, burst int)
	// Name identifies the policy in reports.
	Name() string
}

// Observer is an optional Policy extension: engines that bypass Pick on a
// fast path (the registry's single-candidate unbounded burst) call Observe
// instead, so stateful policies keep their cursors in sync with what the
// worker actually served and the first picks after a single-to-multi
// tenant transition are not skewed by a stale cursor.
type Observer interface {
	// Observe records that worker tid was handed candidate c outside Pick.
	Observe(tid int, c Candidate)
}

// Retirer is an optional Policy extension: engines call Retire when a loop
// leaves the runnable set, letting stateful policies drop per-worker state
// that references it.
type Retirer interface {
	// Retire drops any internal state referencing loop id.
	Retire(id uint64)
}

// DefaultQuantum is the number of scheduler calls a weight-1 loop receives
// per weighted-round-robin turn. A quantum above 1 amortizes the per-pick
// control-plane cost over several lock-free scheduler calls without
// changing the relative shares (burst = weight x quantum).
const DefaultQuantum = 8

// weightedRoundRobin cycles each worker independently through the runnable
// loops in admission order, serving weight x quantum scheduler calls per
// turn. Per-worker cursors keep the policy deterministic for a fixed
// sequence of Pick calls, which the virtual-time fairness tests rely on.
type weightedRoundRobin struct {
	quantum int
	last    map[int]uint64 // per worker: ID served on the previous turn
}

// NewWeightedRoundRobin returns the default fairness policy: weighted
// round-robin over the runnable loops with the given per-turn quantum
// (0 selects DefaultQuantum). A loop of weight w receives w x quantum
// consecutive scheduler calls per turn, so relative weights set relative
// fleet shares.
func NewWeightedRoundRobin(quantum int) Policy {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	return &weightedRoundRobin{quantum: quantum, last: make(map[int]uint64)}
}

// Name implements Policy.
func (w *weightedRoundRobin) Name() string { return "wrr" }

// Pick implements Policy: the lowest candidate ID above the one this
// worker served last, wrapping to the oldest (lowest-ID) loop. Selection
// is by ID, never by slice position, so it is independent of the order the
// engine presents candidates in.
func (w *weightedRoundRobin) Pick(tid int, cands []Candidate) (int, int) {
	last, seen := w.last[tid]
	idx, oldest := -1, 0
	for i, c := range cands {
		if c.ID < cands[oldest].ID {
			oldest = i
		}
		if seen && c.ID > last && (idx < 0 || c.ID < cands[idx].ID) {
			idx = i
		}
	}
	if idx < 0 {
		idx = oldest
	}
	c := cands[idx]
	w.last[tid] = c.ID
	weight := c.Weight
	if weight < 1 {
		weight = 1
	}
	return idx, weight * w.quantum
}

// Observe implements Observer: a grant made outside Pick advances the
// worker's cursor exactly as a Pick of the same loop would, so round-robin
// resumes from the served loop when more tenants arrive.
func (w *weightedRoundRobin) Observe(tid int, c Candidate) {
	w.last[tid] = c.ID
}

// Retire implements Retirer: cursors pointing at the retired loop are
// dropped, so the map holds no entries for loops that no longer exist.
func (w *weightedRoundRobin) Retire(id uint64) {
	for tid, last := range w.last {
		if last == id {
			delete(w.last, tid)
		}
	}
}

// fcfs is the run-to-completion baseline: every worker serves the oldest
// runnable loop until that loop has no work left for it. It minimizes
// per-loop completion time for the head of the queue at the cost of
// head-of-line blocking for everyone behind it — the comparison point that
// motivates weighted round-robin.
type fcfs struct{}

// NewFCFS returns the first-come-first-served policy.
func NewFCFS() Policy { return fcfs{} }

// Name implements Policy.
func (fcfs) Name() string { return "fcfs" }

// Pick implements Policy: always the oldest (lowest-ID) loop, with an
// effectively unbounded burst (the caller re-picks when the loop retires
// the worker). Oldest is found by ID — candidate slice order carries no
// age information.
func (fcfs) Pick(_ int, cands []Candidate) (int, int) {
	idx := 0
	for i, c := range cands {
		if c.ID < cands[idx].ID {
			idx = i
		}
	}
	return idx, 1 << 30
}
