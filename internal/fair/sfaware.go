package fair

import "math"

// DefaultSpread is the minimum max/min speedup-factor ratio across the
// candidates at which SFAware starts steering by core type. Below it the
// loops profit from big cores roughly alike (the paper's SF estimates are
// noisy at the few-percent level), so WRR shares are kept unchanged.
const DefaultSpread = 1.25

// sfAware is the speedup-factor-aware policy described in the package doc:
// weighted round-robin within the SF class matched to the calling worker's
// core type, plain weighted round-robin whenever the estimates cannot
// support steering.
type sfAware struct {
	wrr    weightedRoundRobin
	spread float64

	sub    []Candidate // scratch: the steering class presented to the cursor
	subIdx []int       // scratch: sub[i]'s index in the original cands
}

// NewSFAware returns the SF-aware fairness policy. quantum is the WRR
// quantum (0 selects DefaultQuantum); spread is the steering threshold on
// maxSF/minSF (values <= 1 select DefaultSpread).
func NewSFAware(quantum int, spread float64) Policy {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	if spread <= 1 {
		spread = DefaultSpread
	}
	return &sfAware{
		wrr:    weightedRoundRobin{quantum: quantum, last: make(map[int]uint64)},
		spread: spread,
	}
}

// Name implements Policy.
func (p *sfAware) Name() string { return "sf-aware" }

// bigSF reduces a per-core-type SF table to the candidate's ranking key:
// the speedup its loop gets from the fastest core type. Tables are
// relative to the slowest type, so this is the max entry.
func bigSF(sf []float64) float64 {
	best := 0.0
	for _, v := range sf {
		if v > best {
			best = v
		}
	}
	return best
}

// Pick implements Policy.
func (p *sfAware) Pick(tid int, cands []Candidate) (int, int) {
	// Fall back to WRR over all candidates until every loop has published a
	// stabilized estimate: steering on partial information would starve the
	// very sampling phases the estimates come from.
	minSF, maxSF := math.Inf(1), 0.0
	ntypes := 0
	for _, c := range cands {
		if len(c.SF) == 0 {
			return p.wrr.Pick(tid, cands)
		}
		if len(c.SF) > ntypes {
			ntypes = len(c.SF)
		}
		s := bigSF(c.SF)
		if s < minSF {
			minSF = s
		}
		if s > maxSF {
			maxSF = s
		}
	}
	if ntypes < 2 || maxSF < p.spread*minSF {
		// One core type, or the loops speed up alike: placement can't help.
		return p.wrr.Pick(tid, cands)
	}
	// Classify the calling worker against the platform's type range: low
	// cluster indexes are the fast cores under the BS convention. A worker
	// on the exact middle type (odd type counts) has no preference.
	mid := float64(ntypes-1) / 2
	ct := float64(cands[0].CoreType)
	if ct == mid {
		return p.wrr.Pick(tid, cands)
	}
	// Partition at the geometric mid: big-core workers take the high-SF
	// side, small-core workers the low-SF side. Both sides are non-empty
	// (the extremes are separated by at least the spread ratio).
	thresh := math.Sqrt(minSF * maxSF)
	p.sub, p.subIdx = p.sub[:0], p.subIdx[:0]
	for i, c := range cands {
		s := bigSF(c.SF)
		if (ct < mid && s >= thresh) || (ct > mid && s <= thresh) {
			p.sub = append(p.sub, c)
			p.subIdx = append(p.subIdx, i)
		}
	}
	if len(p.sub) == 0 {
		return p.wrr.Pick(tid, cands)
	}
	idx, burst := p.wrr.Pick(tid, p.sub)
	return p.subIdx[idx], burst
}

// Observe implements Observer by delegating to the shared WRR cursor.
func (p *sfAware) Observe(tid int, c Candidate) { p.wrr.Observe(tid, c) }

// Retire implements Retirer by delegating to the shared WRR cursor.
func (p *sfAware) Retire(id uint64) { p.wrr.Retire(id) }
