// Package workloads models the 21 OpenMP benchmarks of the paper's
// evaluation (§5): seven NAS Parallel Benchmarks (input class B), three
// PARSEC 3.0 applications (native inputs) and eleven Rodinia applications
// (inputs scaled up per [42]).
//
// A workload is a sim.Program: an ordered list of serial phases and parallel
// loops, where each loop carries a trip count, a per-iteration cost model
// and an instruction-mix profile. The models are calibrated to the published
// per-application behaviour, not to the source code of the originals — the
// loop-scheduling phenomena under study depend only on loop shape:
//
//   - trip count and per-iteration cost (sets dynamic's overhead ratio);
//   - cost distribution across iterations (uniform / block-noisy / rising);
//   - instruction mix (sets the loop's big-to-small speedup factor);
//   - working-set footprint (sets LLC-contention SF compression, §5C);
//   - serial fraction (sets the static(BS) master-on-big advantage).
//
// Each constructor's comment records the behaviours from §5 that the model
// encodes, and the package test suite asserts the key ones.
package workloads

import (
	"fmt"

	"repro/internal/amp"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// Workload couples a modeled benchmark with its suite metadata.
type Workload struct {
	// Name is the benchmark's name as the paper spells it (e.g. "CG",
	// "blackscholes", "sradv1").
	Name string
	// Suite is "NPB", "PARSEC" or "Rodinia".
	Suite string
	// Program is the modeled phase structure.
	Program sim.Program
}

// loop assembles a LoopSpec phase with reps repetitions.
func loop(name string, ni int64, cost sim.CostModel, ilp, mem, fp float64, reps int) sim.Phase {
	return sim.Phase{
		Loop: &sim.LoopSpec{
			Name:    name,
			NI:      ni,
			Cost:    cost,
			Profile: amp.Profile{ILP: ilp, MemIntensity: mem, FootprintMB: fp},
		},
		Reps: reps,
	}
}

// serial assembles a serial phase. Serial sections are modeled as
// dependence-bound, low-ILP code (ILP 0.15), which puts the big-core serial
// acceleration near the ~2-2.6x the paper observes for static(BS) over
// static(SB) on serial-heavy programs (§5A).
func serial(units float64) sim.Phase {
	return sim.Phase{SerialUnits: units, SerialProfile: amp.Profile{ILP: 0.15}}
}

// uni is shorthand for a uniform cost model.
func uni(perIter float64) sim.CostModel { return sim.UniformCost{PerIter: perIter} }

// blocky is shorthand for block-correlated noisy cost.
func blocky(base, amp float64, blockLen int64, seed uint64) sim.CostModel {
	return sim.BlockNoisyCost{Base: base, Amp: amp, BlockLen: blockLen, Seed: seed}
}

// EP models NPB EP (Embarrassingly Parallel, class B): a single
// compute-bound parallel loop spanning the entire execution, with
// iterations of *roughly* — not exactly — equal cost (§2, §4.2: the mild
// cost variation is why AID-hybrid beats AID-static by ~10.5% on EP,
// Fig. 4). The random-number recurrences serialize the instruction stream
// (low exploitable ILP), so the loop's effective SF is moderate; the tiny
// memory component keeps the loop compute-bound, which is what makes the
// 2B-2S and 4S configurations of Fig. 1 complete in nearly the same time
// (no shared-resource coupling between core counts).
func EP() Workload {
	return Workload{
		Name:  "EP",
		Suite: "NPB",
		Program: sim.Program{
			Name: "EP",
			Phases: []sim.Phase{
				serial(2e6),
				loop("ep-main", 16384, blocky(120000, 0.35, 256, 0xE9), 0.25, 0.05, 0.1, 1),
			},
		},
	}
}

// BT models NPB BT (Block Tridiagonal solver): many distinct loop nests per
// time step whose instruction mixes differ widely — the paper measures SFs
// between ~1 and ~7.7 across BT's first 30 loops on Platform A and a narrow
// 1.7–2.2 band on Platform B (Fig. 2a/2b). The model generates 30 loops
// with seeded profile variety, repeated over time steps.
func BT() Workload {
	rng := xrand.New(0xB7)
	phases := []sim.Phase{serial(4e6)}
	for i := 0; i < 30; i++ {
		ilp := 0.1 + 0.55*rng.Float64()
		mem := 0.2 + 0.45*rng.Float64()
		fp := 0.1 + 0.3*rng.Float64()
		if i%9 == 3 {
			// A few loops are dense, vectorizable kernels: these produce
			// the high-SF outliers of Fig. 2a (up to ~7.7 on Platform A).
			ilp, mem = 0.93+0.07*rng.Float64(), 0.02+0.06*rng.Float64()
		}
		// NPB class B loop nests iterate a single grid dimension: around a
		// hundred expensive iterations each (the inner dimensions are the
		// loop body). Few-trip loops are what make large dynamic chunks
		// catastrophic in Fig. 8.
		ni := int64(96 + rng.Intn(80))
		cost := 150000 + 400000*rng.Float64()
		phases = append(phases,
			loop(fmt.Sprintf("bt-l%02d", i), ni, uni(cost), ilp, mem, fp, 4))
	}
	return Workload{Name: "BT", Suite: "NPB", Program: sim.Program{Name: "BT", Phases: phases}}
}

// CG models NPB CG (Conjugate Gradient): many short, mostly memory-bound
// loops with cheap iterations. The per-call overhead of dynamic(1) is large
// relative to iteration cost, which is why CG is one of the programs where
// dynamic "delivers poor performance" on Platform A and slows down by up to
// 2.86x on Platform B (§5A). Its offline SF still spans a wide range on A
// (Fig. 2c) because a few loops are compute-dense.
func CG() Workload {
	rng := xrand.New(0xC6)
	phases := []sim.Phase{serial(3e6)}
	for i := 0; i < 30; i++ {
		var ilp, mem float64
		if i%5 == 0 {
			ilp, mem = 0.92+0.08*rng.Float64(), 0.02+0.06*rng.Float64() // compute-dense
		} else {
			ilp, mem = 0.1+0.3*rng.Float64(), 0.45+0.35*rng.Float64() // sparse matvec
		}
		ni := int64(1500 + rng.Intn(2500))
		cost := 700 + 900*rng.Float64() // cheap iterations
		phases = append(phases,
			loop(fmt.Sprintf("cg-l%02d", i), ni, uni(cost), ilp, mem, 0.15, 7))
	}
	return Workload{Name: "CG", Suite: "NPB", Program: sim.Program{Name: "CG", Phases: phases}}
}

// FT models NPB FT (3-D FFT): loops whose iteration costs are uneven at a
// coarse granularity (transposes and butterfly stages touch very different
// data volumes), making dynamic clearly beneficial (§5A) — and AID-static
// still gains 24.5% over static(BS) because the asymmetry imbalance
// dominates the cost unevenness.
func FT() Workload {
	phases := []sim.Phase{serial(4e6)}
	for i := 0; i < 6; i++ {
		phases = append(phases,
			loop(fmt.Sprintf("ft-l%d", i), 256, blocky(234000, 2.5, 8, uint64(0xF7+i)), 0.45, 0.4, 0.3, 6))
	}
	return Workload{Name: "FT", Suite: "NPB", Program: sim.Program{Name: "FT", Phases: phases}}
}

// IS models NPB IS (Integer Sort): a short program of very cheap,
// memory-bound iterations across many loop invocations plus a visible
// serial fraction. dynamic(1)'s pool traffic swamps the tiny iterations —
// the paper measures a 1.93x slowdown vs static(SB) on Platform A (§5A) —
// while the serial phases give static(BS) a large win over static(SB).
func IS() Workload {
	phases := []sim.Phase{serial(3.5e7)}
	for i := 0; i < 3; i++ {
		phases = append(phases,
			loop(fmt.Sprintf("is-l%d", i), 10000, uni(230), 0.3, 0.55, 0.1, 14))
		phases = append(phases, serial(6e6))
	}
	return Workload{Name: "IS", Suite: "NPB", Program: sim.Program{Name: "IS", Phases: phases}}
}

// LU models NPB LU (Gauss-Seidel solver): mid-cost loops of moderate memory
// intensity; neither dynamic-hostile nor dynamic-friendly, with modest AID
// gains.
func LU() Workload {
	rng := xrand.New(0x17)
	phases := []sim.Phase{serial(3e6)}
	for i := 0; i < 20; i++ {
		ilp := 0.2 + 0.35*rng.Float64()
		mem := 0.3 + 0.3*rng.Float64()
		ni := int64(2000 + rng.Intn(2000))
		phases = append(phases,
			loop(fmt.Sprintf("lu-l%02d", i), ni, uni(3500+3000*rng.Float64()), ilp, mem, 0.2, 5))
	}
	return Workload{Name: "LU", Suite: "NPB", Program: sim.Program{Name: "LU", Phases: phases}}
}

// MG models NPB MG (Multigrid): V-cycle loops over grid levels whose trip
// counts shrink geometrically; the small coarse-level loops amplify
// runtime overhead, the large fine-level loops are bandwidth-bound.
func MG() Workload {
	phases := []sim.Phase{serial(3e6)}
	for lvl, ni := range []int64{512, 128, 32, 8} {
		cost := 28000.0
		phases = append(phases,
			loop(fmt.Sprintf("mg-lvl%d", lvl), ni, uni(cost), 0.35, 0.5, 0.35, 9))
	}
	return Workload{Name: "MG", Suite: "NPB", Program: sim.Program{Name: "MG", Phases: phases}}
}

// Blackscholes models PARSEC blackscholes (native input): a serial input
// parse followed by repeated sweeps of a single option-pricing loop. Two
// published behaviours drive the model: the serial phase rewards
// static(BS); and the loop is compute-dense per thread but cache-hungry in
// aggregate — its *offline* (single-thread) SF is high while the 8-thread SF
// collapses because per-thread LLC misses grow 3.6x (§5C, Fig. 9c). The
// 0.85 MB footprint triggers exactly that compression in the platform
// model. Iterations are cheap enough that dynamic(1) overhead hurts (§5A).
func Blackscholes() Workload {
	return Workload{
		Name:  "blackscholes",
		Suite: "PARSEC",
		Program: sim.Program{
			Name: "blackscholes",
			Phases: []sim.Phase{
				serial(5.5e7),
				loop("bs-price", 14000, uni(500), 0.92, 0.06, 0.85, 20),
			},
		},
	}
}

// Bodytrack models PARSEC bodytrack: medium-cost particle-weighting loops
// with mild content-dependent unevenness and a healthy compute mix; the
// paper reports one of the largest AID-static gains over static(BS) here
// (29.7%, §5A).
func Bodytrack() Workload {
	phases := []sim.Phase{serial(6e6)}
	for i := 0; i < 4; i++ {
		phases = append(phases,
			loop(fmt.Sprintf("bt-stage%d", i), 640, blocky(62500, 0.8, 16, uint64(0xB0+i)), 0.5, 0.3, 0.25, 8))
	}
	return Workload{Name: "bodytrack", Suite: "PARSEC", Program: sim.Program{Name: "bodytrack", Phases: phases}}
}

// Streamcluster models PARSEC streamcluster: long repeated distance
// computation loops, compute-bound with a small footprint, so the loop SF
// stays high even with 8 threads — the best case for asymmetric
// distribution. The paper's largest AID gains appear here: +30.7%
// (AID-static) and +56% (AID-hybrid) over static(BS), and +11% for
// AID-dynamic over dynamic(BS) (§5A).
func Streamcluster() Workload {
	return Workload{
		Name:  "streamcluster",
		Suite: "PARSEC",
		Program: sim.Program{
			Name: "streamcluster",
			Phases: []sim.Phase{
				serial(4e6),
				loop("sc-dist", 6000, uni(4200), 0.8, 0.2, 0.65, 16),
			},
		},
	}
}

// BFS models Rodinia bfs (scaled input): level-synchronous traversal with
// short irregular loops of cheap memory-bound iterations, plus a serial
// graph-load phase. dynamic performs poorly (overhead on tiny iterations,
// §5A) and static(BS) gains from the serial phase.
func BFS() Workload {
	rng := xrand.New(0xBF)
	phases := []sim.Phase{serial(4.5e7)}
	for lvl := 0; lvl < 10; lvl++ {
		ni := int64(600 + rng.Intn(3000))
		phases = append(phases,
			loop(fmt.Sprintf("bfs-lvl%d", lvl), ni, uni(520), 0.15, 0.65, 0.12, 8))
	}
	return Workload{Name: "bfs", Suite: "Rodinia", Program: sim.Program{Name: "bfs", Phases: phases}}
}

// BPTree models Rodinia b+tree: "the initialization phase (inherently
// sequential) takes the vast majority of the execution time" (§5A), so the
// dominant effect is accelerating the serial phase on a big core;
// loop-scheduling differences barely register.
func BPTree() Workload {
	return Workload{
		Name:  "bptree",
		Suite: "Rodinia",
		Program: sim.Program{
			Name: "bptree",
			Phases: []sim.Phase{
				serial(5e8),
				loop("bpt-search", 5000, uni(2600), 0.45, 0.4, 0.2, 4),
			},
		},
	}
}

// CFD models Rodinia cfd (CFDEuler3D): an unstructured-mesh flux solver
// with fairly expensive, moderately memory-bound iterations over many time
// steps.
func CFD() Workload {
	return Workload{
		Name:  "CFDEuler3D",
		Suite: "Rodinia",
		Program: sim.Program{
			Name: "CFDEuler3D",
			Phases: []sim.Phase{
				serial(8e6),
				loop("cfd-flux", 1000, uni(62500), 0.45, 0.35, 0.3, 9),
				loop("cfd-update", 1000, uni(15000), 0.3, 0.5, 0.3, 9),
			},
		},
	}
}

// Heartwall models Rodinia heartwall: per-frame tracking loops whose cost
// depends on image content (block-noisy), moderately compute-bound;
// dynamic and AID-dynamic do well.
func Heartwall() Workload {
	return Workload{
		Name:  "heartwall",
		Suite: "Rodinia",
		Program: sim.Program{
			Name: "heartwall",
			Phases: []sim.Phase{
				serial(7e6),
				loop("hw-track", 450, blocky(128000, 1.8, 9, 0x8A), 0.45, 0.3, 0.25, 7),
			},
		},
	}
}

// Hotspot models Rodinia hotspot: a 2-D thermal stencil — uniform
// iteration cost, mixed compute/memory profile, many time steps.
func Hotspot() Workload {
	return Workload{
		Name:  "hotspot",
		Suite: "Rodinia",
		Program: sim.Program{
			Name: "hotspot",
			Phases: []sim.Phase{
				serial(6e6),
				loop("hs-step", 1024, uni(30500), 0.4, 0.4, 0.22, 11),
			},
		},
	}
}

// Hotspot3D models Rodinia hotspot3D: the 3-D stencil variant — cheaper
// per-iteration work across more iterations, a visible serial setup (the
// static(BS) gain of §5A), and enough dynamic-friendly asymmetry that
// AID-dynamic beats dynamic(BS) by 16.8% on Platform A, the paper's largest
// AID-dynamic gain (§5A).
func Hotspot3D() Workload {
	return Workload{
		Name:  "hotspot3D",
		Suite: "Rodinia",
		Program: sim.Program{
			Name: "hotspot3D",
			Phases: []sim.Phase{
				serial(4.5e7),
				loop("hs3d-step", 11000, uni(1900), 0.45, 0.35, 0.18, 9),
			},
		},
	}
}

// LavaMD models Rodinia lavamd: N-body particle interactions within boxes —
// expensive compute-bound iterations, mild unevenness from neighbour counts.
// Benefits from dynamic distribution, so lower AID-hybrid percentages suit
// it (§5B lists lavamd among the programs favoured by pct≈60%).
func LavaMD() Workload {
	return Workload{
		Name:  "lavamd",
		Suite: "Rodinia",
		Program: sim.Program{
			Name: "lavamd",
			Phases: []sim.Phase{
				serial(5e6),
				loop("lava-boxes", 500, blocky(208000, 1.2, 8, 0x1A), 0.55, 0.25, 0.15, 5),
			},
		},
	}
}

// Leukocyte models Rodinia leukocyte: cell-detection loops whose per-cell
// cost varies heavily with image content — the canonical dynamic-friendly
// workload in the paper (§5A: dynamic "clearly beneficial"; §5B: favoured
// by lower AID-hybrid percentages).
func Leukocyte() Workload {
	return Workload{
		Name:  "leukocyte",
		Suite: "Rodinia",
		Program: sim.Program{
			Name: "leukocyte",
			Phases: []sim.Phase{
				serial(8e6),
				loop("leu-detect", 600, blocky(119000, 4.0, 10, 0x1E), 0.5, 0.3, 0.2, 6),
			},
		},
	}
}

// ParticleFilter models Rodinia particlefilter: its long-running loop's
// "final iterations are more heavyweight computationally than the first"
// (§5A), modeled with a rising linear cost. Consequences the paper calls
// out: static(BS) is *worse* than static(SB) — the BS mapping hands the
// expensive tail to small cores — AID-static inherits the same problem, and
// dynamic fixes it.
func ParticleFilter() Workload {
	const ni = 2000
	const base = 21000.0
	// Final iterations cost ~3.4x the first.
	const slope = 2.4 * base / ni
	return Workload{
		Name:  "particlefilter",
		Suite: "Rodinia",
		Program: sim.Program{
			Name: "particlefilter",
			Phases: []sim.Phase{
				serial(9e6),
				loop("pf-weights", ni, sim.LinearCost{Base: base, Slope: slope}, 0.4, 0.35, 0.18, 7),
			},
		},
	}
}

// SradV1 models Rodinia srad_v1: speckle-reducing anisotropic diffusion —
// two stencil loops per step, compute-leaning, where dynamic partially
// absorbs the asymmetry imbalance (§5A groups sradv1/sradv2 with bodytrack
// in that respect).
func SradV1() Workload {
	return Workload{
		Name:  "sradv1",
		Suite: "Rodinia",
		Program: sim.Program{
			Name: "sradv1",
			Phases: []sim.Phase{
				serial(5e6),
				loop("srad1-grad", 700, uni(46400), 0.5, 0.3, 0.2, 9),
				loop("srad1-diff", 700, uni(34400), 0.4, 0.4, 0.2, 9),
			},
		},
	}
}

// SradV2 models Rodinia srad_v2: the restructured variant with a more
// bandwidth-bound second kernel.
func SradV2() Workload {
	return Workload{
		Name:  "sradv2",
		Suite: "Rodinia",
		Program: sim.Program{
			Name: "sradv2",
			Phases: []sim.Phase{
				serial(5e6),
				loop("srad2-k1", 800, uni(40800), 0.45, 0.35, 0.25, 9),
				loop("srad2-k2", 800, uni(25600), 0.35, 0.5, 0.25, 9),
			},
		},
	}
}

// NPB returns the modeled NAS Parallel Benchmarks in the paper's order.
func NPB() []Workload {
	return []Workload{BT(), CG(), EP(), FT(), IS(), LU(), MG()}
}

// PARSEC returns the modeled PARSEC applications.
func PARSEC() []Workload {
	return []Workload{Blackscholes(), Bodytrack(), Streamcluster()}
}

// Rodinia returns the modeled Rodinia applications.
func Rodinia() []Workload {
	return []Workload{
		BFS(), BPTree(), CFD(), Heartwall(), Hotspot(), Hotspot3D(),
		LavaMD(), Leukocyte(), ParticleFilter(), SradV1(), SradV2(),
	}
}

// All returns all 21 workloads grouped by suite, in the paper's figure
// order (NPB, PARSEC, Rodinia).
func All() []Workload {
	out := NPB()
	out = append(out, PARSEC()...)
	out = append(out, Rodinia()...)
	return out
}

// ByName returns the workload with the given name.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}
