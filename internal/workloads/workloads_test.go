package workloads

import (
	"testing"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/sim"
)

func TestAllHas21UniqueValidWorkloads(t *testing.T) {
	all := All()
	if len(all) != 21 {
		t.Fatalf("All() returned %d workloads, want 21", len(all))
	}
	seen := map[string]bool{}
	suites := map[string]int{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		suites[w.Suite]++
		if err := w.Program.Validate(); err != nil {
			t.Errorf("workload %s invalid: %v", w.Name, err)
		}
	}
	if suites["NPB"] != 7 || suites["PARSEC"] != 3 || suites["Rodinia"] != 11 {
		t.Errorf("suite counts = %v, want NPB:7 PARSEC:3 Rodinia:11", suites)
	}
}

func TestByName(t *testing.T) {
	w, ok := ByName("streamcluster")
	if !ok || w.Name != "streamcluster" || w.Suite != "PARSEC" {
		t.Errorf("ByName(streamcluster) = %+v, %v", w, ok)
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName accepted unknown name")
	}
}

func TestFig2LoopCounts(t *testing.T) {
	// Fig. 2 plots the first 30 loops of BT and CG; the models must have at
	// least that many distinct loops.
	for _, name := range []string{"BT", "CG"} {
		w, _ := ByName(name)
		if got := len(w.Program.Loops()); got < 30 {
			t.Errorf("%s has %d loops, Fig. 2 needs >= 30", name, got)
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	// Workload constructors must be reproducible across calls.
	a, b := BT(), BT()
	la, lb := a.Program.Loops(), b.Program.Loops()
	if len(la) != len(lb) {
		t.Fatal("BT loop count varies between constructions")
	}
	for i := range la {
		if la[i].Profile != lb[i].Profile || la[i].NI != lb[i].NI {
			t.Errorf("BT loop %d differs between constructions", i)
		}
	}
}

// run executes a workload under the given schedule factory and binding.
func run(t *testing.T, w Workload, pl *amp.Platform, b amp.Binding, f sim.SchedulerFactory) int64 {
	t.Helper()
	res, err := sim.RunProgram(sim.Config{
		Platform: pl, NThreads: pl.NumCores(), Binding: b, Factory: f,
	}, w.Program)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return res.TotalNs
}

func statics(info core.LoopInfo) (core.Scheduler, error)  { return core.NewStatic(info) }
func dynamics(info core.LoopInfo) (core.Scheduler, error) { return core.NewDynamic(info, 1) }
func aidStatics(info core.LoopInfo) (core.Scheduler, error) {
	return core.NewAIDStatic(info, 1)
}
func aidDynamics(info core.LoopInfo) (core.Scheduler, error) {
	return core.NewAIDDynamic(info, 1, 5)
}

func TestISDynamicOverheadDisaster(t *testing.T) {
	// §5A: dynamic increases IS completion time ~1.9x vs static(SB) on A
	// (same binding, isolating the scheduler's own overhead).
	pl := amp.PlatformA()
	w, _ := ByName("IS")
	tStaticSB := run(t, w, pl, amp.BindSB, statics)
	tDynamicSB := run(t, w, pl, amp.BindSB, dynamics)
	ratio := float64(tDynamicSB) / float64(tStaticSB)
	if ratio < 1.4 {
		t.Errorf("IS dynamic(SB)/static(SB) = %.2f, want clearly > 1.4 (paper: 1.93)", ratio)
	}
}

func TestEPAIDStaticBeatsStatic(t *testing.T) {
	pl := amp.PlatformA()
	w, _ := ByName("EP")
	tStatic := run(t, w, pl, amp.BindBS, statics)
	tAID := run(t, w, pl, amp.BindBS, aidStatics)
	if tAID >= tStatic {
		t.Errorf("EP: AID-static (%d) should beat static(BS) (%d)", tAID, tStatic)
	}
}

func TestParticleFilterBSWorseThanSB(t *testing.T) {
	// §5A: particlefilter's rising iteration cost makes static(BS) *worse*
	// than static(SB) — the BS mapping hands the heavy tail to small cores.
	pl := amp.PlatformA()
	w, _ := ByName("particlefilter")
	tSB := run(t, w, pl, amp.BindSB, statics)
	tBS := run(t, w, pl, amp.BindBS, statics)
	if tBS <= tSB {
		t.Errorf("particlefilter: static(BS) (%d) should lose to static(SB) (%d)", tBS, tSB)
	}
}

func TestParticleFilterDynamicFixesIt(t *testing.T) {
	pl := amp.PlatformA()
	w, _ := ByName("particlefilter")
	tBS := run(t, w, pl, amp.BindBS, statics)
	tDyn := run(t, w, pl, amp.BindBS, dynamics)
	if tDyn >= tBS {
		t.Errorf("particlefilter: dynamic (%d) should beat static(BS) (%d)", tDyn, tBS)
	}
}

func TestBPTreeSerialDominated(t *testing.T) {
	// §5A: bptree's serial init dominates, so BS vs SB is a large win and
	// schedulers barely differ.
	pl := amp.PlatformA()
	w, _ := ByName("bptree")
	tSB := run(t, w, pl, amp.BindSB, statics)
	tBS := run(t, w, pl, amp.BindBS, statics)
	if float64(tSB)/float64(tBS) < 1.5 {
		t.Errorf("bptree: SB/BS = %.2f, want > 1.5 (serial acceleration)", float64(tSB)/float64(tBS))
	}
	tAID := run(t, w, pl, amp.BindBS, aidStatics)
	diff := float64(tAID-tBS) / float64(tBS)
	if diff > 0.1 || diff < -0.1 {
		t.Errorf("bptree: AID-static should be within 10%% of static(BS), got %+.1f%%", diff*100)
	}
}

func TestBlackscholesOfflineSFBias(t *testing.T) {
	// §5C/Fig. 9c: blackscholes' offline (single-thread) SF is much higher
	// than the SF under 8-thread LLC contention on Platform A.
	pl := amp.PlatformA()
	w, _ := ByName("blackscholes")
	var priceLoop sim.LoopSpec
	for _, l := range w.Program.Loops() {
		if l.Name == "bs-price" {
			priceLoop = l
		}
	}
	if priceLoop.Name == "" {
		t.Fatal("bs-price loop not found")
	}
	offline, err := sim.MeasureLoopSF(pl, priceLoop)
	if err != nil {
		t.Fatal(err)
	}
	online := pl.SF(priceLoop.Profile, 4, 4)
	if offline < 4 {
		t.Errorf("blackscholes offline SF = %.2f, want high (paper shows ~5-6)", offline)
	}
	if offline/online < 1.8 {
		t.Errorf("offline/online SF = %.2f/%.2f; contention compression too weak", offline, online)
	}
}

func TestStreamclusterLargeAIDGain(t *testing.T) {
	// §5A: streamcluster shows the paper's largest AID-static gain (~30%).
	pl := amp.PlatformA()
	w, _ := ByName("streamcluster")
	tStatic := run(t, w, pl, amp.BindBS, statics)
	tAID := run(t, w, pl, amp.BindBS, aidStatics)
	gain := float64(tStatic)/float64(tAID) - 1
	if gain < 0.15 {
		t.Errorf("streamcluster AID-static gain = %.1f%%, want substantial (paper: 30.7%%)", gain*100)
	}
}

func TestLeukocyteDynamicFriendly(t *testing.T) {
	// §5A: leukocyte's uneven iterations make dynamic clearly beneficial.
	pl := amp.PlatformA()
	w, _ := ByName("leukocyte")
	tStatic := run(t, w, pl, amp.BindBS, statics)
	tDyn := run(t, w, pl, amp.BindBS, dynamics)
	if tDyn >= tStatic {
		t.Errorf("leukocyte: dynamic (%d) should beat static(BS) (%d)", tDyn, tStatic)
	}
}

func TestAIDDynamicNeverCatastrophic(t *testing.T) {
	// AID-dynamic's purpose: keep dynamic's benefits without its overhead
	// blowups. Across all workloads on Platform B (where the paper sees
	// dynamic slow down up to 2.86x), AID-dynamic must stay within a sane
	// band of the static(BS) baseline.
	pl := amp.PlatformB()
	for _, w := range All() {
		tStatic := run(t, w, pl, amp.BindBS, statics)
		tAIDDyn := run(t, w, pl, amp.BindBS, aidDynamics)
		if ratio := float64(tAIDDyn) / float64(tStatic); ratio > 1.35 {
			t.Errorf("%s: AID-dynamic/static(BS) = %.2f on Platform B, too slow", w.Name, ratio)
		}
	}
}

func TestAllWorkloadsRunUnderAllAIDSchedulers(t *testing.T) {
	// Smoke: every workload completes under every AID scheduler on both
	// platforms (coverage is asserted inside the scheduler tests; here we
	// care that full programs do not wedge or error).
	for _, pl := range []*amp.Platform{amp.PlatformA(), amp.PlatformB()} {
		for _, w := range All() {
			for _, f := range []sim.SchedulerFactory{aidStatics, aidDynamics,
				func(info core.LoopInfo) (core.Scheduler, error) {
					return core.NewAIDHybrid(info, 1, 0.8)
				}} {
				if total := run(t, w, pl, amp.BindBS, f); total <= 0 {
					t.Errorf("%s on %s: non-positive completion time", w.Name, pl.Name)
				}
			}
		}
	}
}
