package repro

import (
	"testing"

	"repro/internal/amp"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Ablation benchmarks quantify the individual design decisions called out
// in DESIGN.md by running the same workload with one mechanism disabled and
// reporting the completion-time ratio (ablated / full; > 1 means the
// mechanism helps).

// runWorkload executes one workload on Platform A under a factory.
func runWorkload(b *testing.B, name string, f sim.SchedulerFactory) float64 {
	b.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		b.Fatalf("workload %s missing", name)
	}
	res, err := sim.RunProgram(sim.Config{
		Platform: amp.PlatformA(),
		NThreads: 8,
		Binding:  amp.BindBS,
		Factory:  f,
	}, w.Program)
	if err != nil {
		b.Fatal(err)
	}
	return float64(res.TotalNs)
}

// BenchmarkAblationTailSwitch measures the Fig. 5 end-of-loop dynamic(m)
// switch: AID-dynamic with a large Major chunk on BT (few-iteration loops),
// with and without the switch. Without it, a thread can strand the last
// R·M-sized allotments and recreate exactly the end-of-loop imbalance that
// Fig. 8 shows for plain dynamic with large chunks.
func BenchmarkAblationTailSwitch(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		full := runWorkload(b, "BT", func(info core.LoopInfo) (core.Scheduler, error) {
			return core.NewAIDDynamic(info, 1, 30)
		})
		ablated := runWorkload(b, "BT", func(info core.LoopInfo) (core.Scheduler, error) {
			s, err := core.NewAIDDynamic(info, 1, 30)
			if err != nil {
				return nil, err
			}
			s.SetAblation(true, false)
			return s, nil
		})
		ratio = ablated / full
	}
	b.ReportMetric(ratio, "no-tail/full-time-ratio")
}

// BenchmarkAblationSMClamp measures the per-phase smoothing-factor bound on
// a block-noisy workload (leukocyte, heavy-tailed per-cell cost). With the
// nominal-allotment rescaling in place the bound is rarely binding — a
// ratio of 1.0 documents that it is pure insurance (no cost when inactive);
// it exists to stop R oscillation if a phase measurement is corrupted
// (e.g. a descheduled worker under the real executor).
func BenchmarkAblationSMClamp(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		full := runWorkload(b, "leukocyte", func(info core.LoopInfo) (core.Scheduler, error) {
			return core.NewAIDDynamic(info, 1, 10)
		})
		ablated := runWorkload(b, "leukocyte", func(info core.LoopInfo) (core.Scheduler, error) {
			s, err := core.NewAIDDynamic(info, 1, 10)
			if err != nil {
				return nil, err
			}
			s.SetAblation(false, true)
			return s, nil
		})
		ratio = ablated / full
	}
	b.ReportMetric(ratio, "no-clamp/full-time-ratio")
}

// BenchmarkAblationSamplingChunk measures the cost of a larger sampling
// chunk for AID-static on EP: a bigger chunk lengthens the even-split
// sampling phase (more iterations distributed 1:1 before the asymmetric
// assignment), trading estimation variance against imbalance exposure.
func BenchmarkAblationSamplingChunk(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		chunk1 := runWorkload(b, "EP", func(info core.LoopInfo) (core.Scheduler, error) {
			return core.NewAIDStatic(info, 1)
		})
		chunk256 := runWorkload(b, "EP", func(info core.LoopInfo) (core.Scheduler, error) {
			return core.NewAIDStatic(info, 256)
		})
		ratio = chunk256 / chunk1
	}
	b.ReportMetric(ratio, "chunk256/chunk1-time-ratio")
}

// BenchmarkAblationHybridTail measures AID-hybrid's dynamic tail (pct 0.8
// vs pure AID-static) on EP — the Fig. 4 comparison as a pinned metric.
func BenchmarkAblationHybridTail(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		hybrid := runWorkload(b, "EP", func(info core.LoopInfo) (core.Scheduler, error) {
			return core.NewAIDHybrid(info, 1, 0.8)
		})
		pure := runWorkload(b, "EP", func(info core.LoopInfo) (core.Scheduler, error) {
			return core.NewAIDStatic(info, 1)
		})
		ratio = pure / hybrid
	}
	b.ReportMetric(ratio, "aid-static/hybrid-time-ratio")
}

// BenchmarkAblationWorkStealing compares the §4.3 work-stealing alternative
// against AID-static on EP: completion should be comparable (both balance
// the AMP), with work stealing paying more synchronized operations instead
// of a sampling phase.
func BenchmarkAblationWorkStealing(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		steal := runWorkload(b, "EP", func(info core.LoopInfo) (core.Scheduler, error) {
			return core.NewWorkSteal(info, 64)
		})
		aid := runWorkload(b, "EP", func(info core.LoopInfo) (core.Scheduler, error) {
			return core.NewAIDStatic(info, 1)
		})
		ratio = steal / aid
	}
	b.ReportMetric(ratio, "steal/aid-static-time-ratio")
}

// BenchmarkAblationAIDAuto compares the §6 AID-auto extension against the
// best fixed variant per workload class: it must approach AID-hybrid on the
// uniform EP and AID-dynamic on the irregular leukocyte without being told
// which is which.
func BenchmarkAblationAIDAuto(b *testing.B) {
	var epRatio, leuRatio float64
	for i := 0; i < b.N; i++ {
		autoF := func(info core.LoopInfo) (core.Scheduler, error) {
			return core.NewAIDAuto(info, 1, 0.8, 5, 0)
		}
		epAuto := runWorkload(b, "EP", autoF)
		epBest := runWorkload(b, "EP", func(info core.LoopInfo) (core.Scheduler, error) {
			return core.NewAIDHybrid(info, 1, 0.8)
		})
		leuAuto := runWorkload(b, "leukocyte", autoF)
		leuBest := runWorkload(b, "leukocyte", func(info core.LoopInfo) (core.Scheduler, error) {
			return core.NewAIDDynamic(info, 1, 5)
		})
		epRatio = epAuto / epBest
		leuRatio = leuAuto / leuBest
	}
	b.ReportMetric(epRatio, "auto/best-EP")
	b.ReportMetric(leuRatio, "auto/best-leukocyte")
}
